// Localization: infer the exact position of a tuple from a rank-only
// interface (§4.3) — the capability the paper demonstrates by locating
// POIs within tens of metres and WeChat users within ~100 m (Fig. 21).
//
// The program localizes a set of users through an LNR interface twice:
// once against an honest service and once against one that obfuscates
// locations (as WeChat does), showing how the inference degrades to
// the obfuscation scale but no further.
//
//	go run ./examples/localization
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	lbsagg "repro"
)

func run(name string, db *lbsagg.Database, bounds lbsagg.Rect, targets int) {
	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 8})
	agg := lbsagg.NewLNRAggregator(svc, lbsagg.LNROptions{
		Seed:    3,
		EdgeEps: bounds.Diagonal() * 1e-5, // metre-scale edge precision
	})
	var errs []float64
	for i := 0; i < db.Len() && len(errs) < targets; i += db.Len() / targets {
		tp := db.Tuple(i)
		// Anchor at the service's notion of the user's position (a
		// real attacker would walk a probe grid; one probe near the
		// victim suffices for the demo).
		got, err := agg.Localize(context.Background(), tp.ID, db.EffectiveLoc(i))
		if err != nil {
			continue
		}
		errs = append(errs, got.Dist(tp.Loc)*1000) // km → m
	}
	if len(errs) == 0 {
		log.Fatalf("%s: no successful localizations", name)
	}
	var sum, max float64
	within50 := 0
	for _, e := range errs {
		sum += e
		if e > max {
			max = e
		}
		if e <= 50 {
			within50++
		}
	}
	fmt.Printf("%-22s %2d targets: mean %.1f m, max %.1f m, %d/%d within 50 m (queries: %d)\n",
		name, len(errs), sum/float64(len(errs)), max, within50, len(errs), svc.QueryCount())
}

func main() {
	bounds := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(100, 100))
	rng := rand.New(rand.NewSource(17))
	tuples := make([]lbsagg.Tuple, 300)
	for i := range tuples {
		tuples[i] = lbsagg.Tuple{
			ID:  int64(i + 1),
			Loc: lbsagg.Pt(rng.Float64()*100, rng.Float64()*100),
		}
	}

	honest := lbsagg.NewDatabase(bounds, tuples)
	run("honest service", honest, bounds, 12)

	obfuscated := lbsagg.NewObfuscatedDatabase(bounds, tuples, lbsagg.Obfuscation{
		GridSize: 0.1,  // snap to 100 m grid
		Jitter:   0.05, // plus 50 m jitter
		Seed:     9,
	})
	run("obfuscated (WeChat)", obfuscated, bounds, 12)
}
