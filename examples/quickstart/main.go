// Quickstart: estimate COUNT(*) over a hidden spatial database that is
// only reachable through a top-k nearest-neighbor interface.
//
// The program builds a small simulated location based service, runs
// Algorithm LR-LBS-AGG against its kNN interface, and compares the
// estimate with the (normally unknowable) ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	lbsagg "repro"
)

func main() {
	// A 100×100 km city with 500 points of interest.
	bounds := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(100, 100))
	rng := rand.New(rand.NewSource(7))
	tuples := make([]lbsagg.Tuple, 500)
	for i := range tuples {
		tuples[i] = lbsagg.Tuple{
			ID:  int64(i + 1),
			Loc: lbsagg.Pt(rng.Float64()*100, rng.Float64()*100),
			Attrs: map[string]float64{
				"rating": 1 + rng.Float64()*4,
			},
		}
	}
	db := lbsagg.NewDatabase(bounds, tuples)

	// The service is the only thing the estimator may touch: a top-10
	// kNN interface with a 5,000-query budget (a rate limit stand-in).
	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 10, Budget: 5000})

	// Aggregates are declarative specs (API v3): they compile once to
	// the closure form the estimator runs, and the same JSON-ready
	// specs could be submitted to a remote estimation job unchanged
	// (see examples/jobs).
	plan, err := lbsagg.CompilePlan([]lbsagg.AggSpec{
		lbsagg.CountSpec(),
		lbsagg.AvgSpec("rating"),
	})
	if err != nil {
		log.Fatal(err)
	}

	agg := lbsagg.NewLRAggregator(svc, lbsagg.DefaultLROptions(42))
	phys, err := agg.Run(context.Background(), plan.Aggs)
	// no run options: sample until the service budget is gone
	if err != nil {
		log.Fatal(err)
	}
	results := plan.Finish(phys)

	count, avg := results[0], results[1]
	fmt.Printf("queries spent:      %d (budget 5000)\n", count.Queries)
	fmt.Printf("samples completed:  %d\n", count.Samples)
	fmt.Printf("COUNT(*)  estimate: %.1f ± %.1f (truth %d)\n",
		count.Estimate, count.CI95, db.Len())
	fmt.Printf("AVG(rating) estimate: %.3f ± %.3f\n", avg.Estimate, avg.CI95)
}
