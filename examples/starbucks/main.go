// Starbucks: the paper's flagship demonstration (Table 1) — estimate
// how many Starbucks stores exist in the US by querying a Google-
// Places-like interface that answers "the k nearest POIs matching a
// filter", and compare against the chain's published store count.
//
// The example exercises three features of the library together:
//
//   - server-side selection pass-through (§5.1): the NAME='Starbucks'
//     condition rides along with every kNN query;
//
//   - weighted query sampling from external knowledge (§5.2): query
//     locations follow a census-like population-density grid, which
//     drastically reduces variance on urban-concentrated chains;
//
//   - the full LR-LBS-AGG estimator with all error-reduction devices.
//
//     go run ./examples/starbucks
package main

import (
	"context"
	"fmt"
	"log"

	lbsagg "repro"
)

func main() {
	// Synthetic continental US with 1,200 Starbucks among 4,800 other
	// POIs (scaled-down stand-in for the paper's 12,023 / millions).
	sc := lbsagg.StarbucksUS(1200, 4800, 11)
	truth := 0
	for i := 0; i < sc.DB.Len(); i++ {
		if sc.DB.Tuple(i).Name == "Starbucks" {
			truth++
		}
	}

	svc := lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{
		K:      20,
		Budget: 5000, // the paper's Table-1 budget
	})

	opts := lbsagg.DefaultLROptions(99)
	opts.Filter = lbsagg.NameFilter("Starbucks") // pass-through selection
	opts.Sampler = sc.Grid                       // census-weighted sampling
	agg := lbsagg.NewLRAggregator(svc, opts)

	// Samples are i.i.d., so WithParallelism fans the drawing out over
	// independent estimator forks — against a real (latency-bound) API
	// this is a near-linear wall-clock win.
	res, err := agg.Run(context.Background(),
		[]lbsagg.Aggregate{lbsagg.Count()}, lbsagg.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	r := res[0]
	fmt.Printf("COUNT(Starbucks in US)\n")
	fmt.Printf("  estimate:    %.0f ± %.0f (95%% CI)\n", r.Estimate, r.CI95)
	fmt.Printf("  ground truth: %d  (rel error %.1f%%)\n", truth, 100*r.RelErr(float64(truth)))
	fmt.Printf("  queries:     %d over %d samples\n", r.Queries, r.Samples)

	// The same samples also answer a post-processed condition for free:
	// highly rated stores (rating ≥ 4.0).
	opts2 := lbsagg.DefaultLROptions(100)
	opts2.Filter = lbsagg.NameFilter("Starbucks")
	opts2.Sampler = sc.Grid
	agg2 := lbsagg.NewLRAggregator(lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{K: 20, Budget: 5000}), opts2)
	res2, err := agg2.Run(context.Background(), []lbsagg.Aggregate{
		lbsagg.CountWhere("rating>=4", func(r lbsagg.Record) bool { return r.Attr("rating") >= 4 }),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(Starbucks with rating ≥ 4): %.0f ± %.0f\n",
		res2[0].Estimate, res2[0].CI95)
}
