// WeChat: aggregate estimation over a rank-only interface (§4) — the
// service returns ordered user IDs with attributes but never any
// location or distance, exactly like the "people nearby" feature of
// WeChat or Sina Weibo.
//
// The program estimates the total number of users with the location
// feature enabled and the male/female ratio (the paper's Table-1
// social-network aggregates), using Algorithm LNR-LBS-AGG: Voronoi
// cells inferred purely from rank flips via binary search.
//
//	go run ./examples/wechat
package main

import (
	"context"
	"fmt"
	"log"

	lbsagg "repro"
)

func main() {
	// Synthetic China with 2,000 users, 67.1 % male, and WeChat-grade
	// location obfuscation on the service side.
	sc := lbsagg.WeChatChina(2000, 21)
	maleTruth := 0
	for i := 0; i < sc.DB.Len(); i++ {
		if sc.DB.Tuple(i).Tag("gender") == "m" {
			maleTruth++
		}
	}

	// k=10 nearest users per query, rank order only.
	svc := lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{K: 10, Budget: 10000})

	agg := lbsagg.NewLNRAggregator(svc, lbsagg.LNROptions{
		Seed:    5,
		Sampler: sc.Grid, // population-weighted query locations
	})
	res, err := agg.Run(context.Background(), []lbsagg.Aggregate{
		lbsagg.Count(),
		lbsagg.CountTag("gender", "m"),
	})
	if err != nil {
		log.Fatal(err)
	}
	total, males := res[0], res[1]
	ratio := lbsagg.RatioOf(males, total)

	fmt.Printf("rank-only interface, %d queries over %d samples\n",
		total.Queries, total.Samples)
	fmt.Printf("COUNT(users):  %.0f ± %.0f   (truth %d)\n",
		total.Estimate, total.CI95, sc.DB.Len())
	fmt.Printf("male fraction: %.1f%% ± %.1f%% (truth %.1f%%)\n",
		100*ratio.Estimate, 100*ratio.CI95,
		100*float64(maleTruth)/float64(sc.DB.Len()))
}
