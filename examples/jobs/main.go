// Estimation as a service: run the paper's algorithms through the job
// API instead of in-process closures.
//
// The program serves a simulated LBS over HTTP, then acts as a remote
// client: it submits a declarative estimation job (JSON specs — no Go
// closures cross the wire), streams the live estimate-versus-cost
// trace, waits for the result, demonstrates canceling a long job
// mid-run to collect its partial results, and closes with batched
// analytics — a whole dashboard of related aggregates in one job,
// planned server-side into shared sample streams with fused operators.
//
//	go run ./examples/jobs
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	lbsagg "repro"
)

func main() {
	// A 100×100 km city with 800 points of interest, some open Sunday.
	bounds := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(100, 100))
	rng := rand.New(rand.NewSource(7))
	tuples := make([]lbsagg.Tuple, 800)
	for i := range tuples {
		open := "no"
		if rng.Intn(3) > 0 {
			open = "yes"
		}
		tuples[i] = lbsagg.Tuple{
			ID:    int64(i + 1),
			Loc:   lbsagg.Pt(rng.Float64()*100, rng.Float64()*100),
			Attrs: map[string]float64{"rating": 1 + rng.Float64()*4},
			Tags:  map[string]string{"open_sunday": open},
		}
	}
	db := lbsagg.NewDatabase(bounds, tuples)
	// No service-wide budget: each job bounds its own spend
	// (MaxQueries), and the cancel demo below needs a job that would
	// otherwise keep running.
	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 10})

	// Serve the estimation service over real HTTP.
	server := lbsagg.NewHTTPServer(svc)
	ts := httptest.NewServer(server)
	defer ts.Close()

	ctx := context.Background()
	client, err := lbsagg.NewHTTPClient(ctx, ts.URL, lbsagg.HTTPSelection{}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Submit a declarative job: COUNT(*), and AVG(rating) over the
	// Sunday-open subset — the whole request is plain JSON.
	view, err := client.Estimate(ctx, lbsagg.JobSpec{
		Method: lbsagg.JobMethodLR,
		Seed:   42,
		Aggregates: []lbsagg.AggSpec{
			lbsagg.CountSpec(),
			lbsagg.AvgSpec("rating").WithWhere(lbsagg.TagEq("open_sunday", "yes")),
		},
		Options: lbsagg.JobRunOptions{MaxQueries: 4000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s\n", view.ID)

	// Stream the trace while the job runs server-side (every 40th
	// event, to keep the output readable).
	n := 0
	err = client.FollowJobTrace(ctx, view.ID, func(e lbsagg.JobTraceEvent) error {
		if n++; n%40 == 0 {
			fmt.Printf("  trace: %-32s samples=%-4d queries=%-5d estimate=%.1f\n",
				e.Agg, e.Samples, e.Queries, float64(e.Estimate))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	final, err := client.WaitJob(ctx, view.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s after %d samples, %d queries\n", final.ID, final.State, final.Samples, final.Queries)
	for _, r := range final.Results {
		fmt.Printf("  %-40s %.2f ± %.2f (95%% CI)\n", r.Name, float64(r.Estimate), float64(r.CI95))
	}
	truth := db.Count(func(t *lbsagg.Tuple) bool { return true })
	fmt.Printf("  (true COUNT(*) = %d)\n", truth)

	// A second, unbounded job: cancel it mid-run and keep the partial
	// estimates of the samples that completed.
	long, err := client.Estimate(ctx, lbsagg.JobSpec{
		Method:     lbsagg.JobMethodNNO,
		Seed:       1,
		Aggregates: []lbsagg.AggSpec{lbsagg.CountSpec()},
		Options:    lbsagg.JobRunOptions{MaxSamples: 10_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	for {
		cur, err := client.Job(ctx, long.ID)
		if err != nil {
			log.Fatal(err)
		}
		if cur.Samples >= 20 || cur.State.Finished() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	partial, err := client.CancelJob(ctx, long.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s with partial results after %d samples: COUNT(*) ≈ %.1f\n",
		partial.ID, partial.State, partial.Samples, float64(partial.Results[0].Estimate))

	// Batched analytics: a dashboard of related aggregates in one job.
	// The server routes the batch through the multi-aggregate query
	// planner — the three Sunday aggregates share one selection (its
	// predicate compiles once, the AVG rides the same fused SUM/COUNT
	// physicals), and all specs share one sample stream — so the whole
	// dashboard costs a fraction of one job per aggregate.
	open := lbsagg.TagEq("open_sunday", "yes")
	batch, err := client.Estimate(ctx, lbsagg.JobSpec{
		Method: lbsagg.JobMethodAuto, // the planner's cost model picks per group
		Seed:   7,
		Aggregates: []lbsagg.AggSpec{
			lbsagg.CountSpec().WithWhere(open).WithLabel("sunday_count"),
			lbsagg.SumSpec("rating").WithWhere(open).WithLabel("sunday_rating_sum"),
			lbsagg.AvgSpec("rating").WithWhere(open).WithLabel("sunday_rating_avg"),
			lbsagg.CountSpec().
				WithWhere(lbsagg.And(open, lbsagg.AttrCmp("rating", "ge", 4))).
				WithLabel("sunday_top_rated"),
		},
		Options: lbsagg.JobRunOptions{MaxQueries: 4000},
	})
	if err != nil {
		log.Fatal(err)
	}
	bf, err := client.WaitJob(ctx, batch.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s after %d samples, %d queries for %d aggregates\n",
		bf.ID, bf.State, bf.Samples, bf.Queries, len(bf.Results))
	if p := bf.Plan; p != nil {
		fmt.Printf("  plan: %d group(s), %d distinct predicate(s)\n", len(p.Groups), p.Preds)
		for _, g := range p.Groups {
			fmt.Printf("    %-4s seed=%-3d fused=%d physicals for specs %v\n",
				g.Method, g.Seed, len(g.Aggs), g.Specs)
		}
	}
	for _, r := range bf.Results {
		fmt.Printf("  %-40s %.2f ± %.2f (95%% CI)\n", r.Name, float64(r.Estimate), float64(r.CI95))
	}
}
