GO ?= go

.PHONY: all fmt vet build test bench bench-throughput bench-geom bench-geo-geodesic bench-json bench-smoke bench-fed bench-fed-json bench-live bench-live-json bench-planner bench-planner-json bench-chaos bench-chaos-json bench-store bench-store-json

all: fmt vet build test

# fmt fails when any file is not gofmt-clean (the CI tidiness gate:
# wire-type churn must not accumulate formatting drift).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide.
test:
	$(GO) test -race -shuffle=on ./...

# bench runs the estimation-session benchmarks; the Parallelism pair
# measures the wall-clock payoff of WithParallelism(8) over a
# 1 ms-latency Oracle.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelism' -benchtime 3x .

# bench-throughput load-tests the lbsserve HTTP stack: 8 concurrent
# clients against one server, per-point GETs versus batched POSTs.
# The batch=32 row should show a multiple of the batch=1 queries/s.
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkServeThroughput' -benchtime 2s ./internal/httpapi

# The geometry-engine benchmark suite: cell clipping, kd-tree search,
# the simulated oracle hot path, ground-truth diagram construction and
# one end-to-end estimator sample.
GEOM_BENCH = BenchmarkAddCut|BenchmarkReplaceCut|BenchmarkInsertSites|BenchmarkBuildTop|BenchmarkRandomPoint|BenchmarkSplit|BenchmarkEvalRange|BenchmarkKNN|BenchmarkBuild10k|BenchmarkCompute10k|BenchmarkQueryLR|BenchmarkLRSample|BenchmarkLRCellComputation
GEOM_PKGS = ./internal/geom ./internal/cell ./internal/kdtree ./internal/lbs ./internal/voronoi ./internal/core

bench-geom:
	$(GO) test -run '^$$' -bench '$(GEOM_BENCH)' -benchmem $(GEOM_PKGS)

# bench-geo-geodesic runs the geodesic twins once (kd-tree Haversine
# traversal, the geodesic oracle hot path, one geodesic LR estimator
# sample) — the CI smoke that keeps the Haversine path compiling and
# answering. The names also match GEOM_BENCH prefixes, so bench-json
# records them next to their Euclidean baselines.
bench-geo-geodesic:
	$(GO) test -run '^$$' -bench 'Geodesic' -benchtime 1x ./internal/kdtree ./internal/lbs ./internal/core

# bench-json runs the geometry suite and records it in BENCH_geom.json
# (ns/op, B/op, allocs/op, custom metrics like queries/sample and q/s).
# An existing file's baseline block is preserved, so the numbers
# recorded at the start of the perf trajectory remain the reference.
# The bench output goes through a file, not a pipe, so a failing
# benchmark fails the target instead of being masked by the pipeline.
bench-json:
	$(GO) test -run '^$$' -bench '$(GEOM_BENCH)' -benchmem $(GEOM_PKGS) > bench_geom.out
	$(GO) run ./cmd/benchjson -o BENCH_geom.json < bench_geom.out
	@rm -f bench_geom.out

# The federation benchmark suite (sibling of bench-geom): the
# scatter-gather query path at 1/2/4/8 in-process shards, serial and
# batched, with the effective fan-out reported per query.
FED_BENCH = BenchmarkFederatedQuery|BenchmarkFederatedBatch

bench-fed:
	$(GO) test -run '^$$' -bench '$(FED_BENCH)' -benchmem ./internal/shard

# bench-fed-json records the federation suite in BENCH_federation.json
# (same baseline-preserving layout as bench-json; the file self-primes
# on first run).
bench-fed-json:
	$(GO) test -run '^$$' -bench '$(FED_BENCH)' -benchmem ./internal/shard > bench_fed.out
	$(GO) run ./cmd/benchjson -o BENCH_federation.json < bench_fed.out
	@rm -f bench_fed.out

# The live-database benchmark suite: the immutable Service read
# baseline, the live read path at 0%/1%/10% churn (mutations
# interleaved per query), and raw mutation throughput. The Churn0 row
# measures the clean-overlay fast path against the immutable baseline.
LIVE_BENCH = BenchmarkImmutableQueryLR|BenchmarkLiveQueryLRChurn|BenchmarkLiveApply

bench-live:
	$(GO) test -run '^$$' -bench '$(LIVE_BENCH)' -benchmem ./internal/live

# bench-live-json records the live suite in BENCH_live.json (same
# baseline-preserving layout as bench-json; self-primes on first run).
bench-live-json:
	$(GO) test -run '^$$' -bench '$(LIVE_BENCH)' -benchmem ./internal/live > bench_live.out
	$(GO) run ./cmd/benchjson -o BENCH_live.json < bench_live.out
	@rm -f bench_live.out

# The multi-aggregate planner suite: batches of 1/4/16 aggregates
# sharing 4 selections, run to a fixed confidence target as one
# planned batch versus one independent run per aggregate. The
# queries/agg columns are the planner's sharing payoff (batch ≤ ~1/3
# of independent at 16 aggregates); aggs=1 must match exactly, the
# bit-identity sanity check.
PLANNER_BENCH = BenchmarkPlannerBatch|BenchmarkPlannerIndependent

bench-planner:
	$(GO) test -run '^$$' -bench '$(PLANNER_BENCH)' -benchtime 1x ./internal/core

# bench-planner-json records the planner suite in BENCH_planner.json
# (same baseline-preserving layout as bench-json; self-primes on first
# run). The query counts are seed-deterministic, so one iteration is a
# measurement, not noise.
bench-planner-json:
	$(GO) test -run '^$$' -bench '$(PLANNER_BENCH)' -benchtime 1x ./internal/core > bench_planner.out
	$(GO) run ./cmd/benchjson -o BENCH_planner.json < bench_planner.out
	@rm -f bench_planner.out

# The chaos suite: a full LR COUNT estimation over a faulted 4-shard
# federation at each injected fault rate (0 = clean baseline),
# reporting estimation error, p50/p99 per-query latency and the
# router's retry/partial totals. Wall time is sleep-dominated (the
# injected latency), not CPU.
CHAOS_BENCH = BenchmarkChaos

bench-chaos:
	$(GO) test -run '^$$' -bench '$(CHAOS_BENCH)' -benchtime 1x ./internal/experiments

# bench-chaos-json records the chaos suite in BENCH_chaos.json (same
# baseline-preserving layout as bench-json; self-primes on first run).
# Seeds are fixed, so -benchtime 1x is a measurement, not noise.
bench-chaos-json:
	$(GO) test -run '^$$' -bench '$(CHAOS_BENCH)' -benchtime 1x ./internal/experiments > bench_chaos.out
	$(GO) run ./cmd/benchjson -o BENCH_chaos.json < bench_chaos.out
	@rm -f bench_chaos.out

# The storage-engine suite: cold restart (re-parse the JSON export,
# rebuild the index from scratch) versus warm restart (paged scan of
# the .lbspack, O(n) preordered index rebuild) on the same 10k-tuple
# city — the warm row must come in well under the cold one (the
# acceptance floor is 5x) — plus a bounded-pool scan in the
# larger-than-RAM shape and the WAL append hot path.
STORE_BENCH = BenchmarkColdStartJSON10k|BenchmarkWarmStartPack10k|BenchmarkPackScanBoundedPool|BenchmarkWALAppend

bench-store:
	$(GO) test -run '^$$' -bench '$(STORE_BENCH)' -benchmem ./internal/store

# bench-store-json records the storage suite in BENCH_store.json (same
# baseline-preserving layout as bench-json; self-primes on first run).
bench-store-json:
	$(GO) test -run '^$$' -bench '$(STORE_BENCH)' -benchmem ./internal/store > bench_store.out
	$(GO) run ./cmd/benchjson -o BENCH_store.json < bench_store.out
	@rm -f bench_store.out

# bench-smoke compiles and runs every benchmark once — the CI guard
# that keeps bench code from rotting.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
