GO ?= go

.PHONY: all vet build test bench

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench runs the estimation-session benchmarks; the Parallelism pair
# measures the wall-clock payoff of WithParallelism(8) over a
# 1 ms-latency Oracle.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelism' -benchtime 3x .
