GO ?= go

.PHONY: all vet build test bench bench-throughput

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench runs the estimation-session benchmarks; the Parallelism pair
# measures the wall-clock payoff of WithParallelism(8) over a
# 1 ms-latency Oracle.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelism' -benchtime 3x .

# bench-throughput load-tests the lbsserve HTTP stack: 8 concurrent
# clients against one server, per-point GETs versus batched POSTs.
# The batch=32 row should show a multiple of the batch=1 queries/s.
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkServeThroughput' -benchtime 2s ./internal/httpapi
