// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) at reduced ("quick") scale: one benchmark per
// experiment, each reporting domain metrics alongside wall-clock time.
// For the paper-scale numbers run cmd/lbsbench with -scale paper; the
// benchmark scale preserves the qualitative shape (algorithm ordering,
// crossover behaviour) while staying fast enough for go test -bench.
package lbsagg_test

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	lbsagg "repro"
	"repro/internal/experiments"
)

// latencyOracle wraps an Oracle with a fixed per-query delay,
// standing in for a remote LBS reached over the network (where the
// paper's query-count metric turns into wall-clock time). The sleep
// honors ctx so canceled runs abort in-flight queries.
type latencyOracle struct {
	lbsagg.Oracle
	delay time.Duration
}

func (o latencyOracle) wait(ctx context.Context) error {
	timer := time.NewTimer(o.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (o latencyOracle) QueryLR(ctx context.Context, q lbsagg.Point, f lbsagg.Filter) ([]lbsagg.LRRecord, error) {
	if err := o.wait(ctx); err != nil {
		return nil, err
	}
	return o.Oracle.QueryLR(ctx, q, f)
}

func (o latencyOracle) QueryLNR(ctx context.Context, q lbsagg.Point, f lbsagg.Filter) ([]lbsagg.LNRRecord, error) {
	if err := o.wait(ctx); err != nil {
		return nil, err
	}
	return o.Oracle.QueryLNR(ctx, q, f)
}

// benchParallelism measures an LR estimation session of fixed sample
// size against a 1 ms-latency Oracle at the given worker count. The
// samples are i.i.d., so the parallel run computes the same estimator
// — the wall-clock ratio between the two benchmarks is the payoff of
// WithParallelism against a remote service.
func benchParallelism(b *testing.B, workers int) {
	bounds := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(100, 100))
	rng := rand.New(rand.NewSource(5))
	tuples := make([]lbsagg.Tuple, 300)
	for i := range tuples {
		tuples[i] = lbsagg.Tuple{
			ID:  int64(i + 1),
			Loc: lbsagg.Pt(rng.Float64()*100, rng.Float64()*100),
		}
	}
	db := lbsagg.NewDatabase(bounds, tuples)
	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 5})
	oracle := latencyOracle{Oracle: svc, delay: time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := lbsagg.NewLRAggregator(oracle, lbsagg.DefaultLROptions(int64(i+1)))
		res, err := agg.Run(context.Background(), []lbsagg.Aggregate{lbsagg.Count()},
			lbsagg.WithMaxSamples(32), lbsagg.WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		if res[0].Samples != 32 {
			b.Fatalf("samples = %d", res[0].Samples)
		}
		b.ReportMetric(float64(res[0].Queries), "queries/op")
	}
}

func BenchmarkParallelism1(b *testing.B) { benchParallelism(b, 1) }

func BenchmarkParallelism8(b *testing.B) { benchParallelism(b, 8) }

// benchCfg derives a per-benchmark configuration; b.N scales the
// number of repetitions so the measured time per op stays meaningful.
func benchCfg(seed int64) experiments.Config {
	cfg := experiments.Quick()
	cfg.Seed = seed
	return cfg
}

// reportSeries publishes the terminal value of each series as a
// benchmark metric so regressions in the *shape* show up in bench
// diffs, not just runtime.
func reportSeries(b *testing.B, fig interface {
	// minimal structural interface to avoid re-exporting Figure
}, _ ...interface{}) {
	_ = fig
}

func BenchmarkFig11VoronoiDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig11(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		st := fig.Series[0]
		b.ReportMetric(st.Y[5]/math.Max(st.Y[1], 1e-12), "max-over-median")
	}
}

func BenchmarkFig12Unbiasedness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig12(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// Terminal estimate of the LR-AGG trace vs ground truth 300.
		lr := fig.Series[1]
		final := lr.Y[len(lr.Y)-1]
		b.ReportMetric(math.Abs(final-300)/300, "lr-final-relerr")
	}
}

func BenchmarkFig13WeightedSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig13(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// Cost ratio uniform/weighted for LR at rel-error 0.3 (index 3).
		uni, wt := fig.Series[0].Y[3], fig.Series[1].Y[3]
		if wt > 0 {
			b.ReportMetric(uni/wt, "lr-uniform-over-weighted")
		}
	}
}

func BenchmarkFig14CountSchools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig14(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		nno, lr := fig.Series[0].Y[3], fig.Series[1].Y[3]
		if lr > 0 {
			b.ReportMetric(nno/lr, "nno-over-lr-cost")
		}
	}
}

func BenchmarkFig15CountRestaurants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(context.Background(), benchCfg(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16SumEnrollment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(context.Background(), benchCfg(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17AvgRatingAustin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17(context.Background(), benchCfg(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18DatabaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig18(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// Scaling flatness for LR-AGG: cost(100%) / cost(25%).
		lr := fig.Series[1]
		if lr.Y[0] > 0 {
			b.ReportMetric(lr.Y[3]/lr.Y[0], "lr-cost-scaling")
		}
	}
}

func BenchmarkFig19VaryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(i + 1))
		cfg.K = 3 // keep the sweep small at bench scale
		fig, err := experiments.Fig19(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		lr := fig.Series[0]
		adaptive := lr.Y[len(lr.Y)-1]
		fixed1 := lr.Y[0]
		if fixed1 > 0 {
			b.ReportMetric(adaptive/fixed1, "adaptive-over-h1-cost")
		}
	}
}

func BenchmarkFig20Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig20(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// Savings of the full AGG vs the no-device baseline at 0.3.
		agg0, agg := fig.Series[0].Y[3], fig.Series[4].Y[3]
		if agg > 0 {
			b.ReportMetric(agg0/agg, "agg0-over-agg-cost")
		}
	}
}

func BenchmarkFig21Localization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig21(context.Background(), benchCfg(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// Fraction of map-service targets within 50 m (index 4).
		b.ReportMetric(fig.Series[0].Y[4], "places-within-50m")
	}
}

func BenchmarkTable1OnlineDemos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(i + 1))
		cfg.Budget = 6000
		rows, err := experiments.Table1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RelErr, "starbucks-relerr")
	}
}
