// Command lbsgen generates a synthetic LBS dataset, as JSON for
// inspection or loading into external tools, or — when -o ends in
// .lbspack — directly in the paged on-disk format of internal/store,
// so large synthetic cities are generated once and then opened by
// lbsserve/lbsbench without re-parsing. Scenarios mirror the paper's
// evaluation data (see internal/workload).
//
// Usage:
//
//	lbsgen -scenario schools -n 2000 -seed 7 > schools.json
//	lbsgen -scenario wechat -n 5000 -o users.json
//	lbsgen -scenario wechat -n 500000 -o city.lbspack
//	lbsserve -dataset city.lbspack -addr :8080
//
// The geodesic scenarios (geo-us, geo-china) generate lon/lat degree
// coordinates ranked under the Haversine metric; the "cities"
// scenario is their planar (km, Euclidean) twin. All three honor
// -density: zipf swaps the Gaussian cluster spread for a heavy-tailed
// power law (dense cores, long suburban tails). The metric is
// recorded in both output forms — pack header field and JSON
// "metric" — so lbsserve refuses to serve the city under the wrong
// geometry.
//
// The .lbspack form also preserves effective (obfuscated) locations,
// which the JSON export does not carry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/geo"
	"repro/internal/store"
	"repro/internal/workload"
)

// jsonTuple is the serialized tuple form.
type jsonTuple struct {
	ID       int64              `json:"id"`
	X        float64            `json:"x"`
	Y        float64            `json:"y"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

type jsonDataset struct {
	Scenario string      `json:"scenario"`
	MinX     float64     `json:"min_x"`
	MinY     float64     `json:"min_y"`
	MaxX     float64     `json:"max_x"`
	MaxY     float64     `json:"max_y"`
	Metric   string      `json:"metric,omitempty"`
	Tuples   []jsonTuple `json:"tuples"`
}

func main() {
	var (
		scenario = flag.String("scenario", "schools", "schools | restaurants | starbucks | wechat | weibo | cities | geo-us | geo-china")
		n        = flag.Int("n", 2000, "number of tuples")
		seed     = flag.Int64("seed", 1, "generator seed")
		density  = flag.String("density", "", "cluster spread for cities/geo-us/geo-china: gauss (default) | zipf (heavy-tailed power law)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	den, err := workload.ParseDensity(*density)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sc *workload.Scenario
	switch *scenario {
	case "schools":
		sc = workload.USASchools(*n, *seed)
	case "restaurants":
		sc = workload.USARestaurants(*n, *seed)
	case "starbucks":
		sc = workload.StarbucksUS(*n, *n*4, *seed)
	case "wechat":
		sc = workload.WeChatChina(*n, *seed)
	case "weibo":
		sc = workload.WeiboChina(*n, *seed)
	case "cities":
		sc = workload.Cities("cities", workload.USBounds(), geo.Euclidean, den, *n, 40, *seed)
	case "geo-us":
		sc = workload.GeoUS(*n, *seed, den)
	case "geo-china":
		sc = workload.GeoChina(*n, *seed, den)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *density != "" && sc.Metric == geo.Euclidean && *scenario != "cities" {
		fmt.Fprintf(os.Stderr, "-density applies to the cities/geo-us/geo-china scenarios; %q has a fixed density\n", *scenario)
		os.Exit(2)
	}

	if strings.HasSuffix(strings.ToLower(*out), ".lbspack") {
		if err := store.WritePackMetric(*out, sc.DB, sc.Metric, 0, 0, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ds := jsonDataset{
		Scenario: sc.Name,
		MinX:     sc.Bounds.Min.X, MinY: sc.Bounds.Min.Y,
		MaxX: sc.Bounds.Max.X, MaxY: sc.Bounds.Max.Y,
		Metric: sc.Metric.String(),
	}
	for i := 0; i < sc.DB.Len(); i++ {
		t := sc.DB.Tuple(i)
		ds.Tuples = append(ds.Tuples, jsonTuple{
			ID: t.ID, X: t.Loc.X, Y: t.Loc.Y,
			Name: t.Name, Category: t.Category, Attrs: t.Attrs, Tags: t.Tags,
		})
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
