// Command lbsbench regenerates the paper's evaluation: every figure
// (11–21) and Table 1, printed as text tables whose rows/series mirror
// what the paper plots.
//
// Usage:
//
//	lbsbench -experiment fig14              # one experiment, quick scale
//	lbsbench -experiment all -scale paper   # the whole evaluation
//	lbsbench -experiment table1 -runs 10 -n 3000 -budget 20000
//
// Scales: "quick" (seconds, for smoke runs) and "paper" (the paper's
// 25-run settings); individual -n/-runs/-budget/-k flags override the
// chosen scale.
//
// With -remote, lbsbench becomes a client of a running lbsserve
// instead: it submits one estimation job over the wire, streams its
// trace, and prints the final results —
//
//	lbsbench -remote http://localhost:8080 -method lr -seed 42 \
//	         -aggs '[{"kind":"count"},{"kind":"avg","attr":"enrollment"}]' \
//	         -budget 5000 -trace
//
// With -aggs but no -remote, lbsbench runs the batch locally through
// the multi-aggregate query planner against a generated workload,
// printing the plan (method groups, fused physical aggregates, deduped
// predicates), every checkpoint budget re-allocation, and the
// per-group account —
//
//	lbsbench -aggs '[{"kind":"count"},{"kind":"avg","attr":"enrollment"}]' \
//	         -method auto -budget 5000 -target-ci 0.05
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/httpapi"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

type runner func(context.Context, experiments.Config) (*experiments.Figure, error)

// runRemote submits one estimation job to a running lbsserve, streams
// its trace when asked, and prints the final results.
func runRemote(ctx context.Context, baseURL string, spec jobs.Spec, aggsJSON string, trace bool) error {
	if err := json.Unmarshal([]byte(aggsJSON), &spec.Aggregates); err != nil {
		return fmt.Errorf("parsing -aggs: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return err // reject malformed requests before going on the wire
	}
	c, err := httpapi.NewClient(ctx, baseURL, httpapi.Selection{}, nil)
	if err != nil {
		return err
	}
	v, err := c.Estimate(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (method=%s seed=%d)\n", v.ID, spec.Method, spec.Seed)
	if trace {
		err := c.FollowJobTrace(ctx, v.ID, func(e jobs.TraceEvent) error {
			fmt.Printf("  %-28s samples=%-6d queries=%-8d estimate=%g\n",
				e.Agg, e.Samples, e.Queries, float64(e.Estimate))
			return nil
		})
		// An interrupt mid-stream must still fall through to the
		// cancel path below, so the job stops server-side and its
		// partial results are printed. Any other stream failure must
		// not orphan the job either: cancel best-effort, then report.
		if err != nil && !errors.Is(err, context.Canceled) {
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, _ = c.CancelJob(dctx, v.ID)
			cancel()
			return err
		}
	}
	final, err := c.WaitJob(ctx, v.ID, 0)
	if errors.Is(err, context.Canceled) {
		// Interrupted: cancel the job server-side and report partials.
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		final, err = c.CancelJob(dctx, v.ID)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s after %d samples, %d queries\n", final.ID, final.State, final.Samples, final.Queries)
	if final.Error != "" {
		fmt.Printf("  error: %s\n", final.Error)
	}
	if p := final.Plan; p != nil {
		fmt.Printf("plan: %d group(s), %d distinct predicate(s), %d replan(s)\n",
			len(p.Groups), p.Preds, p.Replans)
		for gi, g := range p.Groups {
			fmt.Printf("  group %d: method=%s seed=%d specs=%v samples=%d queries=%d",
				gi, g.Method, g.Seed, g.Specs, g.Samples, g.Queries)
			if g.CIMet {
				fmt.Printf(" ci-met")
			}
			fmt.Printf("\n    fused: %v\n", g.Aggs)
		}
	}
	for _, r := range final.Results {
		fmt.Printf("  %-28s estimate=%-14g ±%g (95%% CI)\n", r.Name, float64(r.Estimate), float64(r.CI95))
	}
	return nil
}

// runPlanLocal routes an -aggs batch through the multi-aggregate query
// planner against a generated workload and prints the planner's
// decisions: the compiled groups, every checkpoint budget
// re-allocation, and the per-group account.
func runPlanLocal(ctx context.Context, cfg experiments.Config, method, aggsJSON, dataset string, samples int, targetCI float64) error {
	var specs []core.AggSpec
	if err := json.Unmarshal([]byte(aggsJSON), &specs); err != nil {
		return fmt.Errorf("parsing -aggs: %w", err)
	}
	plan, err := core.PlanBatch(specs, core.PlanOptions{
		Method:     method,
		Seed:       cfg.Seed,
		MaxQueries: cfg.Budget,
		MaxSamples: samples,
		TargetCI:   targetCI,
		Batch:      cfg.Batch,
	})
	if err != nil {
		return err
	}
	fmt.Printf("plan: %d aggregate(s) → %d group(s), %d distinct predicate(s)\n",
		len(plan.Specs), len(plan.Groups), plan.Preds)
	for gi := range plan.Groups {
		g := &plan.Groups[gi]
		names := make([]string, len(g.Aggs))
		for i := range g.Aggs {
			names[i] = g.Aggs[i].Name
		}
		fmt.Printf("  group %d: method=%s seed=%d cost≈%.1f queries/sample specs=%v\n    fused: %v\n",
			gi, g.Method, g.Seed, g.CostPerSample, g.Specs, names)
	}

	var db *lbs.Database
	var name string
	if dataset != "" {
		var err error
		if db, err = store.LoadDataset(dataset, 0, nil); err != nil {
			return err
		}
		name = dataset
	} else {
		sc := workload.USASchools(cfg.N, cfg.Seed)
		db, name = sc.DB, sc.Name
	}
	opts := lbs.Options{K: cfg.K}
	var svc core.Oracle
	if cfg.Shards > 1 {
		router, err := shard.FromParts(shard.Partition(db, cfg.Shards), opts)
		if err != nil {
			return err
		}
		svc = router
	} else {
		svc = lbs.NewService(db, opts)
	}
	fmt.Printf("running over %s n=%d k=%d (budget=%d shards=%d)\n",
		name, db.Len(), cfg.K, cfg.Budget, cfg.Shards)

	br, err := plan.Execute(ctx, svc, nil)
	if err != nil {
		return err
	}
	// The budget decisions, as the checkpoint allocator made them.
	const maxReplanLines = 12
	for i, ev := range br.Replans {
		if i == maxReplanLines {
			fmt.Printf("  … %d more replan(s)\n", len(br.Replans)-maxReplanLines)
			break
		}
		fmt.Printf("  replan %d: remaining=%d →", ev.Round, ev.RemainingQueries)
		for _, a := range ev.Allocs {
			fmt.Printf(" g%d need=%.0f quota=%d", a.Group, a.Need, a.Samples)
		}
		fmt.Println()
	}
	for gi, g := range br.Groups {
		fmt.Printf("group %d [%s]: %d samples, %d queries", gi, g.Method, g.Samples, g.Queries)
		if g.CIMet {
			fmt.Printf(", ci met")
		}
		fmt.Println()
	}
	fmt.Println("results:")
	for _, r := range br.Results {
		fmt.Printf("  %-28s estimate=%-14g ±%g (95%% CI)  samples=%d\n",
			r.Name, r.Estimate, r.CI95, r.Samples)
	}
	fmt.Printf("total: %d samples, %d queries\n", br.Samples, br.Queries)
	return nil
}

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment id: fig11..fig21, table1, live, chaos, or all")
		scale  = flag.String("scale", "quick", `scale preset: "quick" or "paper"`)
		n      = flag.Int("n", 0, "dataset size override")
		runs   = flag.Int("runs", 0, "repetitions override")
		budget = flag.Int64("budget", 0, "per-run query budget override")
		k      = flag.Int("k", 0, "service top-k override")
		seed   = flag.Int64("seed", 0, "base seed override")
		batch  = flag.Int("batch", 0, "samples per oracle round-trip for batch-capable estimators (0/1 = unbatched)")
		shards = flag.Int("shards", 0, "run local experiments against a federated backend of this many in-process spatial shards (0/1 = single service; answers are bit-identical)")

		remote      = flag.String("remote", "", "base URL of an lbsserve to submit one estimation job to (switches lbsbench into remote-client mode)")
		method      = flag.String("method", "lr", "job method: auto | lr | lnr | nno (auto lets the planner's cost model choose)")
		aggs        = flag.String("aggs", `[{"kind":"count"}]`, "job aggregates (JSON array of specs); without -remote, runs the batch through the local query planner")
		samples     = flag.Int("samples", 0, "job max samples (0 = unlimited)")
		targetCI    = flag.Float64("target-ci", 0, "stop once every aggregate's 95% CI half-width ≤ rel × |estimate| (0 = disabled)")
		parallelism = flag.Int("parallelism", 0, "remote job worker parallelism (0/1 = serial)")
		trace       = flag.Bool("trace", false, "stream the remote job's trace to stdout")
		dataset     = flag.String("dataset", "", "with -aggs (local planner mode): run over this dataset file (lbsgen JSON or .lbspack) instead of the generated workload")
	)
	flag.Parse()
	aggsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "aggs" {
			aggsSet = true
		}
	})

	// Ctrl-C cancels the context; in-flight estimation runs stop at
	// the next sample boundary and the command exits promptly instead
	// of grinding through the remaining experiments.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *remote != "" {
		if err := runRemote(ctx, *remote, jobs.Spec{
			Method: *method,
			Seed:   *seed,
			Options: jobs.RunOptions{
				MaxSamples:  *samples,
				MaxQueries:  *budget,
				TargetCI:    *targetCI,
				Parallelism: *parallelism,
				Batch:       *batch,
			},
		}, *aggs, *trace); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "remote: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "paper":
		cfg = experiments.Paper()
	case "quick":
		cfg = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *batch > 1 {
		cfg.Batch = *batch
	}
	if *shards > 1 {
		cfg.Shards = *shards
	}

	// An explicit -aggs without -remote runs the batch through the
	// local multi-aggregate query planner instead of the experiments.
	if aggsSet {
		if err := runPlanLocal(ctx, cfg, *method, *aggs, *dataset, *samples, *targetCI); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "plan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	figures := map[string]runner{
		"fig11": experiments.Fig11,
		"fig12": experiments.Fig12,
		"fig13": experiments.Fig13,
		"fig14": experiments.Fig14,
		"fig15": experiments.Fig15,
		"fig16": experiments.Fig16,
		"fig17": experiments.Fig17,
		"fig18": experiments.Fig18,
		"fig19": experiments.Fig19,
		"fig20": experiments.Fig20,
		"fig21": experiments.Fig21,
		"live":  experiments.LiveChurn,
		"chaos": experiments.Chaos,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for id := range figures {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ids = append(ids, "table1", "mse")
	}

	// fail reports an experiment error uniformly: an interrupt exits
	// 130 ("interrupted") regardless of which experiment was running.
	fail := func(id string, err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}

	for _, id := range ids {
		start := time.Now()
		switch {
		case id == "table1":
			rows, err := experiments.Table1(ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			experiments.WriteTable1(os.Stdout, rows)
		case id == "mse":
			rows, err := experiments.MSEDecomposition(ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			experiments.WriteMSE(os.Stdout, rows)
		case figures[id] != nil:
			fig, err := figures[id](ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			if err := fig.Write(os.Stdout); err != nil {
				fail(id, err)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig11..fig21, table1, mse, live, chaos, all)\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
