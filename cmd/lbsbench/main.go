// Command lbsbench regenerates the paper's evaluation: every figure
// (11–21) and Table 1, printed as text tables whose rows/series mirror
// what the paper plots.
//
// Usage:
//
//	lbsbench -experiment fig14              # one experiment, quick scale
//	lbsbench -experiment all -scale paper   # the whole evaluation
//	lbsbench -experiment table1 -runs 10 -n 3000 -budget 20000
//
// Scales: "quick" (seconds, for smoke runs) and "paper" (the paper's
// 25-run settings); individual -n/-runs/-budget/-k flags override the
// chosen scale.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"repro/internal/experiments"
)

type runner func(context.Context, experiments.Config) (*experiments.Figure, error)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment id: fig11..fig21, table1, or all")
		scale  = flag.String("scale", "quick", `scale preset: "quick" or "paper"`)
		n      = flag.Int("n", 0, "dataset size override")
		runs   = flag.Int("runs", 0, "repetitions override")
		budget = flag.Int64("budget", 0, "per-run query budget override")
		k      = flag.Int("k", 0, "service top-k override")
		seed   = flag.Int64("seed", 0, "base seed override")
		batch  = flag.Int("batch", 0, "samples per oracle round-trip for batch-capable estimators (0/1 = unbatched)")
	)
	flag.Parse()

	// Ctrl-C cancels the context; in-flight estimation runs stop at
	// the next sample boundary and the command exits promptly instead
	// of grinding through the remaining experiments.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cfg experiments.Config
	switch *scale {
	case "paper":
		cfg = experiments.Paper()
	case "quick":
		cfg = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *batch > 1 {
		cfg.Batch = *batch
	}

	figures := map[string]runner{
		"fig11": experiments.Fig11,
		"fig12": experiments.Fig12,
		"fig13": experiments.Fig13,
		"fig14": experiments.Fig14,
		"fig15": experiments.Fig15,
		"fig16": experiments.Fig16,
		"fig17": experiments.Fig17,
		"fig18": experiments.Fig18,
		"fig19": experiments.Fig19,
		"fig20": experiments.Fig20,
		"fig21": experiments.Fig21,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for id := range figures {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ids = append(ids, "table1", "mse")
	}

	// fail reports an experiment error uniformly: an interrupt exits
	// 130 ("interrupted") regardless of which experiment was running.
	fail := func(id string, err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}

	for _, id := range ids {
		start := time.Now()
		switch {
		case id == "table1":
			rows, err := experiments.Table1(ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			experiments.WriteTable1(os.Stdout, rows)
		case id == "mse":
			rows, err := experiments.MSEDecomposition(ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			experiments.WriteMSE(os.Stdout, rows)
		case figures[id] != nil:
			fig, err := figures[id](ctx, cfg)
			if err != nil {
				fail(id, err)
			}
			if err := fig.Write(os.Stdout); err != nil {
				fail(id, err)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig11..fig21, table1, mse, all)\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
