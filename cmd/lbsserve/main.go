// Command lbsserve runs a simulated location based service behind the
// HTTP API of internal/httpapi — the test bed for running the
// estimators against a networked service:
//
//	lbsserve -scenario schools -n 2000 -k 10 -addr :8080 &
//	# then point an httpapi.Client (or curl) at it:
//	curl 'localhost:8080/v1/lr?x=1200&y=900'
//	curl 'localhost:8080/v1/lnr?x=1200&y=900&category=school'
//	curl -d '{"points":[{"x":1200,"y":900},{"x":1300,"y":950}]}' \
//	     'localhost:8080/v1/query/lr:batch'
//
// -cache-size layers a sharded LRU answer cache in front of the
// service (a caching gateway): repeated queries are served from
// memory without consuming the budget.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/httpapi"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "schools", "schools | restaurants | starbucks | wechat | weibo")
		n         = flag.Int("n", 2000, "number of tuples")
		seed      = flag.Int64("seed", 1, "generator seed")
		k         = flag.Int("k", 10, "interface top-k")
		budget    = flag.Int64("budget", 0, "total query budget (0 = unlimited)")
		radius    = flag.Float64("radius", 0, "maximum coverage radius (0 = unlimited)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache-size", 0, "answer-cache entries in front of the service (0 = no cache); hits are served without consuming budget, like a caching gateway")
	)
	flag.Parse()

	var sc *workload.Scenario
	switch *scenario {
	case "schools":
		sc = workload.USASchools(*n, *seed)
	case "restaurants":
		sc = workload.USARestaurants(*n, *seed)
	case "starbucks":
		sc = workload.StarbucksUS(*n, *n*4, *seed)
	case "wechat":
		sc = workload.WeChatChina(*n, *seed)
	case "weibo":
		sc = workload.WeiboChina(*n, *seed)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	svc := lbs.NewService(sc.DB, lbs.Options{
		K: *k, Budget: *budget, MaxRadius: *radius,
	})
	var backend lbs.Querier = svc
	var cache *lbs.CachedOracle
	if *cacheSize > 0 {
		cache = lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: *cacheSize})
		backend = cache
	}
	fmt.Printf("serving %s (%d tuples, k=%d, cache=%d) on %s\n", sc.Name, sc.DB.Len(), *k, *cacheSize, *addr)

	// Serve until interrupted, then drain: in-flight queries see their
	// request contexts canceled and the listener closes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: httpapi.NewServer(backend)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		fmt.Printf("shut down after %d queries\n", svc.QueryCount())
		if cache != nil {
			st := cache.Stats()
			fmt.Printf("cache: %d hits, %d misses, %d bypasses, %d evictions, %d resident\n",
				st.Hits, st.Misses, st.Bypasses, st.Evictions, st.Entries)
		}
	}
}
