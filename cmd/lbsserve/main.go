// Command lbsserve runs a simulated location based service behind the
// HTTP API of internal/httpapi — the test bed for running the
// estimators against a networked service:
//
//	lbsserve -scenario schools -n 2000 -k 10 -addr :8080 &
//	# raw oracle queries:
//	curl 'localhost:8080/v1/lr?x=1200&y=900'
//	curl 'localhost:8080/v1/lnr?x=1200&y=900&category=school'
//	curl -d '{"points":[{"x":1200,"y":900},{"x":1300,"y":950}]}' \
//	     'localhost:8080/v1/query/lr:batch'
//	# estimation as a service: submit a job, watch it, stream its trace:
//	curl -d '{"method":"lr","seed":42,"aggregates":[{"kind":"count"}]}' \
//	     'localhost:8080/v1/estimate'
//	curl 'localhost:8080/v1/jobs/job-1'
//	curl -N 'localhost:8080/v1/jobs/job-1/trace'
//	curl -X DELETE 'localhost:8080/v1/jobs/job-1'
//	# live service counters (queries, budget, cache, jobs):
//	curl 'localhost:8080/v1/stats'
//
// -cache-size layers a sharded LRU answer cache in front of the
// service (a caching gateway): repeated queries are served from
// memory without consuming the budget. -job-max-queries caps the
// query spend of estimation jobs that set no bound of their own.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/httpapi"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "schools", "schools | restaurants | starbucks | wechat | weibo")
		n         = flag.Int("n", 2000, "number of tuples")
		seed      = flag.Int64("seed", 1, "generator seed")
		k         = flag.Int("k", 10, "interface top-k")
		budget    = flag.Int64("budget", 0, "total query budget (0 = unlimited)")
		radius    = flag.Float64("radius", 0, "maximum coverage radius (0 = unlimited)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache-size", 0, "answer-cache entries in front of the service (0 = no cache); hits are served without consuming budget, like a caching gateway")
		jobCap    = flag.Int64("job-max-queries", 0, "default query cap for estimation jobs that set none (0 = uncapped)")
		maxJobs   = flag.Int("max-jobs", 0, "retained estimation jobs before the oldest finished ones are evicted (0 = default)")
	)
	flag.Parse()

	var sc *workload.Scenario
	switch *scenario {
	case "schools":
		sc = workload.USASchools(*n, *seed)
	case "restaurants":
		sc = workload.USARestaurants(*n, *seed)
	case "starbucks":
		sc = workload.StarbucksUS(*n, *n*4, *seed)
	case "wechat":
		sc = workload.WeChatChina(*n, *seed)
	case "weibo":
		sc = workload.WeiboChina(*n, *seed)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	svc := lbs.NewService(sc.DB, lbs.Options{
		K: *k, Budget: *budget, MaxRadius: *radius,
	})
	var backend lbs.Querier = svc
	if *cacheSize > 0 {
		backend = lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: *cacheSize})
	}
	api := httpapi.NewServerWith(backend, httpapi.ServerOptions{
		Jobs: jobs.ManagerOptions{
			DefaultMaxQueries: *jobCap,
			MaxJobs:           *maxJobs,
		},
	})
	fmt.Printf("serving %s (%d tuples, k=%d, cache=%d) on %s\n", sc.Name, sc.DB.Len(), *k, *cacheSize, *addr)
	fmt.Printf("estimation jobs: POST /v1/estimate · live counters: GET /v1/stats\n")

	// Serve until interrupted, then drain: estimation jobs are
	// canceled (settling with partial results), in-flight queries see
	// their request contexts canceled, and the listener closes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: api}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		api.Jobs().CancelAll(shutdownCtx)
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		// The full picture (cache and job counters included) is served
		// live by GET /v1/stats; the shutdown line is just a closing
		// summary.
		fmt.Printf("shut down after %d queries\n", svc.QueryCount())
	}
}
