// Command benchjson turns `go test -bench` output into a JSON
// benchmark report, accumulating the repo's performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_geom.json
//
// The report has two sections: "current" (parsed from stdin) and
// "baseline". When the output file already exists its baseline is
// preserved verbatim, so the file self-primes on first run and keeps
// the original reference numbers afterwards; pass -rebase to overwrite
// the baseline with the current run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is one benchmark run.
type Report struct {
	Note       string      `json:"note,omitempty"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk layout: the frozen reference run plus the most
// recent one.
type File struct {
	Baseline *Report `json:"baseline,omitempty"`
	Current  *Report `json:"current"`
}

// The lazy name capture lets the optional -N GOMAXPROCS suffix match,
// so recorded names are machine-independent ("BenchmarkAddCut", not
// "BenchmarkAddCut-8") and pair up across baseline/current runs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

func parse(r *bufio.Scanner) []Benchmark {
	var out []Benchmark
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				b.BytesPerOp = &v
			case "allocs/op":
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out
}

func main() {
	out := flag.String("o", "", "output file (default stdout); an existing file's baseline is preserved")
	note := flag.String("note", "", "free-form note attached to the current run")
	rebase := flag.Bool("rebase", false, "replace the stored baseline with the current run")
	flag.Parse()

	cur := &Report{
		Note:       *note,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: parse(bufio.NewScanner(os.Stdin)),
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	f := &File{Current: cur}
	if *out != "" && !*rebase {
		if prev, err := os.ReadFile(*out); err == nil {
			var old File
			if json.Unmarshal(prev, &old) == nil && old.Baseline != nil {
				f.Baseline = old.Baseline
			}
		}
	}
	if f.Baseline == nil {
		base := *cur
		if base.Note == "" {
			base.Note = "self-primed: first recorded run"
		}
		f.Baseline = &base
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
