// Command voronoisvg renders the Figure-11 picture: the Voronoi
// decomposition of a Starbucks-like POI set over the synthetic US
// plane, written as an SVG file. The vastly different cell sizes —
// tiny in urban clusters, enormous in rural gaps — are the visual
// argument for weighted sampling (§5.2).
//
// Usage:
//
//	voronoisvg -n 1200 -o starbucks.svg -width 1600
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/voronoi"
	"repro/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 1200, "number of Starbucks stores")
		seed  = flag.Int64("seed", 1, "generator seed")
		width = flag.Int("width", 1600, "SVG pixel width")
		out   = flag.String("o", "starbucks.svg", "output file")
	)
	flag.Parse()

	sc := workload.StarbucksUS(*n, 0, *seed)
	d := voronoi.Compute(sc.DB, 1)
	st := d.CellStats()
	fmt.Printf("cells: %d  min %.3g km²  median %.3g  mean %.3g  max %.3g  gini %.3f\n",
		st.N, st.Min, st.P50, st.Mean, st.Max, st.Gini)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := d.WriteSVG(f, *width); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
