// Package jobs turns estimation runs into first-class server
// resources: a Manager creates, runs, observes and cancels estimation
// jobs over a shared service backend. Each job compiles a declarative
// request — method, per-job RNG seed, core.AggSpec aggregates, run
// options — through the multi-aggregate query planner (core.PlanBatch:
// shared sample streams, fused operators, variance-driven budget
// allocation across method groups) and wires it to a job-scoped budget
// querier (lbs.ScopedQuerier), so concurrent jobs share the service's
// budget and cache while each keeps its own cost meter and cap.
// Parallel jobs (Parallelism > 1) keep the fork/merge driver. The
// HTTP layer of internal/httpapi exposes the manager as
// POST /v1/estimate, GET/DELETE /v1/jobs/{id} and the NDJSON trace
// stream GET /v1/jobs/{id}/trace.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lbs"
)

// ErrTableFull is returned by Manager.Create when every retained job
// is still running and the table cannot take another — a transient
// server-capacity condition, not a malformed request. The HTTP layer
// maps it to 429 with code=jobs_exhausted, which retry policies treat
// as retryable (capacity clears when a job settles) in contrast to the
// permanent budget_exhausted 429.
var ErrTableFull = errors.New("jobs: job table full")

// Method names of the estimation algorithms a job can run.
const (
	MethodAuto = "auto" // let the planner's cost model choose per group
	MethodLR   = "lr"   // LR-LBS-AGG (§3), all error-reduction devices on
	MethodLNR  = "lnr"  // LNR-LBS-AGG (§4)
	MethodNNO  = "nno"  // LR-LBS-NNO baseline (Dalvi et al., KDD 2011)
)

// State is a job's lifecycle phase.
type State string

const (
	// StateRunning: the estimation goroutine is drawing samples.
	StateRunning State = "running"
	// StateDone: the run finished by one of its stopping rules.
	StateDone State = "done"
	// StateCanceled: the run was canceled; Results hold the samples
	// completed before the cancel (partial results).
	StateCanceled State = "canceled"
	// StateFailed: the run died on an error before completing a single
	// sample, or on a non-graceful transport error.
	StateFailed State = "failed"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s != StateRunning }

// RunOptions are the wire-expressible run bounds of one job — the
// declarative form of the Driver's functional options.
type RunOptions struct {
	// MaxSamples stops the run after n completed samples (0 = unlimited).
	MaxSamples int `json:"max_samples,omitempty"`
	// MaxQueries bounds the job's own query spend: it is both a hard
	// cap on the job's budget scope and the Driver's between-samples
	// stopping rule (0 = unlimited).
	MaxQueries int64 `json:"max_queries,omitempty"`
	// TargetCI stops the run once every aggregate's 95 % confidence
	// half-width falls below rel × |estimate| (0 disables). On the
	// planner path (Parallelism ≤ 1) the rule is per requested
	// aggregate — AVG specs converge on their delta-method ratio CI —
	// and retires each method group independently.
	TargetCI float64 `json:"target_ci,omitempty"`
	// Parallelism draws samples from n concurrent estimator forks.
	Parallelism int `json:"parallelism,omitempty"`
	// Batch draws up to m samples per oracle round-trip.
	Batch int `json:"batch,omitempty"`
}

// Spec is a declarative estimation request: everything needed to run
// the paper's algorithms server-side, expressible as JSON.
type Spec struct {
	// Method selects the algorithm: auto | lr | lnr | nno. "auto" lets
	// the query planner's cost model choose per method group (over this
	// server's location-returned backend it resolves to lr).
	Method string `json:"method"`
	// Seed drives the job's randomness; the same seed, spec and budget
	// reproduce the same estimates.
	Seed int64 `json:"seed"`
	// Aggregates are the declarative aggregate specs to estimate.
	Aggregates []core.AggSpec `json:"aggregates"`
	// Metric names the distance metric this spec was compiled for
	// (euclidean | haversine). Empty accepts whatever the server runs;
	// set, the server (and the HTTP client, before spending a network
	// round-trip) refuses to run the job against a backend ranking in a
	// different metric — the estimates would silently mean something
	// else.
	Metric string `json:"metric,omitempty"`
	// Options bound the run.
	Options RunOptions `json:"options"`
}

// maxParallelism and maxBatch bound the per-job resources one request
// can demand of the server.
const (
	maxParallelism = 64
	maxBatch       = 4096
)

// Validate rejects malformed specs (before any compilation).
func (s *Spec) Validate() error {
	switch s.Method {
	case MethodAuto, MethodLR, MethodLNR, MethodNNO:
	case "":
		return fmt.Errorf("jobs: missing method (want auto|lr|lnr|nno)")
	default:
		return fmt.Errorf("jobs: unknown method %q (want auto|lr|lnr|nno)", s.Method)
	}
	if len(s.Aggregates) == 0 {
		return fmt.Errorf("jobs: no aggregates given")
	}
	if s.Metric != "" {
		if _, err := geo.ParseMetric(s.Metric); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	o := s.Options
	if o.MaxSamples < 0 || o.MaxQueries < 0 || o.TargetCI < 0 {
		return fmt.Errorf("jobs: negative run option")
	}
	if o.Parallelism < 0 || o.Parallelism > maxParallelism {
		return fmt.Errorf("jobs: parallelism %d out of range [0,%d]", o.Parallelism, maxParallelism)
	}
	if o.Batch < 0 || o.Batch > maxBatch {
		return fmt.Errorf("jobs: batch %d out of range [0,%d]", o.Batch, maxBatch)
	}
	return nil
}

// JSONFloat marshals like a float64 but encodes NaN/±Inf as null, so
// job views with undefined estimates (e.g. AVG over a zero count)
// remain valid JSON.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON implements json.Unmarshaler; null decodes to NaN.
func (f *JSONFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// ResultView is the wire form of one aggregate's estimation result.
type ResultView struct {
	Name     string    `json:"name"`
	Estimate JSONFloat `json:"estimate"`
	StdErr   JSONFloat `json:"std_err"`
	CI95     JSONFloat `json:"ci95"`
	Samples  int       `json:"samples"`
	Queries  int64     `json:"queries"`
	// DegradedSamples counts samples drawn while the backend answered
	// degraded (partial federation); omitted for healthy runs.
	DegradedSamples int `json:"degraded_samples,omitempty"`
}

// resultViewOf converts a core.Result (dropping the trace: the trace
// endpoint streams it instead).
func resultViewOf(r core.Result) ResultView {
	return ResultView{
		Name:            r.Name,
		Estimate:        JSONFloat(r.Estimate),
		StdErr:          JSONFloat(r.StdErr),
		CI95:            JSONFloat(r.CI95),
		Samples:         r.Samples,
		Queries:         r.Queries,
		DegradedSamples: r.DegradedSamples,
	}
}

// TraceEvent is one NDJSON line of a job's trace stream: the running
// estimate of one physical aggregate after one completed sample (AVG
// specs stream their SUM and COUNT components).
type TraceEvent struct {
	Agg      string    `json:"agg"`
	Queries  int64     `json:"queries"`
	Samples  int       `json:"samples"`
	Estimate JSONFloat `json:"estimate"`
	// Degraded marks samples drawn from a partially-available backend.
	Degraded bool `json:"degraded,omitempty"`
}

// PlanGroupView is the wire form of one method group of a planned
// job: which specs it answers, with which algorithm and seed, and its
// live sample/query account.
type PlanGroupView struct {
	Method string `json:"method"`
	Seed   int64  `json:"seed"`
	// Specs are indices into the request's aggregates list.
	Specs []int `json:"specs"`
	// Aggs names the fused physical aggregates the group runs.
	Aggs []string `json:"aggs"`
	// Preds is the group's count of distinct canonical predicates.
	Preds         int     `json:"preds"`
	NeedsLocation bool    `json:"needs_location,omitempty"`
	CostPerSample float64 `json:"cost_per_sample"`
	Samples       int     `json:"samples"`
	Queries       int64   `json:"queries"`
	CIMet         bool    `json:"ci_met,omitempty"`
}

// PlanView is the wire form of a job's compiled query plan: present on
// jobs run through the multi-aggregate planner (Parallelism ≤ 1),
// absent on legacy parallel jobs. Purely additive to the job view, so
// pre-planner clients keep decoding.
type PlanView struct {
	// Preds is the number of distinct canonical predicates across the
	// whole batch (requested aggregates ≥ Preds means sharing).
	Preds  int             `json:"preds"`
	Groups []PlanGroupView `json:"groups"`
	// Replans counts the checkpoint-boundary budget re-allocations
	// (recorded once the job settles; multi-group plans only).
	Replans int `json:"replans,omitempty"`
}

// View is a JSON-marshalable snapshot of a job.
type View struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Error   string `json:"error,omitempty"`
	Method  string `json:"method"`
	Seed    int64  `json:"seed"`
	Samples int    `json:"samples"`
	// Queries is the job-scoped query spend so far.
	Queries int64 `json:"queries"`
	// DegradedSamples counts samples drawn while the backend answered
	// degraded (a federation shard down or skipped); DegradedQueries is
	// the underlying count of partially-answered queries. Both 0 — and
	// omitted — for healthy runs.
	DegradedSamples int   `json:"degraded_samples,omitempty"`
	DegradedQueries int64 `json:"degraded_queries,omitempty"`
	// TraceLen is the number of trace events recorded so far.
	TraceLen int `json:"trace_len"`
	// Results are final when State is done, the latest partials while
	// running or canceled mid-run. On the planner path there is one
	// entry per requested aggregate (its per-aggregate status: AVG specs
	// report their finished ratio, Samples/Queries the owning group's
	// account).
	Results []ResultView `json:"results,omitempty"`
	// Plan describes the compiled multi-aggregate plan (planner path
	// only).
	Plan *PlanView `json:"plan,omitempty"`
	// Resumed marks a job recovered from a durable store and re-run
	// after a restart (same ID, seed and budget as the original
	// submission, so the final estimate is the one the lost run would
	// have produced).
	Resumed    bool       `json:"resumed,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// MaxJobs caps how many jobs (running + finished) the manager
	// retains; creating past the cap evicts the oldest finished job,
	// and fails when every retained job is still running. Default 1024.
	MaxJobs int
	// DefaultMaxQueries is applied to jobs that set no MaxQueries of
	// their own (0 = no default, jobs run until the service refuses).
	DefaultMaxQueries int64
	// Store, when set, makes jobs durable: specs persist at creation,
	// views checkpoint every CheckpointEvery samples and at settle, and
	// Recover reloads the table after a restart (finished jobs keep
	// their results; interrupted jobs re-run deterministically).
	Store Store
	// CheckpointEvery is the sample interval between durable view
	// checkpoints of a running job (default 256 when a Store is set).
	CheckpointEvery int
}

// Manager owns the job table and the shared backend every job queries
// through. It is safe for concurrent use.
type Manager struct {
	backend lbs.Querier
	opts    ManagerOptions

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // creation order, for eviction
	seq   int64
}

// NewManager creates a manager over backend (the raw simulator or a
// cache gateway in front of it).
func NewManager(backend lbs.Querier, opts ManagerOptions) *Manager {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1024
	}
	if opts.Store != nil && opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 256
	}
	return &Manager{
		backend: backend,
		opts:    opts,
		jobs:    make(map[string]*Job),
	}
}

// Job is one estimation run: its spec, lifecycle state, partial or
// final results, and the trace stream.
type Job struct {
	ID   string
	Spec Spec

	plan   *core.AggPlan   // legacy path (Parallelism > 1)
	qplan  *core.QueryPlan // planner path (Parallelism ≤ 1)
	scoped *lbs.ScopedQuerier
	// tol absorbs partial-federation annotations under the scope so
	// estimators see clean answers; its counters feed the job's
	// degraded accounting.
	tol    *lbs.TolerantQuerier
	cancel context.CancelFunc
	done   chan struct{}

	// durability (nil/zero on an ephemeral manager).
	persist   Store
	ckptEvery int
	resumed   bool
	saves     sync.WaitGroup // in-flight async checkpoint writes

	mu       sync.Mutex
	state    State
	err      error
	lastCkpt int           // samples at the last durable checkpoint
	frozen   *View         // recovered finished job: the stored view, verbatim
	results  []core.Result // finished: plan-level results
	partial  []core.Result // legacy running: physical partials from progress
	// planner-path run state, fed by onPlanProgress.
	planPartial []core.Result     // per requested aggregate
	planStats   []planGroupStat   // per method group, live
	planDone    *core.BatchResult // final batch account
	// trace is a bounded window of the newest events; traceBase is the
	// absolute index of trace[0], so followers address events by
	// absolute position even after old ones are trimmed.
	trace      []TraceEvent
	traceBase  int
	traceWake  chan struct{} // closed+replaced on every trace append / finish
	degraded   int           // samples completed while the backend answered degraded
	createdAt  time.Time
	finishedAt time.Time
}

// planGroupStat is one method group's live sample/query account.
type planGroupStat struct {
	Samples int
	Queries int64
}

// maxTraceEvents bounds the per-job trace memory: a job is a server
// resource an unauthenticated client can create, so an effectively
// unbounded run (huge max_samples against an unlimited service) must
// not grow its trace without limit. When the window is full the oldest
// events are trimmed; late followers then start at the earliest
// retained event instead of the job's first sample.
const maxTraceEvents = 1 << 14

// Create validates and compiles spec, registers a new job and starts
// its estimation goroutine. The job runs until a stopping rule
// triggers or Cancel is called.
func (m *Manager) Create(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Options.MaxQueries == 0 && m.opts.DefaultMaxQueries > 0 {
		spec.Options.MaxQueries = m.opts.DefaultMaxQueries
	}
	return m.start(spec, "", false)
}

// start compiles a validated spec and launches its job. id is empty
// for fresh submissions (the manager allocates the next "job-<seq>");
// recovery passes the original ID back in so clients polling a
// pre-restart job find it again.
func (m *Manager) start(spec Spec, id string, resumed bool) (*Job, error) {
	// Parallelism ≤ 1 runs through the multi-aggregate query planner:
	// predicates dedup across the batch, same-selection aggregates fuse,
	// and the job's budget is re-allocated across method groups by
	// observed variance. Parallel jobs keep the legacy fork/merge driver
	// (the planner's fused aggregates share per-record memos and are not
	// safe for concurrent samplers); "auto" there resolves to lr.
	var plan *core.AggPlan
	var qplan *core.QueryPlan
	var err error
	if spec.Options.Parallelism > 1 {
		plan, err = core.CompilePlan(spec.Aggregates)
	} else {
		qplan, err = core.PlanBatch(spec.Aggregates, core.PlanOptions{
			Method:     spec.Method,
			Seed:       spec.Seed,
			MaxQueries: spec.Options.MaxQueries,
			MaxSamples: spec.Options.MaxSamples,
			TargetCI:   spec.Options.TargetCI,
			Batch:      spec.Options.Batch,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}

	m.mu.Lock()
	if len(m.jobs) >= m.opts.MaxJobs && !m.evictOldestFinishedLocked() {
		n := len(m.jobs)
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d running jobs)", ErrTableFull, n)
	}
	if id == "" {
		m.seq++
		id = "job-" + strconv.FormatInt(m.seq, 10)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Scope over tolerance: the scope meters logical queries (degraded
	// answers included — they are answers) while the tolerant layer
	// strips partial annotations before the estimators see them.
	tol := lbs.NewTolerantQuerier(m.backend)
	j := &Job{
		ID:        id,
		Spec:      spec,
		plan:      plan,
		qplan:     qplan,
		scoped:    lbs.NewScopedQuerier(tol, spec.Options.MaxQueries),
		tol:       tol,
		cancel:    cancel,
		done:      make(chan struct{}),
		persist:   m.opts.Store,
		ckptEvery: m.opts.CheckpointEvery,
		resumed:   resumed,
		state:     StateRunning,
		traceWake: make(chan struct{}),
		createdAt: time.Now(),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	if j.persist != nil {
		// The spec is durable before the run starts: a crash between
		// submission and the first checkpoint still recovers the job.
		_ = j.persist.Save(j.storedView())
	}
	go j.run(ctx)
	return j, nil
}

// evictOldestFinishedLocked drops the oldest finished job to make room.
func (m *Manager) evictOldestFinishedLocked() bool {
	for i, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		finished := j.state.Finished()
		j.mu.Unlock()
		if finished {
			delete(m.jobs, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			if m.opts.Store != nil {
				// Evicted means forgotten: recovery must not resurrect it.
				_ = m.opts.Store.Delete(id)
			}
			return true
		}
	}
	return false
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a running job; it is a no-op on
// finished jobs. Use Job.Wait to observe the final (partial) results.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	return j, true
}

// CancelAll cancels every running job and waits for them to settle,
// bounded by ctx — the manager half of a graceful server shutdown.
func (m *Manager) CancelAll(ctx context.Context) {
	m.mu.Lock()
	all := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	for _, j := range all {
		j.cancel()
	}
	for _, j := range all {
		if ctx.Err() != nil {
			return
		}
		_ = j.Wait(ctx)
	}
}

// Counts returns how many retained jobs are in each state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]int, 4)
	for _, j := range m.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// runOptions translates the wire options into Driver options for the
// legacy (Parallelism > 1) path, always including the progress hook
// that feeds the trace and partials.
func (j *Job) runOptions() []core.RunOption {
	o := j.Spec.Options
	// The job keeps its own bounded trace window fed by progress;
	// WithoutTrace stops the driver from accumulating a second,
	// unbounded copy inside the Results.
	opts := []core.RunOption{core.WithProgress(j.onProgress), core.WithoutTrace()}
	if o.MaxSamples > 0 {
		opts = append(opts, core.WithMaxSamples(o.MaxSamples))
	}
	if o.MaxQueries > 0 {
		opts = append(opts, core.WithMaxQueries(o.MaxQueries))
	}
	if o.TargetCI > 0 {
		opts = append(opts, core.WithTargetCI(o.TargetCI))
	}
	if o.Parallelism > 1 {
		opts = append(opts, core.WithParallelism(o.Parallelism))
	}
	if o.Batch > 1 {
		opts = append(opts, core.WithBatch(o.Batch))
	}
	return opts
}

// buildEstimator constructs the requested algorithm over the job's
// budget scope, seeded by the job's seed.
func buildEstimator(method string, svc core.Oracle, seed int64) core.Estimator {
	switch method {
	case MethodLNR:
		return core.NewLNRAggregator(svc, core.LNROptions{Seed: seed})
	case MethodNNO:
		return core.NewNNOBaseline(svc, core.NNOOptions{Seed: seed})
	default:
		// MethodLR, or MethodAuto on the legacy parallel path (the
		// backend returns locations, so auto resolves to lr — the same
		// choice the planner's cost model makes).
		return core.NewLRAggregator(svc, core.DefaultLROptions(seed))
	}
}

// run executes the estimation and settles the job.
func (j *Job) run(ctx context.Context) {
	defer close(j.done)
	defer j.persistSettle() // runs after the settle below, before done closes
	if j.qplan != nil {
		j.runPlanned(ctx)
		return
	}
	est := buildEstimator(j.Spec.Method, j.scoped, j.Spec.Seed)
	results, err := core.Run(ctx, est, j.plan.Aggs, j.runOptions()...)

	j.mu.Lock()
	defer func() {
		j.finishedAt = time.Now()
		j.wakeLocked()
		j.mu.Unlock()
	}()
	if results != nil {
		j.results = j.plan.Finish(results)
	}
	switch {
	case ctx.Err() != nil:
		// Canceled: the driver returned whatever samples completed
		// (err != nil only when not even one did).
		j.state = StateCanceled
		j.err = err
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
	}
}

// runPlanned executes the job's QueryPlan (the planner path) and
// settles the job with the same state rules as the legacy driver.
func (j *Job) runPlanned(ctx context.Context) {
	br, err := j.qplan.Execute(ctx, j.scoped, j.onPlanProgress)

	j.mu.Lock()
	defer func() {
		j.finishedAt = time.Now()
		j.wakeLocked()
		j.mu.Unlock()
	}()
	if br != nil {
		j.results = br.Results
		j.planDone = br
	}
	switch {
	case ctx.Err() != nil:
		// Canceled: Execute returned the completed samples as partials
		// (err != nil only when not even one finished).
		j.state = StateCanceled
		j.err = err
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
	}
}

// onProgress is the Driver's per-sample callback: it appends one trace
// event per physical aggregate and refreshes the partial results. It
// runs on the driver's collector goroutine.
func (j *Job) onProgress(points []core.TracePoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.partial == nil {
		j.partial = make([]core.Result, len(j.plan.Aggs))
	}
	if len(points) > 0 && points[0].Degraded {
		j.degraded++
	}
	for i, tp := range points {
		name := j.plan.Aggs[i].Name
		j.trace = append(j.trace, TraceEvent{
			Agg:      name,
			Queries:  tp.Queries,
			Samples:  tp.Samples,
			Estimate: JSONFloat(tp.Estimate),
			Degraded: tp.Degraded,
		})
		j.partial[i] = core.Result{
			Name:     name,
			Estimate: tp.Estimate,
			Samples:  tp.Samples,
			Queries:  tp.Queries,
		}
	}
	j.trimTraceLocked()
	j.maybeCheckpointLocked()
	j.wakeLocked()
}

// onPlanProgress is Execute's per-sample callback on the planner path:
// one trace event per fused physical aggregate of the sampled group,
// plus the group's finished per-spec partials. It runs on the job's
// estimation goroutine.
func (j *Job) onPlanProgress(pp core.PlanProgress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.planPartial == nil {
		j.planPartial = make([]core.Result, len(j.qplan.Specs))
		for i := range j.planPartial {
			j.planPartial[i] = core.Result{Name: j.qplan.Specs[i].Name()}
		}
		j.planStats = make([]planGroupStat, len(j.qplan.Groups))
	}
	grp := &j.qplan.Groups[pp.Group]
	if pp.Degraded {
		j.degraded++
	}
	for i, tp := range pp.Points {
		j.trace = append(j.trace, TraceEvent{
			Agg:      grp.Aggs[i].Name,
			Queries:  tp.Queries,
			Samples:  tp.Samples,
			Estimate: JSONFloat(tp.Estimate),
			Degraded: tp.Degraded,
		})
	}
	// pp's slices are reused between samples; copy the spec results out.
	for li, si := range pp.Specs {
		j.planPartial[si] = pp.Partial[li]
	}
	j.planStats[pp.Group] = planGroupStat{Samples: pp.GroupSamples, Queries: pp.GroupQueries}
	j.trimTraceLocked()
	j.maybeCheckpointLocked()
	j.wakeLocked()
}

// trimTraceLocked trims the trace window in chunks (half at a time) so
// long jobs do a memmove every ~8k events instead of every append;
// callers hold j.mu.
func (j *Job) trimTraceLocked() {
	if len(j.trace) > maxTraceEvents {
		drop := len(j.trace) - maxTraceEvents/2
		n := copy(j.trace, j.trace[drop:])
		j.trace = j.trace[:n]
		j.traceBase += drop
	}
}

// wakeLocked wakes every trace follower; callers hold j.mu.
func (j *Job) wakeLocked() {
	close(j.traceWake)
	j.traceWake = make(chan struct{})
}

// Wait blocks until the job settles or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns the settle channel (closed when the job finished).
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current view.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

// viewLocked assembles the job's view; callers hold j.mu. A recovered
// finished job returns its stored view verbatim — its in-memory run
// state (plans, scoped meter, trace) did not survive the restart.
func (j *Job) viewLocked() View {
	if j.frozen != nil {
		return *j.frozen
	}
	v := View{
		ID:              j.ID,
		State:           j.state,
		Method:          j.Spec.Method,
		Seed:            j.Spec.Seed,
		Queries:         j.scoped.QueryCount(),
		DegradedSamples: j.degraded,
		DegradedQueries: j.tol.DegradedCount(),
		TraceLen:        j.traceBase + len(j.trace),
		Resumed:         j.resumed,
		CreatedAt:       j.createdAt,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state.Finished() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	results := j.results
	if results == nil {
		switch {
		case j.qplan == nil && j.partial != nil:
			results = j.plan.Finish(j.partial)
		case j.qplan != nil && j.planPartial != nil:
			results = j.planPartial
		}
	}
	for _, r := range results {
		v.Results = append(v.Results, resultViewOf(r))
	}
	if len(results) > 0 {
		v.Samples = results[0].Samples
	}
	if j.qplan != nil {
		v.Plan = j.planViewLocked()
		// With several method groups each spec reports its own group's
		// samples; the job-level count is the total across groups.
		v.Samples = 0
		if j.planDone != nil {
			v.Samples = j.planDone.Samples
		} else {
			for _, st := range j.planStats {
				v.Samples += st.Samples
			}
		}
	}
	return v
}

// planViewLocked assembles the wire view of the job's query plan from
// the compiled plan and the live (or final) group accounts; callers
// hold j.mu.
func (j *Job) planViewLocked() *PlanView {
	p := j.qplan
	pv := &PlanView{Preds: p.Preds}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		names := make([]string, len(g.Aggs))
		for i := range g.Aggs {
			names[i] = g.Aggs[i].Name
		}
		gv := PlanGroupView{
			Method:        g.Method,
			Seed:          g.Seed,
			Specs:         append([]int(nil), g.Specs...),
			Aggs:          names,
			Preds:         len(g.PredHashes),
			NeedsLocation: g.NeedsLocation,
			CostPerSample: g.CostPerSample,
		}
		switch {
		case j.planDone != nil:
			gr := j.planDone.Groups[gi]
			gv.Samples, gv.Queries, gv.CIMet = gr.Samples, gr.Queries, gr.CIMet
		case j.planStats != nil:
			gv.Samples, gv.Queries = j.planStats[gi].Samples, j.planStats[gi].Queries
		}
		pv.Groups = append(pv.Groups, gv)
	}
	if j.planDone != nil {
		pv.Replans = len(j.planDone.Replans)
	}
	return pv
}

// TraceFrom copies the trace events at absolute index ≥ from,
// reporting the absolute index right after the copied events, whether
// the job has settled, and the wake channel to wait on for more. When
// from falls before the retained window (trimmed by maxTraceEvents),
// the copy starts at the earliest retained event.
func (j *Job) TraceFrom(from int) (events []TraceEvent, next int, finished bool, wake <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.traceBase {
		from = j.traceBase
	}
	if off := from - j.traceBase; off < len(j.trace) {
		events = make([]TraceEvent, len(j.trace)-off)
		copy(events, j.trace[off:])
	}
	return events, from + len(events), j.state.Finished(), j.traceWake
}

// FollowTrace replays the retained trace from its earliest event and
// follows it until the job settles, the callback returns an error, or
// ctx is done. fn is called once per event, in order. For jobs longer
// than the retained window the replay starts mid-stream (every event
// carries its own Samples/Queries coordinates, so the stream stays
// interpretable).
func (j *Job) FollowTrace(ctx context.Context, fn func(TraceEvent) error) error {
	i := 0
	for {
		events, next, finished, wake := j.TraceFrom(i)
		for _, e := range events {
			if err := fn(e); err != nil {
				return err
			}
		}
		i = next
		if len(events) > 0 {
			continue // drain before deciding the job is over
		}
		if finished {
			return nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
