package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func testBackend(t *testing.T, budget int64) *lbs.Service {
	t.Helper()
	sc := workload.USASchools(200, 3)
	return lbs.NewService(sc.DB, lbs.Options{K: 5, Budget: budget})
}

func waitSettled(t *testing.T, j *Job) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not settle: %v", j.ID, err)
	}
	return j.Snapshot()
}

func TestJobRunsToDone(t *testing.T) {
	m := NewManager(testBackend(t, 400), ManagerOptions{})
	j, err := m.Create(Spec{
		Method: MethodNNO,
		Seed:   7,
		Aggregates: []core.AggSpec{
			core.CountSpec(),
			core.SumSpec("enrollment"),
			core.AvgSpec("enrollment"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitSettled(t, j)
	if v.State != StateDone {
		t.Fatalf("state %s (err %q), want done", v.State, v.Error)
	}
	if len(v.Results) != 3 {
		t.Fatalf("got %d results, want 3 (count, sum, avg)", len(v.Results))
	}
	if v.Samples <= 0 || v.Queries <= 0 {
		t.Fatalf("no work recorded: samples=%d queries=%d", v.Samples, v.Queries)
	}
	if v.Results[0].Estimate <= 0 {
		t.Errorf("count estimate %g, want > 0", float64(v.Results[0].Estimate))
	}
	// AVG = SUM/COUNT of the same physical run.
	wantAvg := float64(v.Results[1].Estimate) / float64(v.Results[0].Estimate)
	if got := float64(v.Results[2].Estimate); math.Abs(got-wantAvg) > 1e-9*math.Abs(wantAvg) {
		t.Errorf("avg %g, want sum/count = %g", got, wantAvg)
	}
	if v.TraceLen == 0 {
		t.Errorf("no trace recorded")
	}
}

func TestJobSeedReproducible(t *testing.T) {
	run := func() View {
		m := NewManager(testBackend(t, 300), ManagerOptions{})
		j, err := m.Create(Spec{
			Method:     MethodNNO,
			Seed:       42,
			Aggregates: []core.AggSpec{core.CountSpec()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return waitSettled(t, j)
	}
	a, b := run(), run()
	if a.Results[0].Estimate != b.Results[0].Estimate {
		t.Fatalf("same seed, different estimates: %g vs %g",
			float64(a.Results[0].Estimate), float64(b.Results[0].Estimate))
	}
	if a.Samples != b.Samples || a.Queries != b.Queries {
		t.Fatalf("same seed, different cost: %d/%d vs %d/%d samples/queries",
			a.Samples, a.Queries, b.Samples, b.Queries)
	}
}

func TestJobCancelYieldsPartialResults(t *testing.T) {
	// Unlimited service: without a cancel the job would run for a very
	// long time (maxSamples is huge).
	m := NewManager(testBackend(t, 0), ManagerOptions{})
	j, err := m.Create(Spec{
		Method:     MethodNNO,
		Seed:       1,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxSamples: 10_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one sample completed, then cancel.
	deadline := time.Now().Add(20 * time.Second)
	for j.Snapshot().Samples == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sample completed in 20s")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(j.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	v := waitSettled(t, j)
	if v.State != StateCanceled {
		t.Fatalf("state %s, want canceled", v.State)
	}
	if len(v.Results) == 0 || v.Results[0].Samples == 0 {
		t.Fatalf("canceled job returned no partial results: %+v", v.Results)
	}
}

func TestJobScopedBudget(t *testing.T) {
	// Two sequential jobs over one unlimited service: each stops at its
	// own MaxQueries, counting only its own spend.
	svc := testBackend(t, 0)
	m := NewManager(svc, ManagerOptions{})
	for i := 0; i < 2; i++ {
		j, err := m.Create(Spec{
			Method:     MethodNNO,
			Seed:       int64(i),
			Aggregates: []core.AggSpec{core.CountSpec()},
			Options:    RunOptions{MaxQueries: 150},
		})
		if err != nil {
			t.Fatal(err)
		}
		v := waitSettled(t, j)
		if v.State != StateDone {
			t.Fatalf("job %d: state %s (err %q)", i, v.State, v.Error)
		}
		if v.Queries == 0 || v.Queries > 150+150 {
			// One sample's worth of overshoot is legal; 2x is not.
			t.Fatalf("job %d spent %d queries against a 150 cap", i, v.Queries)
		}
	}
}

func TestFollowTraceReplaysAndFollows(t *testing.T) {
	m := NewManager(testBackend(t, 0), ManagerOptions{})
	j, err := m.Create(Spec{
		Method:     MethodNNO,
		Seed:       5,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxSamples: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var events []TraceEvent
	if err := j.FollowTrace(ctx, func(e TraceEvent) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 25 {
		t.Fatalf("got %d trace events, want 25 (one per sample, one aggregate)", len(events))
	}
	for i, e := range events {
		if e.Samples != i+1 {
			t.Fatalf("event %d has samples=%d, want %d (ordered replay)", i, e.Samples, i+1)
		}
	}
	// A second follower after settle replays the same stream.
	n := 0
	if err := j.FollowTrace(ctx, func(TraceEvent) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("late follower saw %d events, want 25", n)
	}
}

func TestTraceWindowBounded(t *testing.T) {
	// Drive onProgress directly far past the window: memory must stay
	// bounded and followers must resume at the earliest retained event
	// with absolute indexing intact.
	plan, err := core.CompilePlan([]core.AggSpec{core.CountSpec()})
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		plan:      plan,
		state:     StateRunning,
		traceWake: make(chan struct{}),
	}
	total := maxTraceEvents + maxTraceEvents/2 + 123
	for i := 0; i < total; i++ {
		j.onProgress([]core.TracePoint{{Samples: i + 1, Queries: int64(i), Estimate: 1}})
	}
	j.mu.Lock()
	j.state = StateDone
	retained := len(j.trace)
	j.mu.Unlock()
	if retained > maxTraceEvents {
		t.Fatalf("window holds %d events, cap is %d", retained, maxTraceEvents)
	}
	var got []TraceEvent
	if err := j.FollowTrace(context.Background(), func(e TraceEvent) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != retained {
		t.Fatalf("follower saw %d events, window holds %d", len(got), retained)
	}
	if got[len(got)-1].Samples != total {
		t.Fatalf("last event samples=%d, want %d", got[len(got)-1].Samples, total)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Samples != got[i-1].Samples+1 {
			t.Fatalf("gap inside the retained window at %d", i)
		}
	}
}

func TestManagerValidation(t *testing.T) {
	m := NewManager(testBackend(t, 100), ManagerOptions{})
	cases := []Spec{
		{Method: "magic", Aggregates: []core.AggSpec{core.CountSpec()}},
		{Method: MethodLR},
		{Method: MethodLR, Aggregates: []core.AggSpec{{Kind: "median"}}},
		{Method: MethodLR, Aggregates: []core.AggSpec{core.CountSpec()}, Options: RunOptions{Parallelism: 1000}},
		{Method: MethodLR, Aggregates: []core.AggSpec{core.CountSpec()}, Options: RunOptions{MaxSamples: -1}},
		{Method: MethodLR, Aggregates: []core.AggSpec{core.CountSpec().WithWhere(core.PredSpec{Op: "and"})}},
	}
	for i, spec := range cases {
		if _, err := m.Create(spec); err == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
}

func TestManagerTableFull(t *testing.T) {
	m := NewManager(testBackend(t, 0), ManagerOptions{MaxJobs: 1})
	running, err := m.Create(Spec{
		Method:     MethodNNO,
		Seed:       1,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxSamples: 10_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Spec{
		Method: MethodNNO, Seed: 2, Aggregates: []core.AggSpec{core.CountSpec()},
	}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("second create over a full table of running jobs: %v, want ErrTableFull", err)
	}
	// Once the running job settles, its slot is evictable.
	m.Cancel(running.ID)
	waitSettled(t, running)
	if _, err := m.Create(Spec{
		Method: MethodNNO, Seed: 3, Aggregates: []core.AggSpec{core.CountSpec()},
		Options: RunOptions{MaxSamples: 1},
	}); err != nil {
		t.Fatalf("create after eviction became possible: %v", err)
	}
}

func TestJobAvgZeroCountNullOnWire(t *testing.T) {
	// An AVG whose selection matches nothing has an undefined ratio: the
	// job must finish done (not failed) and the wire view must carry
	// estimate, std_err and ci95 as JSON null — never NaN or a fake CI.
	m := NewManager(testBackend(t, 0), ManagerOptions{})
	j, err := m.Create(Spec{
		Method: MethodLR,
		Seed:   11,
		Aggregates: []core.AggSpec{
			core.AvgSpec("enrollment").WithWhere(core.AttrCmp("enrollment", "lt", -1)).WithLabel("avg_none"),
		},
		Options: RunOptions{MaxSamples: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitSettled(t, j)
	if v.State != StateDone {
		t.Fatalf("state %s (err %q), want done", v.State, v.Error)
	}
	if len(v.Results) != 1 || v.Results[0].Name != "avg_none" {
		t.Fatalf("results %+v, want one named avg_none", v.Results)
	}
	r := v.Results[0]
	if !math.IsNaN(float64(r.Estimate)) || !math.IsNaN(float64(r.StdErr)) || !math.IsNaN(float64(r.CI95)) {
		t.Fatalf("undefined AVG should be NaN across the board, got %+v", r)
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("view must marshal: %v", err)
	}
	for _, key := range []string{`"estimate":null`, `"std_err":null`, `"ci95":null`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("wire view missing %s: %s", key, data)
		}
	}
}

func TestJobViewCarriesPlan(t *testing.T) {
	// Planner-path jobs expose their compiled plan: fused physical
	// aggregates, deduped predicates, per-group method and account.
	where := core.TagEq("type", "public")
	m := NewManager(testBackend(t, 0), ManagerOptions{})
	j, err := m.Create(Spec{
		Method: MethodAuto,
		Seed:   3,
		Aggregates: []core.AggSpec{
			core.CountSpec().WithWhere(where),
			core.SumSpec("enrollment").WithWhere(where),
			core.AvgSpec("enrollment").WithWhere(where),
		},
		Options: RunOptions{MaxSamples: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitSettled(t, j)
	if v.State != StateDone {
		t.Fatalf("state %s (err %q), want done", v.State, v.Error)
	}
	if v.Plan == nil {
		t.Fatal("planner-path job view has no plan")
	}
	if v.Plan.Preds != 1 {
		t.Fatalf("plan preds = %d, want 1 (one shared selection)", v.Plan.Preds)
	}
	if len(v.Plan.Groups) != 1 {
		t.Fatalf("plan groups = %d, want 1", len(v.Plan.Groups))
	}
	g := v.Plan.Groups[0]
	if g.Method != MethodLR {
		t.Fatalf("auto over a location-returned backend picked %q, want lr", g.Method)
	}
	if g.Seed != 3 {
		t.Fatalf("group 0 seed = %d, want the spec seed 3", g.Seed)
	}
	// COUNT, SUM and AVG over one selection fuse to 2 physicals.
	if len(g.Aggs) != 2 {
		t.Fatalf("fused aggs %v, want 2 (shared SUM and COUNT)", g.Aggs)
	}
	if len(g.Specs) != 3 || g.Samples != 8 || g.Queries == 0 || !sameSamples(v, 8) {
		t.Fatalf("group account off: %+v (view samples %d)", g, v.Samples)
	}
	// Parallel jobs take the legacy driver and carry no plan.
	jp, err := m.Create(Spec{
		Method:     MethodLR,
		Seed:       3,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxSamples: 8, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vp := waitSettled(t, jp); vp.Plan != nil {
		t.Fatalf("legacy parallel job unexpectedly carries a plan: %+v", vp.Plan)
	}
}

func sameSamples(v View, want int) bool { return v.Samples == want }

func TestJSONFloatNaN(t *testing.T) {
	v := View{Results: []ResultView{{Name: "AVG(x)", Estimate: JSONFloat(math.NaN())}}}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("view with NaN estimate must marshal: %v", err)
	}
	if !strings.Contains(string(data), `"estimate":null`) {
		t.Fatalf("NaN should encode as null: %s", data)
	}
	var back ResultView
	if err := json.Unmarshal([]byte(`{"name":"a","estimate":null}`), &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.Estimate)) {
		t.Fatalf("null should decode to NaN, got %g", float64(back.Estimate))
	}
}
