package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// federatedBackend builds a 4-shard federation with a fault injector
// per member and a one-failure breaker, for the degraded-job
// acceptance scenario.
func federatedBackend(t *testing.T) (*shard.Router, []*faults.Injector) {
	t.Helper()
	db := workload.USASchools(300, 9).DB
	res := shard.Resilience{BreakerThreshold: 1, BreakerCooldown: time.Hour, Seed: 1}
	inj := make([]*faults.Injector, 4)
	router, err := shard.FromPartsWrapped(shard.Partition(db, 4), lbs.Options{K: 5}, res,
		func(i int, q lbs.Querier) lbs.Querier {
			inj[i] = faults.New(q, faults.Spec{Seed: int64(i)})
			return inj[i]
		})
	if err != nil {
		t.Fatal(err)
	}
	return router, inj
}

// TestJobCompletesDegradedWithShardDown is the acceptance scenario of
// the fault-tolerance layer: one (non-owner) federation member is
// dead, its breaker is open, and a federated LR estimation job still
// runs to done — recording how many of its samples were drawn from
// the partial federation, in both the job view counters and the trace.
func TestJobCompletesDegradedWithShardDown(t *testing.T) {
	router, inj := federatedBackend(t)
	ctx := context.Background()

	// Kill shard 3 and poke one query it owns: the crisp owner failure
	// trips its one-failure breaker, and from here on the router routes
	// around the corpse, answering degraded.
	inj[3].Kill()
	pokePt := router.Stats().Shards[3].Region.Center()
	if _, err := router.QueryLR(ctx, pokePt, nil); !errors.Is(err, shard.ErrOwnerDown) {
		t.Fatalf("poke: want ErrOwnerDown, got %v", err)
	}
	if st := router.Stats(); st.Shards[3].State != shard.BreakerOpen {
		t.Fatalf("breaker state %s after owner failure, want open", st.Shards[3].State)
	}

	m := NewManager(router, ManagerOptions{})
	j, err := m.Create(Spec{
		Method:     MethodLR,
		Seed:       5,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxQueries: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitSettled(t, j)
	if v.State != StateDone {
		t.Fatalf("state %s (err %q), want done — degraded answers must not fail the job", v.State, v.Error)
	}
	if v.DegradedSamples == 0 || v.DegradedQueries == 0 {
		t.Fatalf("degraded accounting empty: samples=%d queries=%d (federation partial=%d)",
			v.DegradedSamples, v.DegradedQueries, router.Stats().Partial)
	}
	if v.DegradedSamples > v.Samples {
		t.Fatalf("degraded samples %d exceed total %d", v.DegradedSamples, v.Samples)
	}
	if v.Results[0].DegradedSamples != v.DegradedSamples {
		t.Fatalf("result view degraded=%d, job view %d", v.Results[0].DegradedSamples, v.DegradedSamples)
	}

	// The trace marks which samples were contaminated.
	events, _, _, _ := j.TraceFrom(0)
	marked := 0
	for _, e := range events {
		if e.Degraded {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no trace event marked degraded")
	}
}

// TestJobFailsCrisplyWithOwnerDown pins the other half of the
// degraded-mode contract: with the breaker disabled, a dead member
// stays the owner of its region, and a job whose samples need it
// fails with the typed owner-down error instead of fabricating
// estimates.
func TestJobFailsCrisplyWithOwnerDown(t *testing.T) {
	db := workload.USASchools(300, 9).DB
	inj := make([]*faults.Injector, 4)
	router, err := shard.FromPartsWrapped(shard.Partition(db, 4), lbs.Options{K: 5},
		shard.Resilience{Seed: 1}, // breaker off
		func(i int, q lbs.Querier) lbs.Querier {
			inj[i] = faults.New(q, faults.Spec{Seed: int64(i)})
			return inj[i]
		})
	if err != nil {
		t.Fatal(err)
	}
	inj[3].Kill()
	m := NewManager(router, ManagerOptions{})
	j, err := m.Create(Spec{
		Method:     MethodLR,
		Seed:       5,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    RunOptions{MaxQueries: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitSettled(t, j)
	if v.State != StateFailed {
		t.Fatalf("state %s, want failed (owner down is crisp)", v.State)
	}
	if v.Error == "" || !errors.Is(j.err, shard.ErrOwnerDown) {
		t.Fatalf("job error %q (%v), want owner-down", v.Error, j.err)
	}
}
