package jobs

// Job durability: with ManagerOptions.Store set, every job's spec and
// view persist across process restarts. The lifecycle is
//
//	Create  — the spec is saved before the run starts
//	running — the view checkpoints every CheckpointEvery samples
//	settle  — the final view is saved before Done() closes
//	Recover — a fresh Manager reloads the table: finished jobs come
//	          back with their stored results; interrupted jobs re-run
//	          deterministically (same ID, seed, spec and full budget,
//	          so the final estimate is bit-equal to what the lost run
//	          would have produced); anything that cannot be resumed
//	          settles as failed with ErrUnresumable — a recovered job
//	          never silently vanishes.
//
// Resume-by-re-run is the honest checkpoint for a Monte-Carlo
// estimator: the sampler's RNG stream and fused-operator memos do not
// serialize, but the run is a pure function of (spec, seed, budget),
// so replaying from sample zero reproduces the interrupted run
// exactly. The periodic view checkpoints are what clients see while
// the re-run catches up — the newest partials the lost process had
// reported.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrUnresumable is the typed reason a recovered job settles as
// failed: its stored entry was corrupt, or its spec no longer
// validates or compiles. The job stays in the table with this error —
// recovery never drops a job on the floor.
var ErrUnresumable = errors.New("jobs: recovered job cannot be resumed")

// StoredJob is the durable form of one job: the spec it was created
// from and the newest checkpointed view. Both are plain JSON.
type StoredJob struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	View View   `json:"view"`
	// Corrupt marks an entry whose stored bytes could not be decoded;
	// the Store sets it (with ID recovered from the entry's name) so
	// Recover can settle the job as unresumable instead of losing it.
	Corrupt bool `json:"-"`
}

// Store is the persistence backend for jobs — implemented by
// internal/store's per-job JSON files. Save overwrites the entry for
// sj.ID; Load returns every entry (corrupt ones with Corrupt set);
// Delete forgets one.
type Store interface {
	Save(sj StoredJob) error
	Load() ([]StoredJob, error)
	Delete(id string) error
}

// RecoveryStats is what Recover found.
type RecoveryStats struct {
	Recovered   int // finished jobs reloaded with their stored results
	Resumed     int // interrupted jobs re-running under their original ID
	Unresumable int // jobs settled as failed with ErrUnresumable
}

// Recover reloads the job table from the manager's Store. Call it on
// a fresh Manager before serving requests. Jobs the store remembers
// as finished reappear with their stored views; jobs that were
// running when the process died are resumed as deterministic re-runs;
// corrupt or no-longer-compilable entries settle as failed with
// ErrUnresumable. The ID sequence advances past every recovered ID so
// new submissions never collide.
func (m *Manager) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if m.opts.Store == nil {
		return rs, nil
	}
	stored, err := m.opts.Store.Load()
	if err != nil {
		return rs, fmt.Errorf("jobs: recover: %w", err)
	}
	var maxSeq int64
	for _, sj := range stored {
		if n, ok := seqOf(sj.ID); ok && n > maxSeq {
			maxSeq = n
		}
	}
	m.mu.Lock()
	if maxSeq > m.seq {
		m.seq = maxSeq
	}
	m.mu.Unlock()

	for _, sj := range stored {
		switch {
		case sj.Corrupt:
			m.settleUnresumable(sj, fmt.Errorf("%w: stored entry is corrupt", ErrUnresumable))
			rs.Unresumable++
		case sj.View.State.Finished():
			m.reloadFinished(sj)
			rs.Recovered++
		default:
			if err := resumable(sj); err == nil {
				if _, err = m.start(sj.Spec, sj.ID, true); err == nil {
					rs.Resumed++
					continue
				}
			}
			m.settleUnresumable(sj, fmt.Errorf("%w: %v", ErrUnresumable, err))
			rs.Unresumable++
		}
	}
	return rs, nil
}

// resumable is the pre-flight check for re-running a recovered spec.
func resumable(sj StoredJob) error {
	if sj.ID == "" {
		return fmt.Errorf("missing job ID")
	}
	return sj.Spec.Validate()
}

// reloadFinished registers a finished job from its stored view. The
// job is frozen: Snapshot serves the view verbatim, the trace window
// is empty (trace events do not persist), and eviction treats it like
// any other finished job.
func (m *Manager) reloadFinished(sj StoredJob) {
	v := sj.View
	m.register(&Job{
		ID:        sj.ID,
		Spec:      sj.Spec,
		state:     v.State,
		frozen:    &v,
		createdAt: v.CreatedAt,
	})
}

// settleUnresumable registers a job that recovery could not bring
// back, failed with reason. The stored view (if any decoded) is kept
// as the base so clients still see the last reported partials.
func (m *Manager) settleUnresumable(sj StoredJob, reason error) {
	v := sj.View
	v.ID = sj.ID
	v.State = StateFailed
	v.Error = reason.Error()
	if v.FinishedAt == nil {
		t := time.Now()
		v.FinishedAt = &t
	}
	j := &Job{
		ID:        sj.ID,
		Spec:      sj.Spec,
		state:     StateFailed,
		err:       reason,
		frozen:    &v,
		createdAt: v.CreatedAt,
	}
	m.register(j)
	// The failed view is durable too: a second restart recovers the
	// same settled job instead of retrying the broken entry.
	_ = m.opts.Store.Save(StoredJob{ID: sj.ID, Spec: sj.Spec, View: v})
}

// register inserts a recovered (already settled) job into the table,
// completing the fields every Job must have. Recovery runs before the
// server accepts requests, so the table cannot be full of running
// jobs; if it is full of finished ones the oldest is evicted as usual.
func (m *Manager) register(j *Job) {
	j.cancel = func() {} // already settled; Cancel is a no-op
	j.done = make(chan struct{})
	close(j.done)
	j.traceWake = make(chan struct{})
	if t := j.frozen.FinishedAt; t != nil {
		j.finishedAt = *t
	}
	m.mu.Lock()
	if len(m.jobs) >= m.opts.MaxJobs {
		m.evictOldestFinishedLocked()
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
}

// seqOf parses the numeric suffix of a "job-<n>" ID.
func seqOf(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	return n, err == nil
}

// storedView captures the job's durable form.
func (j *Job) storedView() StoredJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return StoredJob{ID: j.ID, Spec: j.Spec, View: j.viewLocked()}
}

// maybeCheckpointLocked saves a view checkpoint when enough samples
// accumulated since the last one; callers hold j.mu. The save runs on
// its own goroutine so the sampler never blocks on disk — Store
// implementations serialize writes per job, and a lost in-flight
// checkpoint only costs recovery some staleness, never correctness.
func (j *Job) maybeCheckpointLocked() {
	if j.persist == nil {
		return
	}
	samples := 0
	switch {
	case j.qplan != nil:
		for _, st := range j.planStats {
			samples += st.Samples
		}
	case j.partial != nil && len(j.partial) > 0:
		samples = j.partial[0].Samples
	}
	if samples-j.lastCkpt < j.ckptEvery {
		return
	}
	j.lastCkpt = samples
	sj := StoredJob{ID: j.ID, Spec: j.Spec, View: j.viewLocked()}
	j.saves.Add(1)
	go func() {
		defer j.saves.Done()
		_ = j.persist.Save(sj)
	}()
}

// persistSettle saves the job's final view; run's defer calls it once
// the state machine settled, before Done() observers fire. It waits
// out in-flight checkpoint writes first, so a stale running view can
// never land after — and clobber — the settled one.
func (j *Job) persistSettle() {
	if j.persist == nil {
		return
	}
	j.saves.Wait()
	_ = j.persist.Save(j.storedView())
}
