package live_test

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/churn"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// TestLiveEpochConsistency is the concurrency property the epoch
// counter exists for: under a concurrent mutator, any query bracketed
// by two equal Epoch() reads returned the answer of exactly that
// epoch — never a mix of pre- and post-mutation tuples. The expected
// answer for every (epoch, query) pair is precomputed serially from
// the reference model; reader goroutines then race the writer and
// check every bracketed observation against the table. Background
// compaction stays enabled so snapshot swaps from the rebuilder race
// the readers too. Run under -race, this also shakes out unsynchronized
// snapshot access.
func TestLiveEpochConsistency(t *testing.T) {
	db := workload.USASchools(150, 101).DB
	opts := lbs.Options{K: 3}
	ops := churn.Ops(db, churn.Config{Seed: 55}, 200)

	qset := []geom.Point{
		db.Bounds().Center(),
		db.EffectiveLoc(0),
		db.EffectiveLoc(db.Len() / 2),
		geom.Pt(db.Bounds().Min.X+db.Bounds().Width()/4, db.Bounds().Min.Y+db.Bounds().Height()/4),
		geom.Pt(db.Bounds().Max.X, db.Bounds().Max.Y),
	}

	// expected[e][qi]: the answer to qset[qi] at epoch e.
	m := modelOf(db)
	expected := make([][][]lbs.LRRecord, len(ops)+1)
	snapAnswers := func() [][]lbs.LRRecord {
		svc := lbs.NewService(m.db(), opts)
		out := make([][]lbs.LRRecord, len(qset))
		for i, q := range qset {
			recs, err := svc.QueryLR(context.Background(), q, nil)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = recs
		}
		return out
	}
	expected[0] = snapAnswers()
	for i, op := range ops {
		m.apply(t, op)
		expected[i+1] = snapAnswers()
	}

	d, err := live.New(db, opts, live.Options{CompactThreshold: 48})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var done atomic.Bool
	var checked atomic.Int64
	var wg sync.WaitGroup

	// One writer: ops applied one at a time, so every epoch 0..len(ops)
	// is a real visible state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for _, op := range ops {
			if r := d.Apply(ctx, []live.Op{op})[0]; r.Err != nil {
				t.Errorf("writer: %v", r.Err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qi := r
			for !done.Load() {
				qi = (qi + 1) % len(qset)
				e1 := d.Epoch()
				recs, err := d.QueryLR(ctx, qset[qi], nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				e2 := d.Epoch()
				if e1 != e2 {
					continue // mutation raced the query; no claim to check
				}
				if !reflect.DeepEqual(recs, expected[e1][qi]) {
					t.Errorf("epoch %d query %d: answer does not match that epoch's contents\nwant %+v\ngot  %+v",
						e1, qi, expected[e1][qi], recs)
					return
				}
				checked.Add(1)
			}
		}(r)
	}
	wg.Wait()

	// Quiescent final check: every query must be at the final epoch.
	for qi, q := range qset {
		recs, err := d.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recs, expected[len(ops)][qi]) {
			t.Fatalf("final epoch query %d mismatch", qi)
		}
	}
	if checked.Load() == 0 {
		t.Fatal("no bracketed observation was ever checked")
	}
}

// TestLiveClusterConcurrentSmoke races queries, batch queries, stats
// and a mutation stream against a 4-shard cluster — under -race this
// pins down that the federation path over live members is properly
// synchronized (bit-level equality under concurrent mutation is pinned
// serially by TestLiveClusterMutatedEquivalence; per-query epoch
// bracketing is a single-database property).
func TestLiveClusterConcurrentSmoke(t *testing.T) {
	db := workload.USASchools(200, 111).DB
	c, err := live.NewCluster(db, lbs.Options{K: 4}, 4, live.Options{CompactThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	ops := churn.Ops(db, churn.Config{Seed: 77, MoveSigma: 0.3}, 300)
	ctx := context.Background()
	var done atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for start := 0; start < len(ops); start += 10 {
			for _, r := range c.Apply(ctx, ops[start:start+10]) {
				if r.Err != nil {
					t.Errorf("cluster writer: %v", r.Err)
					return
				}
			}
		}
	}()

	b := db.Bounds()
	pts := []geom.Point{b.Center(), b.Min, b.Max, geom.Pt(b.Min.X, b.Max.Y)}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				if _, err := c.QueryLR(ctx, pts[r%len(pts)], nil); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := c.QueryLNRBatch(ctx, pts, nil); err != nil {
					t.Errorf("batch reader: %v", err)
					return
				}
				_ = c.LiveStats()
				_ = c.Epoch()
			}
		}(r)
	}
	wg.Wait()

	st := c.LiveStats()
	if st.Epoch == 0 || st.Rejected != 0 {
		t.Fatalf("cluster stats after run: %+v", st)
	}
}
