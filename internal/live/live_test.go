package live_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// model is the reference implementation of mutation semantics: a flat
// map of visible tuples with their effective locations, flattened into
// an immutable lbs.Database on demand. Every equivalence test compares
// the live overlay against a plain Service over the model.
type model struct {
	bounds geom.Rect
	tuples map[int64]lbs.Tuple
	eff    map[int64]geom.Point
}

func modelOf(db *lbs.Database) *model {
	m := &model{
		bounds: db.Bounds(),
		tuples: make(map[int64]lbs.Tuple, db.Len()),
		eff:    make(map[int64]geom.Point, db.Len()),
	}
	for i := 0; i < db.Len(); i++ {
		t := *db.Tuple(i)
		m.tuples[t.ID] = t
		m.eff[t.ID] = db.EffectiveLoc(i)
	}
	return m
}

func (m *model) apply(t *testing.T, op live.Op) {
	t.Helper()
	switch op.Kind {
	case live.OpInsert:
		if _, ok := m.tuples[op.Tuple.ID]; ok {
			t.Fatalf("model: duplicate insert %d", op.Tuple.ID)
		}
		m.tuples[op.Tuple.ID] = op.Tuple
		m.eff[op.Tuple.ID] = op.Tuple.Loc
	case live.OpDelete:
		if _, ok := m.tuples[op.ID]; !ok {
			t.Fatalf("model: delete of unknown %d", op.ID)
		}
		delete(m.tuples, op.ID)
		delete(m.eff, op.ID)
	case live.OpMove:
		tp, ok := m.tuples[op.ID]
		if !ok {
			t.Fatalf("model: move of unknown %d", op.ID)
		}
		tp.Loc = op.Loc
		m.tuples[op.ID] = tp
		m.eff[op.ID] = op.Loc
	}
}

// db flattens the model (sorted by ID — answer ordering is
// data-deterministic, so any order gives identical answers; sorting
// keeps the reference reproducible).
func (m *model) db() *lbs.Database {
	ids := make([]int64, 0, len(m.tuples))
	for id := range m.tuples {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	tuples := make([]lbs.Tuple, len(ids))
	effs := make([]geom.Point, len(ids))
	for i, id := range ids {
		tuples[i] = m.tuples[id]
		effs[i] = m.eff[id]
	}
	return lbs.NewDatabaseWithLocations(m.bounds, tuples, effs)
}

// queryPoints draws the adversarial mix: uniform interior points,
// exact tuple locations (distance ties) and out-of-bounds probes.
func queryPoints(rng *rand.Rand, db *lbs.Database, n int) []geom.Point {
	b := db.Bounds()
	pts := make([]geom.Point, 0, n+n/4+4)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Pt(
			b.Min.X+rng.Float64()*b.Width(),
			b.Min.Y+rng.Float64()*b.Height()))
	}
	for i := 0; i < n/4 && db.Len() > 0; i++ {
		pts = append(pts, db.EffectiveLoc(rng.Intn(db.Len())))
	}
	pts = append(pts,
		geom.Pt(b.Min.X-b.Width(), b.Min.Y-b.Height()),
		geom.Pt(b.Max.X+b.Width(), b.Max.Y+b.Height()))
	return pts
}

// checkAgainst asserts q ≡ a plain Service over want, bit for bit,
// over serial and batch paths of both interface views.
func checkAgainst(t *testing.T, label string, q lbs.Querier, want *lbs.Database, opts lbs.Options, pts []geom.Point, filter lbs.Filter) {
	t.Helper()
	ctx := context.Background()
	ref := lbs.NewService(want, opts)
	for i, p := range pts {
		wantLR, err1 := ref.QueryLR(ctx, p, filter)
		gotLR, err2 := q.QueryLR(ctx, p, filter)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: point %d errs %v %v", label, i, err1, err2)
		}
		if !reflect.DeepEqual(wantLR, gotLR) {
			t.Fatalf("%s: point %d (%v) LR mismatch\nwant %+v\ngot  %+v", label, i, p, wantLR, gotLR)
		}
		wantLNR, _ := ref.QueryLNR(ctx, p, filter)
		gotLNR, err := q.QueryLNR(ctx, p, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantLNR, gotLNR) {
			t.Fatalf("%s: point %d (%v) LNR mismatch", label, i, p)
		}
	}
	wantB, err1 := ref.QueryLRBatch(ctx, pts, filter)
	gotB, err2 := q.QueryLRBatch(ctx, pts, filter)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: batch errs %v %v", label, err1, err2)
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatalf("%s: LR batch mismatch", label)
	}
	wantBN, _ := ref.QueryLNRBatch(ctx, pts, filter)
	gotBN, err := q.QueryLNRBatch(ctx, pts, filter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBN, gotBN) {
		t.Fatalf("%s: LNR batch mismatch", label)
	}
}

var liveScenarios = []struct {
	name string
	db   func() *lbs.Database
	opts lbs.Options
}{
	{"schools-k5", func() *lbs.Database { return workload.USASchools(300, 11).DB }, lbs.Options{K: 5}},
	{"schools-radius", func() *lbs.Database { return workload.USASchools(250, 13).DB }, lbs.Options{K: 4, MaxRadius: 40}},
	{"wechat-obfuscated", func() *lbs.Database { return workload.WeChatChina(300, 14).DB }, lbs.Options{K: 8}},
	{"restaurants-prominence", func() *lbs.Database { return workload.USARestaurants(250, 15).DB }, lbs.Options{
		K: 4, Rank: lbs.RankByProminence, ProminenceAttr: "rating", ProminenceWeight: 2,
	}},
}

// TestLiveCleanEquivalence: with churn disabled (no mutations ever
// applied) a live database answers bit-identically to the immutable
// service it wraps — serial and batch, LR and LNR, across rank modes.
func TestLiveCleanEquivalence(t *testing.T) {
	for _, sc := range liveScenarios {
		t.Run(sc.name, func(t *testing.T) {
			db := sc.db()
			d, err := live.New(db, sc.opts, live.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			checkAgainst(t, sc.name, d, db, sc.opts, queryPoints(rng, db, 40), nil)
			if d.Epoch() != 0 {
				t.Fatalf("epoch %d without mutations", d.Epoch())
			}
		})
	}
}

// TestLiveClusterCleanEquivalence: federated live databases over 1–8
// shards, churn disabled, stay bit-identical to a single service.
func TestLiveClusterCleanEquivalence(t *testing.T) {
	for _, sc := range liveScenarios {
		t.Run(sc.name, func(t *testing.T) {
			db := sc.db()
			rng := rand.New(rand.NewSource(8))
			pts := queryPoints(rng, db, 30)
			for _, n := range []int{1, 2, 4, 8} {
				c, err := live.NewCluster(db, sc.opts, n, live.Options{})
				if err != nil {
					t.Fatal(err)
				}
				checkAgainst(t, sc.name, c, db, sc.opts, pts, nil)
			}
		})
	}
}

// TestLiveMutatedEquivalence is the core overlay property: after any
// prefix of a churn stream, the overlay answers bit-identically to a
// plain service over the materialized tuple set — inserts, deletes
// (tombstone filtering), moves, re-insertion after deletion, across
// rank modes and MaxRadius.
func TestLiveMutatedEquivalence(t *testing.T) {
	for _, sc := range liveScenarios {
		t.Run(sc.name, func(t *testing.T) {
			db := sc.db()
			// Compaction disabled: this test exercises the overlay merge
			// path specifically (compaction has its own equivalence test).
			d, err := live.New(db, sc.opts, live.Options{CompactThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			m := modelOf(db)
			ops := churn.Ops(db, churn.Config{Seed: 42}, 120)
			rng := rand.New(rand.NewSource(9))
			ctx := context.Background()
			applied := 0
			for _, chunk := range [][]live.Op{ops[:40], ops[40:41], ops[41:120]} {
				for _, r := range d.Apply(ctx, chunk) {
					if r.Err != nil {
						t.Fatalf("churn op rejected: %v", r.Err)
					}
				}
				for _, op := range chunk {
					m.apply(t, op)
				}
				applied += len(chunk)
				want := m.db()
				checkAgainst(t, sc.name, d, want, sc.opts, queryPoints(rng, want, 25), nil)
				if got := d.Epoch(); got != uint64(applied) {
					t.Fatalf("epoch %d after %d ops", got, applied)
				}
				if got := d.Len(); got != want.Len() {
					t.Fatalf("Len %d, want %d", got, want.Len())
				}
			}
			if st := d.Stats(); st.Compactions != 0 {
				t.Fatalf("compaction ran despite being disabled: %+v", st)
			}
		})
	}
}

// TestLiveMutatedEquivalenceWithFilter: server-side selection filters
// compose with tombstone exclusion.
func TestLiveMutatedEquivalenceWithFilter(t *testing.T) {
	db := workload.USARestaurants(250, 21).DB
	opts := lbs.Options{K: 5}
	d, err := live.New(db, opts, live.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := modelOf(db)
	ops := churn.Ops(db, churn.Config{Seed: 5}, 80)
	for _, r := range d.Apply(context.Background(), ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for _, op := range ops {
		m.apply(t, op)
	}
	want := m.db()
	rng := rand.New(rand.NewSource(6))
	checkAgainst(t, "filtered", d, want, opts, queryPoints(rng, want, 30), lbs.CategoryFilter("restaurant"))
}

// TestLiveClusterMutatedEquivalence re-pins the federation property
// with mutation interleaved between query batches: the same op stream
// applied to a single live database and to 1/2/4/8-shard clusters
// keeps them bit-identical at every step — including cross-shard
// moves (delete+insert re-routing).
func TestLiveClusterMutatedEquivalence(t *testing.T) {
	db := workload.USASchools(300, 31).DB
	opts := lbs.Options{K: 5}
	ops := churn.Ops(db, churn.Config{Seed: 17, MoveSigma: 0.2}, 90)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 8} {
		single, err := live.New(db, opts, live.Options{CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := live.NewCluster(db, opts, n, live.Options{CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		m := modelOf(db)
		rng := rand.New(rand.NewSource(int64(40 + n)))
		for start := 0; start < len(ops); start += 30 {
			chunk := ops[start : start+30]
			for i, r := range single.Apply(ctx, chunk) {
				if r.Err != nil {
					t.Fatalf("single op %d: %v", start+i, r.Err)
				}
			}
			for i, r := range cluster.Apply(ctx, chunk) {
				if r.Err != nil {
					t.Fatalf("cluster n=%d op %d: %v", n, start+i, r.Err)
				}
			}
			for _, op := range chunk {
				m.apply(t, op)
			}
			want := m.db()
			pts := queryPoints(rng, want, 20)
			checkAgainst(t, "single", single, want, opts, pts, nil)
			checkAgainst(t, "cluster", cluster, want, opts, pts, nil)
		}
		if cluster.Len() != single.Len() {
			t.Fatalf("n=%d: cluster Len %d != single %d", n, cluster.Len(), single.Len())
		}
	}
}

// TestLiveCompactionEquivalence: flattening the overlay into a fresh
// base changes answers not at all — same epoch, same bits — and
// leaves the overlay empty.
func TestLiveCompactionEquivalence(t *testing.T) {
	db := workload.USASchools(300, 51).DB
	opts := lbs.Options{K: 5}
	d, err := live.New(db, opts, live.Options{CompactThreshold: -1}) // manual compaction only
	if err != nil {
		t.Fatal(err)
	}
	ops := churn.Ops(db, churn.Config{Seed: 3}, 150)
	for _, r := range d.Apply(context.Background(), ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	rng := rand.New(rand.NewSource(12))
	pts := queryPoints(rng, db, 50)
	before := make([][]lbs.LRRecord, len(pts))
	for i, p := range pts {
		before[i], _ = d.QueryLR(context.Background(), p, nil)
	}
	epochBefore := d.Epoch()

	d.Compact()

	st := d.Stats()
	if st.DeltaLen != 0 || st.Tombstones != 0 {
		t.Fatalf("overlay not empty after Compact: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if d.Epoch() != epochBefore {
		t.Fatalf("compaction moved the epoch: %d -> %d", epochBefore, d.Epoch())
	}
	for i, p := range pts {
		after, err := d.QueryLR(context.Background(), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before[i], after) {
			t.Fatalf("point %d: answers changed across compaction", i)
		}
	}
}

// TestLiveBackgroundCompaction: once the overlay crosses the
// threshold, the background rebuilder flattens it without any
// explicit call, and the answers still match the model.
func TestLiveBackgroundCompaction(t *testing.T) {
	db := workload.USASchools(200, 61).DB
	opts := lbs.Options{K: 4}
	d, err := live.New(db, opts, live.Options{CompactThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	m := modelOf(db)
	ops := churn.Ops(db, churn.Config{Seed: 8}, 100)
	for _, op := range ops {
		if r := d.Apply(context.Background(), []live.Op{op})[0]; r.Err != nil {
			t.Fatal(r.Err)
		}
		m.apply(t, op)
	}
	// Wait for the (possibly still-starting) background pass to finish,
	// then verify the trigger fired and the overlay shrank back under
	// the threshold.
	deadline := time.Now().Add(10 * time.Second)
	var st live.Stats
	for {
		st = d.Stats()
		if st.Compactions > 0 && !st.Compacting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never finished: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.DeltaLen+st.Tombstones >= 32 {
		t.Fatalf("overlay still above threshold: %+v", st)
	}
	want := m.db()
	rng := rand.New(rand.NewSource(13))
	checkAgainst(t, "post-bg-compact", d, want, opts, queryPoints(rng, want, 30), nil)
}

// TestLiveMutationErrors pins the per-op error contract: failed ops
// reject without advancing the epoch or disturbing state, later ops
// in the batch still apply.
func TestLiveMutationErrors(t *testing.T) {
	db := workload.USASchools(50, 71).DB
	d, err := live.New(db, lbs.Options{K: 3}, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	existing := db.Tuple(0).ID
	b := db.Bounds()
	res := d.Apply(ctx, []live.Op{
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: existing, Loc: b.Center()}}, // dup
		{Kind: live.OpDelete, ID: 999999},                                      // unknown
		{Kind: live.OpMove, ID: 888888, Loc: b.Center()},                       // unknown
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 777777, Loc: b.Center(), Name: "ok"}},
	})
	if !errors.Is(res[0].Err, live.ErrDuplicateID) {
		t.Fatalf("dup insert: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, live.ErrUnknownID) || !errors.Is(res[2].Err, live.ErrUnknownID) {
		t.Fatalf("unknown ops: %v %v", res[1].Err, res[2].Err)
	}
	if res[3].Err != nil || res[3].Epoch != 1 {
		t.Fatalf("valid op after failures: %+v", res[3])
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", d.Epoch())
	}
	st := d.Stats()
	if st.Rejected != 3 || st.Inserts != 1 {
		t.Fatalf("counters: %+v", st)
	}
	// Delete-then-reinsert under the same ID: the tombstone hides the
	// base copy, the insert buffer carries the new one.
	res = d.Apply(ctx, []live.Op{
		{Kind: live.OpDelete, ID: existing},
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: existing, Loc: b.Center(), Name: "reborn"}},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("delete+reinsert: %+v", res)
	}
	tp, loc, ok := d.Lookup(existing)
	if !ok || tp.Name != "reborn" || loc != b.Center() {
		t.Fatalf("lookup after reinsert: %+v %v %v", tp, loc, ok)
	}
}

// TestLiveBudget: the live database owns the logical budget; batch
// prefix semantics match a Service's exactly (granted prefix answered,
// nil holes, ErrBudgetExhausted). Mutations cost nothing.
func TestLiveBudget(t *testing.T) {
	db := workload.USASchools(100, 81).DB
	d, err := live.New(db, lbs.Options{K: 3, Budget: 10}, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ops := churn.Ops(db, churn.Config{Seed: 2}, 20)
	for _, r := range d.Apply(ctx, ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	pts := queryPoints(rng, db, 7)[:7]
	if _, err := d.QueryLRBatch(ctx, pts, nil); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if got := d.QueryCount(); got != 7 {
		t.Fatalf("count after 7-point batch: %d (mutations must not be charged)", got)
	}
	out, err := d.QueryLRBatch(ctx, pts[:5], nil)
	if !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	for i, recs := range out {
		if i < 3 && recs == nil {
			t.Fatalf("position %d inside grant is nil", i)
		}
		if i >= 3 && recs != nil {
			t.Fatalf("position %d beyond grant answered", i)
		}
	}
	if rem := d.RemainingBudget(); rem != 0 {
		t.Fatalf("remaining: %d", rem)
	}
	if _, err := d.QueryLR(ctx, pts[0], nil); !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("spent budget must refuse: %v", err)
	}
}

// TestClusterMutationRouting pins the routing rules: out-of-bounds
// inserts reject with live.ErrOutOfRegion, duplicate IDs are detected
// across shards, deletes find their owner by broadcast, cross-shard
// moves re-home the tuple.
func TestClusterMutationRouting(t *testing.T) {
	db := workload.USASchools(200, 91).DB
	c, err := live.NewCluster(db, lbs.Options{K: 3}, 4, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := db.Bounds()
	outside := geom.Pt(b.Max.X+b.Width(), b.Max.Y+b.Height())
	if r := c.Apply(ctx, []live.Op{{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 500000, Loc: outside}}})[0]; !errors.Is(r.Err, live.ErrOutOfRegion) {
		t.Fatalf("out-of-region insert: %v", r.Err)
	}
	existing := db.Tuple(0).ID
	if r := c.Apply(ctx, []live.Op{{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: existing, Loc: b.Center()}}})[0]; !errors.Is(r.Err, live.ErrDuplicateID) {
		t.Fatalf("cross-shard duplicate insert: %v", r.Err)
	}
	// Move a corner tuple to the opposite corner: necessarily a
	// cross-shard re-home with 4 shards.
	cornerID := db.Tuple(0).ID
	best := db.EffectiveLoc(0).Dist(b.Min)
	for i := 1; i < db.Len(); i++ {
		if dd := db.EffectiveLoc(i).Dist(b.Min); dd < best {
			best = dd
			cornerID = db.Tuple(i).ID
		}
	}
	dest := geom.Pt(b.Max.X-b.Width()/100, b.Max.Y-b.Height()/100)
	if r := c.Apply(ctx, []live.Op{{Kind: live.OpMove, ID: cornerID, Loc: dest}})[0]; r.Err != nil {
		t.Fatalf("cross-shard move: %v", r.Err)
	}
	if _, loc, ok := c.Lookup(cornerID); !ok || loc != dest {
		t.Fatalf("moved tuple: ok=%v loc=%v want %v", ok, loc, dest)
	}
	if got, want := c.Len(), db.Len(); got != want {
		t.Fatalf("Len after move: %d, want %d", got, want)
	}
	if r := c.Apply(ctx, []live.Op{{Kind: live.OpDelete, ID: cornerID}})[0]; r.Err != nil {
		t.Fatalf("delete after re-home: %v", r.Err)
	}
	if _, _, ok := c.Lookup(cornerID); ok {
		t.Fatal("deleted tuple still visible")
	}
	if r := c.Apply(ctx, []live.Op{{Kind: live.OpMove, ID: cornerID, Loc: b.Center()}})[0]; !errors.Is(r.Err, live.ErrUnknownID) {
		t.Fatalf("move of deleted: %v", r.Err)
	}
}

// TestLiveCacheInvalidation is the acceptance pin for region-epoch
// invalidation: a CachedOracle over a live database (MaxRadius-bounded
// influence) wired through OnInvalidate loses exactly the entries
// whose cells intersect the mutation's dirty region — entries for
// far-away queries survive and keep replaying for free.
func TestLiveCacheInvalidation(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	var tuples []lbs.Tuple
	id := int64(1)
	for x := 5.0; x < 100; x += 10 {
		for y := 5.0; y < 100; y += 10 {
			tuples = append(tuples, lbs.Tuple{ID: id, Loc: geom.Pt(x, y)})
			id++
		}
	}
	db := lbs.NewDatabase(bounds, tuples)
	opts := lbs.Options{K: 3, MaxRadius: 8}
	var cache *lbs.CachedOracle
	d, err := live.New(db, opts, live.Options{OnInvalidate: func(r geom.Rect) { cache.Invalidate(r) }})
	if err != nil {
		t.Fatal(err)
	}
	cache = lbs.NewCachedOracle(d, lbs.CacheOptions{Quantum: 1})
	ctx := context.Background()

	// Populate one cache entry per 10×10 block center: 100 entries.
	var qpts []geom.Point
	for x := 5.0; x < 100; x += 10 {
		for y := 5.0; y < 100; y += 10 {
			qpts = append(qpts, geom.Pt(x, y))
		}
	}
	for _, p := range qpts {
		if _, err := cache.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries != int64(len(qpts)) {
		t.Fatalf("entries %d, want %d", st.Entries, len(qpts))
	}

	// Mutate in the far corner block: dirty region is the disk bbox of
	// radius MaxRadius=8 around (95,95) → cells within [86,104]² are
	// dropped, everything else survives.
	if r := d.Apply(ctx, []live.Op{{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 9999, Loc: geom.Pt(95, 95)}}})[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	st := cache.Stats()
	if st.Invalidations == 0 {
		t.Fatal("mutation invalidated nothing")
	}
	// The dirty region [87,103]² touches exactly one of the 1×1 query
	// cells ([95,96)²); the other 99 entries must survive.
	wantDropped := int64(1)
	if st.Invalidations != wantDropped {
		t.Fatalf("invalidations %d, want %d (region eviction must be local)", st.Invalidations, wantDropped)
	}
	if st.Entries != int64(len(qpts))-wantDropped {
		t.Fatalf("survivors %d, want %d", st.Entries, int64(len(qpts))-wantDropped)
	}
	// Surviving entries replay without touching the service…
	before := d.QueryCount()
	if _, err := cache.QueryLR(ctx, geom.Pt(5, 5), nil); err != nil {
		t.Fatal(err)
	}
	if d.QueryCount() != before {
		t.Fatal("surviving entry forwarded a query")
	}
	// …and the dirtied cell re-fetches the post-mutation answer.
	recs, err := cache.QueryLR(ctx, geom.Pt(95, 95), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refetched answer misses the inserted tuple: %+v", recs)
	}
	if d.QueryCount() != before+1 {
		t.Fatalf("dirtied cell did not forward exactly one query: %d", d.QueryCount()-before)
	}

	// Without MaxRadius (and no heuristic radius) the dirty region is
	// the whole plane: everything flushes.
	d2, err := live.New(db, lbs.Options{K: 3}, live.Options{OnInvalidate: func(r geom.Rect) { cache.Invalidate(r) }})
	if err != nil {
		t.Fatal(err)
	}
	cache = lbs.NewCachedOracle(d2, lbs.CacheOptions{Quantum: 1})
	for _, p := range qpts[:10] {
		if _, err := cache.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r := d2.Apply(ctx, []live.Op{{Kind: live.OpDelete, ID: 1}})[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("unbounded-influence mutation must flush everything, %d entries left", st.Entries)
	}
}

// TestLiveSnapshotMaterialize: Snapshot() returns an immutable
// database equal to the model, usable for ground truth.
func TestLiveSnapshotMaterialize(t *testing.T) {
	db := workload.USASchools(150, 95).DB
	d, err := live.New(db, lbs.Options{K: 3}, live.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := modelOf(db)
	ops := churn.Ops(db, churn.Config{Seed: 19}, 60)
	for _, r := range d.Apply(context.Background(), ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for _, op := range ops {
		m.apply(t, op)
	}
	snap := d.Snapshot()
	want := m.db()
	if snap.Len() != want.Len() {
		t.Fatalf("snapshot len %d, want %d", snap.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		id := want.Tuple(i).ID
		tp, ok := snap.ByID(id)
		if !ok {
			t.Fatalf("snapshot missing tuple %d", id)
		}
		wtp, _ := want.ByID(id)
		if !reflect.DeepEqual(*tp, *wtp) {
			t.Fatalf("tuple %d differs: %+v vs %+v", id, *tp, *wtp)
		}
	}
}
