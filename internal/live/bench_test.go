package live_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// The live benchmark suite measures what mutability costs the read
// path: query throughput over a live database at 0%, 1% and 10% churn
// (mutations interleaved per query) against the immutable Service
// baseline on the same data. At 0% churn the overlay is clean and the
// fast path should track the baseline within noise; under churn the
// merge path and snapshot rebuilds price in.

const benchN = 20000

func benchDB(b *testing.B) *lbs.Database {
	b.Helper()
	return workload.USASchools(benchN, 7).DB
}

func benchPoints(db *lbs.Database, n int) []geom.Point {
	rng := rand.New(rand.NewSource(3))
	bounds := db.Bounds()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height())
	}
	return pts
}

// BenchmarkImmutableQueryLR is the reference: a plain Service over
// the same database and options as the live benchmarks.
func BenchmarkImmutableQueryLR(b *testing.B) {
	db := benchDB(b)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	pts := benchPoints(db, 4096)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.QueryLR(ctx, pts[i%len(pts)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChurn runs the live query benchmark with permil mutations per
// thousand queries, interleaved deterministically.
func benchChurn(b *testing.B, permil int) {
	db := benchDB(b)
	d, err := live.New(db, lbs.Options{K: 5}, live.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(db, 4096)
	ops := churn.Ops(db, churn.Config{Seed: 11}, 200000)
	ctx := context.Background()
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if permil > 0 && i%1000 < permil && next < len(ops) {
			if r := d.Apply(ctx, ops[next:next+1])[0]; r.Err != nil {
				b.Fatal(r.Err)
			}
			next++
		}
		if _, err := d.QueryLR(ctx, pts[i%len(pts)], nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if permil > 0 && next == 0 {
		b.Fatal("no mutations interleaved")
	}
}

// BenchmarkLiveQueryLRChurn0: clean overlay — the fast path the <10%
// read-regression acceptance bound is measured against.
func BenchmarkLiveQueryLRChurn0(b *testing.B) { benchChurn(b, 0) }

// BenchmarkLiveQueryLRChurn1: 1% of queries interleave one mutation.
func BenchmarkLiveQueryLRChurn1(b *testing.B) { benchChurn(b, 10) }

// BenchmarkLiveQueryLRChurn10: 10% of queries interleave one mutation.
func BenchmarkLiveQueryLRChurn10(b *testing.B) { benchChurn(b, 100) }

// BenchmarkLiveApply measures raw mutation throughput: one
// insert+delete pair per iteration (the overlay returns to clean each
// time, so the cost measured is op validation plus two snapshot
// swaps, repeatable for any b.N).
func BenchmarkLiveApply(b *testing.B) {
	db := benchDB(b)
	d, err := live.New(db, lbs.Options{K: 5}, live.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(db, 4096)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(10_000_000 + i)
		for _, r := range d.Apply(ctx, []live.Op{
			{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: id, Loc: pts[i%len(pts)]}},
			{Kind: live.OpDelete, ID: id},
		}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
