package live

import (
	"fmt"
	"math"

	"context"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// overlay is the mutable working state of an Apply call: a private
// copy of the snapshot's tombstone set and insert buffer that ops
// edit in place before the whole thing freezes into a new snapshot.
type overlay struct {
	tomb        map[int64]struct{}
	deltaTuples []lbs.Tuple
	deltaByID   map[int64]int
}

// overlayFrom copies a snapshot's overlay. The copies are fresh on
// every Apply — snapshots already handed to readers are never touched.
func overlayFrom(s *snapshot) *overlay {
	o := &overlay{
		tomb:        make(map[int64]struct{}, len(s.tomb)+4),
		deltaTuples: append([]lbs.Tuple(nil), s.deltaTuples...),
		deltaByID:   make(map[int64]int, len(s.deltaByID)+4),
	}
	for id := range s.tomb {
		o.tomb[id] = struct{}{}
	}
	for id, i := range s.deltaByID {
		o.deltaByID[id] = i
	}
	return o
}

func (o *overlay) size() int { return len(o.tomb) + len(o.deltaTuples) }

// dirty accumulates the effective locations a batch of ops touched;
// the invalidation region derives from it.
type dirty struct {
	any  bool
	rect geom.Rect
}

func (dr *dirty) add(p geom.Point) {
	if !dr.any {
		dr.any = true
		dr.rect = geom.Rect{Min: p, Max: p}
		return
	}
	dr.rect.Min.X = math.Min(dr.rect.Min.X, p.X)
	dr.rect.Min.Y = math.Min(dr.rect.Min.Y, p.Y)
	dr.rect.Max.X = math.Max(dr.rect.Max.X, p.X)
	dr.rect.Max.Y = math.Max(dr.rect.Max.Y, p.Y)
}

// region returns the dirty region: the bounding box of metric balls
// of radius r around every touched location, or the whole plane when
// no finite influence radius exists (r ≤ 0). The expansion is
// metric-aware (geo.Metric.ExpandRect): under Haversine the margin
// converts km to degrees conservatively — wider at high latitude,
// full-circle at the poles — so the region always covers every query
// point a mutation could influence.
func (dr *dirty) region(m geo.Metric, r float64) geom.Rect {
	if r <= 0 {
		inf := math.Inf(1)
		return geom.Rect{Min: geom.Pt(-inf, -inf), Max: geom.Pt(inf, inf)}
	}
	return m.ExpandRect(dr.rect, r)
}

// present reports whether id is currently visible in base+overlay.
func (o *overlay) present(base *lbs.Database, id int64) bool {
	if _, ok := o.deltaByID[id]; ok {
		return true
	}
	if _, dead := o.tomb[id]; dead {
		return false
	}
	_, ok := base.ByID(id)
	return ok
}

// apply executes one op against base+overlay, recording touched
// locations in dr. It returns the error that rejected the op, or nil
// after mutating the overlay.
func (o *overlay) apply(base *lbs.Database, op Op, dr *dirty) error {
	switch op.Kind {
	case OpInsert:
		return o.insert(base, op.Tuple, dr)
	case OpDelete:
		return o.delete(base, op.ID, dr)
	case OpMove:
		t, _, ok := o.get(base, op.ID)
		if !ok {
			return ErrUnknownID
		}
		// One logical op: remove the old placement, insert the tuple at
		// its destination. Both halves touch the dirty region.
		if err := o.delete(base, op.ID, dr); err != nil {
			return err
		}
		t.Loc = op.Loc
		return o.insert(base, t, dr)
	}
	return fmt.Errorf("live: unknown op kind %d", op.Kind)
}

// get returns a copy of the visible tuple with its effective location.
func (o *overlay) get(base *lbs.Database, id int64) (lbs.Tuple, geom.Point, bool) {
	if i, ok := o.deltaByID[id]; ok {
		return o.deltaTuples[i], o.deltaTuples[i].Loc, true
	}
	if _, dead := o.tomb[id]; dead {
		return lbs.Tuple{}, geom.Point{}, false
	}
	if t, ok := base.ByID(id); ok {
		loc, _ := base.EffectiveByID(id)
		return *t, loc, true
	}
	return lbs.Tuple{}, geom.Point{}, false
}

func (o *overlay) insert(base *lbs.Database, t lbs.Tuple, dr *dirty) error {
	if o.present(base, t.ID) {
		return ErrDuplicateID
	}
	// A tombstone for this ID stays: it hides the base copy while the
	// insert buffer carries the new one.
	o.deltaByID[t.ID] = len(o.deltaTuples)
	o.deltaTuples = append(o.deltaTuples, t)
	dr.add(t.Loc)
	return nil
}

func (o *overlay) delete(base *lbs.Database, id int64, dr *dirty) error {
	if i, ok := o.deltaByID[id]; ok {
		dr.add(o.deltaTuples[i].Loc)
		o.deltaTuples = append(o.deltaTuples[:i], o.deltaTuples[i+1:]...)
		delete(o.deltaByID, id)
		for did, j := range o.deltaByID {
			if j > i {
				o.deltaByID[did] = j - 1
			}
		}
		return nil
	}
	if _, dead := o.tomb[id]; dead {
		return ErrUnknownID
	}
	loc, ok := base.EffectiveByID(id)
	if !ok {
		return ErrUnknownID
	}
	o.tomb[id] = struct{}{}
	dr.add(loc)
	return nil
}

// Apply implements Mutator: ops apply in order under one mutation
// lock; every applied op advances the epoch by one, and the whole
// batch becomes visible atomically in a single snapshot swap — the
// intermediate epochs exist in the Result stream but are never
// observable as snapshots. A failed op leaves state untouched and is
// reported in its Result; later ops still run. With a Journal
// attached, the applied ops are journaled before the swap; a journal
// error aborts the whole batch (every op reports the error, nothing
// becomes visible). Mutations never consume query budget.
func (d *Database) Apply(ctx context.Context, ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	d.mu.Lock()
	s := d.snap.Load()
	epoch := s.epoch
	o := overlayFrom(s)
	var dr dirty
	var appliedOps []Op
	for i := range ops {
		if err := ctx.Err(); err != nil {
			results[i] = Result{Epoch: epoch, Err: err}
			d.rejected.Add(1)
			continue
		}
		if err := o.apply(s.base, ops[i], &dr); err != nil {
			results[i] = Result{Epoch: epoch, Err: err}
			d.rejected.Add(1)
			continue
		}
		epoch++
		results[i] = Result{Epoch: epoch}
		appliedOps = append(appliedOps, ops[i])
	}
	if len(appliedOps) == 0 {
		d.mu.Unlock()
		return results
	}
	if d.journal != nil {
		// Write-ahead: the batch must be durable before it is visible.
		// On failure nothing happened — every op that would have applied
		// reports the journal error at the unchanged epoch.
		if err := d.journal.Append(s.epoch, appliedOps); err != nil {
			jerr := fmt.Errorf("live: journal append: %w", err)
			for i := range results {
				if results[i].Err == nil {
					results[i] = Result{Epoch: s.epoch, Err: jerr}
					d.rejected.Add(1)
				}
			}
			d.mu.Unlock()
			return results
		}
	}
	for _, op := range appliedOps {
		if d.lopts.CompactThreshold > 0 {
			// The op log only feeds compaction replay; with compaction
			// disabled it would just grow without bound.
			d.oplog = append(d.oplog, op)
		}
		switch op.Kind {
		case OpInsert:
			d.inserts.Add(1)
		case OpDelete:
			d.deletes.Add(1)
		case OpMove:
			d.moves.Add(1)
		}
	}
	d.snap.Store(d.buildSnapshot(s.base, epoch, o.tomb, o.deltaTuples, o.deltaByID))
	if d.lopts.CompactThreshold > 0 && o.size() >= d.lopts.CompactThreshold && !d.compacting {
		d.compacting = true
		go d.compactBG()
	}
	d.mu.Unlock()
	if d.lopts.OnInvalidate != nil {
		r := math.Max(d.opts.MaxRadius, d.lopts.InvalidationRadius)
		d.lopts.OnInvalidate(dr.region(d.opts.Metric, r))
	}
	return results
}

// compactPass flattens one snapshot into a fresh base off-lock, then
// briefly takes the mutation lock to replay whatever ops landed
// meanwhile onto a fresh overlay and swap the result in. The epoch —
// and the visible contents — do not change at the swap; queries in
// flight keep their old snapshot. It returns the overlay size left
// behind (the ops that raced the rebuild).
func (d *Database) compactPass() int {
	d.mu.Lock()
	s := d.snap.Load()
	pos := len(d.oplog) // ops ≤ pos are inside s and so inside newBase
	d.mu.Unlock()

	newBase := materialize(s) // heavy: full kd-tree rebuild, no locks held

	d.mu.Lock()
	defer d.mu.Unlock()
	o := &overlay{tomb: map[int64]struct{}{}, deltaByID: map[int64]int{}}
	var dr dirty
	for _, op := range d.oplog[pos:] {
		// Replaying an op that originally succeeded against logically
		// identical contents cannot fail.
		if err := o.apply(newBase, op, &dr); err != nil {
			panic(fmt.Sprintf("live: compaction replay failed: %v", err))
		}
	}
	cur := d.snap.Load()
	d.snap.Store(d.buildSnapshot(newBase, cur.epoch, o.tomb, o.deltaTuples, o.deltaByID))
	d.oplog = append(d.oplog[:0:0], d.oplog[pos:]...)
	d.compactions.Add(1)
	return o.size()
}

// compactBG is the background rebuilder: passes run serialized under
// cmu until the overlay is back below the threshold. The compacting
// flag (under mu) only prevents Apply from piling up goroutines; cmu
// is what serializes actual rebuild work against Compact.
func (d *Database) compactBG() {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	for {
		size := d.compactPass()
		d.mu.Lock()
		if size < d.lopts.CompactThreshold {
			d.compacting = false
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
	}
}

// Compact synchronously flattens the whole overlay into a fresh base,
// first waiting out any in-flight background pass. Tests and
// administrative tooling use it; normal operation relies on the
// background trigger.
func (d *Database) Compact() {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	for {
		d.mu.Lock()
		clean := d.snap.Load().clean()
		d.mu.Unlock()
		if clean {
			return
		}
		d.compactPass()
	}
}
