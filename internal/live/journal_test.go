package live_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// recordingJournal captures appended batches; failN makes the next N
// Appends fail.
type recordingJournal struct {
	batches [][]live.Op
	epochs  []uint64
	failN   int
}

var errJournalDown = errors.New("journal device full")

func (r *recordingJournal) Append(epochBefore uint64, ops []live.Op) error {
	if r.failN > 0 {
		r.failN--
		return errJournalDown
	}
	r.epochs = append(r.epochs, epochBefore)
	r.batches = append(r.batches, append([]live.Op(nil), ops...))
	return nil
}

func TestJournalSeesAppliedOpsBeforeVisibility(t *testing.T) {
	sc := workload.USASchools(50, 3)
	j := &recordingJournal{}
	d, err := live.New(sc.DB, lbs.Options{K: 5}, live.Options{Journal: j, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := []live.Op{
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 900, Loc: geom.Pt(-100, 40)}},
		{Kind: live.OpDelete, ID: 900},
		{Kind: live.OpDelete, ID: 12345}, // rejected: unknown ID
		{Kind: live.OpMove, ID: 1, Loc: geom.Pt(-99, 41)},
	}
	results := d.Apply(context.Background(), ops)
	if results[2].Err == nil {
		t.Fatal("delete of unknown ID must fail")
	}
	if len(j.batches) != 1 || j.epochs[0] != 0 {
		t.Fatalf("journal got %d batches (epochs %v), want 1 at epoch 0", len(j.batches), j.epochs)
	}
	// Only the ops that applied reach the journal, in order.
	got := j.batches[0]
	if len(got) != 3 {
		t.Fatalf("journaled %d ops, want the 3 applied", len(got))
	}
	if got[0].Kind != live.OpInsert || got[1].Kind != live.OpDelete || got[2].Kind != live.OpMove {
		t.Fatalf("journaled kinds %v %v %v, want insert delete move", got[0].Kind, got[1].Kind, got[2].Kind)
	}
	if d.Epoch() != 3 {
		t.Fatalf("epoch %d, want 3", d.Epoch())
	}
}

func TestJournalFailureAbortsWholeBatch(t *testing.T) {
	sc := workload.USASchools(50, 3)
	j := &recordingJournal{failN: 1}
	d, err := live.New(sc.DB, lbs.Options{K: 5}, live.Options{Journal: j, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	ops := []live.Op{
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 901, Loc: geom.Pt(-100, 40)}},
		{Kind: live.OpMove, ID: 2, Loc: geom.Pt(-99, 41)},
	}
	results := d.Apply(context.Background(), ops)
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("op %d reported success despite the journal failure", i)
		}
		if !errors.Is(r.Err, errJournalDown) {
			t.Fatalf("op %d error %v does not wrap the journal error", i, r.Err)
		}
		if r.Epoch != before.Epoch {
			t.Fatalf("op %d epoch %d, want unchanged %d", i, r.Epoch, before.Epoch)
		}
	}
	// Nothing became visible: the insert is absent and the epoch froze.
	if d.Epoch() != before.Epoch {
		t.Fatalf("epoch advanced to %d on a failed journal append", d.Epoch())
	}
	if _, _, ok := d.Lookup(901); ok {
		t.Fatal("insert visible despite the aborted batch")
	}

	// The journal recovered: the same batch applies cleanly now.
	for _, r := range d.Apply(context.Background(), ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if d.Epoch() != before.Epoch+2 {
		t.Fatalf("epoch %d after retry, want %d", d.Epoch(), before.Epoch+2)
	}
}

func TestStartEpochOffsetsResults(t *testing.T) {
	sc := workload.USASchools(20, 3)
	d, err := live.New(sc.DB, lbs.Options{K: 5}, live.Options{StartEpoch: 100, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 100 {
		t.Fatalf("epoch %d, want the StartEpoch 100", d.Epoch())
	}
	results := d.Apply(context.Background(), []live.Op{
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 902, Loc: geom.Pt(-100, 40)}},
	})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Epoch != 101 || d.Epoch() != 101 {
		t.Fatalf("applied at %d (db %d), want 101", results[0].Epoch, d.Epoch())
	}
	_, ep := d.SnapshotAt()
	if ep != 101 {
		t.Fatalf("SnapshotAt epoch %d, want 101", ep)
	}
}
