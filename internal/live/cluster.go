package live

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/shard"
)

// Cluster is a federated live database: the spatial partitioner splits
// an immutable base into N shard databases, each fronted by its own
// live.Database (candidate-source configuration, exactly as FromParts
// builds immutable members), federated back through a shard.Router.
// Queries go through the Router's scatter-gather unchanged — the
// Router cannot tell a live member from an immutable one — and stay
// bit-identical to a single live.Database over the union. Mutations
// route by ownership: inserts to the shard whose region contains the
// location, deletes to the shard holding the ID, moves in place when
// the destination stays in the owner's region and as delete+insert
// across shards otherwise.
type Cluster struct {
	*shard.Router
	opts    lbs.Options // normalized logical options
	members []*Database
	regions []geom.Rect

	mu       sync.Mutex // serializes mutation routing
	rejected int64
}

var _ lbs.Querier = (*Cluster)(nil)
var _ Mutator = (*Cluster)(nil)

// NewCluster partitions base into n live shards behind a router. opts
// are the logical service options (the router owns budget, limiter and
// rank selection; members are unmetered candidate sources); lopts
// applies to every member — OnInvalidate fires with each member's
// dirty region, so one cache above the router hooks all shards.
func NewCluster(base *lbs.Database, opts lbs.Options, n int, lopts Options) (*Cluster, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	if lopts.Journal != nil {
		// Every member would share the one journal, interleaving per-shard
		// epoch streams that recovery cannot untangle. Durable live state
		// is single-database for now (store.OpenLive).
		return nil, fmt.Errorf("live: journaling a cluster is not supported")
	}
	parts := shard.Partition(base, n)
	c := &Cluster{
		opts:    norm,
		members: make([]*Database, len(parts)),
		regions: make([]geom.Rect, len(parts)),
	}
	shards := make([]shard.Shard, len(parts))
	for i, p := range parts {
		member, err := New(p, lbs.Options{K: norm.CandidateCount(), MaxRadius: norm.MaxRadius, Metric: norm.Metric}, lopts)
		if err != nil {
			return nil, err
		}
		c.members[i] = member
		c.regions[i] = p.Bounds()
		shards[i] = shard.Shard{Querier: member, Region: p.Bounds()}
	}
	c.Router, err = shard.NewRouter(shards, opts)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// exactContains is region containment without the geometric Eps slack:
// routing a mutation by Contains could place a tuple marginally
// outside its shard region and break the Router's ball-pruning
// invariant (every member tuple's effective location inside Region).
// Shard regions tile the bounds with shared boundaries, so any
// in-bounds location is exactly inside at least one region.
func exactContains(r geom.Rect, p geom.Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ownerRegion returns the first shard whose region exactly contains p,
// or −1. Boundary locations sit in two regions; first match keeps the
// choice deterministic.
func (c *Cluster) ownerRegion(p geom.Point) int {
	for i, r := range c.regions {
		if exactContains(r, p) {
			return i
		}
	}
	return -1
}

// ownerOfID returns the shard currently holding id, or −1.
func (c *Cluster) ownerOfID(id int64) int {
	for i, m := range c.members {
		if _, _, ok := m.Lookup(id); ok {
			return i
		}
	}
	return -1
}

// Epoch returns the sum of the member epochs: monotone, advancing
// with every applied mutation. A cross-shard move advances it by two
// (a delete and an insert on different members).
func (c *Cluster) Epoch() uint64 {
	var e uint64
	for _, m := range c.members {
		e += m.Epoch()
	}
	return e
}

// Lookup returns the tuple with the given ID from whichever shard
// holds it.
func (c *Cluster) Lookup(id int64) (lbs.Tuple, geom.Point, bool) {
	for _, m := range c.members {
		if t, loc, ok := m.Lookup(id); ok {
			return t, loc, true
		}
	}
	return lbs.Tuple{}, geom.Point{}, false
}

// Len returns the number of visible tuples across all shards.
func (c *Cluster) Len() int {
	n := 0
	for _, m := range c.members {
		n += m.Len()
	}
	return n
}

// LiveStats aggregates the members' live counters (the promoted
// Router Stats keeps reporting federation fan-out).
func (c *Cluster) LiveStats() Stats {
	var out Stats
	for _, m := range c.members {
		st := m.Stats()
		out.Epoch += st.Epoch
		out.BaseLen += st.BaseLen
		out.DeltaLen += st.DeltaLen
		out.Tombstones += st.Tombstones
		out.Inserts += st.Inserts
		out.Deletes += st.Deletes
		out.Moves += st.Moves
		out.Rejected += st.Rejected
		out.Compactions += st.Compactions
		out.Compacting = out.Compacting || st.Compacting
	}
	c.mu.Lock()
	out.Rejected += c.rejected
	c.mu.Unlock()
	return out
}

// Apply implements Mutator: each op routes to its owning shard, in
// order, under one routing lock. A cross-shard move is delete+insert
// on two members — not atomic across them: a concurrent query between
// the two halves can observe the tuple absent (never duplicated).
func (c *Cluster) Apply(ctx context.Context, ops []Op) []Result {
	results := make([]Result, len(ops))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range ops {
		results[i] = c.applyOne(ctx, ops[i])
	}
	return results
}

func (c *Cluster) applyOne(ctx context.Context, op Op) Result {
	fail := func(err error) Result {
		c.rejected++
		return Result{Epoch: c.Epoch(), Err: err}
	}
	switch op.Kind {
	case OpInsert:
		si := c.ownerRegion(op.Tuple.Loc)
		if si < 0 {
			return fail(ErrOutOfRegion)
		}
		if oi := c.ownerOfID(op.Tuple.ID); oi >= 0 {
			// Present on another shard: the owner member cannot see the
			// duplicate, so reject here.
			return fail(ErrDuplicateID)
		}
		r := c.members[si].Apply(ctx, []Op{op})[0]
		return Result{Epoch: c.Epoch(), Err: r.Err}
	case OpDelete:
		si := c.ownerOfID(op.ID)
		if si < 0 {
			return fail(ErrUnknownID)
		}
		r := c.members[si].Apply(ctx, []Op{op})[0]
		return Result{Epoch: c.Epoch(), Err: r.Err}
	case OpMove:
		si := c.ownerOfID(op.ID)
		if si < 0 {
			return fail(ErrUnknownID)
		}
		if exactContains(c.regions[si], op.Loc) {
			r := c.members[si].Apply(ctx, []Op{op})[0]
			return Result{Epoch: c.Epoch(), Err: r.Err}
		}
		ti := c.ownerRegion(op.Loc)
		if ti < 0 {
			return fail(ErrOutOfRegion) // tuple untouched
		}
		t, _, _ := c.members[si].Lookup(op.ID)
		t.Loc = op.Loc
		if r := c.members[si].Apply(ctx, []Op{{Kind: OpDelete, ID: op.ID}})[0]; r.Err != nil {
			return fail(r.Err)
		}
		r := c.members[ti].Apply(ctx, []Op{{Kind: OpInsert, Tuple: t}})[0]
		return Result{Epoch: c.Epoch(), Err: r.Err}
	}
	return fail(fmt.Errorf("live: unknown op kind %d", op.Kind))
}
