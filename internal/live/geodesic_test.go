package live_test

// Geodesic invalidation pins: under Haversine the dirty region of a
// mutation is a km-radius ball expanded to conservative degree
// margins (geo.Metric.ExpandRect), so cache eviction stays local — a
// 50 km influence radius over a 10°×10° region must drop the cells
// around the mutation, not the whole map — and the dirtied cell
// refetches the post-mutation answer.

import (
	"context"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
)

func TestLiveGeodesicCacheInvalidationIsLocal(t *testing.T) {
	// One tuple and one 1°×1° cache cell per degree square over
	// lon [0,10] × lat [40,50].
	bounds := geom.NewRect(geom.Pt(0, 40), geom.Pt(10, 50))
	var tuples []lbs.Tuple
	id := int64(1)
	var qpts []geom.Point
	for x := 0.5; x < 10; x++ {
		for y := 40.5; y < 50; y++ {
			tuples = append(tuples, lbs.Tuple{ID: id, Loc: geom.Pt(x, y)})
			qpts = append(qpts, geom.Pt(x, y))
			id++
		}
	}
	db := lbs.NewDatabase(bounds, tuples)
	opts := lbs.Options{K: 3, MaxRadius: 50, Metric: geo.Haversine} // km
	var cache *lbs.CachedOracle
	d, err := live.New(db, opts, live.Options{OnInvalidate: func(r geom.Rect) { cache.Invalidate(r) }})
	if err != nil {
		t.Fatal(err)
	}
	cache = lbs.NewCachedOracle(d, lbs.CacheOptions{Quantum: geo.KmPerDeg, Metric: geo.Haversine})
	ctx := context.Background()
	for _, p := range qpts {
		if _, err := cache.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries != int64(len(qpts)) {
		t.Fatalf("entries %d, want %d", st.Entries, len(qpts))
	}

	// Mutate in the northeast corner. 50 km at lat ~50° expands to
	// under half a degree of latitude and under a degree of longitude,
	// so at most a few neighboring cells can intersect the region.
	if r := d.Apply(ctx, []live.Op{{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 9999, Loc: geom.Pt(9.5, 49.5)}}})[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	st := cache.Stats()
	if st.Invalidations == 0 {
		t.Fatal("mutation invalidated nothing")
	}
	if st.Invalidations > 4 {
		t.Fatalf("invalidations %d: a 50 km dirty region must stay local on a degree grid", st.Invalidations)
	}
	if st.Entries != int64(len(qpts))-st.Invalidations {
		t.Fatalf("entries %d after %d invalidations of %d", st.Entries, st.Invalidations, len(qpts))
	}

	// A far-away entry survives and replays without forwarding…
	before := d.QueryCount()
	if _, err := cache.QueryLR(ctx, geom.Pt(0.5, 40.5), nil); err != nil {
		t.Fatal(err)
	}
	if d.QueryCount() != before {
		t.Fatal("surviving entry forwarded a query")
	}
	// …and the dirtied cell re-fetches the post-mutation answer.
	recs, err := cache.QueryLR(ctx, geom.Pt(9.5, 49.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refetched answer misses the inserted tuple: %+v", recs)
	}
}
