package live

import (
	"context"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// The read path. Every query resolves the snapshot pointer exactly
// once; a clean overlay delegates to the full-option service over the
// base (bit-for-bit the immutable behavior at near-zero overhead), a
// dirty overlay queries base and delta as distance-ranked candidate
// sources — tombstones excluded by filter, which is semantically
// identical to removing the tuples: a kNN prefix over the filtered
// base is the kNN prefix of the base minus the tombstoned tuples —
// and merges with lbs.MergeRanked, the same (dist, ID) contract the
// federation Router is pinned against.

// excludeTombstones composes the caller's filter with tombstone
// exclusion.
func excludeTombstones(tomb map[int64]struct{}, filter lbs.Filter) lbs.Filter {
	if len(tomb) == 0 {
		return filter
	}
	return func(t *lbs.Tuple) bool {
		if _, dead := tomb[t.ID]; dead {
			return false
		}
		return filter == nil || filter(t)
	}
}

// answerLR computes one merged LR answer against a fixed snapshot,
// without charging (callers charge the live meter first; the internal
// candidate services are unmetered).
func (d *Database) answerLR(ctx context.Context, s *snapshot, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if s.clean() {
		return s.full.QueryLR(ctx, q, filter)
	}
	baseRecs, err := s.baseCand.QueryLR(ctx, q, excludeTombstones(s.tomb, filter))
	if err != nil {
		return nil, err
	}
	if s.deltaCand == nil {
		return lbs.MergeRanked(q, d.opts, baseRecs), nil
	}
	deltaRecs, err := s.deltaCand.QueryLR(ctx, q, filter)
	if err != nil {
		return nil, err
	}
	return lbs.MergeRanked(q, d.opts, baseRecs, deltaRecs), nil
}

// QueryLR implements lbs.Querier.
func (d *Database) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if err := d.meter.Charge(ctx); err != nil {
		return nil, err
	}
	return d.answerLR(ctx, d.snap.Load(), q, filter)
}

// QueryLNR implements lbs.Querier: the merged LR answer with locations
// stripped — exactly how a single service derives LNR from its ranked
// candidates, so rank orders match bit for bit.
func (d *Database) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	if err := d.meter.Charge(ctx); err != nil {
		return nil, err
	}
	s := d.snap.Load()
	if s.clean() {
		return s.full.QueryLNR(ctx, q, filter)
	}
	recs, err := d.answerLR(ctx, s, q, filter)
	if err != nil {
		return nil, err
	}
	return lbs.StripLocations(recs), nil
}

// QueryLRBatch implements lbs.Querier with Service batch semantics:
// one atomic budget reservation, the granted prefix answered (all
// against one snapshot), nil for unanswered positions and
// ErrBudgetExhausted when the budget covered only part of the batch.
func (d *Database) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	out := make([][]lbs.LRRecord, len(pts))
	granted, err := d.meter.ChargeN(ctx, int64(len(pts)))
	if granted > 0 {
		s := d.snap.Load()
		for i := int64(0); i < granted; i++ {
			recs, qerr := d.answerLR(ctx, s, pts[i], filter)
			if qerr != nil {
				d.meter.Refund(granted - i)
				return out, qerr
			}
			out[i] = recs
		}
	}
	return out, err
}

// QueryLNRBatch implements lbs.Querier (see QueryLRBatch).
func (d *Database) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	out := make([][]lbs.LNRRecord, len(pts))
	granted, err := d.meter.ChargeN(ctx, int64(len(pts)))
	if granted > 0 {
		s := d.snap.Load()
		for i := int64(0); i < granted; i++ {
			recs, qerr := d.answerLR(ctx, s, pts[i], filter)
			if qerr != nil {
				d.meter.Refund(granted - i)
				return out, qerr
			}
			out[i] = lbs.StripLocations(recs)
		}
	}
	return out, err
}
