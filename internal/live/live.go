// Package live adds mutation to the otherwise immutable LBS stack: a
// live.Database wraps an immutable lbs.Database with an LSM-style
// delta overlay — an insert buffer plus a tombstone set — merged into
// every answer inside the existing (dist, ID) ordering contract, so a
// live database with any overlay answers bit-identically to a plain
// lbs.Service over the materialized tuple set.
//
// Reads never block on writes: every query resolves one atomic
// snapshot pointer and computes entirely against immutable state
// (lbs.Database values, a frozen tombstone set). Mutations are
// serialized under a mutex, build a fresh snapshot copy-on-write and
// swap it in; a monotone epoch counter advances with every applied
// mutation, so two equal epochs always describe bit-identical
// contents. When the overlay outgrows a threshold, a background
// rebuilder compacts base+overlay into a fresh kd-tree-backed base and
// swaps it in — queries observe the swap only as the overlay emptying;
// the epoch (and the answers) do not change.
//
// Mutations rank inserts and moves at their given true location;
// obfuscation is a database-construction concern — callers wanting
// obfuscated effective locations apply the distortion before Apply.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// Mutation errors. Apply reports them per op; an op that fails leaves
// the database unchanged and does not advance the epoch.
var (
	// ErrUnknownID: delete or move of an ID not currently present.
	ErrUnknownID = errors.New("live: unknown tuple ID")
	// ErrDuplicateID: insert of an ID currently present.
	ErrDuplicateID = errors.New("live: duplicate tuple ID")
	// ErrOutOfRegion: cluster insert/move to a location no shard region
	// covers (outside the federation's bounds).
	ErrOutOfRegion = errors.New("live: location outside every shard region")
)

// OpKind selects what an Op does.
type OpKind uint8

const (
	// OpInsert adds Op.Tuple (its ID must not be present).
	OpInsert OpKind = iota
	// OpDelete removes the tuple with Op.ID.
	OpDelete
	// OpMove relocates the tuple with Op.ID to Op.Loc, keeping its
	// attributes. One move costs one epoch, not two.
	OpMove
)

// String names the kind for logs and wire encodings.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpMove:
		return "move"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one mutation.
type Op struct {
	Kind  OpKind
	Tuple lbs.Tuple  // OpInsert: the tuple to add
	ID    int64      // OpDelete, OpMove: the target tuple
	Loc   geom.Point // OpMove: the destination
}

// Result is the per-op outcome of Apply: the epoch the op applied at
// (the value Epoch reports once the op is visible), or the error that
// rejected it (Epoch then reports the last applied epoch).
type Result struct {
	Epoch uint64
	Err   error
}

// Mutator is the write surface of a live database — what the HTTP
// ingest endpoint and the churn workloads program against. Apply
// applies ops in order, each atomically; ops after a failed op are
// still attempted. Implementations are safe for concurrent use.
type Mutator interface {
	Apply(ctx context.Context, ops []Op) []Result
}

// Journal is the durability hook of a live database: Apply calls
// Append with each batch's applied ops — under the mutation lock,
// BEFORE the new snapshot becomes visible — so an implementation that
// persists the batch (internal/store's write-ahead log) makes every
// visible mutation recoverable. epochBefore is the database epoch the
// batch applies on top of; the ops are exactly the ones that
// succeeded, in order, each advancing the epoch by one. An Append
// error aborts the whole batch: nothing becomes visible, every op
// reports the journal error, and the epoch does not advance —
// durability failures are never silent.
//
// Append runs with the mutation lock held, so it serializes naturally
// against the journal owner's checkpointing; it must not call back
// into the database.
type Journal interface {
	Append(epochBefore uint64, ops []Op) error
}

// Options configures the mutable layer (the query semantics come from
// the lbs.Options passed to New).
type Options struct {
	// CompactThreshold is the overlay size (inserts + tombstones) that
	// triggers a background compaction into a fresh base. 0 means the
	// default (1024); negative disables compaction entirely.
	CompactThreshold int
	// InvalidationRadius, when positive, is the influence radius used
	// for dirty-region computation when the service has no MaxRadius.
	// Without a MaxRadius no finite radius is provably correct (a
	// mutation can change kNN answers arbitrarily far away in sparse
	// data), so this is an operator heuristic; leaving both zero makes
	// every mutation dirty the whole plane (full cache invalidation).
	InvalidationRadius float64
	// OnInvalidate, when set, is called after each Apply that changed
	// the database, with the dirty region: the bounding box of disks of
	// the influence radius around every mutated (old and new) effective
	// location. Query caches hook this to evict exactly the entries a
	// mutation could have staled. The callback runs outside the
	// mutation lock, after the new snapshot is visible — so answers
	// cached between swap and callback are already fresh and eviction
	// is only ever conservative.
	OnInvalidate func(geom.Rect)
	// Journal, when set, records every applied batch before it becomes
	// visible (write-ahead). See Journal. Recovery paths that replay a
	// journal into a fresh database construct it without one and attach
	// it afterwards via SetJournal, so the replay is not re-journaled.
	Journal Journal
	// StartEpoch is the epoch the database begins at — 0 for a fresh
	// database, the checkpoint epoch when reconstructing recovered
	// state, so replayed mutations land at exactly the epochs they
	// originally applied at.
	StartEpoch uint64
}

// Stats is a point-in-time snapshot of a live database's shape and
// mutation counters.
type Stats struct {
	Epoch       uint64 // applied mutations since construction
	BaseLen     int    // tuples in the immutable base
	DeltaLen    int    // tuples in the insert buffer
	Tombstones  int    // base tuples hidden by deletion/move
	Inserts     int64  // applied OpInserts
	Deletes     int64  // applied OpDeletes
	Moves       int64  // applied OpMoves
	Rejected    int64  // ops rejected with an error
	Compactions int64  // completed background compactions
	Compacting  bool   // a compaction is in flight
}

// snapshot is one immutable point-in-time state: queries resolve the
// pointer once and never look back. base and delta are immutable
// lbs.Databases; tomb is frozen (mutations copy it before changing).
type snapshot struct {
	epoch uint64
	base  *lbs.Database
	// full answers queries on a clean overlay: the base under the
	// database's complete logical options (fast path — zero merge
	// overhead when nothing has changed since the last compaction).
	full *lbs.Service
	// baseCand/deltaCand are distance-ranked candidate sources
	// (K = CandidateCount, shared MaxRadius, no budget) whose merged
	// answers reproduce a single service over the materialized tuples —
	// the same member-service construction the federation Router uses.
	baseCand    *lbs.Service
	tomb        map[int64]struct{}
	deltaTuples []lbs.Tuple
	deltaByID   map[int64]int
	deltaCand   *lbs.Service // nil when the insert buffer is empty
}

func (s *snapshot) clean() bool { return len(s.tomb) == 0 && len(s.deltaTuples) == 0 }

// Database is a mutable LBS: an immutable base plus a delta overlay,
// queryable through the full lbs.Querier surface with the exact
// semantics of an lbs.Service over the current tuple set — ordering,
// MaxRadius coverage, prominence ranking, budget and batch-prefix
// behavior included. It additionally implements Mutator. Safe for
// concurrent use; queries are lock-free.
type Database struct {
	opts  lbs.Options // normalized logical options
	lopts Options
	meter *lbs.Meter
	snap  atomic.Pointer[snapshot]

	mu          sync.Mutex // serializes mutations and compaction bookkeeping
	cmu         sync.Mutex // serializes compaction passes (held across rebuilds)
	journal     Journal    // guarded by mu; nil = no durability hook
	oplog       []Op       // applied ops since the current base was built
	compacting  bool
	inserts     atomic.Int64
	deletes     atomic.Int64
	moves       atomic.Int64
	rejected    atomic.Int64
	compactions atomic.Int64
}

var (
	_ lbs.Querier = (*Database)(nil)
	_ Mutator     = (*Database)(nil)
)

const defaultCompactThreshold = 1024

// New builds a live database over an immutable base. opts are the
// logical service options (exactly as NewService takes them); lopts
// configures the mutable layer.
func New(base *lbs.Database, opts lbs.Options, lopts Options) (*Database, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	if lopts.CompactThreshold == 0 {
		lopts.CompactThreshold = defaultCompactThreshold
	}
	d := &Database{
		opts:    norm,
		lopts:   lopts,
		journal: lopts.Journal,
		meter:   lbs.NewMeter(norm.Budget, norm.Limiter),
	}
	d.snap.Store(d.buildSnapshot(base, lopts.StartEpoch, nil, nil, nil))
	return d, nil
}

// SetJournal attaches (or detaches, with nil) the durability hook.
// Recovery uses it: replay journal ops into a journal-less database,
// then attach the journal before serving mutations, so the replay is
// not recorded twice. It synchronizes with Apply — batches in flight
// finish under the journal they started with.
func (d *Database) SetJournal(j Journal) {
	d.mu.Lock()
	d.journal = j
	d.mu.Unlock()
}

// candOpts is the candidate-source configuration shared by base and
// delta services (see snapshot).
func (d *Database) candOpts() lbs.Options {
	return lbs.Options{K: d.opts.CandidateCount(), MaxRadius: d.opts.MaxRadius, Metric: d.opts.Metric}
}

// unmetered strips budget and limiter from the logical options: the
// live Database's own meter is the single accounting point, the
// internal services answer for free.
func (d *Database) unmetered() lbs.Options {
	o := d.opts
	o.Budget = 0
	o.Limiter = nil
	return o
}

// buildSnapshot assembles a snapshot from overlay state. Caller owns
// the passed maps/slices from here on (they are frozen).
func (d *Database) buildSnapshot(base *lbs.Database, epoch uint64,
	tomb map[int64]struct{}, deltaTuples []lbs.Tuple, deltaByID map[int64]int) *snapshot {

	s := &snapshot{
		epoch:       epoch,
		base:        base,
		full:        lbs.NewService(base, d.unmetered()),
		baseCand:    lbs.NewService(base, d.candOpts()),
		tomb:        tomb,
		deltaTuples: deltaTuples,
		deltaByID:   deltaByID,
	}
	if len(deltaTuples) > 0 {
		// Delta effective locations are the tuples' true locations (see
		// the package comment on obfuscation).
		locs := make([]geom.Point, len(deltaTuples))
		for i := range deltaTuples {
			locs[i] = deltaTuples[i].Loc
		}
		delta := lbs.NewDatabaseWithLocations(base.Bounds(), deltaTuples, locs)
		s.deltaCand = lbs.NewService(delta, d.candOpts())
	}
	return s
}

// Bounds implements lbs.Querier. The coverage region is fixed at
// construction; mutations happen within it.
func (d *Database) Bounds() geom.Rect { return d.snap.Load().base.Bounds() }

// K implements lbs.Querier.
func (d *Database) K() int { return d.opts.K }

// Metric returns the distance metric the live view ranks by.
func (d *Database) Metric() geo.Metric { return d.opts.Metric }

// Options returns the normalized logical options.
func (d *Database) Options() lbs.Options { return d.opts }

// QueryCount implements lbs.Querier: answered points, the paper's cost
// metric. Mutations are not queries and are never charged.
func (d *Database) QueryCount() int64 { return d.meter.Count() }

// ResetQueryCount zeroes the counter (between experiment runs).
func (d *Database) ResetQueryCount() { d.meter.Reset() }

// RemainingBudget reports how many queries the budget still covers
// (−1 = unlimited).
func (d *Database) RemainingBudget() int64 { return d.meter.Remaining() }

// VirtualWaited reports accumulated virtual rate-limit waiting time.
func (d *Database) VirtualWaited() time.Duration { return d.meter.VirtualWaited() }

// Epoch returns the mutation epoch: the number of applied mutations.
// The epoch identifies contents — two equal epochs from one Database
// always describe bit-identical tuple sets (compaction reorganizes
// storage without touching either). Bracketing a query between two
// Epoch calls that agree proves the answer was computed at exactly
// that epoch.
func (d *Database) Epoch() uint64 { return d.snap.Load().epoch }

// Snapshot returns the current contents materialized as an immutable
// lbs.Database (base tuples minus tombstones plus the insert buffer,
// effective locations carried over). It is built fresh on every call —
// ground-truth evaluation and tests use it; queries never do.
func (d *Database) Snapshot() *lbs.Database {
	return materialize(d.snap.Load())
}

// SnapshotAt is Snapshot plus the epoch the snapshot is at, read from
// the same atomic load so the pair is consistent even under concurrent
// mutation. Checkpointing uses it: the materialized database and the
// epoch it captures travel together into the on-disk pack header.
func (d *Database) SnapshotAt() (*lbs.Database, uint64) {
	s := d.snap.Load()
	return materialize(s), s.epoch
}

// Lookup returns a copy of the tuple with the given ID as currently
// visible, with its effective (ranking) location.
func (d *Database) Lookup(id int64) (lbs.Tuple, geom.Point, bool) {
	s := d.snap.Load()
	return lookup(s, id)
}

func lookup(s *snapshot, id int64) (lbs.Tuple, geom.Point, bool) {
	if i, ok := s.deltaByID[id]; ok {
		return s.deltaTuples[i], s.deltaTuples[i].Loc, true
	}
	if _, dead := s.tomb[id]; dead {
		return lbs.Tuple{}, geom.Point{}, false
	}
	if t, ok := s.base.ByID(id); ok {
		loc, _ := s.base.EffectiveByID(id)
		return *t, loc, true
	}
	return lbs.Tuple{}, geom.Point{}, false
}

// Len returns the number of currently visible tuples.
func (d *Database) Len() int {
	s := d.snap.Load()
	return s.base.Len() - len(s.tomb) + len(s.deltaTuples)
}

// Stats returns the database's shape and mutation counters.
func (d *Database) Stats() Stats {
	s := d.snap.Load()
	d.mu.Lock()
	compacting := d.compacting
	d.mu.Unlock()
	return Stats{
		Epoch:       s.epoch,
		BaseLen:     s.base.Len(),
		DeltaLen:    len(s.deltaTuples),
		Tombstones:  len(s.tomb),
		Inserts:     d.inserts.Load(),
		Deletes:     d.deletes.Load(),
		Moves:       d.moves.Load(),
		Rejected:    d.rejected.Load(),
		Compactions: d.compactions.Load(),
		Compacting:  compacting,
	}
}

// LiveStats is Stats under the name composite layers re-export it as
// (a Cluster promotes the Router's federation Stats, so the live
// counters need a distinct method name on every implementation).
func (d *Database) LiveStats() Stats { return d.Stats() }

// materialize flattens a snapshot into one immutable lbs.Database:
// surviving base tuples (with their effective locations) followed by
// the insert buffer. Answer-identical to the overlay by the merge
// contract; the kd-tree layout differs, which the (dist, ID) ordering
// makes unobservable.
func materialize(s *snapshot) *lbs.Database {
	n := s.base.Len() - len(s.tomb) + len(s.deltaTuples)
	tuples := make([]lbs.Tuple, 0, n)
	locs := make([]geom.Point, 0, n)
	for i := 0; i < s.base.Len(); i++ {
		t := s.base.Tuple(i)
		if _, dead := s.tomb[t.ID]; dead {
			continue
		}
		tuples = append(tuples, *t)
		locs = append(locs, s.base.EffectiveLoc(i))
	}
	for i := range s.deltaTuples {
		tuples = append(tuples, s.deltaTuples[i])
		locs = append(locs, s.deltaTuples[i].Loc)
	}
	return lbs.NewDatabaseWithLocations(s.base.Bounds(), tuples, locs)
}
