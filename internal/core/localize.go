package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Localize infers the position of tuple t to (approximately) EdgeEps
// precision using only rank information (§4.3). anchor must be a
// location where t is the top-1 result (e.g. the query that discovered
// t). The query cost is O(m log(1/ε)): one top-1 cell inference plus
// one extra bisector search per used vertex (the paper's "two
// additional calls to the binary search process").
//
// The per-vertex construction differs from the paper's angle
// bookkeeping in form but not substance. At a cell vertex o formed by
// edges L1 = B(t, t2) and L2 = B(t, t3), o is the circumcenter of
// (t, t2, t3) and also lies on d2 = B(t2, t3), whose direction one
// bracket search recovers. Reflection across a perpendicular bisector
// swaps its defining points, so for any p on d2,
//
//	d(p, t2) = d(p, t3)  ⇒  d(R1(p), t) = d(R2(p), t)
//	⇒  t ∈ Bisector(R1(p), R2(p)),
//
// with R1, R2 the reflections across L1, L2. That bisector is exactly
// the line through o and t (verified analytically and in tests), i.e.
// the same line the paper derives via its angle identity a+b+c = π.
// Two vertices give two such lines; their intersection is t.
func (a *LNRAggregator) Localize(ctx context.Context, tID int64, anchor geom.Point) (geom.Point, error) {
	recs, err := a.prober.probe(ctx, anchor)
	if err != nil {
		return geom.Point{}, err
	}
	if rankIn(recs, tID) != 0 {
		return geom.Point{}, fmt.Errorf("core: Localize anchor does not return tuple %d as top-1", tID)
	}
	_, cctx, err := a.buildCell(ctx, tID, 1, anchor)
	if err != nil {
		return geom.Point{}, err
	}
	return a.localizeWith(ctx, cctx)
}

// vertexLine is one (o, line-through-t) pair derived at a cell vertex.
type vertexLine struct {
	o    geom.Point
	line geom.Line
}

// localizeWith runs the two-vertex reflection construction over an
// inferred top-1 cell.
func (a *LNRAggregator) localizeWith(ctx context.Context, c *lnrCell) (geom.Point, error) {
	a.stats.Localizations++
	if c.h != 1 {
		return geom.Point{}, fmt.Errorf("core: localization requires a top-1 cell")
	}
	keys := c.region.CutKeys()
	if len(keys) < 2 {
		return geom.Point{}, fmt.Errorf("core: cell of %d has %d inferred edges; need ≥ 2", c.tID, len(keys))
	}
	verts := c.region.Vertices()
	// Candidate vertices: intersections of cut-line pairs, preferring
	// transverse pairs whose intersection coincides with an actual
	// region vertex (true Voronoi vertices, where the ring probe can
	// observe both opposing tuples).
	type cand struct {
		k1, k2   int64
		o        geom.Point
		vertDist float64
		cross    float64
	}
	var cands []cand
	for i := 0; i < len(keys); i++ {
		l1, _ := c.region.CutLine(keys[i])
		for j := i + 1; j < len(keys); j++ {
			l2, _ := c.region.CutLine(keys[j])
			cross := math.Abs(l1.Normal().Cross(l2.Normal()))
			if cross < 1e-3 {
				continue
			}
			o, ok := l1.Intersect(l2)
			if !ok || !a.bound.Contains(o) {
				continue
			}
			vd := math.Inf(1)
			for _, v := range verts {
				if d := v.Dist(o); d < vd {
					vd = d
				}
			}
			cands = append(cands, cand{k1: keys[i], k2: keys[j], o: o, vertDist: vd, cross: cross})
		}
	}
	if len(cands) < 2 {
		return geom.Point{}, fmt.Errorf("core: cell of %d lacks two usable vertices", c.tID)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].vertDist < cands[j].vertDist })

	sep := math.Max(math.Sqrt(c.region.Area())/10, a.params.deltaPrime)
	var lines []vertexLine
	for _, cd := range cands {
		if len(lines) >= 2 {
			break
		}
		// Skip vertices too close to one already used: their lines
		// would be nearly identical.
		dup := false
		for _, vl := range lines {
			if vl.o.Dist(cd.o) < sep {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		vl, err := a.vertexLineAt(ctx, c, cd.k1, cd.k2, cd.o)
		if err != nil {
			continue // try the next candidate vertex
		}
		lines = append(lines, vl)
	}
	if len(lines) < 2 {
		return geom.Point{}, fmt.Errorf("core: could not derive two vertex lines for %d", c.tID)
	}
	t, ok := lines[0].line.Intersect(lines[1].line)
	if !ok {
		return geom.Point{}, fmt.Errorf("core: vertex lines for %d are parallel", c.tID)
	}
	if !a.bound.Expand(a.bound.Diagonal() * 0.01).Contains(t) {
		return geom.Point{}, fmt.Errorf("core: localization of %d landed outside the region", c.tID)
	}
	return t, nil
}

// vertexLineAt derives the line through vertex o and the hidden tuple
// via the reflection construction, spending one ring search plus one
// bracket search to infer d2 = B(t2, t3).
func (a *LNRAggregator) vertexLineAt(ctx context.Context, c *lnrCell, k1, k2 int64, o geom.Point) (vertexLine, error) {
	l1, _ := c.region.CutLine(k1)
	l2, _ := c.region.CutLine(k2)
	d2, err := a.findThirdBisector(ctx, c, k1, k2, o)
	if err != nil {
		return vertexLine{}, err
	}
	scale := math.Max(o.Dist(c.c1), math.Sqrt(c.region.Area()))
	if scale < geom.Eps {
		scale = a.bound.Diagonal() / 100
	}
	p := o.Add(d2.Direction().Scale(scale))
	r1, r2 := l1.Reflect(p), l2.Reflect(p)
	if r1.Dist(r2) < geom.Eps {
		return vertexLine{}, fmt.Errorf("core: degenerate reflection at vertex %v", o)
	}
	return vertexLine{o: o, line: geom.Bisector(r1, r2)}, nil
}

// findThirdBisector infers d2 = B(t2, t3) through o: it probes a ring
// of points around o looking for a rank flip between t2 and t3, then
// bracket-searches the flipping arc chord. The line through o and the
// flip point is d2 (both o and the flip point are equidistant to t2
// and t3).
func (a *LNRAggregator) findThirdBisector(ctx context.Context, c *lnrCell, t2, t3 int64, o geom.Point) (geom.Line, error) {
	// Ring radius: a modest fraction of the cell scale keeps both
	// t2 and t3 within the top-k at the probes.
	radius := math.Max(math.Sqrt(c.region.Area())/4, o.Dist(c.c1)/4)
	if radius < geom.Eps {
		radius = a.bound.Diagonal() / 200
	}
	const ringProbes = 16
	type probePt struct {
		p   geom.Point
		ord int
	}
	for attempt := 0; attempt < 3; attempt++ {
		ring := make([]probePt, 0, ringProbes)
		for i := 0; i < ringProbes; i++ {
			ang := 2 * math.Pi * float64(i) / ringProbes
			p := o.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(radius))
			if !a.bound.Contains(p) {
				continue
			}
			recs, err := a.prober.probe(ctx, p)
			if err != nil {
				return geom.Line{}, err
			}
			ring = append(ring, probePt{p: p, ord: relOrder(recs, t2, t3)})
		}
		// Find an adjacent +1/−1 pair on the ring.
		for i := 0; i < len(ring); i++ {
			pi := ring[i]
			pj := ring[(i+1)%len(ring)]
			if pi.ord == +1 && pj.ord == -1 || pi.ord == -1 && pj.ord == +1 {
				pos, neg := pi.p, pj.p
				if pi.ord == -1 {
					pos, neg = pj.p, pi.p
				}
				pred := func(p geom.Point) (bool, error) {
					recs, err := a.prober.probe(ctx, p)
					if err != nil {
						return false, err
					}
					return relOrder(recs, t2, t3) > 0, nil
				}
				c3, c4, err := predicateSearch(pos, neg, a.params.delta(), pred)
				if err != nil {
					return geom.Line{}, err
				}
				flip := c3.Mid(c4)
				if flip.Dist(o) < radius/8 {
					continue // too close to o for a stable direction
				}
				return geom.LineThrough(o, flip), nil
			}
		}
		radius /= 2 // shrink toward o where t2/t3 visibility improves
	}
	return geom.Line{}, fmt.Errorf("core: could not observe a (t2, t3) rank flip near the vertex")
}
