package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// TestAccumulatorMatchesNaive property-checks Welford's algorithm
// against the two-pass formulas.
func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		var acc Accumulator
		var sum float64
		for _, x := range xs {
			acc.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(wantVar))
		return math.Abs(acc.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(acc.Variance()-wantVar) < 1e-6*scale
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 2 + r.Intn(50)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64() * 100
			}
			args[0] = reflect.ValueOf(xs)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRatioOfProperties property-checks the AVG combination.
func TestRatioOfProperties(t *testing.T) {
	f := func(num, den, seN, seD float64) bool {
		n := Result{Estimate: num, StdErr: math.Abs(seN)}
		d := Result{Estimate: den, StdErr: math.Abs(seD)}
		r := RatioOf(n, d)
		if den == 0 {
			return math.IsNaN(r.Estimate)
		}
		if math.Abs(r.Estimate-num/den) > 1e-12*math.Max(1, math.Abs(num/den)) {
			return false
		}
		return r.StdErr >= 0 || math.IsNaN(r.StdErr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCountBiasBoundProperties property-checks the Theorem-2 bound:
// non-negative, monotone in ε, vanishing at ε = 0.
func TestCountBiasBoundProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		ds := make([]float64, n)
		for i := range ds {
			ds[i] = rng.Float64()*10 + 0.01
		}
		e1 := rng.Float64() * 0.005
		e2 := e1 + rng.Float64()*0.004
		b1, _ := CountBiasBound(ds, e1)
		b2, _ := CountBiasBound(ds, e2)
		if b1 < 0 || b2 < 0 {
			t.Fatalf("negative bound: %v %v", b1, b2)
		}
		if b2 < b1-1e-12 {
			t.Fatalf("bound not monotone: ε %v→%v gave %v→%v", e1, e2, b1, b2)
		}
		if b0, _ := CountBiasBound(ds, 0); b0 != 0 {
			t.Fatalf("bound at ε=0: %v", b0)
		}
	}
}

// TestHistoryProperties property-checks the observation store.
func TestHistoryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewHistory()
	locs := map[int64]geom.Point{}
	for i := 0; i < 500; i++ {
		id := int64(rng.Intn(100))
		p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		fresh := h.Observe(id, p)
		_, existed := locs[id]
		if fresh == existed {
			t.Fatalf("Observe freshness wrong for %d", id)
		}
		if !existed {
			locs[id] = p
		}
		// First observation wins (static database).
		if got, _ := h.Loc(id); got != locs[id] {
			t.Fatalf("history overwrote location of %d", id)
		}
	}
	if h.Len() != len(locs) {
		t.Fatalf("len %d vs %d", h.Len(), len(locs))
	}
	// Sites excludes exactly the requested tuple.
	for id := range locs {
		sites := h.Sites(id)
		if len(sites) != len(locs)-1 {
			t.Fatalf("sites length with exclusion: %d", len(sites))
		}
		for _, s := range sites {
			if s.Key == id {
				t.Fatalf("excluded id present")
			}
		}
		break
	}
	// CountCloser agrees with direct computation.
	target := geom.Pt(5, 5)
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		want := 0
		for id, l := range locs {
			if id == 7 {
				continue
			}
			if p.Dist2(l) < p.Dist2(target) {
				want++
			}
		}
		if got := h.CountCloser(p, target, 7); got != want {
			t.Fatalf("CountCloser %d vs %d", got, want)
		}
	}
}

// TestLREstimatorInvariantEmptyDBRegion checks the estimator over a
// region devoid of tuples: every sample returns the nearest outside
// tuples whose cells barely intersect — estimates must stay finite and
// the zero-contribution rule must apply under a coverage cap.
func TestLREstimatorInvariantEmptyDBRegion(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	// All tuples in the left half.
	tuples := make([]lbs.Tuple, 30)
	rng := rand.New(rand.NewSource(2))
	for i := range tuples {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: geom.Pt(rng.Float64()*40, rng.Float64()*100)}
	}
	db := lbs.NewDatabase(bounds, tuples)
	svc := lbs.NewService(db, lbs.Options{K: 2, MaxRadius: 10})
	opts := DefaultLROptions(3)
	// Estimation region = right half: almost every query is empty.
	opts.Region = geom.NewRect(geom.Pt(50, 0), geom.Pt(100, 100))
	agg := NewLRAggregator(svc, opts)
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(200))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res[0].Estimate) || math.IsInf(res[0].Estimate, 0) {
		t.Fatalf("estimate not finite: %v", res[0].Estimate)
	}
	if res[0].Estimate > 5 {
		t.Errorf("near-empty region estimated %v tuples", res[0].Estimate)
	}
	if agg.Stats().EmptyAnswers == 0 {
		t.Errorf("expected empty answers")
	}
}

// TestLRSeedDeterminism: identical seeds must reproduce identical runs.
func TestLRSeedDeterminism(t *testing.T) {
	db := smallService2(60, 881)
	run := func() []float64 {
		svc := lbs.NewService(db, lbs.Options{K: 3})
		agg := NewLRAggregator(svc, DefaultLROptions(12345))
		res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(40))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res[0].Trace))
		for i, tp := range res[0].Trace {
			out[i] = tp.Estimate
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestLNRSeedDeterminism mirrors the determinism check for LNR.
func TestLNRSeedDeterminism(t *testing.T) {
	db := smallService2(40, 883)
	run := func() float64 {
		svc := lbs.NewService(db, lbs.Options{K: 3})
		agg := NewLNRAggregator(svc, LNROptions{Seed: 777})
		res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(10))
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Estimate
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
