package core

import (
	"repro/internal/cell"
	"repro/internal/geom"
)

// History accumulates every tuple location an LR estimation run has
// observed, across all queries of all samples. Because the hidden
// database is static, past observations stay valid, and the history
// lets later Voronoi-cell computations start from a much tighter
// initial bounding region (the "leveraging history" device, §3.2.2)
// and provides the λ_h upper bounds for the adaptive top-h choice
// (§3.2.3) at zero query cost.
type History struct {
	locs  map[int64]geom.Point
	sites []cell.Site // cached slice view, rebuilt lazily
	dirty bool
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{locs: make(map[int64]geom.Point)}
}

// Observe records a tuple sighting and reports whether it was new.
func (h *History) Observe(id int64, loc geom.Point) bool {
	if _, ok := h.locs[id]; ok {
		return false
	}
	h.locs[id] = loc
	h.dirty = true
	return true
}

// Len returns the number of distinct tuples seen.
func (h *History) Len() int { return len(h.locs) }

// Loc returns the recorded location of a tuple.
func (h *History) Loc(id int64) (geom.Point, bool) {
	p, ok := h.locs[id]
	return p, ok
}

// Sites returns all observed tuples except the one with excludeID, as
// cell sites ready for insertion. The underlying slice is cached and
// shared between calls; callers must not retain it across Observe
// calls.
func (h *History) Sites(excludeID int64) []cell.Site {
	if h.dirty {
		h.sites = h.sites[:0]
		for id, loc := range h.locs {
			h.sites = append(h.sites, cell.Site{Key: id, Loc: loc})
		}
		h.dirty = false
	}
	out := make([]cell.Site, 0, len(h.sites))
	for _, s := range h.sites {
		if s.Key != excludeID {
			out = append(out, s)
		}
	}
	return out
}

// CountCloser returns how many observed tuples are strictly closer to
// p than target is — used by the lower-bound skip test of §3.2.4 to
// decide membership in the top-h cell without a query, once disk
// coverage guarantees all relevant tuples have been observed.
func (h *History) CountCloser(p geom.Point, target geom.Point, excludeID int64) int {
	dt := p.Dist2(target)
	n := 0
	for id, loc := range h.locs {
		if id == excludeID {
			continue
		}
		if p.Dist2(loc) < dt {
			n++
		}
	}
	return n
}
