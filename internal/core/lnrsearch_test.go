package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPredicateSearchBracket(t *testing.T) {
	// Predicate: left of the vertical line x = 3.7.
	pred := func(p geom.Point) (bool, error) { return p.X < 3.7, nil }
	a, b := geom.Pt(0, 0), geom.Pt(10, 0)
	c3, c4, err := predicateSearch(a, b, 1e-6, pred)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Dist(c4) > 1e-6 {
		t.Fatalf("bracket too wide: %v", c3.Dist(c4))
	}
	if c3.X >= 3.7 || c4.X < 3.7 {
		t.Fatalf("bracket missed the boundary: %v %v", c3, c4)
	}
	if math.Abs(c3.Mid(c4).X-3.7) > 1e-6 {
		t.Fatalf("midpoint off the boundary: %v", c3.Mid(c4))
	}
}

func TestPredicateSearchErrorPropagation(t *testing.T) {
	pred := func(p geom.Point) (bool, error) { return false, errTest }
	if _, _, err := predicateSearch(geom.Pt(0, 0), geom.Pt(1, 0), 1e-3, pred); err == nil {
		t.Fatal("error not propagated")
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestTwoPointLineRecoversBisector exercises the literal Algorithm-7
// construction (kept as the reference implementation even though the
// production path uses flip-point accumulation): given a membership
// oracle for a half-plane, the derived line must approximate the
// half-plane's boundary.
func TestTwoPointLineRecoversBisector(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	params := newEdgeSearchParams(0.01, bounds)
	tt := geom.Pt(30, 40)
	other := geom.Pt(60, 70)
	trueLine := geom.Bisector(tt, other)
	pred := func(p geom.Point) (bool, error) { return p.Dist2(tt) <= p.Dist2(other), nil }
	anchor := tt
	// Primary bracket along +x.
	exit, _ := geom.RayRectExit(anchor, geom.Pt(1, 1), bounds)
	c3, c4, err := predicateSearch(anchor, exit, params.deltaCoarse, pred)
	if err != nil {
		t.Fatal(err)
	}
	line, err := twoPointLine(anchor, c3, c4, params, bounds, pred)
	if err != nil {
		t.Fatal(err)
	}
	// The derived line must be nearly parallel to the true bisector and
	// close to it at the bracket point.
	dot := math.Abs(line.Normal().Dot(trueLine.Normal()))
	if dot < 0.9999 {
		t.Errorf("direction off: |cos| = %v", dot)
	}
	if d := trueLine.Dist(c3.Mid(c4)); d > 0.01 {
		t.Errorf("bracket point off the bisector: %v", d)
	}
}

func TestRefineBracketTightens(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	params := newEdgeSearchParams(0.5, bounds)
	boundary := 42.0
	pred := func(p geom.Point) (bool, error) { return p.X < boundary, nil }
	anchor := geom.Pt(0, 0)
	c3, c4, err := predicateSearch(anchor, geom.Pt(100, 0), params.deltaCoarse, pred)
	if err != nil {
		t.Fatal(err)
	}
	r3, r4, deltaFine, err := refineBracket(anchor, c3, c4, params, pred)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Dist(r4) > deltaFine+1e-12 {
		t.Errorf("refined bracket wider than fine delta: %v > %v", r3.Dist(r4), deltaFine)
	}
	if deltaFine > params.deltaCoarse {
		t.Errorf("fine delta exceeds coarse: %v", deltaFine)
	}
	if math.Abs(r3.Mid(r4).X-boundary) > deltaFine {
		t.Errorf("refined bracket off boundary")
	}
}

func TestFineDeltaMonotonicity(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	p := newEdgeSearchParams(0.2, bounds)
	prev := math.Inf(1)
	for _, r := range []float64{0.1, 1, 10, 100} {
		d := p.fineDelta(r)
		if d > prev+1e-15 {
			t.Errorf("fineDelta increased at r=%v", r)
		}
		if d <= 0 || d > p.deltaCoarse {
			t.Errorf("fineDelta out of range at r=%v: %v", r, d)
		}
		prev = d
	}
}

func TestAsinSafeClamps(t *testing.T) {
	if asinSafe(2) != math.Pi/2 || asinSafe(-2) != -math.Pi/2 {
		t.Errorf("clamping broken")
	}
	if math.Abs(asinSafe(0.5)-math.Asin(0.5)) > 1e-15 {
		t.Errorf("interior value wrong")
	}
}
