package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/lbs"
	"repro/internal/shard"
)

// batchSpecs builds n aggregate specs sharing 4 distinct selections:
// kinds rotate per selection, and the last rotation re-states its
// conjunction with the children reordered, which canonicalization
// must fuse with the original. This is the acceptance workload (16
// aggregates, 4 predicates).
func batchSpecs(n int) []AggSpec {
	and := And(AttrCmp("weight", "ge", 2), TagEq("flag", "yes"))
	andReordered := And(TagEq("flag", "yes"), AttrCmp("weight", "ge", 2))
	preds := []PredSpec{
		AttrCmp("weight", "ge", 3),
		TagEq("flag", "yes"),
		Or(TagEq("flag", "no"), AttrCmp("weight", "lt", 8)),
		and,
	}
	specs := make([]AggSpec, 0, n)
	for i := 0; i < n; i++ {
		p := preds[i%len(preds)]
		var s AggSpec
		switch i / len(preds) {
		case 0:
			s = CountSpec().WithWhere(p)
		case 1:
			s = SumSpec("weight").WithWhere(p)
		case 2:
			s = AvgSpec("weight").WithWhere(p)
		default:
			if i%len(preds) == len(preds)-1 {
				p = andReordered // same selection, different spelling
			}
			s = CountSpec().WithWhere(p).WithLabel(fmt.Sprintf("recount-%d", i))
		}
		specs = append(specs, s)
	}
	return specs
}

// TestPlanBatchDedup: 16 specs over 4 distinct selections fuse into
// one LR group with one SUM and one COUNT physical per selection, and
// the reordered conjunction dedups into its canonical twin.
func TestPlanBatchDedup(t *testing.T) {
	specs := batchSpecs(16)
	plan, err := PlanBatch(specs, PlanOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 1 {
		t.Fatalf("got %d groups, want 1 (auto over an LR interface)", len(plan.Groups))
	}
	g := plan.Groups[0]
	if g.Method != MethodLR {
		t.Fatalf("auto picked %s, want lr", g.Method)
	}
	if plan.Preds != 4 {
		t.Fatalf("distinct predicates = %d, want 4", plan.Preds)
	}
	// 4 selections × {COUNT, SUM} = 8 fused physicals for 16 specs.
	if len(g.Aggs) != 8 {
		t.Fatalf("got %d physical aggregates, want 8 (16 specs fused)", len(g.Aggs))
	}
	if len(g.PredHashes) != 4 {
		t.Fatalf("got %d predicate hashes, want 4", len(g.PredHashes))
	}
	if len(g.Specs) != 16 || len(g.entries) != 16 {
		t.Fatalf("group covers %d specs / %d entries, want 16/16", len(g.Specs), len(g.entries))
	}
	if g.Seed != 7 {
		t.Fatalf("group 0 seed = %d, want the batch seed 7", g.Seed)
	}
}

// TestPlanBatchGroupsLNRByLocation: under a forced LNR method,
// location-reading selections split into their own group (they pay
// the §4.3 localization surcharge per sample), with a distinct
// derived seed.
func TestPlanBatchGroupsLNRByLocation(t *testing.T) {
	svc, _ := smallService(t, 40, 2, 5)
	specs := []AggSpec{
		CountSpec(),
		CountSpec().WithWhere(InRect(svc.Bounds())).WithLabel("inside"),
		SumSpec("weight"),
	}
	plan, err := PlanBatch(specs, PlanOptions{Method: MethodLNR, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 2 {
		t.Fatalf("got %d groups, want 2 (location split)", len(plan.Groups))
	}
	for _, g := range plan.Groups {
		if g.Method != MethodLNR {
			t.Fatalf("group method %s, want lnr", g.Method)
		}
		if g.NeedsLocation && g.CostPerSample <= costLNR {
			t.Fatalf("location group cost %v not above base %v", g.CostPerSample, costLNR)
		}
	}
	if plan.Groups[0].Seed != 9 {
		t.Fatalf("group 0 seed = %d, want 9", plan.Groups[0].Seed)
	}
	if plan.Groups[1].Seed == 9 {
		t.Fatalf("group 1 must derive its own seed")
	}
}

// TestPlanBatchRejects: malformed specs and impossible method choices
// fail at plan time.
func TestPlanBatchRejects(t *testing.T) {
	if _, err := PlanBatch(nil, PlanOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := PlanBatch([]AggSpec{{Kind: "median"}}, PlanOptions{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := PlanBatch([]AggSpec{CountSpec()}, PlanOptions{Method: "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := PlanBatch([]AggSpec{CountSpec()}, PlanOptions{Method: MethodLR, RankOnly: true}); err == nil {
		t.Error("lr over a rank-only oracle accepted")
	}
}

// planBackend builds the batch and reference backends for the
// equivalence suite: a single service or an n-way federated router
// over the same database (pinned bit-identical by the shard suite).
func planBackend(t *testing.T, db *lbs.Database, k, shards int) Oracle {
	t.Helper()
	if shards <= 1 {
		return lbs.NewService(db, lbs.Options{K: k})
	}
	parts := shard.Partition(db, shards)
	members := make([]shard.Shard, len(parts))
	for i, part := range parts {
		members[i] = shard.Shard{
			Querier: lbs.NewService(part, lbs.Options{K: k}),
			Region:  part.Bounds(),
		}
	}
	r, err := shard.NewRouter(members, lbs.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPlanBatchEquivalentToIndependentRuns is the acceptance
// equivalence suite: a batch of aggregates over shared predicates
// produces estimates bit-identical to independent Runs with the same
// per-group seeds and sample counts, while consuming one sample
// stream's worth of queries per group — pinned for LR and LNR over a
// single service and a 4-shard federation.
func TestPlanBatchEquivalentToIndependentRuns(t *testing.T) {
	_, db := smallService(t, 90, 2, 5)
	specs := []AggSpec{
		CountSpec(),
		SumSpec("weight"),
		AvgSpec("weight").WithWhere(TagEq("flag", "yes")),
		CountSpec().WithWhere(And(AttrCmp("weight", "ge", 3), TagEq("flag", "yes"))).WithLabel("a"),
		CountSpec().WithWhere(And(TagEq("flag", "yes"), AttrCmp("weight", "ge", 3))).WithLabel("b"),
	}
	for _, method := range []string{MethodLR, MethodLNR} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", method, shards), func(t *testing.T) {
				ctx := context.Background()
				backend := planBackend(t, db, 2, shards)
				plan, err := PlanBatch(specs, PlanOptions{
					Method: method, Seed: 42, MaxSamples: 25, CheckpointSamples: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
				br, err := plan.Execute(ctx, backend, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(br.Results) != len(specs) {
					t.Fatalf("got %d results, want %d", len(br.Results), len(specs))
				}

				// Each spec, replayed independently with its group's
				// seed and sample count over a fresh backend, must land
				// on the same bits.
				var indepQueries int64
				for _, g := range br.Groups {
					for _, si := range g.Specs {
						ref := planBackend(t, db, 2, shards)
						est := newPlanEstimator(g.Method, ref, g.Seed)
						sp, err := CompilePlan([]AggSpec{specs[si]})
						if err != nil {
							t.Fatal(err)
						}
						phys, err := Run(ctx, est, sp.Aggs, WithMaxSamples(g.Samples))
						if err != nil {
							t.Fatal(err)
						}
						want := sp.Finish(phys)[0]
						got := br.Results[si]
						if got.Estimate != want.Estimate && !(math.IsNaN(got.Estimate) && math.IsNaN(want.Estimate)) {
							t.Errorf("spec %d (%s): batch estimate %v != independent %v",
								si, got.Name, got.Estimate, want.Estimate)
						}
						if got.StdErr != want.StdErr && !(math.IsNaN(got.StdErr) && math.IsNaN(want.StdErr)) {
							t.Errorf("spec %d (%s): batch stderr %v != independent %v",
								si, got.Name, got.StdErr, want.StdErr)
						}
						if got.CI95 != want.CI95 && !(math.IsNaN(got.CI95) && math.IsNaN(want.CI95)) {
							t.Errorf("spec %d (%s): batch ci95 %v != independent %v",
								si, got.Name, got.CI95, want.CI95)
						}
						if got.Samples != want.Samples {
							t.Errorf("spec %d (%s): batch samples %d != independent %d",
								si, got.Name, got.Samples, want.Samples)
						}
						indepQueries += want.Queries
					}
				}
				// Shared streams: the batch spends one stream per group,
				// not one per spec.
				if len(specs) > len(br.Groups) && br.Queries >= indepQueries {
					t.Errorf("batch spent %d queries, independent runs %d — no sharing",
						br.Queries, indepQueries)
				}
			})
		}
	}
}

// TestPlannerQuerySavings is the acceptance pin of the batch-cost
// claim: 16 aggregates sharing 4 distinct predicates, run at an equal
// confidence target, consume at most ~1/3 the oracle queries of 16
// independent runs (they consume ~1/16th plus the AVG slowdown; the
// 3× bar leaves slack for variance).
func TestPlannerQuerySavings(t *testing.T) {
	_, db := smallService(t, 150, 3, 6)
	specs := batchSpecs(16)
	const targetCI = 0.30
	ctx := context.Background()

	backend := lbs.NewService(db, lbs.Options{K: 3})
	plan, err := PlanBatch(specs, PlanOptions{Seed: 21, TargetCI: targetCI, MaxSamples: 4000})
	if err != nil {
		t.Fatal(err)
	}
	br, err := plan.Execute(ctx, backend, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The independent leg runs each spec as its own single-spec plan —
	// same stopping rule, same target, its own sample stream — which is
	// exactly what a client without the batch planner would submit 16
	// times.
	var indep int64
	for i, s := range specs {
		ref := lbs.NewService(db, lbs.Options{K: 3})
		sp, err := PlanBatch([]AggSpec{s}, PlanOptions{
			Seed: mixSeed(21, i), TargetCI: targetCI, MaxSamples: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		one, err := sp.Execute(ctx, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		indep += one.Queries
	}
	if 3*br.Queries > indep {
		t.Fatalf("batch spent %d queries, 16 independent runs %d: ratio %.2f, want ≤ 1/3",
			br.Queries, indep, float64(br.Queries)/float64(indep))
	}
	t.Logf("batch %d queries vs independent %d (ratio %.3f, %d samples)",
		br.Queries, indep, float64(br.Queries)/float64(indep), br.Samples)
}

// TestExecuteReplansAcrossGroups: a two-group plan records checkpoint
// re-allocations, and both groups make progress under one shared
// budget.
func TestExecuteReplansAcrossGroups(t *testing.T) {
	svc, _ := smallService(t, 40, 2, 5)
	specs := []AggSpec{
		CountSpec(),
		CountSpec().WithWhere(InRect(svc.Bounds())).WithLabel("inside"),
	}
	plan, err := PlanBatch(specs, PlanOptions{
		Method: MethodLNR, Seed: 3, MaxQueries: 4000, CheckpointSamples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var events int
	br, err := plan.Execute(context.Background(), svc, func(pp PlanProgress) {
		events++
		if len(pp.Points) == 0 || len(pp.Partial) != len(pp.Specs) {
			t.Errorf("malformed progress: %+v", pp)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Replans) == 0 {
		t.Error("no replan events recorded for a two-group plan")
	}
	if events != br.Samples {
		t.Errorf("progress fired %d times for %d samples", events, br.Samples)
	}
	for gi, g := range br.Groups {
		if g.Samples == 0 {
			t.Errorf("group %d starved: no samples", gi)
		}
	}
	// The cap is checked between samples, so the overshoot is bounded
	// by one in-flight sample per group (LNR samples cost dozens of
	// queries each).
	if br.Queries > 4000+300 {
		t.Errorf("budget overrun: %d queries vs cap 4000 (+1 sample/group slack)", br.Queries)
	}
}

// TestExecuteCancelYieldsPartials: cancellation mid-run is graceful —
// partial results with completed samples, no error.
func TestExecuteCancelYieldsPartials(t *testing.T) {
	svc, _ := smallService(t, 40, 2, 5)
	plan, err := PlanBatch([]AggSpec{CountSpec()}, PlanOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	br, err := plan.Execute(ctx, svc, func(PlanProgress) {
		if n++; n >= 5 {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Samples == 0 || br.Results[0].Samples == 0 {
		t.Fatalf("canceled run returned no partials: %+v", br)
	}
}
