package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lbs"
)

// Estimator is a sample source: an estimation algorithm that can draw
// one i.i.d. point sample and turn it into one unbiased per-sample
// estimate for each aggregate. LRAggregator, LNRAggregator and
// NNOBaseline all implement it; any future algorithm that does plugs
// into the same Driver and gets budgets, traces, early stopping and
// parallel execution for free.
type Estimator interface {
	// Step draws one random query location and returns one per-sample
	// estimate per aggregate. Queries issued during the step must
	// honor ctx.
	Step(ctx context.Context, aggs []Aggregate) ([]float64, error)
	// Service returns the Oracle the estimator queries, for cost
	// accounting (the paper's metric is the Oracle's QueryCount).
	Service() Oracle
	// Fork returns an independent estimator of the same configuration
	// over the same service, with its randomness re-seeded by seed.
	// Forks share no mutable state with the receiver or each other, so
	// a Driver may run them concurrently; the samples they draw stay
	// i.i.d. from the same query distribution.
	Fork(seed int64) Estimator
}

// All three algorithms of the paper plug into the Driver.
var (
	_ Estimator = (*LRAggregator)(nil)
	_ Estimator = (*LNRAggregator)(nil)
	_ Estimator = (*NNOBaseline)(nil)
)

// runConfig is the resolved option set of one Run call.
type runConfig struct {
	maxSamples  int
	maxQueries  int64
	targetCI    float64
	progress    func([]TracePoint)
	parallelism int
	batch       int
	noTrace     bool
}

// RunOption configures an estimation run (see Driver.Run).
type RunOption func(*runConfig)

// WithMaxSamples stops the run after n completed point samples
// (0 = unlimited).
func WithMaxSamples(n int) RunOption {
	return func(c *runConfig) { c.maxSamples = n }
}

// WithMaxQueries stops the run once the service has answered n queries
// on behalf of this run (0 = unlimited). The limit is checked between
// samples, so a run finishes samples in flight and may overshoot by
// one sample's worth of queries — per worker: under WithParallelism(p)
// the overshoot can reach p in-flight samples, and under WithBatch(m)
// each in-flight unit is a whole batch, so the bound is p×m samples'
// worth. Against a paid or hard-capped remote API, enforce the cap on
// the service side (ServiceOptions.Budget or the adapter) as well.
func WithMaxQueries(n int64) RunOption {
	return func(c *runConfig) { c.maxQueries = n }
}

// ciMinSamples is the number of samples required before the TargetCI
// stopping rule is consulted; earlier the variance estimate is too
// noisy to trust.
const ciMinSamples = 16

// WithTargetCI stops the run once every aggregate's 95 % confidence
// half-width has fallen below rel × |estimate| (after a minimum of
// ciMinSamples samples). rel ≤ 0 disables the rule.
func WithTargetCI(rel float64) RunOption {
	return func(c *runConfig) { c.targetCI = rel }
}

// WithProgress registers a streaming callback invoked after every
// completed sample with one TracePoint per aggregate (index-aligned
// with the aggs given to Run). The callback runs on the driver's
// collector goroutine; it must not block for long and must not call
// back into the run.
func WithProgress(fn func(points []TracePoint)) RunOption {
	return func(c *runConfig) { c.progress = fn }
}

// WithoutTrace disables recording the per-sample trace in the
// Results (Result.Trace stays nil). The trace grows by one point per
// aggregate per sample, so effectively unbounded runs — long-lived
// estimation jobs streaming progress elsewhere — should not also
// accumulate it in memory. WithProgress still streams every point.
func WithoutTrace() RunOption {
	return func(c *runConfig) { c.noTrace = true }
}

// WithParallelism draws point samples from n concurrent workers, each
// an independent Fork of the estimator, and merges their accumulator
// states (the pairwise variance combination of Chan et al.). Samples
// are i.i.d. and order-free, so the merged estimate has exactly the
// same distribution as a serial run of equal size; with a remote
// (latency-bound) Oracle the wall-clock time shrinks almost linearly
// in n. n ≤ 1 means serial.
func WithParallelism(n int) RunOption {
	return func(c *runConfig) { c.parallelism = n }
}

// Driver executes an Estimator against its service: it repeatedly
// draws samples, folds them into running accumulators, records the
// estimate-versus-cost trace, and stops on whichever bound — sample
// count, query budget, confidence target, service exhaustion or
// context cancellation — triggers first.
//
// Cancellation is graceful: a context canceled mid-run behaves like an
// exhausted budget, returning the Results of the samples completed so
// far (an error is returned only when not even one sample finished).
type Driver struct {
	Est Estimator
}

// Run executes the estimation. See the package documentation for the
// stopping rules; with no options it runs until the service refuses
// further queries (lbs.ErrBudgetExhausted) or ctx is canceled.
func (d *Driver) Run(ctx context.Context, aggs []Aggregate, opts ...RunOption) ([]Result, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("core: no aggregates given")
	}
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.parallelism > 1 {
		return d.runParallel(ctx, aggs, cfg)
	}
	return d.runSerial(ctx, aggs, cfg)
}

// Run is the convenience entry point the estimators' Run methods
// delegate to: Run(ctx, est, aggs, opts...) ≡ (&Driver{Est: est}).Run.
func Run(ctx context.Context, est Estimator, aggs []Aggregate, opts ...RunOption) ([]Result, error) {
	return (&Driver{Est: est}).Run(ctx, aggs, opts...)
}

// stopErr reports whether err ends the run gracefully rather than
// fatally: the service budget is spent, or the run's own context was
// canceled. A context-flavored error while ctx is still live (e.g. a
// per-request http.Client timeout) is a transport failure, not a
// graceful stop — it must surface to the caller, or a flaky remote
// would silently truncate runs.
func stopErr(ctx context.Context, err error) bool {
	if errors.Is(err, lbs.ErrBudgetExhausted) {
		return true
	}
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// degradedCount walks the service's wrapper chain (lbs.Wrapper) for a
// layer reporting how many queries it answered degraded — a federation
// router's DegradedCount, or a TolerantQuerier's absorbed annotations.
// 0 when no layer tracks degradation (every non-federated stack).
func degradedCount(svc Oracle) int64 {
	cur := any(svc)
	for cur != nil {
		if dc, ok := cur.(interface{ DegradedCount() int64 }); ok {
			return dc.DegradedCount()
		}
		w, ok := cur.(lbs.Wrapper)
		if !ok {
			return 0
		}
		cur = w.Inner()
	}
	return 0
}

// ciMet reports whether every accumulator satisfies the relative
// confidence target.
func ciMet(accs []Accumulator, rel float64) bool {
	if rel <= 0 {
		return false
	}
	if accs[0].N() < ciMinSamples {
		return false
	}
	for i := range accs {
		if accs[i].CI95() > rel*math.Abs(accs[i].Mean()) {
			return false
		}
	}
	return true
}

// finalize assembles Results from accumulator states.
func finalize(aggs []Aggregate, accs []Accumulator, traces [][]TracePoint, queries int64, degraded int) []Result {
	results := make([]Result, len(aggs))
	for j := range aggs {
		results[j].Name = aggs[j].Name
		results[j].Estimate = accs[j].Mean()
		results[j].StdErr = accs[j].StdErr()
		results[j].CI95 = accs[j].CI95()
		results[j].Samples = accs[j].N()
		results[j].Queries = queries
		results[j].DegradedSamples = degraded
		if traces != nil {
			results[j].Trace = traces[j]
		}
	}
	return results
}

// runSerial is the single-goroutine driver loop (the v1 semantics plus
// cancellation, progress streaming and the CI stopping rule).
func (d *Driver) runSerial(ctx context.Context, aggs []Aggregate, cfg runConfig) ([]Result, error) {
	svc := d.Est.Service()
	accs := make([]Accumulator, len(aggs))
	traces := make([][]TracePoint, len(aggs))
	startQ := svc.QueryCount()
	points := make([]TracePoint, len(aggs))
	degradedSamples := 0
	for {
		if cfg.maxSamples > 0 && accs[0].N() >= cfg.maxSamples {
			break
		}
		if cfg.maxQueries > 0 && svc.QueryCount()-startQ >= cfg.maxQueries {
			break
		}
		if ctx.Err() != nil {
			break
		}
		m := cfg.batch
		if cfg.maxSamples > 0 {
			if rem := cfg.maxSamples - accs[0].N(); rem < m {
				m = rem
			}
		}
		deg0 := degradedCount(svc)
		batchVals, err := stepBatch(ctx, d.Est, aggs, m)
		q := svc.QueryCount() - startQ
		// Degradation is attributed at batch grain: any partial answer
		// during the batch marks every sample the batch completed.
		degraded := degradedCount(svc) > deg0
		for _, vals := range batchVals {
			if degraded {
				degradedSamples++
			}
			for j := range aggs {
				accs[j].Add(vals[j])
				points[j] = TracePoint{Queries: q, Samples: accs[j].N(), Estimate: accs[j].Mean(), Degraded: degraded}
				if !cfg.noTrace {
					traces[j] = append(traces[j], points[j])
				}
			}
			if cfg.progress != nil {
				cfg.progress(points)
			}
		}
		if stopErr(ctx, err) {
			break
		}
		if err != nil {
			return nil, err
		}
		if ciMet(accs, cfg.targetCI) {
			break
		}
	}
	if accs[0].N() == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: budget exhausted before completing a single sample")
	}
	return finalize(aggs, accs, traces, svc.QueryCount()-startQ, degradedSamples), nil
}

// sampleMsg carries one completed sample from a worker to the
// collector.
type sampleMsg struct {
	vals    []float64
	queries int64 // run-relative query count right after the sample
	// degraded marks the sample's batch as drawn while the shared
	// service answered degraded. Attribution across concurrent workers
	// is coarse (a partial answer in flight may mark another worker's
	// overlapping batch too) — conservative in the safe direction.
	degraded bool
}

// runParallel executes cfg.parallelism workers, each over an
// independent Fork of the estimator, against the shared service. Every
// worker folds its own samples into private Accumulators; the final
// estimate merges the per-worker states pairwise (Chan et al.), while
// a collector goroutine orders the streamed samples into the trace,
// drives the progress callback and evaluates the CI stopping rule.
func (d *Driver) runParallel(ctx context.Context, aggs []Aggregate, cfg runConfig) ([]Result, error) {
	svc := d.Est.Service()
	startQ := svc.QueryCount()
	n := cfg.parallelism

	// Workers: the receiver itself plus n−1 forks (re-seeded so their
	// random walks are independent).
	ests := make([]Estimator, n)
	ests[0] = d.Est
	for i := 1; i < n; i++ {
		ests[i] = d.Est.Fork(int64(i))
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		taken    atomic.Int64 // samples reserved (bounds maxSamples)
		fatalMu  sync.Mutex
		fatalErr error // first non-stop error
		wg       sync.WaitGroup
		workers  = make([][]Accumulator, n)
		samples  = make(chan sampleMsg, n*2)
	)
	for w := 0; w < n; w++ {
		workers[w] = make([]Accumulator, len(aggs))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			est := ests[w]
			accs := workers[w]
			for {
				if runCtx.Err() != nil {
					return
				}
				if cfg.maxQueries > 0 && svc.QueryCount()-startQ >= cfg.maxQueries {
					return
				}
				m := cfg.batch
				if cfg.maxSamples > 0 {
					got := taken.Add(int64(m))
					over := got - int64(cfg.maxSamples)
					if over >= int64(m) {
						return
					}
					if over > 0 {
						m -= int(over)
					}
				}
				deg0 := degradedCount(svc)
				batchVals, err := stepBatch(runCtx, est, aggs, m)
				q := svc.QueryCount() - startQ
				degraded := degradedCount(svc) > deg0
				for _, vals := range batchVals {
					// Hand the sample to the collector before folding it
					// in, so a cancellation between the two cannot produce
					// a merged state the trace/progress stream never saw:
					// a sample either reaches both or neither.
					select {
					case samples <- sampleMsg{vals: vals, queries: q, degraded: degraded}:
					case <-runCtx.Done():
						return
					}
					for j := range aggs {
						accs[j].Add(vals[j])
					}
				}
				if stopErr(runCtx, err) {
					return
				}
				if err != nil {
					fatalMu.Lock()
					if fatalErr == nil {
						fatalErr = err
					}
					fatalMu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(samples)
	}()

	// Collector: orders the stream into the trace and monitors the CI
	// target on its own running view of the merged state (same sample
	// set, so the view agrees with the final pairwise merge).
	monitor := make([]Accumulator, len(aggs))
	traces := make([][]TracePoint, len(aggs))
	points := make([]TracePoint, len(aggs))
	degradedSamples := 0
	for msg := range samples {
		if msg.degraded {
			degradedSamples++
		}
		for j := range aggs {
			monitor[j].Add(msg.vals[j])
			points[j] = TracePoint{Queries: msg.queries, Samples: monitor[j].N(), Estimate: monitor[j].Mean(), Degraded: msg.degraded}
			if !cfg.noTrace {
				traces[j] = append(traces[j], points[j])
			}
		}
		if cfg.progress != nil {
			cfg.progress(points)
		}
		if ciMet(monitor, cfg.targetCI) {
			cancel() // drain continues until workers exit
		}
	}

	if fatalErr != nil {
		return nil, fatalErr
	}
	// Pairwise merge of the per-worker accumulator states.
	final := make([]Accumulator, len(aggs))
	for w := 0; w < n; w++ {
		for j := range aggs {
			final[j].Merge(workers[w][j])
		}
	}
	if final[0].N() == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: budget exhausted before completing a single sample")
	}
	return finalize(aggs, final, traces, svc.QueryCount()-startQ, degradedSamples), nil
}
