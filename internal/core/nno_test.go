package core

import (
	"context"
	"testing"

	"repro/internal/lbs"
)

func TestNNOEstimatesCount(t *testing.T) {
	db := smallService2(60, 301)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 1})
	res, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150))
	if err != nil {
		t.Fatal(err)
	}
	// NNO is biased; accept a loose band around the truth.
	truth := float64(db.Len())
	if rel := res[0].RelErr(truth); rel > 0.6 {
		t.Errorf("NNO COUNT %v vs %v (rel %v)", res[0].Estimate, truth, rel)
	}
	if res[0].Queries == 0 || res[0].Samples != 150 {
		t.Errorf("run accounting: %+v", res[0])
	}
}

func TestNNOMoreExpensivePerSampleThanAGG(t *testing.T) {
	// The headline comparison: at equal sample counts NNO burns far
	// more queries than LR-LBS-AGG with devices enabled.
	db := smallService2(100, 307)
	svcN := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(svcN, NNOOptions{Seed: 3})
	if _, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(60)); err != nil {
		t.Fatal(err)
	}
	svcA := lbs.NewService(db, lbs.Options{K: 1})
	agg := NewLRAggregator(svcA, DefaultLROptions(3))
	if _, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(60)); err != nil {
		t.Fatal(err)
	}
	if svcN.QueryCount() <= svcA.QueryCount() {
		t.Errorf("NNO %d queries not above LR-AGG %d", svcN.QueryCount(), svcA.QueryCount())
	}
}

func TestNNOBudgetStop(t *testing.T) {
	db := smallService2(50, 311)
	svc := lbs.NewService(db, lbs.Options{K: 1, Budget: 200})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 5})
	res, err := nno.Run(context.Background(), []Aggregate{Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queries > 200 {
		t.Errorf("budget exceeded: %d", res[0].Queries)
	}
}

func TestNNONoAggregates(t *testing.T) {
	db := smallService2(10, 313)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 7})
	if _, err := nno.Run(context.Background(), nil, WithMaxSamples(5)); err == nil {
		t.Errorf("expected error")
	}
}

func TestNNOEmptyAnswer(t *testing.T) {
	db := smallService2(30, 317)
	svc := lbs.NewService(db, lbs.Options{K: 1, MaxRadius: 3})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 9})
	res, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(80))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 80 {
		t.Errorf("samples with empty answers: %d", res[0].Samples)
	}
}
