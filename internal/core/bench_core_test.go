package core

import (
	"context"
	"testing"

	"repro/internal/lbs"
)

// BenchmarkLRCellComputation measures one full exact-cell weight
// computation (queries are in-process, so this is the algorithmic
// overhead, not the simulated network).
func BenchmarkLRCellComputation(b *testing.B) {
	db := smallService2(500, 31)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	agg := NewLRAggregator(svc, DefaultLROptions(1))
	// Warm the history so the benchmark reflects steady state.
	if _, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(50)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Step(context.Background(), []Aggregate{Count()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(svc.QueryCount())/float64(agg.Stats().Samples), "queries/sample")
}

// BenchmarkLRSample measures one end-to-end LR estimator sample
// (query + cell computations for every exploited tuple) against the
// in-process oracle — the headline number of the geometry-engine
// overhaul, tracked in BENCH_geom.json.
func BenchmarkLRSample(b *testing.B) {
	db := smallService2(2000, 29)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	agg := NewLRAggregator(svc, DefaultLROptions(1))
	// Warm the history so the benchmark reflects steady state.
	if _, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(50)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Step(context.Background(), []Aggregate{Count()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(svc.QueryCount())/float64(agg.Stats().Samples), "queries/sample")
}

// BenchmarkLNRCellInference measures one rank-only sample (cell
// inference via binary search).
func BenchmarkLNRCellInference(b *testing.B) {
	db := smallService2(500, 37)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	agg := NewLNRAggregator(svc, LNROptions{Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Step(context.Background(), []Aggregate{Count()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(svc.QueryCount())/float64(agg.Stats().Samples), "queries/sample")
}

// BenchmarkNNOSample measures one baseline sample.
func BenchmarkNNOSample(b *testing.B) {
	db := smallService2(500, 41)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nno.Step(context.Background(), []Aggregate{Count()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(svc.QueryCount())/float64(b.N), "queries/sample")
}

// BenchmarkLocalize measures one §4.3 position inference.
func BenchmarkLocalize(b *testing.B) {
	db := smallService2(300, 43)
	svc := lbs.NewService(db, lbs.Options{K: 8})
	agg := NewLNRAggregator(svc, LNROptions{Seed: 4})
	b.ResetTimer()
	ok := 0
	for i := 0; i < b.N; i++ {
		idx := i % db.Len()
		if _, err := agg.Localize(context.Background(), db.Tuple(idx).ID, db.Tuple(idx).Loc); err == nil {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "success-rate")
}
