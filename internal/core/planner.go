package core

import (
	"fmt"
)

// This file is the multi-aggregate query planner: the layer that turns
// a batch of declarative AggSpecs into grouped, fused, shared-stream
// execution. A real analytics front end submits many aggregates at
// once; answering each from its own sample stream multiplies the cost
// against the metered kNN oracle — the scarcest resource in the whole
// system — by the batch size. PlanBatch instead:
//
//   - canonicalizes and dedups predicates across specs (canon.go), so
//     each distinct selection compiles once and is evaluated at most
//     once per returned record (the predicate fan-out of the operator
//     graph);
//   - fuses COUNT/SUM/AVG over the same selection into one physical
//     aggregate per (kind, attr, selection) — AVG contributes its
//     SUM/COUNT halves to the same pool — so a batch of M specs runs
//     far fewer than M physical accumulators;
//   - groups specs by compatible method, picked per group from a small
//     per-sample cost model (LR vs LNR vs NNO; LNR groups split by
//     location need, because §4.3 localization is a per-sample
//     surcharge only location-reading selections pay);
//   - allocates the shared query budget across groups by observed
//     accumulator variance, re-planned at checkpoint boundaries
//     (Execute).
//
// Execution is a chain of streaming operators over the sample trace:
// sample source (the group's Estimator) → predicate filter fan-out
// (predBank) → fused aggregators (one Accumulator per physical
// aggregate) → per-spec CI sinks (ratio finishing, progress,
// partials). Partial results and the NDJSON trace fall out of the
// operator graph: every completed sample streams one PlanProgress.

// Method names of the estimation algorithms the planner can schedule.
// They match the wire names of internal/jobs.
const (
	MethodAuto = "auto" // let the cost model choose per group
	MethodLR   = "lr"   // LR-LBS-AGG (§3)
	MethodLNR  = "lnr"  // LNR-LBS-AGG (§4)
	MethodNNO  = "nno"  // LR-LBS-NNO baseline (biased; only when forced)
)

// Per-sample query-cost model (heuristic constants, not measurements):
// enough to rank methods per group and to convert a query budget into
// sample quotas before any samples have been observed. After the first
// checkpoint Execute replaces the model with the group's observed
// queries/sample.
const (
	// costLR: one seed query plus the amortized cell-computation
	// confirmations of §3 (history reuse keeps the amortized cost low).
	costLR = 6.0
	// costLNR: the §4 bisector searches to pin the sample's cell.
	costLNR = 24.0
	// costLNRLocalize: the §4.3 localization surcharge per sample for
	// selections that read tuple locations over a rank-only interface.
	costLNRLocalize = 16.0
	// costNNO: the Dalvi et al. doubling races plus MC probes. Cheaper
	// than LNR but biased, so auto never picks it; forcing Method
	// "nno" schedules it.
	costNNO = 12.0
)

// PlanOptions configure PlanBatch: the method policy, the shared run
// bounds, and the batch's base seed.
type PlanOptions struct {
	// Method forces one algorithm for every group ("lr"|"lnr"|"nno");
	// "" or "auto" lets the cost model choose per group.
	Method string
	// RankOnly marks the oracle as rank-only (locations are not
	// returned): the cost model then schedules LNR instead of LR.
	RankOnly bool
	// Seed drives the whole batch. Group 0 uses it verbatim — a
	// single-group plan reproduces a legacy single-stream run with the
	// same seed — and group g derives a splitmix64-mixed seed, exposed
	// as PlanGroup.Seed so equivalence checks can replay groups.
	Seed int64
	// MaxQueries bounds the batch's total query spend across all
	// groups (0 = unlimited). It is the budget the checkpoint
	// allocator divides.
	MaxQueries int64
	// MaxSamples bounds each group's sample count (0 = unlimited).
	MaxSamples int
	// TargetCI retires a spec's group once every member spec's 95 %
	// confidence half-width falls below rel × |estimate| (after
	// ciMinSamples samples; 0 disables).
	TargetCI float64
	// CheckpointSamples is the re-planning grain: how many samples a
	// group runs between budget re-allocations (default 64).
	CheckpointSamples int
	// Batch draws up to m samples per oracle round-trip within a group
	// (see WithBatch; only batch-capable estimators exploit it).
	Batch int
}

// defaultCheckpointSamples is the re-plan grain when the caller does
// not choose one: small enough that a skewed batch re-balances early,
// large enough that allocation overhead is noise.
const defaultCheckpointSamples = 64

// QueryPlan is a compiled multi-aggregate batch: the validated source
// specs and the method groups that answer them. Build with PlanBatch,
// run with Execute.
//
// A QueryPlan is single-use and single-threaded: the fused physical
// aggregates of its groups share per-record predicate memos (predBank),
// so the Aggregates in PlanGroup.Aggs must not be run concurrently or
// through the Driver's parallel mode.
type QueryPlan struct {
	// Specs are the validated source specs, in request order.
	Specs []AggSpec
	// Groups are the method groups, each answering a disjoint subset
	// of Specs from one shared sample stream.
	Groups []PlanGroup
	// Preds is the number of distinct canonical predicates across the
	// batch (the dedup observable: specs ≥ Preds means sharing).
	Preds int

	opts PlanOptions
}

// PlanGroup is one method group of a QueryPlan: the specs it answers,
// the deduped physical aggregates that answer them, and the seed of
// its sample stream.
type PlanGroup struct {
	// Method is the algorithm the cost model picked for the group.
	Method string
	// Seed seeds the group's estimator (group 0 inherits the plan
	// seed verbatim).
	Seed int64
	// NeedsLocation marks groups whose selections read tuple
	// locations (meaningful for LNR: the §4.3 surcharge).
	NeedsLocation bool
	// CostPerSample is the modeled per-sample query cost used for the
	// method choice and the first budget allocation.
	CostPerSample float64
	// Specs are the indices into QueryPlan.Specs this group answers.
	Specs []int
	// Aggs are the fused physical aggregates (deduped by kind, attr
	// and canonical selection; AVG specs contribute their SUM/COUNT
	// halves). Their Value closures share a per-record predicate memo
	// and are not safe for concurrent use.
	Aggs []Aggregate
	// PredHashes are the structural hashes of the group's distinct
	// canonical predicates, in first-use order (observability: the CLI
	// prints them with the plan).
	PredHashes []uint64

	// entries maps each group-local spec to its physical aggregates.
	entries []planEntry
	bank    *predBank
}

// predBank is the predicate filter fan-out operator: every distinct
// canonical predicate of a group, compiled once, with a one-record
// memo so a record answered by k fused aggregates evaluates each
// predicate once instead of k times. The memo keys on the fields
// predicates can read (ID, HasLoc, Loc); consecutive Value calls on
// the same record hit it, and any other record resets it. Under a live
// (mutating) backend a record re-returned with changed attributes
// under an unchanged identity could reuse one stale predicate
// evaluation; the staleness window is bounded to a single record
// evaluation and only matters mid-mutation.
type predBank struct {
	preds []func(Record) bool

	valid   bool
	lastID  int64
	lastHas bool
	lastX   float64
	lastY   float64
	evald   []bool
	val     []bool
}

// eval returns predicate i's value on r through the memo.
func (b *predBank) eval(i int, r Record) bool {
	if !b.valid || r.ID != b.lastID || r.HasLoc != b.lastHas || r.Loc.X != b.lastX || r.Loc.Y != b.lastY {
		b.valid = true
		b.lastID, b.lastHas = r.ID, r.HasLoc
		b.lastX, b.lastY = r.Loc.X, r.Loc.Y
		for j := range b.evald {
			b.evald[j] = false
		}
	}
	if !b.evald[i] {
		b.val[i] = b.preds[i](r)
		b.evald[i] = true
	}
	return b.val[i]
}

// add registers a compiled predicate and returns its index.
func (b *predBank) add(fn func(Record) bool) int {
	b.preds = append(b.preds, fn)
	b.evald = append(b.evald, false)
	b.val = append(b.val, false)
	return len(b.preds) - 1
}

// fusedValue builds the per-record value closure of one physical
// aggregate whose selection is predicate pi of bank (pi < 0 = no
// selection). Semantically identical to compileValue over the compiled
// predicate — the memo only changes how often the predicate runs,
// never what it returns — which is what keeps planned runs
// bit-identical to independent ones.
func fusedValue(kind, attr string, bank *predBank, pi int) func(Record) float64 {
	if pi < 0 {
		return compileValue(kind, attr, nil)
	}
	if kind == AggCount {
		return func(r Record) float64 {
			if bank.eval(pi, r) {
				return 1
			}
			return 0
		}
	}
	return func(r Record) float64 {
		if bank.eval(pi, r) {
			return r.Attr(attr)
		}
		return 0
	}
}

// mixSeed derives group g's seed from the batch seed (splitmix64).
// Group 0 keeps the batch seed verbatim so single-group plans
// reproduce legacy runs.
func mixSeed(seed int64, g int) int64 {
	if g == 0 {
		return seed
	}
	z := uint64(seed) + uint64(g)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// chooseMethod picks the group's algorithm and its modeled per-sample
// cost. Auto picks the cheapest unbiased method the interface
// supports: LR over location-returned interfaces, LNR (plus the
// localization surcharge for location-reading groups) over rank-only
// ones. NNO is biased and only scheduled when forced.
func chooseMethod(forced string, rankOnly, needsLoc bool) (string, float64, error) {
	cost := func(method string) float64 {
		switch method {
		case MethodLNR:
			if needsLoc {
				return costLNR + costLNRLocalize
			}
			return costLNR
		case MethodNNO:
			return costNNO
		default:
			return costLR
		}
	}
	switch forced {
	case MethodLR:
		if rankOnly {
			return "", 0, fmt.Errorf("core: method lr needs returned locations; the oracle is rank-only (use lnr)")
		}
		return MethodLR, cost(MethodLR), nil
	case MethodLNR, MethodNNO:
		return forced, cost(forced), nil
	}
	// Auto: LR when locations are returned, LNR otherwise. The modeled
	// costs encode why: costLR < costLNR, and NNO's bias keeps it out
	// of auto plans entirely.
	if rankOnly {
		return MethodLNR, cost(MethodLNR), nil
	}
	return MethodLR, cost(MethodLR), nil
}

// PlanBatch validates and compiles a batch of aggregate specs into a
// grouped, fused QueryPlan (see the file comment for what the planner
// shares). The plan embeds opts; Execute runs it against an Oracle.
func PlanBatch(specs []AggSpec, opts PlanOptions) (*QueryPlan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no aggregates given")
	}
	switch opts.Method {
	case "", MethodAuto, MethodLR, MethodLNR, MethodNNO:
	default:
		return nil, fmt.Errorf("core: unknown method %q (want auto|lr|lnr|nno)", opts.Method)
	}
	if opts.CheckpointSamples <= 0 {
		opts.CheckpointSamples = defaultCheckpointSamples
	}
	plan := &QueryPlan{Specs: make([]AggSpec, len(specs)), opts: opts}
	copy(plan.Specs, specs)

	type groupKey struct {
		method   string
		needsLoc bool
	}
	groupOf := make(map[groupKey]int)
	type physRef struct{ group, idx int }
	// Group-local dedup tables, indexed by group.
	var physOf []map[string]int
	var predOf []map[string]int
	allPreds := make(map[string]struct{})

	// physIndex interns one physical aggregate (kind, attr, canonical
	// selection) into group g, compiling its predicate into the
	// group's bank on first use.
	physIndex := func(g int, kind, attr string, where *PredSpec) int {
		grp := &plan.Groups[g]
		key := physKey(kind, attr, where)
		if i, ok := physOf[g][key]; ok {
			return i
		}
		pi := -1
		if where != nil {
			c := where.Canon()
			pkey := c.canonKey()
			allPreds[pkey] = struct{}{}
			var ok bool
			if pi, ok = predOf[g][pkey]; !ok {
				pi = grp.bank.add(c.compile())
				predOf[g][pkey] = pi
				grp.PredHashes = append(grp.PredHashes, c.Hash())
			}
		}
		spec := AggSpec{Kind: kind, Attr: attr, Where: where}
		agg := Aggregate{
			Name:          spec.name(),
			Value:         fusedValue(kind, attr, grp.bank, pi),
			NeedsLocation: where != nil && where.needsLocation(),
		}
		physOf[g][key] = len(grp.Aggs)
		grp.Aggs = append(grp.Aggs, agg)
		return len(grp.Aggs) - 1
	}

	for i := range plan.Specs {
		s := &plan.Specs[i]
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		needsLoc := s.Where != nil && s.Where.needsLocation()
		method, cost, err := chooseMethod(normalizeMethod(opts.Method), opts.RankOnly, needsLoc)
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		// Only LNR pays per-sample for locations, so only LNR groups
		// split by location need; for LR/NNO the location is returned
		// for free and splitting would destroy sharing.
		key := groupKey{method: method}
		if method == MethodLNR {
			key.needsLoc = needsLoc
		}
		g, ok := groupOf[key]
		if !ok {
			g = len(plan.Groups)
			groupOf[key] = g
			plan.Groups = append(plan.Groups, PlanGroup{
				Method:        method,
				NeedsLocation: key.needsLoc,
				CostPerSample: cost,
				bank:          &predBank{},
			})
			physOf = append(physOf, make(map[string]int))
			predOf = append(predOf, make(map[string]int))
		}
		grp := &plan.Groups[g]
		var e planEntry
		if s.Kind == AggAvg {
			// AVG(attr | where) = SUM(attr | where) / COUNT(where):
			// both halves join the group's fused pool, so an explicit
			// SUM or COUNT over the same selection shares them.
			e.num = physIndex(g, AggSum, s.Attr, s.Where)
			e.den = physIndex(g, AggCount, "", s.Where)
		} else {
			e.num = physIndex(g, s.Kind, s.Attr, s.Where)
			e.den = -1
		}
		grp.Specs = append(grp.Specs, i)
		grp.entries = append(grp.entries, e)
	}
	for g := range plan.Groups {
		plan.Groups[g].Seed = mixSeed(opts.Seed, g)
	}
	plan.Preds = len(allPreds)
	return plan, nil
}

// normalizeMethod folds "" into auto.
func normalizeMethod(m string) string {
	if m == "" {
		return MethodAuto
	}
	return m
}

// Options returns the options the plan was compiled with.
func (p *QueryPlan) Options() PlanOptions { return p.opts }

// newPlanEstimator builds a group's sample source over svc.
func newPlanEstimator(method string, svc Oracle, seed int64) Estimator {
	switch method {
	case MethodLNR:
		return NewLNRAggregator(svc, LNROptions{Seed: seed})
	case MethodNNO:
		return NewNNOBaseline(svc, NNOOptions{Seed: seed})
	default: // MethodLR — PlanBatch only emits known methods
		return NewLRAggregator(svc, DefaultLROptions(seed))
	}
}
