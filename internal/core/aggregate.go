// Package core implements the paper's contribution: aggregate
// estimation over location based services through their restrictive
// kNN interfaces.
//
//   - LRAggregator is Algorithm LR-LBS-AGG (§3): completely unbiased
//     SUM/COUNT estimation over location-returned interfaces via exact
//     (top-k) Voronoi-cell computation, with the four error-reduction
//     devices of §3.2 (faster initialization, leveraging history,
//     adaptive top-h variance reduction, and Monte-Carlo upper/lower
//     bound confirmation).
//   - LNRAggregator is Algorithm LNR-LBS-AGG (§4): estimation over
//     rank-only interfaces, inferring Voronoi cells to arbitrary
//     precision from rank flips alone, handling top-k concavity
//     (Lemma 1), and inferring tuple positions (§4.3).
//   - NNOBaseline is the prior art LR-LBS-NNO (Dalvi et al., KDD'11),
//     reimplemented as the evaluation baseline.
//
// The estimators never touch the hidden database directly: all access
// goes through the lbs.Service query interface, and the number of
// queries issued is the cost metric throughout.
package core

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Oracle is the query surface the estimators run against: the
// restrictive kNN interface of a location based service. The
// in-process simulator (*lbs.Service) implements it; so can adapters
// over real provider APIs (see internal/httpapi for an HTTP
// implementation). Every query takes a context so that remote
// adapters can cancel in-flight requests and honor deadlines; the
// in-process simulator merely checks ctx between queries.
// Implementations must be safe for concurrent use (the Driver's
// parallel mode issues queries from several goroutines).
type Oracle interface {
	// QueryLR answers a location-returned kNN query.
	QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error)
	// QueryLNR answers a rank-only kNN query.
	QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error)
	// Bounds returns the coverage bounding box (the paper's region B).
	Bounds() geom.Rect
	// K returns the interface's top-k.
	K() int
	// QueryCount returns the number of queries answered so far — the
	// cost metric of the whole paper.
	QueryCount() int64
}

// Record is the estimator-visible view of a returned tuple. For LR
// interfaces HasLoc is true and Loc carries the returned location; for
// LNR interfaces HasLoc is false unless the aggregator localized the
// tuple (§4.3) because the aggregate needs it.
type Record struct {
	ID       int64
	HasLoc   bool
	Loc      geom.Point
	Name     string
	Category string
	Attrs    map[string]float64
	Tags     map[string]string
}

// Attr returns a numeric attribute or 0.
func (r Record) Attr(name string) float64 {
	if r.Attrs == nil {
		return 0
	}
	return r.Attrs[name]
}

// Tag returns a categorical attribute or "".
func (r Record) Tag(name string) string {
	if r.Tags == nil {
		return ""
	}
	return r.Tags[name]
}

// Aggregate is a SUM/COUNT-style aggregate: the estimate of
// Σ_t Value(t) over all tuples in the hidden database (selection
// conditions are folded into Value returning 0, the post-processing
// scheme of §5.1). AVG aggregates are computed as the ratio of two
// aggregates (see RatioOf).
type Aggregate struct {
	// Name labels the aggregate in results.
	Name string
	// Value evaluates the aggregated quantity on a returned tuple:
	// 1 for COUNT(*), the attribute for SUM(attr), an indicator for
	// COUNT with a condition, etc.
	Value func(Record) float64
	// NeedsLocation marks aggregates whose Value reads Loc (selection
	// conditions on tuple location). Over LNR interfaces the
	// aggregator first infers the tuple position, spending extra
	// queries (§4.3); over LR interfaces the location is free.
	NeedsLocation bool
}

// mustCompile compiles a constructor-built spec; the constructors only
// build valid specs, so a failure is a programming error.
func mustCompile(s AggSpec) Aggregate {
	agg, err := s.Compile()
	if err != nil {
		panic("core: " + err.Error())
	}
	return agg
}

// Count returns the COUNT(*) aggregate.
//
// Deprecated: build the declarative CountSpec() instead and compile it
// (or a whole request) with CompilePlan; specs serialize to JSON, so
// the same aggregate can travel to a remote estimation job. This shim
// compiles the equivalent spec.
func Count() Aggregate { return mustCompile(CountSpec()) }

// CountWhere returns COUNT with a post-processed selection condition.
//
// Deprecated: when the condition is expressible as a PredSpec
// (AttrCmp/TagEq/InRect/And/Or/Not), use
// CountSpec().WithWhere(p).WithLabel(...) so the aggregate stays
// wire-expressible. CountWhere remains for conditions that genuinely
// need arbitrary Go code; those cannot be submitted to remote jobs.
func CountWhere(name string, cond func(Record) bool) Aggregate {
	return Aggregate{
		Name: "COUNT(" + name + ")",
		Value: func(r Record) float64 {
			if cond(r) {
				return 1
			}
			return 0
		},
	}
}

// SumAttr returns SUM(attr).
//
// Deprecated: use the declarative SumSpec(attr) with CompilePlan; this
// shim compiles the equivalent spec.
func SumAttr(attr string) Aggregate { return mustCompile(SumSpec(attr)) }

// SumAttrWhere returns SUM(attr) with a selection condition.
//
// Deprecated: prefer SumSpec(attr).WithWhere(p) for conditions
// expressible as a PredSpec (see CountWhere).
func SumAttrWhere(attr string, name string, cond func(Record) bool) Aggregate {
	return Aggregate{
		Name: "SUM(" + attr + " | " + name + ")",
		Value: func(r Record) float64 {
			if cond(r) {
				return r.Attr(attr)
			}
			return 0
		},
	}
}

// CountTag returns COUNT of tuples whose tag equals value (e.g. the
// gender counts of the WeChat experiments).
//
// Deprecated: use CountSpec().WithWhere(TagEq(tag, value)); this shim
// compiles the equivalent spec.
func CountTag(tag, value string) Aggregate {
	return mustCompile(CountSpec().WithWhere(TagEq(tag, value)))
}

// CountInRect returns COUNT of tuples located inside rect — a
// location-based selection condition, which over LNR interfaces
// triggers position inference.
//
// Deprecated: use CountSpec().WithWhere(InRect(rect)); this shim
// compiles the equivalent spec (NeedsLocation is inferred from the
// in_rect node).
func CountInRect(rect geom.Rect) Aggregate {
	return mustCompile(CountSpec().WithWhere(InRect(rect)))
}

// recordOfLR converts an LR result row.
func recordOfLR(r lbs.LRRecord) Record {
	return Record{
		ID: r.ID, HasLoc: true, Loc: r.Loc,
		Name: r.Name, Category: r.Category, Attrs: r.Attrs, Tags: r.Tags,
	}
}

// recordOfLNR converts an LNR result row (no location).
func recordOfLNR(r lbs.LNRRecord) Record {
	return Record{
		ID:   r.ID,
		Name: r.Name, Category: r.Category, Attrs: r.Attrs, Tags: r.Tags,
	}
}

// Accumulator keeps running mean and variance of per-sample estimates
// (Welford's algorithm) so results can report Bessel-corrected sample
// variance and confidence intervals, as §2.3 prescribes.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one per-sample estimate into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean returns the current estimate (the sample mean).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the Bessel-corrected sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95 %
// confidence interval.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator's state into a, as if every sample
// b saw had been Added to a (the pairwise update of Chan, Golub &
// LeVeque). Sample order is immaterial for mean and M2, so parallel
// drivers can merge per-worker accumulators without replaying values.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// TracePoint is one point of the estimate-versus-cost trace (the
// Figure 12 curves).
type TracePoint struct {
	Queries  int64
	Samples  int
	Estimate float64
	// Degraded marks a sample whose queries (or whose batch's queries)
	// were answered by a partial federation — a shard was down or
	// skipped, so the merged answers may have missed candidates. The
	// estimate remains usable; the flag lets consumers weigh or audit
	// the contaminated stretch of the trace.
	Degraded bool
}

// Result is the outcome of an estimation run.
type Result struct {
	// Name of the aggregate.
	Name string
	// Estimate is the final point estimate.
	Estimate float64
	// StdErr is the standard error of the estimate computed from the
	// Bessel-corrected sample variance.
	StdErr float64
	// CI95 is the 95 % confidence half-width.
	CI95 float64
	// Samples is the number of (completed) random point samples.
	Samples int
	// Queries is the number of kNN queries spent.
	Queries int64
	// DegradedSamples counts samples drawn while the service answered
	// degraded (see TracePoint.Degraded); 0 for a healthy run.
	DegradedSamples int
	// Trace records the running estimate after every sample.
	Trace []TracePoint
}

// RelErr returns |estimate − truth| / truth, the paper's accuracy
// metric.
func (r Result) RelErr(truth float64) float64 {
	if truth == 0 {
		return math.Abs(r.Estimate)
	}
	return math.Abs(r.Estimate-truth) / math.Abs(truth)
}

// RatioOf combines two results from the same run into an AVG-style
// ratio estimate (AVG = SUM/COUNT, §1.3). The standard error is the
// first-order delta-method approximation treating the two estimates as
// independent (a conservative simplification; the paper only reports
// point estimates for AVG).
func RatioOf(num, den Result) Result {
	out := Result{
		Name:    num.Name + "/" + den.Name,
		Samples: num.Samples,
		Queries: num.Queries,
	}
	if den.Estimate == 0 {
		// The ratio is undefined, and so are its error bars: a numeric
		// StdErr/CI95 of 0 would read as "exactly known" on the wire.
		// NaN marshals to null through jobs.JSONFloat, so clients see
		// the whole result as undefined, never NaN/Inf or a fake CI.
		out.Estimate = math.NaN()
		out.StdErr = math.NaN()
		out.CI95 = math.NaN()
		return out
	}
	r := num.Estimate / den.Estimate
	out.Estimate = r
	// Var(N/D) ≈ r²[(σN/N)² + (σD/D)²]
	var rel2 float64
	if num.Estimate != 0 {
		rel2 += (num.StdErr / num.Estimate) * (num.StdErr / num.Estimate)
	}
	rel2 += (den.StdErr / den.Estimate) * (den.StdErr / den.Estimate)
	out.StdErr = math.Abs(r) * math.Sqrt(rel2)
	out.CI95 = 1.96 * out.StdErr
	// Ratio trace from the component traces.
	n := len(num.Trace)
	if len(den.Trace) < n {
		n = len(den.Trace)
	}
	for i := 0; i < n; i++ {
		tp := num.Trace[i]
		if d := den.Trace[i].Estimate; d != 0 {
			out.Trace = append(out.Trace, TracePoint{
				Queries: tp.Queries, Samples: tp.Samples, Estimate: tp.Estimate / d,
			})
		}
	}
	return out
}
