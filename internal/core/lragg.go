package core

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
)

// LROptions configures Algorithm LR-LBS-AGG. The zero value enables no
// error-reduction device (the §3.1 baseline, "LR-LBS-AGG-0"); the
// DefaultLROptions constructor enables all of them ("LR-LBS-AGG").
type LROptions struct {
	// UseK is how many of the service's returned tuples to exploit per
	// sampled query (≤ the service's k). 0 means the service's k.
	UseK int
	// FixedH forces every selected tuple to be weighted by its
	// top-FixedH Voronoi cell (capped at UseK). 0 enables the adaptive
	// per-tuple choice of §3.2.3 (which requires UseHistory to have
	// any effect; without history the choice degenerates to h=1).
	FixedH int
	// Lambda0Frac is the λ0 threshold of the adaptive choice expressed
	// as a fraction of the bounding-region area: the largest h whose
	// history-derived upper bound λ_h(t) stays below λ0 is used.
	// Default 0.001 (h grows only for tuples whose top-h cells stay
	// tiny, where the extra cells are nearly free under history).
	Lambda0Frac float64
	// FastInit enables the fake-tuple initialization of §3.2.1.
	FastInit bool
	// FastInitFactor scales the fake-tuple box: half-width = factor ×
	// (distance from the tuple to the farthest tuple of the answer
	// that discovered it). Default 8, conservatively large as the
	// paper advises.
	FastInitFactor float64
	// UseHistory enables reuse of previously observed tuples (§3.2.2).
	UseHistory bool
	// MonteCarlo enables the unbiased early-finish of §3.2.4: once a
	// vertex round shrinks the tentative cell by less than MCAreaRatio
	// (relatively), the exact computation stops and the remaining
	// uncertainty is resolved by geometric trials.
	MonteCarlo  bool
	MCAreaRatio float64 // default 0.05
	MCMinRounds int     // default 2
	MCMaxTrials int     // safety cap, default 100000
	// UseLowerBound enables the lower-bound region of §3.2.4, skipping
	// confirmation queries at points provably inside the cell.
	UseLowerBound bool
	// LowerBoundSamples is the boundary sampling resolution of the
	// disk-union coverage test. Default 48.
	LowerBoundSamples int
	// MaxRounds caps vertex-test rounds per cell as a numerical-
	// robustness guard. Default 200.
	MaxRounds int
	// Region restricts the estimation to a sub-region of the service's
	// coverage (e.g. "Austin, TX"): query locations are sampled from it
	// and Voronoi cells are clipped against it. The zero value means
	// the whole service bounds. Estimates then cover every tuple whose
	// cell intersects the region; combine with a location condition in
	// the aggregate to count region residents exactly.
	Region geom.Rect
	// Sampler is the query-location distribution (uniform over the
	// estimation region when nil). Weighted samplers implement the
	// external-knowledge optimization of §5.2.
	Sampler sampling.Sampler
	// Filter is an optional server-side selection pass-through (§5.1):
	// it restricts the hidden database the estimate refers to.
	Filter lbs.Filter
	// Seed drives the aggregator's randomness.
	Seed int64
}

// DefaultLROptions returns the full LR-LBS-AGG configuration with all
// four error-reduction devices enabled.
func DefaultLROptions(seed int64) LROptions {
	return LROptions{
		FastInit:      true,
		UseHistory:    true,
		MonteCarlo:    true,
		UseLowerBound: true,
		Seed:          seed,
	}
}

// LRStats counts the internal events of a run, for the efficiency
// analyses of §3.2.
type LRStats struct {
	Samples          int
	Cells            int   // Voronoi cells computed
	VertexQueries    int64 // queries spent on vertex tests
	SkippedByLower   int64 // vertex/trial queries avoided by the lower bound
	MCFinishes       int   // cells finished by Monte-Carlo trials
	MCTrials         int64 // total Monte-Carlo trials
	FastInitQueries  int64 // queries spent during fake-tuple initialization
	EmptyAnswers     int   // sampled queries with empty answers (dmax)
	DegenerateCells  int   // cells whose region mass was ~0 (skipped)
	AdaptiveHChosen  map[int]int
	MaxRoundsTripped int
}

// LRAggregator implements Algorithm LR-LBS-AGG (Algorithm 5).
type LRAggregator struct {
	svc   Oracle
	opts  LROptions
	rng   *rand.Rand
	smp   sampling.Sampler
	hist  *History
	bound geom.Rect
	stats LRStats
	vtol  float64 // vertex quantization tolerance
}

// NewLRAggregator builds an aggregator over an LR service view.
func NewLRAggregator(svc Oracle, opts LROptions) *LRAggregator {
	if opts.UseK <= 0 || opts.UseK > svc.K() {
		opts.UseK = svc.K()
	}
	if opts.Lambda0Frac <= 0 {
		opts.Lambda0Frac = 0.001
	}
	if opts.FastInitFactor <= 0 {
		opts.FastInitFactor = 8
	}
	if opts.MCAreaRatio <= 0 {
		opts.MCAreaRatio = 0.05
	}
	if opts.MCMinRounds <= 0 {
		opts.MCMinRounds = 2
	}
	if opts.MCMaxTrials <= 0 {
		opts.MCMaxTrials = 100000
	}
	if opts.LowerBoundSamples <= 0 {
		opts.LowerBoundSamples = 48
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 200
	}
	region := opts.Region
	if region.Area() <= 0 {
		region = svc.Bounds()
	}
	smp := opts.Sampler
	if smp == nil {
		smp = sampling.NewUniform(region)
	}
	return &LRAggregator{
		svc:   svc,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		smp:   smp,
		hist:  NewHistory(),
		bound: region,
		stats: LRStats{AdaptiveHChosen: make(map[int]int)},
		vtol:  region.Diagonal() * 1e-9,
	}
}

// Stats returns run statistics accumulated so far.
func (a *LRAggregator) Stats() LRStats { return a.stats }

// History exposes the observed-tuple history (read-only use).
func (a *LRAggregator) History() *History { return a.hist }

// query issues one LR query through the configured filter. Answers
// are re-sorted by distance from the query point: for distance-ranked
// services this is a no-op, while for "prominence"-style rankings it
// implements the §5.3 post-processing that recovers nearest-neighbor
// semantics from the richer answer (locations are returned, so the
// client can always re-rank).
func (a *LRAggregator) query(ctx context.Context, p geom.Point) ([]lbs.LRRecord, error) {
	recs, err := a.svc.QueryLR(ctx, p, a.opts.Filter)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(recs, func(i, j int) bool {
		return p.Dist2(recs[i].Loc) < p.Dist2(recs[j].Loc)
	})
	return recs, nil
}

// observe folds an answer into the history.
func (a *LRAggregator) observe(recs []lbs.LRRecord, local *History) {
	for _, r := range recs {
		if a.opts.UseHistory {
			a.hist.Observe(r.ID, r.Loc)
		}
		if local != nil {
			local.Observe(r.ID, r.Loc)
		}
	}
}

type vkey struct{ x, y int64 }

func (a *LRAggregator) keyOf(p geom.Point) vkey {
	return vkey{int64(math.Round(p.X / a.vtol)), int64(math.Round(p.Y / a.vtol))}
}

// rankOfID returns the 0-based rank of id in an answer, or −1.
func rankOfID(recs []lbs.LRRecord, id int64) int {
	for i, r := range recs {
		if r.ID == id {
			return i
		}
	}
	return -1
}

// sitesOf converts an answer into cell sites, excluding the target.
func sitesOf(recs []lbs.LRRecord, excludeID int64) []cell.Site {
	out := make([]cell.Site, 0, len(recs))
	for _, r := range recs {
		if r.ID != excludeID {
			out = append(out, cell.Site{Key: r.ID, Loc: r.Loc})
		}
	}
	return out
}

// massOfRegion returns ∫_region f — the selection probability of the
// tuple whose (tentative) cell the region is, under sampler f.
func (a *LRAggregator) massOfRegion(region *cell.Complex) float64 {
	var mass float64
	for _, f := range region.Faces() {
		mass += a.smp.IntegratePolygon(f.Poly)
	}
	return mass
}

// chooseH implements the variance-reduction rule of §3.2.3: the
// largest h ∈ [2, k] whose history-derived upper bound λ_h(t) is below
// λ0, else 1; additionally it returns the history-seeded top-k complex
// so the caller can continue from it without recomputation.
func (a *LRAggregator) chooseH(tID int64, tLoc geom.Point) (int, *cell.Complex) {
	k := a.opts.UseK
	var seed *cell.Complex
	if a.opts.UseHistory && a.hist.Len() > 1 {
		seed = cell.BuildFromSites(a.bound.Polygon(), k, tLoc, a.hist.Sites(tID))
	}
	if a.opts.FixedH > 0 {
		h := a.opts.FixedH
		if h > k {
			h = k
		}
		return h, seed
	}
	if seed == nil || k < 2 {
		return 1, seed
	}
	lambda0 := a.opts.Lambda0Frac * a.bound.Area()
	h := 1
	for cand := 2; cand <= k; cand++ {
		if seed.AreaAtMost(cand) <= lambda0 {
			h = cand
		} else {
			break // λ_h is non-decreasing in h
		}
	}
	a.stats.AdaptiveHChosen[h]++
	return h, seed
}

// cellContext carries the confirmation state of one cell computation.
type cellContext struct {
	tID    int64
	tLoc   geom.Point
	h      int
	local  *History
	disks  []geom.Circle // disks C(v, |v−t|) at confirmed points v
	region *cell.Complex
}

// countCloser counts observed tuples strictly closer to p than the
// target, across global and per-cell history.
func (a *LRAggregator) countCloser(cc *cellContext, p geom.Point) int {
	if a.opts.UseHistory {
		return a.hist.CountCloser(p, cc.tLoc, cc.tID)
	}
	return cc.local.CountCloser(p, cc.tLoc, cc.tID)
}

// canSkip reports whether p provably lies inside the top-h cell
// without a query (§3.2.4 lower bound): the circle C(p, |p−t|) must be
// covered by the union of confirmed disks — guaranteeing every tuple
// closer to p than t has been observed — and the observed
// closer-than-t count must stay below h.
func (a *LRAggregator) canSkip(cc *cellContext, p geom.Point) bool {
	if len(cc.disks) == 0 {
		return false
	}
	r := p.Dist(cc.tLoc)
	if r < geom.Eps {
		return true // p is the tuple location itself
	}
	margin := r * 1e-9
	if !geom.DiskUnionCoversCircle(cc.disks, geom.Circle{Center: p, R: r},
		a.opts.LowerBoundSamples, margin) {
		return false
	}
	return a.countCloser(cc, p) <= cc.h-1
}

// computeWeight computes 1/p̂(t) for tuple t using its top-h Voronoi
// cell, by the Theorem-1 loop plus the enabled devices. hint is the
// answer that discovered t (used by fast initialization); seed is the
// history-derived top-k complex from chooseH (may be nil).
func (a *LRAggregator) computeWeight(ctx context.Context, tID int64, tLoc geom.Point, h int, hint []lbs.LRRecord, seed *cell.Complex) (float64, error) {
	a.stats.Cells++
	cc := &cellContext{
		tID:   tID,
		tLoc:  tLoc,
		h:     h,
		local: NewHistory(),
	}
	// Seed the local history from the discovering answer.
	for _, r := range hint {
		cc.local.Observe(r.ID, r.Loc)
	}
	boundPoly := a.bound.Polygon()
	if seed != nil {
		cc.region = seed.WithK(h)
	} else {
		cc.region = cell.New(boundPoly, h)
		cell.InsertSites(cc.region, tLoc, sitesOf(hint, tID))
	}

	// Faster initialization (§3.2.1) when the region is still huge.
	if a.opts.FastInit && cc.region.Area() > 0.25*a.bound.Area() {
		if err := a.fastInit(ctx, cc); err != nil {
			return 0, err
		}
	}

	confirmed := make(map[vkey]bool)
	prevArea := cc.region.Area()
	for round := 1; ; round++ {
		if round > a.opts.MaxRounds {
			a.stats.MaxRoundsTripped++
			break
		}
		changed := false
		for _, v := range cc.region.Vertices() {
			key := a.keyOf(v)
			if confirmed[key] {
				continue
			}
			if a.opts.UseLowerBound && a.canSkip(cc, v) {
				confirmed[key] = true
				a.stats.SkippedByLower++
				continue
			}
			recs, err := a.query(ctx, v)
			if err != nil {
				return 0, err
			}
			a.stats.VertexQueries++
			a.observe(recs, cc.local)
			if r := rankOfID(recs, tID); r >= 0 {
				cc.disks = append(cc.disks, geom.Circle{Center: v, R: v.Dist(tLoc)})
				if r < h {
					confirmed[key] = true
				}
			}
			if cell.InsertSites(cc.region, tLoc, sitesOf(recs, tID)) > 0 {
				changed = true
			}
		}
		if !changed {
			break // Theorem 1: the region is the exact top-h cell
		}
		area := cc.region.Area()
		if a.opts.MonteCarlo && round >= a.opts.MCMinRounds &&
			prevArea-area < a.opts.MCAreaRatio*math.Max(area, geom.Eps) {
			return a.mcFinish(ctx, cc)
		}
		prevArea = area
	}
	p := a.massOfRegion(cc.region)
	if p <= 0 {
		a.stats.DegenerateCells++
		return 0, nil
	}
	return 1 / p, nil
}

// fastInit implements Algorithm 2: four fake tuples bound the target,
// the tentative (fake) cell's vertices are queried once, and the
// region is rebuilt from the real tuples discovered. If the fake box
// was too small (no real tuple discovered), the region reverts to the
// full bounding box — at a waste of at most the initialization
// queries, exactly as the paper argues.
func (a *LRAggregator) fastInit(ctx context.Context, cc *cellContext) error {
	r := a.fastInitRadius(cc)
	fake := [4]geom.Point{
		cc.tLoc.Add(geom.Pt(2*r, 0)),
		cc.tLoc.Add(geom.Pt(-2*r, 0)),
		cc.tLoc.Add(geom.Pt(0, 2*r)),
		cc.tLoc.Add(geom.Pt(0, -2*r)),
	}
	tmp := cell.New(a.bound.Polygon(), cc.h)
	// Real cuts already known (history / hint) keep the fake region
	// honest; then the fake cuts shrink it to a box around t.
	cell.InsertSites(tmp, cc.tLoc, a.knownSites(cc))
	for i, f := range fake {
		tmp.AddCut(cell.Cut{Line: geom.Bisector(cc.tLoc, f), Key: int64(-1 - i)})
	}
	for _, v := range tmp.Vertices() {
		recs, err := a.query(ctx, v)
		if err != nil {
			return err
		}
		a.stats.FastInitQueries++
		a.observe(recs, cc.local)
		if rank := rankOfID(recs, cc.tID); rank >= 0 {
			cc.disks = append(cc.disks, geom.Circle{Center: v, R: v.Dist(cc.tLoc)})
		}
	}
	// Rebuild from real tuples only.
	region := cell.New(a.bound.Polygon(), cc.h)
	cell.InsertSites(region, cc.tLoc, a.knownSites(cc))
	cc.region = region
	return nil
}

// knownSites returns every observed tuple (global history if enabled,
// else the cell-local history) as sites, excluding the target.
func (a *LRAggregator) knownSites(cc *cellContext) []cell.Site {
	if a.opts.UseHistory {
		return a.hist.Sites(cc.tID)
	}
	return cc.local.Sites(cc.tID)
}

// fastInitRadius chooses the fake-box scale from the discovering
// answer: FastInitFactor × the spread of the answer around the target,
// falling back to a twentieth of the bounding diagonal.
func (a *LRAggregator) fastInitRadius(cc *cellContext) float64 {
	var m float64
	for _, s := range cc.local.Sites(cc.tID) {
		if d := s.Loc.Dist(cc.tLoc); d > m {
			m = d
		}
	}
	if m < geom.Eps {
		return a.bound.Diagonal() / 20
	}
	return a.opts.FastInitFactor * m
}

// mcFinish implements the Monte-Carlo device of §3.2.4: with the
// region V′ ⊇ V_h(t) frozen, sample points from the query distribution
// restricted to V′ until one falls inside the true cell; the trial
// count r is an unbiased estimate of mass(V′)/mass(V_h), so r/mass(V′)
// is an unbiased estimate of 1/p(t). Points proven inside by the lower
// bound count as successes without a query.
func (a *LRAggregator) mcFinish(ctx context.Context, cc *cellContext) (float64, error) {
	a.stats.MCFinishes++
	pPrime := a.massOfRegion(cc.region)
	if pPrime <= 0 {
		a.stats.DegenerateCells++
		return 0, nil
	}
	for r := 1; r <= a.opts.MCMaxTrials; r++ {
		a.stats.MCTrials++
		x, ok := a.sampleFromRegion(cc.region)
		if !ok {
			a.stats.DegenerateCells++
			return 0, nil
		}
		if a.opts.UseLowerBound && a.canSkip(cc, x) {
			a.stats.SkippedByLower++
			return float64(r) / pPrime, nil
		}
		recs, err := a.query(ctx, x)
		if err != nil {
			return 0, err
		}
		a.observe(recs, cc.local)
		if rank := rankOfID(recs, cc.tID); rank >= 0 {
			cc.disks = append(cc.disks, geom.Circle{Center: x, R: x.Dist(cc.tLoc)})
			if rank < cc.h {
				return float64(r) / pPrime, nil
			}
		}
	}
	// Trial cap reached (pathological); accept the capped count.
	return float64(a.opts.MCMaxTrials) / pPrime, nil
}

// sampleFromRegion draws a point distributed as the sampler's density
// restricted to the region, by rejection from the area-uniform
// distribution over the region's faces.
func (a *LRAggregator) sampleFromRegion(region *cell.Complex) (geom.Point, bool) {
	var bb geom.Rect
	first := true
	for _, f := range region.Faces() {
		r := f.Poly.BoundingRect()
		if first {
			bb = r
			first = false
		} else {
			bb = geom.BoundingRect([]geom.Point{bb.Min, bb.Max, r.Min, r.Max})
		}
	}
	if first {
		return geom.Point{}, false
	}
	fmax := a.smp.MaxDensityInRect(bb)
	if fmax <= 0 {
		return geom.Point{}, false
	}
	for tries := 0; tries < 100000; tries++ {
		p, ok := region.RandomPoint(a.rng)
		if !ok {
			return geom.Point{}, false
		}
		if a.rng.Float64()*fmax <= a.smp.Density(p) {
			return p, true
		}
	}
	// The sampler assigns (essentially) no mass to the region; treat
	// as degenerate.
	return geom.Point{}, false
}

// Step draws one random query location and produces one unbiased
// per-sample estimate for each aggregate (Algorithm 5 body).
func (a *LRAggregator) Step(ctx context.Context, aggs []Aggregate) ([]float64, error) {
	q := a.smp.Sample(a.rng)
	recs, err := a.query(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(aggs))
	if len(recs) == 0 {
		// Empty answer under the coverage cap: the estimate for this
		// sample is 0, which keeps the estimator unbiased (§5.3).
		a.stats.EmptyAnswers++
		a.stats.Samples++
		return out, nil
	}
	kUse := a.opts.UseK
	if kUse > len(recs) {
		kUse = len(recs)
	}
	// The adaptive h(t) must be a function of *past* observations only:
	// folding the current answer into the history before choosing h
	// would correlate h(t) with the sampled point and break the
	// unbiasedness argument of estimator (2). So choose h for all
	// returned tuples first, then observe the answer.
	hs := make([]int, kUse)
	seeds := make([]*cell.Complex, kUse)
	for i := 0; i < kUse; i++ {
		hs[i], seeds[i] = a.chooseH(recs[i].ID, recs[i].Loc)
	}
	a.observe(recs, nil)
	for i := 0; i < kUse; i++ {
		t := recs[i]
		h, seedRegion := hs[i], seeds[i]
		// A tuple at rank i+1 contributes only when the sampled point
		// lies inside the top-h cell used for weighting, i.e. i+1 ≤ h.
		if i+1 > h {
			continue
		}
		w, err := a.computeWeight(ctx, t.ID, t.Loc, h, recs, seedRegion)
		if err != nil {
			return nil, err
		}
		if w == 0 {
			continue
		}
		rec := recordOfLR(t)
		for j := range aggs {
			out[j] += aggs[j].Value(rec) * w
		}
	}
	a.stats.Samples++
	return out, nil
}

// Service returns the Oracle this aggregator queries, implementing
// Estimator.
func (a *LRAggregator) Service() Oracle { return a.svc }

// Fork returns an independent LR aggregator of the same configuration
// over the same service for the Driver's parallel mode. The fork seed
// mixes a draw from the receiver's generator with the caller-supplied
// index, so successive parallel runs on the same aggregator spawn
// forks with fresh, independent random walks instead of replaying the
// previous run's samples. Forks start with an empty observation
// history; history is a variance-reduction device only, so the forked
// samples remain unbiased.
func (a *LRAggregator) Fork(seed int64) Estimator {
	opts := a.opts
	opts.Seed = a.rng.Int63() ^ (seed << 32)
	return NewLRAggregator(a.svc, opts)
}

// Run draws samples through the shared Driver until one of the
// configured bounds triggers (see RunOption); with no options it runs
// until the service budget is exhausted or ctx is canceled.
func (a *LRAggregator) Run(ctx context.Context, aggs []Aggregate, opts ...RunOption) ([]Result, error) {
	return Run(ctx, a, aggs, opts...)
}

// RunBudget preserves the v1 positional run signature.
//
// Deprecated: use Run with WithMaxSamples / WithMaxQueries.
func (a *LRAggregator) RunBudget(aggs []Aggregate, maxSamples int, maxQueries int64) ([]Result, error) {
	return a.Run(context.Background(), aggs, WithMaxSamples(maxSamples), WithMaxQueries(maxQueries))
}
