package core

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
)

// NNOOptions configures the LR-LBS-NNO baseline — the nearest-neighbor
// oracle sampler of Dalvi et al. (KDD 2011), the closest prior work
// the paper compares against.
//
// NNO uses only the top-1 tuple of each random query and estimates the
// area of its Voronoi cell approximately: an axis-aligned box around
// the tuple is grown by doubling until its corners stop returning the
// tuple, and the cell area is then estimated as the box area times the
// fraction of uniform probe points inside the box whose nearest
// neighbor is the tuple. Both the doubling probes and the area probes
// cost queries, and plugging the Monte-Carlo area estimate into the
// inverse-probability weight makes the estimator biased (Jensen) with
// high variance — the inefficiencies §1.2 attributes to [10].
type NNOOptions struct {
	// ProbesPerCell is the Monte-Carlo probe count for the area
	// estimate. Default 30 (the best-performing setting we found, as
	// the paper's §6 does for its NNO configuration).
	ProbesPerCell int
	// InitScale sets the initial box half-width as a multiple of the
	// query-to-tuple distance. Default 2.
	InitScale float64
	// MaxDoublings caps box growth. Default 16.
	MaxDoublings int
	// Region restricts sampling to a sub-region of the service's
	// coverage (zero = whole bounds). NNO has no cell-clipping
	// machinery, so region estimates carry extra edge bias — one more
	// inefficiency versus LR-LBS-AGG.
	Region geom.Rect
	// Sampler is the query-location distribution (uniform when nil).
	Sampler sampling.Sampler
	// Filter is an optional server-side selection pass-through.
	Filter lbs.Filter
	// Seed drives the randomness.
	Seed int64
}

// NNOBaseline implements LR-LBS-NNO.
type NNOBaseline struct {
	svc   Oracle
	opts  NNOOptions
	rng   *rand.Rand
	smp   sampling.Sampler
	bound geom.Rect
}

// NewNNOBaseline builds the baseline estimator over an LR service.
func NewNNOBaseline(svc Oracle, opts NNOOptions) *NNOBaseline {
	if opts.ProbesPerCell <= 0 {
		opts.ProbesPerCell = 30
	}
	if opts.InitScale <= 0 {
		opts.InitScale = 2
	}
	if opts.MaxDoublings <= 0 {
		opts.MaxDoublings = 16
	}
	region := opts.Region
	if region.Area() <= 0 {
		region = svc.Bounds()
	}
	smp := opts.Sampler
	if smp == nil {
		smp = sampling.NewUniform(region)
	}
	return &NNOBaseline{
		svc:   svc,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		smp:   smp,
		bound: region,
	}
}

func (b *NNOBaseline) query(ctx context.Context, p geom.Point) ([]lbs.LRRecord, error) {
	return b.svc.QueryLR(ctx, p, b.opts.Filter)
}

// isTop1 reports whether the answer's top tuple is id.
func isTop1(recs []lbs.LRRecord, id int64) bool {
	return len(recs) > 0 && recs[0].ID == id
}

// Step draws one random query and produces one per-sample estimate per
// aggregate.
func (b *NNOBaseline) Step(ctx context.Context, aggs []Aggregate) ([]float64, error) {
	q := b.smp.Sample(b.rng)
	recs, err := b.query(ctx, q)
	if err != nil {
		return nil, err
	}
	return b.finishSample(ctx, q, recs, aggs)
}

// StepBatch implements BatchEstimator: the m seed queries travel as
// one batch through the oracle's batch path, and each sample's
// Monte-Carlo probes batch as well (see finishSample). Samples whose
// seed the budget could not answer are skipped; completed samples are
// returned alongside any stop error.
func (b *NNOBaseline) StepBatch(ctx context.Context, aggs []Aggregate, m int) ([][]float64, error) {
	if m < 1 {
		m = 1
	}
	pts := make([]geom.Point, m)
	for i := range pts {
		pts[i] = b.smp.Sample(b.rng)
	}
	seeds, err := queryLRBatched(ctx, b.svc, pts, b.opts.Filter)
	out := make([][]float64, 0, m)
	for i, recs := range seeds {
		if recs == nil {
			continue // the budget died before this seed was answered
		}
		vals, ferr := b.finishSample(ctx, pts[i], recs, aggs)
		if ferr != nil {
			return out, ferr
		}
		out = append(out, vals)
	}
	return out, err
}

// finishSample runs the box-growing and probing phases for one seeded
// sample: q is the sampled query location, recs its (already charged)
// answer.
func (b *NNOBaseline) finishSample(ctx context.Context, q geom.Point, recs []lbs.LRRecord, aggs []Aggregate) ([]float64, error) {
	out := make([]float64, len(aggs))
	if len(recs) == 0 {
		return out, nil
	}
	t := recs[0] // NNO uses only the nearest neighbor
	// Phase 1: grow a box around t by doubling while any corner still
	// returns t as the nearest neighbor.
	half := b.opts.InitScale * math.Max(q.Dist(t.Loc), b.bound.Diagonal()*1e-6)
	for d := 0; d < b.opts.MaxDoublings; d++ {
		box := geom.NewRect(
			t.Loc.Sub(geom.Pt(half, half)),
			t.Loc.Add(geom.Pt(half, half)),
		)
		cornerHit := false
		for _, c := range box.Corners() {
			cr, err := b.query(ctx, b.bound.Clamp(c))
			if err != nil {
				return nil, err
			}
			if isTop1(cr, t.ID) {
				cornerHit = true
				break
			}
		}
		if !cornerHit {
			break
		}
		half *= 2
	}
	box := geom.NewRect(
		t.Loc.Sub(geom.Pt(half, half)),
		t.Loc.Add(geom.Pt(half, half)),
	)
	// Clip the probe box to the coverage bounds.
	box, ok := box.Intersect(b.bound)
	if !ok || box.Area() <= 0 {
		return out, nil
	}
	// Phase 2: Monte-Carlo area estimate. The probes are independent,
	// so they travel through the oracle's batch path when it has one
	// (one round-trip and one budget reservation instead of
	// ProbesPerCell); the probe points, their order and the query cost
	// are identical to the sequential loop.
	probes := make([]geom.Point, b.opts.ProbesPerCell)
	for i := range probes {
		probes[i] = geom.RandomInRect(b.rng, box)
	}
	answers, err := queryLRBatched(ctx, b.svc, probes, b.opts.Filter)
	if err != nil {
		return nil, err
	}
	hits := 0
	for _, pr := range answers {
		if isTop1(pr, t.ID) {
			hits++
		}
	}
	frac := float64(hits) / float64(b.opts.ProbesPerCell)
	if frac == 0 {
		// The probe box missed the cell entirely (can happen when the
		// cell is a sliver); fall back to the smallest resolvable
		// fraction, a pragmatic choice mirroring [10]'s bias
		// correction needs.
		frac = 0.5 / float64(b.opts.ProbesPerCell)
	}
	areaEst := frac * box.Area()
	// Approximate the selection probability as sampling-density ×
	// estimated cell area (exact only for uniform sampling over the
	// box; NNO has no exact-cell machinery to do better).
	density := b.smp.Density(t.Loc)
	if density <= 0 {
		return out, nil
	}
	p := density * areaEst
	rec := recordOfLR(t)
	for j := range aggs {
		out[j] = aggs[j].Value(rec) / p
	}
	return out, nil
}

// Service returns the Oracle this baseline queries, implementing
// Estimator.
func (b *NNOBaseline) Service() Oracle { return b.svc }

// Fork returns an independent baseline of the same configuration over
// the same service for the Driver's parallel mode. The fork seed
// mixes a draw from the receiver's generator with the caller-supplied
// index (see LRAggregator.Fork).
func (b *NNOBaseline) Fork(seed int64) Estimator {
	opts := b.opts
	opts.Seed = b.rng.Int63() ^ (seed << 32)
	return NewNNOBaseline(b.svc, opts)
}

// Run draws samples through the shared Driver until one of the
// configured bounds triggers (see RunOption); with no options it runs
// until the service budget is exhausted or ctx is canceled.
func (b *NNOBaseline) Run(ctx context.Context, aggs []Aggregate, opts ...RunOption) ([]Result, error) {
	return Run(ctx, b, aggs, opts...)
}

// RunBudget preserves the v1 positional run signature.
//
// Deprecated: use Run with WithMaxSamples / WithMaxQueries.
func (b *NNOBaseline) RunBudget(aggs []Aggregate, maxSamples int, maxQueries int64) ([]Result, error) {
	return b.Run(context.Background(), aggs, WithMaxSamples(maxSamples), WithMaxQueries(maxQueries))
}
