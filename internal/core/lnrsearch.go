package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// lnrProber wraps the rank-only query interface with result caching:
// the hidden database is static, so re-probing an identical location
// is free for any reasonable client. Only *exact* repeat locations hit
// the cache; every distinct location costs a query.
type lnrProber struct {
	svc    Oracle
	filter lbs.Filter
	cache  map[geom.Point][]lbs.LNRRecord
}

func newLNRProber(svc Oracle, filter lbs.Filter) *lnrProber {
	return &lnrProber{
		svc:    svc,
		filter: filter,
		cache:  make(map[geom.Point][]lbs.LNRRecord),
	}
}

func (p *lnrProber) probe(ctx context.Context, pt geom.Point) ([]lbs.LNRRecord, error) {
	if recs, ok := p.cache[pt]; ok {
		return recs, nil
	}
	recs, err := p.svc.QueryLNR(ctx, pt, p.filter)
	if err != nil {
		return nil, err
	}
	p.cache[pt] = recs
	return recs, nil
}

// rankIn returns the 0-based rank of id, or −1 when absent.
func rankIn(recs []lbs.LNRRecord, id int64) int {
	for i, r := range recs {
		if r.ID == id {
			return i
		}
	}
	return -1
}

// relOrder compares the distances of tuples a and b at a probe result:
// +1 when a is provably closer, −1 when b is provably closer, 0 when
// undecidable (both absent from the top-k). Presence alone decides the
// order when only one appears: a tuple inside the top-k is closer than
// every tuple outside it.
func relOrder(recs []lbs.LNRRecord, a, b int64) int {
	ra, rb := rankIn(recs, a), rankIn(recs, b)
	switch {
	case ra >= 0 && rb >= 0:
		if ra < rb {
			return +1
		}
		return -1
	case ra >= 0:
		return +1
	case rb >= 0:
		return -1
	default:
		return 0
	}
}

// predicateSearch performs the δ-bracketing binary search shared by
// all LNR edge discovery (Appendix A): given pred(a) = true and
// pred(b) = false (treating "unknown" as false), it returns points
// c3, c4 with |c3−c4| ≤ delta, pred(c3) = true, pred(c4) = false.
// Each evaluation is one probe.
func predicateSearch(a, b geom.Point, delta float64, pred func(geom.Point) (bool, error)) (c3, c4 geom.Point, err error) {
	lo, hi := a, b
	for lo.Dist(hi) > delta {
		mid := lo.Mid(hi)
		ok, err := pred(mid)
		if err != nil {
			return geom.Point{}, geom.Point{}, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, hi, nil
}

// edgeSearchParams holds the Appendix-A precision parameters derived
// from the target maximum edge error ε. The bracketing is two-phase:
// the primary search stops at the coarse width δ_c = ε/2 (positional
// error ≤ ε/4 along the ray), after which the bracket distance r from
// the anchor is known and the search continues to the fine width
// δ_f(r) = ε²/(32·r), which keeps the *angular* error of the two-point
// line construction below ε/(2L) for edges of length L ≲ 4r. Compared
// to the paper's fixed δ over the whole bounding box this saves
// log₂(box/cell) probes per search on small cells without weakening
// the local precision guarantee.
type edgeSearchParams struct {
	epsilon     float64
	deltaCoarse float64
	deltaPrime  float64
	deltaFloor  float64 // numerical floor for δ_f
}

func newEdgeSearchParams(eps float64, bounds geom.Rect) edgeSearchParams {
	return edgeSearchParams{
		epsilon:     eps,
		deltaCoarse: eps / 2,
		deltaPrime:  eps / 2,
		deltaFloor:  math.Max(eps*eps/(32*bounds.Diagonal()), bounds.Diagonal()*1e-12),
	}
}

// fineDelta returns the bracket width required at anchor distance r.
func (p edgeSearchParams) fineDelta(r float64) float64 {
	if r < p.epsilon {
		r = p.epsilon
	}
	d := p.epsilon * p.epsilon / (32 * r)
	if d < p.deltaFloor {
		d = p.deltaFloor
	}
	if d > p.deltaCoarse {
		d = p.deltaCoarse
	}
	return d
}

// delta is kept for call sites needing a generic small width (vertex
// coincidence checks, third-bisector searches).
func (p edgeSearchParams) delta() float64 { return p.fineDelta(p.epsilon * 8) }

// refineBracket continues a coarse bracket down to the fine width
// required at its anchor distance, returning the refined bracket and
// the fine width used.
func refineBracket(anchor, c3, c4 geom.Point, params edgeSearchParams,
	pred func(geom.Point) (bool, error)) (geom.Point, geom.Point, float64, error) {

	r := anchor.Dist(c4)
	deltaFine := params.fineDelta(r)
	if c3.Dist(c4) > deltaFine {
		var err error
		c3, c4, err = predicateSearch(c3, c4, deltaFine, pred)
		if err != nil {
			return c3, c4, deltaFine, err
		}
	}
	return c3, c4, deltaFine, nil
}

// twoPointLine derives an edge line from a primary bracket (c3, c4)
// found along a ray from anchor, plus a second bracket located along a
// ray rotated by ±arcsin(δ′/r) (Algorithm 7). pred must flip across
// the same geometric edge (the caller constrains it to the specific
// opposing tuple). When neither angled ray produces a usable second
// point, the fallback edge is the line through mid(c3, c4)
// perpendicular to the primary ray.
func twoPointLine(anchor, c3, c4 geom.Point, params edgeSearchParams, bounds geom.Rect,
	pred func(geom.Point) (bool, error)) (geom.Line, error) {

	var deltaFine float64
	var err error
	c3, c4, deltaFine, err = refineBracket(anchor, c3, c4, params, pred)
	if err != nil {
		return geom.Line{}, err
	}
	m1 := c3.Mid(c4)
	dir := c4.Sub(anchor)
	r := dir.Norm()
	if r < geom.Eps {
		return geom.Line{}, fmt.Errorf("core: degenerate edge search (anchor on bracket)")
	}
	dirU := dir.Unit()
	sin := params.deltaPrime / r
	if sin > 0.5 {
		sin = 0.5
	}
	theta := asinSafe(sin)
	for _, sign := range []float64{+1, -1} {
		dir2 := dirU.Rotate(sign * theta)
		// The second crossing is expected near distance r; search a
		// slightly longer segment clipped to the bounding region.
		far := anchor.Add(dir2.Scale(1.6 * r))
		if !bounds.Contains(far) {
			if exit, ok := geom.RayRectExit(anchor, dir2, bounds); ok {
				far = exit
			} else {
				continue
			}
		}
		ok, err := pred(far)
		if err != nil {
			return geom.Line{}, err
		}
		if ok {
			continue // no flip along this ray; try the other side
		}
		c5, c6, err := predicateSearch(anchor, far, deltaFine, pred)
		if err != nil {
			return geom.Line{}, err
		}
		m2 := c5.Mid(c6)
		if m1.Dist(m2) > deltaFine {
			return geom.LineThrough(m1, m2), nil
		}
	}
	// Fallback: perpendicular through the primary midpoint.
	return geom.LineFromPointNormal(m1, dirU), nil
}

// asinSafe is math.Asin clamped to a valid domain.
func asinSafe(x float64) float64 {
	if x > 1 {
		x = 1
	} else if x < -1 {
		x = -1
	}
	return math.Asin(x)
}
