package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// checkZ asserts the estimate is within zmax standard errors of truth
// (falling back to a relative-error check when StdErr is degenerate).
func checkZ(t *testing.T, label string, res Result, truth, zmax float64) {
	t.Helper()
	se := res.StdErr
	if se <= 0 || math.IsNaN(se) {
		if rel := res.RelErr(truth); rel > 0.25 {
			t.Errorf("%s: estimate %v vs truth %v (rel %v, no stderr)", label, res.Estimate, truth, rel)
		}
		return
	}
	z := math.Abs(res.Estimate-truth) / se
	if z > zmax {
		t.Errorf("%s: estimate %v vs truth %v (z=%v, se=%v)", label, res.Estimate, truth, z, se)
	}
}

// smallService builds a clustered test database with known aggregates.
func smallService(t *testing.T, n, k int, seed int64) (*lbs.Service, *lbs.Database) {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 5, UniformFrac: 0.2, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{
			ID:  int64(i + 1),
			Loc: p,
			Attrs: map[string]float64{
				"weight": 1 + rng.Float64()*9,
			},
			Tags: map[string]string{"flag": map[bool]string{true: "yes", false: "no"}[rng.Float64() < 0.4]},
		}
	}
	db := lbs.NewDatabase(bounds, tuples)
	return lbs.NewService(db, lbs.Options{K: k}), db
}

func TestLRCountUnbiasedBaseline(t *testing.T) {
	// The §3.1 baseline (no devices) must estimate COUNT(*) accurately.
	svc, db := smallService(t, 60, 1, 3)
	agg := NewLRAggregator(svc, LROptions{Seed: 11})
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(400))
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(db.Len())
	checkZ(t, "baseline COUNT", res[0], truth, 4)
	if res[0].Samples != 400 {
		t.Errorf("samples: %d", res[0].Samples)
	}
	if res[0].Queries <= 0 {
		t.Errorf("no queries recorded")
	}
}

func TestLRCountAllDevices(t *testing.T) {
	svc, db := smallService(t, 80, 5, 7)
	agg := NewLRAggregator(svc, DefaultLROptions(13))
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(400))
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(db.Len())
	checkZ(t, "full AGG COUNT", res[0], truth, 4)
	st := agg.Stats()
	if st.Cells == 0 || st.VertexQueries == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

func TestLRSumEstimate(t *testing.T) {
	svc, db := smallService(t, 70, 3, 17)
	agg := NewLRAggregator(svc, DefaultLROptions(5))
	res, err := agg.Run(context.Background(), []Aggregate{SumAttr("weight"), Count()}, WithMaxSamples(400))
	if err != nil {
		t.Fatal(err)
	}
	truthSum := db.GroundTruth(func(tp *lbs.Tuple) float64 { return tp.Attr("weight") }, nil)
	checkZ(t, "SUM(weight)", res[0], truthSum, 4)
	// Ratio (AVG) via shared samples.
	avg := RatioOf(res[0], res[1])
	truthAvg := truthSum / float64(db.Len())
	checkZ(t, "AVG(weight)", avg, truthAvg, 5)
}

func TestLRPostProcessCondition(t *testing.T) {
	svc, db := smallService(t, 80, 2, 23)
	agg := NewLRAggregator(svc, DefaultLROptions(29))
	cond := CountWhere("flag=yes", func(r Record) bool { return r.Tag("flag") == "yes" })
	res, err := agg.Run(context.Background(), []Aggregate{cond}, WithMaxSamples(500))
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(db.Count(func(tp *lbs.Tuple) bool { return tp.Tag("flag") == "yes" }))
	checkZ(t, "COUNT(flag)", res[0], truth, 4)
}

func TestLRPassThroughFilter(t *testing.T) {
	// Pass-through selection: the service only exposes tuples with the
	// flag; COUNT(*) over the filtered view equals the conditional count.
	svc, db := smallService(t, 80, 2, 31)
	filter := func(tp *lbs.Tuple) bool { return tp.Tag("flag") == "yes" }
	opts := DefaultLROptions(37)
	opts.Filter = filter
	agg := NewLRAggregator(svc, opts)
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(400))
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(db.Count(filter))
	checkZ(t, "pass-through COUNT", res[0], truth, 4)
}

func TestLRWeightedSamplerStillUnbiased(t *testing.T) {
	// §5.2: weighted sampling must preserve unbiasedness even when the
	// density knowledge is noisy.
	svc, db := smallService(t, 60, 2, 41)
	pts := make([]geom.Point, db.Len())
	for i := range pts {
		pts[i] = db.Tuple(i).Loc
	}
	grid := sampling.GridFromPoints(svc.Bounds(), 10, 10, pts, 1)
	noisy := grid.Noisy(rand.New(rand.NewSource(2)), 0.7)
	opts := DefaultLROptions(43)
	opts.Sampler = noisy
	agg := NewLRAggregator(svc, opts)
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(400))
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(db.Len())
	checkZ(t, "weighted COUNT", res[0], truth, 4)
}

func TestLRWeightedReducesVariance(t *testing.T) {
	// Weighted sampling should reduce per-sample variance on clustered
	// data (the Figure 13 effect), comparing across several seeds.
	svc, db := smallService(t, 150, 1, 47)
	pts := make([]geom.Point, db.Len())
	for i := range pts {
		pts[i] = db.Tuple(i).Loc
	}
	grid := sampling.GridFromPoints(svc.Bounds(), 12, 12, pts, 1)
	var uniVar, wVar float64
	for seed := int64(0); seed < 3; seed++ {
		optsU := DefaultLROptions(100 + seed)
		aggU := NewLRAggregator(svc, optsU)
		resU, err := aggU.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150))
		if err != nil {
			t.Fatal(err)
		}
		uniVar += resU[0].StdErr * resU[0].StdErr

		optsW := DefaultLROptions(200 + seed)
		optsW.Sampler = grid
		aggW := NewLRAggregator(svc, optsW)
		resW, err := aggW.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150))
		if err != nil {
			t.Fatal(err)
		}
		wVar += resW[0].StdErr * resW[0].StdErr
	}
	if wVar >= uniVar {
		t.Errorf("weighted variance %v not below uniform %v", wVar, uniVar)
	}
}

func TestLRMaxRadiusEmptyAnswers(t *testing.T) {
	// With a tight coverage radius, many sampled queries return empty;
	// the estimator must remain accurate via the zero-contribution rule.
	svc0, db := smallService(t, 100, 2, 53)
	capped := lbs.NewService(db, lbs.Options{K: 2, MaxRadius: 8})
	_ = svc0
	agg := NewLRAggregator(capped, DefaultLROptions(59))
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(600))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats().EmptyAnswers == 0 {
		t.Fatalf("expected some empty answers with MaxRadius=8")
	}
	truth := float64(db.Len())
	checkZ(t, "capped COUNT", res[0], truth, 4)
}

func TestLRBudgetStops(t *testing.T) {
	db := smallService2(120, 61)
	svc := lbs.NewService(db, lbs.Options{K: 1, Budget: 300})
	agg := NewLRAggregator(svc, DefaultLROptions(67))
	res, err := agg.Run(context.Background(), []Aggregate{Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queries > 300 {
		t.Errorf("exceeded budget: %d", res[0].Queries)
	}
	if res[0].Samples == 0 {
		t.Errorf("no samples completed")
	}
}

// smallService2 is a helper without *testing.T for reuse.
func smallService2(n int, seed int64) *lbs.Database {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 5, UniformFrac: 0.2, Seed: seed,
	})
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: p}
	}
	return lbs.NewDatabase(bounds, tuples)
}

func TestLRMaxQueriesStops(t *testing.T) {
	db := smallService2(100, 71)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	agg := NewLRAggregator(svc, DefaultLROptions(73))
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxQueries(500))
	if err != nil {
		t.Fatal(err)
	}
	// The run may overshoot by at most one sample's worth of queries.
	if res[0].Queries > 700 {
		t.Errorf("query stop ineffective: %d", res[0].Queries)
	}
}

func TestLRHistoryReducesCost(t *testing.T) {
	// §3.2.2: with history, per-sample query cost must drop over time.
	db := smallService2(150, 79)
	svcA := lbs.NewService(db, lbs.Options{K: 1})
	aggNoHist := NewLRAggregator(svcA, LROptions{Seed: 83, FastInit: true})
	if _, err := aggNoHist.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(120)); err != nil {
		t.Fatal(err)
	}
	costNo := float64(svcA.QueryCount()) / 120

	svcB := lbs.NewService(db, lbs.Options{K: 1})
	aggHist := NewLRAggregator(svcB, LROptions{Seed: 83, FastInit: true, UseHistory: true})
	if _, err := aggHist.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(120)); err != nil {
		t.Fatal(err)
	}
	costHist := float64(svcB.QueryCount()) / 120
	if costHist >= costNo {
		t.Errorf("history cost/sample %v not below no-history %v", costHist, costNo)
	}
}

func TestLRFastInitReducesCost(t *testing.T) {
	db := smallService2(150, 89)
	svcA := lbs.NewService(db, lbs.Options{K: 1})
	agg0 := NewLRAggregator(svcA, LROptions{Seed: 97})
	if _, err := agg0.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(100)); err != nil {
		t.Fatal(err)
	}
	cost0 := float64(svcA.QueryCount()) / 100

	svcB := lbs.NewService(db, lbs.Options{K: 1})
	agg1 := NewLRAggregator(svcB, LROptions{Seed: 97, FastInit: true})
	if _, err := agg1.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(100)); err != nil {
		t.Fatal(err)
	}
	cost1 := float64(svcB.QueryCount()) / 100
	if cost1 >= cost0 {
		t.Errorf("fast-init cost/sample %v not below baseline %v", cost1, cost0)
	}
}

func TestLRAdaptiveHRecorded(t *testing.T) {
	db := smallService2(200, 101)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	opts := DefaultLROptions(103)
	opts.Lambda0Frac = 0.05
	agg := NewLRAggregator(svc, opts)
	if _, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150)); err != nil {
		t.Fatal(err)
	}
	st := agg.Stats()
	total := 0
	multi := 0
	for h, n := range st.AdaptiveHChosen {
		total += n
		if h > 1 {
			multi += n
		}
	}
	if total == 0 {
		t.Fatalf("adaptive choice never exercised")
	}
	if multi == 0 {
		t.Errorf("adaptive h never chose h>1 with generous λ0: %v", st.AdaptiveHChosen)
	}
}

func TestLRFixedHVariants(t *testing.T) {
	// Every fixed h must stay (approximately) unbiased.
	db := smallService2(80, 107)
	truth := float64(db.Len())
	for _, h := range []int{1, 2, 3} {
		svc := lbs.NewService(db, lbs.Options{K: 3})
		opts := DefaultLROptions(109 + int64(h))
		opts.FixedH = h
		agg := NewLRAggregator(svc, opts)
		res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(300))
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		checkZ(t, fmt.Sprintf("h=%d COUNT", h), res[0], truth, 4.5)
	}
}

func TestLRNoAggregatesError(t *testing.T) {
	db := smallService2(10, 113)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	agg := NewLRAggregator(svc, DefaultLROptions(1))
	if _, err := agg.Run(context.Background(), nil, WithMaxSamples(10)); err == nil {
		t.Errorf("expected error with no aggregates")
	}
}

func TestLRTraceMonotoneQueries(t *testing.T) {
	db := smallService2(60, 127)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	agg := NewLRAggregator(svc, DefaultLROptions(131))
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(50))
	if err != nil {
		t.Fatal(err)
	}
	tr := res[0].Trace
	if len(tr) != 50 {
		t.Fatalf("trace length: %d", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Queries < tr[i-1].Queries {
			t.Fatalf("trace queries not monotone at %d", i)
		}
	}
}

// TestLRUnbiasednessManyRuns is the statistical heart: across many
// short runs, the mean of the estimator must land within a few
// standard errors of the truth, and per-cell computation must be exact
// enough that even the Monte-Carlo variant shows no systematic bias.
func TestLRUnbiasednessManyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	db := smallService2(50, 137)
	truth := float64(db.Len())
	var acc Accumulator
	for seed := int64(0); seed < 30; seed++ {
		svc := lbs.NewService(db, lbs.Options{K: 3})
		agg := NewLRAggregator(svc, DefaultLROptions(1000+seed))
		res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(60))
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res[0].Estimate)
	}
	z := (acc.Mean() - truth) / math.Max(acc.StdErr(), 1e-9)
	if math.Abs(z) > 4 {
		t.Errorf("bias detected: mean %v vs truth %v (z=%v)", acc.Mean(), truth, z)
	}
}

// TestLRCellExactness verifies the Theorem-1 loop computes the exact
// Voronoi-cell mass: with the full-device aggregator on a fixed
// dataset, per-sample weights for the same tuple must agree with the
// ground-truth cell area (checked through the estimate of COUNT over a
// 1-tuple-per-query interface with Monte Carlo disabled).
func TestLRCellExactness(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	tuples := []lbs.Tuple{
		{ID: 1, Loc: geom.Pt(2, 2)},
		{ID: 2, Loc: geom.Pt(8, 3)},
		{ID: 3, Loc: geom.Pt(5, 8)},
		{ID: 4, Loc: geom.Pt(3, 6)},
	}
	db := lbs.NewDatabase(bounds, tuples)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	opts := LROptions{Seed: 139, FastInit: true, UseHistory: true}
	agg := NewLRAggregator(svc, opts)
	// With exact cells, each sample's COUNT contribution is
	// |V0|/|V(t)|; over all samples E = 4. With only 4 tuples the
	// estimator has modest variance; 600 samples suffice.
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(600))
	if err != nil {
		t.Fatal(err)
	}
	if rel := res[0].RelErr(4); rel > 0.1 {
		t.Errorf("exact-cell COUNT %v (rel %v)", res[0].Estimate, rel)
	}
}

func TestLRProminenceRankedService(t *testing.T) {
	// §5.3: over a prominence-ranked interface, LR-LBS-AGG re-sorts the
	// answers by distance and remains accurate.
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: 80, Clusters: 4, UniformFrac: 0.3, Seed: 555,
	})
	rng := rand.New(rand.NewSource(556))
	tuples := make([]lbs.Tuple, len(pts))
	for i, p := range pts {
		tuples[i] = lbs.Tuple{
			ID: int64(i + 1), Loc: p,
			Attrs: map[string]float64{"pop": rng.Float64() * 100},
		}
	}
	db := lbs.NewDatabase(bounds, tuples)
	svc := lbs.NewService(db, lbs.Options{
		K: 5, Rank: lbs.RankByProminence,
		ProminenceAttr: "pop", ProminenceWeight: 0.05,
	})
	agg := NewLRAggregator(svc, DefaultLROptions(557))
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(300))
	if err != nil {
		t.Fatal(err)
	}
	checkZ(t, "prominence COUNT", res[0], float64(db.Len()), 4.5)
}
