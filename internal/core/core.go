package core
