package core

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// randPred generates a random valid predicate tree of bounded depth.
func randPred(rng *rand.Rand, depth int) PredSpec {
	attrs := []string{"rating", "enrollment", "prominence"}
	tags := []string{"gender", "open_sunday"}
	vals := []string{"f", "m", "yes", "no"}
	cmps := []string{CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ, CmpNE}
	leaf := depth <= 0 || rng.Intn(2) == 0
	if leaf {
		switch rng.Intn(3) {
		case 0:
			return AttrCmp(attrs[rng.Intn(len(attrs))], cmps[rng.Intn(len(cmps))],
				float64(rng.Intn(9))/2)
		case 1:
			return TagEq(tags[rng.Intn(len(tags))], vals[rng.Intn(len(vals))])
		default:
			x, y := rng.Float64()*4000, rng.Float64()*2500
			return InRect(geom.NewRect(geom.Pt(x, y),
				geom.Pt(x+rng.Float64()*2000, y+rng.Float64()*1500)))
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := 1 + rng.Intn(3)
		args := make([]PredSpec, n)
		for i := range args {
			args[i] = randPred(rng, depth-1)
		}
		return And(args...)
	case 1:
		n := 1 + rng.Intn(3)
		args := make([]PredSpec, n)
		for i := range args {
			args[i] = randPred(rng, depth-1)
		}
		return Or(args...)
	default:
		return Not(randPred(rng, depth-1))
	}
}

// randAggSpec generates a random valid aggregate spec.
func randAggSpec(rng *rand.Rand) AggSpec {
	var s AggSpec
	switch rng.Intn(3) {
	case 0:
		s = CountSpec()
	case 1:
		s = SumSpec("rating")
	default:
		s = AvgSpec("enrollment")
	}
	if rng.Intn(2) == 0 {
		s = s.WithWhere(randPred(rng, 3))
	}
	return s
}

// testRecords builds estimator-visible records from a seeded workload,
// covering located and location-less rows.
func testRecords(t *testing.T, n int) []Record {
	t.Helper()
	sc := workload.USASchools(n, 11)
	recs := make([]Record, 0, 2*sc.DB.Len())
	for i := 0; i < sc.DB.Len(); i++ {
		tp := sc.DB.Tuple(i)
		r := Record{
			ID: tp.ID, HasLoc: true, Loc: tp.Loc,
			Name: tp.Name, Category: tp.Category, Attrs: tp.Attrs, Tags: tp.Tags,
		}
		recs = append(recs, r)
		r.HasLoc = false // the LNR view of the same tuple
		r.Loc = geom.Point{}
		recs = append(recs, r)
	}
	return recs
}

// TestPredSpecJSONRoundTrip is the round-trip property test: a random
// predicate marshals to JSON and back to a deeply equal tree whose
// compiled form agrees on every record.
func TestPredSpecJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := testRecords(t, 60)
	for trial := 0; trial < 200; trial++ {
		p := randPred(rng, 4)
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var back PredSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("trial %d: round trip changed the tree:\n%s\nfrom %+v\nto   %+v",
				trial, data, p, back)
		}
		f1, err := p.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		f2, err := back.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile round-tripped: %v", trial, err)
		}
		for ri := range recs {
			if f1(recs[ri]) != f2(recs[ri]) {
				t.Fatalf("trial %d: round-tripped predicate disagrees on record %d (%s)",
					trial, ri, data)
			}
		}
	}
}

// TestAggSpecJSONRoundTrip round-trips whole aggregate specs.
func TestAggSpecJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := randAggSpec(rng)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var back AggSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("trial %d: round trip changed the spec: %s", trial, data)
		}
		if _, err := CompilePlan([]AggSpec{back}); err != nil {
			t.Fatalf("trial %d: round-tripped spec does not compile: %v", trial, err)
		}
	}
}

// TestSpecMatchesLegacyClosures pins compiled specs against the
// legacy closure constructors on a seeded workload: identical Value on
// every record, identical Name and NeedsLocation.
func TestSpecMatchesLegacyClosures(t *testing.T) {
	recs := testRecords(t, 120)
	rect := geom.NewRect(geom.Pt(500, 300), geom.Pt(2500, 2000))
	cases := []struct {
		spec   AggSpec
		legacy Aggregate
	}{
		{CountSpec(), Count()},
		{SumSpec("enrollment"), SumAttr("enrollment")},
		{CountSpec().WithWhere(TagEq("open_sunday", "yes")), CountTag("open_sunday", "yes")},
		{CountSpec().WithWhere(InRect(rect)), CountInRect(rect)},
		{
			CountSpec().WithWhere(AttrCmp("enrollment", CmpGE, 500)),
			CountWhere("enrollment>=500", func(r Record) bool { return r.Attr("enrollment") >= 500 }),
		},
		{
			SumSpec("enrollment").WithWhere(AttrCmp("enrollment", CmpLT, 500)),
			SumAttrWhere("enrollment", "enrollment<500", func(r Record) bool { return r.Attr("enrollment") < 500 }),
		},
		{
			CountSpec().WithWhere(And(TagEq("open_sunday", "yes"), Not(InRect(rect)))),
			func() Aggregate {
				a := CountWhere("(open_sunday=yes and not in-rect)", func(r Record) bool {
					return r.Tag("open_sunday") == "yes" && !(r.HasLoc && rect.Contains(r.Loc))
				})
				a.NeedsLocation = true
				return a
			}(),
		},
	}
	for _, tc := range cases {
		agg, err := tc.spec.Compile()
		if err != nil {
			t.Fatalf("%+v: compile: %v", tc.spec, err)
		}
		if agg.Name != tc.legacy.Name {
			t.Errorf("name mismatch: spec %q vs legacy %q", agg.Name, tc.legacy.Name)
		}
		if agg.NeedsLocation != tc.legacy.NeedsLocation {
			t.Errorf("%s: NeedsLocation %v vs legacy %v", agg.Name, agg.NeedsLocation, tc.legacy.NeedsLocation)
		}
		for ri := range recs {
			if got, want := agg.Value(recs[ri]), tc.legacy.Value(recs[ri]); got != want {
				t.Fatalf("%s: record %d: spec value %g, legacy %g", agg.Name, ri, got, want)
			}
		}
	}
}

// TestSpecValidationRejects pins the malformed-spec errors.
func TestSpecValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		pred *PredSpec
		agg  *AggSpec
		want string
	}{
		{name: "unknown op", pred: &PredSpec{Op: "between"}, want: "unknown predicate op"},
		{name: "missing op", pred: &PredSpec{}, want: "missing an op"},
		{name: "empty and", pred: &PredSpec{Op: OpAnd}, want: "at least one arg"},
		{name: "empty or", pred: &PredSpec{Op: OpOr}, want: "at least one arg"},
		{name: "not arity", pred: &PredSpec{Op: OpNot, Args: []PredSpec{CountSpecPred(), CountSpecPred()}}, want: "exactly one arg"},
		{name: "bad cmp", pred: &PredSpec{Op: OpAttrCmp, Attr: "rating", Cmp: "≈"}, want: "unknown cmp"},
		{name: "cmp without attr", pred: &PredSpec{Op: OpAttrCmp, Cmp: CmpLT}, want: "non-empty attr"},
		{name: "tag_eq without tag", pred: &PredSpec{Op: OpTagEq}, want: "non-empty tag"},
		{name: "in_rect without rect", pred: &PredSpec{Op: OpInRect}, want: "needs a rect"},
		{name: "inverted rect", pred: &PredSpec{Op: OpInRect, Rect: &RectSpec{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}}, want: "max < min"},
		{name: "leaf with args", pred: &PredSpec{Op: OpTagEq, Tag: "g", Args: []PredSpec{CountSpecPred()}}, want: "takes no args"},
		{name: "nested bad node", pred: &PredSpec{Op: OpAnd, Args: []PredSpec{{Op: "nope"}}}, want: "unknown predicate op"},
		{name: "unknown kind", agg: &AggSpec{Kind: "median"}, want: "unknown aggregate kind"},
		{name: "missing kind", agg: &AggSpec{}, want: "missing a kind"},
		{name: "sum without attr", agg: &AggSpec{Kind: AggSum}, want: "needs an attr"},
		{name: "avg without attr", agg: &AggSpec{Kind: AggAvg}, want: "needs an attr"},
		{name: "count with attr", agg: &AggSpec{Kind: AggCount, Attr: "rating"}, want: "takes no attr"},
		{name: "agg with bad where", agg: &AggSpec{Kind: AggCount, Where: &PredSpec{Op: OpAnd}}, want: "at least one arg"},
	}
	for _, tc := range cases {
		var err error
		if tc.pred != nil {
			err = tc.pred.Validate()
		} else {
			err = tc.agg.Validate()
		}
		if err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := CompilePlan(nil); err == nil {
		t.Errorf("CompilePlan(nil): expected an error")
	}
	avg := AvgSpec("rating")
	if _, err := avg.Compile(); err == nil || !strings.Contains(err.Error(), "CompilePlan") {
		t.Errorf("AvgSpec.Compile should direct to CompilePlan, got %v", err)
	}
}

// CountSpecPred is a trivial valid predicate used as filler in arity
// tests.
func CountSpecPred() PredSpec { return TagEq("t", "v") }

// TestCompilePlanAvg pins the AVG expansion: one avg spec becomes a
// SUM/COUNT physical pair and Finish returns their ratio.
func TestCompilePlanAvg(t *testing.T) {
	plan, err := CompilePlan([]AggSpec{CountSpec(), AvgSpec("enrollment")})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Aggs) != 3 {
		t.Fatalf("expected 3 physical aggregates (count + sum/count pair), got %d", len(plan.Aggs))
	}
	phys := []Result{
		{Name: plan.Aggs[0].Name, Estimate: 100, Samples: 10, Queries: 50},
		{Name: plan.Aggs[1].Name, Estimate: 60000, StdErr: 10, Samples: 10, Queries: 50},
		{Name: plan.Aggs[2].Name, Estimate: 120, StdErr: 2, Samples: 10, Queries: 50},
	}
	out := plan.Finish(phys)
	if len(out) != 2 {
		t.Fatalf("expected 2 finished results, got %d", len(out))
	}
	if out[0].Estimate != 100 {
		t.Errorf("count passthrough: got %g", out[0].Estimate)
	}
	if want := 60000.0 / 120.0; out[1].Estimate != want {
		t.Errorf("avg ratio: got %g want %g", out[1].Estimate, want)
	}
	if out[1].Name != "AVG(enrollment)" {
		t.Errorf("avg name: got %q", out[1].Name)
	}
}

// TestCompilePlanAvgZeroCountUndefined pins the zero-denominator
// guard: an AVG over an always-false selection finishes with NaN for
// the estimate AND its error bars — never Inf, and never a numeric
// StdErr/CI95 that would read as "exactly known". (The wire layer's
// JSONFloat then carries all three as null.)
func TestCompilePlanAvgZeroCountUndefined(t *testing.T) {
	never := AttrCmp("rating", "lt", -1) // Record.Attr floors at 0: always false
	plan, err := CompilePlan([]AggSpec{AvgSpec("rating").WithWhere(never)})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := smallService(t, 40, 1, 2)
	est := NewLRAggregator(svc, DefaultLROptions(5))
	phys, err := Run(context.Background(), est, plan.Aggs, WithMaxSamples(30))
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, r Result) {
		t.Helper()
		if !math.IsNaN(r.Estimate) {
			t.Errorf("%s: estimate %v, want NaN (undefined)", label, r.Estimate)
		}
		if !math.IsNaN(r.StdErr) || !math.IsNaN(r.CI95) {
			t.Errorf("%s: stderr/ci95 = %v/%v, want NaN (an undefined ratio has no CI)",
				label, r.StdErr, r.CI95)
		}
		if r.Samples != 30 {
			t.Errorf("%s: samples %d, want 30", label, r.Samples)
		}
	}
	check("CompilePlan", plan.Finish(phys)[0])

	// Same pin through the planner path.
	qp, err := PlanBatch([]AggSpec{AvgSpec("rating").WithWhere(never)},
		PlanOptions{Seed: 5, MaxSamples: 30})
	if err != nil {
		t.Fatal(err)
	}
	svc2, _ := smallService(t, 40, 1, 2)
	br, err := qp.Execute(context.Background(), svc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("PlanBatch", br.Results[0])
}
