package core

import (
	"context"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// geodesicService2 is smallService2 on degree coordinates: a 10°×10°
// continental window, the regime where the documented equirectangular
// cell approximation holds to ~1% (see internal/geo Projection).
func geodesicService2(n int, seed int64) *lbs.Database {
	bounds := geom.NewRect(geom.Pt(-105, 35), geom.Pt(-95, 45))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 5, UniformFrac: 0.2, Seed: seed,
	})
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: p}
	}
	return lbs.NewDatabase(bounds, tuples)
}

// BenchmarkLRSampleGeodesic is the geodesic twin of BenchmarkLRSample:
// one end-to-end LR estimator sample against a Haversine-ranked
// oracle. Cell geometry runs on the raw degree plane (the documented
// projected-plane approximation); the per-sample cost difference
// against BenchmarkLRSample is the geodesic overhead the acceptance
// bound caps at 2×, tracked in BENCH_geom.json.
func BenchmarkLRSampleGeodesic(b *testing.B) {
	db := geodesicService2(2000, 29)
	svc := lbs.NewService(db, lbs.Options{K: 5, Metric: geo.Haversine})
	agg := NewLRAggregator(svc, DefaultLROptions(1))
	// Warm the history so the benchmark reflects steady state.
	if _, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(50)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Step(context.Background(), []Aggregate{Count()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(svc.QueryCount())/float64(agg.Stats().Samples), "queries/sample")
}
