package core

import (
	"context"
	"fmt"
	"math"
)

// This file executes a QueryPlan as a streaming operator graph (see
// planner.go for the plan shape). Each group runs its own sample
// source; the executor interleaves groups in checkpoint-sized chunks
// and re-allocates the remaining shared query budget across the
// still-unconverged groups by observed accumulator variance — the
// groups that need more samples to reach the confidence target get
// proportionally more of what is left.

// PlanProgress is the per-sample streaming event of Execute: one
// completed sample of one group, carrying the group's physical trace
// points and the finished per-spec partial results. The slices are
// reused between calls — consumers must copy what they keep (the same
// contract as WithProgress).
type PlanProgress struct {
	// Group indexes QueryPlan.Groups.
	Group int
	// Specs are the group's spec indices (QueryPlan.Groups[Group].Specs).
	Specs []int
	// Points holds one TracePoint per physical aggregate of the group,
	// index-aligned with the group's Aggs. Queries is relative to the
	// whole batch (the shared cost axis of the trace).
	Points []TracePoint
	// Partial holds one finished Result per spec in Specs (AVG folded
	// through RatioOf), index-aligned with Specs.
	Partial []Result
	// GroupSamples and GroupQueries are the group's own totals so far.
	GroupSamples int
	GroupQueries int64
	// Degraded marks the sample as drawn while the service answered
	// degraded (see TracePoint.Degraded).
	Degraded bool
}

// GroupAlloc is one group's slice of a checkpoint re-plan: its
// variance-driven need estimate (in samples) and the sample quota the
// allocator granted for the next chunk.
type GroupAlloc struct {
	Group   int     `json:"group"`
	Need    float64 `json:"need"`
	Samples int     `json:"samples"`
}

// ReplanEvent records one checkpoint-boundary budget re-allocation.
type ReplanEvent struct {
	Round int `json:"round"`
	// RemainingQueries is the shared budget left at the checkpoint
	// (-1 when the batch is unbounded).
	RemainingQueries int64        `json:"remaining_queries"`
	Allocs           []GroupAlloc `json:"allocs"`
}

// maxReplanEvents bounds the recorded re-plan history of unbounded
// multi-group runs; later events are dropped (the decisions keep
// happening, only the log truncates).
const maxReplanEvents = 256

// GroupReport is the post-run account of one plan group.
type GroupReport struct {
	Method        string   `json:"method"`
	Seed          int64    `json:"seed"`
	Specs         []int    `json:"specs"`
	Aggs          []string `json:"aggs"`
	Preds         int      `json:"preds"`
	NeedsLocation bool     `json:"needs_location,omitempty"`
	// CostPerSample is the modeled cost the first allocation used.
	CostPerSample float64 `json:"cost_per_sample"`
	Samples       int     `json:"samples"`
	Queries       int64   `json:"queries"`
	CIMet         bool    `json:"ci_met,omitempty"`
}

// BatchResult is the outcome of executing a QueryPlan: one Result per
// source spec (request order), plus the per-group accounts and the
// re-plan history.
type BatchResult struct {
	// Results are index-aligned with QueryPlan.Specs. Result.Queries
	// reports the owning group's spend (the shared stream each spec
	// rode), so Σ over distinct groups — not over specs — is the
	// batch total.
	Results []Result
	Groups  []GroupReport
	Replans []ReplanEvent
	// Samples is the total across groups; Queries the batch's whole
	// oracle spend.
	Samples int
	Queries int64
	// DegradedSamples counts samples (across groups) drawn while the
	// service answered degraded; 0 for a healthy run.
	DegradedSamples int
}

// groupState is one group's mutable execution state.
type groupState struct {
	est      Estimator
	accs     []Accumulator
	samples  int
	queries  int64
	degraded int
	done     bool
	ciMet    bool
	// progress buffers, reused per sample.
	points  []TracePoint
	partial []Result
}

// resultOfAcc assembles a Result from one accumulator — the same
// arithmetic as the Driver's finalize, so planned runs stay
// bit-identical to independent ones.
func resultOfAcc(name string, a *Accumulator, queries int64) Result {
	return Result{
		Name:     name,
		Estimate: a.Mean(),
		StdErr:   a.StdErr(),
		CI95:     a.CI95(),
		Samples:  a.N(),
		Queries:  queries,
	}
}

// specResult finishes one spec of group gi from the group's fused
// accumulators (RatioOf for AVG, pass-through otherwise).
func (p *QueryPlan) specResult(gi, li int, st *groupState) Result {
	grp := &p.Groups[gi]
	e := grp.entries[li]
	name := p.Specs[grp.Specs[li]].name()
	if e.den < 0 {
		return resultOfAcc(name, &st.accs[e.num], st.queries)
	}
	r := RatioOf(
		resultOfAcc(grp.Aggs[e.num].Name, &st.accs[e.num], st.queries),
		resultOfAcc(grp.Aggs[e.den].Name, &st.accs[e.den], st.queries),
	)
	r.Name = name
	return r
}

// groupCIMet is the per-spec CI sink's stopping rule: every spec of
// the group has converged. Direct specs use the accumulator rule of
// ciMet; AVG specs use the delta-method CI of their ratio, and an
// undefined ratio (zero denominator) retires only once the
// denominator is confidently zero — no observed variance — so a
// selection that is merely rare keeps sampling.
func (p *QueryPlan) groupCIMet(gi int, st *groupState) bool {
	rel := p.opts.TargetCI
	if rel <= 0 || st.samples < ciMinSamples {
		return false
	}
	grp := &p.Groups[gi]
	for li := range grp.entries {
		e := grp.entries[li]
		if e.den < 0 {
			a := &st.accs[e.num]
			if a.CI95() > rel*math.Abs(a.Mean()) {
				return false
			}
			continue
		}
		den := &st.accs[e.den]
		if den.Mean() == 0 {
			if den.CI95() > 0 {
				return false
			}
			continue
		}
		r := p.specResult(gi, li, st)
		if r.CI95 > rel*math.Abs(r.Estimate) {
			return false
		}
	}
	return true
}

// emitProgress streams one completed sample.
func (p *QueryPlan) emitProgress(gi int, st *groupState, q int64, degraded bool, progress func(PlanProgress)) {
	if progress == nil {
		return
	}
	grp := &p.Groups[gi]
	for j := range grp.Aggs {
		st.points[j] = TracePoint{Queries: q, Samples: st.accs[j].N(), Estimate: st.accs[j].Mean(), Degraded: degraded}
	}
	for li := range grp.entries {
		st.partial[li] = p.specResult(gi, li, st)
	}
	progress(PlanProgress{
		Group:        gi,
		Specs:        grp.Specs,
		Points:       st.points,
		Partial:      st.partial,
		GroupSamples: st.samples,
		GroupQueries: st.queries,
		Degraded:     degraded,
	})
}

// need estimates how many more samples group gi wants, from its
// observed accumulator variance: for the worst spec, the total sample
// count that would shrink its 95 % CI to the target is
// n·(ci/(rel·|est|))², so the need is that minus what it already has.
// Before ciMinSamples (or with no target) the need falls back to one
// checkpoint — "unknown, keep probing".
func (p *QueryPlan) need(gi int, st *groupState) float64 {
	unknown := float64(p.opts.CheckpointSamples)
	if st.samples < ciMinSamples {
		return unknown
	}
	rel := p.opts.TargetCI
	grp := &p.Groups[gi]
	worst := 0.0
	for li := range grp.entries {
		r := p.specResult(gi, li, st)
		if math.IsNaN(r.Estimate) || r.Estimate == 0 {
			if r.CI95 == 0 {
				continue // confidently zero: no need
			}
			return unknown * 4 // undefined scale: generous probe
		}
		relCI := r.CI95 / math.Abs(r.Estimate)
		var toGo float64
		if rel > 0 {
			// Samples to reach the target, minus samples held.
			toGo = float64(st.samples) * (relCI/rel*relCI/rel - 1)
		} else {
			// No target: weight by relative variance, so the noisiest
			// group drinks most of an open-ended budget.
			toGo = float64(st.samples) * relCI * relCI
		}
		if toGo > worst {
			worst = toGo
		}
	}
	return worst
}

// allocate divides the next checkpoint's samples across the active
// groups proportionally to their needs, scaled down when the modeled
// query cost of the round would overrun the remaining shared budget.
func (p *QueryPlan) allocate(round int, remaining int64, active []int, states []groupState) ([]int, ReplanEvent) {
	base := p.opts.CheckpointSamples
	ev := ReplanEvent{Round: round, RemainingQueries: remaining}
	needs := make([]float64, len(active))
	total := 0.0
	for i, gi := range active {
		needs[i] = p.need(gi, &states[gi])
		total += needs[i]
	}
	quotas := make([]int, len(active))
	for i := range active {
		share := 1.0 / float64(len(active))
		if total > 0 {
			share = needs[i] / total
		}
		q := int(math.Round(share * float64(len(active)) * float64(base)))
		if q < 1 {
			q = 1
		}
		if q > 4*base {
			q = 4 * base
		}
		quotas[i] = q
	}
	if remaining >= 0 {
		// Scale the round down when its modeled cost overruns what is
		// left, so the budget drains across groups by need instead of
		// first-come-first-served.
		cost := 0.0
		perSample := make([]float64, len(active))
		for i, gi := range active {
			perSample[i] = p.Groups[gi].CostPerSample
			if st := &states[gi]; st.samples > 0 {
				perSample[i] = float64(st.queries) / float64(st.samples)
			}
			cost += float64(quotas[i]) * perSample[i]
		}
		if cost > float64(remaining) {
			scale := float64(remaining) / cost
			for i := range quotas {
				if q := int(math.Floor(float64(quotas[i]) * scale)); q < quotas[i] {
					quotas[i] = q
				}
				if quotas[i] < 1 {
					quotas[i] = 1
				}
			}
		}
	}
	for i, gi := range active {
		ev.Allocs = append(ev.Allocs, GroupAlloc{Group: gi, Need: needs[i], Samples: quotas[i]})
	}
	return quotas, ev
}

// runGroupChunk draws up to quota samples from group gi, mirroring the
// serial Driver's per-sample check order (sample cap → shared budget →
// context → step → fold/stream → graceful stop → CI) so a single-group
// plan reproduces a legacy Run sample for sample. Sets *exhausted when
// the shared budget ends the whole batch; returns only fatal errors.
func (p *QueryPlan) runGroupChunk(ctx context.Context, gi int, st *groupState, svc Oracle, startQ int64, quota int, progress func(PlanProgress), exhausted *bool) error {
	grp := &p.Groups[gi]
	taken := 0
	for {
		if taken >= quota {
			return nil
		}
		if p.opts.MaxSamples > 0 && st.samples >= p.opts.MaxSamples {
			st.done = true
			return nil
		}
		if p.opts.MaxQueries > 0 && svc.QueryCount()-startQ >= p.opts.MaxQueries {
			*exhausted = true
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
		m := p.opts.Batch
		if m < 1 {
			m = 1
		}
		if rem := quota - taken; rem < m {
			m = rem
		}
		if p.opts.MaxSamples > 0 {
			if rem := p.opts.MaxSamples - st.samples; rem < m {
				m = rem
			}
		}
		gStart := svc.QueryCount()
		deg0 := degradedCount(svc)
		batchVals, err := stepBatch(ctx, st.est, grp.Aggs, m)
		st.queries += svc.QueryCount() - gStart
		q := svc.QueryCount() - startQ
		degraded := degradedCount(svc) > deg0
		for _, vals := range batchVals {
			for j := range grp.Aggs {
				st.accs[j].Add(vals[j])
			}
			st.samples++
			taken++
			if degraded {
				st.degraded++
			}
			p.emitProgress(gi, st, q, degraded, progress)
		}
		if stopErr(ctx, err) {
			*exhausted = true
			return nil
		}
		if err != nil {
			return err
		}
		if p.groupCIMet(gi, st) {
			st.done = true
			st.ciMet = true
			return nil
		}
	}
}

// Execute runs the plan against svc: group sample streams interleaved
// at checkpoint grain, the shared budget re-allocated by variance at
// every boundary, every completed sample streamed through progress
// (which may be nil). It stops when every group converged or capped
// out, the shared budget or the service's own is exhausted, or ctx is
// canceled — cancellation is graceful and returns the partial
// BatchResult, like the Driver (an error is returned only when not
// even one sample finished, or on a non-graceful transport failure).
//
// A QueryPlan must be executed at most once: its fused aggregates and
// estimators carry run state.
func (p *QueryPlan) Execute(ctx context.Context, svc Oracle, progress func(PlanProgress)) (*BatchResult, error) {
	startQ := svc.QueryCount()
	states := make([]groupState, len(p.Groups))
	for i := range states {
		grp := &p.Groups[i]
		states[i] = groupState{
			est:     newPlanEstimator(grp.Method, svc, grp.Seed),
			accs:    make([]Accumulator, len(grp.Aggs)),
			points:  make([]TracePoint, len(grp.Aggs)),
			partial: make([]Result, len(grp.Specs)),
		}
	}

	var replans []ReplanEvent
	exhausted := false
	for round := 0; !exhausted; round++ {
		var active []int
		for i := range states {
			if !states[i].done {
				active = append(active, i)
			}
		}
		if len(active) == 0 || ctx.Err() != nil {
			break
		}
		remaining := int64(-1)
		if p.opts.MaxQueries > 0 {
			remaining = p.opts.MaxQueries - (svc.QueryCount() - startQ)
			if remaining <= 0 {
				break
			}
		}
		quotas, ev := p.allocate(round, remaining, active, states)
		if len(p.Groups) > 1 && len(replans) < maxReplanEvents {
			replans = append(replans, ev)
		}
		for i, gi := range active {
			if exhausted || ctx.Err() != nil {
				break
			}
			if err := p.runGroupChunk(ctx, gi, &states[gi], svc, startQ, quotas[i], progress, &exhausted); err != nil {
				return nil, err
			}
		}
	}

	total := 0
	for i := range states {
		total += states[i].samples
	}
	if total == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: budget exhausted before completing a single sample")
	}

	degradedTotal := 0
	for i := range states {
		degradedTotal += states[i].degraded
	}
	br := &BatchResult{
		Results:         make([]Result, len(p.Specs)),
		Groups:          make([]GroupReport, len(p.Groups)),
		Replans:         replans,
		Samples:         total,
		Queries:         svc.QueryCount() - startQ,
		DegradedSamples: degradedTotal,
	}
	for gi := range p.Groups {
		grp := &p.Groups[gi]
		st := &states[gi]
		names := make([]string, len(grp.Aggs))
		for j := range grp.Aggs {
			names[j] = grp.Aggs[j].Name
		}
		br.Groups[gi] = GroupReport{
			Method:        grp.Method,
			Seed:          grp.Seed,
			Specs:         grp.Specs,
			Aggs:          names,
			Preds:         len(grp.PredHashes),
			NeedsLocation: grp.NeedsLocation,
			CostPerSample: grp.CostPerSample,
			Samples:       st.samples,
			Queries:       st.queries,
			CIMet:         st.ciMet,
		}
		for li, si := range grp.Specs {
			br.Results[si] = p.specResult(gi, li, st)
			br.Results[si].DegradedSamples = st.degraded
		}
	}
	return br, nil
}
