package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// lnrFixture builds a small service and returns ground-truth helpers.
func lnrFixture(n int, k int, seed int64) (*lbs.Service, *lbs.Database) {
	db := smallService2(n, seed)
	return lbs.NewService(db, lbs.Options{K: k}), db
}

// truthCellArea computes the exact top-h cell area of the tuple with
// the given index using full knowledge.
func truthCellArea(db *lbs.Database, idx, h int) float64 {
	target := db.Tuple(idx).Loc
	sites := make([]cell.Site, 0, db.Len()-1)
	for i := 0; i < db.Len(); i++ {
		if i == idx {
			continue
		}
		sites = append(sites, cell.Site{Key: db.Tuple(i).ID, Loc: db.Tuple(i).Loc})
	}
	c := cell.BuildFromSites(db.Bounds().Polygon(), h, target, sites)
	return c.Area()
}

func TestLNRCellMatchesGroundTruthTop1(t *testing.T) {
	svc, db := lnrFixture(40, 5, 211)
	agg := NewLNRAggregator(svc, LNROptions{Seed: 1, EdgeEps: svc.Bounds().Diagonal() * 1e-4})
	// Pick a few tuples by probing their own locations (top-1 there).
	for idx := 0; idx < 8; idx++ {
		loc := db.Tuple(idx).Loc
		region, _, err := agg.buildCell(context.Background(), db.Tuple(idx).ID, 1, loc)
		if err != nil {
			t.Fatalf("tuple %d: %v", idx, err)
		}
		got := region.Area()
		want := truthCellArea(db, idx, 1)
		if math.Abs(got-want) > 0.02*want+1e-6 {
			t.Errorf("tuple %d: inferred area %v vs truth %v", idx, got, want)
		}
	}
}

func TestLNRCellMatchesGroundTruthTopK(t *testing.T) {
	svc, db := lnrFixture(40, 6, 223)
	agg := NewLNRAggregator(svc, LNROptions{H: 3, Seed: 2, EdgeEps: svc.Bounds().Diagonal() * 1e-4})
	for idx := 0; idx < 6; idx++ {
		loc := db.Tuple(idx).Loc
		region, _, err := agg.buildCell(context.Background(), db.Tuple(idx).ID, 3, loc)
		if err != nil {
			t.Fatalf("tuple %d: %v", idx, err)
		}
		got := region.Area()
		want := truthCellArea(db, idx, 3)
		if math.Abs(got-want) > 0.05*want+1e-6 {
			t.Errorf("tuple %d: top-3 inferred area %v vs truth %v", idx, got, want)
		}
	}
}

func TestLNRCountEstimate(t *testing.T) {
	svc, db := lnrFixture(50, 3, 227)
	agg := NewLNRAggregator(svc, LNROptions{Seed: 3})
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150))
	if err != nil {
		t.Fatal(err)
	}
	checkZ(t, "LNR COUNT", res[0], float64(db.Len()), 4)
	if agg.Stats().Cells == 0 || agg.Stats().EdgeSearches == 0 {
		t.Errorf("stats not recorded: %+v", agg.Stats())
	}
}

func TestLNRCountTopH(t *testing.T) {
	svc, db := lnrFixture(60, 5, 229)
	agg := NewLNRAggregator(svc, LNROptions{H: 2, Seed: 5})
	res, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(120))
	if err != nil {
		t.Fatal(err)
	}
	checkZ(t, "LNR COUNT h=2", res[0], float64(db.Len()), 4.5)
}

func TestLNRAttributeAggregates(t *testing.T) {
	// Gender-ratio style estimation: tags survive the rank-only
	// interface.
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	tuples := make([]lbs.Tuple, 80)
	male := 0
	for i := range tuples {
		g := "f"
		if i%3 == 0 {
			g = "m"
			male++
		}
		tuples[i] = lbs.Tuple{
			ID:   int64(i + 1),
			Loc:  geom.Pt(float64(7+(i*13)%87), float64(5+(i*29)%91)),
			Tags: map[string]string{"gender": g},
		}
	}
	db := lbs.NewDatabase(bounds, tuples)
	svc := lbs.NewService(db, lbs.Options{K: 3})
	agg := NewLNRAggregator(svc, LNROptions{Seed: 7})
	res, err := agg.Run(context.Background(), []Aggregate{CountTag("gender", "m"), Count()}, WithMaxSamples(150))
	if err != nil {
		t.Fatal(err)
	}
	checkZ(t, "LNR COUNT(m)", res[0], float64(male), 4)
	ratio := RatioOf(res[0], res[1])
	truth := float64(male) / float64(len(tuples))
	if math.Abs(ratio.Estimate-truth) > 0.15 {
		t.Errorf("gender ratio %v vs %v", ratio.Estimate, truth)
	}
}

func TestLNRLocalizeExact(t *testing.T) {
	// Without obfuscation, localization must recover tuple positions to
	// ~EdgeEps precision.
	svc, db := lnrFixture(40, 5, 233)
	eps := svc.Bounds().Diagonal() * 1e-4
	agg := NewLNRAggregator(svc, LNROptions{Seed: 11, EdgeEps: eps})
	okCount := 0
	var worst float64
	for idx := 0; idx < 10; idx++ {
		truth := db.Tuple(idx).Loc
		got, err := agg.Localize(context.Background(), db.Tuple(idx).ID, truth)
		if err != nil {
			t.Logf("tuple %d: %v", idx, err)
			continue
		}
		d := got.Dist(truth)
		if d > worst {
			worst = d
		}
		if d <= 20*eps {
			okCount++
		}
	}
	if okCount < 7 {
		t.Errorf("only %d/10 tuples localized within 20ε (worst %v, ε=%v)", okCount, worst, eps)
	}
}

func TestLNRLocalizeObfuscated(t *testing.T) {
	// With obfuscation the recovered position approximates the
	// *effective* location; error vs the true location is dominated by
	// the obfuscation radius (the Figure 21 effect).
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	tuples := make([]lbs.Tuple, 50)
	for i := range tuples {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: geom.Pt(float64(3+(i*17)%94), float64(2+(i*31)%96))}
	}
	obf := lbs.Obfuscation{GridSize: 2.0, Jitter: 0.5, Seed: 5}
	db := lbs.NewObfuscatedDatabase(bounds, tuples, obf)
	svc := lbs.NewService(db, lbs.Options{K: 5})
	agg := NewLNRAggregator(svc, LNROptions{Seed: 13, EdgeEps: bounds.Diagonal() * 1e-4})
	var errEff, errTrue []float64
	for idx := 0; idx < 8; idx++ {
		eff := db.EffectiveLoc(idx)
		got, err := agg.Localize(context.Background(), db.Tuple(idx).ID, eff)
		if err != nil {
			continue
		}
		errEff = append(errEff, got.Dist(eff))
		errTrue = append(errTrue, got.Dist(db.Tuple(idx).Loc))
	}
	if len(errEff) < 4 {
		t.Fatalf("too few successful localizations: %d", len(errEff))
	}
	meanEff, meanTrue := mean(errEff), mean(errTrue)
	if meanEff > 0.5 {
		t.Errorf("effective-location error too large: %v", meanEff)
	}
	if meanTrue < meanEff {
		t.Errorf("true-location error %v should exceed effective error %v under obfuscation",
			meanTrue, meanEff)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestLNRLocationCondition(t *testing.T) {
	// COUNT with a location-based selection over a rank-only interface
	// forces position inference per sampled tuple (§4.3 use case).
	svc, db := lnrFixture(40, 5, 239)
	sub := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 100))
	truth := float64(db.Count(func(tp *lbs.Tuple) bool { return sub.Contains(tp.Loc) }))
	agg := NewLNRAggregator(svc, LNROptions{Seed: 17})
	res, err := agg.Run(context.Background(), []Aggregate{CountInRect(sub)}, WithMaxSamples(120))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats().Localizations == 0 {
		t.Fatalf("no localizations performed for a location-based aggregate")
	}
	checkZ(t, "LNR COUNT(in-rect)", res[0], truth, 4.5)
}

func TestLNRBudgetStops(t *testing.T) {
	db := smallService2(60, 241)
	svc := lbs.NewService(db, lbs.Options{K: 2, Budget: 3000})
	agg := NewLNRAggregator(svc, LNROptions{Seed: 19})
	res, err := agg.Run(context.Background(), []Aggregate{Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queries > 3000 {
		t.Errorf("budget exceeded: %d", res[0].Queries)
	}
}

func TestLNRTheorem2Bound(t *testing.T) {
	db := smallService2(50, 251)
	nn := NearestNeighborDists(db)
	if len(nn) != 50 {
		t.Fatalf("nearest dists: %d", len(nn))
	}
	b1, u1 := CountBiasBound(nn, 0.001)
	b2, u2 := CountBiasBound(nn, 0.01)
	if u1 != 0 {
		t.Errorf("tiny eps should bound all tuples, %d unbounded", u1)
	}
	if b2 <= b1 {
		t.Errorf("bound must grow with eps: %v vs %v", b1, b2)
	}
	_ = u2
	// The bound vanishes as eps → 0.
	b0, _ := CountBiasBound(nn, 1e-12)
	if b0 > 1e-6 {
		t.Errorf("bound should vanish with eps: %v", b0)
	}
}

func TestVolumeRatioBound(t *testing.T) {
	if VolumeRatioBound(1, 2) != 0 {
		t.Errorf("d<=eps should give 0")
	}
	r := VolumeRatioBound(10, 1)
	if math.Abs(r-0.81) > 1e-12 {
		t.Errorf("ratio: %v", r)
	}
	if VolumeRatioBound(10, 0) != 1 {
		t.Errorf("eps=0 should give 1")
	}
}

func TestLNRProberCaching(t *testing.T) {
	db := smallService2(30, 257)
	svc := lbs.NewService(db, lbs.Options{K: 2})
	p := newLNRProber(svc, nil)
	pt := geom.Pt(10, 10)
	if _, err := p.probe(context.Background(), pt); err != nil {
		t.Fatal(err)
	}
	if _, err := p.probe(context.Background(), pt); err != nil {
		t.Fatal(err)
	}
	if svc.QueryCount() != 1 {
		t.Errorf("cache miss on identical probe: %d queries", svc.QueryCount())
	}
}

func TestRelOrder(t *testing.T) {
	recs := []lbs.LNRRecord{{ID: 5}, {ID: 9}, {ID: 2}}
	if relOrder(recs, 5, 9) != 1 || relOrder(recs, 9, 5) != -1 {
		t.Errorf("both present ordering")
	}
	if relOrder(recs, 5, 77) != 1 || relOrder(recs, 77, 5) != -1 {
		t.Errorf("presence ordering")
	}
	if relOrder(recs, 70, 77) != 0 {
		t.Errorf("both absent should be unknown")
	}
}

func TestEdgeSearchParams(t *testing.T) {
	b := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	p := newEdgeSearchParams(0.1, b)
	if p.deltaPrime != 0.05 {
		t.Errorf("deltaPrime: %v", p.deltaPrime)
	}
	if d := p.fineDelta(10); d <= 0 || d > p.deltaCoarse {
		t.Errorf("fineDelta: %v", d)
	}
	// Fine delta shrinks with anchor distance (angular requirement).
	if p.fineDelta(100) >= p.fineDelta(1) {
		t.Errorf("fineDelta not decreasing in r")
	}
}
