package core

import (
	"context"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// BatchOracle is an Oracle with a native multi-point query path:
// m points answered under one budget charge sequence and (for remote
// adapters) one network round-trip. The batch result is index-aligned
// with the points; positions the budget could not cover are nil and
// the error is lbs.ErrBudgetExhausted (a served empty answer is a
// non-nil empty slice). The in-process simulator, the HTTP client
// adapter and the caching wrapper all implement it.
type BatchOracle interface {
	Oracle
	QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error)
	QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error)
}

// The simulator, every Querier wrapper, and the HTTP client all
// satisfy the batch interface.
var _ BatchOracle = (*lbs.Service)(nil)
var _ BatchOracle = (*lbs.CachedOracle)(nil)

// queryLRBatched answers pts through the oracle's batch path when it
// has one, falling back to sequential point queries otherwise. The
// fallback preserves batch semantics: on error it returns the answers
// completed so far (index-aligned, nil from the failed position on)
// together with the error.
func queryLRBatched(ctx context.Context, o Oracle, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	if bo, ok := o.(BatchOracle); ok {
		return bo.QueryLRBatch(ctx, pts, filter)
	}
	out := make([][]lbs.LRRecord, len(pts))
	for i, p := range pts {
		recs, err := o.QueryLR(ctx, p, filter)
		if err != nil {
			return out, err
		}
		if recs == nil {
			recs = []lbs.LRRecord{}
		}
		out[i] = recs
	}
	return out, nil
}

// BatchEstimator is an Estimator that can draw several point samples
// through the oracle's batch path, amortizing round-trips and
// budget/limiter synchronization. StepBatch returns one value slice
// per *completed* sample (at most m); on error the completed samples
// are still returned alongside it. NNOBaseline implements it — its
// per-sample queries are independent, so whole samples batch
// naturally; the Driver falls back to sequential Step calls for
// estimators that don't.
type BatchEstimator interface {
	Estimator
	StepBatch(ctx context.Context, aggs []Aggregate, m int) ([][]float64, error)
}

var _ BatchEstimator = (*NNOBaseline)(nil)

// WithBatch makes the Driver draw up to m point samples per estimator
// call (via StepBatch when the estimator implements BatchEstimator,
// sequential Step calls otherwise). Against a remote oracle this
// collapses m HTTP round-trips into one; against the simulator it
// amortizes budget and limiter synchronization. m ≤ 1 means one
// sample per call.
//
// Two accounting effects to be aware of: trace points of samples in
// the same batch share one post-batch query count, and when the
// budget dies mid-batch the samples that happened to complete cheaply
// (e.g. empty answers) are still folded in, so the stopping boundary
// is coarser by up to one batch — the same class of overshoot
// WithMaxQueries documents for parallel workers.
func WithBatch(m int) RunOption {
	return func(c *runConfig) { c.batch = m }
}

// stepBatch draws up to m samples from est: natively batched when
// supported, a sequential Step loop otherwise. It returns the values
// of completed samples; on error the completed prefix is still
// returned.
func stepBatch(ctx context.Context, est Estimator, aggs []Aggregate, m int) ([][]float64, error) {
	if m < 1 {
		m = 1
	}
	if m > 1 {
		if be, ok := est.(BatchEstimator); ok {
			return be.StepBatch(ctx, aggs, m)
		}
	}
	out := make([][]float64, 0, m)
	for i := 0; i < m; i++ {
		vals, err := est.Step(ctx, aggs)
		if err != nil {
			return out, err
		}
		out = append(out, vals)
	}
	return out, nil
}
