package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// shufflePred returns a structurally-equal tree with every and/or
// child list independently permuted (and one random child duplicated,
// which canonicalization must absorb).
func shufflePred(rng *rand.Rand, p PredSpec) PredSpec {
	if len(p.Args) == 0 {
		return p
	}
	kids := make([]PredSpec, 0, len(p.Args)+1)
	for i := range p.Args {
		kids = append(kids, shufflePred(rng, p.Args[i]))
	}
	if p.Op == OpAnd || p.Op == OpOr {
		if rng.Intn(2) == 0 {
			kids = append(kids, kids[rng.Intn(len(kids))]) // duplicate one conjunct
		}
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
	}
	p.Args = kids
	return p
}

// TestCanonHashInvariantUnderReordering: structurally-equal predicates
// (and/or children reordered and duplicated) canonicalize to the same
// tree and hash equal — the soundness precondition of planner dedup —
// and the canonical form selects exactly the same records.
func TestCanonHashInvariantUnderReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := testRecords(t, 40)
	for i := 0; i < 500; i++ {
		p := randPred(rng, 3)
		q := shufflePred(rng, p)
		if p.Hash() != q.Hash() {
			t.Fatalf("case %d: reordered tree hashes differ\n p=%s\n q=%s", i, p, q)
		}
		if !reflect.DeepEqual(p.Canon(), q.Canon()) {
			t.Fatalf("case %d: canonical forms differ\n p=%s\n q=%s", i, p.Canon(), q.Canon())
		}
		can := q.Canon()
		orig, canEval := p.compile(), can.compile()
		for _, r := range recs {
			if orig(r) != canEval(r) {
				t.Fatalf("case %d: canonical form selects differently on record %d (%s)", i, r.ID, p)
			}
		}
	}
}

// TestCanonHashDistinct: structurally-distinct canonical predicates on
// the seeded workload do not collide — the hash is usable as the
// compact observable identity of a selection.
func TestCanonHashDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	byHash := make(map[uint64]string)
	for i := 0; i < 2000; i++ {
		p := randPred(rng, 3)
		c := p.Canon()
		key := c.canonKey()
		h := p.Hash()
		if prev, ok := byHash[h]; ok && prev != key {
			t.Fatalf("hash collision between distinct canonical predicates:\n a=%q\n b=%q", prev, key)
		}
		byHash[h] = key
	}
}

// TestCanonDoesNotMutate: Canon must leave the receiver's tree (and
// shared child slices) untouched.
func TestCanonDoesNotMutate(t *testing.T) {
	p := And(TagEq("open_sunday", "yes"), AttrCmp("rating", "ge", 3))
	before := p.String()
	_ = p.Canon()
	_ = p.Hash()
	if p.String() != before {
		t.Fatalf("Canon mutated the receiver: %s != %s", p.String(), before)
	}
	if p.Args[0].Op != OpTagEq {
		t.Fatalf("Canon reordered the receiver's children in place")
	}
}
