package core

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
)

// LNROptions configures Algorithm LNR-LBS-AGG (§4): aggregate
// estimation over interfaces that return only a ranked list of tuple
// IDs.
type LNROptions struct {
	// H is the top-h cell used for weighting (≤ the service's k).
	// Default 1. Values > 1 exercise the concavity handling of §4.2.
	H int
	// EdgeEps is the target maximum edge error ε of the binary-search
	// edge inference; the estimation bias shrinks with ε (Theorem 2)
	// while the per-edge query cost grows as log(1/ε). Default:
	// bounds diagonal × 1e-3.
	EdgeEps float64
	// MaxCutsPerCell and MaxRoundsPerCell are robustness guards; a
	// tripped guard finishes the cell with its current region
	// (recorded in the stats).
	MaxCutsPerCell   int // default 64
	MaxRoundsPerCell int // default 50
	// Region restricts the estimation to a sub-region of the service's
	// coverage; zero means the whole service bounds (see
	// LROptions.Region).
	Region geom.Rect
	// Sampler is the query-location distribution (uniform when nil).
	Sampler sampling.Sampler
	// Filter is an optional server-side selection pass-through.
	Filter lbs.Filter
	// Seed drives randomness.
	Seed int64
}

// LNRStats counts internal events of an LNR run.
type LNRStats struct {
	Samples        int
	Cells          int
	EdgeSearches   int64
	VertexProbes   int64
	BisectorRepair int64 // Lemma-1 completeness searches (k>1)
	Localizations  int
	GuardTrips     int
	EmptyAnswers   int
}

// LNRAggregator implements Algorithm LNR-LBS-AGG (Algorithm 6 plus the
// §4.2 concavity extension and the §4.3 position inference).
type LNRAggregator struct {
	svc    Oracle
	opts   LNROptions
	rng    *rand.Rand
	smp    sampling.Sampler
	prober *lnrProber
	bound  geom.Rect
	params edgeSearchParams
	stats  LNRStats
	vtol   float64
}

// NewLNRAggregator builds an aggregator over a rank-only service view.
func NewLNRAggregator(svc Oracle, opts LNROptions) *LNRAggregator {
	if opts.H <= 0 {
		opts.H = 1
	}
	if opts.H > svc.K() {
		opts.H = svc.K()
	}
	if opts.EdgeEps <= 0 {
		opts.EdgeEps = svc.Bounds().Diagonal() * 1e-3
	}
	if opts.MaxCutsPerCell <= 0 {
		opts.MaxCutsPerCell = 64
	}
	if opts.MaxRoundsPerCell <= 0 {
		opts.MaxRoundsPerCell = 50
	}
	region := opts.Region
	if region.Area() <= 0 {
		region = svc.Bounds()
	}
	smp := opts.Sampler
	if smp == nil {
		smp = sampling.NewUniform(region)
	}
	return &LNRAggregator{
		svc:    svc,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		smp:    smp,
		prober: newLNRProber(svc, opts.Filter),
		bound:  region,
		params: newEdgeSearchParams(opts.EdgeEps, region),
		vtol:   region.Diagonal() * 1e-9,
	}
}

// Stats returns run statistics accumulated so far.
func (a *LNRAggregator) Stats() LNRStats { return a.stats }

// lnrCell is the per-target state of one Voronoi-cell inference.
type lnrCell struct {
	tID    int64
	h      int
	c1     geom.Point // interior anchor: t ∈ top-h here
	region *cell.Complex
	coApp  map[int64]bool // tuples co-appearing with t (Lemma 1 candidates)
	// flipPts accumulates observed boundary points per opposing tuple;
	// every bracket search lands one more point on B(t, t′), and two
	// well-separated points pin the bisector line far more cheaply than
	// the per-edge angled re-search of Algorithm 7 (see registerFlip).
	flipPts map[int64][]geom.Point
	// refines counts per-key cut replacements, bounding repair loops.
	refines map[int64]int
}

// member reports whether t is within the top-h at p.
func (a *LNRAggregator) member(ctx context.Context, c *lnrCell, p geom.Point) (bool, error) {
	recs, err := a.prober.probe(ctx, p)
	if err != nil {
		return false, err
	}
	a.recordCoApp(c, recs)
	r := rankIn(recs, c.tID)
	return r >= 0 && r < c.h, nil
}

// validatedMemberBracket brackets the top-h boundary of t along
// [from, to] (member(from) must be true, member(to) false) and
// verifies the bracket sits on a genuine single-edge crossing: just
// outside, t must occupy rank h (0-based) with the displacing tuple at
// rank h−1. Brackets that jumped past a corner (t's rank beyond h) are
// refined up to three times; ok is false when no valid displacer can
// be identified (e.g. the crossing is the coverage/visibility
// boundary, where weighting must treat the region edge as a wall).
func (a *LNRAggregator) validatedMemberBracket(ctx context.Context, c *lnrCell, from, to geom.Point) (c3, c4 geom.Point, other int64, ok bool, err error) {
	memberPred := func(p geom.Point) (bool, error) { return a.member(ctx, c, p) }
	c3, c4, err = predicateSearch(from, to, a.params.deltaCoarse, memberPred)
	if err != nil {
		return c3, c4, 0, false, err
	}
	for attempt := 0; ; attempt++ {
		recs, err := a.prober.probe(ctx, c4)
		if err != nil {
			return c3, c4, 0, false, err
		}
		a.recordCoApp(c, recs)
		r := rankIn(recs, c.tID)
		if r == c.h && len(recs) >= c.h {
			// The crossing must be a clean adjacent swap: just inside,
			// t sits at rank h−1 with the candidate displacer directly
			// below it at rank h. Otherwise the bracket straddles more
			// than one rank event and the midpoint would not lie on
			// B(t, displacer).
			cand := recs[c.h-1].ID
			recs3, err := a.prober.probe(ctx, c3)
			if err != nil {
				return c3, c4, 0, false, err
			}
			if rankIn(recs3, c.tID) == c.h-1 && rankIn(recs3, cand) == c.h {
				return c3, c4, cand, true, nil
			}
		}
		if attempt >= 4 || c3.Dist(c4) <= a.params.deltaFloor*2 {
			// Strict rejection: a bracket whose outside endpoint does
			// not show t at exactly rank h crossed something other
			// than a single top-h boundary edge (a corner, or the edge
			// of t's visibility). Using it would register a flip point
			// off the bisector and silently corrupt the cell; the
			// vertex is left unconfirmed instead.
			return c3, c4, 0, false, nil
		}
		width := c3.Dist(c4) / 8
		if width < a.params.deltaFloor {
			width = a.params.deltaFloor
		}
		c3, c4, err = predicateSearch(c3, c4, width, memberPred)
		if err != nil {
			return c3, c4, 0, false, err
		}
	}
}

// recordCoApp extends the co-appearance set from a probe answer that
// contains t.
func (a *LNRAggregator) recordCoApp(c *lnrCell, recs []lbs.LNRRecord) {
	if rankIn(recs, c.tID) < 0 {
		return
	}
	for _, r := range recs {
		if r.ID != c.tID {
			c.coApp[r.ID] = true
		}
	}
}

// validIndicatorBracket reports whether an indicator bracket (c3, c4)
// for (t, other) is a genuine B(t, other) crossing: both tuples must be
// visible at both endpoints with t first inside and other first
// outside. Brackets that silently jumped a zone where one tuple left
// the top-k would otherwise register points on visibility boundaries
// instead of the bisector.
func (a *LNRAggregator) validIndicatorBracket(ctx context.Context, c *lnrCell, other int64, c3, c4 geom.Point) (bool, error) {
	recs3, err := a.prober.probe(ctx, c3)
	if err != nil {
		return false, err
	}
	recs4, err := a.prober.probe(ctx, c4)
	if err != nil {
		return false, err
	}
	r3t, r3o := rankIn(recs3, c.tID), rankIn(recs3, other)
	r4t, r4o := rankIn(recs4, c.tID), rankIn(recs4, other)
	return r3t >= 0 && r3o >= 0 && r4t >= 0 && r4o >= 0 &&
		r3t < r3o && r4o < r4t, nil
}

// orderPred builds the indicator predicate "t provably closer than t′"
// for bisector searches; unknown order counts as false, which biases
// the bracket toward the t side and is corrected by later vertex
// tests.
func (a *LNRAggregator) orderPred(ctx context.Context, c *lnrCell, other int64) func(geom.Point) (bool, error) {
	return func(p geom.Point) (bool, error) {
		recs, err := a.prober.probe(ctx, p)
		if err != nil {
			return false, err
		}
		a.recordCoApp(c, recs)
		return relOrder(recs, c.tID, other) > 0, nil
	}
}

// findEdgeAlong locates the boundary of the top-h cell along the ray
// from the anchor c1 in direction dir and returns the inferred cut.
// found is false when the cell reaches the bounding box along the ray.
func (a *LNRAggregator) findEdgeAlong(ctx context.Context, c *lnrCell, dir geom.Point) (cell.Cut, bool, error) {
	a.stats.EdgeSearches++
	exit, ok := geom.RayRectExit(c.c1, dir, a.bound)
	if !ok || exit.Dist(c.c1) < a.params.deltaCoarse {
		return cell.Cut{}, false, nil
	}
	mExit, err := a.member(ctx, c, exit)
	if err != nil {
		return cell.Cut{}, false, err
	}
	if mExit {
		return cell.Cut{}, false, nil // cell touches the boundary here
	}
	c3, c4, other, ok, err := a.validatedMemberBracket(ctx, c, c.c1, exit)
	if err != nil || !ok {
		return cell.Cut{}, false, err
	}
	cut, ok, err := a.registerFlip(ctx, c, other, c3.Mid(c4), c.c1)
	if err != nil || !ok {
		return cell.Cut{}, false, err
	}
	return cut, true, nil
}

// registerFlip records one observed boundary point of B(t, t′) and
// derives the current best cut line for that bisector from the two
// farthest-apart observed points. Each point costs one coarse bracket
// search (positional error ≤ ε/4), so with separation s the angular
// error is ≤ ε/(2s) — with s of cell scale this beats Algorithm 7's
// δ′-offset construction at a fraction of the probes. When only one
// point is known, a second one is actively acquired by indicator
// bracket searches along wide-angle rays (secondFlipPoint); the
// indicator (t before t′) flips exactly on B(t, t′) no matter which
// cell edges lie between, so the second point may legitimately be far
// from the first. Only if every angled ray fails does the cut fall
// back to a perpendicular placeholder through the single point.
func (a *LNRAggregator) registerFlip(ctx context.Context, c *lnrCell, other int64, m geom.Point, anchor geom.Point) (cell.Cut, bool, error) {
	c.flipPts[other] = append(c.flipPts[other], m)
	minSep := math.Max(a.params.deltaPrime, anchor.Dist(m)/8)
	if _, _, d := farthestPair(c.flipPts[other]); d < minSep {
		p2, ok, err := a.secondFlipPoint(ctx, c, other, anchor, m)
		if err != nil {
			return cell.Cut{}, false, err
		}
		if ok {
			c.flipPts[other] = append(c.flipPts[other], p2)
		}
	}
	pa, pb, bestD := farthestPair(c.flipPts[other])
	if bestD <= a.params.deltaPrime {
		// No second point could be confirmed on B(t, t′); rather than
		// cut with a guessed line (which could silently slice the true
		// cell), report failure — the vertex loop keeps the region
		// conservatively large there and may succeed from another
		// direction later.
		return cell.Cut{}, false, nil
	}
	line := geom.LineThrough(pa, pb)
	// Orient: the anchor (closer to t) must lie on the negative side.
	if line.Eval(c.c1) > 0 {
		line = line.Flip()
	}
	return cell.Cut{Line: line, Key: other}, true, nil
}

// farthestPair returns the two points of pts with maximum separation.
func farthestPair(pts []geom.Point) (geom.Point, geom.Point, float64) {
	var pa, pb geom.Point
	best := 0.0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d > best {
				best = d
				pa, pb = pts[i], pts[j]
			}
		}
	}
	return pa, pb, best
}

// secondFlipPoint finds another point on B(t, t′) by bracket-searching
// the (t, t′) order indicator along rays rotated away from the first
// crossing. The far endpoint must provably order t′ before t; rays
// where neither tuple is visible are skipped (shortened once before
// giving up), preventing brackets from landing on mere visibility
// boundaries.
func (a *LNRAggregator) secondFlipPoint(ctx context.Context, c *lnrCell, other int64, anchor, m geom.Point) (geom.Point, bool, error) {
	dir := m.Sub(anchor)
	r := dir.Norm()
	if r < geom.Eps {
		return geom.Point{}, false, nil
	}
	pred := a.orderPred(ctx, c, other)
	// Strategy 1: ring search around the first flip point. Probe a
	// circle of radius s centred on m (which lies on B(t, t′)); the
	// bisector crosses the circle at two points, so some adjacent pair
	// of ring probes shows opposite (t, t′) orders with both tuples
	// visible, and a bracket along that chord lands a second bisector
	// point at separation ≈ s regardless of the bisector's orientation.
	for _, frac := range []float64{0.5, 0.25, 1.0} {
		radius := frac * r
		const ring = 12
		type probePt struct {
			p    geom.Point
			ord  int
			both bool
		}
		pts := make([]probePt, 0, ring)
		for i := 0; i < ring; i++ {
			ang := 2 * math.Pi * float64(i) / ring
			p := m.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(radius))
			if !a.bound.Contains(p) {
				continue
			}
			recs, err := a.prober.probe(ctx, p)
			if err != nil {
				return geom.Point{}, false, err
			}
			a.recordCoApp(c, recs)
			pts = append(pts, probePt{
				p:    p,
				ord:  relOrder(recs, c.tID, other),
				both: rankIn(recs, c.tID) >= 0 && rankIn(recs, other) >= 0,
			})
		}
		for i := 0; i < len(pts); i++ {
			pi, pj := pts[i], pts[(i+1)%len(pts)]
			// Only the order flip matters here; both-visible is enforced
			// on the final bracket, where the co-visibility lens around
			// the bisector applies.
			if pi.ord*pj.ord != -1 {
				continue
			}
			pos, neg := pi.p, pj.p
			if pi.ord == -1 {
				pos, neg = pj.p, pi.p
			}
			c3, c4, err := predicateSearch(pos, neg, a.params.deltaCoarse, pred)
			if err != nil {
				return geom.Point{}, false, err
			}
			valid, err := a.validIndicatorBracket(ctx, c, other, c3, c4)
			if err != nil {
				return geom.Point{}, false, err
			}
			if !valid {
				continue
			}
			p2 := c3.Mid(c4)
			if p2.Dist(m) > a.params.deltaPrime {
				return p2, true, nil
			}
		}
	}
	// Strategy 2: wide-angle rays from the anchor.
	dirU := dir.Unit()
	_ = dirU
	for _, ang := range []float64{+0.5, -0.5, +0.9, -0.9, +0.25, -0.25} {
		dir2 := dirU.Rotate(ang)
		for _, scale := range []float64{1.5, 1.0} {
			far := anchor.Add(dir2.Scale(scale * r))
			if !a.bound.Contains(far) {
				exit, ok := geom.RayRectExit(anchor, dir2, a.bound)
				if !ok {
					break
				}
				far = exit
				if far.Dist(anchor) > scale*r {
					far = anchor.Add(dir2.Scale(scale * r))
				}
			}
			recs, err := a.prober.probe(ctx, far)
			if err != nil {
				return geom.Point{}, false, err
			}
			a.recordCoApp(c, recs)
			switch relOrder(recs, c.tID, other) {
			case +1:
				// Still on the t side: the bisector is farther out
				// along this ray than we reached; try the next angle.
				continue
			case 0:
				// Neither visible: shorten the ray and retry.
				continue
			}
			c3, c4, err := predicateSearch(anchor, far, a.params.deltaCoarse, pred)
			if err != nil {
				return geom.Point{}, false, err
			}
			valid, err := a.validIndicatorBracket(ctx, c, other, c3, c4)
			if err != nil {
				return geom.Point{}, false, err
			}
			if !valid {
				continue
			}
			p2 := c3.Mid(c4)
			if p2.Dist(m) > a.params.deltaPrime {
				return p2, true, nil
			}
		}
	}
	return geom.Point{}, false, nil
}

// buildCell infers the top-h Voronoi cell of tuple t from rank
// information alone. c1 must be a location where t ranks within the
// top h. The returned complex approximates V_h(t) with edge precision
// EdgeEps.
func (a *LNRAggregator) buildCell(ctx context.Context, tID int64, h int, c1 geom.Point) (*cell.Complex, *lnrCell, error) {
	a.stats.Cells++
	c := &lnrCell{
		tID:     tID,
		h:       h,
		c1:      c1,
		region:  cell.NewFromRect(a.bound, h),
		coApp:   make(map[int64]bool),
		flipPts: make(map[int64][]geom.Point),
		refines: make(map[int64]int),
	}
	// Initial four axis-aligned edge searches (Algorithm 6 line 3–5).
	for _, dir := range []geom.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
		cut, found, err := a.findEdgeAlong(ctx, c, dir)
		if err != nil {
			return nil, nil, err
		}
		if found && !c.region.HasCut(cut.Key) {
			c.region.AddCut(cut)
		}
	}
	confirmed := make(map[vkey]bool)
	for round := 0; round < a.opts.MaxRoundsPerCell; round++ {
		changed, err := a.vertexRound(ctx, c, confirmed)
		if err != nil {
			return nil, nil, err
		}
		if h > 1 {
			repaired, err := a.repairConcavity(ctx, c)
			if err != nil {
				return nil, nil, err
			}
			changed = changed || repaired
		}
		if !changed {
			return c.region, c, nil
		}
		if c.region.NumCuts() >= a.opts.MaxCutsPerCell {
			break
		}
	}
	a.stats.GuardTrips++
	return c.region, c, nil
}

// vertexRound runs one pass of Theorem-1 vertex confirmation, probing
// unconfirmed vertices and searching for the missing edge behind every
// failing vertex.
func (a *LNRAggregator) vertexRound(ctx context.Context, c *lnrCell, confirmed map[vkey]bool) (bool, error) {
	changed := false
	for _, v := range c.region.Vertices() {
		key := a.vkeyOf(v)
		if confirmed[key] {
			continue
		}
		a.stats.VertexProbes++
		in, err := a.member(ctx, c, v)
		if err != nil {
			return false, err
		}
		if in {
			confirmed[key] = true
			continue
		}
		// v lies outside the true cell: discover the edge between.
		if v.Dist(c.c1) < a.params.deltaCoarse {
			confirmed[key] = true
			continue
		}
		c3, c4, other, ok, err := a.validatedMemberBracket(ctx, c, c.c1, v)
		if err != nil {
			return false, err
		}
		if !ok || other == c.tID {
			confirmed[key] = true
			continue
		}
		cut, cutOK, err := a.registerFlip(ctx, c, other, c3.Mid(c4), c.c1)
		if err != nil {
			return false, err
		}
		if !cutOK {
			continue // keep the vertex unconfirmed; retry next round
		}
		if !c.region.HasCut(cut.Key) {
			c.region.AddCut(cut)
			changed = true
		} else if c.refines[cut.Key] < 6 {
			// The edge was known but its line was off enough to leave
			// this vertex outside (a placeholder or an early two-point
			// estimate): replace with the refined line.
			c.refines[cut.Key]++
			c.region.ReplaceCut(cut)
			changed = true
		} else {
			confirmed[key] = true // accept ε-level boundary imprecision
		}
	}
	return changed, nil
}

// repairConcavity implements the §4.2 extension: for every tuple t′
// that co-appeared with t but has no registered bisector, look for a
// pair of probed region vertices whose (t, t′) order differs; the
// bisector B(t, t′) then crosses the segment between them and a
// bracket search pins it down, potentially restoring a missed inward
// vertex of the concave top-k cell.
func (a *LNRAggregator) repairConcavity(ctx context.Context, c *lnrCell) (bool, error) {
	verts := c.region.Vertices()
	if len(verts) < 2 {
		return false, nil
	}
	// Classify each vertex by probing (cached — vertices were probed
	// during the vertex round).
	changed := false
	for other := range c.coApp {
		if c.region.HasCut(other) {
			continue
		}
		var pos, neg *geom.Point
		for i := range verts {
			recs, err := a.prober.probe(ctx, verts[i])
			if err != nil {
				return false, err
			}
			switch relOrder(recs, c.tID, other) {
			case +1:
				pos = &verts[i]
			case -1:
				neg = &verts[i]
			}
			if pos != nil && neg != nil {
				break
			}
		}
		if pos == nil || neg == nil {
			continue // no witnessed flip: bisector cannot cut the region yet
		}
		a.stats.BisectorRepair++
		pred := a.orderPred(ctx, c, other)
		c3, c4, err := predicateSearch(*pos, *neg, a.params.deltaCoarse, pred)
		if err != nil {
			return false, err
		}
		valid, err := a.validIndicatorBracket(ctx, c, other, c3, c4)
		if err != nil {
			return false, err
		}
		if !valid {
			continue // visibility boundary, not B(t, t′)
		}
		cut, cutOK, err := a.registerFlip(ctx, c, other, c3.Mid(c4), *pos)
		if err != nil {
			return false, err
		}
		if !cutOK {
			continue
		}
		c.region.AddCut(cut)
		changed = true
	}
	return changed, nil
}

func (a *LNRAggregator) vkeyOf(p geom.Point) vkey {
	return vkey{int64(p.X / a.vtol), int64(p.Y / a.vtol)}
}

// massOfRegion integrates the sampling density over the region.
func (a *LNRAggregator) massOfRegion(region *cell.Complex) float64 {
	var mass float64
	for _, f := range region.Faces() {
		mass += a.smp.IntegratePolygon(f.Poly)
	}
	return mass
}

// Step draws one random query location and produces one per-sample
// estimate per aggregate (Algorithm 6 body). Only the top-ranked
// returned tuple is exploited when H = 1; with H > 1, each tuple at
// rank ≤ H is weighted by its top-H cell.
func (a *LNRAggregator) Step(ctx context.Context, aggs []Aggregate) ([]float64, error) {
	q := a.smp.Sample(a.rng)
	recs, err := a.prober.probe(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(aggs))
	if len(recs) == 0 {
		a.stats.EmptyAnswers++
		a.stats.Samples++
		return out, nil
	}
	h := a.opts.H
	needLoc := false
	for _, g := range aggs {
		if g.NeedsLocation {
			needLoc = true
		}
	}
	limit := h
	if limit > len(recs) {
		limit = len(recs)
	}
	for i := 0; i < limit; i++ {
		t := recs[i]
		region, cctx, err := a.buildCell(ctx, t.ID, h, q)
		if err != nil {
			return nil, err
		}
		p := a.massOfRegion(region)
		if p <= 0 {
			continue
		}
		rec := recordOfLNR(t)
		if needLoc {
			if loc, err := a.localizeWith(ctx, cctx); err == nil {
				rec.HasLoc = true
				rec.Loc = loc
			}
		}
		for j := range aggs {
			out[j] += aggs[j].Value(rec) / p
		}
	}
	a.stats.Samples++
	return out, nil
}

// Service returns the Oracle this aggregator queries, implementing
// Estimator.
func (a *LNRAggregator) Service() Oracle { return a.svc }

// Fork returns an independent LNR aggregator of the same
// configuration over the same service for the Driver's parallel mode.
// The fork seed mixes a draw from the receiver's generator with the
// caller-supplied index (see LRAggregator.Fork); forks start with an
// empty probe cache.
func (a *LNRAggregator) Fork(seed int64) Estimator {
	opts := a.opts
	opts.Seed = a.rng.Int63() ^ (seed << 32)
	return NewLNRAggregator(a.svc, opts)
}

// Run draws samples through the shared Driver until one of the
// configured bounds triggers (see RunOption); with no options it runs
// until the service budget is exhausted or ctx is canceled.
func (a *LNRAggregator) Run(ctx context.Context, aggs []Aggregate, opts ...RunOption) ([]Result, error) {
	return Run(ctx, a, aggs, opts...)
}

// RunBudget preserves the v1 positional run signature.
//
// Deprecated: use Run with WithMaxSamples / WithMaxQueries.
func (a *LNRAggregator) RunBudget(aggs []Aggregate, maxSamples int, maxQueries int64) ([]Result, error) {
	return a.Run(context.Background(), aggs, WithMaxSamples(maxSamples), WithMaxQueries(maxQueries))
}
