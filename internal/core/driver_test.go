package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// TestAccumulatorMerge checks that the pairwise Chan et al. merge
// agrees with folding every value into one accumulator sequentially.
func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 501)
	for i := range vals {
		vals[i] = rng.NormFloat64()*3 + 10
	}
	var whole Accumulator
	for _, v := range vals {
		whole.Add(v)
	}
	for _, split := range []int{0, 1, 137, 500, 501} {
		var a, b Accumulator
		for _, v := range vals[:split] {
			a.Add(v)
		}
		for _, v := range vals[split:] {
			b.Add(v)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: n=%d want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
			t.Errorf("split %d: mean %v want %v", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
			t.Errorf("split %d: var %v want %v", split, a.Variance(), whole.Variance())
		}
	}
}

// TestDriverCancellationPartialResults cancels the run mid-flight and
// expects the Results of the samples completed so far, not an error.
func TestDriverCancellationPartialResults(t *testing.T) {
	svc, db := smallService(t, 200, 5, 9)
	agg := NewLRAggregator(svc, DefaultLROptions(11))
	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 8
	res, err := agg.Run(ctx, []Aggregate{Count()},
		WithMaxSamples(400),
		WithProgress(func(pts []TracePoint) {
			if pts[0].Samples >= stopAfter {
				cancel()
			}
		}))
	if err != nil {
		t.Fatalf("canceled run should return partial results, got error: %v", err)
	}
	if res[0].Samples < stopAfter || res[0].Samples >= 400 {
		t.Fatalf("samples = %d, want in [%d, 400)", res[0].Samples, stopAfter)
	}
	if res[0].Queries == 0 || len(res[0].Trace) != res[0].Samples {
		t.Errorf("partial result accounting: %+v", res[0])
	}
	// The partial estimate is still a sane (unbiased) estimate.
	if res[0].Estimate <= 0 || res[0].Estimate > 20*float64(db.Len()) {
		t.Errorf("partial estimate out of range: %v", res[0].Estimate)
	}
}

// TestDriverCanceledBeforeStart: with zero completed samples the run
// has nothing to report and surfaces the context error.
func TestDriverCanceledBeforeStart(t *testing.T) {
	svc, _ := smallService(t, 50, 5, 10)
	agg := NewLRAggregator(svc, DefaultLROptions(12))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := agg.Run(ctx, []Aggregate{Count()}, WithMaxSamples(5)); err == nil {
		t.Fatal("pre-canceled run returned no error")
	}
}

// TestDriverParallelSharedService runs eight workers against one
// shared Service (exercised under -race by `make test`) and checks
// the merged accounting and estimate quality.
func TestDriverParallelSharedService(t *testing.T) {
	svc, db := smallService(t, 300, 5, 21)
	agg := NewLRAggregator(svc, DefaultLROptions(31))
	const samples = 200
	res, err := agg.Run(context.Background(), []Aggregate{Count(), SumAttr("weight")},
		WithMaxSamples(samples), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != samples {
		t.Fatalf("samples = %d, want %d", res[0].Samples, samples)
	}
	if len(res[0].Trace) != samples {
		t.Errorf("trace length = %d, want %d", len(res[0].Trace), samples)
	}
	if res[0].Queries != svc.QueryCount() {
		t.Errorf("queries = %d, service counted %d", res[0].Queries, svc.QueryCount())
	}
	checkZ(t, "parallel COUNT", res[0], float64(db.Len()), 5)
}

// TestDriverParallelLNR exercises the fork path of the rank-only
// estimator under concurrency.
func TestDriverParallelLNR(t *testing.T) {
	svc, db := smallService(t, 150, 5, 33)
	agg := NewLNRAggregator(svc, LNROptions{Seed: 7})
	// Which fork draws which sample depends on scheduling, so the run
	// is not seed-deterministic; 48 samples of the heavy-tailed LNR
	// weight distribution flaked past the z-bound every few dozen
	// runs. 128 samples keeps the test fast while calming the tail.
	res, err := agg.Run(context.Background(), []Aggregate{Count()},
		WithMaxSamples(128), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 128 {
		t.Fatalf("samples = %d, want 128", res[0].Samples)
	}
	checkZ(t, "parallel LNR COUNT", res[0], float64(db.Len()), 6)
}

// TestDriverTargetCI stops once the confidence target is met, well
// before the sample cap.
func TestDriverTargetCI(t *testing.T) {
	svc, _ := smallService(t, 200, 5, 14)
	agg := NewLRAggregator(svc, DefaultLROptions(15))
	res, err := agg.Run(context.Background(), []Aggregate{Count()},
		WithMaxSamples(100000), WithTargetCI(0.5))
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Samples < ciMinSamples {
		t.Fatalf("stopped before the CI minimum: %d samples", r.Samples)
	}
	if r.Samples >= 100000 {
		t.Fatal("CI target never triggered")
	}
	if r.CI95 > 0.5*math.Abs(r.Estimate) {
		t.Errorf("stopped with CI %v above target (estimate %v)", r.CI95, r.Estimate)
	}
}

// TestDriverProgressStreaming checks the per-sample callback cadence
// and monotonic sample numbering in serial mode.
func TestDriverProgressStreaming(t *testing.T) {
	svc, _ := smallService(t, 100, 5, 16)
	agg := NewNNOBaseline(svc, NNOOptions{Seed: 3})
	var mu sync.Mutex
	var seen []int
	res, err := agg.Run(context.Background(), []Aggregate{Count()},
		WithMaxSamples(25),
		WithProgress(func(pts []TracePoint) {
			mu.Lock()
			seen = append(seen, pts[0].Samples)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res[0].Samples {
		t.Fatalf("progress calls = %d, samples = %d", len(seen), res[0].Samples)
	}
	for i, s := range seen {
		if s != i+1 {
			t.Fatalf("progress sample numbering broken at %d: %v", i, s)
		}
	}
}

// TestRunBudgetShim checks the deprecated v1-signature shim matches
// the v2 option semantics.
func TestRunBudgetShim(t *testing.T) {
	svc, db := smallService(t, 100, 5, 17)
	agg := NewLRAggregator(svc, DefaultLROptions(18))
	res, err := agg.RunBudget([]Aggregate{Count()}, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 60 {
		t.Fatalf("shim samples = %d, want 60", res[0].Samples)
	}
	checkZ(t, "shim COUNT", res[0], float64(db.Len()), 5)
}

// slowOracle injects a fixed per-query latency in front of an Oracle,
// modelling a remote LBS; it honors ctx while sleeping, so cancelled
// runs abort the in-flight query immediately.
type slowOracle struct {
	Oracle
	delay time.Duration
}

func (o slowOracle) wait(ctx context.Context) error {
	timer := time.NewTimer(o.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (o slowOracle) QueryLR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LRRecord, error) {
	if err := o.wait(ctx); err != nil {
		return nil, err
	}
	return o.Oracle.QueryLR(ctx, q, f)
}

func (o slowOracle) QueryLNR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LNRRecord, error) {
	if err := o.wait(ctx); err != nil {
		return nil, err
	}
	return o.Oracle.QueryLNR(ctx, q, f)
}

// timeoutOracle fails every query after the first few with a
// DeadlineExceeded-flavored transport error (as net/http client
// timeouts do) while the run's own context stays live.
type timeoutOracle struct {
	Oracle
	failAfter int
	n         int
}

func (o *timeoutOracle) QueryLR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LRRecord, error) {
	o.n++
	if o.n > o.failAfter {
		return nil, context.DeadlineExceeded
	}
	return o.Oracle.QueryLR(ctx, q, f)
}

// TestDriverTransportTimeoutIsFatal: a per-request timeout from the
// transport must surface as a run error — only the run context's own
// cancellation ends a run gracefully with partial results.
func TestDriverTransportTimeoutIsFatal(t *testing.T) {
	svc, _ := smallService(t, 100, 5, 23)
	agg := NewLRAggregator(&timeoutOracle{Oracle: svc, failAfter: 50}, DefaultLROptions(24))
	_, err := agg.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(100))
	if err == nil {
		t.Fatal("transport timeout was swallowed as a graceful stop")
	}
}

// TestDriverCancelInterruptsLatentQuery: cancellation must cut a run
// blocked inside a slow query, not wait for the sample to finish.
func TestDriverCancelInterruptsLatentQuery(t *testing.T) {
	svc, _ := smallService(t, 100, 5, 19)
	agg := NewLRAggregator(slowOracle{Oracle: svc, delay: 50 * time.Millisecond}, DefaultLROptions(20))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		_, _ = agg.Run(ctx, []Aggregate{Count()}, WithMaxSamples(1000))
	}()
	time.Sleep(120 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("run did not stop promptly after cancellation")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancellation latency too high")
	}
}
