package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/lbs"
)

// CountBiasBound evaluates the Theorem-2 upper bound on the COUNT(*)
// estimation bias of LNR-LBS-AGG:
//
//	|E(θ̂ − θ)| ≤ Σ_t (2·d(t)·ε − ε²) / (d(t) − ε)²,
//
// where d(t) is the distance from t to its nearest neighbor and ε is
// the maximum edge error of the binary-search process. Tuples with
// d(t) ≤ ε contribute an unbounded term; they are counted in
// unbounded and excluded from the sum (shrinking ε below min d(t)
// removes them, the knob the paper turns to make the bias arbitrarily
// small).
func CountBiasBound(nearest []float64, eps float64) (bound float64, unbounded int) {
	for _, d := range nearest {
		if d <= eps {
			unbounded++
			continue
		}
		bound += (2*d*eps - eps*eps) / ((d - eps) * (d - eps))
	}
	return bound, unbounded
}

// NearestNeighborDists computes d(t) for every tuple of a database —
// the ground-truth ingredient of the Theorem-2 bound (evaluation use
// only: a real client cannot compute it without the hidden data).
func NearestNeighborDists(db *lbs.Database) []float64 {
	pts := make([]geom.Point, db.Len())
	for i := range pts {
		pts[i] = db.Tuple(i).Loc
	}
	tree := kdtree.Build(pts)
	out := make([]float64, len(pts))
	for i, p := range pts {
		nb := tree.KNN(p, 2, nil)
		if len(nb) < 2 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = nb[1].Dist
	}
	return out
}

// VolumeRatioBound evaluates the Corollary-2 sandwich on the inferred
// cell volume: ((d−ε)/d)² ≤ |V′|/|V| ≤ 1, returning the lower ratio
// (0 when d ≤ ε).
func VolumeRatioBound(d, eps float64) float64 {
	if d <= eps {
		return 0
	}
	r := (d - eps) / d
	return r * r
}
