package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// This file is the declarative aggregate API (API v3): JSON-serializable
// predicate and aggregate specs that compile once into the closure form
// (Aggregate) the estimators execute. Closures cannot cross the network;
// specs can, so estimation requests become wire-expressible — the basis
// of the /v1/estimate job endpoint of internal/httpapi.

// Predicate operators of the PredSpec AST.
const (
	OpAttrCmp = "attr_cmp" // numeric attribute comparison
	OpTagEq   = "tag_eq"   // categorical attribute equality
	OpInRect  = "in_rect"  // tuple location inside a rectangle
	OpAnd     = "and"      // conjunction of Args
	OpOr      = "or"       // disjunction of Args
	OpNot     = "not"      // negation of Args[0]
)

// Comparison operators of OpAttrCmp.
const (
	CmpLT = "lt"
	CmpLE = "le"
	CmpGT = "gt"
	CmpGE = "ge"
	CmpEQ = "eq"
	CmpNE = "ne"
)

// RectSpec is the wire form of an axis-aligned rectangle.
type RectSpec struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Rect converts to the geometry type.
func (r RectSpec) Rect() geom.Rect {
	return geom.NewRect(geom.Pt(r.MinX, r.MinY), geom.Pt(r.MaxX, r.MaxY))
}

// RectSpecOf converts a geometry rectangle to its wire form.
func RectSpecOf(r geom.Rect) RectSpec {
	return RectSpec{MinX: r.Min.X, MinY: r.Min.Y, MaxX: r.Max.X, MaxY: r.Max.Y}
}

// PredSpec is one node of the declarative predicate AST: a selection
// condition over returned tuples that serializes to JSON and compiles
// to the closure form the estimators evaluate per record. Op selects
// the node kind; the other fields are per-op operands:
//
//	{"op":"attr_cmp","attr":"rating","cmp":"ge","value":4}
//	{"op":"tag_eq","tag":"gender","equals":"f"}
//	{"op":"in_rect","rect":{"min_x":0,"min_y":0,"max_x":100,"max_y":100}}
//	{"op":"and","args":[...]}   {"op":"or","args":[...]}   {"op":"not","args":[one]}
//
// Build nodes with the AttrCmp/TagEq/InRect/And/Or/Not constructors;
// Validate rejects malformed trees (unknown op, empty conjunction, a
// negation without exactly one argument, ...).
type PredSpec struct {
	Op string `json:"op"`
	// OpAttrCmp operands.
	Attr  string  `json:"attr,omitempty"`
	Cmp   string  `json:"cmp,omitempty"`
	Value float64 `json:"value,omitempty"`
	// OpTagEq operands.
	Tag    string `json:"tag,omitempty"`
	Equals string `json:"equals,omitempty"`
	// OpInRect operand.
	Rect *RectSpec `json:"rect,omitempty"`
	// OpAnd/OpOr children; OpNot's single child.
	Args []PredSpec `json:"args,omitempty"`
}

// AttrCmp builds a numeric comparison predicate: Attr(attr) cmp value.
// A tuple without the attribute compares as 0 (the Record.Attr
// convention).
func AttrCmp(attr, cmp string, value float64) PredSpec {
	return PredSpec{Op: OpAttrCmp, Attr: attr, Cmp: cmp, Value: value}
}

// TagEq builds a categorical equality predicate: Tag(tag) == value.
func TagEq(tag, value string) PredSpec {
	return PredSpec{Op: OpTagEq, Tag: tag, Equals: value}
}

// InRect builds a location predicate: the tuple lies inside rect. Over
// LNR interfaces it triggers position inference (§4.3), like
// CountInRect does.
func InRect(rect geom.Rect) PredSpec {
	rs := RectSpecOf(rect)
	return PredSpec{Op: OpInRect, Rect: &rs}
}

// And builds the conjunction of args (at least one required).
func And(args ...PredSpec) PredSpec { return PredSpec{Op: OpAnd, Args: args} }

// Or builds the disjunction of args (at least one required).
func Or(args ...PredSpec) PredSpec { return PredSpec{Op: OpOr, Args: args} }

// Not negates p.
func Not(p PredSpec) PredSpec { return PredSpec{Op: OpNot, Args: []PredSpec{p}} }

// Validate checks the node and its subtree, returning a descriptive
// error for the first malformed node found.
func (p *PredSpec) Validate() error {
	switch p.Op {
	case OpAttrCmp:
		if p.Attr == "" {
			return fmt.Errorf("core: attr_cmp needs a non-empty attr")
		}
		switch p.Cmp {
		case CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ, CmpNE:
		default:
			return fmt.Errorf("core: attr_cmp has unknown cmp %q (want lt|le|gt|ge|eq|ne)", p.Cmp)
		}
		if len(p.Args) != 0 {
			return fmt.Errorf("core: attr_cmp takes no args")
		}
	case OpTagEq:
		if p.Tag == "" {
			return fmt.Errorf("core: tag_eq needs a non-empty tag")
		}
		if len(p.Args) != 0 {
			return fmt.Errorf("core: tag_eq takes no args")
		}
	case OpInRect:
		if p.Rect == nil {
			return fmt.Errorf("core: in_rect needs a rect")
		}
		if p.Rect.MaxX < p.Rect.MinX || p.Rect.MaxY < p.Rect.MinY {
			return fmt.Errorf("core: in_rect rect has max < min")
		}
		if len(p.Args) != 0 {
			return fmt.Errorf("core: in_rect takes no args")
		}
	case OpAnd, OpOr:
		if len(p.Args) == 0 {
			return fmt.Errorf("core: %s needs at least one arg", p.Op)
		}
		for i := range p.Args {
			if err := p.Args[i].Validate(); err != nil {
				return err
			}
		}
	case OpNot:
		if len(p.Args) != 1 {
			return fmt.Errorf("core: not takes exactly one arg, got %d", len(p.Args))
		}
		if err := p.Args[0].Validate(); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("core: predicate is missing an op")
	default:
		return fmt.Errorf("core: unknown predicate op %q", p.Op)
	}
	return nil
}

// needsLocation reports whether evaluating the subtree reads the tuple
// location (any in_rect node).
func (p *PredSpec) needsLocation() bool {
	if p.Op == OpInRect {
		return true
	}
	for i := range p.Args {
		if p.Args[i].needsLocation() {
			return true
		}
	}
	return false
}

// Compile validates the tree and returns the predicate in closure form.
// The compiled closure contains no spec machinery: evaluating it costs
// the same as a hand-written CountWhere condition.
func (p *PredSpec) Compile() (func(Record) bool, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.compile(), nil
}

// compile builds the closure tree for a validated node.
func (p *PredSpec) compile() func(Record) bool {
	switch p.Op {
	case OpAttrCmp:
		attr, v := p.Attr, p.Value
		switch p.Cmp {
		case CmpLT:
			return func(r Record) bool { return r.Attr(attr) < v }
		case CmpLE:
			return func(r Record) bool { return r.Attr(attr) <= v }
		case CmpGT:
			return func(r Record) bool { return r.Attr(attr) > v }
		case CmpGE:
			return func(r Record) bool { return r.Attr(attr) >= v }
		case CmpEQ:
			return func(r Record) bool { return r.Attr(attr) == v }
		default: // CmpNE
			return func(r Record) bool { return r.Attr(attr) != v }
		}
	case OpTagEq:
		tag, v := p.Tag, p.Equals
		return func(r Record) bool { return r.Tag(tag) == v }
	case OpInRect:
		rect := p.Rect.Rect()
		return func(r Record) bool { return r.HasLoc && rect.Contains(r.Loc) }
	case OpAnd:
		kids := compileArgs(p.Args)
		return func(r Record) bool {
			for _, k := range kids {
				if !k(r) {
					return false
				}
			}
			return true
		}
	case OpOr:
		kids := compileArgs(p.Args)
		return func(r Record) bool {
			for _, k := range kids {
				if k(r) {
					return true
				}
			}
			return false
		}
	default: // OpNot
		kid := p.Args[0].compile()
		return func(r Record) bool { return !kid(r) }
	}
}

func compileArgs(args []PredSpec) []func(Record) bool {
	kids := make([]func(Record) bool, len(args))
	for i := range args {
		kids[i] = args[i].compile()
	}
	return kids
}

// String renders the predicate for aggregate labels: attr≥4,
// gender=f, in-rect, ¬(...), (a ∧ b), (a ∨ b).
func (p PredSpec) String() string {
	switch p.Op {
	case OpAttrCmp:
		sym := map[string]string{
			CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=", CmpEQ: "=", CmpNE: "!=",
		}[p.Cmp]
		return p.Attr + sym + strconv.FormatFloat(p.Value, 'g', -1, 64)
	case OpTagEq:
		return p.Tag + "=" + p.Equals
	case OpInRect:
		return "in-rect"
	case OpAnd, OpOr:
		sep := " and "
		if p.Op == OpOr {
			sep = " or "
		}
		parts := make([]string, len(p.Args))
		for i := range p.Args {
			parts[i] = p.Args[i].String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	case OpNot:
		if len(p.Args) == 1 {
			return "not " + p.Args[0].String()
		}
		return "not ?"
	default:
		return "?"
	}
}

// Aggregate kinds of AggSpec.
const (
	AggCount = "count" // COUNT(*) / COUNT(where)
	AggSum   = "sum"   // SUM(attr) [where]
	AggAvg   = "avg"   // AVG(attr) [where] = SUM/COUNT via RatioOf
)

// AggSpec is a declarative, JSON-serializable aggregate: what
// CountWhere-style closure constructors express in Go, expressible
// over the wire. Kind selects COUNT, SUM or AVG; SUM and AVG name the
// attribute; Where optionally restricts the aggregate with a PredSpec.
//
//	{"kind":"count"}
//	{"kind":"sum","attr":"enrollment"}
//	{"kind":"avg","attr":"rating","where":{"op":"tag_eq","tag":"open_sunday","equals":"yes"}}
//
// COUNT and SUM compile to one Aggregate each; AVG expands to a
// SUM/COUNT pair combined by RatioOf when the run finishes (the §1.3
// scheme) — use CompilePlan to compile a request's spec list.
type AggSpec struct {
	Kind  string    `json:"kind"`
	Attr  string    `json:"attr,omitempty"`
	Where *PredSpec `json:"where,omitempty"`
	// Label overrides the derived result name.
	Label string `json:"label,omitempty"`
}

// CountSpec builds COUNT(*).
func CountSpec() AggSpec { return AggSpec{Kind: AggCount} }

// SumSpec builds SUM(attr).
func SumSpec(attr string) AggSpec { return AggSpec{Kind: AggSum, Attr: attr} }

// AvgSpec builds AVG(attr).
func AvgSpec(attr string) AggSpec { return AggSpec{Kind: AggAvg, Attr: attr} }

// WithWhere returns a copy of the spec restricted by p.
func (s AggSpec) WithWhere(p PredSpec) AggSpec {
	s.Where = &p
	return s
}

// WithLabel returns a copy of the spec with an explicit result name.
func (s AggSpec) WithLabel(label string) AggSpec {
	s.Label = label
	return s
}

// Validate rejects malformed aggregate specs.
func (s *AggSpec) Validate() error {
	switch s.Kind {
	case AggCount:
		if s.Attr != "" {
			return fmt.Errorf("core: count takes no attr (got %q)", s.Attr)
		}
	case AggSum, AggAvg:
		if s.Attr == "" {
			return fmt.Errorf("core: %s needs an attr", s.Kind)
		}
	case "":
		return fmt.Errorf("core: aggregate is missing a kind")
	default:
		return fmt.Errorf("core: unknown aggregate kind %q", s.Kind)
	}
	if s.Where != nil {
		return s.Where.Validate()
	}
	return nil
}

// Name returns the result label the spec reports under: Label when
// set, a derived "KIND(attr | pred)" form otherwise.
func (s AggSpec) Name() string { return s.name() }

// name derives the result label.
func (s *AggSpec) name() string {
	if s.Label != "" {
		return s.Label
	}
	switch s.Kind {
	case AggCount:
		if s.Where != nil {
			return "COUNT(" + s.Where.String() + ")"
		}
		return "COUNT(*)"
	case AggSum:
		if s.Where != nil {
			return "SUM(" + s.Attr + " | " + s.Where.String() + ")"
		}
		return "SUM(" + s.Attr + ")"
	default: // AggAvg
		if s.Where != nil {
			return "AVG(" + s.Attr + " | " + s.Where.String() + ")"
		}
		return "AVG(" + s.Attr + ")"
	}
}

// compileValue builds the per-record value closure for a validated
// COUNT or SUM spec body (selection folded in, §5.1 post-processing).
func compileValue(kind, attr string, cond func(Record) bool) func(Record) float64 {
	switch {
	case kind == AggCount && cond == nil:
		return func(Record) float64 { return 1 }
	case kind == AggCount:
		return func(r Record) float64 {
			if cond(r) {
				return 1
			}
			return 0
		}
	case cond == nil:
		return func(r Record) float64 { return r.Attr(attr) }
	default:
		return func(r Record) float64 {
			if cond(r) {
				return r.Attr(attr)
			}
			return 0
		}
	}
}

// Compile turns a COUNT or SUM spec into the closure-form Aggregate the
// estimators execute. AVG specs do not compile to a single Aggregate —
// use CompilePlan, which expands them into a SUM/COUNT pair.
func (s *AggSpec) Compile() (Aggregate, error) {
	if err := s.Validate(); err != nil {
		return Aggregate{}, err
	}
	if s.Kind == AggAvg {
		return Aggregate{}, fmt.Errorf("core: avg expands to a SUM/COUNT pair; compile it with CompilePlan")
	}
	var cond func(Record) bool
	needsLoc := false
	if s.Where != nil {
		cond = s.Where.compile()
		needsLoc = s.Where.needsLocation()
	}
	return Aggregate{
		Name:          s.name(),
		Value:         compileValue(s.Kind, s.Attr, cond),
		NeedsLocation: needsLoc,
	}, nil
}

// AggPlan is a compiled list of aggregate specs: the physical
// Aggregates an estimation run executes, plus the finishing step that
// folds them back into one Result per spec (AVG specs expand to a
// SUM/COUNT pair and finish through RatioOf).
type AggPlan struct {
	// Specs are the validated source specs, in request order.
	Specs []AggSpec
	// Aggs are the physical aggregates to run (len ≥ len(Specs)).
	Aggs []Aggregate
	// entries[i] locates spec i's physical results.
	entries []planEntry
}

// planEntry maps one spec to its physical aggregate indices.
type planEntry struct {
	num int // physical index of the (only, or numerator) aggregate
	den int // physical index of the AVG denominator, or -1
}

// CompilePlan validates and compiles a request's aggregate specs. The
// compiled plan shares one estimation run: AVG numerators and
// denominators are estimated from the same samples, exactly as the
// paper's AVG scheme prescribes.
func CompilePlan(specs []AggSpec) (*AggPlan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no aggregates given")
	}
	plan := &AggPlan{Specs: make([]AggSpec, len(specs))}
	copy(plan.Specs, specs)
	for i := range plan.Specs {
		s := &plan.Specs[i]
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		if s.Kind != AggAvg {
			agg, err := s.Compile()
			if err != nil {
				return nil, fmt.Errorf("aggregate %d: %w", i, err)
			}
			plan.entries = append(plan.entries, planEntry{num: len(plan.Aggs), den: -1})
			plan.Aggs = append(plan.Aggs, agg)
			continue
		}
		// AVG(attr | where) = SUM(attr | where) / COUNT(where).
		sum := AggSpec{Kind: AggSum, Attr: s.Attr, Where: s.Where}
		cnt := AggSpec{Kind: AggCount, Where: s.Where}
		num, err := sum.Compile()
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		den, err := cnt.Compile()
		if err != nil {
			return nil, fmt.Errorf("aggregate %d: %w", i, err)
		}
		plan.entries = append(plan.entries, planEntry{num: len(plan.Aggs), den: len(plan.Aggs) + 1})
		plan.Aggs = append(plan.Aggs, num, den)
	}
	return plan, nil
}

// Finish folds the physical results of the run back into one Result
// per spec: pass-through for COUNT/SUM, RatioOf for AVG (renamed to
// the spec's label). phys must be index-aligned with plan.Aggs, as
// returned by a Run over them.
func (p *AggPlan) Finish(phys []Result) []Result {
	out := make([]Result, len(p.entries))
	for i, e := range p.entries {
		if e.den < 0 {
			out[i] = phys[e.num]
			continue
		}
		r := RatioOf(phys[e.num], phys[e.den])
		r.Name = p.Specs[i].name()
		out[i] = r
	}
	return out
}
