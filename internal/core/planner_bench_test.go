package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// benchService builds a fresh clustered service for one planner bench
// iteration (same shape as smallService, without the testing.T).
func benchService(n, k int, seed int64) *lbs.Service {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 5, UniformFrac: 0.2, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{
			ID:  int64(i + 1),
			Loc: p,
			Attrs: map[string]float64{
				"weight": 1 + rng.Float64()*9,
			},
			Tags: map[string]string{"flag": map[bool]string{true: "yes", false: "no"}[rng.Float64() < 0.4]},
		}
	}
	return lbs.NewService(lbs.NewDatabase(bounds, tuples), lbs.Options{K: k})
}

// Planner benchmark settings: the acceptance workload shape (specs
// sharing 4 selections) run to a fixed confidence target, so the
// queries/agg metric is the cost of equal-quality answers.
const (
	benchPlannerN        = 150
	benchPlannerK        = 3
	benchPlannerSeed     = 21
	benchPlannerTargetCI = 0.30
	benchPlannerMaxSamp  = 2000
)

// BenchmarkPlannerBatch plans and executes batches of 1/4/16
// aggregates as one shared-stream batch, reporting oracle queries per
// aggregate — the paper's cost metric, amortized by the planner's
// predicate dedup, operator fusion and budget allocation.
func BenchmarkPlannerBatch(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("aggs=%d", size), func(b *testing.B) {
			specs := batchSpecs(size)
			ctx := context.Background()
			var queries int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				svc := benchService(benchPlannerN, benchPlannerK, 6)
				b.StartTimer()
				plan, err := PlanBatch(specs, PlanOptions{
					Seed:       benchPlannerSeed,
					TargetCI:   benchPlannerTargetCI,
					MaxSamples: benchPlannerMaxSamp,
				})
				if err != nil {
					b.Fatal(err)
				}
				br, err := plan.Execute(ctx, svc, nil)
				if err != nil {
					b.Fatal(err)
				}
				queries += br.Queries
			}
			b.ReportMetric(float64(queries)/float64(b.N)/float64(size), "queries/agg")
		})
	}
}

// BenchmarkPlannerIndependent answers the same batches one aggregate
// at a time — a fresh single-spec plan, stream and service per spec,
// the pre-planner cost — so the queries/agg ratio against
// BenchmarkPlannerBatch is the measured sharing payoff.
func BenchmarkPlannerIndependent(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("aggs=%d", size), func(b *testing.B) {
			specs := batchSpecs(size)
			ctx := context.Background()
			var queries int64
			for i := 0; i < b.N; i++ {
				for si := range specs {
					b.StopTimer()
					svc := benchService(benchPlannerN, benchPlannerK, 6)
					b.StartTimer()
					plan, err := PlanBatch(specs[si:si+1], PlanOptions{
						Seed:       mixSeed(benchPlannerSeed, si),
						TargetCI:   benchPlannerTargetCI,
						MaxSamples: benchPlannerMaxSamp,
					})
					if err != nil {
						b.Fatal(err)
					}
					br, err := plan.Execute(ctx, svc, nil)
					if err != nil {
						b.Fatal(err)
					}
					queries += br.Queries
				}
			}
			b.ReportMetric(float64(queries)/float64(b.N)/float64(size), "queries/agg")
		})
	}
}
