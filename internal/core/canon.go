package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// This file gives the PredSpec AST a canonical form and a structural
// hash — the foundation the multi-aggregate planner's predicate dedup
// stands on (see planner.go). Two predicates that select the same
// tuples by construction (identical trees up to and/or child order and
// duplicate children) canonicalize to the same tree, serialize to the
// same key, and hash equal; the planner then compiles each distinct
// selection once and shares it across every aggregate that uses it.

// Canon returns the canonical form of the predicate: children of
// and/or nodes are canonicalized recursively, sorted by their
// serialized key and deduplicated, so trees that differ only in
// conjunct/disjunct order (or repeat a conjunct) become identical.
// Leaves are already canonical. Canon never mutates the receiver or
// anything it shares: child slices are rebuilt.
//
// Canonicalization is purely structural — it does not attempt
// semantic equivalences (De Morgan, range merging, contradiction
// elimination), so it can under-merge but never over-merge: the
// canonical form always selects exactly the same tuples as the
// original, and dedup by canonical key is therefore always sound.
func (p PredSpec) Canon() PredSpec {
	switch p.Op {
	case OpAnd, OpOr:
		kids := make([]PredSpec, len(p.Args))
		keys := make([]string, len(p.Args))
		for i := range p.Args {
			kids[i] = p.Args[i].Canon()
			keys[i] = string(kids[i].appendKey(nil))
		}
		sort.Sort(&byKey{kids: kids, keys: keys})
		out := kids[:0]
		for i := range kids {
			if i > 0 && keys[i] == keys[i-1] {
				continue
			}
			out = append(out, kids[i])
		}
		p.Args = out
	default:
		if len(p.Args) > 0 {
			kids := make([]PredSpec, len(p.Args))
			for i := range p.Args {
				kids[i] = p.Args[i].Canon()
			}
			p.Args = kids
		}
	}
	return p
}

// byKey sorts canonical children together with their serialized keys.
type byKey struct {
	kids []PredSpec
	keys []string
}

func (s *byKey) Len() int           { return len(s.kids) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.kids[i], s.kids[j] = s.kids[j], s.kids[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// Hash returns a 64-bit structural hash (FNV-1a) of the predicate's
// canonical form: structurally-equal predicates — including and/or
// trees that differ only in child order — hash equal. Distinct
// predicates are not guaranteed collision-free (it is a 64-bit hash);
// the planner's dedup therefore keys on the full canonical
// serialization and uses Hash only as the compact observable form
// (plan reports, CLI output, tests).
func (p PredSpec) Hash() uint64 {
	c := p.Canon()
	h := fnv.New64a()
	h.Write(c.appendKey(nil))
	return h.Sum64()
}

// canonKey returns the canonical serialization of the predicate — the
// collision-free dedup key. Callers must pass a canonical node (the
// key of a non-canonical node is order-sensitive).
func (p *PredSpec) canonKey() string { return string(p.appendKey(nil)) }

// appendKey serializes the node unambiguously: every field is either
// fixed-width (float bits) or length-prefixed (strings), so no two
// structurally different trees share a serialization.
func (p *PredSpec) appendKey(b []byte) []byte {
	b = appendLenStr(b, p.Op)
	b = append(b, '(')
	switch p.Op {
	case OpAttrCmp:
		b = appendLenStr(b, p.Attr)
		b = appendLenStr(b, p.Cmp)
		b = appendFloatBits(b, p.Value)
	case OpTagEq:
		b = appendLenStr(b, p.Tag)
		b = appendLenStr(b, p.Equals)
	case OpInRect:
		if p.Rect != nil {
			b = appendFloatBits(b, p.Rect.MinX)
			b = appendFloatBits(b, p.Rect.MinY)
			b = appendFloatBits(b, p.Rect.MaxX)
			b = appendFloatBits(b, p.Rect.MaxY)
		}
	default:
		for i := range p.Args {
			b = p.Args[i].appendKey(b)
		}
	}
	return append(b, ')')
}

// appendLenStr appends a length-prefixed string.
func appendLenStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// appendFloatBits appends the exact bit pattern of v, so canonical
// keys distinguish every representable constant (0 and -0 included —
// treating them as distinct under-merges but stays sound).
func appendFloatBits(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// physKey is the dedup identity of one physical aggregate: its kind,
// attribute and canonical selection. Two specs whose physical halves
// share a physKey fold the same per-sample values and are answered by
// one accumulator.
func physKey(kind, attr string, where *PredSpec) string {
	b := appendLenStr(nil, kind)
	b = appendLenStr(b, attr)
	if where != nil {
		c := where.Canon()
		b = c.appendKey(b)
	}
	return string(b)
}
