package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
)

// nonBatchOracle hides the batch methods of a service so tests can
// exercise the driver's sequential fallback path.
type nonBatchOracle struct {
	svc *lbs.Service
}

func (o nonBatchOracle) QueryLR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LRRecord, error) {
	return o.svc.QueryLR(ctx, q, f)
}
func (o nonBatchOracle) QueryLNR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LNRRecord, error) {
	return o.svc.QueryLNR(ctx, q, f)
}
func (o nonBatchOracle) Bounds() geom.Rect { return o.svc.Bounds() }
func (o nonBatchOracle) K() int            { return o.svc.K() }
func (o nonBatchOracle) QueryCount() int64 { return o.svc.QueryCount() }

// TestWithBatchFallbackEquivalence: for an estimator without a native
// batch path (LRAggregator), WithBatch(m) falls back to sequential
// Step calls and must produce bit-identical results to the unbatched
// run with the same seed.
func TestWithBatchFallbackEquivalence(t *testing.T) {
	db := smallService2(80, 11)
	run := func(batch int) []Result {
		svc := lbs.NewService(db, lbs.Options{K: 2})
		agg := NewLRAggregator(svc, DefaultLROptions(5))
		opts := []RunOption{WithMaxSamples(24)}
		if batch > 1 {
			opts = append(opts, WithBatch(batch))
		}
		res, err := agg.Run(context.Background(), []Aggregate{Count()}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, batched := run(1), run(4)
	if plain[0].Samples != batched[0].Samples {
		t.Fatalf("samples: %d vs %d", plain[0].Samples, batched[0].Samples)
	}
	if plain[0].Estimate != batched[0].Estimate || plain[0].StdErr != batched[0].StdErr {
		t.Errorf("batched fallback diverged: %+v vs %+v", plain[0], batched[0])
	}
	if plain[0].Queries != batched[0].Queries {
		t.Errorf("query cost changed under batching: %d vs %d", plain[0].Queries, batched[0].Queries)
	}
}

// TestNNOStepBatchDistribution: NNO's native batch path draws valid
// samples — the batched run must land in the same loose accuracy band
// as the sequential baseline and must not change the per-sample query
// cost structure.
func TestNNOStepBatchDistribution(t *testing.T) {
	db := smallService2(60, 301)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 1})
	res, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(150), WithBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 150 {
		t.Errorf("samples = %d, want 150", res[0].Samples)
	}
	truth := float64(db.Len())
	if rel := res[0].RelErr(truth); rel > 0.6 {
		t.Errorf("batched NNO estimate %v vs truth %v (rel %v)", res[0].Estimate, truth, rel)
	}
}

// TestNNOBatchRespectsBudget: a batched parallel run against a
// budget-capped service stops gracefully with partial results and the
// counter never exceeds the budget.
func TestNNOBatchRespectsBudget(t *testing.T) {
	db := smallService2(60, 17)
	const budget = 400
	svc := lbs.NewService(db, lbs.Options{K: 1, Budget: budget})
	nno := NewNNOBaseline(svc, NNOOptions{Seed: 3})
	res, err := nno.Run(context.Background(), []Aggregate{Count()},
		WithBatch(8), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples == 0 {
		t.Fatal("no samples completed")
	}
	if n := svc.QueryCount(); n > budget {
		t.Errorf("QueryCount %d exceeds budget %d", n, budget)
	}
}

// TestStepBatchFallbackOracle: WithBatch over an Oracle without batch
// support must still work (per-query fallback inside the probe loop).
func TestStepBatchFallbackOracle(t *testing.T) {
	db := smallService2(40, 23)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	nno := NewNNOBaseline(nonBatchOracle{svc}, NNOOptions{Seed: 9})
	res, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(40), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 40 {
		t.Errorf("samples = %d, want 40", res[0].Samples)
	}
}

// snapSampler snaps uniform draws to a coarse grid, making repeated
// sample points common — the workload where client-side caching pays.
type snapSampler struct {
	*sampling.Uniform
	pitch float64
}

func (s snapSampler) Sample(rng *rand.Rand) geom.Point {
	p := s.Uniform.Sample(rng)
	return geom.Pt(
		(math.Floor(p.X/s.pitch)+0.5)*s.pitch,
		(math.Floor(p.Y/s.pitch)+0.5)*s.pitch,
	)
}

// TestCachedRunSameEstimateFewerQueries is the acceptance check for
// the caching layer: on a workload with repeated sample points, an
// estimator over a CachedOracle reaches the *same* estimate as the
// uncached run (the wrapper is transparent) while consuming strictly
// fewer service queries.
func TestCachedRunSameEstimateFewerQueries(t *testing.T) {
	db := smallService2(60, 5)
	const samples = 80
	run := func(cached bool) ([]Result, int64) {
		svc := lbs.NewService(db, lbs.Options{K: 1})
		var oracle Oracle = svc
		if cached {
			oracle = lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 1 << 14})
		}
		smp := snapSampler{Uniform: sampling.NewUniform(db.Bounds()), pitch: 25}
		nno := NewNNOBaseline(oracle, NNOOptions{Seed: 21, Sampler: smp, ProbesPerCell: 10})
		res, err := nno.Run(context.Background(), []Aggregate{Count()}, WithMaxSamples(samples))
		if err != nil {
			t.Fatal(err)
		}
		return res, svc.QueryCount()
	}
	plain, plainQ := run(false)
	cached, cachedQ := run(true)
	if plain[0].Samples != samples || cached[0].Samples != samples {
		t.Fatalf("samples: plain %d cached %d, want %d", plain[0].Samples, cached[0].Samples, samples)
	}
	if plain[0].Estimate != cached[0].Estimate {
		t.Errorf("cached estimate %v != uncached %v (wrapper must be transparent)",
			cached[0].Estimate, plain[0].Estimate)
	}
	if cachedQ >= plainQ {
		t.Errorf("cached run spent %d queries, want strictly fewer than uncached %d", cachedQ, plainQ)
	}
	t.Logf("uncached %d queries, cached %d (%.0f%% saved)", plainQ, cachedQ,
		100*(1-float64(cachedQ)/float64(plainQ)))
}

// TestCachedBatchedParallelRun combines every layer: cache wrapper,
// native NNO batching, parallel forks — under -race this exercises
// the concurrent shard locking end to end.
func TestCachedBatchedParallelRun(t *testing.T) {
	db := smallService2(60, 5)
	svc := lbs.NewService(db, lbs.Options{K: 1})
	oracle := lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 4096, Shards: 8})
	smp := snapSampler{Uniform: sampling.NewUniform(db.Bounds()), pitch: 20}
	nno := NewNNOBaseline(oracle, NNOOptions{Seed: 2, Sampler: smp, ProbesPerCell: 8})
	res, err := nno.Run(context.Background(), []Aggregate{Count()},
		WithMaxSamples(120), WithBatch(8), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 120 {
		t.Errorf("samples = %d, want 120", res[0].Samples)
	}
	st := oracle.Stats()
	if st.Hits == 0 {
		t.Errorf("expected cache hits on a snapped workload, got %+v", st)
	}
	if st.Misses != svc.QueryCount() {
		t.Errorf("misses %d != inner queries %d", st.Misses, svc.QueryCount())
	}
}
