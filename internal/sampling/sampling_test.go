package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var box = geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))

func TestUniformBasics(t *testing.T) {
	u := NewUniform(box)
	if u.Bounds() != box {
		t.Errorf("bounds")
	}
	if got := u.Density(geom.Pt(5, 5)); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("density: %v", got)
	}
	if got := u.Density(geom.Pt(50, 5)); got != 0 {
		t.Errorf("outside density: %v", got)
	}
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(5, 5), geom.Pt(0, 5)}
	if got := u.IntegratePolygon(poly); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("integrate: %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := u.Sample(rng); !box.Contains(p) {
			t.Fatalf("sample outside: %v", p)
		}
	}
}

func TestUniformDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("degenerate bounds did not panic")
		}
	}()
	NewUniform(geom.Rect{})
}

func TestGridValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"dims", func() { NewGrid(box, 0, 2, nil) }},
		{"len", func() { NewGrid(box, 2, 2, []float64{1, 2}) }},
		{"neg", func() { NewGrid(box, 1, 2, []float64{1, -1}) }},
		{"zero", func() { NewGrid(box, 1, 2, []float64{0, 0}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestGridDensityIntegratesToOne(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 5, 6}
	g := NewGrid(box, 3, 2, weights)
	total := g.IntegratePolygon(box.Polygon())
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("total mass: %v", total)
	}
	// Density at a point in the heaviest cell (top-right: weight 6/21).
	d := g.Density(geom.Pt(9, 9))
	cellArea := box.Area() / 6
	want := (6.0 / 21.0) / cellArea
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("density: %v want %v", d, want)
	}
	if g.Density(geom.Pt(-1, 0)) != 0 {
		t.Errorf("outside density")
	}
}

func TestGridSampleDistribution(t *testing.T) {
	// 2×1 grid, left cell weight 3, right cell weight 1.
	g := NewGrid(box, 2, 1, []float64{3, 1})
	rng := rand.New(rand.NewSource(2))
	const n = 40000
	left := 0
	for i := 0; i < n; i++ {
		p := g.Sample(rng)
		if !box.Contains(p) {
			t.Fatalf("sample outside: %v", p)
		}
		if p.X < 5 {
			left++
		}
	}
	frac := float64(left) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("left fraction: %v want 0.75", frac)
	}
}

func TestGridIntegrateMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = rng.Float64() + 0.1
	}
	g := NewGrid(box, 4, 4, weights)
	// A triangle straddling several cells.
	tri := geom.Polygon{geom.Pt(1, 1), geom.Pt(9, 2), geom.Pt(4, 8)}
	exact := g.IntegratePolygon(tri)
	const n = 200000
	hits := 0.0
	for i := 0; i < n; i++ {
		p := geom.RandomInRect(rng, box)
		if tri.Contains(p) {
			hits += g.Density(p)
		}
	}
	mc := hits / n * box.Area()
	if math.Abs(exact-mc) > 0.01 {
		t.Errorf("integrate: exact %v vs MC %v", exact, mc)
	}
}

func TestGridFromPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Cluster everything in the lower-left quadrant.
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*5, rng.Float64()*5)
	}
	g := GridFromPoints(box, 4, 4, pts, 1)
	// Mass of the lower-left quadrant should dominate.
	ll := geom.Polygon{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(5, 5), geom.Pt(0, 5)}
	if mass := g.IntegratePolygon(ll); mass < 0.9 {
		t.Errorf("lower-left mass: %v", mass)
	}
	// Smoothing keeps all cells strictly positive.
	if g.Density(geom.Pt(9.9, 9.9)) <= 0 {
		t.Errorf("smoothed density should be positive everywhere")
	}
	// Points outside the rect are ignored, not crashed on.
	g2 := GridFromPoints(box, 2, 2, []geom.Point{geom.Pt(-5, -5)}, 1)
	if g2 == nil {
		t.Errorf("grid with outside point")
	}
}

func TestGridNoisy(t *testing.T) {
	g := NewGrid(box, 2, 2, []float64{1, 1, 1, 1})
	n := g.Noisy(rand.New(rand.NewSource(5)), 0.5)
	if math.Abs(n.IntegratePolygon(box.Polygon())-1) > 1e-9 {
		t.Errorf("noisy grid not normalized")
	}
	same := true
	for i := range g.weights {
		if math.Abs(g.weights[i]-n.weights[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Errorf("noise had no effect")
	}
}

func TestIntegrateFaces(t *testing.T) {
	u := NewUniform(box)
	faces := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(5, 5), geom.Pt(0, 5)},
		{geom.Pt(5, 5), geom.Pt(10, 5), geom.Pt(10, 10), geom.Pt(5, 10)},
	}
	if got := IntegrateFaces(u, faces); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("faces mass: %v", got)
	}
}

func TestGridDims(t *testing.T) {
	g := NewGrid(box, 3, 2, []float64{1, 1, 1, 1, 1, 1})
	w, h := g.Dims()
	if w != 3 || h != 2 {
		t.Errorf("dims: %d %d", w, h)
	}
}

func TestUniformVsFlatGridAgree(t *testing.T) {
	u := NewUniform(box)
	g := NewGrid(box, 5, 5, func() []float64 {
		w := make([]float64, 25)
		for i := range w {
			w[i] = 1
		}
		return w
	}())
	poly := geom.Polygon{geom.Pt(1.3, 2.1), geom.Pt(7.9, 3.3), geom.Pt(5.5, 8.8)}
	a := u.IntegratePolygon(poly)
	b := g.IntegratePolygon(poly)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("uniform %v vs flat grid %v", a, b)
	}
}
