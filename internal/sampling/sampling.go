// Package sampling provides the query-location sampling distributions
// used by the aggregate estimators: the uniform distribution over the
// bounding region and piecewise-constant weighted grids built from
// external knowledge such as population density (§5.2 of the paper).
//
// A sampler must expose its density analytically, because the
// estimators weight each sampled tuple t by 1/p(t) with
// p(t) = ∫_{V(t)} f(q) dq — the integral of the sampling density over
// the tuple's (top-k) Voronoi cell. For a piecewise-constant grid this
// integral is computed exactly by clipping the cell's convex faces
// against the grid cells, so weighted sampling preserves the
// estimators' unbiasedness no matter how inaccurate the external
// knowledge is (the paper's key observation in §5.2).
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Sampler is a probability distribution over a bounding region from
// which query locations are drawn.
type Sampler interface {
	// Bounds returns the support of the distribution.
	Bounds() geom.Rect
	// Sample draws one location.
	Sample(rng *rand.Rand) geom.Point
	// Density returns the probability density at p; it integrates to 1
	// over Bounds and is 0 outside.
	Density(p geom.Point) float64
	// IntegratePolygon returns the probability mass of the convex
	// polygon ∫_poly Density.
	IntegratePolygon(poly geom.Polygon) float64
	// MaxDensityInRect returns an upper bound on Density over the
	// rectangle, used for rejection sampling restricted to a region.
	MaxDensityInRect(r geom.Rect) float64
}

// Uniform is the uniform distribution over a rectangle.
type Uniform struct {
	rect geom.Rect
}

// NewUniform returns a uniform sampler over rect.
func NewUniform(rect geom.Rect) *Uniform {
	if rect.Area() <= 0 {
		panic("sampling: degenerate bounds")
	}
	return &Uniform{rect: rect}
}

// Bounds implements Sampler.
func (u *Uniform) Bounds() geom.Rect { return u.rect }

// Sample implements Sampler.
func (u *Uniform) Sample(rng *rand.Rand) geom.Point {
	return geom.RandomInRect(rng, u.rect)
}

// Density implements Sampler.
func (u *Uniform) Density(p geom.Point) float64 {
	if !u.rect.Contains(p) {
		return 0
	}
	return 1 / u.rect.Area()
}

// IntegratePolygon implements Sampler. The polygon is assumed to lie
// within the bounds (estimator regions always do).
func (u *Uniform) IntegratePolygon(poly geom.Polygon) float64 {
	return poly.Area() / u.rect.Area()
}

// MaxDensityInRect implements Sampler.
func (u *Uniform) MaxDensityInRect(geom.Rect) float64 { return 1 / u.rect.Area() }

// Grid is a piecewise-constant density over a W×H lattice of equal
// rectangular cells covering the bounds. Cell weights are normalized
// to sum to 1; the density inside cell c is weight(c)/cellArea.
type Grid struct {
	rect     geom.Rect
	w, h     int
	weights  []float64 // row-major, normalized to sum 1
	cum      []float64 // cumulative weights for sampling
	cellArea float64
}

// NewGrid builds a weighted grid sampler. weights must have w·h
// non-negative entries with a positive sum; they are copied and
// normalized.
func NewGrid(rect geom.Rect, w, h int, weights []float64) *Grid {
	if w < 1 || h < 1 {
		panic("sampling: grid dimensions must be ≥ 1")
	}
	if len(weights) != w*h {
		panic(fmt.Sprintf("sampling: want %d weights, got %d", w*h, len(weights)))
	}
	var sum float64
	for _, x := range weights {
		if x < 0 || math.IsNaN(x) {
			panic("sampling: negative or NaN weight")
		}
		sum += x
	}
	if sum <= 0 {
		panic("sampling: all-zero weights")
	}
	g := &Grid{
		rect:     rect,
		w:        w,
		h:        h,
		weights:  make([]float64, len(weights)),
		cum:      make([]float64, len(weights)),
		cellArea: rect.Area() / float64(w*h),
	}
	run := 0.0
	for i, x := range weights {
		g.weights[i] = x / sum
		run += g.weights[i]
		g.cum[i] = run
	}
	return g
}

// GridFromPoints builds a grid density from observed point locations
// (our census substitute): per-cell counts with add-alpha smoothing so
// that every cell retains positive probability — a requirement for the
// estimators, since a zero-density area containing tuples would break
// the positive-selection-probability precondition of unbiasedness.
func GridFromPoints(rect geom.Rect, w, h int, pts []geom.Point, alpha float64) *Grid {
	if alpha <= 0 {
		alpha = 1
	}
	weights := make([]float64, w*h)
	for i := range weights {
		weights[i] = alpha
	}
	for _, p := range pts {
		if !rect.Contains(p) {
			continue
		}
		cx, cy := cellOf(rect, w, h, p)
		weights[cy*w+cx]++
	}
	return NewGrid(rect, w, h, weights)
}

// cellOf maps p to grid coordinates, clamped to the lattice.
func cellOf(rect geom.Rect, w, h int, p geom.Point) (int, int) {
	cx := int((p.X - rect.Min.X) / rect.Width() * float64(w))
	cy := int((p.Y - rect.Min.Y) / rect.Height() * float64(h))
	if cx < 0 {
		cx = 0
	} else if cx >= w {
		cx = w - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= h {
		cy = h - 1
	}
	return cx, cy
}

// Noisy returns a copy of the grid whose weights have been perturbed
// by multiplicative lognormal noise with the given sigma — used to
// demonstrate that inaccurate external knowledge degrades efficiency
// but never unbiasedness (§5.2).
func (g *Grid) Noisy(rng *rand.Rand, sigma float64) *Grid {
	weights := make([]float64, len(g.weights))
	for i, x := range g.weights {
		weights[i] = x * math.Exp(rng.NormFloat64()*sigma)
	}
	return NewGrid(g.rect, g.w, g.h, weights)
}

// Bounds implements Sampler.
func (g *Grid) Bounds() geom.Rect { return g.rect }

// Dims returns the lattice dimensions.
func (g *Grid) Dims() (w, h int) { return g.w, g.h }

// Sample implements Sampler: choose a cell by weight, then a point
// uniformly inside it.
func (g *Grid) Sample(rng *rand.Rand) geom.Point {
	u := rng.Float64()
	idx := sort.SearchFloat64s(g.cum, u)
	if idx >= len(g.cum) {
		idx = len(g.cum) - 1
	}
	cx := idx % g.w
	cy := idx / g.w
	cw := g.rect.Width() / float64(g.w)
	ch := g.rect.Height() / float64(g.h)
	return geom.Pt(
		g.rect.Min.X+(float64(cx)+rng.Float64())*cw,
		g.rect.Min.Y+(float64(cy)+rng.Float64())*ch,
	)
}

// Density implements Sampler.
func (g *Grid) Density(p geom.Point) float64 {
	if !g.rect.Contains(p) {
		return 0
	}
	cx, cy := cellOf(g.rect, g.w, g.h, p)
	return g.weights[cy*g.w+cx] / g.cellArea
}

// IntegratePolygon implements Sampler: the polygon is clipped against
// every grid cell it overlaps and each piece contributes
// weight(cell)·area(piece)/cellArea.
func (g *Grid) IntegratePolygon(poly geom.Polygon) float64 {
	if len(poly) < 3 {
		return 0
	}
	bb := poly.BoundingRect()
	cw := g.rect.Width() / float64(g.w)
	ch := g.rect.Height() / float64(g.h)
	x0 := int(math.Floor((bb.Min.X - g.rect.Min.X) / cw))
	x1 := int(math.Ceil((bb.Max.X - g.rect.Min.X) / cw))
	y0 := int(math.Floor((bb.Min.Y - g.rect.Min.Y) / ch))
	y1 := int(math.Ceil((bb.Max.Y - g.rect.Min.Y) / ch))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.w {
		x1 = g.w
	}
	if y1 > g.h {
		y1 = g.h
	}
	var mass float64
	for cy := y0; cy < y1; cy++ {
		// Clip the polygon to the horizontal slab once per row.
		yLo := g.rect.Min.Y + float64(cy)*ch
		yHi := yLo + ch
		row := poly.Clip(geom.HalfPlane{Line: geom.Line{A: 0, B: -1, C: -yLo}}) // y ≥ yLo
		row = row.Clip(geom.HalfPlane{Line: geom.Line{A: 0, B: 1, C: yHi}})     // y ≤ yHi
		if len(row) < 3 {
			continue
		}
		for cx := x0; cx < x1; cx++ {
			xLo := g.rect.Min.X + float64(cx)*cw
			xHi := xLo + cw
			piece := row.Clip(geom.HalfPlane{Line: geom.Line{A: -1, B: 0, C: -xLo}}) // x ≥ xLo
			piece = piece.Clip(geom.HalfPlane{Line: geom.Line{A: 1, B: 0, C: xHi}})  // x ≤ xHi
			if len(piece) < 3 {
				continue
			}
			mass += g.weights[cy*g.w+cx] * piece.Area() / g.cellArea
		}
	}
	return mass
}

// MaxDensityInRect implements Sampler: the maximum cell density among
// grid cells overlapping r.
func (g *Grid) MaxDensityInRect(r geom.Rect) float64 {
	cw := g.rect.Width() / float64(g.w)
	ch := g.rect.Height() / float64(g.h)
	x0 := int(math.Floor((r.Min.X - g.rect.Min.X) / cw))
	x1 := int(math.Ceil((r.Max.X - g.rect.Min.X) / cw))
	y0 := int(math.Floor((r.Min.Y - g.rect.Min.Y) / ch))
	y1 := int(math.Ceil((r.Max.Y - g.rect.Min.Y) / ch))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.w {
		x1 = g.w
	}
	if y1 > g.h {
		y1 = g.h
	}
	var m float64
	for cy := y0; cy < y1; cy++ {
		for cx := x0; cx < x1; cx++ {
			if w := g.weights[cy*g.w+cx]; w > m {
				m = w
			}
		}
	}
	return m / g.cellArea
}

// IntegrateFaces sums IntegratePolygon over a set of disjoint convex
// polygons — the probability mass of a (possibly concave) top-k cell.
func IntegrateFaces(s Sampler, faces []geom.Polygon) float64 {
	var mass float64
	for _, f := range faces {
		mass += s.IntegratePolygon(f)
	}
	return mass
}
