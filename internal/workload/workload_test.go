package workload

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
)

func TestClusterMixDeterministic(t *testing.T) {
	cfg := ClusterMixConfig{Bounds: USBounds(), N: 500, Clusters: 10, Seed: 42}
	a := ClusterMix(cfg)
	b := ClusterMix(cfg)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestClusterMixInBounds(t *testing.T) {
	pts := ClusterMix(ClusterMixConfig{Bounds: USBounds(), N: 2000, Clusters: 30, Seed: 1})
	for _, p := range pts {
		if !USBounds().Contains(p) {
			t.Fatalf("point outside bounds: %v", p)
		}
	}
}

func TestClusterMixIsClustered(t *testing.T) {
	// Spatial skew check: with clustering the occupied-cell count on a
	// coarse grid must be much smaller than for a uniform scatter.
	countCells := func(pts []geom.Point) int {
		const g = 20
		occupied := map[int]bool{}
		for _, p := range pts {
			cx := int(p.X / USBounds().Width() * g)
			cy := int(p.Y / USBounds().Height() * g)
			occupied[cy*g+cx] = true
		}
		return len(occupied)
	}
	clustered := ClusterMix(ClusterMixConfig{
		Bounds: USBounds(), N: 2000, Clusters: 10, UniformFrac: 0.05, Seed: 3,
	})
	uniform := ClusterMix(ClusterMixConfig{
		Bounds: USBounds(), N: 2000, Clusters: 1, UniformFrac: 1.0, Seed: 3,
	})
	cc, cu := countCells(clustered), countCells(uniform)
	if cc >= cu {
		t.Errorf("clustered occupies %d cells, uniform %d — no skew", cc, cu)
	}
}

func TestClusterMixDefaultsApplied(t *testing.T) {
	pts := ClusterMix(ClusterMixConfig{Bounds: USBounds(), N: 100, Seed: 5})
	if len(pts) != 100 {
		t.Fatalf("defaults broke generation: %d", len(pts))
	}
}

func TestUSASchools(t *testing.T) {
	s := USASchools(800, 7)
	if s.DB.Len() != 800 {
		t.Fatalf("len: %d", s.DB.Len())
	}
	var minE, maxE = math.Inf(1), math.Inf(-1)
	for i := 0; i < s.DB.Len(); i++ {
		tp := s.DB.Tuple(i)
		if tp.Category != "school" {
			t.Fatalf("category: %q", tp.Category)
		}
		e := tp.Attr("enrollment")
		if e < 20 {
			t.Fatalf("enrollment too small: %v", e)
		}
		minE = math.Min(minE, e)
		maxE = math.Max(maxE, e)
	}
	if maxE/minE < 5 {
		t.Errorf("enrollment spread too narrow: %v..%v", minE, maxE)
	}
	if s.Grid == nil {
		t.Errorf("missing density grid")
	}
	if s.Uniform().Bounds() != USBounds() {
		t.Errorf("uniform sampler bounds")
	}
}

func TestUSARestaurants(t *testing.T) {
	s := USARestaurants(1000, 11)
	open := 0
	for i := 0; i < s.DB.Len(); i++ {
		tp := s.DB.Tuple(i)
		r := tp.Attr("rating")
		if r < 1 || r > 5 {
			t.Fatalf("rating out of range: %v", r)
		}
		if tp.Tag("open_sunday") == "yes" {
			open++
		}
	}
	frac := float64(open) / float64(s.DB.Len())
	if math.Abs(frac-0.7) > 0.06 {
		t.Errorf("open-sunday fraction: %v", frac)
	}
}

func TestStarbucksUS(t *testing.T) {
	s := StarbucksUS(300, 1200, 13)
	if s.DB.Len() != 1500 {
		t.Fatalf("len: %d", s.DB.Len())
	}
	nsb := s.DB.Count(func(tp *lbs.Tuple) bool { return tp.Name == "Starbucks" })
	if nsb != 300 {
		t.Errorf("starbucks count: %d", nsb)
	}
	// Selection pass-through sanity: a service filtered on the name
	// sees exactly the Starbucks subset.
	svc := lbs.NewService(s.DB, lbs.Options{K: 5})
	res, err := svc.QueryLR(context.Background(), s.Bounds.Center(), lbs.NameFilter("Starbucks"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Name != "Starbucks" {
			t.Fatalf("filter leak: %+v", r)
		}
	}
}

func TestSocialNetworks(t *testing.T) {
	we := WeChatChina(2000, 17)
	wb := WeiboChina(2000, 17)
	frac := func(s *Scenario) float64 {
		m := s.DB.Count(func(tp *lbs.Tuple) bool { return tp.Tag("gender") == "m" })
		return float64(m) / float64(s.DB.Len())
	}
	fw, fb := frac(we), frac(wb)
	if math.Abs(fw-0.671) > 0.03 {
		t.Errorf("wechat male frac: %v", fw)
	}
	if math.Abs(fb-0.504) > 0.03 {
		t.Errorf("weibo male frac: %v", fb)
	}
	// WeChat locations must be obfuscated, Weibo's not.
	movedWe := 0
	for i := 0; i < we.DB.Len(); i++ {
		if we.DB.EffectiveLoc(i).Dist(we.DB.Tuple(i).Loc) > 1e-9 {
			movedWe++
		}
	}
	if movedWe < we.DB.Len()/2 {
		t.Errorf("wechat obfuscation moved only %d tuples", movedWe)
	}
	for i := 0; i < wb.DB.Len(); i++ {
		if wb.DB.EffectiveLoc(i) != wb.DB.Tuple(i).Loc {
			t.Fatalf("weibo should not be obfuscated")
		}
	}
}

func TestAustinBoxInsideUS(t *testing.T) {
	b := AustinBox()
	if !USBounds().Contains(b.Min) || !USBounds().Contains(b.Max) {
		t.Errorf("Austin box outside US bounds: %+v", b)
	}
	if b.Area() <= 0 {
		t.Errorf("degenerate Austin box")
	}
}

func TestGridCorrelatesWithDensity(t *testing.T) {
	s := USASchools(2000, 23)
	// The density at tuple locations should on average exceed the
	// uniform density (because the grid tracks the clusters).
	uni := 1 / s.Bounds.Area()
	var sum float64
	for i := 0; i < s.DB.Len(); i++ {
		sum += s.Grid.Density(s.DB.Tuple(i).Loc)
	}
	avg := sum / float64(s.DB.Len())
	if avg < 2*uni {
		t.Errorf("grid density at tuples %v not much above uniform %v", avg, uni)
	}
}
