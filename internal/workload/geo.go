package workload

// Geodesic city scenarios: coordinates are longitude/latitude degrees
// (X = lon, Y = lat) and the scenario is meant to be ranked under the
// Haversine metric — distances in km along great circles. The same
// cluster-mix generator runs in degree space; the slight area
// distortion of sampling degrees instead of surface area is irrelevant
// to the synthetic skew (clusters dominate) and keeps generation
// deterministic and metric-independent, so the same seed produces the
// same city under either density law.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// geoUSBounds covers the continental US in lon/lat degrees.
var geoUSBounds = geom.NewRect(geom.Pt(-125, 24), geom.Pt(-66, 49))

// geoChinaBounds covers China in lon/lat degrees.
var geoChinaBounds = geom.NewRect(geom.Pt(73, 18), geom.Pt(135, 53))

// GeoUSBounds returns the geodesic continental-US bounding box (degrees).
func GeoUSBounds() geom.Rect { return geoUSBounds }

// GeoChinaBounds returns the geodesic China bounding box (degrees).
func GeoChinaBounds() geom.Rect { return geoChinaBounds }

// Cities generates a generic POI population over bounds under the
// given metric and density law — the scenario behind lbsgen's
// geodesic cities and its -density flag. Coordinates are degrees when
// metric is Haversine, km in the plane otherwise; the generator
// itself is metric-independent.
func Cities(name string, bounds geom.Rect, metric geo.Metric, density Density, n, clusters int, seed int64) *Scenario {
	pts := ClusterMix(ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: clusters,
		UniformFrac: 0.15, Density: density, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		rating := 3.8 + rng.NormFloat64()*0.7
		rating = math.Min(5, math.Max(1, rating))
		tuples[i] = lbs.Tuple{
			ID:       int64(i + 1),
			Loc:      p,
			Name:     fmt.Sprintf("POI %d", i+1),
			Category: "poi",
			Attrs:    map[string]float64{"rating": math.Round(rating*10) / 10},
		}
	}
	return &Scenario{
		Name:   name,
		Bounds: bounds,
		Metric: metric,
		DB:     lbs.NewDatabase(bounds, tuples),
		Grid:   buildGrid(bounds, pts),
	}
}

// GeoUS generates n POIs over the continental US in lon/lat degrees,
// ranked under Haversine.
func GeoUS(n int, seed int64, density Density) *Scenario {
	return Cities("geo-us", geoUSBounds, geo.Haversine, density, n, 40, seed)
}

// GeoChina generates n POIs over China in lon/lat degrees, ranked
// under Haversine.
func GeoChina(n int, seed int64, density Density) *Scenario {
	return Cities("geo-china", geoChinaBounds, geo.Haversine, density, n, 60, seed)
}

// Project materializes the Euclidean twin of a geodesic scenario on
// the equirectangular plane centered at the scenario's midpoint
// latitude: every tuple location (and the bounds) maps through
// geo.Projection.Forward into kilometers, and the result ranks under
// geo.Euclidean. This is the documented bridge for planar ground
// truth — Voronoi/cell computations run on the projected plane, and
// geo.Projection.MaxDistortion bounds how far its distances stray
// from the great circles the geodesic service ranks by.
func (s *Scenario) Project() (*Scenario, geo.Projection) {
	proj := geo.NewProjection((s.Bounds.Min.Y + s.Bounds.Max.Y) / 2)
	tuples := make([]lbs.Tuple, s.DB.Len())
	pts := make([]geom.Point, s.DB.Len())
	for i := range tuples {
		t := *s.DB.Tuple(i)
		t.Loc = proj.Forward(t.Loc)
		tuples[i] = t
		pts[i] = t.Loc
	}
	bounds := proj.ForwardRect(s.Bounds)
	return &Scenario{
		Name:   s.Name + "-projected",
		Bounds: bounds,
		Metric: geo.Euclidean,
		DB:     lbs.NewDatabase(bounds, tuples),
		Grid:   buildGrid(bounds, pts),
	}, proj
}
