// Package workload generates the synthetic datasets that stand in for
// the paper's evaluation data: the USA portion of OpenStreetMap
// enriched with Google-Maps ratings and US-Census enrollments, the
// Starbucks store set of the Google Places demonstration, and the
// WeChat / Sina Weibo user populations.
//
// The substitution preserves what the evaluation actually depends on:
//
//   - spatial skew — POIs and users concentrate in urban clusters with
//     a thin rural background, producing the heavy-tailed Voronoi cell
//     size distribution of Figure 11 (from sub-km² urban cells to
//     enormous rural ones);
//   - attribute distributions — ratings, enrollments, review counts
//     and gender mixes with realistic shapes;
//   - known ground truth — every generated database can be aggregated
//     exactly, enabling relative-error measurement that the paper
//     could only approximate online.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/sampling"
)

// Density selects the radial law cluster points spread by.
type Density string

const (
	// DensityGauss places cluster points with Gaussian (light-tailed)
	// radial spread — the default, and the historical behavior.
	DensityGauss Density = "gauss"
	// DensityZipf places cluster points with a heavy-tailed power-law
	// (Pareto) radial spread: very dense urban cores with long suburban
	// tails, exaggerating the Voronoi cell-size skew of Figure 11.
	DensityZipf Density = "zipf"
)

// ParseDensity maps a flag value to a Density ("" = gauss).
func ParseDensity(s string) (Density, error) {
	switch Density(s) {
	case "", DensityGauss:
		return DensityGauss, nil
	case DensityZipf:
		return DensityZipf, nil
	}
	return "", fmt.Errorf("workload: unknown density %q (want gauss|zipf)", s)
}

// ClusterMixConfig describes an urban/rural mixture: tuples are placed
// in Gaussian clusters ("cities") with Zipf-distributed sizes, plus a
// uniform rural background.
type ClusterMixConfig struct {
	// Bounds is the coverage region.
	Bounds geom.Rect
	// N is the number of tuples to place.
	N int
	// Clusters is the number of Gaussian city clusters (≥ 1).
	Clusters int
	// StdFrac is each cluster's standard deviation as a fraction of
	// the shorter bounds dimension (default 0.02).
	StdFrac float64
	// UniformFrac is the fraction of tuples placed uniformly at random
	// over the whole region (the rural background, default 0.15).
	UniformFrac float64
	// ZipfS is the Zipf exponent for cluster sizes (default 1.0:
	// city sizes follow a power law).
	ZipfS float64
	// Density is the radial law points spread around their cluster
	// center by (default DensityGauss).
	Density Density
	// Seed drives all randomness.
	Seed int64
}

func (c *ClusterMixConfig) fill() {
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.StdFrac <= 0 {
		c.StdFrac = 0.02
	}
	if c.UniformFrac < 0 || c.UniformFrac > 1 {
		c.UniformFrac = 0.15
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.0
	}
	if c.Density == "" {
		c.Density = DensityGauss
	}
}

// ClusterMix generates N locations from the configured mixture. The
// same seed always yields the same locations.
func ClusterMix(cfg ClusterMixConfig) []geom.Point {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// City centers uniform over a slightly shrunk region so cluster
	// mass stays mostly inside the bounds.
	inner := geom.NewRect(
		cfg.Bounds.Min.Add(geom.Pt(cfg.Bounds.Width()*0.05, cfg.Bounds.Height()*0.05)),
		cfg.Bounds.Max.Sub(geom.Pt(cfg.Bounds.Width()*0.05, cfg.Bounds.Height()*0.05)),
	)
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.RandomInRect(rng, inner)
	}
	// Zipf weights over clusters.
	weights := make([]float64, cfg.Clusters)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		wsum += weights[i]
	}
	std := math.Min(cfg.Bounds.Width(), cfg.Bounds.Height()) * cfg.StdFrac
	pts := make([]geom.Point, 0, cfg.N)
	for len(pts) < cfg.N {
		var p geom.Point
		if rng.Float64() < cfg.UniformFrac {
			p = geom.RandomInRect(rng, cfg.Bounds)
		} else {
			// Pick a cluster by weight.
			u := rng.Float64() * wsum
			ci := 0
			for ; ci < cfg.Clusters-1; ci++ {
				if u < weights[ci] {
					break
				}
				u -= weights[ci]
			}
			if cfg.Density == DensityZipf {
				// Heavy-tailed radial offset: Pareto II with tail index 1.5
				// (infinite variance), isotropic direction. The scale is
				// chosen so the median offset roughly matches the Gaussian's,
				// keeping urban cores comparable while the tails stretch far
				// beyond anything Gaussian clusters produce.
				u := 1 - rng.Float64() // (0, 1]
				r := std * 1.15 * (math.Pow(u, -1/1.5) - 1)
				theta := rng.Float64() * 2 * math.Pi
				p = geom.Pt(
					centers[ci].X+r*math.Cos(theta),
					centers[ci].Y+r*math.Sin(theta),
				)
			} else {
				p = geom.Pt(
					centers[ci].X+rng.NormFloat64()*std,
					centers[ci].Y+rng.NormFloat64()*std,
				)
			}
		}
		if cfg.Bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// Scenario bundles a generated database with the external-knowledge
// density grid the weighted sampler uses (the census substitute) and
// the ground-truth facts the experiments compare against.
type Scenario struct {
	Name   string
	Bounds geom.Rect
	// Metric is the distance metric the scenario's coordinates are laid
	// out for: the planar scenarios (km coordinates) are Euclidean, the
	// Geo* scenarios (lon/lat degrees) Haversine. Services, routers,
	// caches and packs built over the database must use it.
	Metric geo.Metric
	DB     *lbs.Database
	// Grid is a density estimate correlated with tuple density — the
	// stand-in for US-Census population data (§5.2). It is derived
	// from the true locations with smoothing, mimicking knowledge that
	// is correlated but not exact.
	Grid *sampling.Grid
}

// Uniform returns the uniform sampler over the scenario bounds.
func (s *Scenario) Uniform() *sampling.Uniform { return sampling.NewUniform(s.Bounds) }

// usBounds is the synthetic "continental US" plane: 4000×2500 km.
var usBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(4000, 2500))

// chinaBounds is the synthetic "China" plane: 3500×3000 km.
var chinaBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(3500, 3000))

// USBounds returns the synthetic continental-US bounding box (km).
func USBounds() geom.Rect { return usBounds }

// ChinaBounds returns the synthetic China bounding box (km).
func ChinaBounds() geom.Rect { return chinaBounds }

// AustinBox returns a metro-sized sub-region of the US plane used for
// the "Austin, TX" aggregates (Fig. 17, Table 1): a 60×60 km box
// positioned in the south-central area.
func AustinBox() geom.Rect {
	return geom.NewRect(geom.Pt(1980, 620), geom.Pt(2040, 680))
}

// MetroBox returns a metro-sized (side × side) box centered on the
// densest area of the database — the synthetic analogue of picking a
// real metro such as Austin, TX for sub-region aggregates. The box is
// clamped inside the database bounds.
func MetroBox(db *lbs.Database, side float64) geom.Rect {
	bounds := db.Bounds()
	const g = 24
	var counts [g][g]int
	for i := 0; i < db.Len(); i++ {
		p := db.Tuple(i).Loc
		cx := int((p.X - bounds.Min.X) / bounds.Width() * g)
		cy := int((p.Y - bounds.Min.Y) / bounds.Height() * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		counts[cy][cx]++
	}
	bestX, bestY, best := 0, 0, -1
	for cy := 0; cy < g; cy++ {
		for cx := 0; cx < g; cx++ {
			if counts[cy][cx] > best {
				best = counts[cy][cx]
				bestX, bestY = cx, cy
			}
		}
	}
	center := geom.Pt(
		bounds.Min.X+(float64(bestX)+0.5)*bounds.Width()/g,
		bounds.Min.Y+(float64(bestY)+0.5)*bounds.Height()/g,
	)
	half := side / 2
	min := geom.Pt(
		math.Min(math.Max(center.X-half, bounds.Min.X), bounds.Max.X-side),
		math.Min(math.Max(center.Y-half, bounds.Min.Y), bounds.Max.Y-side),
	)
	return geom.NewRect(min, min.Add(geom.Pt(side, side)))
}

// buildGrid derives the census-substitute density grid from a point
// set at 40×25 resolution with smoothing.
func buildGrid(bounds geom.Rect, pts []geom.Point) *sampling.Grid {
	return sampling.GridFromPoints(bounds, 40, 25, pts, 2)
}

// USASchools generates n school POIs over the US plane with
// census-like enrollment numbers (lognormal, roughly 50–3000
// students). Used by Figures 13, 14, 16, 18, 19, 20.
func USASchools(n int, seed int64) *Scenario {
	pts := ClusterMix(ClusterMixConfig{
		Bounds: usBounds, N: n, Clusters: 60, UniformFrac: 0.2, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		enroll := math.Exp(6.0 + rng.NormFloat64()*0.8) // median ≈ 400
		if enroll < 20 {
			enroll = 20
		}
		tuples[i] = lbs.Tuple{
			ID:       int64(i + 1),
			Loc:      p,
			Name:     fmt.Sprintf("School %d", i+1),
			Category: "school",
			Attrs:    map[string]float64{"enrollment": math.Round(enroll)},
		}
	}
	return &Scenario{
		Name:   "usa-schools",
		Bounds: usBounds,
		DB:     lbs.NewDatabase(usBounds, tuples),
		Grid:   buildGrid(usBounds, pts),
	}
}

// USARestaurants generates n restaurant POIs over the US plane with
// Google-Maps-like review ratings (bimodal-ish around 3.5–4.5),
// review counts (Zipf-ish) and Sunday-opening flags (≈70 % open).
// Used by Figures 12, 15, 17 and the Table-1 Austin aggregate.
func USARestaurants(n int, seed int64) *Scenario {
	pts := ClusterMix(ClusterMixConfig{
		Bounds: usBounds, N: n, Clusters: 80, UniformFrac: 0.12, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		rating := 3.9 + rng.NormFloat64()*0.6
		if rating > 5 {
			rating = 5
		}
		if rating < 1 {
			rating = 1
		}
		reviews := math.Floor(math.Exp(rng.ExpFloat64() * 2.2))
		open := "no"
		if rng.Float64() < 0.7 {
			open = "yes"
		}
		tuples[i] = lbs.Tuple{
			ID:       int64(i + 1),
			Loc:      p,
			Name:     fmt.Sprintf("Restaurant %d", i+1),
			Category: "restaurant",
			Attrs: map[string]float64{
				"rating":  math.Round(rating*10) / 10,
				"reviews": reviews,
			},
			Tags: map[string]string{"open_sunday": open},
		}
	}
	return &Scenario{
		Name:   "usa-restaurants",
		Bounds: usBounds,
		DB:     lbs.NewDatabase(usBounds, tuples),
		Grid:   buildGrid(usBounds, pts),
	}
}

// StarbucksUS generates a map-service database containing nStarbucks
// "Starbucks" cafes among nOther other POIs, for the Table-1
// pass-through selection demonstration (the paper estimates 12,023
// Starbucks with ground truth ≈ 11,900). Starbucks stores are more
// urban-concentrated than the background POIs.
func StarbucksUS(nStarbucks, nOther int, seed int64) *Scenario {
	sbPts := ClusterMix(ClusterMixConfig{
		Bounds: usBounds, N: nStarbucks, Clusters: 50,
		UniformFrac: 0.05, StdFrac: 0.015, Seed: seed,
	})
	otherPts := ClusterMix(ClusterMixConfig{
		Bounds: usBounds, N: nOther, Clusters: 70,
		UniformFrac: 0.2, Seed: seed + 7,
	})
	rng := rand.New(rand.NewSource(seed + 2))
	tuples := make([]lbs.Tuple, 0, nStarbucks+nOther)
	id := int64(1)
	for _, p := range sbPts {
		tuples = append(tuples, lbs.Tuple{
			ID: id, Loc: p, Name: "Starbucks", Category: "cafe",
			Attrs: map[string]float64{"rating": 3.5 + rng.Float64()},
		})
		id++
	}
	for i, p := range otherPts {
		open := "no"
		if rng.Float64() < 0.65 {
			open = "yes"
		}
		tuples = append(tuples, lbs.Tuple{
			ID: id, Loc: p,
			Name:     fmt.Sprintf("POI %d", i+1),
			Category: "restaurant",
			Attrs:    map[string]float64{"rating": 1 + rng.Float64()*4},
			Tags:     map[string]string{"open_sunday": open},
		})
		id++
	}
	all := make([]geom.Point, len(tuples))
	for i := range tuples {
		all[i] = tuples[i].Loc
	}
	return &Scenario{
		Name:   "starbucks-us",
		Bounds: usBounds,
		DB:     lbs.NewDatabase(usBounds, tuples),
		Grid:   buildGrid(usBounds, all),
	}
}

// SocialConfig parameterizes a location-based social network user
// population (WeChat, Sina Weibo).
type SocialConfig struct {
	N        int
	MaleFrac float64
	Seed     int64
	// Obfuscation distorts the locations the service ranks by; WeChat
	// applies noticeably stronger obfuscation than map services
	// (Figure 21).
	Obfuscation lbs.Obfuscation
}

// SocialNetwork generates a user population over the China plane with
// gender tags; users concentrate heavily in urban clusters.
func SocialNetwork(name string, cfg SocialConfig) *Scenario {
	pts := ClusterMix(ClusterMixConfig{
		Bounds: chinaBounds, N: cfg.N, Clusters: 100,
		UniformFrac: 0.08, StdFrac: 0.012, Seed: cfg.Seed,
	})
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tuples := make([]lbs.Tuple, cfg.N)
	for i, p := range pts {
		gender := "f"
		if rng.Float64() < cfg.MaleFrac {
			gender = "m"
		}
		tuples[i] = lbs.Tuple{
			ID:   int64(i + 1),
			Loc:  p,
			Name: fmt.Sprintf("user-%d", i+1),
			Tags: map[string]string{"gender": gender},
		}
	}
	return &Scenario{
		Name:   name,
		Bounds: chinaBounds,
		DB:     lbs.NewObfuscatedDatabase(chinaBounds, tuples, cfg.Obfuscation),
		Grid:   buildGrid(chinaBounds, pts),
	}
}

// WeChatChina generates the WeChat stand-in: male fraction ≈ 67.1 %
// (the paper's estimate) and strong location obfuscation.
func WeChatChina(n int, seed int64) *Scenario {
	return SocialNetwork("wechat-china", SocialConfig{
		N: n, MaleFrac: 0.671, Seed: seed,
		Obfuscation: lbs.Obfuscation{GridSize: 0.05, Jitter: 0.03, Seed: seed + 99},
	})
}

// WeiboChina generates the Sina Weibo stand-in: male fraction ≈ 50.4 %
// and no obfuscation beyond the interface's rank-only output.
func WeiboChina(n int, seed int64) *Scenario {
	return SocialNetwork("weibo-china", SocialConfig{
		N: n, MaleFrac: 0.504, Seed: seed,
	})
}
