package workload

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// TestGeoScenariosDeterministicAndInBounds pins the geodesic
// generators: same seed ⇒ same city under either density law, every
// point inside the degree bounds, metric recorded.
func TestGeoScenariosDeterministicAndInBounds(t *testing.T) {
	for _, den := range []Density{DensityGauss, DensityZipf} {
		a := GeoUS(500, 7, den)
		b := GeoUS(500, 7, den)
		if a.Metric != geo.Haversine {
			t.Fatalf("metric = %v, want haversine", a.Metric)
		}
		for i := 0; i < a.DB.Len(); i++ {
			if a.DB.Tuple(i).Loc != b.DB.Tuple(i).Loc {
				t.Fatalf("density %s: seed 7 not deterministic at tuple %d", den, i)
			}
			if !a.Bounds.Contains(a.DB.Tuple(i).Loc) {
				t.Fatalf("density %s: tuple %d outside bounds", den, i)
			}
		}
	}
}

// TestZipfDensityIsHeavierTailed pins the density law itself: under
// zipf, the median distance to the nearest cluster-free sample is not
// the point — the share of points far from every cluster core must
// exceed the Gaussian scenario's (long suburban tails), while the
// dense-core share stays comparable. A crude but seed-stable witness:
// the spread (95th percentile pairwise-to-centroid distance over the
// 50th) is strictly larger under zipf.
func TestZipfDensityIsHeavierTailed(t *testing.T) {
	spread := func(den Density) float64 {
		pts := ClusterMix(ClusterMixConfig{
			Bounds: geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)),
			N:      4000, Clusters: 1, UniformFrac: 0, Density: den, Seed: 5,
		})
		var cx, cy float64
		for _, p := range pts {
			cx += p.X
			cy += p.Y
		}
		c := geom.Pt(cx/float64(len(pts)), cy/float64(len(pts)))
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = p.Dist(c)
		}
		// Selection by sorting is fine at this size.
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
		return ds[len(ds)*95/100] / ds[len(ds)/2]
	}
	g, z := spread(DensityGauss), spread(DensityZipf)
	if z <= g {
		t.Fatalf("zipf spread %.2f not heavier-tailed than gauss %.2f", z, g)
	}
}

// TestProjectedGroundTruthWithinDistortionBound pins the documented
// projected-plane approximation end to end: a city-scale geodesic
// scenario projected through Scenario.Project yields a Euclidean
// database whose kNN distance profile matches the geodesic service's
// within the measured equirectangular distortion bound — the error
// budget the Voronoi/cell ground truth inherits when it runs on the
// projected plane.
func TestProjectedGroundTruthWithinDistortionBound(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(-105, 39), geom.Pt(-103, 41))
	sc := Cities("geo-city", bounds, geo.Haversine, DensityGauss, 2000, 8, 3)
	psc, proj := sc.Project()
	if psc.Metric != geo.Euclidean {
		t.Fatalf("projected metric = %v, want euclidean", psc.Metric)
	}
	bound := proj.MaxDistortion(bounds, 4000, 9)
	if bound <= 0 || bound > 0.02 {
		t.Fatalf("distortion bound %.4g outside (0, 2%%] for a 2°×2° box at 40°", bound)
	}

	gsvc := lbs.NewService(sc.DB, lbs.Options{K: 5, Metric: geo.Haversine})
	psvc := lbs.NewService(psc.DB, lbs.Options{K: 5})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		q := geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height())
		grecs, err := gsvc.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		precs, err := psvc.QueryLR(ctx, proj.Forward(q), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(grecs) != len(precs) {
			t.Fatalf("query %d: %d vs %d records", i, len(grecs), len(precs))
		}
		// The j-th smallest distance under a (1±ε)-distorted metric is
		// within ε of the true j-th smallest, even when the tuples at
		// rank j differ.
		for j := range grecs {
			dg, dp := grecs[j].Dist, precs[j].Dist
			if diff := dp - dg; diff < -bound*dg-1e-9 || diff > bound*dg+1e-9 {
				t.Fatalf("query %d rank %d: planar %.6f vs geodesic %.6f exceeds distortion bound %.4g",
					i, j, dp, dg, bound)
			}
		}
	}
}
