// Package geo makes the distance metric a first-class seam: every
// layer that ranks, prunes or invalidates by distance (kdtree, lbs,
// shard, the answer cache, the store) takes a Metric instead of
// hard-coding flat-Euclidean math, so city-scale scenarios can run on
// real lat/lon coordinates without pretending the earth is flat.
//
// Two metrics are provided:
//
//   - Euclidean: the planar default. Its Dist is exactly
//     math.Sqrt(p.Dist2(q)) — the k-d tree's ranking pipeline and the
//     merge key of lbs.RankDist — so code refactored onto the seam
//     stays bit-identical to the pre-metric behavior.
//   - Haversine: great-circle distance in kilometers over points
//     interpreted as degrees (X = longitude, Y = latitude). Latitudes
//     are clamped to [−90°, 90°] before evaluation, which makes every
//     pruning bound in this package valid for arbitrary query points;
//     longitudes wrap modulo 360° through the formula itself.
//
// # Domain assumptions (Haversine)
//
// Geodesic databases must keep their data inside a longitude window
// narrower than 180° and away from the poles (the synthetic geo
// scenarios span ~60° of longitude at mid latitudes). The search
// bounds remain *correct* outside that regime — they degrade to
// "never prune" rather than to wrong answers — but pruning
// effectiveness, and therefore performance, assumes it.
//
// # Local projection
//
// Projection is the documented planar approximation for cell
// geometry: an equirectangular projection at a reference latitude
// (x′ = R·cos φ₀·λ, y′ = R·φ). Voronoi/cell ground truth runs on this
// plane; MaxDistortion measures the worst-case relative distance
// error over a region so the approximation error is a number, not a
// hope (see the README error-bound table).
package geo

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// EarthRadiusKm is the mean earth radius (IUGG), in kilometers; all
// Haversine distances are in these units.
const EarthRadiusKm = 6371.0088

// KmPerDeg is the length of one degree of latitude (or of longitude
// at the equator): EarthRadiusKm·π/180 ≈ 111.195 km.
const KmPerDeg = EarthRadiusKm * math.Pi / 180

const degToRad = math.Pi / 180

// Metric selects the distance function of a service stack. The zero
// value is Euclidean, so every existing construction site keeps its
// exact pre-metric behavior by default.
type Metric uint8

const (
	// Euclidean is planar distance: Dist(p, q) = Sqrt(p.Dist2(q)).
	Euclidean Metric = iota
	// Haversine is great-circle distance in km over (lon°, lat°)
	// points.
	Haversine
)

// String returns the wire name of the metric ("euclidean",
// "haversine").
func (m Metric) String() string {
	if m == Haversine {
		return "haversine"
	}
	return "euclidean"
}

// ParseMetric parses a wire name. The empty string is Euclidean (the
// default everywhere); "geodesic" is accepted as an alias for
// "haversine".
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "", "euclidean":
		return Euclidean, nil
	case "haversine", "geodesic":
		return Haversine, nil
	}
	return Euclidean, fmt.Errorf("geo: unknown metric %q (want euclidean|haversine)", s)
}

// clampLat clamps a latitude to [−90°, 90°]. Haversine evaluates the
// clamped coordinates, which keeps it a well-defined (pseudo-)metric
// for any plane point and keeps every pruning bound below valid.
func clampLat(deg float64) float64 {
	if deg > 90 {
		return 90
	}
	if deg < -90 {
		return -90
	}
	return deg
}

// Dist returns the distance from p to q under the metric. Euclidean
// is exactly math.Sqrt(p.Dist2(q)) — bit-identical to the k-d tree's
// ranking pipeline and to lbs.RankDist.
func (m Metric) Dist(p, q geom.Point) float64 {
	if m == Haversine {
		return NewHaversineQuery(p).Dist(q)
	}
	return math.Sqrt(p.Dist2(q))
}

// HaversineQuery caches the query-side trigonometry of a Haversine
// evaluation so search loops pay one Sincos per query instead of per
// candidate. Dist(b) computes the *canonical* Haversine expression —
// HaversineDist and Metric.Dist delegate to it — so every layer
// (tree ranking, wire records, federated merge) produces bit-identical
// distances for the same pair of points.
type HaversineQuery struct {
	lam, phi, cosPhi float64
}

// NewHaversineQuery prepares the query point q (lon°, lat°).
func NewHaversineQuery(q geom.Point) HaversineQuery {
	phi := clampLat(q.Y) * degToRad
	return HaversineQuery{lam: q.X * degToRad, phi: phi, cosPhi: math.Cos(phi)}
}

// CosLat returns cos of the query's clamped latitude (the query-side
// factor of the longitude pruning bound).
func (h HaversineQuery) CosLat() float64 { return h.cosPhi }

// Dist returns the great-circle distance from the query to b, in km.
func (h HaversineQuery) Dist(b geom.Point) float64 {
	phi2 := clampLat(b.Y) * degToRad
	sp := math.Sin((phi2 - h.phi) / 2)
	sl := math.Sin((b.X*degToRad - h.lam) / 2)
	hav := sp*sp + h.cosPhi*math.Cos(phi2)*(sl*sl)
	if hav > 1 {
		hav = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(hav))
}

// HaversineDist is the great-circle distance between two (lon°, lat°)
// points in km — the one canonical evaluation (see HaversineQuery).
func HaversineDist(a, b geom.Point) float64 {
	return NewHaversineQuery(a).Dist(b)
}

// LatSepLB lower-bounds the Haversine distance between any two points
// whose (clamped) latitudes differ by at least |qLat − lat| degrees:
// hav ≥ sin²(Δφ/2), so d ≥ 2R·asin(|sin(Δφ/2)|) = R·|Δφ| for clamped
// latitudes (|Δφ| ≤ 180°). Used as the splitting-plane bound on the
// latitude axis.
func LatSepLB(qLat, lat float64) float64 {
	return EarthRadiusKm * math.Abs(clampLat(qLat)-clampLat(lat)) * degToRad
}

// LonSepDeg returns the circular separation (degrees, in [0, 180])
// between longitude q and the longitude interval [lo, hi]: 0 when q
// falls inside the interval modulo 360°, else the shorter arc to the
// nearer endpoint.
func LonSepDeg(q, lo, hi float64) float64 {
	if hi-lo >= 360 {
		return 0
	}
	w := math.Mod(q-lo, 360)
	if w < 0 {
		w += 360
	}
	// w is q's offset into [lo, lo+360).
	if w <= hi-lo {
		return 0
	}
	return math.Min(w-(hi-lo), 360-w)
}

// LonSepLB lower-bounds the Haversine distance from a query (with
// cosQLat = cos of its clamped latitude) to any point whose longitude
// lies in [loLon, hiLon] and whose clamped latitude satisfies
// cos φ ≥ cosLatFloor: hav ≥ cos φ_q·cos φ·sin²(Δλ/2) and
// asin(x) ≥ x, so d ≥ 2R·√(cos φ_q·cosLatFloor)·sin(sep/2). A
// non-positive cosine product yields 0 (never prunes) — the graceful
// degradation for polar or out-of-domain data.
func LonSepLB(qLon, cosQLat, loLon, hiLon, cosLatFloor float64) float64 {
	c := cosQLat * cosLatFloor
	if c <= 0 {
		return 0
	}
	sep := LonSepDeg(qLon, loLon, hiLon)
	if sep <= 0 {
		return 0
	}
	return 2 * EarthRadiusKm * math.Sqrt(c) * math.Sin(sep/2*degToRad)
}

// CosLatFloor returns the minimum of cos over the clamped latitude
// interval [latMin, latMax] — the data-side factor of LonSepLB. For a
// k-d tree it is called with ±maxAbsLat; for a shard region with the
// region's latitude extent.
func CosLatFloor(latMin, latMax float64) float64 {
	a := math.Max(math.Abs(clampLat(latMin)), math.Abs(clampLat(latMax)))
	return math.Cos(a * degToRad)
}

// RectMinDist lower-bounds the distance from q to every point of
// rect. Euclidean is exact — math.Sqrt(q.Dist2(rect.Clamp(q))), the
// same Dist2+Sqrt pipeline the k-d tree ranks with, so monotonicity
// arguments over pruning decisions carry over unchanged. Haversine
// returns the larger of the latitude-separation and
// longitude-separation bounds; it is conservative (a true lower
// bound, possibly loose), which is the correct direction for
// scatter-gather pruning: a shard is skipped only when no tuple in
// its region can beat the bound.
func (m Metric) RectMinDist(q geom.Point, rect geom.Rect) float64 {
	if m != Haversine {
		return math.Sqrt(q.Dist2(rect.Clamp(q)))
	}
	latLB := 0.0
	qLat := clampLat(q.Y)
	if qLat < clampLat(rect.Min.Y) {
		latLB = LatSepLB(qLat, rect.Min.Y)
	} else if qLat > clampLat(rect.Max.Y) {
		latLB = LatSepLB(qLat, rect.Max.Y)
	}
	cosQ := math.Cos(qLat * degToRad)
	lonLB := LonSepLB(q.X, cosQ, rect.Min.X, rect.Max.X, CosLatFloor(rect.Min.Y, rect.Max.Y))
	return math.Max(latLB, lonLB)
}

// ExpandRect grows rect so that it contains every point within dist
// of rect under the metric. Euclidean is exactly rect.Expand(dist).
// Haversine converts the margin to degrees conservatively: latitude
// by km-per-degree, longitude by km-per-degree scaled by the cosine
// of the *expanded* rectangle's extreme latitude — over-covering at
// high latitude, which is the safe direction for cache invalidation
// (a dirty region may only grow). Near the poles the longitude
// margin degenerates to the full circle.
func (m Metric) ExpandRect(rect geom.Rect, dist float64) geom.Rect {
	if m != Haversine {
		return rect.Expand(dist)
	}
	if dist <= 0 {
		return rect
	}
	latMargin := dist / KmPerDeg
	out := rect
	out.Min.Y -= latMargin
	out.Max.Y += latMargin
	cos := CosLatFloor(out.Min.Y, out.Max.Y)
	lonMargin := 360.0
	if cos*KmPerDeg > 1e-12 {
		lonMargin = math.Min(360, dist/(KmPerDeg*cos))
	}
	out.Min.X -= lonMargin
	out.Max.X += lonMargin
	return out
}

// CellPitch returns the per-axis coordinate pitch of an answer-cache
// quantization cell whose target size is quantum (km under Haversine,
// plane units under Euclidean). Haversine cells are quantum/KmPerDeg
// degrees on both axes: exactly quantum km tall, and at most quantum
// km wide (longitude degrees shrink with latitude) — conservative for
// hit-sharing at high latitude, never the reverse.
func (m Metric) CellPitch(quantum float64) (px, py float64) {
	if m != Haversine {
		return quantum, quantum
	}
	return quantum / KmPerDeg, quantum / KmPerDeg
}

// Projection is the equirectangular local projection at a reference
// latitude φ₀: Forward maps (lon°, lat°) to kilometers on a plane via
// x′ = R·cos φ₀·λ_rad, y′ = R·φ_rad. It is the documented planar
// approximation for cell geometry in geodesic mode — Voronoi/cell
// ground truth runs on the projected plane, and MaxDistortion
// measures how far its planar distances stray from true great-circle
// distances over a given region.
type Projection struct {
	refLat float64 // degrees
	cosRef float64
}

// NewProjection returns the equirectangular projection centered at
// refLat degrees (typically the midpoint latitude of the region of
// interest).
func NewProjection(refLat float64) Projection {
	return Projection{refLat: clampLat(refLat), cosRef: math.Cos(clampLat(refLat) * degToRad)}
}

// RefLat returns the reference latitude in degrees.
func (p Projection) RefLat() float64 { return p.refLat }

// Forward maps a (lon°, lat°) point to the projected km plane.
func (p Projection) Forward(pt geom.Point) geom.Point {
	return geom.Pt(EarthRadiusKm*p.cosRef*pt.X*degToRad, EarthRadiusKm*pt.Y*degToRad)
}

// Inverse maps a projected km-plane point back to (lon°, lat°).
func (p Projection) Inverse(pt geom.Point) geom.Point {
	return geom.Pt(pt.X/(EarthRadiusKm*p.cosRef*degToRad), pt.Y/(EarthRadiusKm*degToRad))
}

// ForwardRect maps a degree-space rectangle to the projected plane.
func (p Projection) ForwardRect(r geom.Rect) geom.Rect {
	return geom.Rect{Min: p.Forward(r.Min), Max: p.Forward(r.Max)}
}

// MaxDistortion measures the worst relative error
// |planar − haversine| / haversine over `samples` deterministic
// point pairs drawn inside region (degree space) whose true distance
// is positive. It is how the README's projected-plane error-bound
// table is produced: the approximation error of running cell geometry
// on the projection is measured, not assumed.
func (p Projection) MaxDistortion(region geom.Rect, samples int, seed int64) float64 {
	// A tiny deterministic xorshift generator keeps this free of
	// math/rand churn across Go versions.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11) / float64(1<<53)
	}
	randPt := func() geom.Point {
		return geom.Pt(
			region.Min.X+next()*(region.Max.X-region.Min.X),
			region.Min.Y+next()*(region.Max.Y-region.Min.Y),
		)
	}
	worst := 0.0
	for i := 0; i < samples; i++ {
		a, b := randPt(), randPt()
		truth := HaversineDist(a, b)
		if truth < 1e-9 {
			continue
		}
		planar := math.Sqrt(p.Forward(a).Dist2(p.Forward(b)))
		if rel := math.Abs(planar-truth) / truth; rel > worst {
			worst = rel
		}
	}
	return worst
}
