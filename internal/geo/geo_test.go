package geo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// samplePoints draws n deterministic lat/lon points inside a region.
func samplePoints(r *rand.Rand, region geom.Rect, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			region.Min.X+r.Float64()*(region.Max.X-region.Min.X),
			region.Min.Y+r.Float64()*(region.Max.Y-region.Min.Y),
		)
	}
	return pts
}

var axiomRegion = geom.NewRect(geom.Pt(-170, -80), geom.Pt(170, 80))

// TestMetricAxioms checks identity, symmetry, non-negativity and the
// triangle inequality for both metrics on sampled point sets.
// Symmetry must hold bit-for-bit (the federation merge recomputes
// distances from the other endpoint); the triangle inequality gets a
// small floating-point allowance.
func TestMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := samplePoints(r, axiomRegion, 120)
	for _, m := range []Metric{Euclidean, Haversine} {
		for _, p := range pts {
			if d := m.Dist(p, p); d != 0 {
				t.Fatalf("%v: Dist(p,p) = %g, want 0", m, d)
			}
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				a, b := pts[i], pts[j]
				dab, dba := m.Dist(a, b), m.Dist(b, a)
				if dab != dba {
					t.Fatalf("%v: asymmetric: d(a,b)=%v d(b,a)=%v", m, dab, dba)
				}
				if dab < 0 {
					t.Fatalf("%v: negative distance %v", m, dab)
				}
				if a != b && dab == 0 {
					// Distinct sampled points must not collide (the
					// region avoids the poles and the antimeridian).
					t.Fatalf("%v: d=0 for distinct points %v %v", m, a, b)
				}
			}
		}
		// Triangle inequality over sampled triples.
		for k := 0; k < 4000; k++ {
			a := pts[r.Intn(len(pts))]
			b := pts[r.Intn(len(pts))]
			c := pts[r.Intn(len(pts))]
			dac, dab, dbc := m.Dist(a, c), m.Dist(a, b), m.Dist(b, c)
			if dac > dab+dbc+1e-9*(1+dac) {
				t.Fatalf("%v: triangle violated: d(a,c)=%v > %v + %v", m, dac, dab, dbc)
			}
		}
	}
}

// TestHaversineAntipodalAndClamp exercises the degenerate corners:
// antipodal points cap at half the circumference, and latitudes
// outside [-90, 90] (planar data queried geodesically) clamp instead
// of wrapping.
func TestHaversineAntipodalAndClamp(t *testing.T) {
	half := math.Pi * EarthRadiusKm
	if d := HaversineDist(geom.Pt(0, 0), geom.Pt(180, 0)); math.Abs(d-half) > 1e-6 {
		t.Fatalf("antipodal distance %v, want %v", d, half)
	}
	// Clamped: lat 95 behaves as lat 90.
	if d1, d2 := HaversineDist(geom.Pt(0, 95), geom.Pt(10, 40)), HaversineDist(geom.Pt(0, 90), geom.Pt(10, 40)); d1 != d2 {
		t.Fatalf("lat clamp: d(95°)=%v d(90°)=%v", d1, d2)
	}
	// Longitude wraps: λ and λ+360 are the same meridian.
	if d1, d2 := HaversineDist(geom.Pt(-170, 10), geom.Pt(175, 20)), HaversineDist(geom.Pt(190, 10), geom.Pt(175, 20)); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("lon wrap: %v vs %v", d1, d2)
	}
}

// TestEuclideanDistBitIdentical pins the Euclidean metric to the
// exact expression the ranking pipeline has always used.
func TestEuclideanDistBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := geom.Pt(r.NormFloat64()*100, r.NormFloat64()*100)
		b := geom.Pt(r.NormFloat64()*100, r.NormFloat64()*100)
		if got, want := Euclidean.Dist(a, b), math.Sqrt(a.Dist2(b)); got != want {
			t.Fatalf("Euclidean.Dist = %v, want Sqrt(Dist2) = %v", got, want)
		}
	}
}

// TestHaversineSmallScaleConvergence: at small separations the
// great-circle distance converges to the local equirectangular
// (latitude-scaled Euclidean) distance. 1 km offsets at mid latitude
// must agree to within 0.01% relative error.
func TestHaversineSmallScaleConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		lat := -60 + r.Float64()*120
		lon := -170 + r.Float64()*340
		a := geom.Pt(lon, lat)
		// Offset up to ~1 km in each axis.
		dLat := (r.Float64()*2 - 1) / KmPerDeg
		dLon := (r.Float64()*2 - 1) / (KmPerDeg * math.Cos(lat*math.Pi/180))
		b := geom.Pt(lon+dLon, lat+dLat)
		hav := HaversineDist(a, b)
		proj := NewProjection(lat)
		planar := math.Sqrt(proj.Forward(a).Dist2(proj.Forward(b)))
		if hav < 1e-6 {
			continue
		}
		if rel := math.Abs(hav-planar) / hav; rel > 1e-4 {
			t.Fatalf("small-scale divergence %.2e at lat=%v (hav=%v planar=%v)", rel, lat, hav, planar)
		}
	}
}

// TestLonSepDeg pins the circular interval separation.
func TestLonSepDeg(t *testing.T) {
	cases := []struct {
		q, lo, hi, want float64
	}{
		{5, 0, 10, 0},      // inside
		{15, 0, 10, 5},     // right of interval
		{-3, 0, 10, 3},     // left of interval
		{355, 0, 10, 5},    // wraps to the lo side
		{185, 0, 10, 175},  // far side, nearer hi going backwards? min(175, 175)
		{0, -180, 180, 0},  // full circle
		{90, 170, 190, 80}, // interval crossing the antimeridian
	}
	for _, c := range cases {
		if got := LonSepDeg(c.q, c.lo, c.hi); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("LonSepDeg(%v, [%v,%v]) = %v, want %v", c.q, c.lo, c.hi, got, c.want)
		}
	}
	// Property: separation to a sub-interval is >= separation to the
	// full interval (supersets only shrink the bound — the direction
	// pruning relies on).
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		lo := r.Float64()*360 - 180
		hi := lo + r.Float64()*350
		q := r.Float64()*720 - 360
		mid := lo + r.Float64()*(hi-lo)
		if LonSepDeg(q, lo, hi) > LonSepDeg(q, mid, hi)+1e-9 {
			t.Fatalf("superset separation larger: q=%v [%v,%v] vs [%v,%v]", q, lo, hi, mid, hi)
		}
	}
}

// TestHaversineLowerBounds verifies that the pruning primitives are
// true lower bounds: for random queries and random points, the
// latitude-separation and longitude-separation bounds never exceed
// the actual distance.
func TestHaversineLowerBounds(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	// Include out-of-range latitudes to exercise the clamping path.
	region := geom.NewRect(geom.Pt(-200, -100), geom.Pt(200, 100))
	pts := samplePoints(r, region, 200)
	for i := 0; i < len(pts); i++ {
		for j := 0; j < len(pts); j++ {
			q, p := pts[i], pts[j]
			d := HaversineDist(q, p)
			if lb := LatSepLB(q.Y, p.Y); lb > d+1e-9 {
				t.Fatalf("LatSepLB %v > dist %v (q=%v p=%v)", lb, d, q, p)
			}
			cosQ := math.Cos(clampLat(q.Y) * degToRad)
			floor := CosLatFloor(p.Y, p.Y)
			if lb := LonSepLB(q.X, cosQ, p.X, p.X, floor); lb > d+1e-9 {
				t.Fatalf("LonSepLB %v > dist %v (q=%v p=%v)", lb, d, q, p)
			}
		}
	}
}

// TestRectMinDist verifies conservativeness for both metrics: the
// bound never exceeds the distance to any sampled point inside the
// rectangle, and Euclidean matches the historical clamp expression
// exactly.
func TestRectMinDist(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		rect := geom.NewRect(
			geom.Pt(r.Float64()*300-150, r.Float64()*150-75),
			geom.Pt(r.Float64()*300-150, r.Float64()*150-75),
		)
		q := geom.Pt(r.Float64()*720-360, r.Float64()*200-100)
		inside := samplePoints(r, rect, 40)
		for _, m := range []Metric{Euclidean, Haversine} {
			lb := m.RectMinDist(q, rect)
			for _, p := range inside {
				if d := m.Dist(q, p); lb > d+1e-9 {
					t.Fatalf("%v: RectMinDist %v > dist %v (q=%v p=%v rect=%+v)", m, lb, d, q, p, rect)
				}
			}
		}
		if got, want := Euclidean.RectMinDist(q, rect), math.Sqrt(q.Dist2(rect.Clamp(q))); got != want {
			t.Fatalf("Euclidean RectMinDist = %v, want clamp expression %v", got, want)
		}
	}
}

// TestExpandRect verifies the covering property: every point within
// dist of the original rectangle lands inside the expanded one.
func TestExpandRect(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		rect := geom.NewRect(
			geom.Pt(r.Float64()*100-50, r.Float64()*120-60),
			geom.Pt(r.Float64()*100-50, r.Float64()*120-60),
		)
		dist := r.Float64() * 200 // km under Haversine
		for _, m := range []Metric{Euclidean, Haversine} {
			grown := m.ExpandRect(rect, dist)
			// Sample points near the rect; any within dist of a rect
			// point must be contained.
			for i := 0; i < 60; i++ {
				base := geom.Pt(
					rect.Min.X+r.Float64()*(rect.Max.X-rect.Min.X),
					rect.Min.Y+r.Float64()*(rect.Max.Y-rect.Min.Y),
				)
				probe := geom.Pt(base.X+(r.Float64()*8-4), base.Y+(r.Float64()*8-4))
				if m.Dist(base, probe) <= dist && !grown.Contains(probe) {
					t.Fatalf("%v: probe %v within %v of %v not covered by %+v", m, probe, dist, base, grown)
				}
			}
		}
		if got, want := Euclidean.ExpandRect(rect, dist), rect.Expand(dist); got != want {
			t.Fatalf("Euclidean ExpandRect = %+v, want Expand %+v", got, want)
		}
	}
}

// TestCellPitch pins the cache quantization pitches: Euclidean is the
// quantum itself on both axes; Haversine cells are quantum km of
// latitude and at most quantum km of longitude.
func TestCellPitch(t *testing.T) {
	px, py := Euclidean.CellPitch(2.5)
	if px != 2.5 || py != 2.5 {
		t.Fatalf("Euclidean pitch = %v,%v", px, py)
	}
	px, py = Haversine.CellPitch(2.5)
	if math.Abs(py*KmPerDeg-2.5) > 1e-12 {
		t.Fatalf("Haversine lat pitch = %v deg (%v km)", py, py*KmPerDeg)
	}
	// Lon cell width in km at latitude φ is px·KmPerDeg·cosφ ≤ quantum.
	for _, lat := range []float64{0, 30, 60, 85} {
		if w := px * KmPerDeg * math.Cos(lat*math.Pi/180); w > 2.5+1e-12 {
			t.Fatalf("lon cell %v km wide at lat %v", w, lat)
		}
	}
}

// TestParseMetric pins the wire names.
func TestParseMetric(t *testing.T) {
	for s, want := range map[string]Metric{
		"": Euclidean, "euclidean": Euclidean, "haversine": Haversine, "geodesic": Haversine,
	} {
		got, err := ParseMetric(s)
		if err != nil || got != want {
			t.Fatalf("ParseMetric(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMetric("manhattan"); err == nil {
		t.Fatal("ParseMetric accepted an unknown name")
	}
	if Euclidean.String() != "euclidean" || Haversine.String() != "haversine" {
		t.Fatal("String() names drifted")
	}
}

// TestProjectionRoundTrip: Forward∘Inverse is identity to float
// precision.
func TestProjectionRoundTrip(t *testing.T) {
	proj := NewProjection(40)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		p := geom.Pt(r.Float64()*360-180, r.Float64()*180-90)
		back := proj.Inverse(proj.Forward(p))
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	}
}

// TestProjectionErrorBounds pins the projected-plane error-bound
// table documented in the README: the worst relative distance error
// of the equirectangular projection, measured over square metro-scale
// regions centered at the reference latitude. These are the error
// budgets under which cell/voronoi ground truth runs in geodesic
// mode; if the projection changes, this pin and the README table move
// together.
func TestProjectionErrorBounds(t *testing.T) {
	cases := []struct {
		lat, sideKm, maxRel float64
	}{
		{25, 50, 2.0e-3},
		{25, 200, 8.0e-3},
		{40, 50, 3.5e-3},
		{40, 200, 1.4e-2},
		{60, 50, 7.0e-3},
		{60, 200, 2.9e-2},
	}
	for _, c := range cases {
		proj := NewProjection(c.lat)
		halfLat := c.sideKm / 2 / KmPerDeg
		halfLon := c.sideKm / 2 / (KmPerDeg * math.Cos(c.lat*math.Pi/180))
		region := geom.NewRect(geom.Pt(-halfLon, c.lat-halfLat), geom.Pt(halfLon, c.lat+halfLat))
		got := proj.MaxDistortion(region, 4000, 1)
		if got > c.maxRel {
			t.Errorf("lat %v side %v km: distortion %.2e exceeds documented bound %.0e", c.lat, c.sideKm, got, c.maxRel)
		}
		if got == 0 {
			t.Errorf("lat %v side %v km: distortion 0 — sampler broken", c.lat, c.sideKm)
		}
	}
}
