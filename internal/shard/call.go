package shard

// call.go — the resilient member-call pipeline every subquery goes
// through: breaker bookkeeping, a per-attempt deadline that bounds
// wedged members, hedged duplicate requests on slow attempts, and
// bounded jittered retry of transient failures. Retries and hedges
// re-use the logical budget unit reserved before the scatter — the
// meter is charged per answered query, never per attempt.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/lbs"
)

// ErrShardTimeout marks a member call abandoned at the ShardTimeout
// deadline (the member may still be grinding; its late answer is
// dropped). Not transient: retrying a wedged member would just burn
// another deadline — the breaker handles persistent wedges.
var ErrShardTimeout = errors.New("shard: member call timed out")

// ErrNoShards is returned when every member's breaker is open: the
// federation has no healthy shard left to own the query.
var ErrNoShards = errors.New("shard: no healthy shard available")

// ErrOwnerDown is the crisp typed failure of a query whose owning
// shard could not answer. Degraded merging covers non-owner members;
// the owner's candidates anchor the fan-out bound, so without them
// the router refuses to fabricate an answer. errors.Is(err,
// ErrOwnerDown) matches through OwnerDownError.
var ErrOwnerDown = errors.New("shard: owner shard unavailable")

// OwnerDownError carries which member failed as the query's owner and
// why.
type OwnerDownError struct {
	Shard int
	Err   error
}

func (e *OwnerDownError) Error() string {
	return fmt.Sprintf("shard: owner shard %d unavailable: %v", e.Shard, e.Err)
}

func (e *OwnerDownError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrOwnerDown) classify the failure without
// callers knowing the concrete type.
func (e *OwnerDownError) Is(target error) bool { return target == ErrOwnerDown }

// availabilityClass reports whether a member failure speaks to the
// member's health (engaging breaker/degraded machinery) rather than
// to the request itself. A spent member budget and a caller that gave
// up are not the shard's fault — those abort the scatter crisply,
// exactly as before the resilience layer existed.
func (r *Router) availabilityClass(ctx context.Context, err error) bool {
	if err == nil || lbs.IsPartial(err) {
		return false
	}
	if errors.Is(err, lbs.ErrBudgetExhausted) {
		return false
	}
	return ctx.Err() == nil
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptResult carries one attempt's answer across the hedge race.
type attemptResult[T any] struct {
	v   T
	err error
}

// attempt runs f once against member si under the ShardTimeout
// deadline, hedging a duplicate request (to the Replica when the
// shard has one, else the same member) once the attempt outlives the
// shard's recent latency quantile. The first success wins; a wedged
// or silent member costs at most the deadline. f must honor its
// context on remote transports; members that ignore it merely keep a
// goroutine grinding until they answer — the caller is unblocked at
// the deadline either way, which is the wedge guarantee.
func attempt[T any](r *Router, ctx context.Context, si int, probe bool,
	f func(ctx context.Context, q lbs.Querier) (T, error)) (T, error) {

	var zero T
	h := r.health[si]
	cctx := ctx
	if r.res.ShardTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, r.res.ShardTimeout)
		defer cancel()
	}

	var hedgeC <-chan time.Time
	if !probe && r.res.HedgeQuantile > 0 {
		if d, ok := h.hedgeDelay(r.res.HedgeQuantile); ok {
			if d < r.res.HedgeMin {
				d = r.res.HedgeMin
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			hedgeC = timer.C
		}
	}

	// No deadline and no hedge: call inline, zero goroutines — the
	// clean fast path stays allocation-identical to the old scatter.
	if r.res.ShardTimeout <= 0 && hedgeC == nil {
		t0 := time.Now()
		v, err := f(cctx, r.shards[si].Querier)
		h.observe(time.Since(t0))
		return v, err
	}

	ch := make(chan attemptResult[T], 2)
	run := func(q lbs.Querier) {
		t0 := time.Now()
		v, err := f(cctx, q)
		h.observe(time.Since(t0))
		ch <- attemptResult[T]{v: v, err: err}
	}
	go run(r.shards[si].Querier)
	outstanding := 1
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil || lbs.IsPartial(res.err) || outstanding == 0 {
				return res.v, res.err
			}
			// The first answer failed but a hedge is still in
			// flight — it may yet succeed.
		case <-hedgeC:
			hedgeC = nil
			r.hedges.Add(1)
			alt := r.shards[si].Replica
			if alt == nil {
				alt = r.shards[si].Querier
			}
			outstanding++
			go run(alt)
		case <-cctx.Done():
			if ctx.Err() != nil {
				return zero, ctx.Err()
			}
			return zero, fmt.Errorf("%w (shard %d after %v)", ErrShardTimeout, si, r.res.ShardTimeout)
		}
	}
}

// memberCall is the full pipeline: attempts with bounded jittered
// retry of transient failures, then breaker bookkeeping on the final
// outcome. A partial annotation from a member (itself a nested
// federation) counts as success — the answer is usable and the
// annotation propagates to the caller.
func memberCall[T any](r *Router, ctx context.Context, si int, probe bool,
	f func(ctx context.Context, q lbs.Querier) (T, error)) (T, error) {

	h := r.health[si]
	attempts := 1 + r.res.MaxRetries
	if probe {
		attempts = 1
	}
	var zero T
	var last error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retries.Add(1)
			if d := backoffDelay(r.rng, r.res.RetryBase, r.res.RetryMax, a); d > 0 {
				if err := sleepCtx(ctx, d); err != nil {
					break
				}
			}
		}
		v, err := attempt(r, ctx, si, probe, f)
		if err == nil || lbs.IsPartial(err) {
			h.onSuccess(probe)
			return v, err
		}
		last = err
		if ctx.Err() != nil || !lbs.IsTransient(err) {
			break
		}
	}
	if r.availabilityClass(ctx, last) {
		h.onFailure(probe, r.res.BreakerThreshold, time.Now())
	} else if probe {
		h.releaseProbe()
	}
	return zero, last
}
