package shard

// Geodesic federation pins: a Router over 1/2/4/8 shards of a
// 10k-tuple geodesic city answers bit-identically to a single Service
// over the union database, serial and batch, with and without a
// MaxRadius cutoff — the same equivalence property the Euclidean
// suite pins, under the Haversine metric where the router's
// scatter-gather ball bounds come from the lune lower bounds instead
// of planar rect distance.

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func TestFederatedEquivalenceGeodesic(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-tuple equivalence sweep")
	}
	scenarios := []struct {
		name string
		db   *lbs.Database
		opts lbs.Options
	}{
		{"geo-us-zipf-k10", workload.GeoUS(10000, 31, workload.DensityZipf).DB,
			lbs.Options{K: 10, Metric: geo.Haversine}},
		{"geo-us-gauss-radius", workload.GeoUS(10000, 32, workload.DensityGauss).DB,
			lbs.Options{K: 5, MaxRadius: 120, Metric: geo.Haversine}},
		{"geo-china-zipf-k4", workload.GeoChina(10000, 33, workload.DensityZipf).DB,
			lbs.Options{K: 4, Metric: geo.Haversine}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			for _, n := range shardCounts {
				parts := Partition(sc.db, n)
				pts := testPoints(rng, sc.db, parts, 30)
				// High-latitude and antimeridian probes stress the
				// geodesic scatter bounds beyond what the generic mix
				// covers.
				pts = append(pts,
					geom.Pt(sc.db.Bounds().Min.X, 84),
					geom.Pt(179.5, 40), geom.Pt(-179.5, 40))
				checkEquivalence(t, sc.db, sc.opts, n, pts, nil)
			}
		})
	}
}
