package shard

// health.go — the per-member health machinery of a resilient Router:
// the consecutive-failure circuit breaker that health-gates routing,
// and the latency window behind hedged requests.

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Resilience configures the Router's fault-tolerance: per-shard call
// deadlines, bounded retry of transient failures, hedged requests and
// the per-shard circuit breaker. The zero value disables everything —
// the pre-resilience scatter behavior plus degraded-mode merging.
// NewRouter applies DefaultResilience; NewRouterWithResilience takes
// an explicit one.
type Resilience struct {
	// ShardTimeout bounds each member subquery (one attempt,
	// including all its hedges). A wedged member costs at most this
	// long before it is treated as failed. 0 = no deadline.
	ShardTimeout time.Duration

	// MaxRetries re-issues a member call up to this many extra times
	// when it fails transiently (lbs.IsTransient). Retries re-use the
	// already-reserved logical budget unit — the meter is charged
	// once per answered query, never per attempt. 0 = no retries.
	MaxRetries int
	// RetryBase seeds the exponential backoff between retries;
	// RetryMax caps it. Waits are uniformly jittered in [d/2, d].
	RetryBase time.Duration
	RetryMax  time.Duration

	// HedgeQuantile launches a duplicate request — to the shard's
	// Replica when it has one, else re-asking the same member — once
	// an attempt has been in flight longer than this quantile of the
	// shard's recent latencies (e.g. 0.95); the first answer wins.
	// 0 disables hedging.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay, so a burst of fast answers
	// cannot make the router hedge pathologically early.
	HedgeMin time.Duration

	// BreakerThreshold opens a shard's breaker after this many
	// consecutive failed calls; an open shard is routed around
	// (ownership moves to the nearest healthy region, fan-outs skip
	// it and mark the answer partial). 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before it
	// half-opens and admits a single probe call: a successful probe
	// closes it, a failed one re-opens it for another cooldown.
	BreakerCooldown time.Duration

	// Seed makes backoff jitter deterministic for tests; 0 derives
	// jitter from the global PRNG.
	Seed int64
}

// DefaultResilience is the sane default NewRouter applies: 10 s shard
// deadline, two transient retries with 2 ms–250 ms jittered backoff,
// hedging off (it trades extra upstream queries for tail latency —
// opt in where that trade is right), breaker at 5 consecutive
// failures with a 1 s cooldown.
func DefaultResilience() Resilience {
	return Resilience{
		ShardTimeout:     10 * time.Second,
		MaxRetries:       2,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         250 * time.Millisecond,
		HedgeMin:         5 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  time.Second,
	}
}

// BreakerState is a shard breaker's observable state.
type BreakerState string

const (
	// BreakerClosed: healthy, calls flow.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: routed around until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: cooldown elapsed (or a probe is in flight) —
	// the next eligible call is a probe.
	BreakerHalfOpen BreakerState = "half-open"
)

// latWindowSize is the per-shard latency ring behind the hedge
// quantile; latWindowMin is how many observations it needs before
// hedging engages (too few and the quantile is noise).
const (
	latWindowSize = 64
	latWindowMin  = 16
)

// shardHealth tracks one member's breaker and latency window.
type shardHealth struct {
	mu sync.Mutex

	open     bool
	probing  bool // a half-open probe is in flight
	openedAt time.Time
	fails    int // consecutive failures while closed

	// Cumulative counters for Stats.
	failures int64
	opens    int64

	lat  [latWindowSize]time.Duration
	latN int // total observations (ring index = latN % size)
}

// state derives the observable breaker state at time now.
func (h *shardHealth) state(now time.Time, cooldown time.Duration) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stateLocked(now, cooldown)
}

func (h *shardHealth) stateLocked(now time.Time, cooldown time.Duration) BreakerState {
	if !h.open {
		return BreakerClosed
	}
	if h.probing || !now.Before(h.openedAt.Add(cooldown)) {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// admit decides whether a call to this member may proceed now.
// Closed → yes. Open within the cooldown → no. Half-open → one probe
// at a time: the first caller gets probe=true, the rest are refused
// until the probe settles.
func (h *shardHealth) admit(now time.Time, cooldown time.Duration) (ok, probe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return true, false
	}
	if h.probing || now.Before(h.openedAt.Add(cooldown)) {
		return false, false
	}
	h.probing = true
	return true, true
}

// ownable reports whether this member may be chosen as a query's
// owner: only closed breakers. A half-open member is probed through
// fan-out calls, where its failure degrades the answer instead of
// failing the query crisply.
func (h *shardHealth) ownable() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.open
}

// releaseProbe hands back an admitted-but-unused probe slot (e.g. a
// batch scatter that found no positions to probe with, or a probe
// aborted by caller cancellation before it said anything about the
// member's health).
func (h *shardHealth) releaseProbe() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

// snapshot reports the observable state plus cumulative counters.
func (h *shardHealth) snapshot(now time.Time, cooldown time.Duration) (BreakerState, int64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stateLocked(now, cooldown), h.failures, h.opens
}

// onSuccess records a successful call: a probe success (or any
// success) closes the breaker and resets the failure streak.
func (h *shardHealth) onSuccess(probe bool) {
	h.mu.Lock()
	h.open = false
	h.probing = false
	h.fails = 0
	h.mu.Unlock()
}

// onFailure records a failed availability-class call. A failed probe
// re-opens immediately; while closed, the consecutive-failure count
// trips the breaker at threshold. threshold ≤ 0 disables tripping.
func (h *shardHealth) onFailure(probe bool, threshold int, now time.Time) {
	h.mu.Lock()
	h.failures++
	if probe {
		h.probing = false
		h.openedAt = now
		h.opens++
		h.mu.Unlock()
		return
	}
	if h.open {
		h.mu.Unlock()
		return
	}
	h.fails++
	if threshold > 0 && h.fails >= threshold {
		h.open = true
		h.openedAt = now
		h.opens++
	}
	h.mu.Unlock()
}

// observe records one attempt's latency in the ring.
func (h *shardHealth) observe(d time.Duration) {
	h.mu.Lock()
	h.lat[h.latN%latWindowSize] = d
	h.latN++
	h.mu.Unlock()
}

// hedgeDelay returns the q-quantile of the recent latency window, or
// ok=false while the window is too small to trust.
func (h *shardHealth) hedgeDelay(q float64) (time.Duration, bool) {
	h.mu.Lock()
	n := h.latN
	if n > latWindowSize {
		n = latWindowSize
	}
	if n < latWindowMin {
		h.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, h.lat[:n])
	h.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return buf[idx], true
}

// lockedRand is the router's jitter source (math/rand.Rand is not
// safe for concurrent use).
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = rand.Int63()
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}

// backoffDelay is the jittered exponential backoff before retry
// attempt a (a ≥ 1): base·2^(a−1) capped at max, jittered uniformly
// in [d/2, d] — the same shape the HTTP client's RetryPolicy uses.
func backoffDelay(r *lockedRand, base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(r.Int63n(int64(d/2)+1))
}
