package shard

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// BenchmarkFederatedQuery measures the federated QueryLR path over a
// 10k-tuple database at 1/2/4/8 in-process shards. shards=1 is the
// degenerate federation (pure routing overhead over one member);
// higher counts trade smaller per-shard k-d trees against two-phase
// fan-out. Reported alongside the geometry suite via `make bench-fed`
// and tracked in BENCH_federation.json.
func BenchmarkFederatedQuery(b *testing.B) {
	db := workload.USASchools(10000, 1).DB
	bounds := db.Bounds()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4", 8: "shards=8"}[n], func(b *testing.B) {
			router, err := NewLocal(db, lbs.Options{K: 10}, n)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			pts := make([]geom.Point, 1024)
			for i := range pts {
				pts[i] = geom.Pt(
					bounds.Min.X+rng.Float64()*bounds.Width(),
					bounds.Min.Y+rng.Float64()*bounds.Height())
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := router.QueryLR(ctx, pts[i%len(pts)], nil); err != nil {
					b.Fatal(err)
				}
			}
			st := router.Stats()
			b.ReportMetric(float64(st.Upstream)/float64(st.Logical), "fanout/query")
		})
	}
}

// BenchmarkFederatedBatch measures the batched federation path (one
// logical batch of 64 points per op) at the same shard counts.
func BenchmarkFederatedBatch(b *testing.B) {
	db := workload.USASchools(10000, 1).DB
	bounds := db.Bounds()
	for _, n := range []int{1, 4} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[n], func(b *testing.B) {
			router, err := NewLocal(db, lbs.Options{K: 10}, n)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			pts := make([]geom.Point, 64)
			for i := range pts {
				pts[i] = geom.Pt(
					bounds.Min.X+rng.Float64()*bounds.Width(),
					bounds.Min.Y+rng.Float64()*bounds.Height())
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := router.QueryLRBatch(ctx, pts, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
