package shard

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// TestConcurrentFederatedBatchesShareBudget hammers one federated
// budget from many goroutines issuing batches concurrently (run under
// -race by `make test`): the CAS reservation must hand out exactly
// Budget answered positions across all batches, never more, and the
// logical counter must never overshoot.
func TestConcurrentFederatedBatchesShareBudget(t *testing.T) {
	db := workload.USASchools(300, 61).DB
	const budget = 200
	router, err := NewLocal(db, lbs.Options{K: 4, Budget: budget}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := db.Bounds()

	const workers = 8
	const batchesPerWorker = 10
	const batchSize = 7 // workers×batches×size = 560 demanded of 200

	var answered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batchesPerWorker; i++ {
				pts := make([]geom.Point, batchSize)
				for j := range pts {
					pts[j] = geom.Pt(b.Min.X+rng.Float64()*b.Width(), b.Min.Y+rng.Float64()*b.Height())
				}
				out, err := router.QueryLRBatch(ctx, pts, nil)
				if err != nil && !errors.Is(err, lbs.ErrBudgetExhausted) {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				for _, recs := range out {
					if recs != nil {
						answered.Add(1)
					}
				}
				if c := router.QueryCount(); c > budget {
					t.Errorf("logical count %d overshot budget %d", c, budget)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := answered.Load(); got != budget {
		t.Fatalf("answered %d positions across concurrent batches, want exactly %d", got, budget)
	}
	if c := router.QueryCount(); c != budget {
		t.Fatalf("final logical count %d, want %d", c, budget)
	}
}
