// Package shard scales the simulated LBS out horizontally: a spatial
// partitioner splits one lbs.Database into N disjoint shard databases,
// and a Router federates any set of shard queriers — in-process
// services or remote HTTP upstreams — back into a single lbs.Querier
// whose answers are bit-identical to a lone service over the union
// database.
//
// The partitioning scheme is recursive longest-axis median splitting
// (the standard spatial scale-out move, cf. the LSST multi-petabyte
// partitioning design): each split divides the current region at a
// tuple-population median along its longer axis, so the N regions tile
// the original bounds exactly and carry balanced tuple counts even
// under heavily skewed workloads.
//
// Federated queries run as two-phase scatter-gather (see Router):
// phase one asks the shard owning the query point for its candidates
// and derives the k-th-neighbor distance bound; phase two fans out
// only to shards whose regions intersect that ball, merges all
// candidates by (dist, ID) — the service ordering contract — and
// re-applies the rank/prominence selection.
package shard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Partition splits db into n disjoint shard databases by recursive
// longest-axis median splits over db.Bounds(). The returned databases'
// Bounds() are the shard regions: they tile db.Bounds() exactly
// (adjacent regions share their boundary line), every tuple is
// assigned to exactly one shard, and every tuple's effective (possibly
// obfuscated) location lies inside its shard's region — the invariant
// the Router's ball-intersection pruning relies on. Effective
// locations are carried over verbatim via NewDatabaseWithLocations, so
// an obfuscated database shards without re-deriving its jitter.
//
// Shards with zero tuples are legal (n larger than the tuple count, or
// extreme skew): they answer every query with an empty result.
func Partition(db *lbs.Database, n int) []*lbs.Database {
	if n < 1 {
		panic(fmt.Sprintf("shard: Partition needs n ≥ 1, got %d", n))
	}
	idxs := make([]int, db.Len())
	for i := range idxs {
		idxs[i] = i
	}
	out := make([]*lbs.Database, 0, n)
	splitRecursive(db, db.Bounds(), idxs, n, &out)
	return out
}

// splitRecursive divides (region, idxs) into n parts appended to out.
func splitRecursive(db *lbs.Database, region geom.Rect, idxs []int, n int, out *[]*lbs.Database) {
	if n == 1 {
		*out = append(*out, buildPart(db, region, idxs))
		return
	}
	nl := n / 2
	nr := n - nl

	// Split along the region's longer axis at the population point
	// dividing the tuples proportionally to the part counts.
	axis := 0
	if region.Height() > region.Width() {
		axis = 1
	}
	coord := func(i int) float64 {
		p := db.EffectiveLoc(i)
		if axis == 0 {
			return p.X
		}
		return p.Y
	}
	sort.Slice(idxs, func(a, b int) bool {
		ca, cb := coord(idxs[a]), coord(idxs[b])
		if ca != cb {
			return ca < cb
		}
		return db.Tuple(idxs[a]).ID < db.Tuple(idxs[b]).ID
	})
	cut := len(idxs) * nl / n
	// The split coordinate: the first tuple of the right part, or the
	// geometric midpoint when a side is empty. Both child regions keep
	// the split line, so tuples sitting exactly on it are inside their
	// region whichever side the population cut put them on.
	var s float64
	if cut > 0 && cut < len(idxs) {
		s = coord(idxs[cut])
	} else if axis == 0 {
		s = region.Min.X + region.Width()/2
	} else {
		s = region.Min.Y + region.Height()/2
	}
	var left, right geom.Rect
	if axis == 0 {
		left = geom.Rect{Min: region.Min, Max: geom.Pt(s, region.Max.Y)}
		right = geom.Rect{Min: geom.Pt(s, region.Min.Y), Max: region.Max}
	} else {
		left = geom.Rect{Min: region.Min, Max: geom.Pt(region.Max.X, s)}
		right = geom.Rect{Min: geom.Pt(region.Min.X, s), Max: region.Max}
	}
	splitRecursive(db, left, idxs[:cut], nl, out)
	splitRecursive(db, right, idxs[cut:], nr, out)
}

// buildPart materializes one shard database. The leaf region grows to
// cover any tuple lying outside it — NewDatabase accepts tuples
// outside Bounds(), and such strays sort into an edge shard whose
// clipped region would not contain them, which would let the Router's
// ball pruning skip the shard that owns the true nearest tuple. For
// in-bounds data (every generated workload; obfuscated locations are
// clamped) the growth is a no-op and regions tile Bounds() exactly.
func buildPart(db *lbs.Database, region geom.Rect, idxs []int) *lbs.Database {
	tuples := make([]lbs.Tuple, len(idxs))
	effective := make([]geom.Point, len(idxs))
	for j, i := range idxs {
		tuples[j] = *db.Tuple(i)
		effective[j] = db.EffectiveLoc(i)
		p := effective[j]
		region.Min.X = math.Min(region.Min.X, p.X)
		region.Min.Y = math.Min(region.Min.Y, p.Y)
		region.Max.X = math.Max(region.Max.X, p.X)
		region.Max.Y = math.Max(region.Max.Y, p.Y)
	}
	return lbs.NewDatabaseWithLocations(region, tuples, effective)
}

// NewLocal partitions db into n in-process shard services behind a
// Router configured with the given logical service options — the
// one-call path from a database to a federated service ("lbsserve
// -shards n"). The shard services are built as plain distance-ranked
// candidate sources (K = the router's candidate count, shared
// MaxRadius, no budget or limiter of their own); the router owns the
// logical budget, rate limiter and rank/prominence selection, so the
// composite behaves exactly like NewService(db, opts).
func NewLocal(db *lbs.Database, opts lbs.Options, n int) (*Router, error) {
	return FromParts(Partition(db, n), opts)
}

// FromParts is NewLocal over an existing partition: it builds fresh
// shard services (and their counters) without re-partitioning or
// re-indexing the databases. Callers that run many independent
// federated sessions over one dataset — the experiment harness
// constructs a fresh service per run — partition once and rebuild
// only this cheap layer.
func FromParts(parts []*lbs.Database, opts lbs.Options) (*Router, error) {
	return FromPartsWrapped(parts, opts, DefaultResilience(), nil)
}

// FromPartsWrapped is FromParts with an explicit Resilience and an
// optional per-member wrap hook: each shard service is passed through
// wrap (when non-nil) before registration, so callers can interpose a
// fault injector, an instrumentation layer or a cache in front of
// individual members — the chaos harness and "lbsserve -fault-spec"
// both build their faulted federations through this.
func FromPartsWrapped(parts []*lbs.Database, opts lbs.Options, res Resilience, wrap func(i int, q lbs.Querier) lbs.Querier) (*Router, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	shards := make([]Shard, len(parts))
	for i, p := range parts {
		var q lbs.Querier = lbs.NewService(p, lbs.Options{K: candidateK(norm), MaxRadius: norm.MaxRadius, Metric: norm.Metric})
		if wrap != nil {
			q = wrap(i, q)
		}
		shards[i] = Shard{Querier: q, Region: p.Bounds()}
	}
	return NewRouterWithResilience(shards, opts, res)
}
