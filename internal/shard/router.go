package shard

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// Shard is one federation member: a querier answering distance-ranked
// candidate queries for the tuples whose effective locations lie in
// Region. In-process members are *lbs.Service views over a Partition
// piece; remote members are httpapi clients whose Region is the
// upstream's Bounds().
//
// Members must be distance-ranked candidate sources: QueryLR returns
// their K() nearest tuples by (dist, ID) with locations. The Router
// applies the logical rank/prominence selection itself, which is what
// keeps federated answers bit-identical to a single service — a
// member that pre-applies its own prominence re-ranking (or hides
// locations) cannot be federated exactly.
type Shard struct {
	Querier lbs.Querier
	Region  geom.Rect
	// Replica, when set, is a sibling serving the same tuples; hedged
	// requests go to it instead of re-asking the primary. It must
	// answer bit-identically to Querier (same tuples, same K).
	Replica lbs.Querier
}

// ShardStat is the per-member slice of a Router's stats surface.
type ShardStat struct {
	// Region is the member's coverage rectangle.
	Region geom.Rect
	// Queries is the member's lifetime physical query count.
	Queries int64
	// State is the member's breaker state (closed / open / half-open).
	State BreakerState
	// Failures counts availability-class call failures (cumulative);
	// Opens counts how many times the breaker tripped.
	Failures int64
	Opens    int64
}

// RouterStats snapshots a Router's cost accounting and health: logical
// queries charged against the federated budget, total physical
// subqueries fanned out, resilience counters, and the per-shard
// breakdown.
type RouterStats struct {
	// Logical is the number of client-visible queries answered (the
	// paper's cost metric; what the budget meters).
	Logical int64
	// Upstream is the number of physical subqueries the router issued
	// across all shards; Upstream/Logical is the effective fan-out.
	Upstream int64
	// Partial counts logical queries answered degraded (a relevant
	// member was skipped or failed); Dropped counts batch positions
	// that got no answer because their owner was down.
	Partial int64
	Dropped int64
	// Retries and Hedges count extra member attempts the resilience
	// layer issued.
	Retries int64
	Hedges  int64
	// Shards is the per-member breakdown, in shard order.
	Shards []ShardStat
}

// Router federates N shards behind the lbs.Querier interface using
// two-phase scatter-gather:
//
//  1. The shard owning the query point (nearest healthy region) is
//     asked for its candidates; when it returns a full candidate set,
//     the distance of its last candidate bounds how far a better
//     candidate can hide in another shard.
//  2. The query fans out only to shards whose regions intersect the
//     closed ball of that radius; all candidates merge by (dist, ID) —
//     the service ordering contract — and the logical rank/prominence
//     selection is re-applied over the merged set.
//
// Every tuple within the bound lies in some contacted shard (regions
// cover their tuples' effective locations), and per-shard candidate
// lists are (dist, ID)-prefixes of the union's, so the merged answer
// is bit-identical to a single lbs.Service over the union database —
// including out-of-bounds query points, which route to the nearest
// region and are answered from the full federation like any other.
//
// Under partial failure the router degrades instead of failing: member
// calls run through the resilience pipeline (deadline, retry, hedge —
// see Resilience), a member that still fails is recorded by its
// circuit breaker and routed around once the breaker opens, and a
// query whose fan-out lost a relevant member returns the survivors'
// merge annotated with *lbs.PartialError. Only the owner is
// indispensable — its candidates anchor the bound — so an owner
// failure is a crisp typed error (ErrOwnerDown) instead of a fabricated
// answer.
//
// The Router owns the logical cost model: its Budget and Limiter meter
// client-visible queries (one unit per answered point, however wide
// the fan-out), and QueryCount reports them. Degraded answers are
// charged (they are answers); dropped batch positions are refunded.
// Shard members keep their own physical counters, aggregated by
// Stats. Shards must hold pairwise-disjoint tuple sets (Partition
// guarantees it; remote deployments must not register overlapping
// upstreams). A Router is safe for concurrent use whenever its
// members are.
type Router struct {
	shards []Shard
	opts   lbs.Options
	res    Resilience
	want   int // distance candidates needed per logical query
	bounds geom.Rect

	meter  *lbs.Meter
	health []*shardHealth
	rng    *lockedRand

	fanout  atomic.Int64
	partial atomic.Int64
	dropped atomic.Int64
	retries atomic.Int64
	hedges  atomic.Int64
}

var _ lbs.Querier = (*Router)(nil)

// candidateK returns how many distance candidates one logical query
// needs from a shard (see lbs.Options.CandidateCount).
func candidateK(norm lbs.Options) int { return norm.CandidateCount() }

// NewRouter federates shards behind the logical service options with
// DefaultResilience. K, MaxRadius, Budget, Limiter and the
// rank/prominence fields describe the service the federation
// presents, exactly as lbs.Options does for NewService. Every member
// must answer at least the router's candidate count (K, or
// K×overfetch under prominence rank).
func NewRouter(shards []Shard, opts lbs.Options) (*Router, error) {
	return NewRouterWithResilience(shards, opts, DefaultResilience())
}

// NewRouterWithResilience is NewRouter with an explicit fault-
// tolerance configuration (the zero Resilience disables deadlines,
// retries, hedging and the breaker while keeping degraded-mode
// merging).
func NewRouterWithResilience(shards []Shard, opts lbs.Options, res Resilience) (*Router, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: NewRouter needs at least one shard")
	}
	want := candidateK(norm)
	bounds := shards[0].Region
	for i, sh := range shards {
		if sh.Querier == nil {
			return nil, fmt.Errorf("shard: shard %d has no querier", i)
		}
		if k := sh.Querier.K(); k < want {
			return nil, fmt.Errorf("shard: shard %d answers k=%d, federation needs ≥ %d candidates", i, k, want)
		}
		if sh.Replica != nil && sh.Replica.K() < want {
			return nil, fmt.Errorf("shard: shard %d replica answers k=%d, federation needs ≥ %d candidates", i, sh.Replica.K(), want)
		}
		bounds.Min.X = math.Min(bounds.Min.X, sh.Region.Min.X)
		bounds.Min.Y = math.Min(bounds.Min.Y, sh.Region.Min.Y)
		bounds.Max.X = math.Max(bounds.Max.X, sh.Region.Max.X)
		bounds.Max.Y = math.Max(bounds.Max.Y, sh.Region.Max.Y)
	}
	health := make([]*shardHealth, len(shards))
	for i := range health {
		health[i] = &shardHealth{}
	}
	return &Router{
		shards: shards, opts: norm, res: res, want: want, bounds: bounds,
		meter:  lbs.NewMeter(norm.Budget, norm.Limiter),
		health: health,
		rng:    newLockedRand(res.Seed),
	}, nil
}

// Bounds implements lbs.Querier: the union of the shard regions.
func (r *Router) Bounds() geom.Rect { return r.bounds }

// K implements lbs.Querier (the logical top-k).
func (r *Router) K() int { return r.opts.K }

// Metric returns the distance metric the federation ranks by (every
// member service carries the same one).
func (r *Router) Metric() geo.Metric { return r.opts.Metric }

// NumShards returns the federation width.
func (r *Router) NumShards() int { return len(r.shards) }

// Members returns the per-shard backend queriers (including any
// wrappers installed via FromPartsWrapped, such as fault injectors),
// so observability layers can walk each member chain for optional
// stats interfaces the router itself does not aggregate.
func (r *Router) Members() []lbs.Querier {
	out := make([]lbs.Querier, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.Querier
	}
	return out
}

// QueryCount implements lbs.Querier: logical queries answered.
func (r *Router) QueryCount() int64 { return r.meter.Count() }

// RemainingBudget returns how many logical queries may still be
// issued, or −1 for unlimited.
func (r *Router) RemainingBudget() int64 { return r.meter.Remaining() }

// VirtualWaited returns the total virtual time the router's rate
// limiter imposed (0 without a Limiter).
func (r *Router) VirtualWaited() time.Duration { return r.meter.VirtualWaited() }

// DegradedCount returns how many logical queries were answered from a
// partial federation — the contamination metric the estimation layers
// fold into traces and job views.
func (r *Router) DegradedCount() int64 { return r.partial.Load() }

// Stats snapshots the router's cost accounting and member health.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Logical:  r.meter.Count(),
		Upstream: r.fanout.Load(),
		Partial:  r.partial.Load(),
		Dropped:  r.dropped.Load(),
		Retries:  r.retries.Load(),
		Hedges:   r.hedges.Load(),
		Shards:   make([]ShardStat, len(r.shards)),
	}
	now := time.Now()
	for i, sh := range r.shards {
		state, failures, opens := r.health[i].snapshot(now, r.res.BreakerCooldown)
		st.Shards[i] = ShardStat{
			Region: sh.Region, Queries: sh.Querier.QueryCount(),
			State: state, Failures: failures, Opens: opens,
		}
	}
	return st
}

// chargeN reserves up to n logical units against the router's budget
// (see lbs.Meter.ChargeN — the same cost model a single Service runs).
func (r *Router) chargeN(ctx context.Context, n int64) (int64, error) {
	return r.meter.ChargeN(ctx, n)
}

// refund hands back logical units whose queries a shard failure left
// unanswered, so upstream failures never leak federated budget
// (virtual limiter time, already advanced, is not unwound).
func (r *Router) refund(n int64) { r.meter.Refund(n) }

// minDist lower-bounds the distance from q to the nearest point of
// rect under the router's metric (geo.Metric.RectMinDist). Euclidean
// is the exact Dist2+Sqrt clamp expression the k-d tree ranks with —
// correctly-rounded float monotonicity then guarantees that a shard
// is pruned only if every tuple inside its region is strictly farther
// than the bound. Haversine is a conservative (possibly loose) lower
// bound, which preserves the same guarantee: pruning can only skip
// shards that provably cannot contribute.
func (r *Router) minDist(q geom.Point, rect geom.Rect) float64 {
	return r.opts.Metric.RectMinDist(q, rect)
}

// rankDist is the merge key in the router's metric (see
// lbs.Options.RankDist: the k-d tree's canonical distance pipeline,
// not the Hypot wire distance).
func (r *Router) rankDist(q geom.Point, rec *lbs.LRRecord) float64 {
	return r.opts.RankDist(q, rec)
}

// breakerOn reports whether health gating is active.
func (r *Router) breakerOn() bool { return r.res.BreakerThreshold > 0 }

// pickOwner picks the phase-one shard for a query point: the shard
// whose region is nearest (first wins ties) among members whose
// breaker is not open — health-gated routing moves ownership of a
// dead member's region to its nearest healthy neighbor. Ownership is
// a routing heuristic only (any choice yields the same merged
// answer over the reachable members), but it must be total, so
// federation defines QueryLR for every point on the plane — which is
// also why it deliberately stays planar Dist2 proximity under every
// metric: the phase-two bound derived from any owner's full answer is
// valid, so the metric only needs to govern minDist and rankDist.
// ok=false means every breaker is open.
func (r *Router) pickOwner(q geom.Point) (int, bool) {
	best, bestD := -1, math.Inf(1)
	for i, sh := range r.shards {
		if r.breakerOn() && !r.health[i].ownable() {
			continue
		}
		d := q.Dist2(sh.Region.Clamp(q))
		if d < bestD {
			best, bestD = i, d
			if d == 0 {
				break
			}
		}
	}
	return best, best >= 0
}

// boundFor derives the phase-two fan-out radius from the owner's
// answer: the distance of the owner's want-th candidate when the owner
// answered in full (no better candidate can hide farther away), else
// the coverage radius, else unbounded.
func (r *Router) boundFor(q geom.Point, ownerRecs []lbs.LRRecord) float64 {
	bound := math.Inf(1)
	if r.opts.MaxRadius > 0 {
		bound = r.opts.MaxRadius
	}
	if len(ownerRecs) >= r.want {
		if d := r.rankDist(q, &ownerRecs[r.want-1]); d < bound {
			bound = d
		}
	}
	return bound
}

// selectTop applies the logical selection over the collected per-shard
// candidate lists: merge by (dist, ID) and re-apply the rank /
// prominence selection — lbs.MergeRanked, the one shared
// implementation of the selection every composite front applies.
func (r *Router) selectTop(q geom.Point, lists ...[]lbs.LRRecord) []lbs.LRRecord {
	return lbs.MergeRanked(q, r.opts, lists...)
}

// fanOutAll runs one subquery per target shard — concurrently when
// there is more than one target, since remote members each pay a
// network round-trip and the merge is completion-order independent
// (selectTop imposes the total (dist, ID) order). Results and errors
// come back index-aligned with targets; the caller classifies each
// failure instead of the first error winning. Members are required to
// be safe for concurrent use (the lbs.Querier contract).
func fanOutAll[T any](targets []int, f func(j, si int) (T, error)) ([]T, []error) {
	out := make([]T, len(targets))
	errs := make([]error, len(targets))
	switch len(targets) {
	case 0:
		return out, errs
	case 1:
		out[0], errs[0] = f(0, targets[0])
		return out, errs
	}
	var wg sync.WaitGroup
	for j, si := range targets {
		wg.Add(1)
		go func(j, si int) {
			defer wg.Done()
			out[j], errs[j] = f(j, si)
		}(j, si)
	}
	wg.Wait()
	return out, errs
}

// queryMember is the single-point member call: one subquery through
// the resilience pipeline, counted in the physical fan-out.
func (r *Router) queryMember(ctx context.Context, si int, probe bool, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	return memberCall(r, ctx, si, probe, func(c context.Context, mq lbs.Querier) ([]lbs.LRRecord, error) {
		recs, err := mq.QueryLR(c, q, filter)
		r.fanout.Add(1)
		return recs, err
	})
}

// scatterOne runs the two-phase scatter-gather for one (already
// charged) logical query. The answer may carry a *lbs.PartialError
// annotation when a relevant non-owner member was skipped (breaker
// open) or failed after retries.
func (r *Router) scatterOne(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	owner, ok := r.pickOwner(q)
	if !ok {
		return nil, ErrNoShards
	}
	ownerRecs, err := r.queryMember(ctx, owner, false, q, filter)
	missing := 0
	var firstErr error
	if pe, isPartial := lbs.AsPartial(err); isPartial {
		// A nested federation answered degraded: usable, but the
		// annotation propagates.
		missing += pe.Missing
		firstErr = err
	} else if err != nil {
		if !r.availabilityClass(ctx, err) {
			return nil, err
		}
		return nil, &OwnerDownError{Shard: owner, Err: err}
	}
	bound := r.boundFor(q, ownerRecs)
	lists := [][]lbs.LRRecord{ownerRecs}
	var targets []int
	var probes, inBall []bool
	now := time.Now()
	for i := range r.shards {
		if i == owner {
			continue
		}
		ball := r.minDist(q, r.shards[i].Region) <= bound
		admitted, probe := true, false
		if r.breakerOn() {
			admitted, probe = r.health[i].admit(now, r.res.BreakerCooldown)
		}
		if !admitted {
			if ball {
				missing++
			}
			continue
		}
		if !ball && !probe {
			continue
		}
		targets = append(targets, i)
		probes = append(probes, probe)
		inBall = append(inBall, ball)
	}
	answers, errs := fanOutAll(targets, func(j, si int) ([]lbs.LRRecord, error) {
		return r.queryMember(ctx, si, probes[j], q, filter)
	})
	for j := range targets {
		err := errs[j]
		if err == nil || lbs.IsPartial(err) {
			lists = append(lists, answers[j])
			if pe, isPartial := lbs.AsPartial(err); isPartial {
				missing += pe.Missing
				if firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		if !r.availabilityClass(ctx, err) {
			return nil, err
		}
		if inBall[j] {
			// A relevant member failed after retries: answer from
			// the survivors, annotated.
			missing++
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	merged := r.selectTop(q, lists...)
	if missing > 0 {
		r.partial.Add(1)
		return merged, &lbs.PartialError{Degraded: 1, Missing: missing, Err: firstErr}
	}
	return merged, nil
}

// batchScatterState accumulates per-point outcomes across the two
// phases of a batch scatter.
type batchScatterState struct {
	owners  []int
	dropped []bool // owner down: no answer, unit refunded by caller
	missing []int  // relevant members lost per point
	phase1  [][]lbs.LRRecord
	lists   [][][]lbs.LRRecord

	missCalls int // member subquery failures/skips, for the annotation
	firstErr  error
}

// scatterBatch is scatterOne over m points with per-shard batching:
// phase-one queries group by owning shard (one batch per shard), and
// phase-two fan-outs group the (point, shard) pairs the ball test
// selects into one batch per shard — so a federated batch costs at
// most 2·N shard round-trips however many points it carries.
//
// Failures degrade per position: a failed owner batch drops only its
// own points (nil answers — the caller refunds exactly those units),
// and a failed phase-two batch marks its points' answers partial. The
// returned error is nil for a full answer, a *lbs.PartialError when
// any position was degraded or dropped, or the crisp underlying error
// when the failure class aborts the whole batch (spent member budget,
// canceled caller).
func (r *Router) scatterBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	st := &batchScatterState{
		owners:  make([]int, len(pts)),
		dropped: make([]bool, len(pts)),
		missing: make([]int, len(pts)),
		phase1:  make([][]lbs.LRRecord, len(pts)),
		lists:   make([][][]lbs.LRRecord, len(pts)),
	}
	group := make([][]int, len(r.shards))
	for i, q := range pts {
		o, ok := r.pickOwner(q)
		if !ok {
			return nil, ErrNoShards
		}
		st.owners[i] = o
		group[o] = append(group[o], i)
	}
	// Phase 1: owner batches. An owner batch that fails drops its
	// positions; the rest of the batch proceeds.
	err := r.shardBatches(ctx, pts, filter, group, nil,
		func(pos int, recs []lbs.LRRecord, degraded bool) {
			st.phase1[pos] = recs
			st.lists[pos] = append(st.lists[pos], recs)
			if degraded {
				st.missing[pos]++
			}
		},
		func(si int, err error) {
			st.missCalls++
			for _, pos := range group[si] {
				st.dropped[pos] = true
			}
			if st.firstErr == nil {
				st.firstErr = &OwnerDownError{Shard: si, Err: err}
			}
		})
	if err != nil {
		return nil, err
	}
	// Phase 2: ball-test fan-out, skipping open breakers (each skip
	// degrades the positions it would have covered).
	bounds := make([]float64, len(pts))
	for i, q := range pts {
		if !st.dropped[i] {
			bounds[i] = r.boundFor(q, st.phase1[i])
		}
	}
	need := make([][]int, len(r.shards))
	probes := make([]bool, len(r.shards))
	now := time.Now()
	for si := range r.shards {
		admitted, probe := true, false
		if r.breakerOn() {
			admitted, probe = r.health[si].admit(now, r.res.BreakerCooldown)
		}
		if !admitted {
			for i, q := range pts {
				if st.dropped[i] || si == st.owners[i] {
					continue
				}
				if r.minDist(q, r.shards[si].Region) <= bounds[i] {
					st.missing[i]++
				}
			}
			st.missCalls++
			continue
		}
		for i, q := range pts {
			if st.dropped[i] || si == st.owners[i] {
				continue
			}
			if r.minDist(q, r.shards[si].Region) <= bounds[i] {
				need[si] = append(need[si], i)
			}
		}
		probes[si] = probe
		if probe && len(need[si]) == 0 {
			r.health[si].releaseProbe()
			probes[si] = false
		}
	}
	err = r.shardBatches(ctx, pts, filter, need, probes,
		func(pos int, recs []lbs.LRRecord, degraded bool) {
			st.lists[pos] = append(st.lists[pos], recs)
			if degraded {
				st.missing[pos]++
			}
		},
		func(si int, err error) {
			st.missCalls++
			for _, pos := range need[si] {
				st.missing[pos]++
			}
			if st.firstErr == nil {
				st.firstErr = err
			}
		})
	if err != nil {
		return nil, err
	}
	out := make([][]lbs.LRRecord, len(pts))
	degraded, droppedN := 0, 0
	for i := range pts {
		if st.dropped[i] {
			droppedN++
			continue
		}
		out[i] = r.selectTop(pts[i], st.lists[i]...)
		if st.missing[i] > 0 {
			degraded++
		}
	}
	if degraded == 0 && droppedN == 0 {
		return out, nil
	}
	r.partial.Add(int64(degraded))
	r.dropped.Add(int64(droppedN))
	return out, &lbs.PartialError{
		Degraded: degraded, Dropped: droppedN, Missing: st.missCalls, Err: st.firstErr,
	}
}

// shardBatches issues one batch per involved shard — concurrently
// across shards via fanOutAll — for the grouped point positions, then
// hands every answer back through sink (sequentially, so sinks need no
// locking). probes marks per-shard half-open trials (nil = none). A
// shard whose batch fails with an availability-class error is reported
// through onErr and the rest proceed; any other failure aborts and is
// returned. A member's own partial annotation flows through as
// degraded=true on each of its answers.
func (r *Router) shardBatches(ctx context.Context, pts []geom.Point, filter lbs.Filter,
	group [][]int, probes []bool,
	sink func(pos int, recs []lbs.LRRecord, degraded bool),
	onErr func(si int, err error)) error {

	var targets []int
	for si, positions := range group {
		if len(positions) > 0 {
			targets = append(targets, si)
		}
	}
	answers, errs := fanOutAll(targets, func(j, si int) ([][]lbs.LRRecord, error) {
		probe := probes != nil && probes[si]
		return memberCall(r, ctx, si, probe, func(c context.Context, mq lbs.Querier) ([][]lbs.LRRecord, error) {
			positions := group[si]
			sub := make([]geom.Point, len(positions))
			for j, p := range positions {
				sub[j] = pts[p]
			}
			a, err := mq.QueryLRBatch(c, sub, filter)
			r.fanout.Add(int64(len(sub)))
			return a, err
		})
	})
	for t, si := range targets {
		err := errs[t]
		if err != nil && !lbs.IsPartial(err) {
			if !r.availabilityClass(ctx, err) {
				return err
			}
			onErr(si, err)
			continue
		}
		degraded := lbs.IsPartial(err)
		for j, p := range group[si] {
			sink(p, answers[t][j], degraded)
		}
	}
	return nil
}

// QueryLR implements lbs.Querier: one logical unit of budget, however
// wide the physical fan-out. A degraded answer keeps its charge (it is
// an answer, annotated with *lbs.PartialError); a failed query refunds
// the unit.
func (r *Router) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if _, err := r.chargeN(ctx, 1); err != nil {
		return nil, err
	}
	recs, err := r.scatterOne(ctx, q, filter)
	if err != nil && !lbs.IsPartial(err) {
		r.refund(1)
		return nil, err
	}
	return recs, err
}

// QueryLNR implements lbs.Querier: the federated LNR answer is the LR
// answer with locations withheld at the router — federation members
// must expose locations (the router is service-side infrastructure;
// the LNR restriction applies to the federation's public interface,
// not between its shards).
func (r *Router) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	recs, err := r.QueryLR(ctx, q, filter)
	if err != nil && !lbs.IsPartial(err) {
		return nil, err
	}
	return stripLocations(recs), err
}

// stripLocations converts an LR answer to its rank-only view.
func stripLocations(recs []lbs.LRRecord) []lbs.LNRRecord {
	return lbs.StripLocations(recs)
}

// QueryLRBatch implements lbs.Querier with Service batch semantics:
// one atomic logical reservation, index-aligned answers, nil entries
// past a mid-batch budget death alongside ErrBudgetExhausted. Shard
// failures degrade per position — answered positions (including
// degraded ones) keep their charge, and only the units of positions
// that got no answer are refunded.
func (r *Router) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	out := make([][]lbs.LRRecord, len(pts))
	granted, gerr := r.chargeN(ctx, int64(len(pts)))
	if granted == 0 {
		return out, gerr
	}
	answers, serr := r.scatterBatch(ctx, pts[:granted], filter)
	if serr != nil && !lbs.IsPartial(serr) {
		r.refund(granted)
		return make([][]lbs.LRRecord, len(pts)), serr
	}
	var answered int64
	for i, recs := range answers {
		if recs != nil {
			out[i] = recs
			answered++
		}
	}
	r.refund(granted - answered)
	if gerr != nil {
		// A partial *grant* dominates the annotation: positions past
		// the granted prefix are nil-with-ErrBudgetExhausted, the
		// contract every batch caller already understands.
		return out, gerr
	}
	return out, serr
}

// QueryLNRBatch is the rank-only twin of QueryLRBatch.
func (r *Router) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	lr, err := r.QueryLRBatch(ctx, pts, filter)
	out := make([][]lbs.LNRRecord, len(lr))
	for i, recs := range lr {
		if recs != nil {
			out[i] = stripLocations(recs)
		}
	}
	return out, err
}
