package shard

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Shard is one federation member: a querier answering distance-ranked
// candidate queries for the tuples whose effective locations lie in
// Region. In-process members are *lbs.Service views over a Partition
// piece; remote members are httpapi clients whose Region is the
// upstream's Bounds().
//
// Members must be distance-ranked candidate sources: QueryLR returns
// their K() nearest tuples by (dist, ID) with locations. The Router
// applies the logical rank/prominence selection itself, which is what
// keeps federated answers bit-identical to a single service — a
// member that pre-applies its own prominence re-ranking (or hides
// locations) cannot be federated exactly.
type Shard struct {
	Querier lbs.Querier
	Region  geom.Rect
}

// ShardStat is the per-member slice of a Router's stats surface.
type ShardStat struct {
	// Region is the member's coverage rectangle.
	Region geom.Rect
	// Queries is the member's lifetime physical query count.
	Queries int64
}

// RouterStats snapshots a Router's cost accounting: logical queries
// charged against the federated budget, total physical subqueries
// fanned out, and the per-shard breakdown.
type RouterStats struct {
	// Logical is the number of client-visible queries answered (the
	// paper's cost metric; what the budget meters).
	Logical int64
	// Upstream is the number of physical subqueries the router issued
	// across all shards; Upstream/Logical is the effective fan-out.
	Upstream int64
	// Shards is the per-member breakdown, in shard order.
	Shards []ShardStat
}

// Router federates N shards behind the lbs.Querier interface using
// two-phase scatter-gather:
//
//  1. The shard owning the query point (nearest region) is asked for
//     its candidates; when it returns a full candidate set, the
//     distance of its last candidate bounds how far a better candidate
//     can hide in another shard.
//  2. The query fans out only to shards whose regions intersect the
//     closed ball of that radius; all candidates merge by (dist, ID) —
//     the service ordering contract — and the logical rank/prominence
//     selection is re-applied over the merged set.
//
// Every tuple within the bound lies in some contacted shard (regions
// cover their tuples' effective locations), and per-shard candidate
// lists are (dist, ID)-prefixes of the union's, so the merged answer
// is bit-identical to a single lbs.Service over the union database —
// including out-of-bounds query points, which route to the nearest
// region and are answered from the full federation like any other.
//
// The Router owns the logical cost model: its Budget and Limiter meter
// client-visible queries (one unit per answered point, however wide
// the fan-out), and QueryCount reports them. Shard members keep their
// own physical counters, aggregated by Stats. Shards must hold
// pairwise-disjoint tuple sets (Partition guarantees it; remote
// deployments must not register overlapping upstreams). A Router is
// safe for concurrent use whenever its members are.
type Router struct {
	shards []Shard
	opts   lbs.Options
	want   int // distance candidates needed per logical query
	bounds geom.Rect

	meter  *lbs.Meter
	fanout atomic.Int64
}

var _ lbs.Querier = (*Router)(nil)

// candidateK returns how many distance candidates one logical query
// needs from a shard (see lbs.Options.CandidateCount).
func candidateK(norm lbs.Options) int { return norm.CandidateCount() }

// NewRouter federates shards behind the logical service options: K,
// MaxRadius, Budget, Limiter and the rank/prominence fields describe
// the service the federation presents, exactly as lbs.Options does for
// NewService. Every member must answer at least the router's candidate
// count (K, or K×overfetch under prominence rank).
func NewRouter(shards []Shard, opts lbs.Options) (*Router, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: NewRouter needs at least one shard")
	}
	want := candidateK(norm)
	bounds := shards[0].Region
	for i, sh := range shards {
		if sh.Querier == nil {
			return nil, fmt.Errorf("shard: shard %d has no querier", i)
		}
		if k := sh.Querier.K(); k < want {
			return nil, fmt.Errorf("shard: shard %d answers k=%d, federation needs ≥ %d candidates", i, k, want)
		}
		bounds.Min.X = math.Min(bounds.Min.X, sh.Region.Min.X)
		bounds.Min.Y = math.Min(bounds.Min.Y, sh.Region.Min.Y)
		bounds.Max.X = math.Max(bounds.Max.X, sh.Region.Max.X)
		bounds.Max.Y = math.Max(bounds.Max.Y, sh.Region.Max.Y)
	}
	return &Router{
		shards: shards, opts: norm, want: want, bounds: bounds,
		meter: lbs.NewMeter(norm.Budget, norm.Limiter),
	}, nil
}

// Bounds implements lbs.Querier: the union of the shard regions.
func (r *Router) Bounds() geom.Rect { return r.bounds }

// K implements lbs.Querier (the logical top-k).
func (r *Router) K() int { return r.opts.K }

// NumShards returns the federation width.
func (r *Router) NumShards() int { return len(r.shards) }

// QueryCount implements lbs.Querier: logical queries answered.
func (r *Router) QueryCount() int64 { return r.meter.Count() }

// RemainingBudget returns how many logical queries may still be
// issued, or −1 for unlimited.
func (r *Router) RemainingBudget() int64 { return r.meter.Remaining() }

// VirtualWaited returns the total virtual time the router's rate
// limiter imposed (0 without a Limiter).
func (r *Router) VirtualWaited() time.Duration { return r.meter.VirtualWaited() }

// Stats snapshots the router's cost accounting.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Logical:  r.meter.Count(),
		Upstream: r.fanout.Load(),
		Shards:   make([]ShardStat, len(r.shards)),
	}
	for i, sh := range r.shards {
		st.Shards[i] = ShardStat{Region: sh.Region, Queries: sh.Querier.QueryCount()}
	}
	return st
}

// chargeN reserves up to n logical units against the router's budget
// (see lbs.Meter.ChargeN — the same cost model a single Service runs).
func (r *Router) chargeN(ctx context.Context, n int64) (int64, error) {
	return r.meter.ChargeN(ctx, n)
}

// refund hands back logical units whose queries a shard failure left
// unanswered, so transient upstream errors never leak federated
// budget (virtual limiter time, already advanced, is not unwound).
func (r *Router) refund(n int64) { r.meter.Refund(n) }

// minDist returns the distance from q to the nearest point of rect,
// computed with the same Dist2+Sqrt pipeline the k-d tree ranks with:
// correctly-rounded float monotonicity then guarantees that a shard is
// pruned only if every tuple inside its region is strictly farther
// than the bound.
func minDist(q geom.Point, rect geom.Rect) float64 {
	return math.Sqrt(q.Dist2(rect.Clamp(q)))
}

// rankDist is the merge key (see lbs.RankDist: Sqrt of Dist2, the k-d
// tree's pipeline, not the Hypot wire distance).
func rankDist(q geom.Point, rec *lbs.LRRecord) float64 {
	return lbs.RankDist(q, rec)
}

// ownerOf picks the phase-one shard for a query point: the shard whose
// region is nearest (first wins ties), which is the containing shard
// for in-bounds points and the closest region for points outside every
// region. Ownership is a routing heuristic only — any choice yields
// the same merged answer — but it must be total so federation defines
// QueryLR for every point on the plane, like a single service does.
func (r *Router) ownerOf(q geom.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, sh := range r.shards {
		d := q.Dist2(sh.Region.Clamp(q))
		if d < bestD {
			best, bestD = i, d
			if d == 0 {
				break
			}
		}
	}
	return best
}

// boundFor derives the phase-two fan-out radius from the owner's
// answer: the distance of the owner's want-th candidate when the owner
// answered in full (no better candidate can hide farther away), else
// the coverage radius, else unbounded.
func (r *Router) boundFor(q geom.Point, ownerRecs []lbs.LRRecord) float64 {
	bound := math.Inf(1)
	if r.opts.MaxRadius > 0 {
		bound = r.opts.MaxRadius
	}
	if len(ownerRecs) >= r.want {
		if d := rankDist(q, &ownerRecs[r.want-1]); d < bound {
			bound = d
		}
	}
	return bound
}

// selectTop applies the logical selection over the collected per-shard
// candidate lists: merge by (dist, ID) and re-apply the rank /
// prominence selection — lbs.MergeRanked, the one shared
// implementation of the selection every composite front applies.
func (r *Router) selectTop(q geom.Point, lists ...[]lbs.LRRecord) []lbs.LRRecord {
	return lbs.MergeRanked(q, r.opts, lists...)
}

// fanOut runs one subquery per target shard — concurrently when there
// is more than one target, since remote members each pay a network
// round-trip and the merge is completion-order independent (selectTop
// imposes the total (dist, ID) order). Results come back in target
// order; the first error wins. Members are required to be safe for
// concurrent use (the lbs.Querier contract).
func fanOut[T any](targets []int, f func(si int) (T, error)) ([]T, error) {
	out := make([]T, len(targets))
	switch len(targets) {
	case 0:
		return out, nil
	case 1:
		v, err := f(targets[0])
		if err != nil {
			return nil, err
		}
		out[0] = v
		return out, nil
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for j, si := range targets {
		wg.Add(1)
		go func(j, si int) {
			defer wg.Done()
			out[j], errs[j] = f(si)
		}(j, si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scatterOne runs the two-phase scatter-gather for one (already
// charged) logical query.
func (r *Router) scatterOne(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	owner := r.ownerOf(q)
	ownerRecs, err := r.shards[owner].Querier.QueryLR(ctx, q, filter)
	r.fanout.Add(1)
	if err != nil {
		return nil, err
	}
	bound := r.boundFor(q, ownerRecs)
	lists := [][]lbs.LRRecord{ownerRecs}
	var targets []int
	for i := range r.shards {
		if i == owner || minDist(q, r.shards[i].Region) > bound {
			continue
		}
		targets = append(targets, i)
	}
	answers, err := fanOut(targets, func(si int) ([]lbs.LRRecord, error) {
		recs, err := r.shards[si].Querier.QueryLR(ctx, q, filter)
		r.fanout.Add(1)
		return recs, err
	})
	if err != nil {
		return nil, err
	}
	lists = append(lists, answers...)
	return r.selectTop(q, lists...), nil
}

// scatterBatch is scatterOne over m points with per-shard batching:
// phase-one queries group by owning shard (one batch per shard), and
// phase-two fan-outs group the (point, shard) pairs the ball test
// selects into one batch per shard — so a federated batch costs at
// most 2·N shard round-trips however many points it carries.
func (r *Router) scatterBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	owners := make([]int, len(pts))
	group := make([][]int, len(r.shards))
	for i, q := range pts {
		o := r.ownerOf(q)
		owners[i] = o
		group[o] = append(group[o], i)
	}
	lists := make([][][]lbs.LRRecord, len(pts))
	phase1 := make([][]lbs.LRRecord, len(pts))
	if err := r.shardBatches(ctx, pts, filter, group, func(pos int, recs []lbs.LRRecord) {
		phase1[pos] = recs
		lists[pos] = append(lists[pos], recs)
	}); err != nil {
		return nil, err
	}
	need := make([][]int, len(r.shards))
	for i, q := range pts {
		bound := r.boundFor(q, phase1[i])
		for si := range r.shards {
			if si == owners[i] || minDist(q, r.shards[si].Region) > bound {
				continue
			}
			need[si] = append(need[si], i)
		}
	}
	if err := r.shardBatches(ctx, pts, filter, need, func(pos int, recs []lbs.LRRecord) {
		lists[pos] = append(lists[pos], recs)
	}); err != nil {
		return nil, err
	}
	out := make([][]lbs.LRRecord, len(pts))
	for i := range pts {
		out[i] = r.selectTop(pts[i], lists[i]...)
	}
	return out, nil
}

// shardBatches issues one batch per involved shard — concurrently
// across shards via fanOut — for the grouped point positions, then
// hands every answer back through sink (sequentially, so sinks need
// no locking).
func (r *Router) shardBatches(ctx context.Context, pts []geom.Point, filter lbs.Filter,
	group [][]int, sink func(pos int, recs []lbs.LRRecord)) error {

	var targets []int
	for si, positions := range group {
		if len(positions) > 0 {
			targets = append(targets, si)
		}
	}
	answers, err := fanOut(targets, func(si int) ([][]lbs.LRRecord, error) {
		positions := group[si]
		sub := make([]geom.Point, len(positions))
		for j, p := range positions {
			sub[j] = pts[p]
		}
		a, err := r.shards[si].Querier.QueryLRBatch(ctx, sub, filter)
		r.fanout.Add(int64(len(sub)))
		return a, err
	})
	if err != nil {
		return err
	}
	for t, si := range targets {
		for j, p := range group[si] {
			sink(p, answers[t][j])
		}
	}
	return nil
}

// QueryLR implements lbs.Querier: one logical unit of budget, however
// wide the physical fan-out. A shard failure refunds the unit.
func (r *Router) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if _, err := r.chargeN(ctx, 1); err != nil {
		return nil, err
	}
	recs, err := r.scatterOne(ctx, q, filter)
	if err != nil {
		r.refund(1)
		return nil, err
	}
	return recs, nil
}

// QueryLNR implements lbs.Querier: the federated LNR answer is the LR
// answer with locations withheld at the router — federation members
// must expose locations (the router is service-side infrastructure;
// the LNR restriction applies to the federation's public interface,
// not between its shards).
func (r *Router) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	recs, err := r.QueryLR(ctx, q, filter)
	if err != nil {
		return nil, err
	}
	return stripLocations(recs), nil
}

// stripLocations converts an LR answer to its rank-only view.
func stripLocations(recs []lbs.LRRecord) []lbs.LNRRecord {
	return lbs.StripLocations(recs)
}

// QueryLRBatch implements lbs.Querier with Service batch semantics:
// one atomic logical reservation, index-aligned answers, nil entries
// past a mid-batch budget death alongside ErrBudgetExhausted. A shard
// failure fails the whole batch and refunds every reserved unit.
func (r *Router) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	out := make([][]lbs.LRRecord, len(pts))
	granted, gerr := r.chargeN(ctx, int64(len(pts)))
	if granted == 0 {
		return out, gerr
	}
	answers, err := r.scatterBatch(ctx, pts[:granted], filter)
	if err != nil {
		r.refund(granted)
		return make([][]lbs.LRRecord, len(pts)), err
	}
	copy(out, answers)
	return out, gerr
}

// QueryLNRBatch is the rank-only twin of QueryLRBatch.
func (r *Router) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	lr, err := r.QueryLRBatch(ctx, pts, filter)
	out := make([][]lbs.LNRRecord, len(lr))
	for i, recs := range lr {
		if recs != nil {
			out[i] = stripLocations(recs)
		}
	}
	return out, err
}
