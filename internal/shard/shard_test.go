package shard

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

var shardCounts = []int{1, 2, 4, 8}

// testPoints draws the adversarial query mix of the equivalence
// property: uniform interior points, points hugging every shard-region
// boundary (where owner choice and ball pruning are most delicate),
// exact tuple locations (distance ties), and points outside bounds.
func testPoints(rng *rand.Rand, db *lbs.Database, parts []*lbs.Database, n int) []geom.Point {
	b := db.Bounds()
	var pts []geom.Point
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Pt(
			b.Min.X+rng.Float64()*b.Width(),
			b.Min.Y+rng.Float64()*b.Height(),
		))
	}
	// Points on and just off every shard boundary edge.
	for _, p := range parts {
		r := p.Bounds()
		for _, eps := range []float64{0, 1e-9, -1e-9, 1e-3} {
			y := r.Min.Y + rng.Float64()*r.Height()
			x := r.Min.X + rng.Float64()*r.Width()
			pts = append(pts,
				geom.Pt(r.Min.X+eps, y), geom.Pt(r.Max.X+eps, y),
				geom.Pt(x, r.Min.Y+eps), geom.Pt(x, r.Max.Y+eps))
		}
	}
	// Exact tuple locations: distance ties with the tuple itself and,
	// under grid obfuscation, with its co-snapped neighbors.
	for i := 0; i < n && i < db.Len(); i++ {
		pts = append(pts, db.EffectiveLoc(rng.Intn(db.Len())))
	}
	// Outside the bounding box entirely.
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Pt(
			b.Min.X-b.Width()*rng.Float64()*2,
			b.Max.Y+b.Height()*rng.Float64()*2))
	}
	return pts
}

// checkEquivalence asserts federated == single-service, bit for bit,
// over serial and batch paths of both interface views.
func checkEquivalence(t *testing.T, db *lbs.Database, opts lbs.Options, nShards int, pts []geom.Point, filter lbs.Filter) {
	t.Helper()
	ctx := context.Background()
	single := lbs.NewService(db, opts)
	router, err := NewLocal(db, opts, nShards)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range pts {
		wantLR, err1 := single.QueryLR(ctx, q, filter)
		gotLR, err2 := router.QueryLR(ctx, q, filter)
		if err1 != nil || err2 != nil {
			t.Fatalf("point %d: errs %v %v", i, err1, err2)
		}
		if !reflect.DeepEqual(wantLR, gotLR) {
			t.Fatalf("shards=%d point %d (%v): LR mismatch\nsingle: %+v\nfederated: %+v",
				nShards, i, q, wantLR, gotLR)
		}
		wantLNR, _ := single.QueryLNR(ctx, q, filter)
		gotLNR, err := router.QueryLNR(ctx, q, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantLNR, gotLNR) {
			t.Fatalf("shards=%d point %d (%v): LNR mismatch", nShards, i, q)
		}
	}
	// Batch paths: one batch over the full point set.
	wantB, err1 := single.QueryLRBatch(ctx, pts, filter)
	gotB, err2 := router.QueryLRBatch(ctx, pts, filter)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch errs: %v %v", err1, err2)
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatalf("shards=%d: LR batch mismatch", nShards)
	}
	wantBN, _ := single.QueryLNRBatch(ctx, pts, filter)
	gotBN, err := router.QueryLNRBatch(ctx, pts, filter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBN, gotBN) {
		t.Fatalf("shards=%d: LNR batch mismatch", nShards)
	}
}

// TestFederatedEquivalence is the core property: federated QueryLR /
// QueryLNR (serial and batch) over 1/2/4/8 shards is bit-identical to
// a single Service over the union database, across seeded workloads —
// including the grid-obfuscated WeChat scenario, whose co-snapped
// effective locations make exact distance ties routine.
func TestFederatedEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		db   *lbs.Database
		opts lbs.Options
	}{
		{"schools-k5", workload.USASchools(400, 11).DB, lbs.Options{K: 5}},
		{"schools-k1", workload.USASchools(250, 12).DB, lbs.Options{K: 1}},
		{"schools-radius", workload.USASchools(300, 13).DB, lbs.Options{K: 5, MaxRadius: 40}},
		{"wechat-obfuscated", workload.WeChatChina(400, 14).DB, lbs.Options{K: 8}},
		{"restaurants-prominence", workload.USARestaurants(300, 15).DB, lbs.Options{
			K: 4, Rank: lbs.RankByProminence, ProminenceAttr: "rating", ProminenceWeight: 2,
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for _, n := range shardCounts {
				parts := Partition(sc.db, n)
				pts := testPoints(rng, sc.db, parts, 40)
				checkEquivalence(t, sc.db, sc.opts, n, pts, nil)
			}
		})
	}
}

// TestFederatedEquivalenceWithFilter checks server-side selection
// pass-through federates exactly.
func TestFederatedEquivalenceWithFilter(t *testing.T) {
	db := workload.USARestaurants(300, 21).DB
	rng := rand.New(rand.NewSource(3))
	parts := Partition(db, 4)
	pts := testPoints(rng, db, parts, 30)
	checkEquivalence(t, db, lbs.Options{K: 5}, 4, pts, lbs.CategoryFilter("restaurant"))
}

// TestPartitionInvariants pins the partitioner contract: disjoint
// tuples covering the union, regions tiling bounds, every tuple's
// effective location inside its shard region.
func TestPartitionInvariants(t *testing.T) {
	db := workload.WeChatChina(500, 7).DB
	for _, n := range shardCounts {
		parts := Partition(db, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		seen := make(map[int64]bool)
		total := 0
		for _, p := range parts {
			region := p.Bounds()
			total += p.Len()
			for i := 0; i < p.Len(); i++ {
				id := p.Tuple(i).ID
				if seen[id] {
					t.Fatalf("n=%d: tuple %d in two shards", n, id)
				}
				seen[id] = true
				if !region.Contains(p.EffectiveLoc(i)) {
					t.Fatalf("n=%d: tuple %d effective loc %v outside region %v",
						n, id, p.EffectiveLoc(i), region)
				}
			}
		}
		if total != db.Len() {
			t.Fatalf("n=%d: %d tuples across shards, want %d", n, total, db.Len())
		}
	}
}

// TestFederatedBudget pins the logical cost model: the router's budget
// meters client-visible queries (not fan-out), dies at the same point
// a single service's would, and batch semantics match (granted prefix
// answered, nil holes, ErrBudgetExhausted).
func TestFederatedBudget(t *testing.T) {
	db := workload.USASchools(200, 31).DB
	ctx := context.Background()
	opts := lbs.Options{K: 3, Budget: 10}
	router, err := NewLocal(db, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := testPoints(rng, db, Partition(db, 4), 4)[:7]
	if _, err := router.QueryLRBatch(ctx, pts, nil); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if got := router.QueryCount(); got != 7 {
		t.Fatalf("logical count after 7-point batch: %d", got)
	}
	// 5 more against 3 remaining: prefix answered, holes nil.
	out, err := router.QueryLRBatch(ctx, pts[:5], nil)
	if !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	for i, recs := range out {
		if i < 3 && recs == nil {
			t.Fatalf("position %d inside grant is nil", i)
		}
		if i >= 3 && recs != nil {
			t.Fatalf("position %d beyond grant answered", i)
		}
	}
	if got := router.QueryCount(); got != 10 {
		t.Fatalf("count after exhaustion: %d", got)
	}
	if _, err := router.QueryLR(ctx, pts[0], nil); !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("spent budget must refuse: %v", err)
	}
	if rem := router.RemainingBudget(); rem != 0 {
		t.Fatalf("remaining: %d", rem)
	}
}

// TestRouterStats pins the stats aggregation: logical vs upstream
// counts and the per-shard breakdown.
func TestRouterStats(t *testing.T) {
	db := workload.USASchools(200, 41).DB
	router, err := NewLocal(db, lbs.Options{K: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	b := db.Bounds()
	for i := 0; i < 25; i++ {
		q := geom.Pt(b.Min.X+rng.Float64()*b.Width(), b.Min.Y+rng.Float64()*b.Height())
		if _, err := router.QueryLR(ctx, q, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := router.Stats()
	if st.Logical != 25 {
		t.Fatalf("logical: %d", st.Logical)
	}
	if st.Upstream < st.Logical {
		t.Fatalf("upstream %d < logical %d", st.Upstream, st.Logical)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("shard stats: %d", len(st.Shards))
	}
	var sum int64
	for _, s := range st.Shards {
		sum += s.Queries
	}
	if sum != st.Upstream {
		t.Fatalf("per-shard sum %d != upstream %d", sum, st.Upstream)
	}
}

// TestRouterRejectsUndersizedShards pins construction-time validation:
// members must answer at least the candidate count.
func TestRouterRejectsUndersizedShards(t *testing.T) {
	db := workload.USASchools(100, 51).DB
	svc := lbs.NewService(db, lbs.Options{K: 3})
	if _, err := NewRouter([]Shard{{Querier: svc, Region: db.Bounds()}}, lbs.Options{K: 5}); err == nil {
		t.Fatal("k=3 shard accepted for k=5 federation")
	}
	// Prominence needs K×overfetch candidates.
	if _, err := NewRouter([]Shard{{Querier: svc, Region: db.Bounds()}}, lbs.Options{
		K: 3, Rank: lbs.RankByProminence, ProminenceAttr: "x",
	}); err == nil {
		t.Fatal("k=3 shard accepted for prominence federation needing 12 candidates")
	}
}

// TestFederatedEmptyShards covers n greater than the tuple count:
// empty shards answer empty and the federation still matches.
func TestFederatedEmptyShards(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	tuples := []lbs.Tuple{
		{ID: 1, Loc: geom.Pt(1, 1)},
		{ID: 2, Loc: geom.Pt(9, 9)},
		{ID: 3, Loc: geom.Pt(5, 5)},
	}
	db := lbs.NewDatabase(bounds, tuples)
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10), geom.Pt(-3, 4)}
	checkEquivalence(t, db, lbs.Options{K: 2}, 8, pts, nil)
}

// TestFederatedStrayTuples covers databases holding tuples outside
// Bounds() (NewDatabase accepts them): leaf regions grow to cover
// their strays, so ball pruning can never skip the shard owning the
// true nearest tuple and equivalence holds.
func TestFederatedStrayTuples(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	tuples := []lbs.Tuple{
		{ID: 1, Loc: geom.Pt(-30, -2)}, // far left of bounds
		{ID: 2, Loc: geom.Pt(2, 2)},
		{ID: 3, Loc: geom.Pt(5, 6)},
		{ID: 4, Loc: geom.Pt(8, 3)},
		{ID: 5, Loc: geom.Pt(14, 12)}, // beyond Max
		{ID: 6, Loc: geom.Pt(9, 9)},
	}
	db := lbs.NewDatabase(bounds, tuples)
	pts := []geom.Point{
		geom.Pt(-25, 0), geom.Pt(0, 0), geom.Pt(5, 5),
		geom.Pt(10, 10), geom.Pt(13, 11), geom.Pt(-5, -5),
	}
	for _, n := range []int{2, 4} {
		checkEquivalence(t, db, lbs.Options{K: 2}, n, pts, nil)
	}
	// Every stray is inside its (grown) shard region.
	for _, p := range Partition(db, 4) {
		for i := 0; i < p.Len(); i++ {
			if !p.Bounds().Contains(p.EffectiveLoc(i)) {
				t.Fatalf("stray tuple %d outside its region", p.Tuple(i).ID)
			}
		}
	}
}
