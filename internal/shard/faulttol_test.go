package shard

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// noRetryBackoff is the fast test resilience base: no sleeps, no
// deadline goroutines, everything else explicit per test.
func testResilience() Resilience {
	return Resilience{Seed: 1}
}

// faultedRouter builds an n-shard federation with a fault injector in
// front of every member, returning the router and the injectors (in
// shard order) for mid-run Kill/Revive.
func faultedRouter(t *testing.T, db *lbs.Database, opts lbs.Options, n int, res Resilience, spec func(i int) faults.Spec) (*Router, []*faults.Injector) {
	t.Helper()
	inj := make([]*faults.Injector, n)
	router, err := FromPartsWrapped(Partition(db, n), opts, res, func(i int, q lbs.Querier) lbs.Querier {
		inj[i] = faults.New(q, spec(i))
		return inj[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	return router, inj
}

// interiorPoint returns a point strictly inside the shard's region, so
// pickOwner resolves to that shard whenever its breaker is closed.
func interiorPoint(db *lbs.Database) geom.Point {
	b := db.Bounds()
	return geom.Pt(b.Min.X+b.Width()/2, b.Min.Y+b.Height()/2)
}

// TestFederatedBitIdenticalUnderTransients is the recovery property
// the retry layer is pinned by: over a fully-recovering fault schedule
// (every n-th member call fails transiently, the immediate retry
// succeeds), a federated run with retries enabled is bit-identical to
// the clean single-service run — same answers on serial and batch
// paths of both views, no partial annotations, and the same logical
// meter count.
func TestFederatedBitIdenticalUnderTransients(t *testing.T) {
	db := workload.USASchools(300, 71).DB
	opts := lbs.Options{K: 4}
	ctx := context.Background()
	for _, every := range []int64{2, 3, 7} {
		for _, n := range []int{2, 4} {
			single := lbs.NewService(db, opts)
			res := testResilience()
			res.MaxRetries = 2
			router, _ := faultedRouter(t, db, opts, n, res, func(i int) faults.Spec {
				return faults.Spec{Seed: int64(i), TransientEvery: every}
			})
			rng := rand.New(rand.NewSource(every*100 + int64(n)))
			pts := testPoints(rng, db, Partition(db, n), 25)
			for i, q := range pts {
				want, err1 := single.QueryLR(ctx, q, nil)
				got, err2 := router.QueryLR(ctx, q, nil)
				if err1 != nil || err2 != nil {
					t.Fatalf("every=%d n=%d point %d: errs %v %v", every, n, i, err1, err2)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("every=%d n=%d point %d: LR mismatch under recovered transients", every, n, i)
				}
			}
			wantB, _ := single.QueryLRBatch(ctx, pts, nil)
			gotB, err := router.QueryLRBatch(ctx, pts, nil)
			if err != nil {
				t.Fatalf("every=%d n=%d: batch err %v", every, n, err)
			}
			if !reflect.DeepEqual(wantB, gotB) {
				t.Fatalf("every=%d n=%d: LR batch mismatch under recovered transients", every, n)
			}
			if router.QueryCount() != single.QueryCount() {
				t.Fatalf("every=%d n=%d: logical meter %d != clean %d — retries leaked budget",
					every, n, router.QueryCount(), single.QueryCount())
			}
			st := router.Stats()
			if st.Retries == 0 {
				t.Fatalf("every=%d n=%d: no retries recorded — the schedule injected nothing", every, n)
			}
			if st.Partial != 0 || st.Dropped != 0 {
				t.Fatalf("every=%d n=%d: degraded answers (%d partial, %d dropped) under a fully-recovering schedule",
					every, n, st.Partial, st.Dropped)
			}
		}
	}
}

// wedged blocks every query until the caller's context dies — the
// pathological member ShardTimeout exists for.
type wedged struct{ inner lbs.Querier }

func (w *wedged) Bounds() geom.Rect { return w.inner.Bounds() }
func (w *wedged) K() int            { return w.inner.K() }
func (w *wedged) QueryCount() int64 { return w.inner.QueryCount() }
func (w *wedged) QueryLR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LRRecord, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (w *wedged) QueryLNR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LNRRecord, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (w *wedged) QueryLRBatch(ctx context.Context, pts []geom.Point, f lbs.Filter) ([][]lbs.LRRecord, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (w *wedged) QueryLNRBatch(ctx context.Context, pts []geom.Point, f lbs.Filter) ([][]lbs.LNRRecord, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestShardTimeoutBoundsWedgedMember pins the wedge guarantee: a
// member that never answers costs at most ShardTimeout. A wedged
// non-owner degrades the answer; a wedged owner fails crisply with
// ErrOwnerDown wrapping ErrShardTimeout. Without retries the whole
// query stays near one deadline, nowhere near the unbounded hang the
// parent context would allow.
func TestShardTimeoutBoundsWedgedMember(t *testing.T) {
	db := workload.USASchools(40, 81).DB
	parts := Partition(db, 2)
	// K above the per-shard tuple count: the owner can never fill the
	// candidate set, the fan-out ball stays unbounded, and the wedged
	// sibling is always relevant.
	opts := lbs.Options{K: 25}
	mk := func() *Router {
		svc0 := lbs.NewService(parts[0], lbs.Options{K: 25})
		svc1 := lbs.NewService(parts[1], lbs.Options{K: 25})
		res := testResilience()
		res.ShardTimeout = 75 * time.Millisecond
		router, err := NewRouterWithResilience([]Shard{
			{Querier: svc0, Region: parts[0].Bounds()},
			{Querier: &wedged{inner: svc1}, Region: parts[1].Bounds()},
		}, opts, res)
		if err != nil {
			t.Fatal(err)
		}
		return router
	}
	ctx := context.Background()

	// Wedged non-owner: answered from the survivor, marked partial,
	// inside the deadline (generous slack for slow CI machines).
	router := mk()
	start := time.Now()
	recs, err := router.QueryLR(ctx, interiorPoint(parts[0]), nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("wedged non-owner stalled the query for %v", elapsed)
	}
	pe, ok := lbs.AsPartial(err)
	if !ok {
		t.Fatalf("want partial annotation, got %v", err)
	}
	if len(recs) == 0 || pe.Missing == 0 {
		t.Fatalf("degraded answer: %d recs, %+v", len(recs), pe)
	}
	if !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("annotation should carry the timeout cause, got %v", err)
	}

	// Wedged owner: crisp typed failure, same bound, unit refunded.
	router = mk()
	start = time.Now()
	_, err = router.QueryLR(ctx, interiorPoint(parts[1]), nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("wedged owner stalled the query for %v", elapsed)
	}
	if !errors.Is(err, ErrOwnerDown) || !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("want OwnerDown wrapping ShardTimeout, got %v", err)
	}
	if c := router.QueryCount(); c != 0 {
		t.Fatalf("failed query left %d units charged", c)
	}

	// A deadline timeout must not be retried (the breaker's job, not
	// the retry loop's).
	if lbs.IsTransient(ErrShardTimeout) {
		t.Fatal("ErrShardTimeout classified transient")
	}
}

// TestBreakerLifecycle drives one member through the full circuit:
// closed → (kill + failed call) open → routed-around degraded answers
// → half-open after the cooldown → (revive + successful probe) closed
// and bit-identical answers again.
func TestBreakerLifecycle(t *testing.T) {
	db := workload.USASchools(60, 91).DB
	opts := lbs.Options{K: 30} // unbounded ball: every member always relevant
	res := testResilience()
	res.BreakerThreshold = 1
	res.BreakerCooldown = 50 * time.Millisecond
	router, inj := faultedRouter(t, db, opts, 2, res, func(i int) faults.Spec { return faults.Spec{Seed: int64(i)} })
	parts := Partition(db, 2)
	ctx := context.Background()
	deadPt, livePt := interiorPoint(parts[1]), interiorPoint(parts[0])

	// Closed and clean.
	if st := router.Stats(); st.Shards[1].State != BreakerClosed {
		t.Fatalf("initial state %s", st.Shards[1].State)
	}
	if _, err := router.QueryLR(ctx, deadPt, nil); err != nil {
		t.Fatalf("clean query: %v", err)
	}

	// Kill shard 1. Its owned query fails crisply — and that failure
	// trips the breaker at threshold 1.
	inj[1].Kill()
	if _, err := router.QueryLR(ctx, deadPt, nil); !errors.Is(err, ErrOwnerDown) {
		t.Fatalf("killed owner: want ErrOwnerDown, got %v", err)
	}
	if st := router.Stats(); st.Shards[1].State != BreakerOpen {
		t.Fatalf("after owner failure: state %s, want open", st.Shards[1].State)
	}

	// Open breaker: ownership of the dead region moves to the healthy
	// member and the skipped shard marks the answer partial.
	recs, err := router.QueryLR(ctx, deadPt, nil)
	if !lbs.IsPartial(err) || len(recs) == 0 {
		t.Fatalf("routed-around query: recs=%d err=%v, want degraded answer", len(recs), err)
	}
	if router.DegradedCount() == 0 {
		t.Fatal("degraded answers not counted")
	}

	// Cooldown elapses with no call: the state is observably half-open.
	time.Sleep(res.BreakerCooldown + 20*time.Millisecond)
	if st := router.Stats(); st.Shards[1].State != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %s, want half-open", st.Shards[1].State)
	}

	// Revive and query: the half-open member gets a single probe, the
	// probe succeeds, the breaker closes, and the answer is already
	// complete (the probe's candidates merge in).
	inj[1].Revive()
	if recs, err := router.QueryLR(ctx, livePt, nil); err != nil || len(recs) == 0 {
		t.Fatalf("probe query: recs=%d err=%v", len(recs), err)
	}
	if st := router.Stats(); st.Shards[1].State != BreakerClosed {
		t.Fatalf("after successful probe: state %s, want closed", st.Shards[1].State)
	}
	if st := router.Stats(); st.Shards[1].Opens == 0 || st.Shards[1].Failures == 0 {
		t.Fatalf("health counters empty: %+v", router.Stats().Shards[1])
	}

	// Fully recovered: answers match the clean single service again.
	single := lbs.NewService(db, opts)
	want, _ := single.QueryLR(ctx, deadPt, nil)
	got, err := router.QueryLR(ctx, deadPt, nil)
	if err != nil || !reflect.DeepEqual(want, got) {
		t.Fatalf("post-recovery answer diverged: err=%v", err)
	}
}

// TestAllBreakersOpen pins the no-healthy-member case: every breaker
// open → ErrNoShards, crisply, with nothing charged.
func TestAllBreakersOpen(t *testing.T) {
	db := workload.USASchools(40, 101).DB
	res := testResilience()
	res.BreakerThreshold = 1
	res.BreakerCooldown = time.Hour
	router, inj := faultedRouter(t, db, lbs.Options{K: 3}, 2, res, func(i int) faults.Spec { return faults.Spec{Seed: int64(i)} })
	parts := Partition(db, 2)
	ctx := context.Background()
	inj[0].Kill()
	inj[1].Kill()
	for _, p := range []geom.Point{interiorPoint(parts[0]), interiorPoint(parts[1])} {
		router.QueryLR(ctx, p, nil) // trip each breaker via its owner failure
	}
	if _, err := router.QueryLR(ctx, interiorPoint(parts[0]), nil); !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
	if c := router.QueryCount(); c != 0 {
		t.Fatalf("failed queries left %d units charged", c)
	}
}

// TestBatchRefundsOnlyDroppedPositions pins the batch refund fix: when
// one owner shard is down, only the positions it owned are refunded —
// answered (including degraded) positions keep their charge, exactly
// one unit per non-nil answer.
func TestBatchRefundsOnlyDroppedPositions(t *testing.T) {
	db := workload.USASchools(120, 111).DB
	res := testResilience() // breaker off: failures keep failing
	router, inj := faultedRouter(t, db, lbs.Options{K: 4}, 2, res, func(i int) faults.Spec { return faults.Spec{Seed: int64(i)} })
	parts := Partition(db, 2)
	ctx := context.Background()
	inj[1].Kill()

	pts := []geom.Point{
		interiorPoint(parts[0]), interiorPoint(parts[1]),
		interiorPoint(parts[0]), interiorPoint(parts[1]), interiorPoint(parts[0]),
	}
	out, err := router.QueryLRBatch(ctx, pts, nil)
	pe, ok := lbs.AsPartial(err)
	if !ok {
		t.Fatalf("want partial annotation, got %v", err)
	}
	if !errors.Is(err, ErrOwnerDown) {
		t.Fatalf("annotation should carry the owner failure, got %v", err)
	}
	var answered int64
	for i, recs := range out {
		ownedByDead := i%2 == 1
		if ownedByDead && recs != nil {
			t.Fatalf("position %d owned by the dead shard answered", i)
		}
		if !ownedByDead && recs == nil {
			t.Fatalf("position %d owned by the live shard dropped", i)
		}
		if recs != nil {
			answered++
		}
	}
	if pe.Dropped != 2 {
		t.Fatalf("dropped=%d, want 2: %+v", pe.Dropped, pe)
	}
	if c := router.QueryCount(); c != answered {
		t.Fatalf("meter %d != answered positions %d — refund wrong", c, answered)
	}
	if st := router.Stats(); st.Dropped != 2 {
		t.Fatalf("stats dropped=%d, want 2", st.Dropped)
	}
}

// TestConcurrentDegradedBatchesMeterExactly hammers the refund path
// from many goroutines while one shard is down (run under -race by
// `make test`): across every concurrent batch, the logical meter must
// end exactly equal to the number of positions actually answered —
// dropped positions refunded, degraded ones charged, no double refund
// and no leak, regardless of interleaving.
func TestConcurrentDegradedBatchesMeterExactly(t *testing.T) {
	db := workload.USASchools(300, 121).DB
	res := testResilience() // breaker off: the dead shard keeps failing every batch
	router, inj := faultedRouter(t, db, lbs.Options{K: 4}, 4, res, func(i int) faults.Spec { return faults.Spec{Seed: int64(i)} })
	inj[2].Kill()
	ctx := context.Background()
	b := db.Bounds()

	const workers = 8
	const batchesPerWorker = 12
	const batchSize = 9
	var answered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batchesPerWorker; i++ {
				pts := make([]geom.Point, batchSize)
				for j := range pts {
					pts[j] = geom.Pt(b.Min.X+rng.Float64()*b.Width(), b.Min.Y+rng.Float64()*b.Height())
				}
				out, err := router.QueryLRBatch(ctx, pts, nil)
				if err != nil && !lbs.IsPartial(err) {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				for _, recs := range out {
					if recs != nil {
						answered.Add(1)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if c, a := router.QueryCount(), answered.Load(); c != a {
		t.Fatalf("meter %d != answered positions %d under concurrent partial failures", c, a)
	}
	st := router.Stats()
	if st.Dropped == 0 || st.Partial == 0 {
		t.Fatalf("the dead shard injected nothing: %+v", st)
	}
}
