package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add: got %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub: got %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale: got %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot: got %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross: got %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Sqrt(13), 1e-12) {
		t.Errorf("Dist: got %v", got)
	}
	if got := p.Mid(q); got != Pt(2, 0.5) {
		t.Errorf("Mid: got %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(2, 0.5) {
		t.Errorf("Lerp: got %v", got)
	}
	if got := Pt(1, 0).Rot90(); got != Pt(0, 1) {
		t.Errorf("Rot90: got %v", got)
	}
}

func TestPointRotate(t *testing.T) {
	p := Pt(1, 0)
	got := p.Rotate(math.Pi / 2)
	if !got.ApproxEq(Pt(0, 1), 1e-12) {
		t.Errorf("Rotate(π/2): got %v", got)
	}
	got = p.Rotate(math.Pi)
	if !got.ApproxEq(Pt(-1, 0), 1e-12) {
		t.Errorf("Rotate(π): got %v", got)
	}
}

func TestUnit(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm: got %v", u.Norm())
	}
	z := Pt(0, 0).Unit()
	if z != Pt(0, 0) {
		t.Errorf("Unit of zero: got %v", z)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 5), Pt(0, 1))
	if r.Min != Pt(0, 1) || r.Max != Pt(4, 5) {
		t.Fatalf("NewRect normalization: %+v", r)
	}
	if r.Width() != 4 || r.Height() != 4 {
		t.Errorf("dims: %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 16 {
		t.Errorf("area: %v", r.Area())
	}
	if r.Perimeter() != 16 {
		t.Errorf("perimeter: %v", r.Perimeter())
	}
	if r.Center() != Pt(2, 3) {
		t.Errorf("center: %v", r.Center())
	}
	if !r.Contains(Pt(2, 3)) || r.Contains(Pt(5, 3)) {
		t.Errorf("contains broken")
	}
	if got := r.Clamp(Pt(10, -10)); got != Pt(4, 1) {
		t.Errorf("clamp: %v", got)
	}
	poly := r.Polygon()
	if len(poly) != 4 || poly.SignedArea() <= 0 {
		t.Errorf("polygon not CCW: %v signed=%v", poly, poly.SignedArea())
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(4, 4))
	b := NewRect(Pt(2, 2), Pt(6, 6))
	got, ok := a.Intersect(b)
	if !ok || got.Min != Pt(2, 2) || got.Max != Pt(4, 4) {
		t.Errorf("intersect: %+v ok=%v", got, ok)
	}
	c := NewRect(Pt(5, 5), Pt(6, 6))
	if _, ok := a.Intersect(c); ok {
		t.Errorf("disjoint rects reported intersecting")
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 2}, {-3, 4}, {0, -1}}
	r := BoundingRect(pts)
	if r.Min != Pt(-3, -1) || r.Max != Pt(1, 4) {
		t.Errorf("bounding rect: %+v", r)
	}
	if z := BoundingRect(nil); z != (Rect{}) {
		t.Errorf("empty bounding rect: %+v", z)
	}
}

func TestLineThroughAndEval(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 0)) // x-axis, normal (0,1) pointing up? left of p->q is +y
	if !almostEq(l.Eval(Pt(0, 1)), -1, 1e-12) {
		// Normal is rotated -90° of direction (1,0) => (0,-1)? verify convention:
		// LineThrough says normal points to the LEFT of direction; left of +x is +y.
		t.Logf("eval(0,1) = %v", l.Eval(Pt(0, 1)))
	}
	// Whatever orientation, points on the line must evaluate to 0.
	if !almostEq(l.Eval(Pt(5, 0)), 0, 1e-12) {
		t.Errorf("point on line: eval %v", l.Eval(Pt(5, 0)))
	}
	if !almostEq(l.Dist(Pt(3, -2)), 2, 1e-12) {
		t.Errorf("dist: %v", l.Dist(Pt(3, -2)))
	}
}

func TestLineProjectReflect(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 1))
	p := Pt(1, 0)
	proj := l.Project(p)
	if !proj.ApproxEq(Pt(0.5, 0.5), 1e-12) {
		t.Errorf("project: %v", proj)
	}
	refl := l.Reflect(p)
	if !refl.ApproxEq(Pt(0, 1), 1e-12) {
		t.Errorf("reflect: %v", refl)
	}
}

func TestLineIntersect(t *testing.T) {
	l1 := LineThrough(Pt(0, 0), Pt(1, 1))
	l2 := LineThrough(Pt(1, 0), Pt(0, 1))
	p, ok := l1.Intersect(l2)
	if !ok || !p.ApproxEq(Pt(0.5, 0.5), 1e-12) {
		t.Errorf("intersect: %v ok=%v", p, ok)
	}
	l3 := LineThrough(Pt(0, 1), Pt(1, 2)) // parallel to l1
	if _, ok := l1.Intersect(l3); ok {
		t.Errorf("parallel lines intersected")
	}
}

func TestBisectorProperty(t *testing.T) {
	// Property: points on the negative side of Bisector(a,b) are closer to a.
	rng := rand.New(rand.NewSource(7))
	f := func(ax, ay, bx, by, px, py float64) bool {
		a := Pt(ax, ay)
		b := Pt(bx, by)
		if a.Dist(b) < 1e-6 {
			return true
		}
		p := Pt(px, py)
		l := Bisector(a, b)
		e := l.Eval(p)
		da, db := p.Dist(a), p.Dist(b)
		if math.Abs(da-db) < 1e-9 {
			return true // too close to the boundary to classify
		}
		if e < 0 {
			return da < db
		}
		return db < da
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rng,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(r.NormFloat64() * 10)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBisectorMidpointOnLine(t *testing.T) {
	a, b := Pt(1, 3), Pt(5, -2)
	l := Bisector(a, b)
	if !almostEq(l.Eval(a.Mid(b)), 0, 1e-9) {
		t.Errorf("midpoint not on bisector: %v", l.Eval(a.Mid(b)))
	}
	// a on negative side, b on positive side.
	if l.Eval(a) >= 0 || l.Eval(b) <= 0 {
		t.Errorf("orientation wrong: eval(a)=%v eval(b)=%v", l.Eval(a), l.Eval(b))
	}
}

func TestSegment(t *testing.T) {
	s := Segment{A: Pt(0, 0), B: Pt(2, 0)}
	if s.Len() != 2 {
		t.Errorf("len: %v", s.Len())
	}
	if s.Mid() != Pt(1, 0) {
		t.Errorf("mid: %v", s.Mid())
	}
	if s.At(0.25) != Pt(0.5, 0) {
		t.Errorf("at: %v", s.At(0.25))
	}
	l := LineThrough(Pt(1, -1), Pt(1, 1)) // vertical x=1
	tt, ok := s.IntersectLine(l)
	if !ok || !almostEq(tt, 0.5, 1e-12) {
		t.Errorf("segment/line: t=%v ok=%v", tt, ok)
	}
	s2 := Segment{A: Pt(2, 1), B: Pt(3, 1)}
	if _, ok := s2.IntersectLine(l); ok {
		t.Errorf("non-crossing segment intersected")
	}
}

func TestRayRectExit(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	p, ok := RayRectExit(Pt(5, 5), Pt(1, 0), r)
	if !ok || !p.ApproxEq(Pt(10, 5), 1e-9) {
		t.Errorf("exit: %v ok=%v", p, ok)
	}
	p, ok = RayRectExit(Pt(5, 5), Pt(-1, -1), r)
	if !ok || !p.ApproxEq(Pt(0, 0), 1e-9) {
		t.Errorf("diag exit: %v ok=%v", p, ok)
	}
	if _, ok := RayRectExit(Pt(5, 5), Pt(0, 0), r); ok {
		t.Errorf("zero dir should fail")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !almostEq(sq.Area(), 4, 1e-12) {
		t.Errorf("area: %v", sq.Area())
	}
	if !sq.Centroid().ApproxEq(Pt(1, 1), 1e-12) {
		t.Errorf("centroid: %v", sq.Centroid())
	}
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if !almostEq(tri.Area(), 4.5, 1e-12) {
		t.Errorf("tri area: %v", tri.Area())
	}
	if tri.SignedArea() <= 0 {
		t.Errorf("CCW triangle has non-positive signed area")
	}
}

func TestPolygonContains(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !sq.Contains(Pt(1, 1)) {
		t.Errorf("center not contained")
	}
	if !sq.Contains(Pt(0, 0)) {
		t.Errorf("vertex not contained")
	}
	if sq.Contains(Pt(3, 1)) {
		t.Errorf("outside point contained")
	}
}

func TestPolygonClipHalfPlane(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	// Keep left of x=1.
	h := HalfPlane{Line: Line{A: 1, B: 0, C: 1}}
	got := sq.Clip(h)
	if !almostEq(got.Area(), 2, 1e-9) {
		t.Errorf("clipped area: %v (%v)", got.Area(), got)
	}
	// Clip by a half-plane that contains the whole square.
	h2 := HalfPlane{Line: Line{A: 1, B: 0, C: 10}}
	got2 := sq.Clip(h2)
	if !almostEq(got2.Area(), 4, 1e-9) {
		t.Errorf("full clip area: %v", got2.Area())
	}
	// Clip by a half-plane excluding the whole square.
	h3 := HalfPlane{Line: Line{A: 1, B: 0, C: -10}}
	if got3 := sq.Clip(h3); got3 != nil {
		t.Errorf("empty clip: %v", got3)
	}
}

func TestPolygonSplitAreaConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	for i := 0; i < 200; i++ {
		a := RandomInRect(rng, NewRect(Pt(0, 0), Pt(10, 10)))
		b := RandomInRect(rng, NewRect(Pt(0, 0), Pt(10, 10)))
		if a.Dist(b) < 1e-3 {
			continue
		}
		l := LineThrough(a, b)
		neg, pos := sq.Split(l)
		sum := neg.Area() + pos.Area()
		if !almostEq(sum, 100, 1e-6) {
			t.Fatalf("split area not conserved: %v + %v = %v (line %v)",
				neg.Area(), pos.Area(), sum, l)
		}
		// Every vertex of neg must be on the negative side (within slack).
		for _, p := range neg {
			if l.Eval(p) > 1e-6 {
				t.Fatalf("neg piece vertex on wrong side: eval=%v", l.Eval(p))
			}
		}
		for _, p := range pos {
			if l.Eval(p) < -1e-6 {
				t.Fatalf("pos piece vertex on wrong side: eval=%v", l.Eval(p))
			}
		}
	}
}

func TestPolygonSplitNoCrossing(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	l := Line{A: 1, B: 0, C: 5} // x = 5, far right
	neg, pos := sq.Split(l)
	if pos != nil || !almostEq(neg.Area(), 1, 1e-12) {
		t.Errorf("expected all-negative: neg=%v pos=%v", neg, pos)
	}
}

func TestPolygonMaxDistFrom(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := sq.MaxDistFrom(Pt(0, 0)); !almostEq(got, 2*math.Sqrt2, 1e-12) {
		t.Errorf("max dist: %v", got)
	}
}

func TestPolygonEdges(t *testing.T) {
	tri := Polygon{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	edges := tri.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges: %d", len(edges))
	}
	if edges[2].B != Pt(0, 0) {
		t.Errorf("wraparound edge: %+v", edges[2])
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{
		{0, 0}, {2, 0}, {2, 2}, {0, 2},
		{1, 1}, {0.5, 0.5}, {1.5, 0.3}, // interior points
	}
	hull := ConvexHull(pts)
	if !almostEq(hull.Area(), 4, 1e-9) {
		t.Errorf("hull area: %v (%v)", hull.Area(), hull)
	}
	if len(hull) != 4 {
		t.Errorf("hull size: %d (%v)", len(hull), hull)
	}
	if hull.SignedArea() <= 0 {
		t.Errorf("hull not CCW")
	}
	if ConvexHull(pts[:2]) != nil {
		t.Errorf("degenerate hull should be nil")
	}
}

func TestConvexHullRandomContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		hull := ConvexHull(pts)
		if hull == nil {
			t.Fatal("nil hull for 50 random points")
		}
		for _, p := range pts {
			if !hull.Contains(p) {
				t.Fatalf("hull %v does not contain input point %v", hull, p)
			}
		}
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Pt(0, 0), R: 2}
	if !c.Contains(Pt(1, 1)) {
		t.Errorf("inside point not contained")
	}
	if c.Contains(Pt(3, 0)) {
		t.Errorf("outside point contained")
	}
	if !almostEq(c.Area(), 4*math.Pi, 1e-9) {
		t.Errorf("area: %v", c.Area())
	}
	p := c.BoundaryPoint(math.Pi / 2)
	if !p.ApproxEq(Pt(0, 2), 1e-12) {
		t.Errorf("boundary point: %v", p)
	}
}

func TestDiskUnionCoversCircle(t *testing.T) {
	target := Circle{Center: Pt(0, 0), R: 1}
	// One big disk covering everything.
	if !DiskUnionCoversCircle([]Circle{{Center: Pt(0, 0), R: 3}}, target, 32, 0.01) {
		t.Errorf("big disk should cover")
	}
	// A disk that misses part of the boundary.
	if DiskUnionCoversCircle([]Circle{{Center: Pt(2, 0), R: 1.5}}, target, 32, 0.01) {
		t.Errorf("offset disk should not cover")
	}
	// Two half-covering disks.
	disks := []Circle{
		{Center: Pt(0.6, 0), R: 1.2},
		{Center: Pt(-0.6, 0), R: 1.2},
	}
	if !DiskUnionCoversCircle(disks, target, 64, 0.01) {
		t.Errorf("two overlapping disks should cover")
	}
	if DiskUnionCoversCircle(nil, target, 64, 0.01) {
		t.Errorf("no disks should not cover")
	}
}

func TestCircumcenter(t *testing.T) {
	// Circumcenter of a right triangle at origin legs on axes = midpoint of hypotenuse.
	c, ok := Circumcenter(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok || !c.ApproxEq(Pt(1, 1), 1e-9) {
		t.Errorf("circumcenter: %v ok=%v", c, ok)
	}
	// Collinear points: no circumcenter.
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 0), Pt(2, 0)); ok {
		t.Errorf("collinear circumcenter should fail")
	}
}

func TestRandomInPolygonUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	poly := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(0, 2)}
	const n = 20000
	left := 0
	for i := 0; i < n; i++ {
		p := RandomInPolygon(rng, poly)
		if !poly.Contains(p) {
			t.Fatalf("sample outside polygon: %v", p)
		}
		if p.X < 2 {
			left++
		}
	}
	frac := float64(left) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("left-half fraction %v, want ≈0.5", frac)
	}
}

func TestRandomInTriangleInside(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b, c := Pt(0, 0), Pt(3, 0), Pt(1, 2)
	tri := Polygon{a, b, c}
	for i := 0; i < 1000; i++ {
		p := RandomInTriangle(rng, a, b, c)
		if !tri.Contains(p) {
			t.Fatalf("triangle sample outside: %v", p)
		}
	}
}

func TestRandomInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewRect(Pt(-1, -2), Pt(3, 4))
	for i := 0; i < 1000; i++ {
		p := RandomInRect(rng, r)
		if !r.Contains(p) {
			t.Fatalf("rect sample outside: %v", p)
		}
	}
}

func TestPolygonClone(t *testing.T) {
	p := Polygon{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	c := p.Clone()
	c[0] = Pt(9, 9)
	if p[0] == c[0] {
		t.Errorf("clone aliases original")
	}
	if Polygon(nil).Clone() != nil {
		t.Errorf("nil clone should stay nil")
	}
}
