package geom

import (
	"fmt"
	"math"
)

// Line is an (infinite) line in implicit form A·x + B·y = C with the
// normal vector (A, B) normalized to unit length. The normal orientation
// distinguishes the two half-planes bounded by the line: the "negative"
// side {A·x + B·y ≤ C} and the "positive" side.
type Line struct {
	A, B, C float64
}

// LineThrough returns the line through two distinct points p and q. The
// normal points to the left of the direction p→q. It panics if the
// points coincide within Eps, which always indicates a caller bug.
func LineThrough(p, q Point) Line {
	d := q.Sub(p)
	n := d.Norm()
	if n < Eps {
		panic(fmt.Sprintf("geom: LineThrough with coincident points %v, %v", p, q))
	}
	// Normal = direction rotated −90° so that the left side is positive.
	a, b := -d.Y/n, d.X/n
	return Line{A: a, B: b, C: a*p.X + b*p.Y}
}

// LineFromPointNormal returns the line through p with unit-scaled normal n.
func LineFromPointNormal(p, n Point) Line {
	u := n.Unit()
	return Line{A: u.X, B: u.Y, C: u.X*p.X + u.Y*p.Y}
}

// Eval returns A·x + B·y − C, the signed distance of p from the line
// (positive on the normal side).
func (l Line) Eval(p Point) float64 { return l.A*p.X + l.B*p.Y - l.C }

// Dist returns the unsigned distance from p to the line.
func (l Line) Dist(p Point) float64 { return math.Abs(l.Eval(p)) }

// Normal returns the unit normal (A, B).
func (l Line) Normal() Point { return Point{l.A, l.B} }

// Direction returns a unit vector along the line (normal rotated 90°).
func (l Line) Direction() Point { return Point{-l.B, l.A} }

// Project returns the orthogonal projection of p onto the line.
func (l Line) Project(p Point) Point {
	d := l.Eval(p)
	return Point{p.X - d*l.A, p.Y - d*l.B}
}

// Reflect returns p mirrored across the line. Reflection is the key
// operation of the LNR tuple-position computation (§4.3): reflecting the
// hidden tuple t across the Voronoi edge B(t, t') yields t'.
func (l Line) Reflect(p Point) Point {
	d := l.Eval(p)
	return Point{p.X - 2*d*l.A, p.Y - 2*d*l.B}
}

// Intersect returns the intersection point of two lines and whether one
// exists (false for parallel lines within tolerance).
func (l Line) Intersect(m Line) (Point, bool) {
	det := l.A*m.B - l.B*m.A
	if math.Abs(det) < Eps {
		return Point{}, false
	}
	return Point{
		X: (l.C*m.B - l.B*m.C) / det,
		Y: (l.A*m.C - l.C*m.A) / det,
	}, true
}

// Flip returns the same geometric line with the normal reversed.
func (l Line) Flip() Line { return Line{A: -l.A, B: -l.B, C: -l.C} }

// EvalRange returns the minimum and maximum of l.Eval over rectangle r
// in O(1): the extrema of a linear function over a box are attained at
// the corners selected by the signs of the normal components. It is the
// fast-reject primitive of cell-complex cut insertion: a face whose
// bounding box evaluates entirely on one side of a cut cannot be split
// by it.
func (l Line) EvalRange(r Rect) (lo, hi float64) {
	if l.A >= 0 {
		lo, hi = l.A*r.Min.X, l.A*r.Max.X
	} else {
		lo, hi = l.A*r.Max.X, l.A*r.Min.X
	}
	if l.B >= 0 {
		lo, hi = lo+l.B*r.Min.Y, hi+l.B*r.Max.Y
	} else {
		lo, hi = lo+l.B*r.Max.Y, hi+l.B*r.Min.Y
	}
	return lo - l.C, hi - l.C
}

// HalfPlane returns the half-plane on the negative side of l
// ({p : l.Eval(p) ≤ 0}).
func (l Line) HalfPlane() HalfPlane { return HalfPlane{Line: l} }

// String implements fmt.Stringer.
func (l Line) String() string {
	return fmt.Sprintf("%.6g·x + %.6g·y = %.6g", l.A, l.B, l.C)
}

// HalfPlane is the closed set of points on the negative side of its
// boundary line: {p : A·x + B·y ≤ C}.
type HalfPlane struct {
	Line Line
}

// Contains reports whether p lies in the half-plane (closed, with Eps
// slack toward inclusion so that boundary points are kept).
func (h HalfPlane) Contains(p Point) bool { return h.Line.Eval(p) <= Eps }

// ContainsStrict reports whether p lies strictly inside the half-plane
// by more than Eps.
func (h HalfPlane) ContainsStrict(p Point) bool { return h.Line.Eval(p) < -Eps }

// Complement returns the other closed half-plane bounded by the same line.
func (h HalfPlane) Complement() HalfPlane { return HalfPlane{Line: h.Line.Flip()} }

// Bisector returns the perpendicular bisector of segment (a, b) as a
// Line whose negative side is the set of points at least as close to a
// as to b. It panics if a and b coincide within Eps.
//
// This is the fundamental object of both algorithms: every edge of a
// (top-k) Voronoi cell of tuple t is a piece of Bisector(t, t') for some
// other tuple t'.
func Bisector(a, b Point) Line {
	d := b.Sub(a)
	n := d.Norm()
	if n < Eps {
		panic(fmt.Sprintf("geom: Bisector of coincident points %v, %v", a, b))
	}
	// |p−a|² ≤ |p−b|²  ⇔  2(b−a)·p ≤ |b|²−|a|²  ⇔  (d/|d|)·p ≤ (|b|²−|a|²)/(2|d|)
	return Line{
		A: d.X / n,
		B: d.Y / n,
		C: (b.Norm2() - a.Norm2()) / (2 * n),
	}
}

// BisectorHalfPlane returns the closed half-plane of points at least as
// close to a as to b.
func BisectorHalfPlane(a, b Point) HalfPlane {
	return HalfPlane{Line: Bisector(a, b)}
}

// Segment is the closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// At returns A + t·(B−A).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// IntersectLine returns the parameter t ∈ [0,1] at which the segment
// crosses line l, and whether such a crossing exists. If the segment
// lies (nearly) parallel to l no crossing is reported.
func (s Segment) IntersectLine(l Line) (float64, bool) {
	da := l.Eval(s.A)
	db := l.Eval(s.B)
	if (da > Eps && db > Eps) || (da < -Eps && db < -Eps) {
		return 0, false
	}
	denom := da - db
	if math.Abs(denom) < Eps {
		return 0, false
	}
	t := da / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return t, true
}

// RayRectExit returns the point where the ray from origin along dir
// (unit not required) leaves rect, and whether the ray (starting inside
// rect) exits at all. Used to anchor the LNR binary search: the search
// interval runs from the interior anchor c1 to the bounding-box exit cb.
func RayRectExit(origin, dir Point, rect Rect) (Point, bool) {
	if dir.Norm() < Eps {
		return Point{}, false
	}
	best := math.Inf(1)
	// Solve origin + t·dir hitting each of the four box sides, t > 0.
	consider := func(t float64) {
		if t > Eps && t < best {
			p := origin.Add(dir.Scale(t))
			if rect.Expand(Eps).Contains(p) {
				best = t
			}
		}
	}
	if math.Abs(dir.X) > Eps {
		consider((rect.Min.X - origin.X) / dir.X)
		consider((rect.Max.X - origin.X) / dir.X)
	}
	if math.Abs(dir.Y) > Eps {
		consider((rect.Min.Y - origin.Y) / dir.Y)
		consider((rect.Max.Y - origin.Y) / dir.Y)
	}
	if math.IsInf(best, 1) {
		return Point{}, false
	}
	return origin.Add(dir.Scale(best)), true
}
