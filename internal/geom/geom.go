// Package geom provides the planar computational-geometry primitives that
// underpin the Voronoi-cell machinery of the LBS aggregate-estimation
// algorithms: points and vectors, lines and oriented half-planes,
// perpendicular bisectors, convex polygons with half-plane clipping,
// circles, and random sampling inside convex regions.
//
// All coordinates are float64 on a Euclidean plane. Robustness is handled
// with a single package-wide tolerance Eps; the algorithms in
// internal/core are designed so that an occasional epsilon misjudgement
// costs at most extra oracle queries, never correctness of the final
// aggregate estimate.
package geom

import (
	"fmt"
	"math"
)

// Eps is the package-wide absolute tolerance used for geometric
// predicates (point equality, sidedness, degenerate polygon areas).
const Eps = 1e-9

// Point is a location (or free vector) on the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q (vector addition).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q (vector difference).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2-D cross product (z-component) p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Lerp returns the point p + s·(q − p); s=0 gives p, s=1 gives q.
func (p Point) Lerp(q Point, s float64) Point {
	return Point{p.X + s*(q.X-p.X), p.Y + s*(q.Y-p.Y)}
}

// Rot90 returns p rotated 90° counter-clockwise about the origin.
func (p Point) Rot90() Point { return Point{-p.Y, p.X} }

// Rotate returns p rotated by angle (radians, CCW) about the origin.
func (p Point) Rotate(angle float64) Point {
	s, c := math.Sincos(angle)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n < Eps {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// ApproxEq reports whether p and q coincide within tol (Euclidean).
func (p Point) ApproxEq(q Point, tol float64) bool {
	return p.Dist2(q) <= tol*tol
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, the bounding box B of the paper's
// data model. Min is the lower-left corner, Max the upper-right.
type Rect struct {
	Min, Max Point
}

// NewRect constructs a Rect from any two opposite corners, normalizing
// the coordinate order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter of r (the quantity b in the paper's
// binary-search cost analysis).
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the centroid of r.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Diagonal returns the length of r's diagonal.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// Contains reports whether p lies inside r (closed).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Corners returns the four corners of r in counter-clockwise order
// starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Polygon returns r as a counter-clockwise convex polygon.
func (r Rect) Polygon() Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// Expand returns r grown by margin on every side.
func (r Rect) Expand(margin float64) Rect {
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// Intersect returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{}, false
	}
	return out, true
}

// BoundingRect returns the smallest Rect containing all pts. It returns
// a zero Rect if pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}
