package geom

import "math"

// Circle is a circle (or closed disk, depending on the predicate used)
// with the given center and radius.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= (c.R+Eps)*(c.R+Eps)
}

// ContainsStrict reports whether p lies strictly inside the open disk by
// more than margin.
func (c Circle) ContainsStrict(p Point, margin float64) bool {
	r := c.R - margin
	if r <= 0 {
		return false
	}
	return c.Center.Dist2(p) < r*r
}

// Area returns the disk area.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// BoundaryPoint returns the point on the circle at the given angle.
func (c Circle) BoundaryPoint(angle float64) Point {
	s, cos := math.Sincos(angle)
	return Point{c.Center.X + c.R*cos, c.Center.Y + c.R*s}
}

// DiskUnionCoversCircle reports whether the boundary circle of target is
// covered by the union of the given disks, decided by testing samples
// equally spaced boundary points with the given safety margin (each
// sample must be at least margin inside some disk).
//
// This implements the lower-bound region test of §3.2.4: a query point q
// provably lies inside the Voronoi cell of tuple t when the circle
// C(q, |q−t|) is covered by the union of circles C(v, |v−t|) over
// confirmed vertices v (every tuple location inside any C(v,·) has been
// observed; for the top-1 cell those disks are empty of tuples).
//
// The sampled test is an approximation of exact circle-union coverage:
// with a positive margin it is sound except for coverage gaps narrower
// than the sampling pitch; internal/core uses it only to skip
// Monte-Carlo confirmation queries, with a conservative default margin.
func DiskUnionCoversCircle(disks []Circle, target Circle, samples int, margin float64) bool {
	if len(disks) == 0 || samples <= 0 {
		return false
	}
	step := 2 * math.Pi / float64(samples)
	for i := 0; i < samples; i++ {
		p := target.BoundaryPoint(float64(i) * step)
		covered := false
		for _, d := range disks {
			if d.ContainsStrict(p, margin) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Circumcenter returns the center of the circle through three points and
// whether the points are non-collinear. Voronoi vertices are exactly the
// circumcenters of triples of tuples (Lemma 1 of the paper uses the
// consequence that inward top-k vertices are equidistant to three tuples).
func Circumcenter(a, b, c Point) (Point, bool) {
	l1 := Bisector(a, b)
	l2 := Bisector(a, c)
	return l1.Intersect(l2)
}
