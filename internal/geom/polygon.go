package geom

import "math"

// Polygon is a convex polygon stored as its vertices in counter-clockwise
// order. The zero value (nil) represents the empty region.
//
// All polygon code in this package assumes convexity; the cell package
// composes convex pieces into possibly-concave top-k Voronoi cells.
type Polygon []Point

// Area returns the (non-negative) area via the shoelace formula.
func (poly Polygon) Area() float64 {
	if len(poly) < 3 {
		return 0
	}
	var s float64
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		s += p.Cross(q)
	}
	return math.Abs(s) / 2
}

// SignedArea returns the shoelace area, positive for counter-clockwise
// orientation.
func (poly Polygon) SignedArea() float64 {
	if len(poly) < 3 {
		return 0
	}
	var s float64
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		s += p.Cross(q)
	}
	return s / 2
}

// Centroid returns the area centroid of the polygon. For degenerate
// polygons (< 3 vertices or ~zero area) it returns the vertex average.
func (poly Polygon) Centroid() Point {
	if len(poly) == 0 {
		return Point{}
	}
	a := poly.SignedArea()
	if math.Abs(a) < Eps {
		var c Point
		for _, p := range poly {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(poly)))
	}
	var cx, cy float64
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// Contains reports whether p lies inside the convex polygon (closed,
// with Eps slack). Vertices must be in CCW order.
func (poly Polygon) Contains(p Point) bool {
	if len(poly) < 3 {
		return false
	}
	for i, a := range poly {
		b := poly[(i+1)%len(poly)]
		if b.Sub(a).Cross(p.Sub(a)) < -Eps*(1+a.Dist(b)) {
			return false
		}
	}
	return true
}

// Clip returns the part of the polygon inside half-plane h
// (Sutherland–Hodgman against a single edge). The result is nil when the
// intersection is empty or degenerate (area below Eps).
func (poly Polygon) Clip(h HalfPlane) Polygon {
	inside, _ := poly.Split(h.Line)
	return inside
}

// Split cuts the polygon by line l and returns the two convex pieces:
// neg = part on the negative side of l (l.Eval ≤ 0) and pos = part on
// the positive side. Either piece may be nil when (nearly) empty.
// Degenerate slivers with area < Eps are discarded; their area is at
// most Eps and is irrecoverably attributed to neither side, which the
// estimation algorithms tolerate (the bounding regions involved have
// areas many orders of magnitude above Eps).
func (poly Polygon) Split(l Line) (neg, pos Polygon) {
	neg, pos, _ = poly.SplitInto(l, nil, nil)
	return neg, pos
}

// SplitInto is Split with caller-provided storage: when the cut crosses
// the polygon, the two pieces are appended into negBuf[:0] and
// posBuf[:0] (whose capacity is reused; nil buffers degrade to fresh
// allocations) and crossed is true. When the polygon lies entirely on
// one side of the line (within Eps), the polygon itself is returned on
// that side with the buffers untouched and crossed = false, so callers
// can keep the original without copying.
//
// The returned pieces alias the buffers; they remain valid only until
// the buffers' next reuse. Steady-state cut insertion in internal/cell
// draws the buffers from a per-complex pool, making refinement
// allocation-free.
func (poly Polygon) SplitInto(l Line, negBuf, posBuf Polygon) (neg, pos Polygon, crossed bool) {
	n := len(poly)
	if n < 3 {
		return nil, nil, false
	}
	anyNeg, anyPos := false, false
	for _, p := range poly {
		e := l.Eval(p)
		if e < -Eps {
			anyNeg = true
		} else if e > Eps {
			anyPos = true
		}
		if anyNeg && anyPos {
			break
		}
	}
	if !anyPos {
		return poly, nil, false
	}
	if !anyNeg {
		return nil, poly, false
	}
	neg = negBuf[:0]
	pos = posBuf[:0]
	ea := l.Eval(poly[0])
	for i := 0; i < n; i++ {
		a := poly[i]
		b := poly[(i+1)%n]
		eb := l.Eval(b)
		switch {
		case ea <= Eps && ea >= -Eps: // a on line: belongs to both
			neg = append(neg, a)
			pos = append(pos, a)
		case ea < 0:
			neg = append(neg, a)
		default:
			pos = append(pos, a)
		}
		// Crossing edge (strictly opposite signs)?
		if (ea < -Eps && eb > Eps) || (ea > Eps && eb < -Eps) {
			t := ea / (ea - eb)
			x := a.Lerp(b, t)
			neg = append(neg, x)
			pos = append(pos, x)
		}
		ea = eb
	}
	neg = neg.dedupeInPlace()
	pos = pos.dedupeInPlace()
	if neg.Area() < Eps {
		neg = nil
	}
	if pos.Area() < Eps {
		pos = nil
	}
	return neg, pos, true
}

// dedupe removes consecutive (and wrap-around) duplicate vertices.
func (poly Polygon) dedupe() Polygon {
	if len(poly) == 0 {
		return nil
	}
	return append(poly[:0:0], poly...).dedupeInPlace()
}

// dedupeInPlace is dedupe writing through the receiver's storage; the
// receiver must own its backing array.
func (poly Polygon) dedupeInPlace() Polygon {
	if len(poly) == 0 {
		return nil
	}
	out := poly[:0]
	for _, p := range poly {
		if len(out) == 0 || !out[len(out)-1].ApproxEq(p, Eps) {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].ApproxEq(out[len(out)-1], Eps) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// BoundingRect returns the axis-aligned bounding rectangle of the polygon.
func (poly Polygon) BoundingRect() Rect { return BoundingRect(poly) }

// MaxDistFrom returns the maximum Euclidean distance from p to any point
// of the (convex) polygon; the maximum is attained at a vertex. Used for
// pruning which bisectors can still affect a tentative Voronoi cell.
func (poly Polygon) MaxDistFrom(p Point) float64 {
	var m float64
	for _, v := range poly {
		if d := p.Dist(v); d > m {
			m = d
		}
	}
	return m
}

// Edges returns the polygon's edges as segments in CCW order.
func (poly Polygon) Edges() []Segment {
	if len(poly) < 2 {
		return nil
	}
	out := make([]Segment, len(poly))
	for i, p := range poly {
		out[i] = Segment{A: p, B: poly[(i+1)%len(poly)]}
	}
	return out
}

// Clone returns a deep copy of the polygon.
func (poly Polygon) Clone() Polygon {
	if poly == nil {
		return nil
	}
	out := make(Polygon, len(poly))
	copy(out, poly)
	return out
}

// ConvexHull returns the convex hull of pts as a CCW polygon (Andrew's
// monotone chain). Collinear interior points are dropped. It returns nil
// for fewer than 3 effective points.
func ConvexHull(pts []Point) Polygon {
	if len(pts) < 3 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	// Sort by (X, Y) with insertion-free approach: use sort.Slice-like
	// manual sort to avoid importing sort for two keys? Keep it simple.
	sortPoints(sorted)
	var lower, upper []Point
	for _, p := range sorted {
		for len(lower) >= 2 && lower[len(lower)-1].Sub(lower[len(lower)-2]).Cross(p.Sub(lower[len(lower)-2])) <= Eps {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && upper[len(upper)-1].Sub(upper[len(upper)-2]).Cross(p.Sub(upper[len(upper)-2])) <= Eps {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return nil
	}
	return Polygon(hull)
}

// sortPoints sorts lexicographically by (X, Y) using a simple in-place
// heapless quicksort specialized to avoid reflection overhead.
func sortPoints(pts []Point) {
	if len(pts) < 2 {
		return
	}
	// Insertion sort for small slices, quicksort otherwise.
	if len(pts) <= 16 {
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pointLess(pts[j], pts[j-1]); j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		return
	}
	pivot := pts[len(pts)/2]
	left, right := 0, len(pts)-1
	for left <= right {
		for pointLess(pts[left], pivot) {
			left++
		}
		for pointLess(pivot, pts[right]) {
			right--
		}
		if left <= right {
			pts[left], pts[right] = pts[right], pts[left]
			left++
			right--
		}
	}
	sortPoints(pts[:right+1])
	sortPoints(pts[left:])
}

func pointLess(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}
