package geom

import "math/rand"

// RandomInRect returns a point drawn uniformly at random from r.
func RandomInRect(rng *rand.Rand, r Rect) Point {
	return Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// RandomInPolygon returns a point drawn uniformly at random from the
// convex polygon. It fan-triangulates the polygon from its first vertex,
// selects a triangle with probability proportional to its area, and
// samples uniformly within it. Returns the centroid for degenerate
// polygons.
func RandomInPolygon(rng *rand.Rand, poly Polygon) Point {
	n := len(poly)
	if n == 0 {
		return Point{}
	}
	if n < 3 {
		return poly[0]
	}
	// Triangle areas of the fan (poly[0], poly[i], poly[i+1]).
	total := 0.0
	areas := make([]float64, n-2)
	for i := 1; i < n-1; i++ {
		a := poly[i].Sub(poly[0]).Cross(poly[i+1].Sub(poly[0])) / 2
		if a < 0 {
			a = -a
		}
		areas[i-1] = a
		total += a
	}
	if total < Eps {
		return poly.Centroid()
	}
	target := rng.Float64() * total
	idx := 0
	for ; idx < len(areas)-1; idx++ {
		if target < areas[idx] {
			break
		}
		target -= areas[idx]
	}
	return RandomInTriangle(rng, poly[0], poly[idx+1], poly[idx+2])
}

// RandomInTriangle returns a point uniform in triangle (a, b, c) using
// the standard square-root barycentric construction.
func RandomInTriangle(rng *rand.Rand, a, b, c Point) Point {
	r1 := rng.Float64()
	r2 := rng.Float64()
	if r1+r2 > 1 {
		r1, r2 = 1-r1, 1-r2
	}
	return a.Add(b.Sub(a).Scale(r1)).Add(c.Sub(a).Scale(r2))
}
