package geom

import (
	"math/rand"
	"testing"
)

// benchPoly is a convex 8-gon crossed by benchLine.
var (
	benchPoly Polygon
	benchLine Line
)

func init() {
	rng := rand.New(rand.NewSource(9))
	benchPoly = randomConvexBench(rng, 8)
	benchLine = LineThrough(Pt(0.45, -1), Pt(0.55, 2))
}

func randomConvexBench(rng *rand.Rand, maxV int) Polygon {
	for {
		pts := make([]Point, 3+rng.Intn(maxV))
		for i := range pts {
			pts[i] = Pt(rng.Float64(), rng.Float64())
		}
		if h := ConvexHull(pts); h != nil && h.Area() > 0.2 {
			return h
		}
	}
}

// BenchmarkSplit measures the allocating split (legacy entry point).
func BenchmarkSplit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPoly.Split(benchLine)
	}
}

// BenchmarkSplitInto measures the scratch-buffer split — the form the
// cell engine uses in steady state; must show 0 allocs/op.
func BenchmarkSplitInto(b *testing.B) {
	var negBuf, posBuf Polygon
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		neg, pos, _ := benchPoly.SplitInto(benchLine, negBuf, posBuf)
		negBuf, posBuf = neg, pos
	}
}

// BenchmarkEvalRange measures the O(1) bbox fast-reject primitive.
func BenchmarkEvalRange(b *testing.B) {
	r := benchPoly.BoundingRect()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo, hi := benchLine.EvalRange(r)
		sink += lo + hi
	}
	_ = sink
}
