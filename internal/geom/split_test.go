package geom

import (
	"math"
	"math/rand"
	"testing"
)

// isConvexCCW reports whether poly is convex with counter-clockwise
// orientation, within Eps slack for collinear runs.
func isConvexCCW(poly Polygon) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b, c := poly[i], poly[(i+1)%n], poly[(i+2)%n]
		if b.Sub(a).Cross(c.Sub(b)) < -Eps*(1+a.Dist(b)+b.Dist(c)) {
			return false
		}
	}
	return true
}

// randomConvex returns a random convex CCW polygon inside the unit box
// with up to maxV vertices (via convex hull of random points).
func randomConvex(rng *rand.Rand, maxV int) Polygon {
	for {
		pts := make([]Point, 3+rng.Intn(maxV))
		for i := range pts {
			pts[i] = Pt(rng.Float64(), rng.Float64())
		}
		if h := ConvexHull(pts); h != nil && h.Area() > 1e-4 {
			return h
		}
	}
}

// checkSplitInvariants asserts the Split contract: both pieces convex
// CCW, areas non-trivial, and area(neg)+area(pos) == area(input) up to
// the documented sliver loss (at most Eps per discarded piece plus
// float roundoff).
func checkSplitInvariants(t *testing.T, poly Polygon, l Line, label string) {
	t.Helper()
	neg, pos := poly.Split(l)
	total := poly.Area()
	var got float64
	for _, piece := range []Polygon{neg, pos} {
		if piece == nil {
			continue
		}
		got += piece.Area()
		if !isConvexCCW(piece) {
			t.Fatalf("%s: non-convex piece %v", label, piece)
		}
	}
	// Discarded slivers lose at most Eps of area each.
	tol := 2*Eps + 1e-9*total
	if math.Abs(got-total) > tol {
		t.Fatalf("%s: area not conserved: %.15f vs %.15f (diff %g)", label, got, total, got-total)
	}
	// Side correctness: every vertex of neg on the non-positive side,
	// of pos on the non-negative side (with interpolation slack).
	for _, p := range neg {
		if l.Eval(p) > 1e-7 {
			t.Fatalf("%s: neg vertex %v on positive side (eval %g)", label, p, l.Eval(p))
		}
	}
	for _, p := range pos {
		if l.Eval(p) < -1e-7 {
			t.Fatalf("%s: pos vertex %v on negative side (eval %g)", label, p, l.Eval(p))
		}
	}
}

// TestSplitPropertyRandom fuzzes Split with random polygons and lines.
func TestSplitPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		poly := randomConvex(rng, 9)
		a, b := Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64())
		if a.Dist(b) < 1e-6 {
			continue
		}
		checkSplitInvariants(t, poly, LineThrough(a, b), "random")
	}
}

// TestSplitThroughVertex cuts exactly through one or two vertices.
func TestSplitThroughVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 1000; i++ {
		poly := randomConvex(rng, 8)
		v := poly[rng.Intn(len(poly))]
		// A line through vertex v in a random direction.
		dir := Pt(rng.NormFloat64(), rng.NormFloat64())
		if dir.Norm() < 1e-6 {
			continue
		}
		checkSplitInvariants(t, poly, LineThrough(v, v.Add(dir)), "through-vertex")
		// A line through two distinct vertices (a diagonal): both
		// pieces must still partition the area exactly.
		w := poly[rng.Intn(len(poly))]
		if v.Dist(w) > 1e-6 {
			checkSplitInvariants(t, poly, LineThrough(v, w), "diagonal")
		}
	}
}

// TestSplitCollinearEdge cuts along an edge of the polygon: everything
// lies on one closed side, so the polygon must come back whole.
func TestSplitCollinearEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 1000; i++ {
		poly := randomConvex(rng, 8)
		j := rng.Intn(len(poly))
		a, b := poly[j], poly[(j+1)%len(poly)]
		if a.Dist(b) < 1e-6 {
			continue
		}
		l := LineThrough(a, b)
		neg, pos := poly.Split(l)
		one, other := neg, pos
		if one == nil {
			one, other = pos, neg
		}
		if one == nil || other != nil {
			t.Fatalf("edge-collinear cut split the polygon: neg=%v pos=%v", neg, pos)
		}
		if !almostEq(one.Area(), poly.Area(), 1e-12) {
			t.Fatalf("edge-collinear cut changed area: %g vs %g", one.Area(), poly.Area())
		}
	}
}

// TestSplitSliver cuts a distance ~Eps inside an edge: the sliver side
// must be discarded (nil), the other side keeps (almost) all the area.
func TestSplitSliver(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 500; i++ {
		poly := randomConvex(rng, 8)
		j := rng.Intn(len(poly))
		a, b := poly[j], poly[(j+1)%len(poly)]
		if a.Dist(b) < 1e-3 {
			continue
		}
		l := LineThrough(a, b)
		// Shift the cut just inside the polygon: the strip between the
		// edge and the cut has area ≈ |ab|·δ — far below Eps.
		delta := 1e-12
		shifted := Line{A: l.A, B: l.B, C: l.C + delta}
		neg, pos := poly.Split(shifted)
		pieces := 0
		var area float64
		for _, p := range []Polygon{neg, pos} {
			if p != nil {
				pieces++
				area += p.Area()
			}
		}
		if pieces != 1 {
			t.Fatalf("sliver cut produced %d pieces", pieces)
		}
		if math.Abs(area-poly.Area()) > 1e-6 {
			t.Fatalf("sliver cut lost area: %g vs %g", area, poly.Area())
		}
	}
}

// TestSplitIntoBufferReuse checks the scratch-buffer contract: results
// alias the buffers, repeated reuse stays correct and allocation-free.
func TestSplitIntoBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	poly := randomConvex(rng, 8)
	l := LineThrough(Pt(0.5, 0), Pt(0.4, 1))
	var negBuf, posBuf Polygon
	neg, pos, crossed := poly.SplitInto(l, negBuf, posBuf)
	if !crossed {
		t.Skip("cut missed the polygon")
	}
	wantNeg, wantPos := neg.Clone(), pos.Clone()
	negBuf, posBuf = neg, pos
	allocs := testing.AllocsPerRun(100, func() {
		n2, p2, _ := poly.SplitInto(l, negBuf, posBuf)
		negBuf, posBuf = n2, p2
	})
	if allocs != 0 {
		t.Fatalf("SplitInto with warm buffers allocates %.1f/run, want 0", allocs)
	}
	n2, p2, _ := poly.SplitInto(l, negBuf, posBuf)
	if len(n2) != len(wantNeg) || len(p2) != len(wantPos) {
		t.Fatalf("reused-buffer result differs: %v / %v", n2, p2)
	}
	for i := range n2 {
		if !n2[i].ApproxEq(wantNeg[i], 1e-12) {
			t.Fatalf("neg vertex %d drifted", i)
		}
	}
	// One-sided cut: polygon returned unchanged, buffers untouched.
	farLine := LineThrough(Pt(-10, 0), Pt(-10, 1))
	n3, p3, crossed3 := poly.SplitInto(farLine, negBuf, posBuf)
	if crossed3 {
		t.Fatal("far line reported as crossing")
	}
	if (n3 == nil) == (p3 == nil) {
		t.Fatalf("one-sided cut returned neg=%v pos=%v", n3, p3)
	}
}

// TestSplitEvalRangeConsistency cross-checks the bbox fast-reject
// primitive against exact vertex evals.
func TestSplitEvalRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 2000; i++ {
		poly := randomConvex(rng, 8)
		a, b := Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5), Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
		if a.Dist(b) < 1e-6 {
			continue
		}
		l := LineThrough(a, b)
		lo, hi := l.EvalRange(poly.BoundingRect())
		for _, p := range poly {
			e := l.Eval(p)
			if e < lo-1e-12 || e > hi+1e-12 {
				t.Fatalf("vertex eval %g outside EvalRange [%g, %g]", e, lo, hi)
			}
		}
	}
}
