package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyCfg is the smallest configuration that still exercises every
// code path; experiment smoke tests must stay fast.
func tinyCfg() Config {
	return Config{N: 120, Runs: 2, Budget: 2500, K: 3, Seed: 5}
}

func checkFigure(t *testing.T, fig *Figure, wantSeries int) {
	t.Helper()
	if fig == nil {
		t.Fatal("nil figure")
	}
	if len(fig.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s/%s: malformed series (%d, %d)", fig.ID, s.Name, len(s.X), len(s.Y))
		}
	}
	var sb strings.Builder
	if err := fig.Write(&sb); err != nil {
		t.Fatalf("%s: write: %v", fig.ID, err)
	}
	if !strings.Contains(sb.String(), fig.ID) {
		t.Errorf("%s: rendered table missing the figure id", fig.ID)
	}
}

func TestFig11(t *testing.T) {
	fig, err := Fig11(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1)
	// Heavy-tail sanity: max must dominate the median.
	y := fig.Series[0].Y
	if y[5] <= y[1] {
		t.Errorf("cell-size distribution not skewed: %v", y)
	}
}

func TestFig12(t *testing.T) {
	fig, err := Fig12(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	// The LR-AGG trace must converge near the truth at the end.
	truth := 120.0
	lr := fig.Series[1]
	last := lr.Y[len(lr.Y)-1]
	if math.IsNaN(last) || math.Abs(last-truth)/truth > 0.5 {
		t.Errorf("LR trace end %v far from truth %v", last, truth)
	}
}

func TestFig13(t *testing.T) {
	fig, err := Fig13(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4)
}

func TestFig14(t *testing.T) {
	fig, err := Fig14(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	// Shape check at a loose error level: AGG should not cost more
	// than NNO (series 0 = NNO, 1 = LR-AGG).
	nno, lr := fig.Series[0], fig.Series[1]
	// x = 0.3 is index 3 on the default grid.
	if !math.IsNaN(nno.Y[3]) && !math.IsNaN(lr.Y[3]) && lr.Y[3] > nno.Y[3]*2 {
		t.Errorf("LR-AGG cost %v unexpectedly above NNO %v at rel-error 0.3", lr.Y[3], nno.Y[3])
	}
}

func TestFig15(t *testing.T) {
	fig, err := Fig15(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
}

func TestFig16(t *testing.T) {
	fig, err := Fig16(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
}

func TestFig17(t *testing.T) {
	fig, err := Fig17(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
}

func TestFig18(t *testing.T) {
	fig, err := Fig18(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	// Flat-ish scaling: cost at 100 % must stay within an order of
	// magnitude of cost at 25 % for LR-AGG (series index 1).
	lr := fig.Series[1]
	if lr.Y[3] > lr.Y[0]*10 {
		t.Errorf("query cost exploded with database size: %v", lr.Y)
	}
}

func TestFig19(t *testing.T) {
	cfg := tinyCfg()
	cfg.K = 3
	fig, err := Fig19(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	if len(fig.Series[0].X) != cfg.K+1 {
		t.Errorf("fig19 ticks: %v", fig.Series[0].X)
	}
}

func TestFig20(t *testing.T) {
	fig, err := Fig20(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 5)
}

func TestFig21(t *testing.T) {
	fig, err := Fig21(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	// Cumulative curves must be non-decreasing.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if !math.IsNaN(s.Y[i]) && !math.IsNaN(s.Y[i-1]) && s.Y[i] < s.Y[i-1]-1e-12 {
				t.Errorf("%s: cumulative fraction decreased at %d", s.Name, i)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	cfg := tinyCfg()
	cfg.Budget = 6000
	rows, err := Table1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("table1 rows: %d", len(rows))
	}
	var sb strings.Builder
	WriteTable1(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Google Places", "WeChat", "Weibo", "male fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
	// The flagship estimate (Starbucks count) should be within 50 % at
	// tiny scale.
	if rows[0].Truth <= 0 || rows[0].RelErr > 0.5 {
		t.Errorf("starbucks row implausible: %+v", rows[0])
	}
}

func TestTraceSetHelpers(t *testing.T) {
	ts := &traceSet{
		name:  "x",
		truth: 100,
		traces: [][]core.TracePoint{
			{
				{Queries: 10, Estimate: 300},
				{Queries: 20, Estimate: 120},
				{Queries: 30, Estimate: 105},
				{Queries: 40, Estimate: 102},
			},
		},
	}
	costs := ts.costToReach(0.1)
	if len(costs) != 1 || costs[0] != 30 {
		t.Errorf("costToReach: %v", costs)
	}
	// 0.5 error reached at 20 queries.
	if c := ts.costToReach(0.21); c[0] != 20 {
		t.Errorf("costToReach(0.21): %v", c)
	}
	// Never converged: censored at final queries.
	if c := ts.costToReach(0.001); c[0] != 40 {
		t.Errorf("censored cost: %v", c)
	}
	s := ts.meanEstimateSeries([]float64{5, 25, 45})
	if !math.IsNaN(s.Y[0]) || s.Y[1] != 120 || s.Y[2] != 102 {
		t.Errorf("meanEstimateSeries: %v", s.Y)
	}
}

func TestConfigs(t *testing.T) {
	p, q := Paper(), Quick()
	if p.N <= q.N || p.Runs <= q.Runs || p.Budget <= q.Budget {
		t.Errorf("paper scale should dominate quick scale: %+v %+v", p, q)
	}
}

func TestMSEDecomposition(t *testing.T) {
	rows, err := MSEDecomposition(context.Background(), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	var sb strings.Builder
	WriteMSE(&sb, rows)
	if !strings.Contains(sb.String(), "LR-LBS-AGG") {
		t.Errorf("missing algorithm row")
	}
	for _, r := range rows {
		if r.Eval.Runs != 2 || r.Eval.MeanQueries <= 0 {
			t.Errorf("%s eval: %+v", r.Algorithm, r.Eval)
		}
	}
}

// TestLiveChurn smoke-tests the churn experiment: well-formed figure,
// finite errors, and exactly zero population drift at zero churn (the
// live fast path never mutates without ops).
func TestLiveChurn(t *testing.T) {
	cfg := tinyCfg()
	cfg.Budget = 1200
	fig, err := LiveChurn(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	errs, drift := fig.Series[0], fig.Series[1]
	for i, y := range errs.Y {
		if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
			t.Errorf("rate %g: error %g", errs.X[i], y)
		}
	}
	if drift.Y[0] != 0 {
		t.Errorf("population drift at zero churn: %g", drift.Y[0])
	}
}
