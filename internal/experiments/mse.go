package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lbs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MSERow is one row of the estimator-quality table: the bias–variance
// decomposition of §2.3 measured over repeated runs at a fixed budget.
type MSERow struct {
	Algorithm string
	Eval      stats.Evaluation
}

// MSEDecomposition runs the three algorithms cfg.Runs times each on
// COUNT(schools) at the configured budget and decomposes their error
// into bias² + variance, with confidence-interval coverage — the
// quantitative substantiation of the paper's unbiasedness claims
// (LR-LBS-AGG unbiased; LNR-LBS-AGG bias bounded; NNO visibly biased).
func MSEDecomposition(ctx context.Context, cfg Config) ([]MSERow, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	specs := []AlgoSpec{lrSpec(), lnrSpec(), nnoSpec()}
	rows := make([]MSERow, 0, len(specs))
	newSvc := serviceFactory(cfg, sc.DB, lbs.Options{K: cfg.K})
	for _, spec := range specs {
		outcomes := make([]stats.RunOutcome, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			seed := cfg.Seed + int64(r)*7919
			svc, err := newSvc()
			if err != nil {
				return nil, err
			}
			res, err := runOne(ctx, svc, sc, spec, core.Count(), seed, cfg.Budget, cfg.Batch)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", spec.Name, r, err)
			}
			outcomes = append(outcomes, stats.RunOutcome{
				Estimate: res.Estimate,
				CI95:     res.CI95,
				Queries:  res.Queries,
			})
		}
		rows = append(rows, MSERow{Algorithm: spec.Name, Eval: stats.Evaluate(truth, outcomes)})
	}
	return rows, nil
}

// WriteMSE renders the decomposition table.
func WriteMSE(w io.Writer, rows []MSERow) {
	fmt.Fprintf(w, "== mse: bias/variance decomposition, COUNT(schools) ==\n")
	fmt.Fprintf(w, "%-14s %10s %9s %10s %9s %9s %12s\n",
		"algorithm", "mean", "bias%", "rmse%", "|z|bias", "coverage", "queries/run")
	for _, r := range rows {
		e := r.Eval
		fmt.Fprintf(w, "%-14s %10.4g %+8.2f%% %9.2f%% %9.2f %9.2f %12.0f\n",
			r.Algorithm, e.Mean, 100*e.BiasRel, 100*e.RMSERel,
			abs(e.BiasSignificance()), e.Coverage, e.MeanQueries)
	}
	fmt.Fprintln(w, "# truth-covered-by-CI target ≈ 0.95; |z|bias > 3 indicates real bias")
	fmt.Fprintln(w)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
