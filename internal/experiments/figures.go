package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/voronoi"
	"repro/internal/workload"
)

// Fig11 reproduces the quantitative content of Figure 11 — the Voronoi
// decomposition of Starbucks in the US — as cell-size distribution
// statistics demonstrating the urban/rural skew the paper highlights
// (cells below 1 km² in cities, hundreds of thousands of km² in rural
// areas). Use cmd/voronoisvg for the picture itself.
func Fig11(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.StarbucksUS(cfg.N, 0, cfg.Seed)
	d := voronoi.Compute(sc.DB, 1)
	st := d.CellStats()
	fig := &Figure{
		ID:     "fig11",
		Title:  "Voronoi decomposition of Starbucks in US (cell-size distribution)",
		XLabel: "statistic",
		YLabel: "km^2",
		Notes: []string{
			fmt.Sprintf("n = %d cells; Gini = %.3f; max/min = %.3g; coverage check = %.4f (want 1)",
				st.N, st.Gini, st.MaxOverMin, st.TotalOverBoundArea),
		},
	}
	fig.Series = append(fig.Series, Series{
		Name: "cell-area",
		X:    []float64{1, 2, 3, 4, 5, 6},
		Y:    []float64{st.Min, st.P50, st.Mean, st.P90, st.P99, st.Max},
	})
	fig.Notes = append(fig.Notes, "x axis: 1=min 2=median 3=mean 4=p90 5=p99 6=max")
	return fig, nil
}

// Fig12 reproduces Figure 12 — the estimate trace of COUNT(restaurants
// in US) versus query cost for LR-LBS-NNO, LR-LBS-AGG and LNR-LBS-AGG
// — demonstrating the convergence/unbiasedness behaviour: both AGG
// estimators settle on the truth quickly while NNO oscillates.
func Fig12(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USARestaurants(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	svcOpts := lbs.Options{K: cfg.K}
	grid := queryGrid(cfg.Budget, 25)
	fig := &Figure{
		ID:     "fig12",
		Title:  "Unbiasedness of estimators: COUNT(restaurants) trace",
		XLabel: "query cost",
		YLabel: "running estimate",
		Notes:  []string{fmt.Sprintf("ground truth = %.0f", truth)},
	}
	for _, spec := range []AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()} {
		ts, err := runTraces(ctx, cfg, sc, svcOpts, spec, core.Count(), truth)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ts.meanEstimateSeries(grid))
	}
	return fig, nil
}

// Fig13 reproduces Figure 13 — the impact of the sampling strategy:
// uniform versus census-weighted ("-US") variants of both AGG
// estimators on COUNT(schools in US).
func Fig13(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	lrUS := lrSpec()
	lrUS.Name = "LR-LBS-AGG-US"
	lrUS.Weighted = true
	lnrUS := lnrSpec()
	lnrUS.Name = "LNR-LBS-AGG-US"
	lnrUS.Weighted = true
	return costVsErrorFigure(ctx, cfg, sc, lbs.Options{K: cfg.K},
		"fig13", "Impact of sampling strategy: COUNT(schools)",
		[]AlgoSpec{lrSpec(), lrUS, lnrSpec(), lnrUS}, core.Count(), truth)
}

// Fig14 reproduces Figure 14 — query cost versus relative error for
// COUNT(schools in US) across the three algorithms.
func Fig14(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	return costVsErrorFigure(ctx, cfg, sc, lbs.Options{K: cfg.K},
		"fig14", "COUNT(schools)",
		[]AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()}, core.Count(), truth)
}

// Fig15 reproduces Figure 15 — COUNT(restaurants in US).
func Fig15(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USARestaurants(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	return costVsErrorFigure(ctx, cfg, sc, lbs.Options{K: cfg.K},
		"fig15", "COUNT(restaurants)",
		[]AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()}, core.Count(), truth)
}

// Fig16 reproduces Figure 16 — SUM(enrollment) over US schools.
func Fig16(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	agg := core.SumAttr("enrollment")
	truth := sc.DB.GroundTruth(func(t *lbs.Tuple) float64 { return t.Attr("enrollment") }, nil)
	return costVsErrorFigure(ctx, cfg, sc, lbs.Options{K: cfg.K},
		"fig16", "SUM(enrollment) in schools",
		[]AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()}, agg, truth)
}

// Fig17 reproduces Figure 17 — AVG(rating) of restaurants in Austin,
// TX: a sub-region aggregate computed as SUM/COUNT with the
// estimation region restricted to the metro box. Because AVG is a
// ratio, the traces track the running SUM(rating)/COUNT ratio.
func Fig17(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USARestaurants(cfg.N*4, cfg.Seed) // denser so the metro box is populated
	austin := workload.MetroBox(sc.DB, 120)          // the synthetic Austin, TX
	inBox := func(t *lbs.Tuple) bool { return austin.Contains(t.Loc) }
	truthCount := float64(sc.DB.Count(inBox))
	if truthCount == 0 {
		return nil, fmt.Errorf("fig17: no restaurants generated inside the Austin box")
	}
	truthSum := sc.DB.GroundTruth(func(t *lbs.Tuple) float64 {
		if inBox(t) {
			return t.Attr("rating")
		}
		return 0
	}, nil)
	truthAvg := truthSum / truthCount

	inRect := func(r core.Record) bool { return r.HasLoc && austin.Contains(r.Loc) }
	sumAgg := core.SumAttrWhere("rating", "in-austin", inRect)
	cntAgg := core.CountWhere("in-austin", inRect)

	fig := &Figure{
		ID:     "fig17",
		Title:  "AVG(rating) of restaurants in Austin, TX",
		XLabel: "rel-error",
		YLabel: "query cost",
		Notes:  []string{fmt.Sprintf("ground truth AVG = %.4f over %d restaurants", truthAvg, int(truthCount))},
	}
	errGrid := defaultErrGrid()
	specs := []AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()}
	newSvc := serviceFactory(cfg, sc.DB, lbs.Options{K: cfg.K})
	for _, spec := range specs {
		ts := &traceSet{name: spec.Name, truth: truthAvg}
		for r := 0; r < cfg.Runs; r++ {
			seed := cfg.Seed + int64(r)*7919
			svc, err := newSvc()
			if err != nil {
				return nil, err
			}
			trace, err := runRatio(ctx, svc, sc, spec, sumAgg, cntAgg, austin, seed, cfg.Budget, cfg.Batch)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", spec.Name, r, err)
			}
			ts.traces = append(ts.traces, trace)
		}
		fig.Series = append(fig.Series, ts.costSeries(errGrid))
	}
	return fig, nil
}

// runRatio runs one ratio (AVG) estimation restricted to a region and
// returns the ratio trace.
func runRatio(ctx context.Context, svc core.Oracle, sc *workload.Scenario, spec AlgoSpec,
	num, den core.Aggregate, region geom.Rect, seed, budget int64, batch int) ([]core.TracePoint, error) {

	aggs := []core.Aggregate{num, den}
	var results []core.Result
	var err error
	switch spec.Kind {
	case AlgoLR:
		opts := spec.LR
		opts.Seed = seed
		opts.Region = region
		results, err = core.NewLRAggregator(svc, opts).Run(ctx, aggs, core.WithMaxQueries(budget))
	case AlgoLNR:
		opts := spec.LNR
		opts.Seed = seed
		opts.Region = region
		// Location conditions over LNR require position inference; the
		// aggregator handles it (NeedsLocation is implied by the region
		// condition inside Value, so mark it).
		aggsLNR := []core.Aggregate{num, den}
		aggsLNR[0].NeedsLocation = true
		aggsLNR[1].NeedsLocation = true
		results, err = core.NewLNRAggregator(svc, opts).Run(ctx, aggsLNR, core.WithMaxQueries(budget))
	case AlgoNNO:
		opts := spec.NNO
		opts.Seed = seed
		// NNO has no region machinery in [10]; approximate by sampling
		// inside the region only.
		opts.Region = region
		results, err = core.NewNNOBaseline(svc, opts).Run(ctx, aggs, runOpts(budget, batch)...)
	}
	if err != nil {
		return nil, err
	}
	return core.RatioOf(results[0], results[1]).Trace, nil
}

// Fig18 reproduces Figure 18 — query cost to reach relative error 0.1
// versus database size (25 % … 100 % subsamples of the schools set).
func Fig18(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	fracs := []float64{0.25, 0.5, 0.75, 1.0}
	fig := &Figure{
		ID:     "fig18",
		Title:  "Varying database size: query cost @ rel-error 0.1, COUNT(schools)",
		XLabel: "fraction",
		YLabel: "query cost",
	}
	specs := []AlgoSpec{nnoSpec(), lrSpec(), lnrSpec()}
	ys := make([][]float64, len(specs))
	for _, frac := range fracs {
		db := sc.DB.Subsample(frac, cfg.Seed+101)
		sub := &workload.Scenario{Name: sc.Name, Bounds: sc.Bounds, DB: db, Grid: sc.Grid}
		truth := float64(db.Len())
		for si, spec := range specs {
			ts, err := runTraces(ctx, cfg, sub, lbs.Options{K: cfg.K}, spec, core.Count(), truth)
			if err != nil {
				return nil, err
			}
			ys[si] = append(ys[si], ts.meanCostToReach(0.1))
		}
	}
	for si, spec := range specs {
		fig.Series = append(fig.Series, Series{Name: spec.Name, X: fracs, Y: ys[si]})
	}
	return fig, nil
}

// Fig19 reproduces Figure 19 — query cost to reach relative error 0.1
// versus the number of exploited results: fixed h = 1…k versus the
// adaptive strategy of §3.2.3, for both AGG estimators.
func Fig19(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	svcOpts := lbs.Options{K: cfg.K}
	xs := make([]float64, 0, cfg.K+1)
	var lrY, lnrY []float64
	for h := 1; h <= cfg.K; h++ {
		xs = append(xs, float64(h))
		lr := lrSpec()
		lr.LR.FixedH = h
		ts, err := runTraces(ctx, cfg, sc, svcOpts, lr, core.Count(), truth)
		if err != nil {
			return nil, err
		}
		lrY = append(lrY, ts.meanCostToReach(0.1))

		lnr := lnrSpec()
		lnr.LNR.H = h
		ts, err = runTraces(ctx, cfg, sc, svcOpts, lnr, core.Count(), truth)
		if err != nil {
			return nil, err
		}
		lnrY = append(lnrY, ts.meanCostToReach(0.1))
	}
	// Adaptive (x plotted one past k, as the paper's "Adaptive" tick).
	xs = append(xs, float64(cfg.K+1))
	lrA := lrSpec() // FixedH = 0 → adaptive
	ts, err := runTraces(ctx, cfg, sc, svcOpts, lrA, core.Count(), truth)
	if err != nil {
		return nil, err
	}
	lrY = append(lrY, ts.meanCostToReach(0.1))
	// LNR has no adaptive-h analogue in the paper; repeat h=1 as its
	// reference point.
	lnrA := lnrSpec()
	ts, err = runTraces(ctx, cfg, sc, svcOpts, lnrA, core.Count(), truth)
	if err != nil {
		return nil, err
	}
	lnrY = append(lnrY, ts.meanCostToReach(0.1))
	return &Figure{
		ID:     "fig19",
		Title:  "Varying k: query cost @ rel-error 0.1 (last tick = adaptive)",
		XLabel: "h (k+1 = adaptive)",
		YLabel: "query cost",
		Series: []Series{
			{Name: "LR-LBS-AGG", X: xs, Y: lrY},
			{Name: "LNR-LBS-AGG", X: xs, Y: lnrY},
		},
	}, nil
}

// Fig20 reproduces Figure 20 — the ablation of the error-reduction
// strategies: LR-LBS-AGG-0 (none) through LR-LBS-AGG (all four),
// added in the paper's order.
func Fig20(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	variants := []AlgoSpec{
		{Name: "LR-LBS-AGG-0", Kind: AlgoLR, LR: core.LROptions{FixedH: 1}},
		{Name: "LR-LBS-AGG-1", Kind: AlgoLR, LR: core.LROptions{FixedH: 1, FastInit: true}},
		{Name: "LR-LBS-AGG-2", Kind: AlgoLR, LR: core.LROptions{FixedH: 1, FastInit: true, UseHistory: true}},
		{Name: "LR-LBS-AGG-3", Kind: AlgoLR, LR: core.LROptions{FastInit: true, UseHistory: true}},
		{Name: "LR-LBS-AGG", Kind: AlgoLR, LR: core.DefaultLROptions(0)},
	}
	return costVsErrorFigure(ctx, cfg, sc, lbs.Options{K: cfg.K},
		"fig20", "Query savings of error-reduction strategies (cumulative)",
		variants, core.Count(), truth)
}

// Fig21 reproduces Figure 21 — localization accuracy: the fraction of
// targets localized within each distance bucket, for a map service
// treated as LNR (no obfuscation — the "Google Places" curve) versus
// an obfuscating social network (the "WeChat" curve). Distances are
// reported in metres (plane units are km).
func Fig21(ctx context.Context, cfg Config) (*Figure, error) {
	targets := cfg.Runs * 8 // paper: 200 targets at full scale
	if targets > cfg.N/2 {
		targets = cfg.N / 2
	}
	buckets := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 150}
	fig := &Figure{
		ID:     "fig21",
		Title:  "Localization accuracy (fraction of targets within distance)",
		XLabel: "metres",
		YLabel: "cumulative fraction",
	}
	for _, tc := range []struct {
		name string
		sc   *workload.Scenario
	}{
		{"Google Places (LNR)", workload.StarbucksUS(cfg.N, 0, cfg.Seed)},
		{"WeChat", workload.WeChatChina(cfg.N, cfg.Seed)},
	} {
		errsM, err := localizationErrors(ctx, tc.sc, targets, cfg.Seed)
		if err != nil {
			return nil, err
		}
		y := make([]float64, len(buckets))
		for i, b := range buckets {
			cnt := 0
			for _, e := range errsM {
				if e <= b {
					cnt++
				}
			}
			if len(errsM) > 0 {
				y[i] = float64(cnt) / float64(len(errsM))
			} else {
				y[i] = math.NaN()
			}
		}
		fig.Series = append(fig.Series, Series{Name: tc.name, X: buckets, Y: y})
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: %d/%d targets localized", tc.name, len(errsM), targets))
	}
	return fig, nil
}

// localizationErrors localizes `targets` random tuples over an LNR
// view and returns the distances (in metres) between inferred and
// true positions.
func localizationErrors(ctx context.Context, sc *workload.Scenario, targets int, seed int64) ([]float64, error) {
	svc := lbs.NewService(sc.DB, lbs.Options{K: 8})
	agg := core.NewLNRAggregator(svc, core.LNROptions{
		Seed:    seed,
		EdgeEps: sc.Bounds.Diagonal() * 2e-6, // metre-scale precision
	})
	var errs []float64
	n := sc.DB.Len()
	step := n / targets
	if step < 1 {
		step = 1
	}
	for i := 0; i < n && len(errs) < targets; i += step {
		tp := sc.DB.Tuple(i)
		anchor := sc.DB.EffectiveLoc(i)
		got, err := agg.Localize(ctx, tp.ID, anchor)
		if err != nil {
			continue // target skipped (degenerate cell); reported via counts
		}
		errs = append(errs, got.Dist(tp.Loc)*1000) // km → m
	}
	return errs, nil
}

// Table1Row is one row of the online-demonstration table.
type Table1Row struct {
	LBS       string
	Aggregate string
	Estimate  float64
	Truth     float64
	RelErr    float64
	Budget    int64
}

// Table1 reproduces Table 1 — the online demonstrations: Starbucks
// counts over a Google-Places-like LR service, an Austin sub-region
// count, and user counts plus gender ratios over WeChat/Weibo-like
// LNR services, each at the paper's query budget (scaled by cfg).
func Table1(ctx context.Context, cfg Config) ([]Table1Row, error) {
	var rows []Table1Row

	// COUNT(Starbucks in US) with pass-through selection, budget 5000.
	sb := workload.StarbucksUS(cfg.N, cfg.N*4, cfg.Seed)
	svc := lbs.NewService(sb.DB, lbs.Options{K: cfg.K})
	lrOpts := core.DefaultLROptions(cfg.Seed)
	lrOpts.Filter = lbs.NameFilter("Starbucks")
	lrOpts.Sampler = sb.Grid
	res, err := core.NewLRAggregator(svc, lrOpts).Run(ctx, []core.Aggregate{core.Count()}, core.WithMaxQueries(cfg.Budget/5))
	if err != nil {
		return nil, err
	}
	truth := float64(sb.DB.Count(func(t *lbs.Tuple) bool { return t.Name == "Starbucks" }))
	rows = append(rows, Table1Row{
		LBS: "Google Places", Aggregate: "COUNT(Starbucks in US)",
		Estimate: res[0].Estimate, Truth: truth, RelErr: res[0].RelErr(truth),
		Budget: res[0].Queries,
	})

	// COUNT(restaurants in Austin open on Sundays): pass-through
	// category filter + post-processed open-Sunday + region restriction.
	austin := workload.MetroBox(sb.DB, 120)
	openSunday := core.CountWhere("open-sunday", func(r core.Record) bool {
		return r.Tag("open_sunday") == "yes" && r.HasLoc && austin.Contains(r.Loc)
	})
	lrOpts2 := core.DefaultLROptions(cfg.Seed + 1)
	lrOpts2.Filter = lbs.CategoryFilter("restaurant")
	lrOpts2.Region = austin
	svc2 := lbs.NewService(sb.DB, lbs.Options{K: cfg.K})
	res2, err := core.NewLRAggregator(svc2, lrOpts2).Run(ctx, []core.Aggregate{openSunday}, core.WithMaxQueries(cfg.Budget/5))
	if err != nil {
		return nil, err
	}
	truth2 := float64(sb.DB.Count(func(t *lbs.Tuple) bool {
		return t.Category == "restaurant" && t.Tag("open_sunday") == "yes" && austin.Contains(t.Loc)
	}))
	rows = append(rows, Table1Row{
		LBS: "Google Places", Aggregate: "COUNT(restaurants in Austin open Sundays)",
		Estimate: res2[0].Estimate, Truth: truth2, RelErr: relOrNaN(res2[0].Estimate, truth2),
		Budget: res2[0].Queries,
	})

	// WeChat / Weibo: COUNT(users) and gender ratio over LNR.
	for _, tc := range []struct {
		name string
		sc   *workload.Scenario
		k    int
	}{
		{"WeChat", workload.WeChatChina(cfg.N, cfg.Seed+2), 10},
		{"Weibo", workload.WeiboChina(cfg.N, cfg.Seed+3), 10},
	} {
		svcL := lbs.NewService(tc.sc.DB, lbs.Options{K: tc.k})
		lnr := core.NewLNRAggregator(svcL, core.LNROptions{Seed: cfg.Seed + 9, Sampler: tc.sc.Grid})
		aggs := []core.Aggregate{core.Count(), core.CountTag("gender", "m")}
		resL, err := lnr.Run(ctx, aggs, core.WithMaxQueries(cfg.Budget*2/5))
		if err != nil {
			return nil, err
		}
		truthN := float64(tc.sc.DB.Len())
		rows = append(rows, Table1Row{
			LBS: tc.name, Aggregate: "COUNT(users)",
			Estimate: resL[0].Estimate, Truth: truthN, RelErr: resL[0].RelErr(truthN),
			Budget: resL[0].Queries,
		})
		ratio := core.RatioOf(resL[1], resL[0])
		truthRatio := float64(tc.sc.DB.Count(func(t *lbs.Tuple) bool { return t.Tag("gender") == "m" })) / truthN
		rows = append(rows, Table1Row{
			LBS: tc.name, Aggregate: "male fraction",
			Estimate: ratio.Estimate, Truth: truthRatio, RelErr: relOrNaN(ratio.Estimate, truthRatio),
			Budget: resL[0].Queries,
		})
	}
	return rows, nil
}

func relOrNaN(est, truth float64) float64 {
	if truth == 0 {
		return math.NaN()
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// WriteTable1 renders the Table 1 rows.
func WriteTable1(w interface{ Write([]byte) (int, error) }, rows []Table1Row) {
	fmt.Fprintf(w, "== table1: Summary of online experiments ==\n")
	fmt.Fprintf(w, "%-14s %-44s %14s %14s %9s %8s\n", "LBS", "Aggregate", "Estimate", "Truth", "RelErr", "Queries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-44s %14.4g %14.4g %9.3f %8d\n",
			r.LBS, r.Aggregate, r.Estimate, r.Truth, r.RelErr, r.Budget)
	}
	fmt.Fprintln(w)
}
