package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// timedOracle wraps a querier and records the wall-clock latency of
// every single-point query, for the chaos experiment's p50/p99
// columns. Batch queries pass through unmeasured (the chaos sweep
// runs the serial per-point estimators).
type timedOracle struct {
	lbs.Querier
	mu  sync.Mutex
	lat []time.Duration
}

// Inner implements lbs.Wrapper, keeping the stats chain-walk intact.
func (t *timedOracle) Inner() lbs.Querier { return t.Querier }

func (t *timedOracle) observe(d time.Duration) {
	t.mu.Lock()
	t.lat = append(t.lat, d)
	t.mu.Unlock()
}

func (t *timedOracle) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	t0 := time.Now()
	recs, err := t.Querier.QueryLR(ctx, q, filter)
	t.observe(time.Since(t0))
	return recs, err
}

func (t *timedOracle) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	t0 := time.Now()
	recs, err := t.Querier.QueryLNR(ctx, q, filter)
	t.observe(time.Since(t0))
	return recs, err
}

// quantile returns the q-quantile of the recorded latencies in
// milliseconds (NaN when nothing was recorded).
func (t *timedOracle) quantile(q float64) float64 {
	t.mu.Lock()
	buf := make([]time.Duration, len(t.lat))
	copy(buf, t.lat)
	t.mu.Unlock()
	if len(buf) == 0 {
		return math.NaN()
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	idx := int(q * float64(len(buf)))
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return float64(buf[idx]) / float64(time.Millisecond)
}

// chaosRates is the fault-rate sweep of the chaos experiment: a clean
// baseline plus three per-call transient failure rates.
func chaosRates() []float64 { return []float64{0, 0.02, 0.05, 0.1} }

// chaosResilience is the router configuration the chaos sweep runs
// under: the default policy with timers scaled to in-process members
// (microsecond injected latencies, not network round-trips).
func chaosResilience() shard.Resilience {
	res := shard.DefaultResilience()
	res.ShardTimeout = 2 * time.Second
	// Retries are nearly free against in-process members, and the
	// sweep goes up to a 10 % per-call failure rate: 4 retries push
	// the chance of an owner call failing all its attempts (which
	// crisply aborts that run — the pinned owner-down contract) to
	// 0.1⁵ per call.
	res.MaxRetries = 4
	res.RetryBase = 100 * time.Microsecond
	res.RetryMax = 5 * time.Millisecond
	res.BreakerCooldown = 100 * time.Millisecond
	return res
}

// Chaos sweeps injected fault rates × estimator over a faulted
// federation: COUNT(schools) by LR-LBS-AGG and LNR-LBS-AGG against
// cfg.Shards (default 4) in-process shards, each behind a
// faults.Injector with per-call transient failures at the swept rate
// plus log-normal latency, with the router's resilience layer (retry,
// breaker, degraded merging) absorbing what it can. Reported per rate
// and estimator: mean |relative error| against the true count and the
// p50/p99 per-query latency — at rate 0 the error columns are the
// clean federated baseline (bit-identical to a single service), so
// the table reads as "what does each fault rate cost in accuracy and
// tail latency".
func Chaos(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	svcOpts := lbs.Options{K: cfg.K}
	nShards := cfg.Shards
	if nShards <= 1 {
		nShards = 4
	}
	parts := shard.Partition(sc.DB, nShards)
	res := chaosResilience()

	fig := &Figure{
		ID:     "chaos",
		Title:  "Estimation under injected faults: COUNT(schools) over a resilient federation",
		XLabel: "fault rate",
		YLabel: "mean |rel. error| / latency (ms)",
		Notes: []string{
			fmt.Sprintf("ground truth = %.0f; shards = %d; runs = %d; budget = %d", truth, nShards, cfg.Runs, cfg.Budget),
			"faults: per-call transient failures at the swept rate + log-normal latency (median 200µs, σ=0.6)",
			fmt.Sprintf("resilience: %d retries, breaker at %d consecutive failures", res.MaxRetries, res.BreakerThreshold),
		},
	}

	type col struct{ err, p50, p99 Series }
	cols := map[AlgoKind]*col{
		AlgoLR:  {err: Series{Name: "LR err"}, p50: Series{Name: "LR p50 ms"}, p99: Series{Name: "LR p99 ms"}},
		AlgoLNR: {err: Series{Name: "LNR err"}, p50: Series{Name: "LNR p50 ms"}, p99: Series{Name: "LNR p99 ms"}},
	}
	var totalRetries, totalPartial int64
	aborted := 0

	for _, rate := range chaosRates() {
		for _, kind := range []AlgoKind{AlgoLR, AlgoLNR} {
			var errSum float64
			completed := 0
			timed := &timedOracle{}
			for r := 0; r < cfg.Runs; r++ {
				seed := cfg.Seed + int64(r)*7919
				router, err := shard.FromPartsWrapped(parts, svcOpts, res, func(i int, q lbs.Querier) lbs.Querier {
					return faults.New(q, faults.Spec{
						Seed:          seed + int64(i)*101,
						TransientRate: rate,
						Latency:       200 * time.Microsecond,
						LatencySigma:  0.6,
					})
				})
				if err != nil {
					return nil, err
				}
				// Tolerance absorbs degraded annotations so the stock
				// estimators run unchanged; timing wraps the outside so
				// retries and hedges count toward the observed latency.
				timed.Querier = lbs.NewTolerantQuerier(router)
				spec := lrSpec()
				if kind == AlgoLNR {
					spec = lnrSpec()
				}
				resu, err := runOne(ctx, timed, sc, spec, core.Count(), seed, cfg.Budget, 0)
				st := router.Stats()
				totalRetries += st.Retries
				totalPartial += st.Partial
				if errors.Is(err, shard.ErrOwnerDown) {
					// An owner call lost every attempt: the run aborted
					// crisply (the pinned contract). Count it instead of
					// failing the sweep — owner aborts are a chaos
					// outcome, not a harness bug.
					aborted++
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("chaos rate %g run %d: %w", rate, r, err)
				}
				completed++
				errSum += math.Abs(resu.Estimate-truth) / truth
			}
			c := cols[kind]
			c.err.X = append(c.err.X, rate)
			if completed > 0 {
				c.err.Y = append(c.err.Y, errSum/float64(completed))
			} else {
				c.err.Y = append(c.err.Y, math.NaN())
			}
			c.p50.X = append(c.p50.X, rate)
			c.p50.Y = append(c.p50.Y, timed.quantile(0.50))
			c.p99.X = append(c.p99.X, rate)
			c.p99.Y = append(c.p99.Y, timed.quantile(0.99))
		}
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("router totals across the sweep: %d retries, %d partial answers, %d runs aborted (owner down)",
			totalRetries, totalPartial, aborted))
	fig.Series = append(fig.Series,
		cols[AlgoLR].err, cols[AlgoLNR].err,
		cols[AlgoLR].p50, cols[AlgoLR].p99,
		cols[AlgoLNR].p50, cols[AlgoLNR].p99)
	return fig, nil
}
