package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// LiveChurn evaluates estimator robustness on a mutating database:
// LR-LBS-AGG estimating COUNT over a live database while a
// deterministic churn stream (inserts, deletes and moves) applies
// mid-run, interleaved at a fixed rate of ops per completed sample
// through the run driver's progress hook. The paper's estimators
// assume a static hidden database; this experiment measures how much
// a drifting population actually costs them — at 0 churn the live
// path must reproduce the static figure exactly (the bit-identical
// contract), and under churn the estimate is compared against the
// time-averaged population size over the run.
func LiveChurn(ctx context.Context, cfg Config) (*Figure, error) {
	sc := workload.USASchools(cfg.N, cfg.Seed)
	svcOpts := lbs.Options{K: cfg.K}

	// Churn rates in mutations per completed sample.
	rates := []float64{0, 0.01, 0.1, 1}

	fig := &Figure{
		ID:     "live",
		Title:  "Estimation under churn: COUNT(schools) on a live database",
		XLabel: "ops/sample",
		YLabel: "mean |rel. error| vs time-averaged count",
		Notes: []string{
			fmt.Sprintf("initial population = %d; error of run r measured against the mean of Len() sampled after every estimator sample of run r", sc.DB.Len()),
		},
	}

	series := Series{Name: "LR-LBS-AGG"}
	driftSeries := Series{Name: "population drift %"}
	for _, rate := range rates {
		var errSum, driftSum float64
		for r := 0; r < cfg.Runs; r++ {
			seed := cfg.Seed + int64(r)*7919
			d, err := live.New(sc.DB, svcOpts, live.Options{})
			if err != nil {
				return nil, err
			}
			// Enough ops for the whole run at this rate; sized from the
			// budget (samples never exceed queries).
			var ops []live.Op
			if rate > 0 {
				ops = churn.Ops(sc.DB, churn.Config{Seed: seed}, int(math.Ceil(rate*float64(cfg.Budget)))+1)
			}
			applied := 0
			popSum, popN := 0.0, 0
			progress := func(points []core.TracePoint) {
				if len(points) == 0 {
					return
				}
				want := int(rate * float64(points[0].Samples))
				for applied < want && applied < len(ops) {
					if res := d.Apply(ctx, ops[applied:applied+1])[0]; res.Err != nil {
						// Churn streams are constructed to apply cleanly in
						// order; a rejection means the stream and database
						// diverged.
						panic(fmt.Sprintf("live churn op %d rejected: %v", applied, res.Err))
					}
					applied++
				}
				popSum += float64(d.Len())
				popN++
			}
			lrOpts := core.DefaultLROptions(seed)
			res, err := core.NewLRAggregator(d, lrOpts).Run(ctx, []core.Aggregate{core.Count()},
				core.WithMaxQueries(cfg.Budget), core.WithProgress(progress))
			if err != nil {
				return nil, fmt.Errorf("live churn rate %g run %d: %w", rate, r, err)
			}
			truth := float64(sc.DB.Len())
			if popN > 0 {
				truth = popSum / float64(popN)
			}
			errSum += math.Abs(res[0].Estimate-truth) / truth
			driftSum += 100 * math.Abs(truth-float64(sc.DB.Len())) / float64(sc.DB.Len())
		}
		series.X = append(series.X, rate)
		series.Y = append(series.Y, errSum/float64(cfg.Runs))
		driftSeries.X = append(driftSeries.X, rate)
		driftSeries.Y = append(driftSeries.Y, driftSum/float64(cfg.Runs))
	}
	fig.Series = append(fig.Series, series, driftSeries)
	return fig, nil
}
