// Package experiments reproduces every table and figure of the
// paper's evaluation (§6) over the simulated services. Each Fig* /
// Table* function returns a printable result whose series mirror the
// rows/curves the paper plots; cmd/lbsbench prints them and the
// benchmark suite exercises them at reduced scale.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Config scales an experiment. The paper's settings (25 runs,
// thousands of POIs, 5–25k query budgets) are the Paper() defaults;
// Quick() shrinks everything for benchmarks and CI.
type Config struct {
	// N is the dataset size (interpretation varies per scenario).
	N int
	// Runs is the number of independent repetitions averaged per data
	// point (the paper uses 25).
	Runs int
	// Budget is the per-run query budget.
	Budget int64
	// K is the service's top-k.
	K int
	// Seed is the base seed; run r uses Seed + r.
	Seed int64
	// Batch, when > 1, draws up to this many point samples per oracle
	// round-trip for estimators with a batch path (currently NNO); the
	// sample distribution and query cost are unchanged — only the
	// round-trip count drops.
	Batch int
	// Shards, when > 1, runs the estimators against a federated
	// service (internal/shard) of this many in-process spatial shards
	// instead of a single Service. Federated answers are bit-identical
	// to the single-service ones, so every figure reproduces unchanged
	// — the knob exists to exercise and measure the scale-out path
	// under the full evaluation workload (lbsbench -shards).
	Shards int
}

// Paper returns the full-scale configuration.
func Paper() Config { return Config{N: 2000, Runs: 25, Budget: 25000, K: 5, Seed: 1} }

// Quick returns a reduced configuration for benchmarks and smoke
// tests.
func Quick() Config { return Config{N: 300, Runs: 3, Budget: 4000, K: 5, Seed: 1} }

// Series is one labelled curve: Y[i] measured at X[i].
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced table or figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Write renders the figure as an aligned text table, one X column and
// one column per series — the same rows the paper plots.
func (f *Figure) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	if len(f.Series) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%18s", s.Name)
	}
	fmt.Fprintln(w)
	// All series are generated on a shared X grid.
	base := f.Series[0]
	for i := range base.X {
		fmt.Fprintf(w, "%-14.4g", base.X[i])
		for _, s := range f.Series {
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				fmt.Fprintf(w, "%18.4g", s.Y[i])
			} else {
				fmt.Fprintf(w, "%18s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(x = %s, y = %s)\n\n", f.XLabel, f.YLabel)
	return nil
}

// traceSet is the per-run estimate traces of one algorithm.
type traceSet struct {
	name   string
	truth  float64
	traces [][]core.TracePoint
}

// estimateAt returns the running estimate of one trace at a query
// budget (the last trace point not exceeding q; NaN before the first
// sample).
func estimateAt(trace []core.TracePoint, q float64) float64 {
	est := math.NaN()
	for _, tp := range trace {
		if float64(tp.Queries) <= q {
			est = tp.Estimate
		} else {
			break
		}
	}
	return est
}

// meanEstimateSeries averages the running estimates of all runs on a
// query grid (Figure 12 style).
func (ts *traceSet) meanEstimateSeries(grid []float64) Series {
	y := make([]float64, len(grid))
	for i, q := range grid {
		var sum float64
		n := 0
		for _, tr := range ts.traces {
			if e := estimateAt(tr, q); !math.IsNaN(e) {
				sum += e
				n++
			}
		}
		if n > 0 {
			y[i] = sum / float64(n)
		} else {
			y[i] = math.NaN()
		}
	}
	return Series{Name: ts.name, X: grid, Y: y}
}

// costToReach returns, per run, the smallest query count after which
// the running estimate's relative error stays at or below target until
// the end of the trace; runs that never converge report their final
// query count (censored).
func (ts *traceSet) costToReach(target float64) []float64 {
	out := make([]float64, 0, len(ts.traces))
	for _, tr := range ts.traces {
		if len(tr) == 0 {
			continue
		}
		cost := float64(tr[len(tr)-1].Queries) // censored default
		for i := len(tr) - 1; i >= 0; i-- {
			rel := math.Abs(tr[i].Estimate-ts.truth) / math.Abs(ts.truth)
			if rel > target {
				break
			}
			cost = float64(tr[i].Queries)
		}
		out = append(out, cost)
	}
	return out
}

// costSeries builds the query-cost-versus-relative-error curve
// (Figures 13–17, 20) on the given error grid.
func (ts *traceSet) costSeries(errGrid []float64) Series {
	y := make([]float64, len(errGrid))
	for i, e := range errGrid {
		costs := ts.costToReach(e)
		if len(costs) == 0 {
			y[i] = math.NaN()
			continue
		}
		var sum float64
		for _, c := range costs {
			sum += c
		}
		y[i] = sum / float64(len(costs))
	}
	return Series{Name: ts.name, X: errGrid, Y: y}
}

// meanCostToReach averages costToReach over runs (Figures 18, 19).
func (ts *traceSet) meanCostToReach(target float64) float64 {
	costs := ts.costToReach(target)
	if len(costs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, c := range costs {
		sum += c
	}
	return sum / float64(len(costs))
}

// defaultErrGrid is the paper's x-axis for cost-vs-error plots.
func defaultErrGrid() []float64 {
	return []float64{0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05}
}

// queryGrid builds an evenly spaced query-budget grid.
func queryGrid(budget int64, points int) []float64 {
	out := make([]float64, points)
	for i := range out {
		out[i] = float64(budget) * float64(i+1) / float64(points)
	}
	return out
}

// AlgoKind selects one of the three evaluated algorithms.
type AlgoKind int

const (
	AlgoLR AlgoKind = iota
	AlgoLNR
	AlgoNNO
)

// AlgoSpec describes one algorithm variant to evaluate.
type AlgoSpec struct {
	Name     string
	Kind     AlgoKind
	Weighted bool // use the scenario's density grid as sampler (§5.2)
	LR       core.LROptions
	LNR      core.LNROptions
	NNO      core.NNOOptions
	Filter   lbs.Filter
}

// lrSpec returns the full LR-LBS-AGG spec.
func lrSpec() AlgoSpec {
	return AlgoSpec{Name: "LR-LBS-AGG", Kind: AlgoLR, LR: core.DefaultLROptions(0)}
}

// lnrSpec returns the LNR-LBS-AGG spec.
func lnrSpec() AlgoSpec {
	return AlgoSpec{Name: "LNR-LBS-AGG", Kind: AlgoLNR}
}

// nnoSpec returns the LR-LBS-NNO baseline spec.
func nnoSpec() AlgoSpec {
	return AlgoSpec{Name: "LR-LBS-NNO", Kind: AlgoNNO}
}

// runTraces runs an algorithm spec Runs times against fresh service
// views and collects the estimate traces for one aggregate.
func runTraces(ctx context.Context, cfg Config, sc *workload.Scenario, svcOpts lbs.Options, spec AlgoSpec,
	agg core.Aggregate, truth float64) (*traceSet, error) {

	ts := &traceSet{name: spec.Name, truth: truth}
	newSvc := serviceFactory(cfg, sc.DB, svcOpts)
	for r := 0; r < cfg.Runs; r++ {
		seed := cfg.Seed + int64(r)*7919
		svc, err := newSvc()
		if err != nil {
			return nil, err
		}
		res, err := runOne(ctx, svc, sc, spec, agg, seed, cfg.Budget, cfg.Batch)
		if err != nil {
			return nil, fmt.Errorf("%s run %d: %w", spec.Name, r, err)
		}
		ts.traces = append(ts.traces, res.Trace)
	}
	return ts, nil
}

// serviceFactory returns a constructor yielding one fresh oracle per
// run: a single service view, or — when cfg.Shards > 1 — a federated
// router over that many in-process spatial shards, which answers
// bit-identically. The database is partitioned (and its shard k-d
// trees built) once up front; each run rebuilds only the cheap
// router/service layer so its budget and counters start fresh.
func serviceFactory(cfg Config, db *lbs.Database, opts lbs.Options) func() (core.Oracle, error) {
	if cfg.Shards > 1 {
		parts := shard.Partition(db, cfg.Shards)
		return func() (core.Oracle, error) { return shard.FromParts(parts, opts) }
	}
	return func() (core.Oracle, error) { return lbs.NewService(db, opts), nil }
}

// runOpts assembles the driver options of one estimation run.
func runOpts(budget int64, batch int) []core.RunOption {
	opts := []core.RunOption{core.WithMaxQueries(budget)}
	if batch > 1 {
		opts = append(opts, core.WithBatch(batch))
	}
	return opts
}

// runOne executes a single run of a spec and returns the result for
// the aggregate.
func runOne(ctx context.Context, svc core.Oracle, sc *workload.Scenario, spec AlgoSpec,
	agg core.Aggregate, seed, budget int64, batch int) (core.Result, error) {

	switch spec.Kind {
	case AlgoLR:
		opts := spec.LR
		opts.Seed = seed
		opts.Filter = spec.Filter
		if spec.Weighted {
			opts.Sampler = sc.Grid
		}
		res, err := core.NewLRAggregator(svc, opts).Run(ctx, []core.Aggregate{agg}, core.WithMaxQueries(budget))
		if err != nil {
			return core.Result{}, err
		}
		return res[0], nil
	case AlgoLNR:
		opts := spec.LNR
		opts.Seed = seed
		opts.Filter = spec.Filter
		if spec.Weighted {
			opts.Sampler = sc.Grid
		}
		res, err := core.NewLNRAggregator(svc, opts).Run(ctx, []core.Aggregate{agg}, core.WithMaxQueries(budget))
		if err != nil {
			return core.Result{}, err
		}
		return res[0], nil
	case AlgoNNO:
		opts := spec.NNO
		opts.Seed = seed
		opts.Filter = spec.Filter
		if spec.Weighted {
			opts.Sampler = sc.Grid
		}
		res, err := core.NewNNOBaseline(svc, opts).Run(ctx, []core.Aggregate{agg}, runOpts(budget, batch)...)
		if err != nil {
			return core.Result{}, err
		}
		return res[0], nil
	}
	return core.Result{}, fmt.Errorf("unknown algorithm kind %d", spec.Kind)
}

// costVsErrorFigure runs a set of algorithm specs on one aggregate and
// produces the paper's cost-versus-error figure layout.
func costVsErrorFigure(ctx context.Context, cfg Config, sc *workload.Scenario, svcOpts lbs.Options,
	id, title string, specs []AlgoSpec, agg core.Aggregate, truth float64) (*Figure, error) {

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "rel-error",
		YLabel: "query cost",
		Notes:  []string{fmt.Sprintf("ground truth = %.6g; runs = %d; budget = %d", truth, cfg.Runs, cfg.Budget)},
	}
	grid := defaultErrGrid()
	for _, spec := range specs {
		ts, err := runTraces(ctx, cfg, sc, svcOpts, spec, agg, truth)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ts.costSeries(grid))
	}
	return fig, nil
}

// sortedKeys is a tiny helper for deterministic map iteration in
// reports.
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
