package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestChaosSmoke runs the chaos sweep at tiny scale: well-formed
// figure, a finite clean baseline at rate 0, and recorded latency
// quantiles. This is the `make test` guard that keeps the chaos
// harness from rotting between bench runs.
func TestChaosSmoke(t *testing.T) {
	cfg := tinyCfg()
	cfg.Runs = 1
	cfg.Budget = 300
	fig, err := Chaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 6)
	// Series 0/1 are the LR/LNR error columns; at rate 0 they are the
	// clean federated baseline and must be finite (LNR variance is huge
	// at this scale, so only LR gets a magnitude bound).
	for i, s := range fig.Series[:2] {
		if math.IsNaN(s.Y[0]) || s.Y[0] < 0 {
			t.Errorf("%s clean baseline error not finite: %g", s.Name, s.Y[0])
		}
		if i == 0 && s.Y[0] > 5 {
			t.Errorf("%s clean baseline error implausible: %g", s.Name, s.Y[0])
		}
	}
	// The latency columns must have recorded something positive
	// (injected latency has a 200µs median, so ~0 means unmeasured).
	for _, s := range fig.Series[2:] {
		for i, y := range s.Y {
			if math.IsNaN(y) || y <= 0 {
				t.Errorf("%s[%d]: latency quantile %g", s.Name, i, y)
			}
		}
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "router totals") {
			found = true
		}
	}
	if !found {
		t.Errorf("figure notes missing router totals: %q", fig.Notes)
	}
}

// BenchmarkChaos is the recordable flavor of the chaos experiment (the
// bench-chaos-json target → BENCH_chaos.json): one sub-benchmark per
// fault rate running a full LR COUNT estimation over the faulted
// 4-shard federation, reporting the relative estimation error, the
// p50/p99 per-query latency and the router's retry/partial totals as
// custom metrics. All seeds are fixed, so -benchtime 1x yields a
// measurement, not noise.
func BenchmarkChaos(b *testing.B) {
	cfg := Config{N: 600, Runs: 1, Budget: 3000, K: 5, Seed: 11}
	sc := workload.USASchools(cfg.N, cfg.Seed)
	truth := float64(sc.DB.Len())
	parts := shard.Partition(sc.DB, 4)
	res := chaosResilience()
	svcOpts := lbs.Options{K: cfg.K}
	for _, rate := range chaosRates() {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			var relerr float64
			var retries, partials int64
			timed := &timedOracle{}
			for i := 0; i < b.N; i++ {
				seed := cfg.Seed + int64(i)*7919
				router, err := shard.FromPartsWrapped(parts, svcOpts, res, func(si int, q lbs.Querier) lbs.Querier {
					return faults.New(q, faults.Spec{
						Seed:          seed + int64(si)*101,
						TransientRate: rate,
						Latency:       200 * time.Microsecond,
						LatencySigma:  0.6,
					})
				})
				if err != nil {
					b.Fatal(err)
				}
				timed.Querier = lbs.NewTolerantQuerier(router)
				resu, err := runOne(context.Background(), timed, sc, lrSpec(), core.Count(), seed, cfg.Budget, 0)
				if errors.Is(err, shard.ErrOwnerDown) {
					continue // crisply aborted run — a chaos outcome
				}
				if err != nil {
					b.Fatal(err)
				}
				relerr = math.Abs(resu.Estimate-truth) / truth
				st := router.Stats()
				retries, partials = st.Retries, st.Partial
			}
			b.ReportMetric(relerr, "relerr")
			b.ReportMetric(timed.quantile(0.50), "p50-ms")
			b.ReportMetric(timed.quantile(0.99), "p99-ms")
			b.ReportMetric(float64(retries), "retries")
			b.ReportMetric(float64(partials), "partials")
		})
	}
}
