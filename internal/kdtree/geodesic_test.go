package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
)

// geoPoints draws n deterministic (lon°, lat°) points: clustered
// cities inside a continental window, to make the lune pruning earn
// its keep.
func geoPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, 0, n)
	centers := make([]geom.Point, 12)
	for i := range centers {
		centers[i] = geom.Pt(-125+r.Float64()*59, 24+r.Float64()*25)
	}
	for len(pts) < n {
		c := centers[r.Intn(len(centers))]
		p := geom.Pt(c.X+r.NormFloat64()*0.8, c.Y+r.NormFloat64()*0.5)
		if p.Y > 90 || p.Y < -90 {
			continue
		}
		pts = append(pts, p)
	}
	return pts
}

// bruteGeoKNN is the oracle: full scan, sort by (Haversine dist, index).
func bruteGeoKNN(pts []geom.Point, q geom.Point, k int, maxDist float64, filter func(int) bool) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		if filter != nil && !filter(i) {
			continue
		}
		if d := geo.HaversineDist(q, p); d <= maxDist {
			all = append(all, Neighbor{Index: i, Dist: d})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestKNNGeodesicExact pins the geodesic kNN against brute force:
// identical indices and bit-identical distances, across k values,
// radius caps, filters and query positions (including far outside the
// data window, across the antimeridian, and at out-of-range
// latitudes).
func TestKNNGeodesicExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	pts := geoPoints(r, 3000)
	tree := Build(pts)
	queries := make([]geom.Point, 0, 120)
	for i := 0; i < 100; i++ {
		queries = append(queries, geom.Pt(-130+r.Float64()*70, 20+r.Float64()*32))
	}
	// Adversarial corners.
	queries = append(queries,
		geom.Pt(179, 40), geom.Pt(-179, 40), // antimeridian side
		geom.Pt(55, 40),                     // far east of the window
		geom.Pt(-95, 89), geom.Pt(-95, -89), // polar
		geom.Pt(-95, 95), geom.Pt(-95, -120), // out-of-range latitude
		geom.Pt(265, 37), // same meridian as -95, wrapped
	)
	filter := func(i int) bool { return i%3 != 0 }
	for qi, q := range queries {
		for _, k := range []int{1, 5, 32} {
			for _, maxDist := range []float64{math.Inf(1), 200, 25} {
				got := tree.KNNWithinMetricInto(geo.Haversine, q, k, maxDist, nil, nil)
				want := bruteGeoKNN(pts, q, k, maxDist, nil)
				compareNeighbors(t, "knn", qi, q, got, want)
				got = tree.KNNWithinMetricInto(geo.Haversine, q, k, maxDist, filter, nil)
				want = bruteGeoKNN(pts, q, k, maxDist, filter)
				compareNeighbors(t, "knn+filter", qi, q, got, want)
			}
		}
	}
}

// TestWithinRadiusGeodesicExact pins the geodesic radius search
// against brute force.
func TestWithinRadiusGeodesicExact(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	pts := geoPoints(r, 2000)
	tree := Build(pts)
	for i := 0; i < 80; i++ {
		q := geom.Pt(-130+r.Float64()*70, 20+r.Float64()*32)
		radius := r.Float64() * 300
		got := tree.WithinRadiusMetricInto(geo.Haversine, q, radius, nil, nil)
		want := bruteGeoKNN(pts, q, len(pts), radius, nil)
		compareNeighbors(t, "radius", i, q, got, want)
	}
}

// TestMetricEntryPointsEuclideanDelegate pins that the Euclidean
// metric routes to the exact existing traversal: bit-identical result
// slices, including ordering.
func TestMetricEntryPointsEuclideanDelegate(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*1000, r.Float64()*1000)
	}
	tree := Build(pts)
	for i := 0; i < 50; i++ {
		q := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		a := tree.KNNWithinInto(q, 7, 300, nil, nil)
		b := tree.KNNWithinMetricInto(geo.Euclidean, q, 7, 300, nil, nil)
		if len(a) != len(b) {
			t.Fatalf("length drift %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("euclidean delegate drift at %d: %+v vs %+v", j, a[j], b[j])
			}
		}
		c := tree.WithinRadiusInto(q, 120, nil, nil)
		d := tree.WithinRadiusMetricInto(geo.Euclidean, q, 120, nil, nil)
		if len(c) != len(d) {
			t.Fatalf("radius length drift %d vs %d", len(c), len(d))
		}
		for j := range c {
			if c[j] != d[j] {
				t.Fatalf("euclidean radius drift at %d: %+v vs %+v", j, c[j], d[j])
			}
		}
	}
}

// TestGeodesicPreorderedMatchesBuild pins that a preorder round trip
// (the store's warm-restart path) preserves geodesic results: the
// extents must be recomputed by BuildPreordered.
func TestGeodesicPreorderedMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	pts := geoPoints(r, 1500)
	tree := Build(pts)
	order := tree.PreorderIndices()
	re := make([]geom.Point, len(order))
	for i, idx := range order {
		re[i] = pts[idx]
	}
	tree2 := BuildPreordered(re)
	for i := 0; i < 40; i++ {
		q := geom.Pt(-130+r.Float64()*70, 20+r.Float64()*32)
		a := tree.KNNWithinMetricInto(geo.Haversine, q, 9, math.Inf(1), nil, nil)
		b := tree2.KNNWithinMetricInto(geo.Haversine, q, 9, math.Inf(1), nil, nil)
		if len(a) != len(b) {
			t.Fatalf("length drift %d vs %d", len(a), len(b))
		}
		for j := range a {
			// Indices differ (re-indexed by preorder); distances must
			// be bit-identical.
			if a[j].Dist != b[j].Dist {
				t.Fatalf("preordered dist drift at %d: %v vs %v", j, a[j].Dist, b[j].Dist)
			}
		}
	}
}

func compareNeighbors(t *testing.T, label string, qi int, q geom.Point, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s q#%d %v: got %d results, want %d", label, qi, q, len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
			t.Fatalf("%s q#%d %v: result %d = %+v, want %+v", label, qi, q, i, got[i], want[i])
		}
	}
}

// BenchmarkKNNGeodesic10k is the geodesic twin of BenchmarkKNN10k:
// same tree size and k, Haversine traversal with lune bounds instead
// of planar rect distance. Tracked in BENCH_geom.json next to the
// Euclidean number to keep the geodesic overhead visible.
func BenchmarkKNNGeodesic10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := geoPoints(rng, 10000)
	tr := Build(pts)
	var buf []Neighbor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(-125+rng.Float64()*59, 24+rng.Float64()*25)
		buf = tr.KNNWithinMetricInto(geo.Haversine, q, 10, math.Inf(1), nil, buf[:0])
	}
}
