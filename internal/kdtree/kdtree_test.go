package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randomPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

// bruteKNN is the reference implementation.
func bruteKNN(pts []geom.Point, q geom.Point, k int, maxDist float64, filter func(int) bool) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		d := q.Dist(p)
		if d <= maxDist && (filter == nil || filter(i)) {
			all = append(all, Neighbor{Index: i, Dist: d})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("len: %d", tr.Len())
	}
	if got := tr.KNN(geom.Pt(0, 0), 3, nil); got != nil {
		t.Errorf("knn on empty: %v", got)
	}
	if got := tr.WithinRadius(geom.Pt(0, 0), 10, nil); got != nil {
		t.Errorf("within on empty: %v", got)
	}
	if d := tr.NearestDist(geom.Pt(0, 0), nil); !math.IsInf(d, 1) {
		t.Errorf("nearest on empty: %v", d)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := Build([]geom.Point{geom.Pt(1, 1)})
	got := tr.KNN(geom.Pt(0, 0), 5, nil)
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("knn: %v", got)
	}
	if math.Abs(got[0].Dist-math.Sqrt2) > 1e-12 {
		t.Errorf("dist: %v", got[0].Dist)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPts(rng, 500)
	tr := Build(pts)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10)
		k := 1 + rng.Intn(20)
		got := tr.KNN(q, k, nil)
		want := bruteKNN(pts, q, k, math.Inf(1), nil)
		if !sameNeighbors(got, want) {
			t.Fatalf("kNN mismatch (k=%d q=%v):\ngot  %v\nwant %v", k, q, got, want)
		}
	}
}

func TestKNNWithFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPts(rng, 300)
	tr := Build(pts)
	filter := func(i int) bool { return i%3 == 0 }
	for trial := 0; trial < 100; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		got := tr.KNN(q, 7, filter)
		want := bruteKNN(pts, q, 7, math.Inf(1), filter)
		if !sameNeighbors(got, want) {
			t.Fatalf("filtered kNN mismatch: got %v want %v", got, want)
		}
		for _, nb := range got {
			if nb.Index%3 != 0 {
				t.Fatalf("filter violated: %v", nb)
			}
		}
	}
}

func TestKNNWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPts(rng, 400)
	tr := Build(pts)
	for trial := 0; trial < 100; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		r := rng.Float64() * 15
		got := tr.KNNWithin(q, 5, r, nil)
		want := bruteKNN(pts, q, 5, r, nil)
		if !sameNeighbors(got, want) {
			t.Fatalf("radius kNN mismatch: got %v want %v", got, want)
		}
		for _, nb := range got {
			if nb.Dist > r+1e-12 {
				t.Fatalf("radius violated: %v > %v", nb.Dist, r)
			}
		}
	}
}

func TestWithinRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPts(rng, 300)
	tr := Build(pts)
	for trial := 0; trial < 100; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		r := rng.Float64() * 20
		got := tr.WithinRadius(q, r, nil)
		want := bruteKNN(pts, q, len(pts), r, nil)
		if !sameNeighbors(got, want) {
			t.Fatalf("within-radius mismatch at %v r=%v: got %d want %d",
				q, r, len(got), len(want))
		}
	}
}

func TestKNNOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPts(rng, 200)
	tr := Build(pts)
	got := tr.KNN(geom.Pt(50, 50), 20, nil)
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("results not sorted: %v", got)
		}
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	tr := Build(pts)
	got := tr.KNN(geom.Pt(0, 0), 10, nil)
	if len(got) != 3 {
		t.Fatalf("want all 3 points, got %d", len(got))
	}
}

func TestKNNZeroK(t *testing.T) {
	tr := Build(randomPts(rand.New(rand.NewSource(6)), 10))
	if got := tr.KNN(geom.Pt(0, 0), 0, nil); got != nil {
		t.Errorf("k=0: %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(9, 9)}
	tr := Build(pts)
	got := tr.KNN(geom.Pt(5, 5), 3, nil)
	if len(got) != 3 {
		t.Fatalf("dup knn: %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("dup distances: %v", got)
		}
	}
	// Deterministic tie-break by index.
	if got[0].Index != 0 || got[1].Index != 1 || got[2].Index != 2 {
		t.Errorf("tie-break order: %v", got)
	}
}

func TestNearestDist(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	tr := Build(pts)
	if d := tr.NearestDist(geom.Pt(3, 0), nil); math.Abs(d-3) > 1e-12 {
		t.Errorf("nearest dist: %v", d)
	}
}

func TestPointAccessor(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4)}
	tr := Build(pts)
	if tr.Point(1) != geom.Pt(3, 4) {
		t.Errorf("point accessor: %v", tr.Point(1))
	}
	if tr.Len() != 2 {
		t.Errorf("len: %d", tr.Len())
	}
}

func TestClusteredDataCorrectness(t *testing.T) {
	// Heavily clustered data stresses the pruning logic.
	rng := rand.New(rand.NewSource(7))
	var pts []geom.Point
	for c := 0; c < 5; c++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 100; i++ {
			pts = append(pts, geom.Pt(cx+rng.NormFloat64()*0.5, cy+rng.NormFloat64()*0.5))
		}
	}
	tr := Build(pts)
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		got := tr.KNN(q, 10, nil)
		want := bruteKNN(pts, q, 10, math.Inf(1), nil)
		if !sameNeighbors(got, want) {
			t.Fatalf("clustered kNN mismatch at %v", q)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	pts := randomPts(rand.New(rand.NewSource(8)), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkKNN10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPts(rng, 10000)
	tr := Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		tr.KNN(q, 10, nil)
	}
}
