// Package kdtree provides a 2-D k-d tree used as the query engine of
// the simulated location based services: exact k-nearest-neighbor
// search with optional per-tuple filtering (for server-side selection
// pass-through) and radius-bounded search (for the maximum-coverage
// constraint of §5.3).
//
// The tree is built once over a static point set (LBS databases in the
// paper are static) and is safe for concurrent readers.
//
// # Allocation contract
//
// The tree is the innermost dependency of every simulated oracle call,
// so the query API has allocation-free entry points: KNNInto and
// KNNWithinInto append into a caller-provided buffer (reusing its
// capacity) and traverse iteratively with a fixed-size stack, so a
// warm caller performs zero heap allocations per query. KNN/KNNWithin
// are the convenience wrappers that allocate a fresh result slice.
package kdtree

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
)

// Tree is an immutable 2-D k-d tree over an indexed point set.
type Tree struct {
	pts   []geom.Point // original points, indexed by caller indices
	nodes []node       // implicit tree in preorder

	// Whole-set coordinate extents, recorded at build time for the
	// geodesic pruning bounds (see geodesic.go): the X (longitude)
	// range and the largest |Y| (latitude magnitude). One O(n) pass;
	// the Euclidean query paths never read them.
	minX, maxX, maxAbsY float64
}

type node struct {
	idx         int // index into pts
	axis        uint8
	left, right int32 // node slice offsets; −1 = none
}

// Build constructs a tree over pts. Indices reported by searches refer
// to positions in pts. Build copies the points, so the caller remains
// free to mutate or reuse the input slice afterwards; use BuildOwned
// to skip the copy when ownership is transferred.
func Build(pts []geom.Point) *Tree {
	return BuildOwned(append([]geom.Point(nil), pts...))
}

// BuildOwned constructs a tree that takes ownership of pts without
// copying: the caller must not mutate the slice (or its backing array)
// for the lifetime of the tree. Intended for construction-time callers
// that build the point set privately, e.g. lbs.Database.
func BuildOwned(pts []geom.Point) *Tree {
	t := &Tree{pts: pts}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]node, 0, len(pts))
	if len(pts) >= parallelBuildMin && runtime.GOMAXPROCS(0) > 1 {
		t.buildParallel(idx)
	} else {
		t.build(idx, 0)
	}
	t.computeExtents()
	return t
}

// computeExtents records the whole-set coordinate extents consumed by
// the geodesic pruning bounds.
func (t *Tree) computeExtents() {
	if len(t.pts) == 0 {
		return
	}
	t.minX, t.maxX = t.pts[0].X, t.pts[0].X
	t.maxAbsY = math.Abs(t.pts[0].Y)
	for _, p := range t.pts[1:] {
		if p.X < t.minX {
			t.minX = p.X
		}
		if p.X > t.maxX {
			t.maxX = p.X
		}
		if a := math.Abs(p.Y); a > t.maxAbsY {
			t.maxAbsY = a
		}
	}
}

// parallelBuildMin is the point count below which a parallel build is
// not worth the goroutine overhead.
const parallelBuildMin = 4096

// subtask is one subtree handed to a build worker: the index window it
// owns, the depth its root sits at, and the fragment it produced.
type subtask struct {
	idx   []int
	depth int
	frag  []node
}

// buildParallel splits the build: the top spineLevels of the tree are
// partitioned sequentially (cheap — a few quickselects over the full
// window), and the 2^spineLevels remaining subtrees build concurrently
// into private node fragments over disjoint index windows. Fragments
// splice back in with an offset shift, so the resulting tree is
// structurally identical to a sequential build up to node layout —
// median selection is deterministic, and queries never observe layout.
func (t *Tree) buildParallel(idx []int) {
	levels := 2
	if runtime.GOMAXPROCS(0) >= 8 {
		levels = 3
	}
	var tasks []subtask
	t.spine(idx, 0, levels, &tasks)
	spineLen := len(t.nodes)
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(st *subtask) {
			defer wg.Done()
			f := Tree{pts: t.pts, nodes: make([]node, 0, len(st.idx))}
			f.build(st.idx, st.depth)
			st.frag = f.nodes
		}(&tasks[i])
	}
	wg.Wait()
	offs := make([]int32, len(tasks))
	for i := range tasks {
		offs[i] = t.splice(tasks[i].frag)
	}
	// Patch the spine's task references (encoded ≤ −2) to the spliced
	// fragment roots.
	for i := 0; i < spineLen; i++ {
		if v := t.nodes[i].left; v <= -2 {
			t.nodes[i].left = offs[-2-v]
		}
		if v := t.nodes[i].right; v <= -2 {
			t.nodes[i].right = offs[-2-v]
		}
	}
}

// spine builds the top levels of the tree sequentially; where levels
// run out it records a subtask and returns an encoded reference
// (−2−taskIndex) for buildParallel to patch after the joins.
func (t *Tree) spine(idx []int, depth, levels int, tasks *[]subtask) int32 {
	if len(idx) == 0 {
		return -1
	}
	if levels == 0 {
		*tasks = append(*tasks, subtask{idx: idx, depth: depth})
		return -2 - int32(len(*tasks)-1)
	}
	axis := uint8(depth % 2)
	mid := len(idx) / 2
	t.selectMedian(idx, mid, axis)
	off := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{idx: idx[mid], axis: axis})
	l := t.spine(idx[:mid], depth+1, levels-1, tasks)
	r := t.spine(idx[mid+1:], depth+1, levels-1, tasks)
	t.nodes[off].left = l
	t.nodes[off].right = r
	return off
}

// splice appends a privately built fragment to the node arena and
// returns its root's offset, shifting the fragment's internal child
// pointers (fragments are preorder, so the root is entry 0).
func (t *Tree) splice(frag []node) int32 {
	if len(frag) == 0 {
		return -1
	}
	base := int32(len(t.nodes))
	for i := range frag {
		if frag[i].left >= 0 {
			frag[i].left += base
		}
		if frag[i].right >= 0 {
			frag[i].right += base
		}
	}
	t.nodes = append(t.nodes, frag...)
	return base
}

// build recursively partitions idx around the median along the given
// axis and returns the node offset (−1 for empty). Median selection is
// quickselect (expected O(n) per level, O(n log n) for the whole
// build), and always places the median at len/2, so the tree is
// perfectly balanced and traversal depth is bounded by ⌈log₂ n⌉+1.
func (t *Tree) build(idx []int, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	mid := len(idx) / 2
	t.selectMedian(idx, mid, axis)
	off := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{idx: idx[mid], axis: axis})
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[off].left = left
	t.nodes[off].right = right
	return off
}

// coord returns the build key of point index i along axis.
func (t *Tree) coord(i int, axis uint8) float64 {
	if axis == 0 {
		return t.pts[i].X
	}
	return t.pts[i].Y
}

// selectMedian partially orders idx so that idx[nth] holds the element
// of rank nth along axis, everything before it is ≤ and everything
// after is ≥ (quickselect with median-of-three pivoting; insertion
// sort below a small cutoff).
func (t *Tree) selectMedian(idx []int, nth int, axis uint8) {
	lo, hi := 0, len(idx)-1
	for hi-lo > 12 {
		// Median-of-three pivot, stored at lo.
		m := lo + (hi-lo)/2
		if t.coord(idx[m], axis) < t.coord(idx[lo], axis) {
			idx[m], idx[lo] = idx[lo], idx[m]
		}
		if t.coord(idx[hi], axis) < t.coord(idx[lo], axis) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if t.coord(idx[hi], axis) < t.coord(idx[m], axis) {
			idx[hi], idx[m] = idx[m], idx[hi]
		}
		idx[lo], idx[m] = idx[m], idx[lo]
		pivot := t.coord(idx[lo], axis)
		// Hoare partition.
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || t.coord(idx[i], axis) >= pivot {
					break
				}
			}
			for {
				j--
				if t.coord(idx[j], axis) <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			idx[i], idx[j] = idx[j], idx[i]
		}
		idx[lo], idx[j] = idx[j], idx[lo]
		switch {
		case j == nth:
			return
		case j < nth:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
	// Insertion sort on the remaining window.
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && t.coord(idx[j], axis) < t.coord(idx[j-1], axis); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// PreorderIndices returns the point indices in the tree's preorder
// (root, left subtree, right subtree). A point set stored in this
// order can be re-indexed by BuildPreordered without any median
// selection: the median-at-len/2 build makes the tree shape a pure
// function of the point count, so preorder position alone determines
// structure.
func (t *Tree) PreorderIndices() []int {
	out := make([]int, 0, len(t.nodes))
	if len(t.nodes) == 0 {
		return out
	}
	stack := make([]int32, 1, maxTraversalDepth)
	stack[0] = 0
	for len(stack) > 0 {
		off := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[off]
		out = append(out, n.idx)
		if n.right >= 0 {
			stack = append(stack, n.right)
		}
		if n.left >= 0 {
			stack = append(stack, n.left)
		}
	}
	return out
}

// BuildPreordered constructs a tree over pts already arranged in the
// preorder of a median-balanced build (as reported by
// PreorderIndices). It takes ownership of pts like BuildOwned, and
// runs in O(n) with no comparisons: the subtree sizes replay the
// exact shape build would have produced, and the partitioning
// invariant is inherited from the order in which the points were
// laid out. Callers must only feed it genuinely preordered data (the
// store's pack format guarantees this for checksummed files).
func BuildPreordered(pts []geom.Point) *Tree {
	t := &Tree{pts: pts}
	if len(pts) == 0 {
		return t
	}
	t.nodes = make([]node, 0, len(pts))
	t.buildPre(0, len(pts), 0)
	t.computeExtents()
	return t
}

// buildPre lays out the subtree whose preorder window is
// [lo, lo+n): the root sits at lo, its left subtree (⌊n/2⌋ points)
// follows immediately, the right subtree takes the rest.
func (t *Tree) buildPre(lo, n, depth int) int32 {
	if n == 0 {
		return -1
	}
	mid := n / 2
	off := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{idx: lo, axis: uint8(depth % 2)})
	left := t.buildPre(lo+1, mid, depth+1)
	right := t.buildPre(lo+1+mid, n-mid-1, depth+1)
	t.nodes[off].left = left
	t.nodes[off].right = right
	return off
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Point returns the point at index i.
func (t *Tree) Point(i int) geom.Point { return t.pts[i] }

// Neighbor is one search result: the point's index and its Euclidean
// distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// nbWorse is the max-heap / sort order of the search frontier: by
// distance, ties broken by index for determinism.
func nbWorse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

// siftDownNb restores the "worst at root" heap property below i.
func siftDownNb(h []Neighbor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		worst := l
		if r := l + 1; r < len(h) && nbWorse(h[r], h[l]) {
			worst = r
		}
		if !nbWorse(h[worst], h[i]) {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// siftUpNb restores the heap property above i after a push at i.
func siftUpNb(h []Neighbor, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !nbWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// maxTraversalDepth bounds the iterative traversal stack. The build is
// median-balanced, so depth ≤ ⌈log₂ n⌉+1 ≤ 64 for any addressable n.
const maxTraversalDepth = 64

// KNN returns up to k nearest neighbors of q among points accepted by
// filter (nil filter accepts everything), ordered by increasing
// distance. Ties are broken by index for determinism.
func (t *Tree) KNN(q geom.Point, k int, filter func(int) bool) []Neighbor {
	return t.KNNWithinInto(q, k, math.Inf(1), filter, nil)
}

// KNNWithin behaves like KNN but only considers points within maxDist
// of q (the paper's maximum-coverage constraint dmax).
func (t *Tree) KNNWithin(q geom.Point, k int, maxDist float64, filter func(int) bool) []Neighbor {
	return t.KNNWithinInto(q, k, maxDist, filter, nil)
}

// KNNInto is KNN appending into buf[:0] (whose capacity is reused; a
// nil buf allocates). The returned slice aliases buf and is valid only
// until the caller reuses it. With cap(buf) ≥ k+1 the search performs
// no heap allocation.
func (t *Tree) KNNInto(q geom.Point, k int, filter func(int) bool, buf []Neighbor) []Neighbor {
	return t.KNNWithinInto(q, k, math.Inf(1), filter, buf)
}

// KNNWithinInto is the radius-capped allocation-free variant; see
// KNNInto for the buffer contract.
func (t *Tree) KNNWithinInto(q geom.Point, k int, maxDist float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	h := buf[:0]
	if k <= 0 || len(t.nodes) == 0 {
		return h
	}
	maxDist2 := maxDist * maxDist
	// Iterative best-first descent: walk toward the query, stacking the
	// far child of every visited node together with its splitting-plane
	// distance; pop entries whose plane is still closer than the k-th
	// best distance. The stack never holds more than one entry per tree
	// level (entries are pushed in strictly increasing depth along any
	// descent), so a fixed array suffices — no per-query allocation.
	type frame struct {
		off    int32
		plane2 float64
	}
	var stack [maxTraversalDepth]frame
	top := 0
	off := int32(0)
	for {
		for off >= 0 {
			n := &t.nodes[off]
			p := t.pts[n.idx]
			d2 := q.Dist2(p)
			if d2 <= maxDist2 && (filter == nil || filter(n.idx)) {
				nb := Neighbor{Index: n.idx, Dist: math.Sqrt(d2)}
				if len(h) < k {
					h = append(h, nb)
					siftUpNb(h, len(h)-1)
				} else if nbWorse(h[0], nb) {
					h[0] = nb
					siftDownNb(h, 0)
				}
			}
			var planeDist float64
			if n.axis == 0 {
				planeDist = q.X - p.X
			} else {
				planeDist = q.Y - p.Y
			}
			near, far := n.left, n.right
			if planeDist > 0 {
				near, far = far, near
			}
			if far >= 0 {
				stack[top] = frame{off: far, plane2: planeDist * planeDist}
				top++
			}
			off = near
		}
		// Pop the next pending far subtree still worth visiting.
		off = -1
		for top > 0 {
			top--
			fr := stack[top]
			if fr.plane2 > maxDist2 {
				continue
			}
			if len(h) == k && fr.plane2 >= h[0].Dist*h[0].Dist {
				continue
			}
			off = fr.off
			break
		}
		if off < 0 {
			break
		}
	}
	// Heap-sort in place: repeatedly swap the worst to the tail. The
	// "worst at root" order yields ascending (Dist, Index).
	for i := len(h) - 1; i > 0; i-- {
		h[0], h[i] = h[i], h[0]
		siftDownNb(h[:i], 0)
	}
	return h
}

// WithinRadius returns all points within radius r of q accepted by
// filter, ordered by increasing distance.
func (t *Tree) WithinRadius(q geom.Point, r float64, filter func(int) bool) []Neighbor {
	return t.WithinRadiusInto(q, r, filter, nil)
}

// WithinRadiusInto is WithinRadius appending into buf[:0] (capacity
// reused, nil buf allocates); the result aliases buf.
func (t *Tree) WithinRadiusInto(q geom.Point, r float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	out := t.WithinRadiusUnordered(q, r, filter, buf)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// WithinRadiusUnordered is WithinRadiusInto without the final distance
// sort, for callers that impose their own order anyway (ground-truth
// cell construction feeds the result to a distance heap): results come
// back in tree-traversal order.
func (t *Tree) WithinRadiusUnordered(q geom.Point, r float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	out := buf[:0]
	if len(t.nodes) == 0 || r < 0 {
		return out
	}
	t.within(0, q, r*r, filter, &out)
	return out
}

func (t *Tree) within(off int32, q geom.Point, r2 float64, filter func(int) bool, out *[]Neighbor) {
	if off < 0 {
		return
	}
	n := &t.nodes[off]
	p := t.pts[n.idx]
	if d2 := q.Dist2(p); d2 <= r2 && (filter == nil || filter(n.idx)) {
		*out = append(*out, Neighbor{Index: n.idx, Dist: math.Sqrt(d2)})
	}
	var qc, pc float64
	if n.axis == 0 {
		qc, pc = q.X, p.X
	} else {
		qc, pc = q.Y, p.Y
	}
	near, far := n.left, n.right
	if qc > pc {
		near, far = far, near
	}
	t.within(near, q, r2, filter, out)
	planeDist := qc - pc
	if planeDist*planeDist <= r2 {
		t.within(far, q, r2, filter, out)
	}
}

// NearestDist returns the distance from q to its nearest indexed point,
// or +Inf when the tree is empty. Used by workload analysis and the
// Theorem-2 bias bound (which needs inter-tuple nearest distances).
func (t *Tree) NearestDist(q geom.Point, filter func(int) bool) float64 {
	var buf [1]Neighbor
	nb := t.KNNWithinInto(q, 1, math.Inf(1), filter, buf[:0])
	if len(nb) == 0 {
		return math.Inf(1)
	}
	return nb[0].Dist
}
