// Package kdtree provides a 2-D k-d tree used as the query engine of
// the simulated location based services: exact k-nearest-neighbor
// search with optional per-tuple filtering (for server-side selection
// pass-through) and radius-bounded search (for the maximum-coverage
// constraint of §5.3).
//
// The tree is built once over a static point set (LBS databases in the
// paper are static) and is safe for concurrent readers.
package kdtree

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
)

// Tree is an immutable 2-D k-d tree over an indexed point set.
type Tree struct {
	pts   []geom.Point // original points, indexed by caller indices
	nodes []node       // implicit tree in preorder
}

type node struct {
	idx         int // index into pts
	axis        uint8
	left, right int32 // node slice offsets; −1 = none
}

// Build constructs a tree over pts. Indices reported by searches refer
// to positions in pts. Build copies the slice header but not the
// points; callers must not mutate pts afterwards.
func Build(pts []geom.Point) *Tree {
	t := &Tree{pts: pts}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]node, 0, len(pts))
	t.build(idx, 0)
	return t
}

// build recursively partitions idx around the median along the given
// axis and returns the node offset (−1 for empty).
func (t *Tree) build(idx []int, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	mid := len(idx) / 2
	// Median selection via full sort of the sub-slice; Build is a
	// one-time O(n log² n) cost dwarfed by the experiments themselves.
	if axis == 0 {
		sort.Slice(idx, func(a, b int) bool { return t.pts[idx[a]].X < t.pts[idx[b]].X })
	} else {
		sort.Slice(idx, func(a, b int) bool { return t.pts[idx[a]].Y < t.pts[idx[b]].Y })
	}
	off := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{idx: idx[mid], axis: axis})
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[off].left = left
	t.nodes[off].right = right
	return off
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Point returns the point at index i.
func (t *Tree) Point(i int) geom.Point { return t.pts[i] }

// Neighbor is one search result: the point's index and its Euclidean
// distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// maxHeap over neighbor distances (root = farthest), for kNN pruning.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// KNN returns up to k nearest neighbors of q among points accepted by
// filter (nil filter accepts everything), ordered by increasing
// distance. Ties are broken by index for determinism.
func (t *Tree) KNN(q geom.Point, k int, filter func(int) bool) []Neighbor {
	return t.KNNWithin(q, k, math.Inf(1), filter)
}

// KNNWithin behaves like KNN but only considers points within maxDist
// of q (the paper's maximum-coverage constraint dmax).
func (t *Tree) KNNWithin(q geom.Point, k int, maxDist float64, filter func(int) bool) []Neighbor {
	if k <= 0 || len(t.nodes) == 0 {
		return nil
	}
	h := make(maxHeap, 0, k+1)
	t.knn(0, q, k, maxDist*maxDist, filter, &h)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

func (t *Tree) knn(off int32, q geom.Point, k int, maxDist2 float64, filter func(int) bool, h *maxHeap) {
	if off < 0 {
		return
	}
	n := &t.nodes[off]
	p := t.pts[n.idx]
	d2 := q.Dist2(p)
	if d2 <= maxDist2 && (filter == nil || filter(n.idx)) {
		if h.Len() < k {
			heap.Push(h, Neighbor{Index: n.idx, Dist: math.Sqrt(d2)})
		} else if d := math.Sqrt(d2); d < (*h)[0].Dist {
			(*h)[0] = Neighbor{Index: n.idx, Dist: d}
			heap.Fix(h, 0)
		}
	}
	var qc, pc float64
	if n.axis == 0 {
		qc, pc = q.X, p.X
	} else {
		qc, pc = q.Y, p.Y
	}
	near, far := n.left, n.right
	if qc > pc {
		near, far = far, near
	}
	t.knn(near, q, k, maxDist2, filter, h)
	// Visit the far side only if the splitting plane is closer than the
	// current k-th distance (or the heap is not yet full).
	planeDist := qc - pc
	planeDist2 := planeDist * planeDist
	if planeDist2 <= maxDist2 && (h.Len() < k || planeDist2 < (*h)[0].Dist*(*h)[0].Dist) {
		t.knn(far, q, k, maxDist2, filter, h)
	}
}

// WithinRadius returns all points within radius r of q accepted by
// filter, ordered by increasing distance.
func (t *Tree) WithinRadius(q geom.Point, r float64, filter func(int) bool) []Neighbor {
	if len(t.nodes) == 0 || r < 0 {
		return nil
	}
	var out []Neighbor
	t.within(0, q, r*r, filter, &out)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

func (t *Tree) within(off int32, q geom.Point, r2 float64, filter func(int) bool, out *[]Neighbor) {
	if off < 0 {
		return
	}
	n := &t.nodes[off]
	p := t.pts[n.idx]
	if d2 := q.Dist2(p); d2 <= r2 && (filter == nil || filter(n.idx)) {
		*out = append(*out, Neighbor{Index: n.idx, Dist: math.Sqrt(d2)})
	}
	var qc, pc float64
	if n.axis == 0 {
		qc, pc = q.X, p.X
	} else {
		qc, pc = q.Y, p.Y
	}
	near, far := n.left, n.right
	if qc > pc {
		near, far = far, near
	}
	t.within(near, q, r2, filter, out)
	planeDist := qc - pc
	if planeDist*planeDist <= r2 {
		t.within(far, q, r2, filter, out)
	}
}

// NearestDist returns the distance from q to its nearest indexed point,
// or +Inf when the tree is empty. Used by workload analysis and the
// Theorem-2 bias bound (which needs inter-tuple nearest distances).
func (t *Tree) NearestDist(q geom.Point, filter func(int) bool) float64 {
	nb := t.KNN(q, 1, filter)
	if len(nb) == 0 {
		return math.Inf(1)
	}
	return nb[0].Dist
}
