package kdtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestParallelBuildEquivalence pins the parallel build path (n ≥
// parallelBuildMin): the tree must index every point exactly once and
// answer KNN identically to brute force — the fragment splice is pure
// layout, never structure.
func TestParallelBuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := parallelBuildMin * 3
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Build(pts)

	if len(tr.nodes) != n {
		t.Fatalf("tree has %d nodes for %d points", len(tr.nodes), n)
	}
	seen := make([]bool, n)
	for _, nd := range tr.nodes {
		if nd.idx < 0 || nd.idx >= n || seen[nd.idx] {
			t.Fatalf("node index %d out of range or duplicated", nd.idx)
		}
		seen[nd.idx] = true
		if nd.left < -1 || int(nd.left) >= len(tr.nodes) || nd.right < -1 || int(nd.right) >= len(tr.nodes) {
			t.Fatalf("unpatched child pointer (%d, %d)", nd.left, nd.right)
		}
	}

	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(20)
		got := tr.KNN(q, k, nil)
		want := bruteKNN(pts, q, k, 1e18, nil)
		if !sameNeighbors(got, want) {
			t.Fatalf("trial %d: parallel-built tree disagrees with brute force at %v k=%d", trial, q, k)
		}
	}
}

// TestBuildPreorderedRoundTrip pins the O(n) rebuild path: points
// reordered by PreorderIndices and fed to BuildPreordered must form a
// tree that answers exactly like brute force, and whose own preorder
// is the identity (so write → reopen → write cycles are stable).
func TestBuildPreorderedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1023} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		orig := Build(pts)
		order := orig.PreorderIndices()
		if len(order) != n {
			t.Fatalf("n=%d: preorder has %d entries", n, len(order))
		}
		re := make([]geom.Point, n)
		for pos, idx := range order {
			re[pos] = pts[idx]
		}
		rebuilt := BuildPreordered(re)
		if rebuilt.Len() != n || len(rebuilt.nodes) != n {
			t.Fatalf("n=%d: rebuilt tree has %d points, %d nodes", n, rebuilt.Len(), len(rebuilt.nodes))
		}
		for pos, idx := range rebuilt.PreorderIndices() {
			if idx != pos {
				t.Fatalf("n=%d: rebuilt preorder not identity at %d (got %d)", n, pos, idx)
			}
		}
		for trial := 0; trial < 30; trial++ {
			q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			k := 1 + rng.Intn(8)
			got := rebuilt.KNN(q, k, nil)
			want := bruteKNN(re, q, k, 1e18, nil)
			if !sameNeighbors(got, want) {
				t.Fatalf("n=%d trial %d: preordered rebuild disagrees with brute force at %v k=%d", n, trial, q, k)
			}
		}
	}
}
