// Geodesic (great-circle) search over the same tree. The tree shape
// is metric-independent — it partitions raw coordinates — so the
// Haversine mode reuses the structure and only changes how candidate
// distances and splitting-plane lower bounds are computed:
//
//   - latitude planes (axis 1) bound the distance to the far subtree
//     by the pure latitude separation R·|Δφ| (hav ≥ sin²(Δφ/2));
//   - longitude planes (axis 0) bound it by the circular separation of
//     the query longitude from the far side's longitude interval
//     ([plane, maxX] or [minX, plane] — build-time extents), scaled by
//     √(cos φ_q · cos φ_floor) where φ_floor is the data set's extreme
//     latitude. A lune that wraps past the antimeridian or data beyond
//     the poles degrade the bound to 0 (never prune) — conservative,
//     never wrong.
//
// Both bounds are true lower bounds for every point in the pruned
// subtree (see geo.LatSepLB/LonSepLB), so the search is exact: pinned
// against brute force in geodesic_test.go. The Euclidean entry points
// in kdtree.go are deliberately untouched — metric dispatch happens
// here, and Euclidean callers keep their bit-identical fast path.
package kdtree

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/geom"
)

// KNNWithinMetricInto is KNNWithinInto under an explicit metric.
// Euclidean delegates to the exact existing traversal (bit-identical
// results and allocation behavior); Haversine runs the geodesic
// traversal with conservative lune pruning. Neighbor.Dist is in the
// metric's unit (km for Haversine).
func (t *Tree) KNNWithinMetricInto(m geo.Metric, q geom.Point, k int, maxDist float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	if m != geo.Haversine {
		return t.KNNWithinInto(q, k, maxDist, filter, buf)
	}
	return t.knnGeodesicInto(q, k, maxDist, filter, buf)
}

// WithinRadiusMetricInto is WithinRadiusInto under an explicit
// metric: all points within r of q, ordered by (distance, index).
func (t *Tree) WithinRadiusMetricInto(m geo.Metric, q geom.Point, r float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	if m != geo.Haversine {
		return t.WithinRadiusInto(q, r, filter, buf)
	}
	out := t.WithinRadiusMetricUnordered(m, q, r, filter, buf)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// WithinRadiusMetricUnordered is WithinRadiusUnordered under an
// explicit metric (results in tree-traversal order).
func (t *Tree) WithinRadiusMetricUnordered(m geo.Metric, q geom.Point, r float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	if m != geo.Haversine {
		return t.WithinRadiusUnordered(q, r, filter, buf)
	}
	out := buf[:0]
	if len(t.nodes) == 0 || r < 0 {
		return out
	}
	hq := geo.NewHaversineQuery(q)
	cosFloor := geo.CosLatFloor(-t.maxAbsY, t.maxAbsY)
	t.withinGeo(0, q, hq, r, cosFloor, filter, &out)
	return out
}

// farBoundGeo computes, for the node at off with point p, the
// near/far children relative to q and a Haversine lower bound on the
// distance from q to every point of the far subtree.
func (t *Tree) farBoundGeo(n *node, p geom.Point, q geom.Point, hq geo.HaversineQuery, cosFloor float64) (near, far int32, lb float64) {
	near, far = n.left, n.right
	if n.axis == 0 {
		if q.X > p.X {
			near, far = far, near
			// Far side holds longitudes ≤ p.X.
			lb = geo.LonSepLB(q.X, hq.CosLat(), t.minX, p.X, cosFloor)
		} else {
			lb = geo.LonSepLB(q.X, hq.CosLat(), p.X, t.maxX, cosFloor)
		}
		return near, far, lb
	}
	if q.Y > p.Y {
		near, far = far, near
	}
	return near, far, geo.LatSepLB(q.Y, p.Y)
}

// knnGeodesicInto mirrors KNNWithinInto's iterative best-first
// traversal with Haversine distances and lune lower bounds in the
// pending-subtree frames. Same buffer contract, same (Dist, Index)
// result order.
func (t *Tree) knnGeodesicInto(q geom.Point, k int, maxDist float64, filter func(int) bool, buf []Neighbor) []Neighbor {
	h := buf[:0]
	if k <= 0 || len(t.nodes) == 0 {
		return h
	}
	hq := geo.NewHaversineQuery(q)
	cosFloor := geo.CosLatFloor(-t.maxAbsY, t.maxAbsY)
	type frame struct {
		off int32
		lb  float64
	}
	var stack [maxTraversalDepth]frame
	top := 0
	off := int32(0)
	for {
		for off >= 0 {
			n := &t.nodes[off]
			p := t.pts[n.idx]
			d := hq.Dist(p)
			if d <= maxDist && (filter == nil || filter(n.idx)) {
				nb := Neighbor{Index: n.idx, Dist: d}
				if len(h) < k {
					h = append(h, nb)
					siftUpNb(h, len(h)-1)
				} else if nbWorse(h[0], nb) {
					h[0] = nb
					siftDownNb(h, 0)
				}
			}
			near, far, lb := t.farBoundGeo(n, p, q, hq, cosFloor)
			if far >= 0 {
				stack[top] = frame{off: far, lb: lb}
				top++
			}
			off = near
		}
		off = -1
		for top > 0 {
			top--
			fr := stack[top]
			if fr.lb > maxDist {
				continue
			}
			if len(h) == k && fr.lb >= h[0].Dist {
				continue
			}
			off = fr.off
			break
		}
		if off < 0 {
			break
		}
	}
	for i := len(h) - 1; i > 0; i-- {
		h[0], h[i] = h[i], h[0]
		siftDownNb(h[:i], 0)
	}
	return h
}

// withinGeo is the geodesic analogue of within: descend the near side
// unconditionally and the far side only when its lune lower bound
// stays within r.
func (t *Tree) withinGeo(off int32, q geom.Point, hq geo.HaversineQuery, r, cosFloor float64, filter func(int) bool, out *[]Neighbor) {
	if off < 0 {
		return
	}
	n := &t.nodes[off]
	p := t.pts[n.idx]
	if d := hq.Dist(p); d <= r && (filter == nil || filter(n.idx)) {
		*out = append(*out, Neighbor{Index: n.idx, Dist: d})
	}
	near, far, lb := t.farBoundGeo(n, p, q, hq, cosFloor)
	t.withinGeo(near, q, hq, r, cosFloor, filter, out)
	if lb <= r {
		t.withinGeo(far, q, hq, r, cosFloor, filter, out)
	}
}
