package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestBuildDefensiveCopy pins the ownership contract: Build copies the
// input, so mutating (or zeroing) the caller's slice afterwards must
// not change query results — the aliasing hazard the pre-overhaul
// Build documented but could not enforce.
func TestBuildDefensiveCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	tr := Build(pts)
	want := tr.KNN(geom.Pt(5, 5), 7, nil)
	for i := range pts {
		pts[i] = geom.Pt(math.NaN(), math.NaN()) // hostile mutation
	}
	got := tr.KNN(geom.Pt(5, 5), 7, nil)
	if len(got) != len(want) {
		t.Fatalf("result length changed after input mutation: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d changed after input mutation: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestKNNIntoMatchesKNN checks the buffered entry point returns the
// same neighbors as the allocating one, across ks and reused buffers.
func TestKNNIntoMatchesKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Build(pts)
	var buf []Neighbor
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(12)
		want := tr.KNN(q, k, nil)
		buf = tr.KNNInto(q, k, nil, buf)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, buf[i], want[i])
			}
		}
	}
}

// TestKNNIntoNoAlloc asserts the allocation contract of the warm path.
func TestKNNIntoNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 4096)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Build(pts)
	buf := make([]Neighbor, 0, 17)
	q := geom.Pt(50, 50)
	allocs := testing.AllocsPerRun(200, func() {
		buf = tr.KNNInto(q, 16, nil, buf)
	})
	if allocs != 0 {
		t.Fatalf("warm KNNInto allocates %.1f/run, want 0", allocs)
	}
}

// TestQuickselectBalance verifies the median build produces the
// balanced depth the iterative traversal's fixed stack relies on.
func TestQuickselectBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 17, 1000, 5000} {
		pts := make([]geom.Point, n)
		for i := range pts {
			// Adversarial: many duplicate coordinates.
			pts[i] = geom.Pt(float64(rng.Intn(10)), float64(rng.Intn(10)))
		}
		tr := Build(pts)
		maxDepth := 0
		var walk func(off int32, d int)
		walk = func(off int32, d int) {
			if off < 0 {
				return
			}
			if d > maxDepth {
				maxDepth = d
			}
			walk(tr.nodes[off].left, d+1)
			walk(tr.nodes[off].right, d+1)
		}
		walk(0, 1)
		limit := int(math.Ceil(math.Log2(float64(n+1)))) + 1
		if maxDepth > limit {
			t.Fatalf("n=%d: depth %d exceeds balanced bound %d", n, maxDepth, limit)
		}
	}
}

// BenchmarkKNNInto10k is BenchmarkKNN10k on the allocation-free entry
// point with a warm reused buffer; must show 0 allocs/op.
func BenchmarkKNNInto10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 10000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Build(pts)
	buf := make([]Neighbor, 0, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		buf = tr.KNNInto(q, 10, nil, buf)
	}
}
