package churn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
)

// Config parameterizes a deterministic mutation stream over a
// database — the update-heavy workload of a production LBS, where the
// hidden population moves, joins and leaves continuously while
// estimators sample it.
type Config struct {
	// InsertFrac, DeleteFrac and MoveFrac weight the op mix; they are
	// normalized over their sum. All zero means the default mix
	// (20% inserts, 20% deletes, 60% moves — a user population that
	// mostly moves around).
	InsertFrac, DeleteFrac, MoveFrac float64
	// MoveSigma is the standard deviation of a move step as a fraction
	// of the bounds diagonal (default 0.02). Destinations clamp to the
	// bounds, so moved tuples stay inside every shard tiling.
	MoveSigma float64
	// Seed makes the stream reproducible.
	Seed int64
}

func (c *Config) fill() {
	if c.InsertFrac == 0 && c.DeleteFrac == 0 && c.MoveFrac == 0 {
		c.InsertFrac, c.DeleteFrac, c.MoveFrac = 0.2, 0.2, 0.6
	}
	if c.MoveSigma == 0 {
		c.MoveSigma = 0.02
	}
}

// Churn generates n mutation ops over db's population,
// deterministically from cfg.Seed. The generator tracks the evolving
// ID set — deletes and moves always target a currently live ID,
// inserts always use a fresh ID above every existing one — so every
// op in the stream applies cleanly in order against a live database
// seeded with db. Inserted tuples clone a random template tuple's
// attributes (same Name/Category/Attrs/Tags shape as the scenario)
// at a uniform location in bounds.
func Ops(db *lbs.Database, cfg Config, n int) []live.Op {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := db.Bounds()
	sigma := cfg.MoveSigma * bounds.Diagonal()

	ids := make([]int64, db.Len())
	loc := make(map[int64]geom.Point, db.Len())
	var nextID int64 = 1
	for i := 0; i < db.Len(); i++ {
		id := db.Tuple(i).ID
		ids[i] = id
		loc[id] = db.EffectiveLoc(i)
		if id >= nextID {
			nextID = id + 1
		}
	}
	if db.Len() == 0 {
		panic("churn: Ops needs a non-empty database")
	}

	total := cfg.InsertFrac + cfg.DeleteFrac + cfg.MoveFrac
	pIns := cfg.InsertFrac / total
	pDel := cfg.DeleteFrac / total

	uniform := func() geom.Point {
		return geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
	ops := make([]live.Op, 0, n)
	for len(ops) < n {
		r := rng.Float64()
		switch {
		case r < pIns || len(ids) == 0:
			tmpl := db.Tuple(rng.Intn(db.Len()))
			t := lbs.Tuple{
				ID:       nextID,
				Loc:      uniform(),
				Name:     fmt.Sprintf("%s-%d", tmpl.Name, nextID),
				Category: tmpl.Category,
				Attrs:    tmpl.Attrs,
				Tags:     tmpl.Tags,
			}
			nextID++
			ids = append(ids, t.ID)
			loc[t.ID] = t.Loc
			ops = append(ops, live.Op{Kind: live.OpInsert, Tuple: t})
		case r < pIns+pDel:
			i := rng.Intn(len(ids))
			id := ids[i]
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			delete(loc, id)
			ops = append(ops, live.Op{Kind: live.OpDelete, ID: id})
		default:
			id := ids[rng.Intn(len(ids))]
			p := loc[id]
			dest := bounds.Clamp(geom.Pt(
				p.X+rng.NormFloat64()*sigma,
				p.Y+rng.NormFloat64()*sigma,
			))
			// Degenerate bounds could clamp onto NaN; keep the plain
			// gaussian step finite regardless.
			if math.IsNaN(dest.X) || math.IsNaN(dest.Y) {
				dest = p
			}
			loc[id] = dest
			ops = append(ops, live.Op{Kind: live.OpMove, ID: id, Loc: dest})
		}
	}
	return ops
}
