package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestEvaluateBasics(t *testing.T) {
	outcomes := []RunOutcome{
		{Estimate: 90, CI95: 15, Queries: 100},
		{Estimate: 110, CI95: 15, Queries: 120},
		{Estimate: 100, CI95: 5, Queries: 80},
	}
	ev := Evaluate(100, outcomes)
	if ev.Runs != 3 {
		t.Errorf("runs: %d", ev.Runs)
	}
	if ev.Mean != 100 {
		t.Errorf("mean: %v", ev.Mean)
	}
	if ev.Bias != 0 || ev.BiasRel != 0 {
		t.Errorf("bias: %v", ev.Bias)
	}
	if math.Abs(ev.Variance-100) > 1e-9 {
		t.Errorf("variance: %v", ev.Variance)
	}
	if math.Abs(ev.MSE-100) > 1e-9 {
		t.Errorf("mse: %v", ev.MSE)
	}
	if ev.Coverage != 1.0 {
		t.Errorf("coverage: %v", ev.Coverage)
	}
	if math.Abs(ev.MeanQueries-100) > 1e-9 {
		t.Errorf("queries: %v", ev.MeanQueries)
	}
	if ev.Median != 100 {
		t.Errorf("median: %v", ev.Median)
	}
}

func TestEvaluateCoveragePartial(t *testing.T) {
	outcomes := []RunOutcome{
		{Estimate: 90, CI95: 5},  // misses truth 100
		{Estimate: 99, CI95: 5},  // covers
		{Estimate: 120, CI95: 1}, // misses
		{Estimate: 101, CI95: 2}, // covers
	}
	ev := Evaluate(100, outcomes)
	if ev.Coverage != 0.5 {
		t.Errorf("coverage: %v", ev.Coverage)
	}
}

func TestEvaluateNoCI(t *testing.T) {
	ev := Evaluate(10, []RunOutcome{{Estimate: 10}})
	if !math.IsNaN(ev.Coverage) {
		t.Errorf("coverage without CIs should be NaN: %v", ev.Coverage)
	}
}

// TestEvaluateEmptyIsZero: zero successful outcomes (e.g. every run's
// budget died before its first sample) must degrade to a zero-valued
// Evaluation rather than crash figure generation.
func TestEvaluateEmptyIsZero(t *testing.T) {
	ev := Evaluate(42, nil)
	if ev.Runs != 0 {
		t.Errorf("Runs = %d, want 0", ev.Runs)
	}
	if ev.Truth != 42 {
		t.Errorf("Truth = %v, want 42", ev.Truth)
	}
	if ev.Mean != 0 || ev.MSE != 0 || ev.Variance != 0 || ev.MeanQueries != 0 {
		t.Errorf("non-zero summary over no outcomes: %+v", ev)
	}
	if !math.IsNaN(ev.Coverage) {
		t.Errorf("coverage over no outcomes should be NaN: %v", ev.Coverage)
	}
	// It must render and score without panicking too.
	_ = ev.String()
	if z := ev.BiasSignificance(); z != 0 {
		t.Errorf("bias significance over no outcomes: %v", z)
	}
	if ev2 := Evaluate(0, []RunOutcome{}); ev2.Runs != 0 {
		t.Errorf("empty non-nil slice: %+v", ev2)
	}
}

func TestMSEDecompositionProperty(t *testing.T) {
	// Property: MSE computed directly (mean squared deviation from
	// truth, with the n/(n−1) variance correction folded in) matches
	// bias² + variance.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		truth := rng.Float64()*100 + 1
		outcomes := make([]RunOutcome, n)
		for i := range outcomes {
			outcomes[i] = RunOutcome{Estimate: truth * (1 + rng.NormFloat64()*0.3)}
		}
		ev := Evaluate(truth, outcomes)
		if ev.MSE < 0 {
			t.Fatalf("negative MSE")
		}
		want := ev.Bias*ev.Bias + ev.Variance
		if math.Abs(ev.MSE-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("decomposition broken: %v vs %v", ev.MSE, want)
		}
		if ev.Q25 > ev.Median || ev.Median > ev.Q75 {
			t.Fatalf("quartiles out of order")
		}
	}
}

func TestBiasSignificance(t *testing.T) {
	// A large consistent offset must register as significant.
	outcomes := make([]RunOutcome, 25)
	rng := rand.New(rand.NewSource(3))
	for i := range outcomes {
		outcomes[i] = RunOutcome{Estimate: 120 + rng.NormFloat64()*5}
	}
	ev := Evaluate(100, outcomes)
	if z := ev.BiasSignificance(); z < 10 {
		t.Errorf("strong bias not significant: z=%v", z)
	}
	// Near-zero bias: small z.
	for i := range outcomes {
		outcomes[i] = RunOutcome{Estimate: 100 + rng.NormFloat64()*5}
	}
	ev = Evaluate(100, outcomes)
	if z := math.Abs(ev.BiasSignificance()); z > 4 {
		t.Errorf("no-bias z too large: %v", z)
	}
}

func TestStringRendering(t *testing.T) {
	ev := Evaluate(100, []RunOutcome{{Estimate: 95, CI95: 10, Queries: 50}, {Estimate: 105, CI95: 10, Queries: 60}})
	s := ev.String()
	for _, want := range []string{"runs=2", "bias=", "rmse=", "queries/run=55"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestQuantileEdge(t *testing.T) {
	if q := quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("single-element quantile: %v", q)
	}
	xs := []float64{1, 2, 3, 4}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("p=0: %v", q)
	}
	if q := quantile(xs, 1); q != 4 {
		t.Errorf("p=1: %v", q)
	}
	if q := quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median: %v", q)
	}
}
