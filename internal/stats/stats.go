// Package stats provides the multi-run statistical evaluation tools
// behind the experiments: MSE decomposition into bias² + variance
// (§2.3 of the paper), confidence-interval coverage checks, and
// quantile summaries. The estimators themselves only need the
// single-run accumulator in internal/core; this package is for
// *evaluating* estimators against known ground truth.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RunOutcome is one independent estimation run against known truth.
type RunOutcome struct {
	Estimate float64
	// CI95 is the half-width of the run's own 95 % confidence interval
	// (0 when the run did not report one).
	CI95 float64
	// Queries spent by the run.
	Queries int64
}

// Evaluation summarizes repeated runs of an estimator.
type Evaluation struct {
	Runs  int
	Truth float64
	// Mean of the run estimates.
	Mean float64
	// Bias = Mean − Truth; BiasRel = Bias/Truth.
	Bias    float64
	BiasRel float64
	// Variance across runs (Bessel-corrected) and the resulting
	// decomposition MSE = Bias² + Variance.
	Variance float64
	MSE      float64
	RMSERel  float64
	// Coverage is the fraction of runs whose reported 95 % CI covered
	// the truth (should be ≈ 0.95 for honest error bars).
	Coverage float64
	// MeanQueries is the average query cost per run.
	MeanQueries float64
	// Quartiles of the run estimates.
	Q25, Median, Q75 float64
}

// Evaluate summarizes outcomes against the ground truth. An empty
// outcome set (every run failed, e.g. the budget died before a single
// sample) yields a zero Evaluation with Runs=0 and NaN coverage
// rather than a panic, so figure generation degrades to empty rows
// instead of crashing.
func Evaluate(truth float64, outcomes []RunOutcome) Evaluation {
	if len(outcomes) == 0 {
		return Evaluation{Truth: truth, Coverage: math.NaN()}
	}
	n := float64(len(outcomes))
	ev := Evaluation{Runs: len(outcomes), Truth: truth}
	ests := make([]float64, len(outcomes))
	var sum, qsum float64
	covered := 0
	withCI := 0
	for i, o := range outcomes {
		ests[i] = o.Estimate
		sum += o.Estimate
		qsum += float64(o.Queries)
		if o.CI95 > 0 {
			withCI++
			if math.Abs(o.Estimate-truth) <= o.CI95 {
				covered++
			}
		}
	}
	ev.Mean = sum / n
	ev.Bias = ev.Mean - truth
	if truth != 0 {
		ev.BiasRel = ev.Bias / truth
	}
	var m2 float64
	for _, e := range ests {
		m2 += (e - ev.Mean) * (e - ev.Mean)
	}
	if len(outcomes) > 1 {
		ev.Variance = m2 / (n - 1)
	}
	ev.MSE = ev.Bias*ev.Bias + ev.Variance
	if truth != 0 {
		ev.RMSERel = math.Sqrt(ev.MSE) / math.Abs(truth)
	}
	if withCI > 0 {
		ev.Coverage = float64(covered) / float64(withCI)
	} else {
		ev.Coverage = math.NaN()
	}
	ev.MeanQueries = qsum / n
	sort.Float64s(ests)
	ev.Q25 = quantile(ests, 0.25)
	ev.Median = quantile(ests, 0.5)
	ev.Q75 = quantile(ests, 0.75)
	return ev
}

// quantile returns the linear-interpolated p-quantile of sorted xs.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the evaluation as a one-line summary.
func (e Evaluation) String() string {
	return fmt.Sprintf(
		"runs=%d mean=%.4g bias=%+.2f%% rmse=%.2f%% coverage=%.0f%% queries/run=%.0f",
		e.Runs, e.Mean, 100*e.BiasRel, 100*e.RMSERel, 100*e.Coverage, e.MeanQueries)
}

// BiasSignificance returns the z-statistic of the bias estimate
// (bias / stderr-of-mean); |z| beyond ~3 indicates a real bias rather
// than run-to-run noise.
func (e Evaluation) BiasSignificance() float64 {
	if e.Runs < 2 || e.Variance == 0 {
		return 0
	}
	return e.Bias / math.Sqrt(e.Variance/float64(e.Runs))
}
