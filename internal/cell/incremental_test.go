package cell

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// freshWithCuts builds a new complex with the same bound, k and cut
// set as c, inserting cuts in sorted key order — the reference result
// an incremental operation must match.
func freshWithCuts(c *Complex) *Complex {
	out := New(c.Bound(), c.K())
	for _, key := range c.CutKeys() {
		l, _ := c.CutLine(key)
		out.AddCut(Cut{Line: l, Key: key})
	}
	return out
}

// faceContains reports whether p lies in any face of the region.
func faceContains(c *Complex, p geom.Point) bool {
	for _, f := range c.Faces() {
		if f.Poly.Contains(p) {
			return true
		}
	}
	return false
}

// agreeOnSamples checks that two complexes with identical cut sets
// agree (area and membership) within tolerance. Sample points near
// subdivision edges are skipped via the cut-distance margin.
func agreeOnSamples(t *testing.T, rng *rand.Rand, got, want *Complex, label string) {
	t.Helper()
	if g, w := got.Area(), want.Area(); !almost(g, w, 1e-7) {
		t.Fatalf("%s: area mismatch: got %.12f want %.12f", label, g, w)
	}
	for trial := 0; trial < 200; trial++ {
		p := geom.RandomInRect(rng, unitBox)
		margin := 1e-7
		tooClose := false
		for _, key := range want.CutKeys() {
			l, _ := want.CutLine(key)
			if l.Dist(p) < margin {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		if g, w := faceContains(got, p), faceContains(want, p); g != w {
			t.Fatalf("%s: membership mismatch at %v: got %v want %v", label, p, g, w)
		}
	}
}

// TestReplaceCutIncrementalMatchesFresh refines random cuts repeatedly
// and checks the incremental wedge path against a from-scratch build of
// the same final cut set, for k = 1 and k > 1 (where replaced lines
// can hand area back to the region).
func TestReplaceCutIncrementalMatchesFresh(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		for round := 0; round < 20; round++ {
			target := geom.RandomInRect(rng, unitBox)
			c := NewFromRect(unitBox, k)
			sites := make([]geom.Point, 12)
			for i := range sites {
				sites[i] = geom.RandomInRect(rng, unitBox)
				if sites[i].Dist(target) < 1e-3 {
					sites[i] = sites[i].Add(geom.Pt(1e-2, 1e-2))
				}
				c.AddCut(Cut{Line: geom.Bisector(target, sites[i]), Key: int64(i)})
			}
			// Refine a few cuts with perturbed bisectors (the LNR
			// binary-search pattern: lines move slightly, both ways).
			for step := 0; step < 8; step++ {
				i := rng.Intn(len(sites))
				jitter := geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Scale(0.02)
				moved := sites[i].Add(jitter)
				if moved.Dist(target) < 1e-3 {
					continue
				}
				sites[i] = moved
				c.ReplaceCut(Cut{Line: geom.Bisector(target, moved), Key: int64(i)})
				agreeOnSamples(t, rng, c, freshWithCuts(c), "after replace")
			}
		}
	}
}

// TestReplaceCutGrowsRegion replaces a cut with a strictly laxer line
// and checks the handed-back area is recovered (the case a pure
// re-split of surviving faces cannot handle).
func TestReplaceCutGrowsRegion(t *testing.T) {
	c := NewFromRect(unitBox, 1)
	a := geom.Pt(0.2, 0.5)
	c.AddCut(Cut{Line: geom.Bisector(a, geom.Pt(0.4, 0.5)), Key: 1})
	shrunk := c.Area()
	if !almost(shrunk, 0.3, 1e-9) {
		t.Fatalf("setup area = %.9f, want 0.3", shrunk)
	}
	// Move the opposing site farther away: the cell must grow back.
	c.ReplaceCut(Cut{Line: geom.Bisector(a, geom.Pt(0.8, 0.5)), Key: 1})
	if got := c.Area(); !almost(got, 0.5, 1e-9) {
		t.Fatalf("area after laxer replace = %.9f, want 0.5", got)
	}
}

// TestReplaceCutUnknownKeyAdds preserves the legacy semantics that
// replacing a never-registered key simply adds the cut.
func TestReplaceCutUnknownKeyAdds(t *testing.T) {
	c := NewFromRect(unitBox, 1)
	c.ReplaceCut(Cut{Line: geom.Bisector(geom.Pt(0.25, 0.5), geom.Pt(0.75, 0.5)), Key: 9})
	if got := c.Area(); !almost(got, 0.5, 1e-9) {
		t.Fatalf("area = %.9f, want 0.5", got)
	}
	if !c.HasCut(9) {
		t.Fatal("cut not registered")
	}
}

// TestResetRestoresInitialState checks Reset brings the complex back to
// the cut-free bound while preserving correctness of a rebuild.
func TestResetRestoresInitialState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := geom.Pt(0.5, 0.5)
	var cuts []Cut
	for i := 0; i < 30; i++ {
		s := geom.RandomInRect(rng, unitBox)
		if s.Dist(target) < 1e-3 {
			continue
		}
		cuts = append(cuts, Cut{Line: geom.Bisector(target, s), Key: int64(i)})
	}
	c := NewFromRect(unitBox, 2)
	for _, cut := range cuts {
		c.AddCut(cut)
	}
	want := c.Area()
	c.Reset()
	if got := c.Area(); !almost(got, 1, 1e-12) {
		t.Fatalf("area after Reset = %.12f, want 1", got)
	}
	if c.NumCuts() != 0 || c.NumFaces() != 1 {
		t.Fatalf("after Reset: %d cuts, %d faces", c.NumCuts(), c.NumFaces())
	}
	for _, cut := range cuts {
		c.AddCut(cut)
	}
	if got := c.Area(); !almost(got, want, 1e-9) {
		t.Fatalf("area after reset+reinsert = %.12f, want %.12f", got, want)
	}
}

// TestAddCutSteadyStateAllocs asserts the headline contract of the
// geometry-engine overhaul: once warm, a Reset + full cut re-insertion
// cycle performs zero heap allocations.
func TestAddCutSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	target := geom.Pt(0.5, 0.5)
	var cuts []Cut
	for i := 0; i < 40; i++ {
		s := geom.RandomInRect(rng, unitBox)
		if s.Dist(target) < 1e-3 {
			continue
		}
		cuts = append(cuts, Cut{Line: geom.Bisector(target, s), Key: int64(i)})
	}
	c := NewFromRect(unitBox, 3)
	insert := func() {
		c.Reset()
		for _, cut := range cuts {
			c.AddCut(cut)
		}
	}
	insert() // warm the pools
	insert()
	if allocs := testing.AllocsPerRun(10, insert); allocs != 0 {
		t.Fatalf("steady-state AddCut cycle allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestIncrementalAreaMatchesFaceSum guards the incremental cachedArea
// bookkeeping against drift relative to a direct face scan.
func TestIncrementalAreaMatchesFaceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, k := range []int{1, 3} {
		target := geom.RandomInRect(rng, unitBox)
		c := NewFromRect(unitBox, k)
		for i := 0; i < 60; i++ {
			s := geom.RandomInRect(rng, unitBox)
			if s.Dist(target) < 1e-3 {
				continue
			}
			if i%7 == 3 && c.NumCuts() > 0 {
				c.ReplaceCut(Cut{Line: geom.Bisector(target, s), Key: int64(i % 5)})
			} else {
				c.AddCut(Cut{Line: geom.Bisector(target, s), Key: int64(i)})
			}
			var sum float64
			for _, f := range c.Faces() {
				sum += f.Poly.Area()
			}
			if !almost(c.Area(), sum, 1e-9) {
				t.Fatalf("k=%d cut %d: cached area %.12f, face sum %.12f", k, i, c.Area(), sum)
			}
		}
	}
}

// TestInsertSitesBatchDuplicates verifies in-batch duplicate keys are
// inserted once and produce the same region as a deduplicated batch.
func TestInsertSitesBatchDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	target := geom.Pt(0.5, 0.5)
	base := make([]Site, 0, 20)
	for i := 0; i < 20; i++ {
		base = append(base, Site{Key: int64(i), Loc: geom.RandomInRect(rng, unitBox)})
	}
	dup := make([]Site, 0, 3*len(base))
	for rep := 0; rep < 3; rep++ {
		dup = append(dup, base...)
	}
	a := BuildFromSites(unitBox.Polygon(), 2, target, base)
	b := BuildFromSites(unitBox.Polygon(), 2, target, dup)
	if !almost(a.Area(), b.Area(), 1e-12) {
		t.Fatalf("area with dups %.12f != without %.12f", b.Area(), a.Area())
	}
	if a.NumCuts() != b.NumCuts() {
		t.Fatalf("cuts with dups %d != without %d", b.NumCuts(), a.NumCuts())
	}
}
