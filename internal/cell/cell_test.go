package cell

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

var unitBox = geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))

// bruteTopK reports whether target (index ti) is among the k nearest of
// pts to q — the ground-truth membership predicate.
func bruteTopK(q geom.Point, pts []geom.Point, ti, k int) bool {
	closer := 0
	dt := q.Dist2(pts[ti])
	for i, p := range pts {
		if i == ti {
			continue
		}
		if q.Dist2(p) < dt {
			closer++
		}
	}
	return closer <= k-1
}

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.RandomInRect(rng, unitBox)
	}
	return pts
}

func buildFor(pts []geom.Point, ti, k int) *Complex {
	sites := make([]Site, 0, len(pts)-1)
	for i, p := range pts {
		if i == ti {
			continue
		}
		sites = append(sites, Site{Key: int64(i), Loc: p})
	}
	return BuildFromSites(unitBox.Polygon(), k, pts[ti], sites)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with k=0 did not panic")
		}
	}()
	New(unitBox.Polygon(), 0)
}

func TestSingleSiteFullBox(t *testing.T) {
	c := NewFromRect(unitBox, 1)
	if !almost(c.Area(), 1, 1e-12) {
		t.Errorf("empty complex area: %v", c.Area())
	}
	if c.NumFaces() != 1 || c.NumCuts() != 0 {
		t.Errorf("faces=%d cuts=%d", c.NumFaces(), c.NumCuts())
	}
	if !c.Contains(geom.Pt(0.5, 0.5)) {
		t.Errorf("center not contained")
	}
	if c.Contains(geom.Pt(2, 2)) {
		t.Errorf("outside point contained")
	}
}

func TestTwoSitesHalves(t *testing.T) {
	a := geom.Pt(0.25, 0.5)
	b := geom.Pt(0.75, 0.5)
	c := NewFromRect(unitBox, 1)
	if !c.AddCut(Cut{Line: geom.Bisector(a, b), Key: 1}) {
		t.Fatalf("cut did not change region")
	}
	if !almost(c.Area(), 0.5, 1e-9) {
		t.Errorf("half area: %v", c.Area())
	}
	if !c.Contains(geom.Pt(0.1, 0.5)) || c.Contains(geom.Pt(0.9, 0.5)) {
		t.Errorf("membership wrong after cut")
	}
	// Duplicate key ignored.
	if c.AddCut(Cut{Line: geom.Bisector(a, geom.Pt(0.9, 0.9)), Key: 1}) {
		t.Errorf("duplicate key accepted")
	}
}

func TestTopKTwoSites(t *testing.T) {
	// With k=2 and a single other site, the whole box returns the target
	// within top-2: the cut must not remove anything.
	a := geom.Pt(0.25, 0.5)
	b := geom.Pt(0.75, 0.5)
	c := NewFromRect(unitBox, 2)
	c.AddCut(Cut{Line: geom.Bisector(a, b), Key: 1})
	if !almost(c.Area(), 1, 1e-9) {
		t.Errorf("top-2 with one competitor should keep full box, area=%v", c.Area())
	}
	// But AreaAtMost(1) is the top-1 cell: half the box.
	if !almost(c.AreaAtMost(1), 0.5, 1e-9) {
		t.Errorf("AreaAtMost(1): %v", c.AreaAtMost(1))
	}
}

func TestMembershipMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 30)
		for _, k := range []int{1, 2, 3, 5} {
			ti := rng.Intn(len(pts))
			c := buildFor(pts, ti, k)
			for probe := 0; probe < 300; probe++ {
				q := geom.RandomInRect(rng, unitBox)
				want := bruteTopK(q, pts, ti, k)
				got := c.Contains(q)
				if got != want {
					// Tolerate only near-boundary discrepancies.
					if math.Abs(kthGap(q, pts, ti, k)) > 1e-7 {
						t.Fatalf("k=%d membership mismatch at %v: got %v want %v",
							k, q, got, want)
					}
				}
			}
		}
	}
}

// kthGap returns d(q, target) − d(q, k-th nearest other point); near
// zero means q is near the cell boundary.
func kthGap(q geom.Point, pts []geom.Point, ti, k int) float64 {
	var ds []float64
	for i, p := range pts {
		if i == ti {
			continue
		}
		ds = append(ds, q.Dist(p))
	}
	sort.Float64s(ds)
	if k-1 >= len(ds) {
		return math.Inf(1)
	}
	return q.Dist(pts[ti]) - ds[k-1]
}

func TestAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 40)
	for _, k := range []int{1, 2, 4} {
		ti := 7
		c := buildFor(pts, ti, k)
		area := c.Area()
		const n = 40000
		hits := 0
		for i := 0; i < n; i++ {
			q := geom.RandomInRect(rng, unitBox)
			if bruteTopK(q, pts, ti, k) {
				hits++
			}
		}
		mc := float64(hits) / n * unitBox.Area()
		se := math.Sqrt(mc*(1-mc)/n) + 1e-4
		if math.Abs(area-mc) > 5*se+0.01 {
			t.Errorf("k=%d area %v vs MC %v", k, area, mc)
		}
	}
}

func TestTopKCellsPartitionProperty(t *testing.T) {
	// Every location belongs to exactly k top-k cells, so the areas of
	// all tuples' top-k cells must sum to k·|V0|.
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 25)
	for _, k := range []int{1, 2, 3} {
		var sum float64
		for ti := range pts {
			c := buildFor(pts, ti, k)
			sum += c.Area()
		}
		want := float64(k) * unitBox.Area()
		if math.Abs(sum-want) > 1e-6 {
			t.Errorf("k=%d: cell areas sum to %v, want %v", k, sum, want)
		}
	}
}

func TestAreaAtMostMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 30)
	c := buildFor(pts, 3, 5)
	prev := 0.0
	for h := 1; h <= 5; h++ {
		a := c.AreaAtMost(h)
		if a < prev-1e-12 {
			t.Errorf("AreaAtMost not monotone at h=%d: %v < %v", h, a, prev)
		}
		prev = a
	}
	if !almost(c.AreaAtMost(5), c.Area(), 1e-12) {
		t.Errorf("AreaAtMost(k) != Area")
	}
	if !almost(c.AreaAtMost(99), c.Area(), 1e-12) {
		t.Errorf("AreaAtMost(>k) != Area")
	}
}

func TestVerticesOnRegionClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 20)
	c := buildFor(pts, 0, 2)
	verts := c.Vertices()
	if len(verts) == 0 {
		t.Fatalf("no vertices")
	}
	for _, v := range verts {
		// Every vertex must lie in the closure of the region: the count
		// of strictly-closer competitors must be ≤ k−1 after nudging v
		// slightly toward the target (the closure's interior direction).
		nudged := v.Add(pts[0].Sub(v).Scale(1e-6))
		if !c.Contains(nudged) {
			t.Errorf("vertex %v not in region closure", v)
		}
	}
}

func TestBoundaryVerticesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 20)
	c := buildFor(pts, 1, 3)
	all := c.Vertices()
	boundary := c.BoundaryVertices()
	if len(boundary) == 0 || len(boundary) > len(all) {
		t.Fatalf("boundary=%d all=%d", len(boundary), len(all))
	}
}

func TestRandomPointInsideRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 25)
	c := buildFor(pts, 4, 2)
	for i := 0; i < 2000; i++ {
		p, ok := c.RandomPoint(rng)
		if !ok {
			t.Fatalf("sampling failed with non-empty region")
		}
		if !c.Contains(p) && c.CloserCount(p) > 1 {
			t.Fatalf("sample %v outside region (closer count %d)", p, c.CloserCount(p))
		}
	}
}

func TestRandomPointEmptyRegion(t *testing.T) {
	// Surround the target so tightly that the k=1 cell is ~ the whole
	// box minus everything — construct an actually empty region by
	// cutting with two opposing half-planes.
	c := NewFromRect(unitBox, 1)
	c.AddCut(Cut{Line: geom.Line{A: 1, B: 0, C: -1}, Key: 1}) // x ≤ −1: empty
	if c.Area() > geom.Eps {
		t.Fatalf("region should be empty, area=%v", c.Area())
	}
	if _, ok := c.RandomPoint(rand.New(rand.NewSource(1))); ok {
		t.Errorf("sampled from empty region")
	}
}

func TestReplaceCutRefines(t *testing.T) {
	a := geom.Pt(0.3, 0.5)
	c := NewFromRect(unitBox, 1)
	// A deliberately wrong cut.
	c.AddCut(Cut{Line: geom.Bisector(a, geom.Pt(0.5, 0.5)), Key: 7})
	wrong := c.Area()
	// Refine to the true competitor at (0.9, 0.5).
	c.ReplaceCut(Cut{Line: geom.Bisector(a, geom.Pt(0.9, 0.5)), Key: 7})
	if got := c.Area(); !almost(got, 0.6, 1e-9) {
		t.Errorf("after refine area=%v want 0.6 (was %v)", got, wrong)
	}
	if c.NumCuts() != 1 {
		t.Errorf("cut count after replace: %d", c.NumCuts())
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewFromRect(unitBox, 2)
	c.AddCut(Cut{Line: geom.Bisector(geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.8)), Key: 1})
	d := c.Clone()
	d.AddCut(Cut{Line: geom.Bisector(geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.2)), Key: 2})
	if c.NumCuts() != 1 || d.NumCuts() != 2 {
		t.Errorf("clone not independent: %d, %d", c.NumCuts(), d.NumCuts())
	}
}

func TestConcaveTopKCell(t *testing.T) {
	// Figure-1-style configuration: a ring of sites around a center
	// produces a concave top-2 cell for an off-center site. We verify
	// concavity by finding two region points whose midpoint is outside.
	pts := []geom.Point{
		geom.Pt(0.5, 0.5),  // center site (target competitor)
		geom.Pt(0.5, 0.85), // target: A on the ring
		geom.Pt(0.83, 0.61),
		geom.Pt(0.7, 0.22),
		geom.Pt(0.3, 0.22),
		geom.Pt(0.17, 0.61),
	}
	c := buildFor(pts, 1, 2)
	if c.Area() <= 0 {
		t.Fatalf("empty top-2 cell")
	}
	rng := rand.New(rand.NewSource(9))
	concave := false
	for i := 0; i < 20000 && !concave; i++ {
		p, _ := c.RandomPoint(rng)
		q, _ := c.RandomPoint(rng)
		m := p.Mid(q)
		if !c.Contains(m) && c.CloserCount(m) > 1 {
			concave = true
		}
	}
	if !concave {
		t.Errorf("expected a concave top-2 cell in ring configuration")
	}
	// Despite concavity, the area must still match brute force MC.
	hits, n := 0, 30000
	for i := 0; i < n; i++ {
		q := geom.RandomInRect(rng, unitBox)
		if bruteTopK(q, pts, 1, 2) {
			hits++
		}
	}
	mc := float64(hits) / float64(n)
	if math.Abs(c.Area()-mc) > 0.02 {
		t.Errorf("concave cell area %v vs MC %v", c.Area(), mc)
	}
}

func TestInsertSitesPruning(t *testing.T) {
	// A distant site whose bisector cannot reach the region must be
	// pruned (not registered).
	rng := rand.New(rand.NewSource(77))
	pts := randomPoints(rng, 100)
	// Dense cluster guarantees a small cell for index 0; the pruning
	// should register far fewer than 99 cuts.
	c := buildFor(pts, 0, 1)
	if c.NumCuts() >= 99 {
		t.Errorf("no pruning occurred: %d cuts", c.NumCuts())
	}
	// Pruning must not change the region vs the unpruned construction.
	full := NewFromRect(unitBox, 1)
	for i := 1; i < len(pts); i++ {
		if pts[i].Dist(pts[0]) < geom.Eps {
			continue
		}
		full.AddCut(Cut{Line: geom.Bisector(pts[0], pts[i]), Key: int64(i)})
	}
	if math.Abs(full.Area()-c.Area()) > 1e-9 {
		t.Errorf("pruned area %v != full area %v", c.Area(), full.Area())
	}
}

func TestInsertSitesSkipsCoincident(t *testing.T) {
	target := geom.Pt(0.5, 0.5)
	c := NewFromRect(unitBox, 1)
	n := InsertSites(c, target, []Site{{Key: 1, Loc: target}})
	if n != 0 || c.NumCuts() != 0 {
		t.Errorf("coincident site not skipped: changed=%d cuts=%d", n, c.NumCuts())
	}
}

func TestCutKeysSorted(t *testing.T) {
	c := NewFromRect(unitBox, 1)
	c.AddCut(Cut{Line: geom.Bisector(geom.Pt(0.5, 0.5), geom.Pt(0.9, 0.5)), Key: 5})
	c.AddCut(Cut{Line: geom.Bisector(geom.Pt(0.5, 0.5), geom.Pt(0.1, 0.5)), Key: 2})
	keys := c.CutKeys()
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 5 {
		t.Errorf("cut keys: %v", keys)
	}
	if !c.HasCut(5) || c.HasCut(99) {
		t.Errorf("HasCut broken")
	}
	if _, ok := c.CutLine(2); !ok {
		t.Errorf("CutLine(2) missing")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
