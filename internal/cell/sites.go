package cell

import (
	"sort"

	"repro/internal/geom"
)

// Site pairs a tuple identifier with its known location. Used when
// locations are available (LR-LBS interfaces and ground-truth
// computation).
type Site struct {
	Key int64
	Loc geom.Point
}

// BuildFromSites constructs the top-k cell of a target located at
// target with respect to the given sites (which must not include the
// target itself), over the given bounding polygon.
//
// Sites are processed in order of increasing distance from the target
// so that the standard pruning rule applies: a site s can affect the
// region only if some region point p is closer to s than to the target,
// which requires d(target, s) < 2·max_p d(target, p); once the sorted
// distance exceeds twice the current maximum region distance, no later
// site can cut the region and insertion stops. The rule is valid for
// any k because it bounds where the bisector B(target, s) can reach.
func BuildFromSites(bound geom.Polygon, k int, target geom.Point, sites []Site) *Complex {
	c := New(bound, k)
	InsertSites(c, target, sites)
	return c
}

// InsertSites adds bisector cuts between target and each site into an
// existing complex, using the distance-ordered pruning rule described
// at BuildFromSites. Sites whose Key is already registered, or that
// coincide with the target within Eps, are skipped. It returns the
// number of cuts that changed the region.
func InsertSites(c *Complex, target geom.Point, sites []Site) int {
	ordered := make([]Site, 0, len(sites))
	for _, s := range sites {
		if c.HasCut(s.Key) || s.Loc.Dist(target) < geom.Eps {
			continue
		}
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return target.Dist2(ordered[i].Loc) < target.Dist2(ordered[j].Loc)
	})
	changed := 0
	maxDist := c.MaxDistFrom(target)
	for _, s := range ordered {
		d := target.Dist(s.Loc)
		if d > 2*maxDist+geom.Eps {
			break
		}
		if c.AddCut(Cut{Line: geom.Bisector(target, s.Loc), Key: s.Key}) {
			changed++
			maxDist = c.MaxDistFrom(target)
		}
	}
	return changed
}
