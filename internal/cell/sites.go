package cell

import (
	"math"
	"sync"

	"repro/internal/geom"
)

// Site pairs a tuple identifier with its known location. Used when
// locations are available (LR-LBS interfaces and ground-truth
// computation).
type Site struct {
	Key int64
	Loc geom.Point
}

// BuildFromSites constructs the top-k cell of a target located at
// target with respect to the given sites (which must not include the
// target itself), over the given bounding polygon.
//
// Sites are processed in order of increasing distance from the target
// so that the standard pruning rule applies: a site s can affect the
// region only if some region point p is closer to s than to the target,
// which requires d(target, s) < 2·max_p d(target, p); once the sorted
// distance exceeds twice the current maximum region distance, no later
// site can cut the region and insertion stops. The rule is valid for
// any k because it bounds where the bisector B(target, s) can reach.
func BuildFromSites(bound geom.Polygon, k int, target geom.Point, sites []Site) *Complex {
	c := New(bound, k)
	InsertSites(c, target, sites)
	return c
}

// siteDist is one filtered batch entry with its precomputed squared
// distance, so the sort comparator does no arithmetic.
type siteDist struct {
	site Site
	d2   float64
}

// insertScratch is the reusable per-call working set of InsertSites.
// Pooled package-wide (not per complex) so one-shot BuildFromSites
// callers reach steady state too; sync.Pool keeps concurrent estimator
// workers from contending.
type insertScratch struct {
	ordered []siteDist
}

var insertPool = sync.Pool{New: func() any { return new(insertScratch) }}

// InsertSites adds bisector cuts between target and each site into an
// existing complex, using the distance-ordered pruning rule described
// at BuildFromSites. Sites whose Key is already registered or that
// coincide with the target within Eps are filtered out up front;
// duplicate keys within the batch itself are eliminated during the
// distance-ordered consumption: identical duplicates pop from the
// distance heap back-to-back (equal distance, equal key) and are
// skipped in O(1), and any exotic same-key stragglers are absorbed by
// AddCut's own key registry. No per-batch map is built — hashing every
// site cost more than the duplicates it saved (ground-truth ring
// gathering calls this with thousands of small, dup-free batches).
// The working set comes from a package-level pool and is reused across
// calls. It returns the number of cuts that changed the region.
func InsertSites(c *Complex, target geom.Point, sites []Site) int {
	sc := insertPool.Get().(*insertScratch)
	ordered := sc.ordered[:0]
	for _, s := range sites {
		d2 := s.Loc.Dist2(target)
		if d2 < geom.Eps*geom.Eps || c.HasCut(s.Key) {
			continue
		}
		ordered = append(ordered, siteDist{site: s, d2: d2})
	}
	// Lazy distance ordering: the pruning rule usually stops after the
	// nearest handful of sites, so a heapify + pop loop beats a full
	// sort of the batch (O(n + m log n) for m consumed sites).
	heapifySites(ordered)
	changed := 0
	maxDist := c.MaxDistFrom(target)
	lastKey := int64(math.MinInt64)
	for n := len(ordered); n > 0; n-- {
		sd := ordered[0]
		reach := 2*maxDist + geom.Eps
		if sd.d2 > reach*reach {
			break
		}
		ordered[0] = ordered[n-1]
		siftDownSite(ordered[:n-1], 0)
		if sd.site.Key == lastKey {
			continue // in-batch duplicate: identical entries pop adjacently
		}
		lastKey = sd.site.Key
		if c.AddCut(Cut{Line: geom.Bisector(target, sd.site.Loc), Key: sd.site.Key}) {
			changed++
			maxDist = c.MaxDistFrom(target)
		}
	}
	sc.ordered = ordered
	insertPool.Put(sc)
	return changed
}

// heapifySites arranges s as a binary min-heap on d2.
func heapifySites(s []siteDist) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftDownSite(s, i)
	}
}

// siftDownSite restores the min-heap property below index i.
func siftDownSite(s []siteDist, i int) {
	for {
		l := 2*i + 1
		if l >= len(s) {
			return
		}
		least := l
		if r := l + 1; r < len(s) && s[r].d2 < s[l].d2 {
			least = r
		}
		if s[i].d2 <= s[least].d2 {
			return
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
}
