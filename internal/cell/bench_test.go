package cell

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// BenchmarkBuildTop1 measures exact top-1 cell construction with the
// distance-pruned insertion — the inner loop of every LR sample.
func BenchmarkBuildTop1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500)
	sites := make([]Site, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		sites = append(sites, Site{Key: int64(i), Loc: pts[i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromSites(unitBox.Polygon(), 1, pts[0], sites)
	}
}

// BenchmarkBuildTop5 measures the cost growth for top-k subdivisions
// (more faces, count bookkeeping) — the price of the §3.2.3 device.
func BenchmarkBuildTop5(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 500)
	sites := make([]Site, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		sites = append(sites, Site{Key: int64(i), Loc: pts[i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromSites(unitBox.Polygon(), 5, pts[0], sites)
	}
}

// BenchmarkAddCut measures a single subdivision refinement.
func BenchmarkAddCut(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewFromRect(unitBox, 3)
		b.StartTimer()
		for j := 1; j < len(pts); j++ {
			c.AddCut(Cut{Line: geom.Bisector(pts[0], pts[j]), Key: int64(j)})
		}
	}
}

// BenchmarkRandomPoint measures region sampling (the §3.2.4 Monte-
// Carlo trial generator).
func BenchmarkRandomPoint(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 200)
	c := buildFor(pts, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RandomPoint(rng)
	}
}

// BenchmarkVertices measures vertex-set extraction (the Theorem-1
// test-point enumeration).
func BenchmarkVertices(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 200)
	c := buildFor(pts, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Vertices()
	}
}
