package cell

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// BenchmarkBuildTop1 measures exact top-1 cell construction with the
// distance-pruned insertion — the inner loop of every LR sample.
func BenchmarkBuildTop1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500)
	sites := make([]Site, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		sites = append(sites, Site{Key: int64(i), Loc: pts[i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromSites(unitBox.Polygon(), 1, pts[0], sites)
	}
}

// BenchmarkBuildTop5 measures the cost growth for top-k subdivisions
// (more faces, count bookkeeping) — the price of the §3.2.3 device.
func BenchmarkBuildTop5(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 500)
	sites := make([]Site, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		sites = append(sites, Site{Key: int64(i), Loc: pts[i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromSites(unitBox.Polygon(), 5, pts[0], sites)
	}
}

// BenchmarkAddCut measures steady-state subdivision refinement: one
// complex is Reset and refilled with the same 63 cuts every iteration,
// so the per-complex pools are warm and the loop must show 0 allocs/op
// (the headline acceptance contract of the geometry-engine overhaul).
func BenchmarkAddCut(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 64)
	c := NewFromRect(unitBox, 3)
	fill := func() {
		c.Reset()
		for j := 1; j < len(pts); j++ {
			c.AddCut(Cut{Line: geom.Bisector(pts[0], pts[j]), Key: int64(j)})
		}
	}
	fill() // warm pools and map buckets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
	}
}

// BenchmarkReplaceCut measures one LNR-style refinement: an existing
// cut's line is replaced by a slightly perturbed one, exercising the
// incremental wedge path (the pre-overhaul implementation rebuilt the
// whole complex here).
func BenchmarkReplaceCut(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 64)
	c := NewFromRect(unitBox, 3)
	for j := 1; j < len(pts); j++ {
		c.AddCut(Cut{Line: geom.Bisector(pts[0], pts[j]), Key: int64(j)})
	}
	keys := c.CutKeys()
	// Two alternating perturbed lines per registered cut, precomputed
	// outside the timed loop, so every ReplaceCut genuinely moves the
	// line (a repeated identical line short-circuits).
	lines := make([][2]geom.Line, len(keys))
	for i, k := range keys {
		for v := 0; v < 2; v++ {
			q := pts[k].Add(geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Scale(1e-3))
			lines[i][v] = geom.Bisector(pts[0], q)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(keys)
		c.ReplaceCut(Cut{Line: lines[j][(i/len(keys))%2], Key: keys[j]})
	}
}

// BenchmarkInsertSites measures the batched distance-pruned insertion
// (history replay: most sites are pruned before cutting).
func BenchmarkInsertSites(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 500)
	sites := make([]Site, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		sites = append(sites, Site{Key: int64(i), Loc: pts[i]})
	}
	c := NewFromRect(unitBox, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		InsertSites(c, pts[0], sites)
	}
}

// BenchmarkRandomPoint measures region sampling (the §3.2.4 Monte-
// Carlo trial generator).
func BenchmarkRandomPoint(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 200)
	c := buildFor(pts, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RandomPoint(rng)
	}
}

// BenchmarkVertices measures vertex-set extraction (the Theorem-1
// test-point enumeration).
func BenchmarkVertices(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 200)
	c := buildFor(pts, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Vertices()
	}
}
