// Package cell implements top-k Voronoi cell regions as convex
// subdivisions ("cell complexes").
//
// Given a target tuple t and a set of "cuts" — perpendicular bisectors
// between t and other tuples, each oriented so that one side is closer
// to t — the top-k Voronoi cell of t with respect to those tuples is
//
//	V_k(t) = { q : |{cuts whose far side contains q}| ≤ k−1 },
//
// because crossing a bisector between two tuples other than t never
// changes how many tuples are closer to q than t. For k = 1 the region
// is the classical (convex) Voronoi cell; for k > 1 it may be concave
// (Figure 1 of the paper), which is why the region is represented as a
// set of disjoint convex faces, each annotated with its "closer count".
//
// The complex supports the operations both estimation algorithms need:
// exact area, the vertex set (for the Theorem-1 confirmation loop),
// membership tests, per-h sub-areas (λ_h upper bounds for the variance
// reduction of §3.2.3), and uniform random sampling (for the
// Monte-Carlo device of §3.2.4).
//
// # Allocation discipline
//
// Cut insertion is the innermost loop of every estimator sample, so the
// complex recycles its own storage: face polygons are drawn from a
// per-complex free list, faces are double-buffered across AddCut
// passes, and each face caches its bounding box and area so cuts that
// cannot touch a face are rejected in O(1) without splitting. Steady-
// state insertion (and Reset + re-insertion) performs no heap
// allocation. The flip side of recycling is aliasing: slices returned
// by Faces() — including the face polygons themselves — are valid only
// until the next mutating call (AddCut, ReplaceCut, InsertSites,
// Reset); callers that need longer-lived views must copy.
package cell

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Face is one convex piece of the subdivision. Count is the number of
// registered cuts whose far side (closer to the cut's other tuple than
// to the target) contains the face. The bounding box and area of Poly
// are cached at construction for the fast-reject test and incremental
// area maintenance.
type Face struct {
	Poly  geom.Polygon
	Count int
	bbox  geom.Rect
	area  float64
}

// newFace builds a face with its cached bounding box and area.
func newFace(poly geom.Polygon, count int) Face {
	return Face{Poly: poly, Count: count, bbox: poly.BoundingRect(), area: poly.Area()}
}

// Area returns the face's cached polygon area.
func (f *Face) Area() float64 { return f.area }

// Bounds returns the face's cached bounding rectangle.
func (f *Face) Bounds() geom.Rect { return f.bbox }

// Cut is one oriented bisector: the negative side of Line is the side
// closer to the target tuple t. Key identifies the other tuple (an ID
// or index) so callers can deduplicate; Source records provenance for
// diagnostics.
type Cut struct {
	Line geom.Line
	// Key identifies the opposing tuple. Cuts with a Key already
	// registered are ignored by AddCut.
	Key int64
}

// Complex is a top-k Voronoi cell region under construction. The zero
// value is not usable; construct with New.
type Complex struct {
	k     int
	bound geom.Polygon
	faces []Face
	cuts  map[int64]geom.Line
	// cachedArea is maintained incrementally: faces entering or leaving
	// the region add or subtract their cached polygon area.
	cachedArea float64

	// Recycled storage (see the package comment): facesBuf is the
	// double buffer AddCut writes into, polyPool the free list of
	// polygon backing arrays.
	facesBuf []Face
	polyPool []geom.Polygon
}

// New returns a complex over the given convex bounding polygon for the
// top-k cell of a target. k must be ≥ 1 and bound non-degenerate.
func New(bound geom.Polygon, k int) *Complex {
	if k < 1 {
		panic("cell: k must be ≥ 1")
	}
	if bound.Area() < geom.Eps {
		panic("cell: degenerate bounding polygon")
	}
	c := &Complex{
		k:     k,
		bound: bound.Clone(),
		cuts:  make(map[int64]geom.Line),
	}
	f := newFace(bound.Clone(), 0)
	c.faces = []Face{f}
	c.cachedArea = f.area
	return c
}

// NewFromRect is a convenience wrapper building the complex over a
// rectangular bounding box.
func NewFromRect(bound geom.Rect, k int) *Complex {
	return New(bound.Polygon(), k)
}

// K returns the k this complex was built for.
func (c *Complex) K() int { return c.k }

// Bound returns the bounding polygon the complex started from.
func (c *Complex) Bound() geom.Polygon { return c.bound }

// NumCuts returns the number of distinct registered cuts.
func (c *Complex) NumCuts() int { return len(c.cuts) }

// NumFaces returns the number of convex faces currently in the region.
func (c *Complex) NumFaces() int { return len(c.faces) }

// HasCut reports whether a cut with the given key is registered.
func (c *Complex) HasCut(key int64) bool {
	_, ok := c.cuts[key]
	return ok
}

// CutLine returns the registered line for key.
func (c *Complex) CutLine(key int64) (geom.Line, bool) {
	l, ok := c.cuts[key]
	return l, ok
}

// CutKeys returns the keys of all registered cuts in ascending order.
func (c *Complex) CutKeys() []int64 {
	keys := make([]int64, 0, len(c.cuts))
	for k := range c.cuts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// allocPoly pops a recycled polygon backing array from the free list
// (nil when the list is empty — append then allocates once and the
// grown array joins the list on release).
func (c *Complex) allocPoly() geom.Polygon {
	if n := len(c.polyPool); n > 0 {
		p := c.polyPool[n-1]
		c.polyPool = c.polyPool[:n-1]
		return p
	}
	return nil
}

// freePoly returns a polygon backing array to the free list.
func (c *Complex) freePoly(p geom.Polygon) {
	if cap(p) == 0 {
		return
	}
	c.polyPool = append(c.polyPool, p[:0])
}

// Reset returns the complex to its initial cut-free state while
// retaining all allocated capacity (cut map buckets, face buffers,
// polygon free list, site scratch), so repeated build/reset cycles on
// one complex are allocation-free in steady state.
func (c *Complex) Reset() {
	for i := range c.faces {
		c.freePoly(c.faces[i].Poly)
	}
	clear(c.cuts)
	p := append(c.allocPoly()[:0], c.bound...)
	f := newFace(p, 0)
	c.faces = append(c.faces[:0], f)
	c.cachedArea = f.area
}

// AddCut registers a new oriented bisector and refines the subdivision:
// every face is split by the cut; the piece on the far (positive) side
// has its count incremented and is dropped once the count reaches k.
// It returns true if the cut changed the region (was new and clipped at
// least one face).
func (c *Complex) AddCut(cut Cut) bool {
	if _, dup := c.cuts[cut.Key]; dup {
		return false
	}
	c.cuts[cut.Key] = cut.Line
	return c.applyCut(cut.Line)
}

// applyCut refines every face by an already-registered line. Faces
// whose cached bounding box lies entirely on one side of the line are
// classified in O(1); only genuinely crossed faces are split, into
// pooled buffers.
func (c *Complex) applyCut(line geom.Line) bool {
	changed := false
	out := c.facesBuf[:0]
	for _, f := range c.faces {
		lo, hi := line.EvalRange(f.bbox)
		if hi <= geom.Eps {
			// Entire face on the near side: unchanged.
			out = append(out, f)
			continue
		}
		if lo >= -geom.Eps {
			// Entire face on the far side.
			changed = true
			if f.Count+1 <= c.k-1 {
				f.Count++
				out = append(out, f)
			} else {
				c.cachedArea -= f.area
				c.freePoly(f.Poly)
			}
			continue
		}
		negDst, posDst := c.allocPoly(), c.allocPoly()
		neg, pos, crossed := f.Poly.SplitInto(line, negDst, posDst)
		if !crossed {
			// The bounding box straddles the line but the polygon does
			// not: same one-sided handling as above.
			c.freePoly(negDst)
			c.freePoly(posDst)
			if pos == nil {
				out = append(out, f)
				continue
			}
			changed = true
			if f.Count+1 <= c.k-1 {
				f.Count++
				out = append(out, f)
			} else {
				c.cachedArea -= f.area
				c.freePoly(f.Poly)
			}
			continue
		}
		if pos == nil {
			// The far piece was a sub-Eps sliver: the face is
			// effectively untouched (legacy Split semantics).
			c.freePoly(negDst)
			c.freePoly(posDst)
			out = append(out, f)
			continue
		}
		changed = true
		c.cachedArea -= f.area
		c.freePoly(f.Poly)
		if neg != nil {
			nf := newFace(neg, f.Count)
			c.cachedArea += nf.area
			out = append(out, nf)
		} else {
			c.freePoly(negDst)
		}
		if f.Count+1 <= c.k-1 {
			pf := newFace(pos, f.Count+1)
			c.cachedArea += pf.area
			out = append(out, pf)
		} else {
			c.freePoly(pos)
		}
	}
	c.facesBuf = c.faces[:0]
	c.faces = out
	return changed
}

// ReplaceCut removes the cut with the given key (if any) and re-adds it
// with a refined line. Used by the LNR algorithm when a binary search
// produces a more precise estimate of an edge already discovered.
//
// The replacement is incremental: only the wedge of the bound where the
// old and new lines disagree about sidedness is re-derived. Face pieces
// outside the wedge keep their counts verbatim; the (thin) wedge pieces
// are rebuilt from scratch against the full cut set, which also
// restores any region the refined line hands back — no full-complex
// rebuild, whose cost LNR's per-refinement calls cannot afford.
func (c *Complex) ReplaceCut(cut Cut) {
	old, had := c.cuts[cut.Key]
	c.cuts[cut.Key] = cut.Line
	if !had {
		c.applyCut(cut.Line)
		return
	}
	if old == cut.Line {
		return
	}
	// The disagreement wedge, as two convex pieces of the bound:
	// retreat {old far, new near} (counts decrease there) and advance
	// {old near, new far} (counts increase there).
	retreat := c.bound.Clip(old.Flip().HalfPlane()).Clip(cut.Line.HalfPlane())
	advance := c.bound.Clip(old.HalfPlane()).Clip(cut.Line.Flip().HalfPlane())
	if retreat == nil && advance == nil {
		return // indistinguishable within the bound
	}
	// Drop every face piece inside the wedge, keeping outside pieces
	// (whose counts are unaffected by the replacement) verbatim.
	out := c.facesBuf[:0]
	for _, f := range c.faces {
		out = c.keepOutsideWedge(out, f, old, cut.Line)
	}
	c.facesBuf = c.faces[:0]
	c.faces = out
	// Re-derive the wedge interior against the full (updated) cut set.
	c.rebuildWedge(retreat)
	c.rebuildWedge(advance)
}

// keepOutsideWedge appends to out the pieces of face f on which the old
// and new lines agree, discarding (and recycling) the wedge pieces.
// Faces are wholly on one side of every registered line by
// construction, so the common case is a single O(1) classification
// against the old line followed by one split against the new one.
func (c *Complex) keepOutsideWedge(out []Face, f Face, old, refined geom.Line) []Face {
	lo, hi := old.EvalRange(f.bbox)
	var farOld bool
	switch {
	case hi <= geom.Eps:
		farOld = false
	case lo >= -geom.Eps:
		farOld = true
	default:
		// Sliver-level ambiguity: resolve by majority of vertex evals.
		var s float64
		for _, p := range f.Poly {
			s += old.Eval(p)
		}
		farOld = s > 0
	}
	negDst, posDst := c.allocPoly(), c.allocPoly()
	neg, pos, crossed := f.Poly.SplitInto(refined, negDst, posDst)
	if !crossed {
		c.freePoly(negDst)
		c.freePoly(posDst)
		if (pos != nil) == farOld {
			return append(out, f) // sides agree: outside the wedge
		}
		c.cachedArea -= f.area
		c.freePoly(f.Poly)
		return out
	}
	keep, keepDst, dropDst := neg, negDst, posDst
	if farOld {
		keep, keepDst, dropDst = pos, posDst, negDst
	}
	c.cachedArea -= f.area
	c.freePoly(f.Poly)
	c.freePoly(dropDst)
	if keep != nil {
		kf := newFace(keep, f.Count)
		c.cachedArea += kf.area
		out = append(out, kf)
	} else {
		c.freePoly(keepDst)
	}
	return out
}

// rebuildWedge reconstructs the subdivision inside one convex wedge
// piece from the full registered cut set and splices the resulting
// region faces into the complex.
func (c *Complex) rebuildWedge(w geom.Polygon) {
	if len(w) < 3 || w.Area() < geom.Eps {
		return
	}
	// Clip can return the receiver unchanged; the sub-complex takes
	// ownership of its bound, so detach from c.bound in that case.
	if &w[0] == &c.bound[0] {
		w = w.Clone()
	}
	sub := &Complex{
		k:          c.k,
		bound:      w,
		cuts:       make(map[int64]geom.Line, len(c.cuts)),
		cachedArea: w.Area(),
	}
	sub.faces = []Face{newFace(w, 0)}
	for _, key := range c.CutKeys() {
		sub.AddCut(Cut{Line: c.cuts[key], Key: key})
	}
	for _, f := range sub.faces {
		c.faces = append(c.faces, f)
		c.cachedArea += f.area
	}
}

// rebuild reconstructs the subdivision from the bound and the current
// cut set (kept as the reference implementation; the incremental paths
// are validated against it in tests).
func (c *Complex) rebuild() {
	cuts := c.cuts
	c.cuts = make(map[int64]geom.Line, len(cuts))
	f := newFace(c.bound.Clone(), 0)
	c.faces = []Face{f}
	c.cachedArea = f.area
	c.facesBuf = nil
	c.polyPool = nil
	// Insert in sorted-key order for determinism.
	keys := make([]int64, 0, len(cuts))
	for k := range cuts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c.AddCut(Cut{Line: cuts[k], Key: k})
	}
}

// Area returns the exact area of the region (faces with count ≤ k−1),
// maintained incrementally across cut operations.
func (c *Complex) Area() float64 {
	if c.cachedArea < 0 {
		return 0 // guard against accumulated float drift near empty
	}
	return c.cachedArea
}

// AreaAtMost returns the area of the sub-region with count ≤ h−1, i.e.
// the (tentative) top-h Voronoi cell for any h ≤ k. With cuts derived
// from a subset of the database this is exactly the λ_h upper bound of
// §3.2.3. AreaAtMost(k) == Area().
func (c *Complex) AreaAtMost(h int) float64 {
	if h >= c.k {
		return c.Area()
	}
	var a float64
	for i := range c.faces {
		if c.faces[i].Count <= h-1 {
			a += c.faces[i].area
		}
	}
	return a
}

// Contains reports whether p lies in the region. Points exactly on
// internal subdivision edges are resolved by direct counting against
// the cuts, which is unambiguous.
func (c *Complex) Contains(p geom.Point) bool {
	if !c.bound.Contains(p) {
		return false
	}
	count := 0
	for _, l := range c.cuts {
		if l.Eval(p) > geom.Eps {
			count++
			if count > c.k-1 {
				return false
			}
		}
	}
	return true
}

// CloserCount returns the number of cuts whose far side strictly
// contains p — i.e. how many of the registered opposing tuples are
// closer to p than the target is.
func (c *Complex) CloserCount(p geom.Point) int {
	count := 0
	for _, l := range c.cuts {
		if l.Eval(p) > geom.Eps {
			count++
		}
	}
	return count
}

// Faces returns the current faces. The returned slice and the face
// polygons share the complex's recycled storage: treat them as
// read-only and only valid until the next mutating call (AddCut,
// ReplaceCut, InsertSites, Reset).
func (c *Complex) Faces() []Face { return c.faces }

// Vertices returns the deduplicated vertex set of all faces of the
// region. This is a superset of the vertices of the region's outer
// boundary: internal subdivision vertices are included. For the
// Theorem-1 confirmation loop a superset is harmless — querying an
// interior vertex either confirms known tuples or reveals an unseen
// tuple, both of which keep the loop sound — it only costs extra
// queries (and is exactly what makes k>1 concavity handling uniform).
func (c *Complex) Vertices() []geom.Point {
	var pts []geom.Point
	for _, f := range c.faces {
		pts = append(pts, f.Poly...)
	}
	return dedupePoints(pts, 1e-7)
}

// BoundaryVertices returns only vertices lying on the outer boundary of
// the region (vertices where the region does not locally cover a full
// disk). A vertex is classified as internal when every incident face
// test point around it stays inside the region; we approximate this by
// probing 8 points on a tiny circle around the vertex.
func (c *Complex) BoundaryVertices() []geom.Point {
	verts := c.Vertices()
	scale := math.Sqrt(c.bound.Area()) * 1e-6
	if scale < geom.Eps {
		scale = geom.Eps
	}
	var out []geom.Point
	for _, v := range verts {
		inside := 0
		for i := 0; i < 8; i++ {
			ang := float64(i) * math.Pi / 4
			p := v.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(scale))
			if c.Contains(p) {
				inside++
			}
		}
		if inside < 8 {
			out = append(out, v)
		}
	}
	return out
}

// RandomPoint returns a point uniformly distributed over the region:
// a face is chosen with probability proportional to its area and a
// point sampled uniformly inside it. It returns false when the region
// is empty.
func (c *Complex) RandomPoint(rng *rand.Rand) (geom.Point, bool) {
	total := c.Area()
	if total < geom.Eps {
		return geom.Point{}, false
	}
	target := rng.Float64() * total
	for i := range c.faces {
		f := &c.faces[i]
		if target < f.area {
			return geom.RandomInPolygon(rng, f.Poly), true
		}
		target -= f.area
	}
	// Floating point slack: fall back to the last face.
	last := c.faces[len(c.faces)-1]
	return geom.RandomInPolygon(rng, last.Poly), true
}

// MaxDistFrom returns the maximum distance from p to the region
// (attained at a face vertex).
func (c *Complex) MaxDistFrom(p geom.Point) float64 {
	var m float64
	for _, f := range c.faces {
		if d := f.Poly.MaxDistFrom(p); d > m {
			m = d
		}
	}
	return m
}

// WithK returns a new complex over the same cuts restricted to top-h
// membership (h ≤ the receiver's k): the faces with count ≤ h−1. Used
// by the adaptive variance-reduction device (§3.2.3), which evaluates
// all candidate top-h cells from one history-derived top-k subdivision
// and then continues refinement at the chosen h.
func (c *Complex) WithK(h int) *Complex {
	if h >= c.k {
		return c.Clone()
	}
	if h < 1 {
		panic("cell: WithK h must be ≥ 1")
	}
	out := &Complex{
		k:     h,
		bound: c.bound.Clone(),
		cuts:  make(map[int64]geom.Line, len(c.cuts)),
	}
	for k, l := range c.cuts {
		out.cuts[k] = l
	}
	for _, f := range c.faces {
		if f.Count <= h-1 {
			nf := f
			nf.Poly = f.Poly.Clone()
			out.faces = append(out.faces, nf)
			out.cachedArea += nf.area
		}
	}
	return out
}

// Clone returns a deep copy of the complex (recycled-storage pools are
// not shared; the clone starts with empty ones).
func (c *Complex) Clone() *Complex {
	out := &Complex{
		k:          c.k,
		bound:      c.bound.Clone(),
		faces:      make([]Face, len(c.faces)),
		cuts:       make(map[int64]geom.Line, len(c.cuts)),
		cachedArea: c.cachedArea,
	}
	for i, f := range c.faces {
		out.faces[i] = f
		out.faces[i].Poly = f.Poly.Clone()
	}
	for k, l := range c.cuts {
		out.cuts[k] = l
	}
	return out
}

// dedupePoints removes near-duplicate points using a rounding grid of
// the given tolerance plus pairwise confirmation within each bucket.
func dedupePoints(pts []geom.Point, tol float64) []geom.Point {
	type key struct{ x, y int64 }
	seen := make(map[key][]geom.Point, len(pts))
	var out []geom.Point
	for _, p := range pts {
		// Check the 3×3 neighborhood of rounding buckets so points
		// straddling a bucket boundary still match.
		kx := int64(math.Floor(p.X / tol))
		ky := int64(math.Floor(p.Y / tol))
		dup := false
	outer:
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, q := range seen[key{kx + dx, ky + dy}] {
					if p.ApproxEq(q, tol) {
						dup = true
						break outer
					}
				}
			}
		}
		if !dup {
			seen[key{kx, ky}] = append(seen[key{kx, ky}], p)
			out = append(out, p)
		}
	}
	return out
}
