// Package cell implements top-k Voronoi cell regions as convex
// subdivisions ("cell complexes").
//
// Given a target tuple t and a set of "cuts" — perpendicular bisectors
// between t and other tuples, each oriented so that one side is closer
// to t — the top-k Voronoi cell of t with respect to those tuples is
//
//	V_k(t) = { q : |{cuts whose far side contains q}| ≤ k−1 },
//
// because crossing a bisector between two tuples other than t never
// changes how many tuples are closer to q than t. For k = 1 the region
// is the classical (convex) Voronoi cell; for k > 1 it may be concave
// (Figure 1 of the paper), which is why the region is represented as a
// set of disjoint convex faces, each annotated with its "closer count".
//
// The complex supports the operations both estimation algorithms need:
// exact area, the vertex set (for the Theorem-1 confirmation loop),
// membership tests, per-h sub-areas (λ_h upper bounds for the variance
// reduction of §3.2.3), and uniform random sampling (for the
// Monte-Carlo device of §3.2.4).
package cell

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Face is one convex piece of the subdivision. Count is the number of
// registered cuts whose far side (closer to the cut's other tuple than
// to the target) contains the face.
type Face struct {
	Poly  geom.Polygon
	Count int
}

// Cut is one oriented bisector: the negative side of Line is the side
// closer to the target tuple t. Key identifies the other tuple (an ID
// or index) so callers can deduplicate; Source records provenance for
// diagnostics.
type Cut struct {
	Line geom.Line
	// Key identifies the opposing tuple. Cuts with a Key already
	// registered are ignored by AddCut.
	Key int64
}

// Complex is a top-k Voronoi cell region under construction. The zero
// value is not usable; construct with New.
type Complex struct {
	k     int
	bound geom.Polygon
	faces []Face
	cuts  map[int64]geom.Line
	// cachedArea < 0 means dirty.
	cachedArea float64
}

// New returns a complex over the given convex bounding polygon for the
// top-k cell of a target. k must be ≥ 1 and bound non-degenerate.
func New(bound geom.Polygon, k int) *Complex {
	if k < 1 {
		panic("cell: k must be ≥ 1")
	}
	if bound.Area() < geom.Eps {
		panic("cell: degenerate bounding polygon")
	}
	return &Complex{
		k:          k,
		bound:      bound.Clone(),
		faces:      []Face{{Poly: bound.Clone(), Count: 0}},
		cuts:       make(map[int64]geom.Line),
		cachedArea: -1,
	}
}

// NewFromRect is a convenience wrapper building the complex over a
// rectangular bounding box.
func NewFromRect(bound geom.Rect, k int) *Complex {
	return New(bound.Polygon(), k)
}

// K returns the k this complex was built for.
func (c *Complex) K() int { return c.k }

// Bound returns the bounding polygon the complex started from.
func (c *Complex) Bound() geom.Polygon { return c.bound }

// NumCuts returns the number of distinct registered cuts.
func (c *Complex) NumCuts() int { return len(c.cuts) }

// NumFaces returns the number of convex faces currently in the region.
func (c *Complex) NumFaces() int { return len(c.faces) }

// HasCut reports whether a cut with the given key is registered.
func (c *Complex) HasCut(key int64) bool {
	_, ok := c.cuts[key]
	return ok
}

// CutLine returns the registered line for key.
func (c *Complex) CutLine(key int64) (geom.Line, bool) {
	l, ok := c.cuts[key]
	return l, ok
}

// CutKeys returns the keys of all registered cuts in ascending order.
func (c *Complex) CutKeys() []int64 {
	keys := make([]int64, 0, len(c.cuts))
	for k := range c.cuts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// AddCut registers a new oriented bisector and refines the subdivision:
// every face is split by the cut; the piece on the far (positive) side
// has its count incremented and is dropped once the count reaches k.
// It returns true if the cut changed the region (was new and clipped at
// least one face).
func (c *Complex) AddCut(cut Cut) bool {
	if _, dup := c.cuts[cut.Key]; dup {
		return false
	}
	c.cuts[cut.Key] = cut.Line
	changed := false
	out := c.faces[:0:0]
	for _, f := range c.faces {
		neg, pos := f.Poly.Split(cut.Line)
		if pos == nil {
			// Entire face on the near side: unchanged.
			out = append(out, f)
			continue
		}
		changed = true
		if neg != nil {
			out = append(out, Face{Poly: neg, Count: f.Count})
		}
		if f.Count+1 <= c.k-1 {
			out = append(out, Face{Poly: pos, Count: f.Count + 1})
		}
	}
	c.faces = out
	c.cachedArea = -1
	return changed
}

// ReplaceCut removes the cut with the given key (if any) and re-adds it
// with a refined line. Because faces cannot be un-split incrementally,
// the complex is rebuilt from all registered cuts. Used by the LNR
// algorithm when a binary search produces a more precise estimate of an
// edge already discovered.
func (c *Complex) ReplaceCut(cut Cut) {
	c.cuts[cut.Key] = cut.Line
	c.rebuild()
}

// rebuild reconstructs the subdivision from the bound and the current
// cut set.
func (c *Complex) rebuild() {
	c.faces = []Face{{Poly: c.bound.Clone(), Count: 0}}
	cuts := c.cuts
	c.cuts = make(map[int64]geom.Line, len(cuts))
	// Insert in sorted-key order for determinism.
	keys := make([]int64, 0, len(cuts))
	for k := range cuts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c.AddCut(Cut{Line: cuts[k], Key: k})
	}
	c.cachedArea = -1
}

// Area returns the exact area of the region (faces with count ≤ k−1).
func (c *Complex) Area() float64 {
	if c.cachedArea >= 0 {
		return c.cachedArea
	}
	var a float64
	for _, f := range c.faces {
		a += f.Poly.Area()
	}
	c.cachedArea = a
	return a
}

// AreaAtMost returns the area of the sub-region with count ≤ h−1, i.e.
// the (tentative) top-h Voronoi cell for any h ≤ k. With cuts derived
// from a subset of the database this is exactly the λ_h upper bound of
// §3.2.3. AreaAtMost(k) == Area().
func (c *Complex) AreaAtMost(h int) float64 {
	if h >= c.k {
		return c.Area()
	}
	var a float64
	for _, f := range c.faces {
		if f.Count <= h-1 {
			a += f.Poly.Area()
		}
	}
	return a
}

// Contains reports whether p lies in the region. Points exactly on
// internal subdivision edges are resolved by direct counting against
// the cuts, which is unambiguous.
func (c *Complex) Contains(p geom.Point) bool {
	if !c.bound.Contains(p) {
		return false
	}
	count := 0
	for _, l := range c.cuts {
		if l.Eval(p) > geom.Eps {
			count++
			if count > c.k-1 {
				return false
			}
		}
	}
	return true
}

// CloserCount returns the number of cuts whose far side strictly
// contains p — i.e. how many of the registered opposing tuples are
// closer to p than the target is.
func (c *Complex) CloserCount(p geom.Point) int {
	count := 0
	for _, l := range c.cuts {
		if l.Eval(p) > geom.Eps {
			count++
		}
	}
	return count
}

// Faces returns the current faces. The returned slice is shared; treat
// it as read-only.
func (c *Complex) Faces() []Face { return c.faces }

// Vertices returns the deduplicated vertex set of all faces of the
// region. This is a superset of the vertices of the region's outer
// boundary: internal subdivision vertices are included. For the
// Theorem-1 confirmation loop a superset is harmless — querying an
// interior vertex either confirms known tuples or reveals an unseen
// tuple, both of which keep the loop sound — it only costs extra
// queries (and is exactly what makes k>1 concavity handling uniform).
func (c *Complex) Vertices() []geom.Point {
	var pts []geom.Point
	for _, f := range c.faces {
		pts = append(pts, f.Poly...)
	}
	return dedupePoints(pts, 1e-7)
}

// BoundaryVertices returns only vertices lying on the outer boundary of
// the region (vertices where the region does not locally cover a full
// disk). A vertex is classified as internal when every incident face
// test point around it stays inside the region; we approximate this by
// probing 8 points on a tiny circle around the vertex.
func (c *Complex) BoundaryVertices() []geom.Point {
	verts := c.Vertices()
	scale := math.Sqrt(c.bound.Area()) * 1e-6
	if scale < geom.Eps {
		scale = geom.Eps
	}
	var out []geom.Point
	for _, v := range verts {
		inside := 0
		for i := 0; i < 8; i++ {
			ang := float64(i) * math.Pi / 4
			p := v.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(scale))
			if c.Contains(p) {
				inside++
			}
		}
		if inside < 8 {
			out = append(out, v)
		}
	}
	return out
}

// RandomPoint returns a point uniformly distributed over the region:
// a face is chosen with probability proportional to its area and a
// point sampled uniformly inside it. It returns false when the region
// is empty.
func (c *Complex) RandomPoint(rng *rand.Rand) (geom.Point, bool) {
	total := c.Area()
	if total < geom.Eps {
		return geom.Point{}, false
	}
	target := rng.Float64() * total
	for _, f := range c.faces {
		a := f.Poly.Area()
		if target < a {
			return geom.RandomInPolygon(rng, f.Poly), true
		}
		target -= a
	}
	// Floating point slack: fall back to the last face.
	last := c.faces[len(c.faces)-1]
	return geom.RandomInPolygon(rng, last.Poly), true
}

// MaxDistFrom returns the maximum distance from p to the region
// (attained at a face vertex).
func (c *Complex) MaxDistFrom(p geom.Point) float64 {
	var m float64
	for _, f := range c.faces {
		if d := f.Poly.MaxDistFrom(p); d > m {
			m = d
		}
	}
	return m
}

// WithK returns a new complex over the same cuts restricted to top-h
// membership (h ≤ the receiver's k): the faces with count ≤ h−1. Used
// by the adaptive variance-reduction device (§3.2.3), which evaluates
// all candidate top-h cells from one history-derived top-k subdivision
// and then continues refinement at the chosen h.
func (c *Complex) WithK(h int) *Complex {
	if h >= c.k {
		return c.Clone()
	}
	if h < 1 {
		panic("cell: WithK h must be ≥ 1")
	}
	out := &Complex{
		k:          h,
		bound:      c.bound.Clone(),
		cuts:       make(map[int64]geom.Line, len(c.cuts)),
		cachedArea: -1,
	}
	for k, l := range c.cuts {
		out.cuts[k] = l
	}
	for _, f := range c.faces {
		if f.Count <= h-1 {
			out.faces = append(out.faces, Face{Poly: f.Poly.Clone(), Count: f.Count})
		}
	}
	return out
}

// Clone returns a deep copy of the complex.
func (c *Complex) Clone() *Complex {
	out := &Complex{
		k:          c.k,
		bound:      c.bound.Clone(),
		faces:      make([]Face, len(c.faces)),
		cuts:       make(map[int64]geom.Line, len(c.cuts)),
		cachedArea: c.cachedArea,
	}
	for i, f := range c.faces {
		out.faces[i] = Face{Poly: f.Poly.Clone(), Count: f.Count}
	}
	for k, l := range c.cuts {
		out.cuts[k] = l
	}
	return out
}

// dedupePoints removes near-duplicate points using a rounding grid of
// the given tolerance plus pairwise confirmation within each bucket.
func dedupePoints(pts []geom.Point, tol float64) []geom.Point {
	type key struct{ x, y int64 }
	seen := make(map[key][]geom.Point, len(pts))
	var out []geom.Point
	for _, p := range pts {
		// Check the 3×3 neighborhood of rounding buckets so points
		// straddling a bucket boundary still match.
		kx := int64(math.Floor(p.X / tol))
		ky := int64(math.Floor(p.Y / tol))
		dup := false
	outer:
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, q := range seen[key{kx + dx, ky + dy}] {
					if p.ApproxEq(q, tol) {
						dup = true
						break outer
					}
				}
			}
		}
		if !dup {
			seen[key{kx, ky}] = append(seen[key{kx, ky}], p)
			out = append(out, p)
		}
	}
	return out
}
