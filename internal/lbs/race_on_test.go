//go:build race

package lbs

// raceEnabled reports that the race detector is active; its
// instrumentation allocates inside sync.Pool and closures, so
// allocation-contract tests are skipped under -race.
const raceEnabled = true
