package lbs

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// CandidateCount returns how many distance candidates one logical
// query needs from a candidate source for the receiver's selection to
// be applied exactly over them: K under distance rank, the K×overfetch
// candidate pool under prominence rank. The receiver must be
// normalized (Normalized); composite fronts — the federation Router,
// the live overlay — size their member services with it.
func (o Options) CandidateCount() int {
	if o.Rank == RankByProminence {
		return o.K * o.ProminenceOverfetch
	}
	return o.K
}

// RankDist is the Euclidean merge key of composite fronts: the
// distance from q to a candidate's effective location, computed
// exactly as the k-d tree computes it (Sqrt of Dist2, not Hypot), so
// a merged ordering reproduces the per-source — and therefore the
// union service's — ordering bit for bit. (LRRecord.Dist is the
// Hypot-computed wire distance; the two can differ in the last ulp,
// which is why it is not the merge key.) Metric-aware fronts use
// Options.RankDist, which degrades to this exact expression under
// geo.Euclidean.
func RankDist(q geom.Point, rec *LRRecord) float64 {
	return math.Sqrt(q.Dist2(rec.Loc))
}

// RankDist is the metric-aware merge key: geo.Metric.Dist evaluates
// the same canonical expression the k-d tree ranks with under either
// metric (Sqrt∘Dist2 for Euclidean, the canonical Haversine for
// geodesic), so merged orderings stay bit-identical to single-service
// orderings in both modes.
func (o Options) RankDist(q geom.Point, rec *LRRecord) float64 {
	return o.Metric.Dist(q, rec.Loc)
}

// MergeRanked merges distance-ranked candidate answers from disjoint
// sources into the exact answer a single Service over the union
// database gives: candidates order by (RankDist, ID) — the service
// ordering contract — the top CandidateCount survive, and the logical
// selection of norm is re-applied (top K by distance, or prominence
// re-scoring by (score, ID) over the candidate pool, exactly the
// selection rawQueryInto applies inside a single service).
//
// Each list must be a (dist, ID)-ranked prefix of its source's
// eligible tuples of length ≥ min(CandidateCount, source size), as
// Service.QueryLR returns when the source's K is the caller's
// CandidateCount; sources must hold pairwise-disjoint tuple sets.
// norm must be normalized (Options.Normalized).
func MergeRanked(q geom.Point, norm Options, lists ...[]LRRecord) []LRRecord {
	type cand struct {
		rec  LRRecord
		dist float64
	}
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	cands := make([]cand, 0, n)
	for _, l := range lists {
		for i := range l {
			cands = append(cands, cand{rec: l[i], dist: norm.RankDist(q, &l[i])})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].rec.ID < cands[b].rec.ID
	})
	if want := norm.CandidateCount(); len(cands) > want {
		cands = cands[:want]
	}
	if norm.Rank == RankByProminence {
		type scored struct {
			i     int
			id    int64
			score float64
		}
		ss := make([]scored, len(cands))
		for i := range cands {
			var attr float64
			if cands[i].rec.Attrs != nil {
				attr = cands[i].rec.Attrs[norm.ProminenceAttr]
			}
			ss[i] = scored{i: i, id: cands[i].rec.ID, score: cands[i].dist - norm.ProminenceWeight*attr}
		}
		sort.Slice(ss, func(a, b int) bool {
			if ss[a].score != ss[b].score {
				return ss[a].score < ss[b].score
			}
			return ss[a].id < ss[b].id
		})
		k := len(ss)
		if k > norm.K {
			k = norm.K
		}
		out := make([]LRRecord, k)
		for i := 0; i < k; i++ {
			out[i] = cands[ss[i].i].rec
		}
		return out
	}
	k := len(cands)
	if k > norm.K {
		k = norm.K
	}
	out := make([]LRRecord, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].rec
	}
	return out
}

// StripLocations converts an LR answer to its rank-only (LNR) view —
// how composite fronts (the Router, the live overlay) derive their LNR
// answers from the internally merged LR candidates.
func StripLocations(recs []LRRecord) []LNRRecord {
	out := make([]LNRRecord, len(recs))
	for i, rec := range recs {
		out[i] = LNRRecord{
			ID:       rec.ID,
			Name:     rec.Name,
			Category: rec.Category,
			Attrs:    rec.Attrs,
			Tags:     rec.Tags,
		}
	}
	return out
}
