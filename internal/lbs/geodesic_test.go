package lbs_test

// Geodesic oracle pins: a Service with Options.Metric = geo.Haversine
// must answer exactly what a brute-force great-circle scan over the
// whole database would — same IDs, same order, bit-identical reported
// distances — on seeded 10k-tuple city workloads. The brute oracle
// restates the ranking contract from first principles (Haversine on
// effective locations, ties by tuple ID, K cap, MaxRadius cutoff) so
// any divergence in the tree's geodesic pruning shows up as a
// mismatch rather than a silently-wrong neighbor.

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// bruteHaversineLR is the oracle: rank every tuple by great-circle
// distance to q on its effective location, break exact ties by ID,
// drop beyond maxRadius (when positive), cap at k.
func bruteHaversineLR(db *lbs.Database, q geom.Point, k int, maxRadius float64) []lbs.LRRecord {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, db.Len())
	for i := 0; i < db.Len(); i++ {
		d := geo.HaversineDist(q, db.EffectiveLoc(i))
		if maxRadius > 0 && d > maxRadius {
			continue
		}
		cands = append(cands, cand{i, d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return db.Tuple(cands[a].i).ID < db.Tuple(cands[b].i).ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]lbs.LRRecord, 0, len(cands))
	for _, c := range cands {
		t := db.Tuple(c.i)
		out = append(out, lbs.LRRecord{
			ID: t.ID, Loc: db.EffectiveLoc(c.i), Dist: c.d,
			Name: t.Name, Category: t.Category, Attrs: t.Attrs, Tags: t.Tags,
		})
	}
	return out
}

// geodesicQueryPoints draws the adversarial query mix: uniform points
// over the scenario box, exact tuple locations (distance ties),
// points outside the box, high-latitude points (where the lune bounds
// are weakest), and near-antimeridian points (longitude wraparound).
func geodesicQueryPoints(rng *rand.Rand, db *lbs.Database, n int) []geom.Point {
	b := db.Bounds()
	pts := make([]geom.Point, 0, n+n/2+16)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Pt(
			b.Min.X+rng.Float64()*b.Width(),
			b.Min.Y+rng.Float64()*b.Height()))
	}
	for i := 0; i < n/2; i++ {
		pts = append(pts, db.EffectiveLoc(rng.Intn(db.Len())))
	}
	pts = append(pts,
		geom.Pt(b.Min.X-30, b.Min.Y-10), // outside, southwest
		geom.Pt(b.Max.X+30, b.Max.Y+10), // outside, northeast
		geom.Pt(b.Min.X, 84),            // near-polar
		geom.Pt(b.Max.X, -84),
		geom.Pt(179.5, (b.Min.Y+b.Max.Y)/2), // antimeridian, both sides
		geom.Pt(-179.5, (b.Min.Y+b.Max.Y)/2),
	)
	return pts
}

func TestGeodesicServiceMatchesBruteOracle(t *testing.T) {
	cases := []struct {
		name string
		db   *lbs.Database
		k    int
		maxR float64
	}{
		{"geo-us-zipf-k10", workload.GeoUS(10000, 41, workload.DensityZipf).DB, 10, 0},
		{"geo-us-zipf-k1", workload.GeoUS(10000, 42, workload.DensityZipf).DB, 1, 0},
		{"geo-us-gauss-radius", workload.GeoUS(10000, 43, workload.DensityGauss).DB, 8, 150},
		{"geo-china-zipf-radius", workload.GeoChina(10000, 44, workload.DensityZipf).DB, 5, 60},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := lbs.NewService(tc.db, lbs.Options{
				K: tc.k, MaxRadius: tc.maxR, Metric: geo.Haversine,
			})
			rng := rand.New(rand.NewSource(7))
			pts := geodesicQueryPoints(rng, tc.db, 40)
			for i, q := range pts {
				want := bruteHaversineLR(tc.db, q, tc.k, tc.maxR)
				got, err := svc.QueryLR(ctx, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("point %d (%v): oracle mismatch\nwant %+v\ngot  %+v", i, q, want, got)
				}
			}
		})
	}
}

// TestGeodesicDistancesAreKilometers sanity-pins the unit: reported
// distances on a geodesic service are great-circle km, bounded by
// half the Earth's circumference, and a query at a tuple's exact
// location reports distance 0 to it.
func TestGeodesicDistancesAreKilometers(t *testing.T) {
	db := workload.GeoUS(2000, 5, workload.DensityGauss).DB
	svc := lbs.NewService(db, lbs.Options{K: 3, Metric: geo.Haversine})
	ctx := context.Background()
	half := math.Pi * geo.EarthRadiusKm
	for i := 0; i < 50; i++ {
		q := db.EffectiveLoc(i * 37 % db.Len())
		recs, err := svc.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 || recs[0].Dist != 0 {
			t.Fatalf("query at tuple location: want leading dist 0, got %+v", recs)
		}
		for _, r := range recs {
			if r.Dist < 0 || r.Dist > half {
				t.Fatalf("dist %v outside [0, %v]", r.Dist, half)
			}
		}
	}
}
