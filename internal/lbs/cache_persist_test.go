package lbs_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func cacheFixture(t *testing.T, opts lbs.CacheOptions) (*lbs.CachedOracle, *lbs.Service, []geom.Point) {
	t.Helper()
	sc := workload.USASchools(300, 3)
	svc := lbs.NewService(sc.DB, lbs.Options{K: 5})
	c := lbs.NewCachedOracle(svc, opts)
	b := sc.DB.Bounds()
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Pt(
			b.Min.X+(b.Max.X-b.Min.X)*float64(i)/19,
			b.Min.Y+(b.Max.Y-b.Min.Y)*float64(i)/19,
		))
	}
	return c, svc, pts
}

func TestCacheSnapshotRoundTrip(t *testing.T) {
	opts := lbs.CacheOptions{Capacity: 256, Quantum: 0.01}
	warm, _, pts := cacheFixture(t, opts)
	ctx := context.Background()

	// Populate with both query kinds and record the answers.
	wantLR := make([][]lbs.LRRecord, len(pts))
	wantLNR := make([][]lbs.LNRRecord, len(pts))
	for i, p := range pts {
		var err error
		if wantLR[i], err = warm.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
		if wantLNR[i], err = warm.QueryLNR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh cache over a fresh service: if the restored
	// entries really answer from the cache, the new service's query
	// meter stays untouched.
	cold, svc, _ := cacheFixture(t, opts)
	n, err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*len(pts) {
		t.Fatalf("restored %d entries, want %d", n, 2*len(pts))
	}
	st := cold.Stats()
	if st.Restored != int64(n) || st.Entries != int64(n) {
		t.Fatalf("stats %+v, want %d restored resident entries", st, n)
	}
	for i, p := range pts {
		lr, err := cold.QueryLR(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr) != len(wantLR[i]) {
			t.Fatalf("pt %d: %d LR records, want %d", i, len(lr), len(wantLR[i]))
		}
		for j := range lr {
			if lr[j].ID != wantLR[i][j].ID || lr[j].Dist != wantLR[i][j].Dist {
				t.Fatalf("pt %d rec %d: restored (%v,%d) != recorded (%v,%d)",
					i, j, lr[j].Dist, lr[j].ID, wantLR[i][j].Dist, wantLR[i][j].ID)
			}
		}
		lnr, err := cold.QueryLNR(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range lnr {
			if lnr[j].ID != wantLNR[i][j].ID {
				t.Fatalf("pt %d rec %d: restored LNR ID %d != %d", i, j, lnr[j].ID, wantLNR[i][j].ID)
			}
		}
	}
	if got := svc.QueryCount(); got != 0 {
		t.Fatalf("restored cache forwarded %d queries; every answer should have replayed", got)
	}
	st = cold.Stats()
	if st.Hits != int64(2*len(pts)) || st.Misses != 0 {
		t.Fatalf("stats after replay %+v, want all hits", st)
	}
}

func TestCacheSnapshotMismatchRejected(t *testing.T) {
	warm, _, pts := cacheFixture(t, lbs.CacheOptions{Capacity: 256, Quantum: 0.01})
	ctx := context.Background()
	for _, p := range pts {
		if _, err := warm.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A different quantum means a different key geometry: the snapshot
	// must be rejected whole, leaving the cache cold (and correct).
	cold, _, _ := cacheFixture(t, lbs.CacheOptions{Capacity: 256, Quantum: 0.5})
	n, err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, lbs.ErrCacheSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrCacheSnapshotMismatch", err)
	}
	if n != 0 || cold.Stats().Entries != 0 {
		t.Fatalf("mismatch loaded %d entries (%d resident), want none", n, cold.Stats().Entries)
	}
}

func TestCacheSnapshotTruncatedKeepsPrefix(t *testing.T) {
	opts := lbs.CacheOptions{Capacity: 256, Quantum: 0.01}
	warm, _, pts := cacheFixture(t, opts)
	ctx := context.Background()
	for _, p := range pts {
		if _, err := warm.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cold, _, _ := cacheFixture(t, opts)
	n, err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()-10]))
	if err == nil {
		t.Fatal("truncated snapshot read reported success")
	}
	if int64(n) != cold.Stats().Entries {
		t.Fatalf("reported %d loaded but %d resident", n, cold.Stats().Entries)
	}
	if n >= len(pts) {
		t.Fatalf("loaded %d entries from a truncated stream of %d", n, len(pts))
	}
}
