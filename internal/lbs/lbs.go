// Package lbs simulates the location based services of the paper: a
// hidden database of located tuples reachable only through a
// restrictive kNN interface.
//
// Two interface views are provided over the same service:
//
//   - LR ("location returned"): QueryLR returns the top-k tuples with
//     their locations and attributes — the Google Maps / Bing Maps
//     model (§2.1).
//   - LNR ("location not returned"): QueryLNR returns only a ranked
//     list of tuple IDs and non-location attributes — the WeChat /
//     Sina Weibo model.
//
// The service also implements the real-world interface limitations the
// paper discusses: the top-k cap, a maximum coverage radius (queries
// with no tuple within dmax return empty, §5.3), a hard query budget
// standing in for API rate limits (§2.1), server-side selection
// pass-through (§5.1), optional location obfuscation (the WeChat
// behaviour observed in Figure 21), and an optional "prominence"
// ranking that mixes distance with a static popularity score (§5.3).
//
// The paper substitutes: the real services are replaced by this
// in-process simulator exposing exactly the same interface contract,
// so the estimation algorithms exercise the same code paths while the
// ground truth stays known.
//
// # Batch queries and caching
//
// Beyond the per-point QueryLR/QueryLNR calls, a Service answers
// multi-point batches (QueryLRBatch/QueryLNRBatch): m points are
// charged against the budget in one atomic reservation and metered
// through the rate limiter under one lock round-trip, so heavily
// concurrent clients amortize the per-query synchronization cost.
// Each answered point still counts as one query — batching buys
// round-trips, not budget.
//
// CachedOracle layers a concurrent sharded LRU cache over any Querier.
// Caching models *client-side memoization* of previously received
// answers — exactly what a polite client of a rate-limited API would
// keep — not a change to the simulated service contract: cache hits
// replay recorded answers without consuming budget or limiter quota,
// while misses pass through (and are charged) unchanged. Functional
// filters cannot be hashed, so filtered queries only use the cache
// when the wrapper declares its filter fixed (CacheOptions.
// TrustFilter); otherwise they bypass it, never replaying an answer
// across different selections.
package lbs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/kdtree"
)

// ErrBudgetExhausted is returned by queries once the configured query
// budget has been spent. Estimation drivers treat it as the signal to
// stop sampling and report.
var ErrBudgetExhausted = errors.New("lbs: query budget exhausted")

// Tuple is one hidden-database row: a located entity (POI or user)
// with its non-location attributes.
type Tuple struct {
	// ID is the stable public identifier (what an LNR interface leaks).
	ID int64
	// Loc is the true location.
	Loc geom.Point
	// Name and Category model the searchable attributes of map
	// services (e.g. Name="Starbucks", Category="restaurant").
	Name     string
	Category string
	// Attrs holds numeric attributes (rating, enrollment, review
	// count, prominence, ...).
	Attrs map[string]float64
	// Tags holds categorical attributes (gender, open_sunday, ...).
	Tags map[string]string
}

// Attr returns the named numeric attribute, or 0 when absent.
func (t *Tuple) Attr(name string) float64 {
	if t.Attrs == nil {
		return 0
	}
	return t.Attrs[name]
}

// Tag returns the named categorical attribute, or "" when absent.
func (t *Tuple) Tag(name string) string {
	if t.Tags == nil {
		return ""
	}
	return t.Tags[name]
}

// Database is an immutable collection of tuples within a bounding box,
// indexed for kNN search on the tuples' effective (possibly
// obfuscated) locations.
//
// Immutability contract: a Database never changes after its
// constructor returns. No method mutates tuples, effective locations
// or the index; callers must treat the Tuple pointers (and their
// shared Attrs/Tags maps) handed out by Tuple/ByID and by query
// answers as read-only. Every layer of the system leans on this —
// Service pools scratch around the index without locking, CachedOracle
// replays answer records by reference, shard.Partition hands effective
// locations across shards verbatim — so mutation support is built
// *around* databases, not into them: internal/live overlays a delta on
// an immutable base and swaps in freshly built Databases, it never
// edits one in place. Snapshot and Epoch make that contract explicit
// at the API surface.
type Database struct {
	bounds geom.Rect
	tuples []Tuple
	// effective per-tuple location used for ranking; equals the true
	// location unless obfuscation was applied.
	effective []geom.Point
	tree      *kdtree.Tree
	byID      map[int64]int
}

// Obfuscation describes how a service distorts the locations it ranks
// by, as location-based social networks do to protect user privacy.
// The effective location is the true location snapped to a grid of
// pitch GridSize (0 = no snapping) and then jittered uniformly in a
// disk of radius Jitter (0 = no jitter), deterministically per tuple
// given Seed.
type Obfuscation struct {
	GridSize float64
	Jitter   float64
	Seed     int64
}

func (o Obfuscation) enabled() bool { return o.GridSize > 0 || o.Jitter > 0 }

// apply returns the effective location for a tuple.
func (o Obfuscation) apply(rng *rand.Rand, p geom.Point) geom.Point {
	out := p
	if o.GridSize > 0 {
		out.X = (math.Floor(out.X/o.GridSize) + 0.5) * o.GridSize
		out.Y = (math.Floor(out.Y/o.GridSize) + 0.5) * o.GridSize
	}
	if o.Jitter > 0 {
		ang := rng.Float64() * 2 * math.Pi
		r := o.Jitter * math.Sqrt(rng.Float64())
		out.X += r * math.Cos(ang)
		out.Y += r * math.Sin(ang)
	}
	return out
}

// NewDatabase builds a database over the given tuples with no
// obfuscation. Tuples outside bounds are accepted but make the
// estimators' bounding region assumption invalid; workloads always
// generate within bounds.
func NewDatabase(bounds geom.Rect, tuples []Tuple) *Database {
	return NewObfuscatedDatabase(bounds, tuples, Obfuscation{})
}

// NewObfuscatedDatabase builds a database whose ranking locations are
// distorted by obf. The true locations remain stored for ground-truth
// evaluation (Figure 21 measures the distance between true and
// inferred positions).
func NewObfuscatedDatabase(bounds geom.Rect, tuples []Tuple, obf Obfuscation) *Database {
	db := &Database{
		bounds:    bounds,
		tuples:    tuples,
		effective: make([]geom.Point, len(tuples)),
		byID:      make(map[int64]int, len(tuples)),
	}
	rng := rand.New(rand.NewSource(obf.Seed))
	for i := range tuples {
		if obf.enabled() {
			db.effective[i] = bounds.Clamp(obf.apply(rng, tuples[i].Loc))
		} else {
			db.effective[i] = tuples[i].Loc
		}
		if _, dup := db.byID[tuples[i].ID]; dup {
			panic(fmt.Sprintf("lbs: duplicate tuple ID %d", tuples[i].ID))
		}
		db.byID[tuples[i].ID] = i
	}
	// The effective slice is private and never mutated after
	// construction, so the tree can take ownership without a copy.
	db.tree = kdtree.BuildOwned(db.effective)
	return db
}

// TupleSource is a scannable collection of tuples with their effective
// (ranking) locations — the read surface of a durable database file
// (internal/store's paged .lbspack packs implement it). Scan must
// visit every tuple exactly once, in a stable order, and stop at the
// first error the callback returns.
type TupleSource interface {
	Bounds() geom.Rect
	Len() int
	Scan(fn func(t Tuple, effective geom.Point) error) error
}

// PreorderedSource is a TupleSource whose scan order is the kd-tree
// preorder of the effective locations (what KDPreorder produces and
// the store's pack writer records). NewDatabaseFromStore exploits it
// to rebuild the index in O(n) — no median selection, the balanced
// shape is implicit in the order — which is the difference between a
// warm restart and a cold rebuild.
type PreorderedSource interface {
	TupleSource
	// KDPreordered reports whether Scan yields tuples in kd-tree
	// preorder of their effective locations.
	KDPreordered() bool
}

// NewDatabaseFromStore materializes an immutable Database from a
// durable tuple source: one paged scan collects tuples and effective
// locations, then the kd-tree is built exactly as
// NewDatabaseWithLocations would. Because the effective locations are
// carried over verbatim (never re-derived from an obfuscation seed),
// a database written to a store and read back answers every LR and
// LNR query bit-identically to the original. Unlike the in-memory
// constructors it returns an error instead of panicking: a corrupt or
// hand-edited file is a runtime condition, not a programming bug.
func NewDatabaseFromStore(src TupleSource) (*Database, error) {
	n := src.Len()
	db := &Database{
		bounds:    src.Bounds(),
		tuples:    make([]Tuple, 0, n),
		effective: make([]geom.Point, 0, n),
		byID:      make(map[int64]int, n),
	}
	// The byID index doubles as the duplicate check, so the scan stays
	// a single pass with a single map.
	err := src.Scan(func(t Tuple, eff geom.Point) error {
		if _, dup := db.byID[t.ID]; dup {
			return fmt.Errorf("lbs: store contains duplicate tuple ID %d", t.ID)
		}
		db.byID[t.ID] = len(db.tuples)
		db.tuples = append(db.tuples, t)
		db.effective = append(db.effective, eff)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ps, ok := src.(PreorderedSource); ok && ps.KDPreordered() {
		db.tree = kdtree.BuildPreordered(db.effective)
	} else {
		db.tree = kdtree.BuildOwned(db.effective)
	}
	return db, nil
}

// KDPreorder returns the tuple indices in the kd-tree's preorder.
// Persisting tuples in this order lets a reader hand the file back to
// kdtree.BuildPreordered and skip the O(n log n) build on reopen; the
// store's pack writer does exactly that.
func (db *Database) KDPreorder() []int { return db.tree.PreorderIndices() }

// NewDatabaseWithLocations builds a database whose ranking (effective)
// locations are supplied explicitly, index-aligned with tuples. It is
// the constructor federation partitioners use to split an obfuscated
// database: re-deriving effective locations from an Obfuscation seed
// is order-dependent, so a shard must carry over the exact effective
// locations of its parent database instead. The effective slice is
// copied; the caller keeps ownership of its argument.
func NewDatabaseWithLocations(bounds geom.Rect, tuples []Tuple, effective []geom.Point) *Database {
	if len(effective) != len(tuples) {
		panic(fmt.Sprintf("lbs: %d effective locations for %d tuples", len(effective), len(tuples)))
	}
	db := &Database{
		bounds:    bounds,
		tuples:    tuples,
		effective: append([]geom.Point(nil), effective...),
		byID:      make(map[int64]int, len(tuples)),
	}
	for i := range tuples {
		if _, dup := db.byID[tuples[i].ID]; dup {
			panic(fmt.Sprintf("lbs: duplicate tuple ID %d", tuples[i].ID))
		}
		db.byID[tuples[i].ID] = i
	}
	db.tree = kdtree.BuildOwned(db.effective)
	return db
}

// Snapshot returns a point-in-time immutable view of the database —
// the database itself, because an immutable Database *is* its own
// permanent snapshot. The method exists so code written against the
// snapshot-per-read discipline of mutable wrappers (internal/live)
// treats a plain Database uniformly, and costs nothing.
func (db *Database) Snapshot() *Database { return db }

// Epoch returns the database's mutation epoch: always 0, because an
// immutable Database never changes. Mutable overlays (internal/live)
// report a counter that advances with every applied mutation; two
// equal epochs from the same source always describe bit-identical
// contents.
func (db *Database) Epoch() uint64 { return 0 }

// Len returns the number of tuples.
func (db *Database) Len() int { return len(db.tuples) }

// Bounds returns the bounding box of the service's coverage region.
func (db *Database) Bounds() geom.Rect { return db.bounds }

// Tuple returns the i-th tuple (ground-truth access for evaluation
// only; the estimators never touch it).
func (db *Database) Tuple(i int) *Tuple { return &db.tuples[i] }

// ByID returns the tuple with the given public ID.
func (db *Database) ByID(id int64) (*Tuple, bool) {
	i, ok := db.byID[id]
	if !ok {
		return nil, false
	}
	return &db.tuples[i], true
}

// EffectiveLoc returns the ranking location of the i-th tuple
// (ground-truth access for evaluation).
func (db *Database) EffectiveLoc(i int) geom.Point { return db.effective[i] }

// EffectiveByID returns the ranking location of the tuple with the
// given public ID. Mutable overlays (internal/live) use it to bound
// the region a deletion can influence.
func (db *Database) EffectiveByID(id int64) (geom.Point, bool) {
	i, ok := db.byID[id]
	if !ok {
		return geom.Point{}, false
	}
	return db.effective[i], true
}

// Subsample returns a database over a uniformly random fraction of the
// tuples (the database-size sweep of Figure 18). frac is clamped to
// (0, 1]; the subsample is deterministic in seed.
func (db *Database) Subsample(frac float64, seed int64) *Database {
	if frac >= 1 {
		return db
	}
	if frac <= 0 {
		frac = 1e-9
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(db.tuples))
	n := int(math.Round(frac * float64(len(db.tuples))))
	if n < 1 {
		n = 1
	}
	picked := make([]Tuple, 0, n)
	for _, i := range perm[:n] {
		picked = append(picked, db.tuples[i])
	}
	sort.Slice(picked, func(a, b int) bool { return picked[a].ID < picked[b].ID })
	return NewDatabase(db.bounds, picked)
}

// GroundTruth evaluates an aggregate exactly over the database: the
// sum of value(t) over tuples satisfying cond (nil = all). Evaluation
// code uses it to compute relative errors.
func (db *Database) GroundTruth(value func(*Tuple) float64, cond func(*Tuple) bool) float64 {
	var s float64
	for i := range db.tuples {
		t := &db.tuples[i]
		if cond == nil || cond(t) {
			s += value(t)
		}
	}
	return s
}

// Count returns the number of tuples satisfying cond (nil = all).
func (db *Database) Count(cond func(*Tuple) bool) int {
	n := 0
	for i := range db.tuples {
		if cond == nil || cond(&db.tuples[i]) {
			n++
		}
	}
	return n
}

// RankMode selects how the service orders results.
type RankMode int

const (
	// RankByDistance is the standard kNN semantics (Euclidean
	// distance to the effective location).
	RankByDistance RankMode = iota
	// RankByProminence mixes distance with a static popularity score,
	// modelling the Google Places "prominence" ordering (§5.3): the
	// rank key is dist − ProminenceWeight·Attrs[ProminenceAttr],
	// evaluated over an over-fetched distance candidate set.
	RankByProminence
)

// Options configures a Service view over a database.
type Options struct {
	// K is the number of results per query (the interface's top-k).
	K int
	// Metric selects the distance function the service ranks by and
	// interprets MaxRadius in. The zero value (geo.Euclidean) is the
	// planar default and preserves the historical behavior bit for
	// bit; geo.Haversine treats coordinates as (lon°, lat°) and
	// measures in kilometers. Every layer of a deployment — member
	// services, federation routers, caches, clients — must agree on
	// the metric; the shard and live constructors thread it through
	// automatically.
	Metric geo.Metric
	// MaxRadius, when positive, caps how far returned tuples may be
	// from the query point; queries with no tuple within the radius
	// return an empty answer (the dmax constraint of §5.3).
	MaxRadius float64
	// Budget, when positive, is the total number of queries the
	// service will answer before returning ErrBudgetExhausted. It
	// models the per-user/IP rate limits of real services.
	Budget int64
	// Limiter, when set, meters queries through a virtual-clock rate
	// limiter; the accumulated virtual waiting time is reported by
	// VirtualWaited. Queries are never rejected by the limiter — they
	// just "take longer", exactly as a polite client sleeping between
	// calls would experience.
	Limiter *RateLimiter
	// Rank selects the ordering semantics.
	Rank RankMode
	// ProminenceAttr and ProminenceWeight parameterize
	// RankByProminence.
	ProminenceAttr   string
	ProminenceWeight float64
	// ProminenceOverfetch is the distance-candidate multiple used for
	// prominence re-ranking (default 4 when zero; negative values are
	// rejected).
	ProminenceOverfetch int
}

// defaultProminenceOverfetch is the candidate multiple used when
// Options.ProminenceOverfetch is left zero. A multiple below 1 would
// make every prominence query return an empty answer.
const defaultProminenceOverfetch = 4

// validate normalizes defaulted fields and rejects nonsensical
// configurations.
func (o *Options) validate() error {
	if o.K < 1 {
		return fmt.Errorf("lbs: Options.K must be ≥ 1, got %d", o.K)
	}
	if o.MaxRadius < 0 {
		return fmt.Errorf("lbs: Options.MaxRadius must be ≥ 0, got %g", o.MaxRadius)
	}
	if o.ProminenceOverfetch < 0 {
		return fmt.Errorf("lbs: Options.ProminenceOverfetch must be ≥ 0, got %d", o.ProminenceOverfetch)
	}
	if o.ProminenceOverfetch == 0 {
		o.ProminenceOverfetch = defaultProminenceOverfetch
	}
	return nil
}

// Normalized returns a copy of o with defaulted fields filled in
// (ProminenceOverfetch), or an error for nonsensical configurations —
// the same validation NewService applies, usable without constructing
// a service. Federation routers normalize their logical options
// through it so their selection semantics match a Service's exactly.
func (o Options) Normalized() (Options, error) {
	c := o
	if err := c.validate(); err != nil {
		return Options{}, err
	}
	return c, nil
}

// Querier is the query surface of a service view: point queries, batch
// queries and the metadata the estimators need. *Service implements
// it, and so do client-side wrappers such as CachedOracle; code
// written against Querier (the HTTP server, the estimation driver)
// accepts either. Implementations must be safe for concurrent use.
//
// Query points are not restricted to Bounds(): a query anywhere on
// the plane is answered from the full database, subject only to the
// MaxRadius coverage constraint — exactly how real map APIs behave
// when probed from outside their market. Bounds() is metadata for the
// estimators' sampling region, not an input domain, and every
// implementation (the simulator, wrappers, federation routers) must
// answer out-of-bounds points identically.
type Querier interface {
	QueryLR(ctx context.Context, q geom.Point, filter Filter) ([]LRRecord, error)
	QueryLNR(ctx context.Context, q geom.Point, filter Filter) ([]LNRRecord, error)
	QueryLRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LRRecord, error)
	QueryLNRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LNRRecord, error)
	Bounds() geom.Rect
	K() int
	QueryCount() int64
}

// Wrapper is implemented by queriers that decorate a single inner
// Querier (ScopedQuerier, CachedOracle). Observers walk wrapper chains
// through it — e.g. the HTTP stats endpoint probes every layer of a
// Scoped→Cached→Service stack for its optional stats interfaces.
// Multi-child compositions (a federation router) are deliberately not
// Wrappers: a chain walk ends there and the composite reports its own
// aggregated stats instead.
type Wrapper interface {
	Inner() Querier
}

// Service is a queryable kNN interface over a database. It is safe for
// concurrent use.
type Service struct {
	db    *Database
	opts  Options
	meter *Meter
	// scratch pools the per-query working set (kNN buffers, rank
	// indices, prominence rescoring) so an answered query allocates
	// nothing beyond the records returned to the caller.
	scratch sync.Pool
}

// queryScratch is the reusable working set of one ranked search.
type queryScratch struct {
	nbs    []kdtree.Neighbor
	idxs   []int
	scored promSorter
}

func (s *Service) getScratch() *queryScratch {
	if sc, ok := s.scratch.Get().(*queryScratch); ok {
		return sc
	}
	return &queryScratch{}
}

func (s *Service) putScratch(sc *queryScratch) { s.scratch.Put(sc) }

// promScored is one prominence-reranked candidate.
type promScored struct {
	idx   int
	id    int64
	score float64
}

// promSorter sorts candidates by (score, ID); a named slice type so
// sort.Sort on a pooled pointer stays allocation-free. The tie-break
// is the tuple's public ID — not its internal index — so the ordering
// is a property of the data alone and a federated router merging
// candidates from several shards reproduces it exactly.
type promSorter []promScored

func (p promSorter) Len() int { return len(p) }
func (p promSorter) Less(a, b int) bool {
	if p[a].score != p[b].score {
		return p[a].score < p[b].score
	}
	return p[a].id < p[b].id
}
func (p promSorter) Swap(a, b int) { p[a], p[b] = p[b], p[a] }

var _ Querier = (*Service)(nil)

// NewService creates a service view. It panics on invalid options
// (K < 1, negative radius or overfetch) — misconfiguration, not a
// runtime condition.
func NewService(db *Database, opts Options) *Service {
	if err := opts.validate(); err != nil {
		panic(err.Error())
	}
	return &Service{db: db, opts: opts, meter: NewMeter(opts.Budget, opts.Limiter)}
}

// DB returns the underlying database (ground-truth access for
// evaluation harnesses).
func (s *Service) DB() *Database { return s.db }

// Options returns the service configuration.
func (s *Service) Options() Options { return s.opts }

// Metric returns the distance metric the service ranks by. The HTTP
// layer probes this through wrapper chains to report the active
// metric on /v1/meta and /v1/stats.
func (s *Service) Metric() geo.Metric { return s.opts.Metric }

// K returns the interface's top-k.
func (s *Service) K() int { return s.opts.K }

// Bounds returns the coverage bounding box.
func (s *Service) Bounds() geom.Rect { return s.db.bounds }

// QueryCount returns the number of queries answered so far (the
// paper's cost metric).
func (s *Service) QueryCount() int64 { return s.meter.Count() }

// ResetQueryCount zeroes the query counter (between experiment runs).
func (s *Service) ResetQueryCount() { s.meter.Reset() }

// RemainingBudget returns how many queries may still be issued, or −1
// for unlimited.
func (s *Service) RemainingBudget() int64 { return s.meter.Remaining() }

// VirtualDuration converts the queries issued so far into the
// wall-clock time a real service with the given per-hour rate limit
// would have required — e.g. Sina Weibo's 150/hour (§2.1).
func (s *Service) VirtualDuration(perHour int) time.Duration {
	if perHour <= 0 {
		return 0
	}
	return time.Duration(float64(s.QueryCount()) / float64(perHour) * float64(time.Hour))
}

// Filter is a server-side selection condition (pass-through, §5.1).
// A nil Filter accepts every tuple.
type Filter func(*Tuple) bool

// CategoryFilter matches tuples of the given category.
func CategoryFilter(category string) Filter {
	return func(t *Tuple) bool { return t.Category == category }
}

// NameFilter matches tuples with the given name.
func NameFilter(name string) Filter {
	return func(t *Tuple) bool { return t.Name == name }
}

// charge checks for cancellation, consumes one unit of budget and
// meters the rate limiter. The simulator answers instantly, so the
// context can only be observed between queries; network adapters
// additionally cancel the request in flight. The cost model itself
// (CAS budget reservation, one limiter round-trip per batch) lives in
// Meter, shared with every composite front.
func (s *Service) charge(ctx context.Context) error {
	return s.meter.Charge(ctx)
}

// chargeN reserves up to n units (see Meter.ChargeN).
func (s *Service) chargeN(ctx context.Context, n int64) (int64, error) {
	return s.meter.ChargeN(ctx, n)
}

// VirtualWaited returns the total virtual time a rate-limited client
// would have spent waiting (0 without a Limiter).
func (s *Service) VirtualWaited() time.Duration { return s.meter.VirtualWaited() }

// rankCandidates returns the `want` nearest tuples of q under the
// service's ordering contract: ascending distance, exact ties broken
// by ascending tuple ID. The k-d tree breaks ties by internal index,
// which is an artifact of construction order, so the raw search result
// is post-processed: equal-distance runs are reordered by ID, and when
// a tie straddles the selection boundary (common under grid-snapped
// obfuscation, where many tuples share an effective location) the
// search is escalated until every tuple tied at the boundary distance
// is visible, so the kept set is the one (dist, ID) selects. Making
// the ordering a property of the data alone is what lets a federation
// router merge per-shard answers into the exact single-service result.
// The returned slice aliases sc.nbs.
func (s *Service) rankCandidates(sc *queryScratch, q geom.Point, want int, kf func(int) bool, maxDist float64) []kdtree.Neighbor {
	fetch := want + 1 // +1 probes for a tie at the boundary
	for {
		nbs := s.db.tree.KNNWithinMetricInto(s.opts.Metric, q, fetch, maxDist, kf, sc.nbs)
		sc.nbs = nbs
		if len(nbs) <= want {
			// The whole eligible set fits: no selection to resolve.
			s.sortTiesByID(nbs)
			return nbs
		}
		bound := nbs[want-1].Dist
		switch {
		case nbs[want].Dist != bound:
			// Boundary unambiguous: the want-nearest set is unique.
			nbs = nbs[:want]
			s.sortTiesByID(nbs)
			return nbs
		case len(nbs) < fetch || nbs[len(nbs)-1].Dist != bound:
			// Every tuple tied at the boundary distance is in view:
			// order the tie run by ID and keep the first `want`.
			i := want - 1
			for i > 0 && nbs[i-1].Dist == bound {
				i--
			}
			j := want
			for j < len(nbs) && nbs[j].Dist == bound {
				j++
			}
			s.sortRunByID(nbs[i:j])
			nbs = nbs[:want]
			s.sortTiesByID(nbs[:i])
			return nbs
		default:
			// The tie run may extend past what was fetched: escalate.
			fetch *= 2
		}
	}
}

// sortTiesByID reorders every equal-distance run of an ascending
// neighbor list by tuple ID (insertion sort per run: runs are short,
// and the common no-tie case costs one comparison per element).
func (s *Service) sortTiesByID(nbs []kdtree.Neighbor) {
	for i := 0; i < len(nbs); {
		j := i + 1
		for j < len(nbs) && nbs[j].Dist == nbs[i].Dist {
			j++
		}
		if j-i > 1 {
			s.sortRunByID(nbs[i:j])
		}
		i = j
	}
}

// sortRunByID insertion-sorts one equal-distance run by tuple ID.
func (s *Service) sortRunByID(run []kdtree.Neighbor) {
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && s.db.tuples[run[j].Index].ID < s.db.tuples[run[j-1].Index].ID; j-- {
			run[j], run[j-1] = run[j-1], run[j]
		}
	}
}

// rawQueryInto runs the ranked search shared by both views, writing
// through the pooled scratch. It returns tuple indices in rank order;
// the slice aliases sc.idxs and is valid until the scratch is reused.
//
// Ordering contract: distance rank orders by (dist, ID); prominence
// rank orders its distance-candidate set (the K×overfetch nearest
// under the same (dist, ID) selection) by (score, ID). Both are
// properties of the data alone — see rankCandidates.
func (s *Service) rawQueryInto(sc *queryScratch, q geom.Point, filter Filter) []int {
	kf := func(i int) bool {
		return filter == nil || filter(&s.db.tuples[i])
	}
	if filter == nil {
		kf = nil
	}
	maxDist := math.Inf(1)
	if s.opts.MaxRadius > 0 {
		maxDist = s.opts.MaxRadius
	}
	switch s.opts.Rank {
	case RankByProminence:
		cand := s.rankCandidates(sc, q, s.opts.K*s.opts.ProminenceOverfetch, kf, maxDist)
		scored := sc.scored[:0]
		for _, nb := range cand {
			t := &s.db.tuples[nb.Index]
			scored = append(scored, promScored{
				idx:   nb.Index,
				id:    t.ID,
				score: nb.Dist - s.opts.ProminenceWeight*t.Attr(s.opts.ProminenceAttr),
			})
		}
		sc.scored = scored
		sort.Sort(&sc.scored)
		n := len(scored)
		if n > s.opts.K {
			n = s.opts.K
		}
		out := sc.idxs[:0]
		for i := 0; i < n; i++ {
			out = append(out, scored[i].idx)
		}
		sc.idxs = out
		return out
	default:
		nbs := s.rankCandidates(sc, q, s.opts.K, kf, maxDist)
		out := sc.idxs[:0]
		for _, nb := range nbs {
			out = append(out, nb.Index)
		}
		sc.idxs = out
		return out
	}
}

// LRRecord is one result row of the location-returned interface.
type LRRecord struct {
	ID       int64
	Loc      geom.Point // the service's (effective) location for the tuple
	Dist     float64    // distance from the query point to Loc
	Name     string
	Category string
	Attrs    map[string]float64
	Tags     map[string]string
}

// QueryLR answers a location-returned kNN query: the top-k tuples
// nearest q (per the service's ranking), each with its location. An
// empty non-nil slice means "no tuple within the coverage radius".
// Results are ordered by (distance, ID) — prominence rank by
// (score, ID) — so the ranking is a property of the data alone (see
// rankCandidates). q may lie outside Bounds(); see Querier.
func (s *Service) QueryLR(ctx context.Context, q geom.Point, filter Filter) ([]LRRecord, error) {
	if err := s.charge(ctx); err != nil {
		return nil, err
	}
	return s.answerLR(q, filter), nil
}

// answerLR computes one LR answer without charging; callers charge
// first.
func (s *Service) answerLR(q geom.Point, filter Filter) []LRRecord {
	sc := s.getScratch()
	out := s.answerLRWith(sc, q, filter)
	s.putScratch(sc)
	return out
}

// wireDist is the distance reported in LRRecord.Dist. Euclidean stays
// the historical geom.Point.Dist (math.Hypot — which differs from the
// internal Sqrt(Dist2) rank key in the last ulp, a wire-format
// contract pinned by the store round-trip tests); Haversine reports
// great-circle kilometers, the same value the ranking used.
func (o *Options) wireDist(q, loc geom.Point) float64 {
	if o.Metric == geo.Haversine {
		return geo.HaversineDist(q, loc)
	}
	return q.Dist(loc)
}

// answerLRWith is answerLR over an explicit scratch (batch callers
// hold one scratch across the whole batch). Only the returned records
// are freshly allocated.
func (s *Service) answerLRWith(sc *queryScratch, q geom.Point, filter Filter) []LRRecord {
	idxs := s.rawQueryInto(sc, q, filter)
	out := make([]LRRecord, len(idxs))
	for i, idx := range idxs {
		t := &s.db.tuples[idx]
		loc := s.db.effective[idx]
		out[i] = LRRecord{
			ID:       t.ID,
			Loc:      loc,
			Dist:     s.opts.wireDist(q, loc),
			Name:     t.Name,
			Category: t.Category,
			Attrs:    t.Attrs,
			Tags:     t.Tags,
		}
	}
	return out
}

// QueryLRBatch answers m location-returned queries under one atomic
// budget reservation and one rate-limiter lock round-trip. The result
// slice is index-aligned with pts; when the budget covers only part of
// the batch, the unanswered positions are nil (a served empty answer
// is a non-nil empty slice) and the error is ErrBudgetExhausted. Each
// answered point costs one unit of budget — batching amortizes
// round-trips, not queries.
func (s *Service) QueryLRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LRRecord, error) {
	out := make([][]LRRecord, len(pts))
	granted, err := s.chargeN(ctx, int64(len(pts)))
	if granted > 0 {
		sc := s.getScratch()
		for i := int64(0); i < granted; i++ {
			out[i] = s.answerLRWith(sc, pts[i], filter)
		}
		s.putScratch(sc)
	}
	return out, err
}

// LNRRecord is one result row of the location-not-returned interface:
// the rank order carries the only spatial information.
type LNRRecord struct {
	ID       int64
	Name     string
	Category string
	Attrs    map[string]float64
	Tags     map[string]string
}

// QueryLNR answers a rank-only kNN query (the WeChat / Sina Weibo
// model): tuple IDs and non-location attributes in rank order.
func (s *Service) QueryLNR(ctx context.Context, q geom.Point, filter Filter) ([]LNRRecord, error) {
	if err := s.charge(ctx); err != nil {
		return nil, err
	}
	return s.answerLNR(q, filter), nil
}

// answerLNR computes one LNR answer without charging; callers charge
// first.
func (s *Service) answerLNR(q geom.Point, filter Filter) []LNRRecord {
	sc := s.getScratch()
	out := s.answerLNRWith(sc, q, filter)
	s.putScratch(sc)
	return out
}

// answerLNRWith is answerLNR over an explicit scratch.
func (s *Service) answerLNRWith(sc *queryScratch, q geom.Point, filter Filter) []LNRRecord {
	idxs := s.rawQueryInto(sc, q, filter)
	out := make([]LNRRecord, len(idxs))
	for i, idx := range idxs {
		t := &s.db.tuples[idx]
		out[i] = LNRRecord{
			ID:       t.ID,
			Name:     t.Name,
			Category: t.Category,
			Attrs:    t.Attrs,
			Tags:     t.Tags,
		}
	}
	return out
}

// QueryLNRBatch is the rank-only twin of QueryLRBatch: m queries, one
// atomic budget reservation, one limiter round-trip, nil entries for
// the positions the budget could not cover.
func (s *Service) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LNRRecord, error) {
	out := make([][]LNRRecord, len(pts))
	granted, err := s.chargeN(ctx, int64(len(pts)))
	if granted > 0 {
		sc := s.getScratch()
		for i := int64(0); i < granted; i++ {
			out[i] = s.answerLNRWith(sc, pts[i], filter)
		}
		s.putScratch(sc)
	}
	return out, err
}
