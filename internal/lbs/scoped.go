package lbs

import (
	"context"
	"sync/atomic"

	"repro/internal/geom"
)

// ScopedQuerier wraps a Querier with per-scope accounting: its
// QueryCount counts only the queries issued through this wrapper, and
// an optional scope budget caps them independently of the service's
// own budget. One scope per estimation job gives every concurrent run
// its own cost meter and cap while all of them share the underlying
// service (and any cache layered over it) — without a scope, a run
// measuring its spend through the shared QueryCount would charge
// itself for every other job's queries.
//
// The scope charges before forwarding and refunds whatever the inner
// querier did not answer, so transient failures and partially answered
// batches never leak scope budget. Like the HTTP client's local
// counter, the scope counts answered queries as seen from this side:
// an answer replayed by an upstream cache still counts here even
// though it consumed no service budget.
//
// A ScopedQuerier is safe for concurrent use whenever its inner
// querier is.
type ScopedQuerier struct {
	inner   Querier
	budget  int64 // 0 = unlimited
	queries atomic.Int64
}

var _ Querier = (*ScopedQuerier)(nil)

// NewScopedQuerier wraps inner with a fresh scope. budget ≤ 0 means
// the scope only counts; a positive budget makes queries beyond it
// fail with ErrBudgetExhausted (batches are granted partially, like
// Service.QueryLRBatch).
func NewScopedQuerier(inner Querier, budget int64) *ScopedQuerier {
	if budget < 0 {
		budget = 0
	}
	return &ScopedQuerier{inner: inner, budget: budget}
}

// Inner returns the wrapped querier.
func (s *ScopedQuerier) Inner() Querier { return s.inner }

// Bounds implements Querier.
func (s *ScopedQuerier) Bounds() geom.Rect { return s.inner.Bounds() }

// K implements Querier.
func (s *ScopedQuerier) K() int { return s.inner.K() }

// QueryCount returns the queries answered through this scope — the
// scope-local cost metric.
func (s *ScopedQuerier) QueryCount() int64 { return s.queries.Load() }

// RemainingBudget returns how many scope queries may still be issued,
// or −1 for an unlimited scope.
func (s *ScopedQuerier) RemainingBudget() int64 {
	if s.budget <= 0 {
		return -1
	}
	rem := s.budget - s.queries.Load()
	if rem < 0 {
		return 0
	}
	return rem
}

// reserve grants up to n units of scope budget (CAS, like
// Service.chargeN). A partial or empty grant reports
// ErrBudgetExhausted.
func (s *ScopedQuerier) reserve(n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	if s.budget <= 0 {
		s.queries.Add(n)
		return n, nil
	}
	for {
		cur := s.queries.Load()
		rem := s.budget - cur
		if rem <= 0 {
			return 0, ErrBudgetExhausted
		}
		granted := n
		if rem < n {
			granted = rem
		}
		if s.queries.CompareAndSwap(cur, cur+granted) {
			if granted < n {
				return granted, ErrBudgetExhausted
			}
			return granted, nil
		}
	}
}

// refund hands back reserved units the inner querier did not answer.
func (s *ScopedQuerier) refund(n int64) {
	if n > 0 {
		s.queries.Add(-n)
	}
}

// QueryLR implements Querier, charging one scope unit per answered
// query.
func (s *ScopedQuerier) QueryLR(ctx context.Context, q geom.Point, filter Filter) ([]LRRecord, error) {
	if _, err := s.reserve(1); err != nil {
		return nil, err
	}
	recs, err := s.inner.QueryLR(ctx, q, filter)
	if err != nil && !IsPartial(err) {
		s.refund(1)
		return nil, err
	}
	// A degraded answer is still an answer: the scope keeps its charge
	// and forwards the annotation.
	return recs, err
}

// QueryLNR implements Querier.
func (s *ScopedQuerier) QueryLNR(ctx context.Context, q geom.Point, filter Filter) ([]LNRRecord, error) {
	if _, err := s.reserve(1); err != nil {
		return nil, err
	}
	recs, err := s.inner.QueryLNR(ctx, q, filter)
	if err != nil && !IsPartial(err) {
		s.refund(1)
		return nil, err
	}
	return recs, err
}

// QueryLRBatch implements Querier: the scope grants a prefix of the
// batch, forwards it, and keeps only the charge for positions the
// inner querier actually answered (non-nil entries). The result is
// index-aligned with pts; positions beyond either budget are nil
// alongside ErrBudgetExhausted.
func (s *ScopedQuerier) QueryLRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LRRecord, error) {
	out := make([][]LRRecord, len(pts))
	granted, rerr := s.reserve(int64(len(pts)))
	if granted == 0 {
		return out, rerr
	}
	inner, err := s.inner.QueryLRBatch(ctx, pts[:granted], filter)
	var answered int64
	for i := range inner {
		if inner[i] != nil {
			out[i] = inner[i]
			answered++
		}
	}
	s.refund(granted - answered)
	if err != nil {
		return out, err
	}
	return out, rerr
}

// QueryLNRBatch is the rank-only twin of QueryLRBatch.
func (s *ScopedQuerier) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LNRRecord, error) {
	out := make([][]LNRRecord, len(pts))
	granted, rerr := s.reserve(int64(len(pts)))
	if granted == 0 {
		return out, rerr
	}
	inner, err := s.inner.QueryLNRBatch(ctx, pts[:granted], filter)
	var answered int64
	for i := range inner {
		if inner[i] != nil {
			out[i] = inner[i]
			answered++
		}
	}
	s.refund(granted - answered)
	if err != nil {
		return out, err
	}
	return out, rerr
}
