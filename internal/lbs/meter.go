package lbs

import (
	"context"
	"sync/atomic"
	"time"
)

// Meter owns one logical cost model: a hard query budget, an optional
// virtual-clock rate limiter and the monotone query counter the
// paper's cost metric reads. Every service front shares this exact
// accounting — the in-process Service, the federation Router and the
// live mutable overlay all delegate to a Meter — so "one answered
// point costs one unit" means the same thing at every layer.
//
// A Meter is safe for concurrent use.
type Meter struct {
	budget  int64
	limiter *RateLimiter
	queries atomic.Int64
}

// NewMeter builds a meter with the given budget (≤ 0 = unlimited) and
// optional rate limiter.
func NewMeter(budget int64, limiter *RateLimiter) *Meter {
	return &Meter{budget: budget, limiter: limiter}
}

// ChargeN checks for cancellation, atomically reserves up to n units
// of budget and meters the rate limiter for the granted amount under a
// single limiter lock round-trip. It returns how many units were
// granted; when the budget covers only part of the request (or none),
// err is ErrBudgetExhausted.
//
// The reservation is a CAS loop rather than add-then-rollback, so the
// query counter never transiently exceeds the budget: concurrent
// readers of Count (the Driver's stop checks) always observe a value
// ≤ the budget.
func (m *Meter) ChargeN(ctx context.Context, n int64) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, nil
	}
	granted := n
	if m.budget > 0 {
		for {
			cur := m.queries.Load()
			rem := m.budget - cur
			if rem <= 0 {
				return 0, ErrBudgetExhausted
			}
			granted = n
			if rem < n {
				granted = rem
			}
			if m.queries.CompareAndSwap(cur, cur+granted) {
				break
			}
		}
	} else {
		m.queries.Add(n)
	}
	if m.limiter != nil {
		m.limiter.TakeN(int(granted))
	}
	if granted < n {
		return granted, ErrBudgetExhausted
	}
	return granted, nil
}

// Charge reserves one unit (see ChargeN).
func (m *Meter) Charge(ctx context.Context) error {
	_, err := m.ChargeN(ctx, 1)
	return err
}

// Refund hands back units whose queries a downstream failure left
// unanswered, so transient errors never leak budget (virtual limiter
// time, already advanced, is not unwound).
func (m *Meter) Refund(n int64) {
	if n > 0 {
		m.queries.Add(-n)
	}
}

// Count returns the number of units charged so far.
func (m *Meter) Count() int64 { return m.queries.Load() }

// Reset zeroes the counter (between experiment runs).
func (m *Meter) Reset() { m.queries.Store(0) }

// Remaining returns how many units may still be charged, or −1 for
// unlimited.
func (m *Meter) Remaining() int64 {
	if m.budget <= 0 {
		return -1
	}
	rem := m.budget - m.queries.Load()
	if rem < 0 {
		return 0
	}
	return rem
}

// VirtualWaited returns the total virtual time a rate-limited client
// would have spent waiting (0 without a limiter).
func (m *Meter) VirtualWaited() time.Duration {
	if m.limiter == nil {
		return 0
	}
	return m.limiter.VirtualElapsed()
}
