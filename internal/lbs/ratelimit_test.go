package lbs

import (
	"context"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestRateLimiterWithinQuota(t *testing.T) {
	rl := NewRateLimiter(10, time.Hour)
	for i := 0; i < 10; i++ {
		if w := rl.Take(); w != 0 {
			t.Fatalf("query %d waited %v within quota", i, w)
		}
	}
	if rl.VirtualElapsed() != 0 {
		t.Errorf("virtual clock advanced within quota: %v", rl.VirtualElapsed())
	}
	if rl.Issued() != 10 {
		t.Errorf("issued: %d", rl.Issued())
	}
}

func TestRateLimiterBlocksAndReleases(t *testing.T) {
	rl := NewRateLimiter(2, time.Hour)
	rl.Take()
	rl.Take()
	// Third query must wait a full window (both slots taken at t=0).
	if w := rl.Take(); w != time.Hour {
		t.Fatalf("third query waited %v, want 1h", w)
	}
	if rl.VirtualElapsed() != time.Hour {
		t.Errorf("virtual elapsed: %v", rl.VirtualElapsed())
	}
	// Fourth also waits until the second t=0 slot expires — same
	// release instant, so no extra wait.
	if w := rl.Take(); w != 0 {
		t.Errorf("fourth query waited %v, want 0", w)
	}
}

func TestRateLimiterSteadyState(t *testing.T) {
	// Weibo's 150/hour: 1,500 queries must take ≈ 9 virtual hours
	// (the first 150 are free; each subsequent window admits 150).
	rl := NewRateLimiter(150, time.Hour)
	for i := 0; i < 1500; i++ {
		rl.Take()
	}
	if got := rl.VirtualElapsed(); got != 9*time.Hour {
		t.Errorf("1500 queries at 150/h: %v, want 9h", got)
	}
	if rl.Issued() != 1500 {
		t.Errorf("issued: %d", rl.Issued())
	}
}

func TestRateLimiterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRateLimiter(0, time.Hour) },
		func() { NewRateLimiter(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid limiter did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRateLimiterConcurrent(t *testing.T) {
	rl := NewRateLimiter(1000, time.Hour)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				rl.Take()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if rl.Issued() != 800 {
		t.Errorf("concurrent issued: %d", rl.Issued())
	}
}

func TestServiceWithLimiter(t *testing.T) {
	db := NewDatabase(
		geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)),
		[]Tuple{{ID: 1, Loc: geom.Pt(5, 5)}},
	)
	rl := NewRateLimiter(10, time.Hour)
	svc := NewService(db, Options{K: 1, Limiter: rl})
	for i := 0; i < 25; i++ {
		if _, err := svc.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	// 25 queries at 10/hour: first 10 free, then two more windows open
	// (10 at t=1h, 5 at t=2h).
	if got := svc.VirtualWaited(); got != 2*time.Hour {
		t.Errorf("virtual waited: %v, want 2h", got)
	}
	// Without a limiter the wait is zero.
	svc2 := NewService(db, Options{K: 1})
	if _, err := svc2.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
		t.Fatal(err)
	}
	if svc2.VirtualWaited() != 0 {
		t.Errorf("unlimited service waited")
	}
}
