package lbs

// Cache persistence: a CachedOracle can snapshot its recorded answers
// to a stream and restore them on the next process start, so a warm
// restart keeps the hit rate a long-running gateway accumulated
// instead of re-spending budget on queries it already paid for.
//
// The snapshot is a point-in-time copy, not a live mirror: write it at
// graceful shutdown (after the last mutation-driven invalidation) and
// read it exactly once at startup, before serving. A snapshot whose
// configuration (k, selection label, quantum) does not match the
// restoring cache is rejected whole — replaying answers recorded under
// a different key geometry would serve wrong results, and a cold cache
// is always safe.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ErrCacheSnapshotMismatch is returned by ReadSnapshot when the
// snapshot was recorded under a different cache configuration (k,
// selection or quantum). The caller should log it and serve cold.
var ErrCacheSnapshotMismatch = errors.New("lbs: cache snapshot configuration mismatch")

// cacheSnapshotVersion guards the gob stream layout; bump on any
// change to the header or entry shapes.
const cacheSnapshotVersion = 1

// cacheSnapshotHeader pins the key geometry the entries were recorded
// under.
type cacheSnapshotHeader struct {
	Version   int
	K         int
	Selection string
	Quantum   float64
	Entries   int
}

// cacheSnapshotEntry is the wire form of one recorded answer. QX/QY
// are the raw key words (quantized cell indices, or Float64bits of the
// exact point), preserved exactly.
type cacheSnapshotEntry struct {
	Kind   uint8
	QX, QY uint64
	LR     []LRRecord
	LNR    []LNRRecord
}

// WriteSnapshot serializes every resident entry to w. Concurrent
// queries may proceed — each shard is locked only while copied — but
// the snapshot then represents no single instant; write it when the
// cache is quiescent (shutdown).
func (c *CachedOracle) WriteSnapshot(w io.Writer) error {
	var entries []cacheSnapshotEntry
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			// Back-to-front: oldest first, so restoring preserves the
			// recency order within each shard.
			e := el.Value.(*cacheEntry)
			entries = append(entries, cacheSnapshotEntry{
				Kind: e.key.kind, QX: e.key.qx, QY: e.key.qy,
				LR: e.lr, LNR: e.lnr,
			})
		}
		sh.mu.Unlock()
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(cacheSnapshotHeader{
		Version: cacheSnapshotVersion, K: c.inner.K(),
		Selection: c.sel, Quantum: c.quantum, Entries: len(entries),
	}); err != nil {
		return fmt.Errorf("lbs: cache snapshot header: %w", err)
	}
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return fmt.Errorf("lbs: cache snapshot entry: %w", err)
		}
	}
	return nil
}

// ReadSnapshot restores entries recorded by WriteSnapshot into the
// cache and returns how many were loaded. A header mismatch returns
// ErrCacheSnapshotMismatch and loads nothing; a decode error mid-
// stream keeps the entries already loaded (they are individually
// valid) and reports the error. Restored entries count toward
// CacheStats.Restored, not Misses.
func (c *CachedOracle) ReadSnapshot(r io.Reader) (int, error) {
	dec := gob.NewDecoder(r)
	var h cacheSnapshotHeader
	if err := dec.Decode(&h); err != nil {
		return 0, fmt.Errorf("lbs: cache snapshot header: %w", err)
	}
	if h.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("%w: version %d (want %d)", ErrCacheSnapshotMismatch, h.Version, cacheSnapshotVersion)
	}
	if h.K != c.inner.K() || h.Selection != c.sel || h.Quantum != c.quantum {
		return 0, fmt.Errorf("%w: recorded (k=%d sel=%q quantum=%g), cache (k=%d sel=%q quantum=%g)",
			ErrCacheSnapshotMismatch, h.K, h.Selection, h.Quantum, c.inner.K(), c.sel, c.quantum)
	}
	loaded := 0
	for i := 0; i < h.Entries; i++ {
		var e cacheSnapshotEntry
		if err := dec.Decode(&e); err != nil {
			c.restored.Add(int64(loaded))
			return loaded, fmt.Errorf("lbs: cache snapshot entry %d: %w", i, err)
		}
		key := cacheKey{kind: e.Kind, k: h.K, qx: e.QX, qy: e.QY, sel: h.Selection}
		c.store(&cacheEntry{key: key, lr: e.LR, lnr: e.LNR})
		loaded++
	}
	c.restored.Add(int64(loaded))
	return loaded, nil
}
