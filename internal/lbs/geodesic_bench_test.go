package lbs

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
)

// geodesicBenchService mirrors allocTestService on degree coordinates
// over the continental-US window, ranked under Haversine.
func geodesicBenchService(n, k int) *Service {
	rng := rand.New(rand.NewSource(5))
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{
			ID:    int64(i + 1),
			Loc:   geom.Pt(-125+rng.Float64()*59, 24+rng.Float64()*25),
			Attrs: map[string]float64{"pop": rng.Float64()},
		}
	}
	db := NewDatabase(geom.NewRect(geom.Pt(-125, 24), geom.Pt(-66, 49)), tuples)
	return NewService(db, Options{K: k, Metric: geo.Haversine})
}

// BenchmarkQueryLRGeodesic is the geodesic twin of BenchmarkQueryLR:
// the same oracle hot path (tree search + record marshalling) with
// Haversine ranking and great-circle wire distances. Tracked in
// BENCH_geom.json next to the Euclidean number so the geodesic
// overhead stays visible.
func BenchmarkQueryLRGeodesic(b *testing.B) {
	svc := geodesicBenchService(10000, 8)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(-125+rng.Float64()*59, 24+rng.Float64()*25)
		if _, err := svc.QueryLR(ctx, q, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "q/s")
}
