package lbs

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func allocTestService(n int, k int, rank RankMode) *Service {
	rng := rand.New(rand.NewSource(5))
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{
			ID:    int64(i + 1),
			Loc:   geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Attrs: map[string]float64{"pop": rng.Float64()},
		}
	}
	db := NewDatabase(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), tuples)
	return NewService(db, Options{K: k, Rank: rank, ProminenceAttr: "pop", ProminenceWeight: 0.1})
}

// TestQueryLRAllocBound pins the pooled-scratch contract of the oracle
// hot path: an unfiltered distance-ranked query allocates only the
// records returned to the caller (1 slice), nothing for the search.
func TestQueryLRAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; contract checked without -race")
	}
	svc := allocTestService(5000, 8, RankByDistance)
	ctx := context.Background()
	q := geom.Pt(50, 50)
	if _, err := svc.QueryLR(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := svc.QueryLR(ctx, q, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("QueryLR allocates %.1f allocs/query, want ≤ 1 (the returned records)", allocs)
	}
}

// TestQueryLNRProminenceAllocBound covers the rescoring path: one
// extra allocation is tolerated for the filter closure.
func TestQueryLNRProminenceAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; contract checked without -race")
	}
	svc := allocTestService(5000, 8, RankByProminence)
	ctx := context.Background()
	q := geom.Pt(50, 50)
	if _, err := svc.QueryLNR(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := svc.QueryLNR(ctx, q, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("prominence QueryLNR allocates %.1f allocs/query, want ≤ 1", allocs)
	}
}

// BenchmarkQueryLR measures the simulated oracle hot path (distance
// rank, no filter): tree search + record marshalling, one allocation
// per query (the returned records).
func BenchmarkQueryLR(b *testing.B) {
	svc := allocTestService(10000, 8, RankByDistance)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if _, err := svc.QueryLR(ctx, q, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "q/s")
}
