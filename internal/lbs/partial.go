package lbs

// partial.go — the degraded-answer contract of composite fronts.
//
// A federation that loses a member mid-query can still answer from the
// survivors: the merged result is correct over the reachable tuples
// but may hide better candidates in the unreachable shard. Such an
// answer is *degraded*, not wrong, and the annotation travels as a
// typed error beside the records — callers that care (HTTP handlers
// marking responses, job views counting contamination) inspect it,
// callers that just want answers absorb it through TolerantQuerier.
//
// The file also defines the transient-failure classification retry
// layers share: an error is worth retrying only when some layer that
// understood the failure marked it so (MarkTransient), and permanent
// conditions — a spent budget, a canceled context — never are.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// PartialError annotates an answer assembled from an incomplete
// federation. It is returned *alongside* usable records: a non-nil
// result with a PartialError is a real answer over the reachable
// members, with the counters describing what was missed.
type PartialError struct {
	// Degraded counts answered queries whose candidate merge was
	// missing at least one relevant member (1 for a single query).
	Degraded int
	// Dropped counts batch positions that got no answer at all
	// because their owning shard was down (0 for a single query —
	// an owner failure fails a single query crisply instead).
	Dropped int
	// Missing counts member subqueries that were skipped (breaker
	// open) or failed after retries.
	Missing int
	// Err is the first underlying member failure, if any call was
	// actually attempted (a breaker-open skip leaves it nil).
	Err error
}

func (e *PartialError) Error() string {
	msg := fmt.Sprintf("lbs: partial answer (degraded=%d dropped=%d missing=%d)",
		e.Degraded, e.Dropped, e.Missing)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the first member failure to errors.Is/As chains.
func (e *PartialError) Unwrap() error { return e.Err }

// AsPartial extracts the partial-answer annotation from an error
// chain.
func AsPartial(err error) (*PartialError, bool) {
	var pe *PartialError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// IsPartial reports whether err is a degraded-answer annotation — an
// answer that is usable but incomplete, as opposed to a failure.
func IsPartial(err error) bool {
	_, ok := AsPartial(err)
	return ok
}

// transientErr marks an error as worth retrying. It preserves the
// wrapped chain so errors.Is/As classifications still apply.
type transientErr struct{ err error }

func (t *transientErr) Error() string   { return t.err.Error() }
func (t *transientErr) Unwrap() error   { return t.err }
func (t *transientErr) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports it retryable. Layers
// that understand a failure's cause (the fault injector, the HTTP
// client after exhausting its own retries on a 5xx) mark it; layers
// that retry (the federation router) test it. nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err was marked retryable by some layer
// that understood it. Permanent conditions dominate: a spent budget
// never un-spends and a canceled context must not be retried against,
// no matter what the chain claims.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// TolerantQuerier absorbs degraded-answer annotations: partial
// answers pass through as plain successes while per-wrapper counters
// record the contamination. It is the adapter between the federation's
// annotated contract and the estimation layers, whose estimators treat
// any error as a failed sample — the jobs layer wraps each job's
// backend in one and surfaces DegradedCount in the job view.
//
// Batch answers with dropped positions (owner down) keep a non-nil
// error — the crisp underlying failure — so the batch contract "nil
// holes come with a non-nil error" still holds for callers.
//
// A TolerantQuerier is safe for concurrent use whenever its inner
// querier is.
type TolerantQuerier struct {
	inner    Querier
	degraded atomic.Int64
	dropped  atomic.Int64
}

var _ Querier = (*TolerantQuerier)(nil)

// NewTolerantQuerier wraps inner with partial-answer absorption.
func NewTolerantQuerier(inner Querier) *TolerantQuerier {
	return &TolerantQuerier{inner: inner}
}

// Inner returns the wrapped querier (the stats chain-walk contract).
func (t *TolerantQuerier) Inner() Querier { return t.inner }

// Bounds implements Querier.
func (t *TolerantQuerier) Bounds() geom.Rect { return t.inner.Bounds() }

// K implements Querier.
func (t *TolerantQuerier) K() int { return t.inner.K() }

// QueryCount implements Querier.
func (t *TolerantQuerier) QueryCount() int64 { return t.inner.QueryCount() }

// DegradedCount returns how many queries through this wrapper were
// answered from a partial federation — the contamination metric job
// views report as degraded_queries.
func (t *TolerantQuerier) DegradedCount() int64 { return t.degraded.Load() }

// DroppedCount returns how many batch positions through this wrapper
// got no answer because their owning shard was down.
func (t *TolerantQuerier) DroppedCount() int64 { return t.dropped.Load() }

// absorb folds a partial annotation into the counters and decides what
// error the caller sees: nil for fully-answered degraded results, the
// crisp underlying failure when positions were dropped.
func (t *TolerantQuerier) absorb(err error) error {
	pe, ok := AsPartial(err)
	if !ok {
		return err
	}
	t.degraded.Add(int64(pe.Degraded))
	t.dropped.Add(int64(pe.Dropped))
	if pe.Dropped == 0 {
		return nil
	}
	if pe.Err != nil {
		return pe.Err
	}
	return err
}

// QueryLR implements Querier, absorbing degraded annotations.
func (t *TolerantQuerier) QueryLR(ctx context.Context, q geom.Point, filter Filter) ([]LRRecord, error) {
	recs, err := t.inner.QueryLR(ctx, q, filter)
	return recs, t.absorb(err)
}

// QueryLNR implements Querier, absorbing degraded annotations.
func (t *TolerantQuerier) QueryLNR(ctx context.Context, q geom.Point, filter Filter) ([]LNRRecord, error) {
	recs, err := t.inner.QueryLNR(ctx, q, filter)
	return recs, t.absorb(err)
}

// QueryLRBatch implements Querier, absorbing degraded annotations.
func (t *TolerantQuerier) QueryLRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LRRecord, error) {
	out, err := t.inner.QueryLRBatch(ctx, pts, filter)
	return out, t.absorb(err)
}

// QueryLNRBatch implements Querier, absorbing degraded annotations.
func (t *TolerantQuerier) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LNRRecord, error) {
	out, err := t.inner.QueryLNRBatch(ctx, pts, filter)
	return out, t.absorb(err)
}
