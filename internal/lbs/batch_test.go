package lbs

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
)

// TestChargeNeverExceedsBudget hammers a budget-capped service from
// many goroutines while a watcher continuously reads QueryCount. The
// CAS reservation must keep the counter ≤ Budget at every instant
// (the old add-then-rollback let it transiently overshoot, tripping
// the Driver's maxQueries stop check early), and exactly Budget
// queries must succeed.
func TestChargeNeverExceedsBudget(t *testing.T) {
	const budget = 100
	svc := NewService(testDB(t), Options{K: 2, Budget: budget})
	ctx := context.Background()

	stop := make(chan struct{})
	done := make(chan struct{})
	var overshoot atomic.Int64
	go func() {
		defer close(done)
		for {
			if n := svc.QueryCount(); n > budget {
				overshoot.Store(n)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	var ok, exhausted atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				_, err := svc.QueryLR(ctx, geom.Pt(rng.Float64()*10, rng.Float64()*10), nil)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrBudgetExhausted):
					exhausted.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-done

	if n := overshoot.Load(); n != 0 {
		t.Errorf("QueryCount transiently read %d > budget %d", n, budget)
	}
	if got := ok.Load(); got != budget {
		t.Errorf("successful queries: %d, want exactly %d", got, budget)
	}
	if got := exhausted.Load(); got != 16*50-budget {
		t.Errorf("exhausted errors: %d, want %d", got, 16*50-budget)
	}
	if got := svc.QueryCount(); got != budget {
		t.Errorf("final QueryCount: %d, want %d", got, budget)
	}
}

// TestBatchMatchesSingle checks a batch answer equals the per-point
// answers and costs the same number of queries.
func TestBatchMatchesSingle(t *testing.T) {
	db := testDB(t)
	single := NewService(db, Options{K: 2})
	batched := NewService(db, Options{K: 2})
	ctx := context.Background()
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9), geom.Pt(5, 5), geom.Pt(0, 10)}

	got, err := batched.QueryLRBatch(ctx, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("answers: %d, want %d", len(got), len(pts))
	}
	for i, p := range pts {
		want, err := single.QueryLR(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("point %d: %d results, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j].ID != want[j].ID || got[i][j].Dist != want[j].Dist {
				t.Errorf("point %d result %d: %+v != %+v", i, j, got[i][j], want[j])
			}
		}
	}
	if bq, sq := batched.QueryCount(), single.QueryCount(); bq != sq {
		t.Errorf("batch cost %d queries, single cost %d", bq, sq)
	}
}

// TestBatchPartialBudget: a batch larger than the remaining budget
// answers the covered prefix, marks the rest nil and reports
// ErrBudgetExhausted without overshooting the counter.
func TestBatchPartialBudget(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2, Budget: 5})
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Pt(float64(i), float64(i))
	}
	got, err := svc.QueryLRBatch(context.Background(), pts, nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	for i := 0; i < 5; i++ {
		if got[i] == nil {
			t.Errorf("answer %d is nil, want served", i)
		}
	}
	for i := 5; i < 8; i++ {
		if got[i] != nil {
			t.Errorf("answer %d served beyond budget", i)
		}
	}
	if n := svc.QueryCount(); n != 5 {
		t.Errorf("QueryCount = %d, want 5", n)
	}
	// A fully exhausted batch answers nothing.
	got, err = svc.QueryLRBatch(context.Background(), pts[:2], nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("exhausted err = %v", err)
	}
	for i, a := range got {
		if a != nil {
			t.Errorf("answer %d served with zero budget", i)
		}
	}
}

// TestBatchLNR exercises the rank-only twin.
func TestBatchLNR(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 3})
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)}
	got, err := svc.QueryLNRBatch(context.Background(), pts, CategoryFilter("cafe"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].ID != 1 || got[1][0].ID != 2 {
		t.Errorf("nearest cafés: %+v", got)
	}
	if n := svc.QueryCount(); n != 2 {
		t.Errorf("QueryCount = %d, want 2", n)
	}
}

// TestBatchConcurrentBudgetEdge mixes concurrent batches of varying
// size at the budget edge: granted queries across all callers must
// sum to exactly the budget.
func TestBatchConcurrentBudgetEdge(t *testing.T) {
	const budget = 97
	svc := NewService(testDB(t), Options{K: 1, Budget: budget})
	ctx := context.Background()
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 10; i++ {
				m := 1 + rng.Intn(7)
				pts := make([]geom.Point, m)
				for j := range pts {
					pts[j] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
				}
				answers, err := svc.QueryLRBatch(ctx, pts, nil)
				if err != nil && !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				for _, a := range answers {
					if a != nil {
						served.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := served.Load(); got != budget {
		t.Errorf("served answers: %d, want exactly %d", got, budget)
	}
	if got := svc.QueryCount(); got != budget {
		t.Errorf("QueryCount = %d, want %d", got, budget)
	}
}

// TestTakeNMatchesSequentialTakes: the batched limiter path must
// produce identical virtual-time accounting to sequential Take calls.
func TestTakeNMatchesSequentialTakes(t *testing.T) {
	seq := NewRateLimiter(3, time.Minute)
	var seqWait time.Duration
	for i := 0; i < 10; i++ {
		seqWait += seq.Take()
	}
	bat := NewRateLimiter(3, time.Minute)
	batWait := bat.TakeN(10)
	if seqWait != batWait {
		t.Errorf("waited: sequential %v, batched %v", seqWait, batWait)
	}
	if seq.VirtualElapsed() != bat.VirtualElapsed() {
		t.Errorf("virtual elapsed: sequential %v, batched %v", seq.VirtualElapsed(), bat.VirtualElapsed())
	}
	if seq.Issued() != bat.Issued() {
		t.Errorf("issued: sequential %d, batched %d", seq.Issued(), bat.Issued())
	}
}

// TestOptionsValidation: zero overfetch defaults, negatives reject.
func TestOptionsValidation(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1, Rank: RankByProminence, ProminenceAttr: "rating"})
	if svc.Options().ProminenceOverfetch != defaultProminenceOverfetch {
		t.Errorf("zero overfetch not defaulted: %d", svc.Options().ProminenceOverfetch)
	}
	recs, err := svc.QueryLR(context.Background(), geom.Pt(5, 5), nil)
	if err != nil || len(recs) == 0 {
		t.Errorf("prominence query with defaulted overfetch returned %d results, err %v", len(recs), err)
	}
	for _, bad := range []Options{
		{K: 0},
		{K: 1, MaxRadius: -1},
		{K: 1, ProminenceOverfetch: -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("options %+v did not panic", bad)
				}
			}()
			NewService(testDB(t), bad)
		}()
	}
}
