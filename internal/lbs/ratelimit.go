package lbs

import (
	"fmt"
	"sync"
	"time"
)

// RateLimiter simulates the per-user/IP query quotas of real services
// (Google Maps: 10,000/day; Sina Weibo: 150/hour — §2.1) on a
// *virtual* clock, so experiments can measure the wall-clock time a
// real deployment would need without actually waiting.
//
// Each Take advances the virtual clock to the earliest instant the
// next query becomes admissible under a sliding-window quota. The
// virtual elapsed time is the paper's argument for why query count is
// the metric that matters: even generous quotas make the interface,
// not computation, the bottleneck.
type RateLimiter struct {
	mu      sync.Mutex
	quota   int
	window  time.Duration
	virtual time.Duration   // current virtual time since start
	issued  []time.Duration // virtual timestamps within the window
	count   int             // total admissions
}

// NewRateLimiter builds a limiter allowing quota queries per window.
func NewRateLimiter(quota int, window time.Duration) *RateLimiter {
	if quota < 1 {
		panic(fmt.Sprintf("lbs: rate limiter quota must be ≥ 1, got %d", quota))
	}
	if window <= 0 {
		panic("lbs: rate limiter window must be positive")
	}
	return &RateLimiter{quota: quota, window: window}
}

// Take admits one query, advancing the virtual clock if the quota is
// exhausted, and returns the time the caller virtually waited.
func (r *RateLimiter) Take() time.Duration {
	return r.TakeN(1)
}

// TakeN admits n queries under a single lock acquisition — the batch
// query path meters a whole batch through one TakeN call — and
// returns the total virtual wait. The admitted timestamps are
// identical to n sequential Take calls, so virtual-time accounting is
// unchanged by batching.
func (r *RateLimiter) TakeN(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var waited time.Duration
	for i := 0; i < n; i++ {
		// Drop timestamps that have left the window.
		r.gc()
		if len(r.issued) >= r.quota {
			// Wait (virtually) until the oldest in-window query expires.
			release := r.issued[0] + r.window
			if release > r.virtual {
				waited += release - r.virtual
				r.virtual = release
			}
			r.gc()
		}
		r.issued = append(r.issued, r.virtual)
		r.count++
	}
	return waited
}

// gc removes expired timestamps; callers hold the lock.
func (r *RateLimiter) gc() {
	cut := 0
	for cut < len(r.issued) && r.issued[cut]+r.window <= r.virtual {
		cut++
	}
	if cut > 0 {
		r.issued = append(r.issued[:0], r.issued[cut:]...)
	}
}

// VirtualElapsed returns the total virtual time consumed so far.
func (r *RateLimiter) VirtualElapsed() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.virtual
}

// Issued returns the total number of queries admitted.
func (r *RateLimiter) Issued() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
