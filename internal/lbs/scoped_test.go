package lbs

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
)

// scopedTestService builds a tiny deterministic service.
func scopedTestService(t *testing.T, budget int64) *Service {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	tuples := make([]Tuple, 0, 25)
	for i := 0; i < 25; i++ {
		tuples = append(tuples, Tuple{
			ID:  int64(i + 1),
			Loc: geom.Pt(float64(i%5)*20+5, float64(i/5)*20+5),
		})
	}
	return NewService(NewDatabase(bounds, tuples), Options{K: 3, Budget: budget})
}

func TestScopedQuerierCountsOnlyItsOwnQueries(t *testing.T) {
	svc := scopedTestService(t, 0)
	ctx := context.Background()
	a := NewScopedQuerier(svc, 0)
	b := NewScopedQuerier(svc, 0)
	for i := 0; i < 4; i++ {
		if _, err := a.QueryLR(ctx, geom.Pt(10, 10), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.QueryLNR(ctx, geom.Pt(50, 50), nil); err != nil {
		t.Fatal(err)
	}
	if got := a.QueryCount(); got != 4 {
		t.Errorf("scope a counted %d, want 4", got)
	}
	if got := b.QueryCount(); got != 1 {
		t.Errorf("scope b counted %d, want 1", got)
	}
	if got := svc.QueryCount(); got != 5 {
		t.Errorf("service counted %d, want 5", got)
	}
	if got := a.RemainingBudget(); got != -1 {
		t.Errorf("unlimited scope remaining = %d, want -1", got)
	}
}

func TestScopedQuerierBudgetCap(t *testing.T) {
	svc := scopedTestService(t, 0)
	ctx := context.Background()
	sq := NewScopedQuerier(svc, 3)
	for i := 0; i < 3; i++ {
		if _, err := sq.QueryLR(ctx, geom.Pt(10, 10), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sq.QueryLR(ctx, geom.Pt(10, 10), nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget scope query returned %v, want ErrBudgetExhausted", err)
	}
	if got := sq.RemainingBudget(); got != 0 {
		t.Errorf("remaining = %d, want 0", got)
	}
	// The service itself is unlimited: only the scope refused.
	if got := svc.QueryCount(); got != 3 {
		t.Errorf("service counted %d, want 3", got)
	}
}

func TestScopedQuerierPartialBatchGrant(t *testing.T) {
	svc := scopedTestService(t, 0)
	ctx := context.Background()
	sq := NewScopedQuerier(svc, 2)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 50, Y: 50}, {X: 90, Y: 90}}
	out, err := sq.QueryLRBatch(ctx, pts, nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("partial batch returned %v, want ErrBudgetExhausted", err)
	}
	if len(out) != 3 {
		t.Fatalf("batch result misaligned: len %d", len(out))
	}
	if out[0] == nil || out[1] == nil || out[2] != nil {
		t.Fatalf("expected two answered positions and one nil hole, got [%v %v %v]",
			out[0] != nil, out[1] != nil, out[2] != nil)
	}
	if got := sq.QueryCount(); got != 2 {
		t.Errorf("scope counted %d, want 2", got)
	}
}

func TestScopedQuerierRefundsInnerShortfall(t *testing.T) {
	// The inner service has budget 1; the scope allows 5. A 3-point
	// batch must charge the scope only for the single answered point.
	svc := scopedTestService(t, 1)
	ctx := context.Background()
	sq := NewScopedQuerier(svc, 5)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 50, Y: 50}, {X: 90, Y: 90}}
	out, err := sq.QueryLRBatch(ctx, pts, nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("batch over dead inner budget returned %v, want ErrBudgetExhausted", err)
	}
	if out[0] == nil || out[1] != nil || out[2] != nil {
		t.Fatalf("expected exactly the first position answered")
	}
	if got := sq.QueryCount(); got != 1 {
		t.Errorf("scope counted %d, want 1 (refund of unanswered reservations)", got)
	}
	// A failed point query refunds too.
	if _, err := sq.QueryLNR(ctx, geom.Pt(10, 10), nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("query over dead inner budget returned %v", err)
	}
	if got := sq.QueryCount(); got != 1 {
		t.Errorf("scope counted %d after failed query, want 1", got)
	}
	if got := sq.RemainingBudget(); got != 4 {
		t.Errorf("remaining = %d, want 4", got)
	}
}

func TestScopedQuerierConcurrentCap(t *testing.T) {
	svc := scopedTestService(t, 0)
	ctx := context.Background()
	const cap = 40
	sq := NewScopedQuerier(svc, cap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _ = sq.QueryLR(ctx, geom.Pt(10, 10), nil)
			}
		}()
	}
	wg.Wait()
	if got := sq.QueryCount(); got != cap {
		t.Errorf("scope counted %d, want exactly %d", got, cap)
	}
	if got := svc.QueryCount(); got != cap {
		t.Errorf("service answered %d, want exactly %d", got, cap)
	}
}
