//go:build !race

package lbs

const raceEnabled = false
