package lbs

import (
	"context"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
)

// TestCacheGeodesicCellPitch pins that CacheOptions.Quantum is
// interpreted in the cache's metric: under Haversine the quantum is
// kilometers and geo.Metric.CellPitch converts it to degree pitches,
// so a quantum of one degree-equivalent (geo.KmPerDeg km) yields 1°×1°
// cells — while the same numeric quantum under Euclidean yields cells
// ~111 units wide that lump everything together. The three probe
// points split 2-misses/1-hit geodesically and 1-miss/2-hits planarly;
// a cache built for the wrong metric would share answers across ~111 km.
func TestCacheGeodesicCellPitch(t *testing.T) {
	ctx := context.Background()
	pts := []geom.Point{geom.Pt(5.1, 5.1), geom.Pt(5.9, 5.9), geom.Pt(6.1, 5.1)}

	geodesic := NewCachedOracle(
		NewService(testDB(t), Options{K: 1, Metric: geo.Haversine}),
		CacheOptions{Quantum: geo.KmPerDeg, Metric: geo.Haversine})
	for _, p := range pts {
		if _, err := geodesic.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := geodesic.Stats(); st.Misses != 2 || st.Hits != 1 {
		t.Errorf("haversine stats = %+v, want 2 misses / 1 hit (1°×1° cells)", st)
	}

	planar := NewCachedOracle(
		NewService(testDB(t), Options{K: 1}),
		CacheOptions{Quantum: geo.KmPerDeg})
	for _, p := range pts {
		if _, err := planar.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := planar.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("euclidean stats = %+v, want 1 miss / 2 hits (~111-unit cells)", st)
	}
}
