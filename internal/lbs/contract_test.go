package lbs

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// tieDB builds a database where many tuples share effective locations
// (the grid-snapped obfuscation shape), with IDs deliberately out of
// construction order, so ordering artifacts of the kd-tree index show.
func tieDB(t *testing.T) *Database {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	// Three tuples stacked at (2,2), two at (5,5), one at (8,8); IDs
	// assigned in reverse so index order disagrees with ID order.
	locs := []geom.Point{{X: 2, Y: 2}, {X: 5, Y: 5}, {X: 2, Y: 2}, {X: 8, Y: 8}, {X: 2, Y: 2}, {X: 5, Y: 5}}
	tuples := make([]Tuple, len(locs))
	for i, p := range locs {
		tuples[i] = Tuple{ID: int64(100 - i), Loc: p}
	}
	return NewDatabase(bounds, tuples)
}

// TestOrderingTiesBreakByID pins the service ordering contract: exact
// distance ties order by ascending tuple ID, including at the top-k
// selection boundary, regardless of database construction order.
func TestOrderingTiesBreakByID(t *testing.T) {
	db := tieDB(t)
	ctx := context.Background()

	// k=2 from right next to the (2,2) stack: the three co-located
	// tuples (IDs 100, 98, 96) tie at the boundary; the two smallest
	// IDs must win and come back in ID order.
	svc := NewService(db, Options{K: 2})
	recs, err := svc.QueryLR(ctx, geom.Pt(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 96 || recs[1].ID != 98 {
		t.Fatalf("boundary tie not resolved by ID: %+v", recs)
	}

	// k=4 sees the whole stack ordered by ID, then the next tuple out.
	svc4 := NewService(db, Options{K: 4})
	recs4, err := svc4.QueryLR(ctx, geom.Pt(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int64{96, 98, 100, 95}
	if len(recs4) != 4 {
		t.Fatalf("got %d records", len(recs4))
	}
	for i, id := range wantIDs {
		if recs4[i].ID != id {
			t.Fatalf("rank %d: got ID %d, want %d (%+v)", i, recs4[i].ID, id, recs4)
		}
	}

	// LNR sees the same ranking.
	lnr, err := svc4.QueryLNR(ctx, geom.Pt(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range wantIDs {
		if lnr[i].ID != id {
			t.Fatalf("lnr rank %d: got ID %d, want %d", i, lnr[i].ID, id)
		}
	}
}

// TestOrderingProminenceTiesBreakByID pins the prominence tie-break:
// equal scores order by tuple ID, not internal index.
func TestOrderingProminenceTiesBreakByID(t *testing.T) {
	db := tieDB(t)
	svc := NewService(db, Options{
		K: 3, Rank: RankByProminence, ProminenceAttr: "pop", ProminenceWeight: 1,
	})
	recs, err := svc.QueryLR(context.Background(), geom.Pt(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// All three stacked tuples have dist 0 and no "pop" attribute, so
	// their scores tie exactly; ID order must decide.
	if len(recs) != 3 || recs[0].ID != 96 || recs[1].ID != 98 || recs[2].ID != 100 {
		t.Fatalf("prominence tie not resolved by ID: %+v", recs)
	}
}

// TestQueryOutsideBounds pins the out-of-bounds contract: a query
// point outside Bounds() is answered from the full database exactly
// like an inside point, with MaxRadius still applying.
func TestQueryOutsideBounds(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()

	svc := NewService(db, Options{K: 2})
	far := geom.Pt(-50, -50) // well outside [0,10]²
	recs, err := svc.QueryLR(ctx, far, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 1 {
		t.Fatalf("outside-bounds query should return the global nearest tuples: %+v", recs)
	}
	if recs[0].Dist != far.Dist(geom.Pt(1, 1)) {
		t.Errorf("distance must be measured from the raw query point: %g", recs[0].Dist)
	}

	// With a coverage radius the same point gets an empty (non-nil)
	// answer — the dmax constraint is anchored at the query point, not
	// at its clamped projection.
	capped := NewService(db, Options{K: 2, MaxRadius: 5})
	empty, err := capped.QueryLR(ctx, far, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("radius-capped outside query: want empty non-nil, got %v", empty)
	}
}

// TestCacheKeyNegativeZero pins the -0.0 fix: +0.0 and -0.0 are the
// same point and must share one cache entry, in both raw and
// quantized keying modes.
func TestCacheKeyNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	for _, quantum := range []float64{0, 0.5} {
		svc := NewService(testDB(t), Options{K: 2})
		c := NewCachedOracle(svc, CacheOptions{Capacity: 64, Quantum: quantum})
		ctx := context.Background()
		if _, err := c.QueryLR(ctx, geom.Pt(0, 0), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := c.QueryLR(ctx, geom.Pt(negZero, negZero), nil); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Errorf("quantum=%g: -0.0 and +0.0 keyed differently: %+v", quantum, st)
		}
	}
}

// TestOrderingMatchesBruteForce cross-checks the (dist, ID) contract
// against a brute-force oracle over a workload dense with duplicate
// snapped locations.
func TestOrderingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(4, 4))
	tuples := make([]Tuple, 120)
	for i := range tuples {
		// Snap to a coarse grid so exact distance ties abound.
		x := math.Floor(rng.Float64()*4*2) / 2
		y := math.Floor(rng.Float64()*4*2) / 2
		tuples[i] = Tuple{ID: int64(1000 - i), Loc: geom.Pt(x, y)}
	}
	db := NewDatabase(bounds, tuples)
	svc := NewService(db, Options{K: 7})
	ctx := context.Background()
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64()*4, rng.Float64()*4)
		got, err := svc.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: sort all tuples by (dist, ID), take 7.
		type cand struct {
			id int64
			d  float64
		}
		cands := make([]cand, len(tuples))
		for i := range tuples {
			cands[i] = cand{id: tuples[i].ID, d: math.Sqrt(q.Dist2(tuples[i].Loc))}
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && (cands[j].d < cands[j-1].d || (cands[j].d == cands[j-1].d && cands[j].id < cands[j-1].id)); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for i := 0; i < 7; i++ {
			if got[i].ID != cands[i].id {
				t.Fatalf("trial %d rank %d: got ID %d, want %d (q=%v)", trial, i, got[i].ID, cands[i].id, q)
			}
		}
	}
}
