package lbs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// TestCacheHitsDontConsumeBudget: with a budget of exactly the number
// of distinct points, arbitrarily many repeats still succeed — hits
// replay recorded answers for free.
func TestCacheHitsDontConsumeBudget(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2, Budget: 3})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9), geom.Pt(5, 5)}

	want := make([][]LRRecord, len(pts))
	for i, p := range pts {
		recs, err := c.QueryLR(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = recs
	}
	for rep := 0; rep < 10; rep++ {
		for i, p := range pts {
			recs, err := c.QueryLR(ctx, p, nil)
			if err != nil {
				t.Fatalf("repeat %d point %d: %v", rep, i, err)
			}
			if len(recs) != len(want[i]) || recs[0].ID != want[i][0].ID {
				t.Fatalf("repeat answer diverged: %+v vs %+v", recs, want[i])
			}
		}
	}
	if n := svc.QueryCount(); n != 3 {
		t.Errorf("QueryCount = %d, want 3 (hits must not consume budget)", n)
	}
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 30 {
		t.Errorf("stats = %+v, want 3 misses / 30 hits", st)
	}
	// A genuinely new point now fails: the budget is spent.
	if _, err := c.QueryLR(ctx, geom.Pt(2.5, 7.5), nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("new point err = %v, want ErrBudgetExhausted", err)
	}
	// ... but cached points keep answering.
	if _, err := c.QueryLR(ctx, pts[0], nil); err != nil {
		t.Errorf("cached point after exhaustion: %v", err)
	}
}

// TestCacheEvictionUnderPressure: a tiny cache stays within capacity
// and reports evictions.
func TestCacheEvictionUnderPressure(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	c := NewCachedOracle(svc, CacheOptions{Capacity: 8, Shards: 1})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := c.QueryLR(ctx, geom.Pt(float64(i%10), float64(i/10)), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 8 {
		t.Errorf("resident entries %d exceed capacity 8", st.Entries)
	}
	if st.Evictions < 92 {
		t.Errorf("evictions = %d, want ≥ 92 for 100 distinct keys in 8 slots", st.Evictions)
	}
	if st.Misses != 100 {
		t.Errorf("misses = %d, want 100 (every point distinct)", st.Misses)
	}
}

// TestCacheLRULeastRecentFirst: re-touching an entry protects it from
// eviction.
func TestCacheLRULeastRecentFirst(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	c := NewCachedOracle(svc, CacheOptions{Capacity: 2, Shards: 1})
	ctx := context.Background()
	a, b, d := geom.Pt(1, 1), geom.Pt(9, 9), geom.Pt(5, 5)
	c.QueryLR(ctx, a, nil)
	c.QueryLR(ctx, b, nil)
	c.QueryLR(ctx, a, nil) // a is now most recent
	c.QueryLR(ctx, d, nil) // evicts b
	before := c.Stats().Hits
	c.QueryLR(ctx, a, nil)
	if c.Stats().Hits != before+1 {
		t.Errorf("a was evicted although most recently used")
	}
	c.QueryLR(ctx, b, nil)
	if got := c.Stats().Misses; got != 4 {
		t.Errorf("misses = %d, want 4 (a, b, d, then b again after eviction)", got)
	}
}

// TestCacheKindsDontCollide: an LR and an LNR answer for the same
// point are distinct entries.
func TestCacheKindsDontCollide(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	p := geom.Pt(5, 5)
	if _, err := c.QueryLR(ctx, p, nil); err != nil {
		t.Fatal(err)
	}
	recs, err := c.QueryLNR(ctx, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("LNR answer empty")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want two misses (separate kinds)", st)
	}
}

// TestCacheQuantization: with a coarse quantum, near-identical points
// share an entry.
func TestCacheQuantization(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	c := NewCachedOracle(svc, CacheOptions{Quantum: 1.0})
	ctx := context.Background()
	c.QueryLR(ctx, geom.Pt(5.1, 5.1), nil)
	c.QueryLR(ctx, geom.Pt(5.9, 5.9), nil) // same 1×1 cell
	c.QueryLR(ctx, geom.Pt(6.1, 5.1), nil) // next cell over
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit under quantization", st)
	}
}

// TestCacheBatchMixedHitsAndMisses: a batch containing cached and
// novel points only charges the novel ones.
func TestCacheBatchMixedHitsAndMisses(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	warm := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)}
	if _, err := c.QueryLRBatch(ctx, warm, nil); err != nil {
		t.Fatal(err)
	}
	mixed := []geom.Point{geom.Pt(1, 1), geom.Pt(5, 5), geom.Pt(9, 9), geom.Pt(0, 0)}
	answers, err := c.QueryLRBatch(ctx, mixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		if a == nil {
			t.Errorf("answer %d nil", i)
		}
	}
	if n := svc.QueryCount(); n != 4 {
		t.Errorf("QueryCount = %d, want 4 (2 warm + 2 novel)", n)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("stats = %+v, want 2 hits / 4 misses", st)
	}
}

// TestCacheBatchPartialBudget: when the inner budget dies mid-batch,
// cache hits still answer and only uncovered misses stay nil.
func TestCacheBatchPartialBudget(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1, Budget: 3})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	// Spend 2 of 3 budget on warm points.
	if _, err := c.QueryLRBatch(ctx, []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)}, nil); err != nil {
		t.Fatal(err)
	}
	// hit, miss (charged), hit, miss (budget dead), miss (budget dead)
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(5, 5), geom.Pt(9, 9), geom.Pt(2, 2), geom.Pt(3, 3)}
	answers, err := c.QueryLRBatch(ctx, pts, nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	for _, i := range []int{0, 1, 2} {
		if answers[i] == nil {
			t.Errorf("answer %d nil, want served", i)
		}
	}
	for _, i := range []int{3, 4} {
		if answers[i] != nil {
			t.Errorf("answer %d served beyond budget", i)
		}
	}
	if n := svc.QueryCount(); n != 3 {
		t.Errorf("QueryCount = %d, want 3", n)
	}
}

// TestCacheConcurrent drives overlapping point sets from many
// goroutines (run under -race): every answer must be consistent with
// the uncached service and the hit/miss accounting must add up.
func TestCacheConcurrent(t *testing.T) {
	db := testDB(t)
	svc := NewService(db, Options{K: 2})
	ref := NewService(db, Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{Capacity: 64, Shards: 4})
	ctx := context.Background()

	// 32 distinct points shared by all goroutines.
	pts := make([]geom.Point, 32)
	rng := rand.New(rand.NewSource(7))
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	want := make([][]LRRecord, len(pts))
	for i, p := range pts {
		want[i], _ = ref.QueryLR(ctx, p, nil)
	}

	const goroutines, rounds = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(len(pts))
				var recs []LRRecord
				var err error
				if r%3 == 0 {
					var batch [][]LRRecord
					batch, err = c.QueryLRBatch(ctx, pts[i:i+1], nil)
					if err == nil {
						recs = batch[0]
					}
				} else {
					recs, err = c.QueryLR(ctx, pts[i], nil)
				}
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(recs) != len(want[i]) || (len(recs) > 0 && recs[0].ID != want[i][0].ID) {
					t.Errorf("goroutine %d: answer for point %d diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != goroutines*rounds {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines*rounds)
	}
	if svc.QueryCount() != st.Misses {
		t.Errorf("inner queries %d != misses %d", svc.QueryCount(), st.Misses)
	}
	if st.Misses > int64(len(pts))+st.Evictions {
		t.Errorf("misses %d exceed distinct points %d + evictions %d", st.Misses, len(pts), st.Evictions)
	}
}

// TestCacheSelectionKeysDistinct: two wrappers with different
// Selection labels over the same service never share entries (the
// key includes the selection). The filtered wrapper declares its
// fixed filter via TrustFilter — the estimator pattern.
func TestCacheSelectionKeysDistinct(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 4})
	all := NewCachedOracle(svc, CacheOptions{})
	cafes := NewCachedOracle(svc, CacheOptions{Selection: "category=cafe", TrustFilter: true})
	ctx := context.Background()
	p := geom.Pt(5, 5)
	full, err := all.QueryLR(ctx, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := cafes.QueryLR(ctx, p, CategoryFilter("cafe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) >= len(full) {
		t.Fatalf("filter did not restrict: %d vs %d", len(filtered), len(full))
	}
	for _, r := range filtered {
		if r.Category != "cafe" {
			t.Errorf("filtered answer leaked %s", r.Category)
		}
	}
	// The trusted filtered answer is cached under its own key.
	if _, err := cafes.QueryLR(ctx, p, CategoryFilter("cafe")); err != nil {
		t.Fatal(err)
	}
	if st := cafes.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("trusted-filter stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestCacheUntrustedFilterBypasses: without TrustFilter, a wrapper
// shared by differently filtered callers (the HTTP gateway pattern)
// must never replay an answer across filters — in either order.
func TestCacheUntrustedFilterBypasses(t *testing.T) {
	ctx := context.Background()
	p := geom.Pt(5, 5)

	// Filtered first: the bypassed answer must not poison the cache.
	c := NewCachedOracle(NewService(testDB(t), Options{K: 4}), CacheOptions{})
	filtered, err := c.QueryLR(ctx, p, CategoryFilter("school"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.QueryLR(ctx, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(filtered) {
		t.Fatalf("unfiltered answer %d records after filtered %d — cache replayed across filters", len(full), len(filtered))
	}
	if st := c.Stats(); st.Bypasses != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 bypass / 1 miss", st)
	}

	// Unfiltered first: the cached full answer must not serve a
	// filtered query.
	c2 := NewCachedOracle(NewService(testDB(t), Options{K: 4}), CacheOptions{})
	full2, err := c2.QueryLR(ctx, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered2, err := c2.QueryLR(ctx, p, CategoryFilter("school"))
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered2) >= len(full2) {
		t.Fatalf("filtered answer %d records, full %d — cache replayed across filters", len(filtered2), len(full2))
	}
	for _, r := range filtered2 {
		if r.Category != "school" {
			t.Errorf("filtered answer leaked %s", r.Category)
		}
	}
	// Batch path bypasses too.
	answers, err := c2.QueryLRBatch(ctx, []geom.Point{p, p}, CategoryFilter("cafe"))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		for _, r := range a {
			if r.Category != "cafe" {
				t.Errorf("batch answer %d leaked %s", i, r.Category)
			}
		}
	}
	if st := c2.Stats(); st.Bypasses != 3 {
		t.Errorf("bypasses = %d, want 3 (1 single + 2 batch)", st.Bypasses)
	}
}

// TestCacheTinyCapacityClamp: a capacity below the default shard
// count must still bound residency by the capacity (the shard count
// clamps down), not by one-entry-per-shard.
func TestCacheTinyCapacityClamp(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	c := NewCachedOracle(svc, CacheOptions{Capacity: 3})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := c.QueryLR(ctx, geom.Pt(float64(i%10)+0.1, float64(i/10)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 3 {
		t.Errorf("resident entries %d exceed configured capacity 3", st.Entries)
	}
}

// TestCacheStatsString is a smoke check that stats render usefully in
// experiment logs.
func TestCacheStatsFormatting(t *testing.T) {
	st := CacheStats{Hits: 10, Misses: 2, Evictions: 1, Entries: 1}
	s := fmt.Sprintf("%+v", st)
	if s == "" {
		t.Fatal("empty stats rendering")
	}
}

// TestCacheInvalidateRegion: invalidation drops exactly the entries
// whose query cells intersect the dirty region and leaves the rest
// replaying — the survivor count pins that mutation-driven
// invalidation is regional, not a full flush.
func TestCacheInvalidateRegion(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{Quantum: 1})
	ctx := context.Background()
	inside := []geom.Point{geom.Pt(1.5, 1.5), geom.Pt(2.5, 2.5)}
	outside := []geom.Point{geom.Pt(8.5, 8.5), geom.Pt(7.5, 0.5), geom.Pt(0.5, 7.5)}
	for _, p := range append(append([]geom.Point{}, inside...), outside...) {
		if _, err := c.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != 5 {
		t.Fatalf("entries = %d, want 5", st.Entries)
	}
	dropped := c.Invalidate(geom.NewRect(geom.Pt(1, 1), geom.Pt(3, 3)))
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (only cells intersecting the region)", dropped)
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("survivors = %d, want 3", st.Entries)
	}
	if st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", st.Invalidations)
	}
	// Survivors still replay (no inner queries), dropped cells re-fetch.
	before := svc.QueryCount()
	for _, p := range outside {
		if _, err := c.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.QueryCount(); n != before {
		t.Errorf("survivors forwarded %d queries, want 0", n-before)
	}
	for _, p := range inside {
		if _, err := c.QueryLR(ctx, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.QueryCount(); n != before+int64(len(inside)) {
		t.Errorf("dropped cells forwarded %d queries, want %d", n-before, len(inside))
	}
}

// TestCacheInvalidateExactKeys: with Quantum 0 the cell is the exact
// query point, so a point region invalidates exactly that point's
// entries (both kinds) and nothing else.
func TestCacheInvalidateExactKeys(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	p, q := geom.Pt(1, 1), geom.Pt(9, 9)
	if _, err := c.QueryLR(ctx, p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryLNR(ctx, p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryLR(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	if dropped := c.Invalidate(geom.Rect{Min: p, Max: p}); dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (LR and LNR entries for p)", dropped)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("survivors = %d, want 1", st.Entries)
	}
}

// TestCacheInvalidateAll flushes everything and counts it.
func TestCacheInvalidateAll(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	c := NewCachedOracle(svc, CacheOptions{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.QueryLR(ctx, geom.Pt(float64(i)+0.5, 5), nil); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := c.InvalidateAll(); dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Invalidations != 4 {
		t.Fatalf("stats after flush = %+v", st)
	}
	// An infinite dirty region behaves identically.
	for i := 0; i < 4; i++ {
		if _, err := c.QueryLR(ctx, geom.Pt(float64(i)+0.5, 5), nil); err != nil {
			t.Fatal(err)
		}
	}
	inf := math.Inf(1)
	if dropped := c.Invalidate(geom.Rect{Min: geom.Pt(-inf, -inf), Max: geom.Pt(inf, inf)}); dropped != 4 {
		t.Fatalf("infinite region dropped = %d, want 4", dropped)
	}
}
