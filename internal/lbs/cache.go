package lbs

import (
	"container/list"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/geom"
)

// CacheOptions configures a CachedOracle.
type CacheOptions struct {
	// Capacity is the maximum number of cached answers across all
	// shards (default 4096). It is split evenly between shards — the
	// effective capacity rounds down to a multiple of the shard count,
	// and the shard count is clamped so total residency never exceeds
	// Capacity.
	Capacity int
	// Shards is the number of independently locked LRU shards, rounded
	// up to a power of two (default 16). More shards means less lock
	// contention under the Driver's parallel mode.
	Shards int
	// Quantum, when positive, quantizes query coordinates to a grid of
	// this pitch before keying, so that near-identical points share an
	// entry. Zero keys on the exact floating-point bit pattern — hits
	// then replay answers for exactly repeated points only, which keeps
	// the wrapper fully transparent to the estimators.
	//
	// The quantum is expressed in the Metric's unit: plane units under
	// geo.Euclidean (cells of exactly Quantum × Quantum), kilometers
	// under geo.Haversine (cells of Quantum km of latitude by at most
	// Quantum km of longitude — geo.Metric.CellPitch converts, and the
	// shrinking of longitude degrees with latitude makes high-latitude
	// cells conservatively narrow, never too wide).
	Quantum float64
	// Metric is the distance metric of the wrapped service stack. It
	// scales Quantum into per-axis coordinate pitches and must match
	// the inner Querier's metric. The zero value (geo.Euclidean)
	// preserves the historical keying bit for bit.
	Metric geo.Metric
	// Selection labels the fixed server-side filter used through this
	// wrapper and is folded into every cache key. Distinct selections
	// over the same service must use distinct CachedOracle instances
	// (or distinct Selection labels): the functional filter itself
	// cannot be hashed, so the cache trusts this label to identify it.
	Selection string
	// TrustFilter declares that every non-nil per-call filter passed
	// through this wrapper is the one filter the Selection label names
	// (the estimator pattern: one configured Filter for the whole
	// run). Without it, queries carrying a non-nil filter BYPASS the
	// cache entirely — forwarded and charged but never stored or
	// replayed — because the cache cannot tell two functional filters
	// apart and a filtered answer replayed for a differently filtered
	// query would be silently wrong (e.g. an HTTP gateway whose
	// per-request selections vary).
	TrustFilter bool
}

// CacheStats is a point-in-time snapshot of cache effectiveness
// counters, for the cost accounting of experiments.
type CacheStats struct {
	Hits          int64 // answers replayed without touching the service
	Misses        int64 // queries forwarded (and charged) to the service
	Bypasses      int64 // untrusted filtered queries forwarded uncached
	Evictions     int64 // entries dropped by LRU pressure
	Invalidations int64 // entries dropped by mutation (Invalidate/InvalidateAll)
	Restored      int64 // entries loaded from a persisted snapshot (warm restart)
	Entries       int64 // entries currently resident
}

// query kinds, part of the cache key so LR and LNR answers for the
// same point never collide.
const (
	cacheKindLR uint8 = iota
	cacheKindLNR
)

// cacheKey identifies one recorded answer: (quantized point, k,
// selection) plus the interface view the answer came from.
type cacheKey struct {
	kind uint8
	k    int
	qx   uint64
	qy   uint64
	sel  string
}

// hash is FNV-1a over the key fields; the low bits pick the shard.
func (k cacheKey) hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(k.kind))
	mix(uint64(k.k))
	mix(k.qx)
	mix(k.qy)
	for i := 0; i < len(k.sel); i++ {
		h ^= uint64(k.sel[i])
		h *= 1099511628211
	}
	return h
}

// cacheEntry is one recorded answer (LR or LNR per key.kind).
type cacheEntry struct {
	key cacheKey
	lr  []LRRecord
	lnr []LNRRecord
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; element values are *cacheEntry
	items map[cacheKey]*list.Element
}

func (sh *cacheShard) get(key cacheKey) (*cacheEntry, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) an entry and returns how many entries
// were evicted to make room.
func (sh *cacheShard) put(e *cacheEntry) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[e.key]; ok {
		el.Value = e
		sh.lru.MoveToFront(el)
		return 0
	}
	sh.items[e.key] = sh.lru.PushFront(e)
	evicted := 0
	for sh.lru.Len() > sh.cap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

func (sh *cacheShard) len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lru.Len()
}

// CachedOracle memoizes the answers of an inner Querier in a
// concurrent sharded LRU keyed by (quantized point, k, selection).
// Cache hits replay the recorded answer without consuming the inner
// service's budget or rate-limiter quota — client-side memoization,
// not a change to the service contract. It implements Querier (and
// therefore the estimators' Oracle interface), so any estimator can
// run over it unchanged.
//
// Records are returned by reference: callers must treat cached answers
// as immutable, exactly as they must treat the simulator's shared
// Attrs/Tags maps.
type CachedOracle struct {
	inner   Querier
	quantum float64
	// pitchX/pitchY are the per-axis cell pitches Quantum resolves to
	// under the metric (both equal to quantum under Euclidean).
	pitchX, pitchY float64
	metric         geo.Metric
	sel            string
	trustFilter    bool
	shards         []*cacheShard
	shardMask      uint64
	hits           atomic.Int64
	misses         atomic.Int64
	bypasses       atomic.Int64
	evictions      atomic.Int64
	invalidations  atomic.Int64
	restored       atomic.Int64
}

var _ Querier = (*CachedOracle)(nil)

// NewCachedOracle wraps inner with an answer cache. Unfiltered
// queries are always cacheable; queries carrying a non-nil functional
// filter are cached only when opts.TrustFilter declares the filter
// fixed (the estimator pattern) and bypass the cache otherwise, so a
// front shared by differently filtered callers (an HTTP gateway) can
// never replay a filtered answer for the wrong selection.
func NewCachedOracle(inner Querier, opts CacheOptions) *CachedOracle {
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	shards := 1
	for shards < opts.Shards {
		shards *= 2
	}
	// A shard holds at least one entry, so clamp the shard count to
	// the capacity: total residency must never exceed Capacity.
	for shards > 1 && shards > opts.Capacity {
		shards /= 2
	}
	perShard := opts.Capacity / shards
	px, py := opts.Metric.CellPitch(opts.Quantum)
	c := &CachedOracle{
		inner:       inner,
		quantum:     opts.Quantum,
		pitchX:      px,
		pitchY:      py,
		metric:      opts.Metric,
		sel:         opts.Selection,
		trustFilter: opts.TrustFilter,
		shards:      make([]*cacheShard, shards),
		shardMask:   uint64(shards - 1),
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			lru:   list.New(),
			items: make(map[cacheKey]*list.Element, perShard),
		}
	}
	return c
}

// normZero collapses negative zero onto positive zero: -0.0 and +0.0
// are the same query point (they compare equal and yield identical
// distances), but their Float64bits differ, so keying on the raw bit
// pattern would give the one point two cache entries — and, through
// math.Floor, let quantized keys straddle the sign at a cell boundary.
func normZero(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

// keyFor quantizes p and assembles the cache key.
func (c *CachedOracle) keyFor(kind uint8, p geom.Point) cacheKey {
	x, y := normZero(p.X), normZero(p.Y)
	var qx, qy uint64
	if c.quantum > 0 {
		qx = uint64(int64(normZero(math.Floor(x / c.pitchX))))
		qy = uint64(int64(normZero(math.Floor(y / c.pitchY))))
	} else {
		qx = math.Float64bits(x)
		qy = math.Float64bits(y)
	}
	return cacheKey{kind: kind, k: c.inner.K(), qx: qx, qy: qy, sel: c.sel}
}

func (c *CachedOracle) shardFor(key cacheKey) *cacheShard {
	return c.shards[key.hash()&c.shardMask]
}

// store records an answer and maintains the eviction counter.
func (c *CachedOracle) store(e *cacheEntry) {
	if n := c.shardFor(e.key).put(e); n > 0 {
		c.evictions.Add(int64(n))
	}
}

// Stats returns a snapshot of the effectiveness counters.
func (c *CachedOracle) Stats() CacheStats {
	var entries int64
	for _, sh := range c.shards {
		entries += int64(sh.len())
	}
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Bypasses:      c.bypasses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Restored:      c.restored.Load(),
		Entries:       entries,
	}
}

// cellRect reconstructs the region of query points that share a key:
// the per-axis quantization cell [q·pitch, (q+1)·pitch) under a
// positive quantum, or the single exact point keyed by its bit
// pattern. It is the geometric footprint Invalidate tests against the
// dirty region (both in raw coordinate space, whatever the metric).
func (c *CachedOracle) cellRect(key cacheKey) geom.Rect {
	if c.quantum > 0 {
		x0 := float64(int64(key.qx)) * c.pitchX
		y0 := float64(int64(key.qy)) * c.pitchY
		return geom.Rect{
			Min: geom.Point{X: x0, Y: y0},
			Max: geom.Point{X: x0 + c.pitchX, Y: y0 + c.pitchY},
		}
	}
	p := geom.Point{X: math.Float64frombits(key.qx), Y: math.Float64frombits(key.qy)}
	return geom.Rect{Min: p, Max: p}
}

// removeIf drops every entry whose key matches pred and returns how
// many were removed.
func (sh *cacheShard) removeIf(pred func(cacheKey) bool) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	removed := 0
	var next *list.Element
	for el := sh.lru.Front(); el != nil; el = next {
		next = el.Next()
		key := el.Value.(*cacheEntry).key
		if pred(key) {
			sh.lru.Remove(el)
			delete(sh.items, key)
			removed++
		}
	}
	return removed
}

// Invalidate drops every cached answer whose query cell intersects
// region and returns how many entries were dropped. Mutation-driven
// epoch invalidation calls this with the dirty region of a batch of
// mutations — the bounding box of disks of the service's maximum
// match radius around every mutated effective location — so entries
// for queries provably unaffected by the mutation survive. An
// infinite or universe-covering region degenerates to InvalidateAll.
func (c *CachedOracle) Invalidate(region geom.Rect) int64 {
	var dropped int64
	for _, sh := range c.shards {
		dropped += int64(sh.removeIf(func(key cacheKey) bool {
			cell := c.cellRect(key)
			return cell.Min.X <= region.Max.X && region.Min.X <= cell.Max.X &&
				cell.Min.Y <= region.Max.Y && region.Min.Y <= cell.Max.Y
		}))
	}
	c.invalidations.Add(dropped)
	return dropped
}

// InvalidateAll drops every cached answer and returns how many
// entries were dropped — the correct response to a mutation whose
// effect radius is unbounded (no MaxRadius on the service).
func (c *CachedOracle) InvalidateAll() int64 {
	var dropped int64
	for _, sh := range c.shards {
		dropped += int64(sh.removeIf(func(cacheKey) bool { return true }))
	}
	c.invalidations.Add(dropped)
	return dropped
}

// cacheable reports whether a query carrying this filter may use the
// cache (see CacheOptions.TrustFilter).
func (c *CachedOracle) cacheable(filter Filter) bool {
	return filter == nil || c.trustFilter
}

// Inner returns the wrapped querier, so observers (e.g. the stats
// endpoint of internal/httpapi) can walk a wrapper chain down to the
// service that owns the budget.
func (c *CachedOracle) Inner() Querier { return c.inner }

// Bounds implements Querier.
func (c *CachedOracle) Bounds() geom.Rect { return c.inner.Bounds() }

// K implements Querier.
func (c *CachedOracle) K() int { return c.inner.K() }

// QueryCount reports the inner service's query count — the paper's
// cost metric. Cache hits do not appear in it; Stats().Hits counts
// them.
func (c *CachedOracle) QueryCount() int64 { return c.inner.QueryCount() }

// cachedQuery is the shared single-point lookup shape of QueryLR and
// QueryLNR: hit → replay, untrusted filter → bypass, miss → forward,
// record, count. Errors are never cached.
func cachedQuery[T any](c *CachedOracle, ctx context.Context, q geom.Point, filter Filter, kind uint8,
	fetch func(context.Context, geom.Point, Filter) ([]T, error),
	load func(*cacheEntry) []T, entry func(cacheKey, []T) *cacheEntry) ([]T, error) {

	if !c.cacheable(filter) {
		c.bypasses.Add(1)
		return fetch(ctx, q, filter)
	}
	key := c.keyFor(kind, q)
	if e, ok := c.shardFor(key).get(key); ok {
		c.hits.Add(1)
		return load(e), nil
	}
	recs, err := fetch(ctx, q, filter)
	if err != nil {
		if IsPartial(err) {
			// A degraded answer is served but never memoized: once the
			// missing member recovers, the same key must re-fetch the
			// full answer instead of replaying the contaminated one.
			c.bypasses.Add(1)
			return recs, err
		}
		return nil, err
	}
	c.misses.Add(1)
	c.store(entry(key, recs))
	return recs, nil
}

// cachedBatch is the shared batch shape: answer hits from the cache,
// forward the remaining misses as one (smaller) batch, record what
// came back. Partial-budget semantics follow Service.QueryLRBatch —
// nil entries mark the positions the budget could not cover, and
// cache hits are answered even after the budget dies (memoized
// answers are free). Untrusted filtered batches bypass entirely.
func cachedBatch[T any](c *CachedOracle, ctx context.Context, pts []geom.Point, filter Filter, kind uint8,
	fetch func(context.Context, []geom.Point, Filter) ([][]T, error),
	load func(*cacheEntry) []T, entry func(cacheKey, []T) *cacheEntry) ([][]T, error) {

	if !c.cacheable(filter) {
		c.bypasses.Add(int64(len(pts)))
		return fetch(ctx, pts, filter)
	}
	out := make([][]T, len(pts))
	var missIdx []int
	var missPts []geom.Point
	var missKeys []cacheKey
	for i, p := range pts {
		key := c.keyFor(kind, p)
		if e, ok := c.shardFor(key).get(key); ok {
			c.hits.Add(1)
			out[i] = load(e)
			continue
		}
		missIdx = append(missIdx, i)
		missPts = append(missPts, p)
		missKeys = append(missKeys, key)
	}
	if len(missPts) == 0 {
		return out, nil
	}
	answers, err := fetch(ctx, missPts, filter)
	partial := IsPartial(err)
	for j, recs := range answers {
		if recs == nil {
			continue
		}
		out[missIdx[j]] = recs
		if partial {
			// The annotation does not say which positions were
			// degraded, so none of the batch is memoized.
			c.bypasses.Add(1)
			continue
		}
		c.misses.Add(1)
		c.store(entry(missKeys[j], recs))
	}
	return out, err
}

// QueryLR implements Querier: a hit replays the recorded answer, a
// miss forwards to the inner service and records the result.
func (c *CachedOracle) QueryLR(ctx context.Context, q geom.Point, filter Filter) ([]LRRecord, error) {
	return cachedQuery(c, ctx, q, filter, cacheKindLR, c.inner.QueryLR,
		func(e *cacheEntry) []LRRecord { return e.lr },
		func(k cacheKey, recs []LRRecord) *cacheEntry { return &cacheEntry{key: k, lr: recs} })
}

// QueryLNR implements Querier (see QueryLR).
func (c *CachedOracle) QueryLNR(ctx context.Context, q geom.Point, filter Filter) ([]LNRRecord, error) {
	return cachedQuery(c, ctx, q, filter, cacheKindLNR, c.inner.QueryLNR,
		func(e *cacheEntry) []LNRRecord { return e.lnr },
		func(k cacheKey, recs []LNRRecord) *cacheEntry { return &cacheEntry{key: k, lnr: recs} })
}

// QueryLRBatch implements Querier (see cachedBatch for semantics).
func (c *CachedOracle) QueryLRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LRRecord, error) {
	return cachedBatch(c, ctx, pts, filter, cacheKindLR, c.inner.QueryLRBatch,
		func(e *cacheEntry) []LRRecord { return e.lr },
		func(k cacheKey, recs []LRRecord) *cacheEntry { return &cacheEntry{key: k, lr: recs} })
}

// QueryLNRBatch implements Querier (see cachedBatch for semantics).
func (c *CachedOracle) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter Filter) ([][]LNRRecord, error) {
	return cachedBatch(c, ctx, pts, filter, cacheKindLNR, c.inner.QueryLNRBatch,
		func(e *cacheEntry) []LNRRecord { return e.lnr },
		func(k cacheKey, recs []LNRRecord) *cacheEntry { return &cacheEntry{key: k, lnr: recs} })
}
