package lbs

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	tuples := []Tuple{
		{ID: 1, Loc: geom.Pt(1, 1), Name: "Starbucks", Category: "cafe",
			Attrs: map[string]float64{"rating": 4.5}, Tags: map[string]string{"open_sunday": "yes"}},
		{ID: 2, Loc: geom.Pt(9, 9), Name: "Moonbucks", Category: "cafe",
			Attrs: map[string]float64{"rating": 3.0}},
		{ID: 3, Loc: geom.Pt(5, 5), Name: "School A", Category: "school",
			Attrs: map[string]float64{"enrollment": 300}},
		{ID: 4, Loc: geom.Pt(5.5, 5), Name: "School B", Category: "school",
			Attrs: map[string]float64{"enrollment": 700}},
	}
	return NewDatabase(bounds, tuples)
}

func TestDatabaseAccessors(t *testing.T) {
	db := testDB(t)
	if db.Len() != 4 {
		t.Fatalf("len: %d", db.Len())
	}
	tp, ok := db.ByID(3)
	if !ok || tp.Name != "School A" {
		t.Fatalf("ByID: %v %v", tp, ok)
	}
	if _, ok := db.ByID(99); ok {
		t.Errorf("ByID(99) should miss")
	}
	if db.Tuple(0).ID != 1 {
		t.Errorf("Tuple(0): %v", db.Tuple(0))
	}
	if db.EffectiveLoc(0) != geom.Pt(1, 1) {
		t.Errorf("effective loc without obfuscation differs from true loc")
	}
	if db.Bounds().Max != geom.Pt(10, 10) {
		t.Errorf("bounds: %v", db.Bounds())
	}
}

func TestTupleAttrTag(t *testing.T) {
	tp := Tuple{Attrs: map[string]float64{"a": 2}, Tags: map[string]string{"g": "m"}}
	if tp.Attr("a") != 2 || tp.Attr("zz") != 0 {
		t.Errorf("Attr")
	}
	if tp.Tag("g") != "m" || tp.Tag("zz") != "" {
		t.Errorf("Tag")
	}
	empty := Tuple{}
	if empty.Attr("a") != 0 || empty.Tag("g") != "" {
		t.Errorf("nil maps")
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate ID did not panic")
		}
	}()
	NewDatabase(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)), []Tuple{
		{ID: 1, Loc: geom.Pt(0.1, 0.1)},
		{ID: 1, Loc: geom.Pt(0.2, 0.2)},
	})
}

func TestQueryLRBasic(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	res, err := svc.QueryLR(context.Background(), geom.Pt(0, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 {
		t.Fatalf("results: %+v", res)
	}
	if res[0].Loc != geom.Pt(1, 1) {
		t.Errorf("LR must return location: %v", res[0].Loc)
	}
	if math.Abs(res[0].Dist-math.Sqrt2) > 1e-12 {
		t.Errorf("dist: %v", res[0].Dist)
	}
	if res[0].Attrs["rating"] != 4.5 || res[0].Tags["open_sunday"] != "yes" {
		t.Errorf("attrs not carried: %+v", res[0])
	}
	if svc.QueryCount() != 1 {
		t.Errorf("query count: %d", svc.QueryCount())
	}
}

func TestQueryLNRHidesLocation(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 3})
	res, err := svc.QueryLNR(context.Background(), geom.Pt(5.2, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results: %+v", res)
	}
	// Rank order: School A (0.2), School B (0.3), then the cafes.
	if res[0].ID != 3 || res[1].ID != 4 {
		t.Errorf("rank order: %+v", res)
	}
}

func TestServerSideFilter(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 10})
	res, err := svc.QueryLR(context.Background(), geom.Pt(0, 0), CategoryFilter("school"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("filtered count: %d", len(res))
	}
	for _, r := range res {
		if r.Category != "school" {
			t.Errorf("filter leak: %+v", r)
		}
	}
	res, err = svc.QueryLR(context.Background(), geom.Pt(0, 0), NameFilter("Starbucks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "Starbucks" {
		t.Errorf("name filter: %+v", res)
	}
}

func TestMaxRadius(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 5, MaxRadius: 1.0})
	res, err := svc.QueryLR(context.Background(), geom.Pt(0, 9), nil) // nothing within 1.0
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expected empty answer beyond dmax: %+v", res)
	}
	res, _ = svc.QueryLR(context.Background(), geom.Pt(1.3, 1), nil)
	if len(res) != 1 || res[0].ID != 1 {
		t.Errorf("within dmax: %+v", res)
	}
}

func TestBudget(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1, Budget: 2})
	for i := 0; i < 2; i++ {
		if _, err := svc.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := svc.QueryLNR(context.Background(), geom.Pt(1, 1), nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if svc.QueryCount() != 2 {
		t.Errorf("count after exhaustion: %d", svc.QueryCount())
	}
	if svc.RemainingBudget() != 0 {
		t.Errorf("remaining: %d", svc.RemainingBudget())
	}
	svc.ResetQueryCount()
	if svc.RemainingBudget() != 2 {
		t.Errorf("remaining after reset: %d", svc.RemainingBudget())
	}
}

func TestUnlimitedBudget(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	if svc.RemainingBudget() != -1 {
		t.Errorf("unlimited: %d", svc.RemainingBudget())
	}
}

func TestVirtualDuration(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 1})
	for i := 0; i < 150; i++ {
		if _, err := svc.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := svc.VirtualDuration(150); d != time.Hour {
		t.Errorf("150 queries at 150/h: %v", d)
	}
	if d := svc.VirtualDuration(0); d != 0 {
		t.Errorf("zero rate: %v", d)
	}
}

func TestGroundTruthAndCount(t *testing.T) {
	db := testDB(t)
	sum := db.GroundTruth(func(tp *Tuple) float64 { return tp.Attr("enrollment") }, nil)
	if sum != 1000 {
		t.Errorf("sum enrollment: %v", sum)
	}
	n := db.Count(func(tp *Tuple) bool { return tp.Category == "cafe" })
	if n != 2 {
		t.Errorf("cafes: %d", n)
	}
	if db.Count(nil) != 4 {
		t.Errorf("count all: %d", db.Count(nil))
	}
}

func TestSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	tuples := make([]Tuple, 1000)
	for i := range tuples {
		tuples[i] = Tuple{ID: int64(i), Loc: geom.RandomInRect(rng, bounds)}
	}
	db := NewDatabase(bounds, tuples)
	half := db.Subsample(0.5, 42)
	if half.Len() != 500 {
		t.Fatalf("half: %d", half.Len())
	}
	// Deterministic.
	half2 := db.Subsample(0.5, 42)
	for i := 0; i < half.Len(); i++ {
		if half.Tuple(i).ID != half2.Tuple(i).ID {
			t.Fatalf("subsample not deterministic at %d", i)
		}
	}
	if db.Subsample(1.0, 1) != db {
		t.Errorf("frac=1 should return the same db")
	}
	tiny := db.Subsample(0.0001, 1)
	if tiny.Len() < 1 {
		t.Errorf("tiny subsample empty")
	}
}

func TestObfuscationDistorts(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	rng := rand.New(rand.NewSource(3))
	tuples := make([]Tuple, 200)
	for i := range tuples {
		tuples[i] = Tuple{ID: int64(i), Loc: geom.RandomInRect(rng, bounds)}
	}
	obf := Obfuscation{GridSize: 0.5, Jitter: 0.2, Seed: 7}
	db := NewObfuscatedDatabase(bounds, tuples, obf)
	moved := 0
	maxShift := 0.0
	for i := range tuples {
		d := db.EffectiveLoc(i).Dist(tuples[i].Loc)
		if d > 1e-12 {
			moved++
		}
		if d > maxShift {
			maxShift = d
		}
		if !bounds.Contains(db.EffectiveLoc(i)) {
			t.Fatalf("effective loc escaped bounds: %v", db.EffectiveLoc(i))
		}
	}
	if moved < 190 {
		t.Errorf("obfuscation moved only %d/200 tuples", moved)
	}
	// Max displacement ≤ grid diagonal/2 + jitter.
	if lim := 0.5*math.Sqrt2/2 + 0.2 + 1e-9; maxShift > lim {
		t.Errorf("shift %v exceeds limit %v", maxShift, lim)
	}
	// Deterministic in seed.
	db2 := NewObfuscatedDatabase(bounds, tuples, obf)
	for i := range tuples {
		if db.EffectiveLoc(i) != db2.EffectiveLoc(i) {
			t.Fatalf("obfuscation not deterministic")
		}
	}
}

func TestProminenceRanking(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	tuples := []Tuple{
		{ID: 1, Loc: geom.Pt(5, 5), Attrs: map[string]float64{"pop": 0}},
		{ID: 2, Loc: geom.Pt(5.4, 5), Attrs: map[string]float64{"pop": 10}},
	}
	db := NewDatabase(bounds, tuples)
	// Distance ranking: tuple 1 first from (5.1, 5).
	dist := NewService(db, Options{K: 2})
	res, _ := dist.QueryLR(context.Background(), geom.Pt(5.1, 5), nil)
	if res[0].ID != 1 {
		t.Fatalf("distance rank: %+v", res)
	}
	// Prominence ranking with a strong weight: popular tuple 2 first.
	prom := NewService(db, Options{
		K: 2, Rank: RankByProminence,
		ProminenceAttr: "pop", ProminenceWeight: 0.1,
	})
	res, _ = prom.QueryLR(context.Background(), geom.Pt(5.1, 5), nil)
	if res[0].ID != 2 {
		t.Fatalf("prominence rank: %+v", res)
	}
	// The nearest neighbor is still present in the top-k (what
	// LR-LBS-AGG relies on, §5.3).
	found := false
	for _, r := range res {
		if r.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("nearest neighbor missing from prominence results")
	}
}

func TestNewServiceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("K=0 did not panic")
		}
	}()
	NewService(testDB(t), Options{K: 0})
}

func TestConcurrentQueries(t *testing.T) {
	svc := NewService(testDB(t), Options{K: 2})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				if _, err := svc.QueryLR(context.Background(), geom.Pt(float64(i%10), 5), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if svc.QueryCount() != 800 {
		t.Errorf("concurrent count: %d", svc.QueryCount())
	}
}
