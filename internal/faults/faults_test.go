package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func testInner() lbs.Querier {
	return lbs.NewService(workload.USASchools(60, 1).DB, lbs.Options{K: 3})
}

// callSeq issues n single-point queries and records each call's
// outcome class: "ok", "transient" or "down".
func callSeq(t *testing.T, inj *Injector, n int) []string {
	t.Helper()
	ctx := context.Background()
	q := geom.Pt(500, 500)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		_, err := inj.QueryLR(ctx, q, nil)
		switch {
		case err == nil:
			out[i] = "ok"
		case errors.Is(err, ErrDown):
			out[i] = "down"
		case lbs.IsTransient(err):
			out[i] = "transient"
		default:
			t.Fatalf("call %d: unexpected error class: %v", i, err)
		}
	}
	return out
}

// TestDeterministicSchedule pins the injector's core guarantee: the
// same seed replays the exact same fault sequence.
func TestDeterministicSchedule(t *testing.T) {
	spec := Spec{Seed: 7, TransientRate: 0.3}
	a := callSeq(t, New(testInner(), spec), 200)
	b := callSeq(t, New(testInner(), spec), 200)
	transients := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %s vs %s", i, a[i], b[i])
		}
		if a[i] == "transient" {
			transients++
		}
	}
	if transients < 20 || transients > 120 {
		t.Fatalf("rate 0.3 over 200 calls injected %d transients", transients)
	}
}

// TestTransientEvery pins the deterministic fully-recovering schedule:
// calls 0, n, 2n… fail exactly once each, so an immediate retry (the
// next call) always succeeds.
func TestTransientEvery(t *testing.T) {
	seq := callSeq(t, New(testInner(), Spec{TransientEvery: 3}), 10)
	for i, got := range seq {
		want := "ok"
		if i%3 == 0 {
			want = "transient"
		}
		if got != want {
			t.Fatalf("call %d: %s, want %s (seq %v)", i, got, want, seq)
		}
	}
}

// TestDownWindow pins the crash-recover schedule: down for exactly
// [DownAfter, DownAfter+DownFor), alive before and after.
func TestDownWindow(t *testing.T) {
	seq := callSeq(t, New(testInner(), Spec{DownAfter: 3, DownFor: 2}), 8)
	want := []string{"ok", "ok", "ok", "down", "down", "ok", "ok", "ok"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("call %d: %s, want %s (seq %v)", i, seq[i], want[i], seq)
		}
	}
	// DownFor 0 with DownAfter > 0: permanent death.
	seq = callSeq(t, New(testInner(), Spec{DownAfter: 2}), 6)
	for i := 2; i < 6; i++ {
		if seq[i] != "down" {
			t.Fatalf("permanent death: call %d %s (seq %v)", i, seq[i], seq)
		}
	}
}

// TestKillRevive pins the mid-run switches: Kill takes effect on the
// next call, Revive restores service and cancels an elapsed scheduled
// outage so the shard actually comes back.
func TestKillRevive(t *testing.T) {
	ctx := context.Background()
	q := geom.Pt(500, 500)
	inj := New(testInner(), Spec{})
	if _, err := inj.QueryLR(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	inj.Kill()
	if !inj.Down() {
		t.Fatal("killed injector reports up")
	}
	if _, err := inj.QueryLR(ctx, q, nil); !errors.Is(err, ErrDown) {
		t.Fatalf("killed shard answered: %v", err)
	}
	inj.Revive()
	if _, err := inj.QueryLR(ctx, q, nil); err != nil {
		t.Fatalf("revived shard refused: %v", err)
	}

	// Revive inside an elapsed scheduled outage cancels the schedule.
	inj = New(testInner(), Spec{DownAfter: 1})
	callSeq(t, inj, 3) // calls 1,2 die
	inj.Revive()
	if _, err := inj.QueryLR(ctx, q, nil); err != nil {
		t.Fatalf("revive did not cancel the scheduled outage: %v", err)
	}
}

// TestDuplicateDelivery pins at-least-once mode: the inner querier is
// invoked twice per duplicated delivery, one answer returns.
func TestDuplicateDelivery(t *testing.T) {
	inner := testInner()
	inj := New(inner, Spec{DuplicateRate: 1})
	const n = 5
	seq := callSeq(t, inj, n)
	for i, s := range seq {
		if s != "ok" {
			t.Fatalf("call %d: %s", i, s)
		}
	}
	if got := inner.QueryCount(); got != 2*n {
		t.Fatalf("inner answered %d physical calls for %d deliveries, want %d", got, n, 2*n)
	}
	if st := inj.Stats(); st.Duplicates != n || st.Calls != n {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLatencyInjection pins that injected latency actually delays the
// call and honors cancellation.
func TestLatencyInjection(t *testing.T) {
	inj := New(testInner(), Spec{Latency: 20 * time.Millisecond})
	start := time.Now()
	if _, err := inj.QueryLR(context.Background(), geom.Pt(500, 500), nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("call returned in %v, injected 20ms", d)
	}
	// A canceled caller does not sit out the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inj = New(testInner(), Spec{Latency: time.Hour})
	if _, err := inj.QueryLR(ctx, geom.Pt(500, 500), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestErrDownNotTransient pins the class split the breaker relies on:
// death is not retryable, injected transients are.
func TestErrDownNotTransient(t *testing.T) {
	if lbs.IsTransient(ErrDown) {
		t.Fatal("ErrDown classified transient")
	}
	if !lbs.IsTransient(errTransient) {
		t.Fatal("injected transient not classified transient")
	}
}

// TestParseSpec round-trips every key and rejects malformed input.
func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7,transient=0.05,every=4,down-after=500,down-for=200,latency=2ms,sigma=0.6,slow=3,dup=0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, TransientRate: 0.05, TransientEvery: 4,
		DownAfter: 500, DownFor: 200,
		Latency: 2 * time.Millisecond, LatencySigma: 0.6, SlowFactor: 3,
		DuplicateRate: 0.01,
	}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	if s, err := ParseSpec("  "); err != nil || s != (Spec{}) {
		t.Fatalf("blank spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nope=1", "transient", "latency=fast", "transient=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
