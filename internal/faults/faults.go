// Package faults injects deterministic, seedable failures into any
// lbs.Querier: shard death (permanent or a crash-recover window),
// per-call transient errors, jittered heavy-tailed latency, slow-shard
// mode and duplicate delivery. The injector is the test double the
// federation's resilience layer is pinned against and the engine
// behind the chaos experiment — it composes under lbs.Wrapper, so a
// faulted stack still chain-walks for /v1/stats.
//
// Determinism: every fault decision is drawn from a private PRNG
// seeded by Spec.Seed and advanced once per delivered call, so a
// serial caller replays the exact same fault sequence on every run.
// (Concurrent callers interleave decisions nondeterministically, like
// any shared PRNG — chaos sweeps that need exact replay run serially.)
package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// ErrDown is the failure every call to a dead shard returns. It is
// deliberately NOT transient: retrying a dead shard inside one call
// wastes the caller's latency budget — the circuit breaker, not the
// retry loop, is the mechanism that handles death.
var ErrDown = errors.New("faults: shard down")

// errTransient is the injected per-call failure; IsTransient reports
// it retryable, so a bounded retry recovers it.
var errTransient = lbs.MarkTransient(errors.New("faults: injected transient failure"))

// Spec is a fault schedule. The zero value injects nothing.
type Spec struct {
	// Seed seeds the injector's private PRNG (0 is a valid seed).
	Seed int64

	// TransientRate fails each call independently with this
	// probability (a retryable, marked-transient error).
	TransientRate float64
	// TransientEvery fails every n-th call (0-based: calls 0, n, 2n…)
	// exactly once — a deterministic, fully-recovering schedule: the
	// immediate retry is the next call and always succeeds (n ≥ 2).
	// 0 disables.
	TransientEvery int64

	// DownAfter kills the shard starting at call index DownAfter
	// (> 0; every later call fails with ErrDown). 0 disables the
	// scheduled death — use Kill for an immediate one.
	DownAfter int64
	// DownFor bounds the outage to this many calls, after which the
	// shard recovers (a crash-recover window). 0 with DownAfter > 0
	// means the death is permanent.
	DownFor int64

	// Latency adds a per-call delay with this median. With
	// LatencySigma > 0 the delay is log-normal around the median
	// (heavy-tailed); otherwise it is constant.
	Latency      time.Duration
	LatencySigma float64
	// SlowFactor multiplies the injected latency (slow-shard mode;
	// 0 or 1 means no slowdown).
	SlowFactor float64

	// DuplicateRate delivers a call twice upstream with this
	// probability: the inner querier runs twice (double physical
	// cost), one answer returns — the at-least-once-delivery fault.
	DuplicateRate float64
}

// ParseSpec parses a comma-separated k=v fault spec, e.g.
//
//	"seed=7,transient=0.05,every=0,down-after=500,down-for=200,latency=2ms,sigma=0.6,slow=1,dup=0.01"
//
// Unknown keys are an error; every key is optional.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("faults: malformed field %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "transient":
			spec.TransientRate, err = strconv.ParseFloat(val, 64)
		case "every":
			spec.TransientEvery, err = strconv.ParseInt(val, 10, 64)
		case "down-after":
			spec.DownAfter, err = strconv.ParseInt(val, 10, 64)
		case "down-for":
			spec.DownFor, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			spec.Latency, err = time.ParseDuration(val)
		case "sigma":
			spec.LatencySigma, err = strconv.ParseFloat(val, 64)
		case "slow":
			spec.SlowFactor, err = strconv.ParseFloat(val, 64)
		case "dup":
			spec.DuplicateRate, err = strconv.ParseFloat(val, 64)
		default:
			return spec, fmt.Errorf("faults: unknown spec key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("faults: bad value for %q: %v", key, err)
		}
	}
	return spec, nil
}

// Stats counts what the injector actually did.
type Stats struct {
	// Calls is the number of deliveries gated (batch = one call).
	Calls int64
	// Transients, DownCalls and Duplicates count injected faults.
	Transients int64
	DownCalls  int64
	Duplicates int64
	// Slowed counts calls that slept injected latency.
	Slowed int64
}

// Injector wraps a Querier with a fault schedule. It implements
// lbs.Querier and lbs.Wrapper; one injector guards one member.
type Injector struct {
	inner lbs.Querier
	spec  Spec

	mu     sync.Mutex
	rng    *rand.Rand
	calls  int64
	killed bool
	stats  Stats
}

var _ lbs.Querier = (*Injector)(nil)

// New wraps inner with the given fault schedule.
func New(inner lbs.Querier, spec Spec) *Injector {
	return &Injector{inner: inner, spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Inner returns the wrapped querier (the stats chain-walk contract).
func (i *Injector) Inner() lbs.Querier { return i.inner }

// Bounds implements lbs.Querier.
func (i *Injector) Bounds() geom.Rect { return i.inner.Bounds() }

// K implements lbs.Querier.
func (i *Injector) K() int { return i.inner.K() }

// QueryCount implements lbs.Querier.
func (i *Injector) QueryCount() int64 { return i.inner.QueryCount() }

// Stats snapshots the fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Kill takes the shard down immediately and permanently (until
// Revive) — the mid-run shard-death switch chaos tests flip.
func (i *Injector) Kill() {
	i.mu.Lock()
	i.killed = true
	i.mu.Unlock()
}

// Revive clears both a Kill and a scheduled outage: the shard answers
// again starting with the next call.
func (i *Injector) Revive() {
	i.mu.Lock()
	i.killed = false
	if i.spec.DownAfter > 0 && i.calls >= i.spec.DownAfter {
		// Cancel the scheduled outage too, or the next call would
		// just die again.
		i.spec.DownAfter = 0
	}
	i.mu.Unlock()
}

// Down reports whether the next call would fail with ErrDown.
func (i *Injector) Down() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.downAt(i.calls)
}

// downAt reports the outage state at call index n (mu held).
func (i *Injector) downAt(n int64) bool {
	if i.killed {
		return true
	}
	if i.spec.DownAfter <= 0 || n < i.spec.DownAfter {
		return false
	}
	return i.spec.DownFor <= 0 || n < i.spec.DownAfter+i.spec.DownFor
}

// gate makes the fault decision for one delivery: it advances the
// call counter and PRNG under the lock, then sleeps any injected
// latency outside it. It returns whether the call should be delivered
// twice, or the injected failure.
func (i *Injector) gate(ctx context.Context) (dup bool, err error) {
	i.mu.Lock()
	n := i.calls
	i.calls++
	i.stats.Calls++
	switch {
	case i.downAt(n):
		i.stats.DownCalls++
		err = ErrDown
	case i.spec.TransientEvery > 0 && n%i.spec.TransientEvery == 0,
		i.spec.TransientRate > 0 && i.rng.Float64() < i.spec.TransientRate:
		i.stats.Transients++
		err = errTransient
	case i.spec.DuplicateRate > 0 && i.rng.Float64() < i.spec.DuplicateRate:
		i.stats.Duplicates++
		dup = true
	}
	var delay time.Duration
	if err == nil && i.spec.Latency > 0 {
		delay = i.spec.Latency
		if i.spec.LatencySigma > 0 {
			// Log-normal around the median: exp(σ·N(0,1)) has median 1.
			delay = time.Duration(float64(delay) * math.Exp(i.spec.LatencySigma*i.rng.NormFloat64()))
		}
		if f := i.spec.SlowFactor; f > 1 {
			delay = time.Duration(float64(delay) * f)
		}
		i.stats.Slowed++
	}
	i.mu.Unlock()
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	return dup, err
}

// QueryLR implements lbs.Querier under the fault schedule.
func (i *Injector) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	dup, err := i.gate(ctx)
	if err != nil {
		return nil, err
	}
	if dup {
		_, _ = i.inner.QueryLR(ctx, q, filter)
	}
	return i.inner.QueryLR(ctx, q, filter)
}

// QueryLNR implements lbs.Querier under the fault schedule.
func (i *Injector) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	dup, err := i.gate(ctx)
	if err != nil {
		return nil, err
	}
	if dup {
		_, _ = i.inner.QueryLNR(ctx, q, filter)
	}
	return i.inner.QueryLNR(ctx, q, filter)
}

// QueryLRBatch implements lbs.Querier; the batch is one delivery.
func (i *Injector) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	dup, err := i.gate(ctx)
	if err != nil {
		return nil, err
	}
	if dup {
		_, _ = i.inner.QueryLRBatch(ctx, pts, filter)
	}
	return i.inner.QueryLRBatch(ctx, pts, filter)
}

// QueryLNRBatch implements lbs.Querier; the batch is one delivery.
func (i *Injector) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	dup, err := i.gate(ctx)
	if err != nil {
		return nil, err
	}
	if dup {
		_, _ = i.inner.QueryLNRBatch(ctx, pts, filter)
	}
	return i.inner.QueryLNRBatch(ctx, pts, filter)
}
