package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
)

// testLiveBacked builds a live database over a small fixed population
// and a server exposing it (queries through d, mutations through the
// Mutator seam).
func testLiveBacked(t *testing.T, lopts live.Options) (*live.Database, *httptest.Server) {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	tuples := make([]lbs.Tuple, 0, 25)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			tuples = append(tuples, lbs.Tuple{
				ID:  int64(len(tuples) + 1),
				Loc: geom.Pt(10+float64(i)*20, 10+float64(j)*20),
				Attrs: map[string]float64{
					"v": float64(i + j),
				},
			})
		}
	}
	d, err := live.New(lbs.NewDatabase(bounds, tuples), lbs.Options{K: 3}, lopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(d, ServerOptions{Mutator: d}))
	t.Cleanup(ts.Close)
	return d, ts
}

func TestTupleStreamRoundTrip(t *testing.T) {
	d, ts := testLiveBacked(t, live.Options{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ops := []live.Op{
		{Kind: live.OpInsert, Tuple: lbs.Tuple{ID: 9001, Loc: geom.Pt(55, 55), Name: "new"}},
		{Kind: live.OpDelete, ID: 99999}, // unknown: rejected, stream continues
		{Kind: live.OpMove, ID: 1, Loc: geom.Pt(2, 2)},
		{Kind: live.OpDelete, ID: 2},
	}
	results, err := c.StreamTuples(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(results), len(ops))
	}
	wantEpochs := []uint64{1, 1, 2, 3}
	for i, r := range results {
		if r.Epoch != wantEpochs[i] {
			t.Errorf("op %d: epoch %d, want %d", i, r.Epoch, wantEpochs[i])
		}
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "unknown") {
		t.Errorf("rejected op error: %v", results[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("op %d unexpectedly rejected: %v", i, results[i].Err)
		}
	}

	// The mutations are visible to queries through the same server.
	if d.Epoch() != 3 {
		t.Fatalf("backend epoch %d, want 3", d.Epoch())
	}
	recs, err := c.QueryLR(ctx, geom.Pt(55, 55), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].ID != 9001 {
		t.Fatalf("inserted tuple not nearest after stream: %+v", recs)
	}
	if _, _, ok := d.Lookup(2); ok {
		t.Fatal("deleted tuple still visible")
	}
	if _, loc, ok := d.Lookup(1); !ok || loc != geom.Pt(2, 2) {
		t.Fatalf("moved tuple: ok=%v loc=%v", ok, loc)
	}
}

func TestTupleStreamImmutableBackend(t *testing.T) {
	svc := testService(20, 3, 0, 9)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.StreamTuples(ctx, []live.Op{{Kind: live.OpDelete, ID: 1}})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Fatalf("want 501 against immutable backend, got %v", err)
	}
}

// TestTupleStreamMalformed pins the framing contract: a malformed line
// is acked with ok=false and closes the stream; the well-formed ops
// before it applied.
func TestTupleStreamMalformed(t *testing.T) {
	d, ts := testLiveBacked(t, live.Options{})
	body := `{"op":"delete","id":3}` + "\n" + `not json` + "\n" + `{"op":"delete","id":4}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/tuples:stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var acks []wireAck
	dec := json.NewDecoder(resp.Body)
	for {
		var a wireAck
		if err := dec.Decode(&a); err != nil {
			break
		}
		acks = append(acks, a)
	}
	if len(acks) != 2 {
		t.Fatalf("got %d acks, want 2 (applied op + decode error): %+v", len(acks), acks)
	}
	if !acks[0].OK || acks[0].Epoch != 1 {
		t.Errorf("first ack: %+v", acks[0])
	}
	if acks[1].OK || !strings.Contains(acks[1].Error, "decode") {
		t.Errorf("second ack: %+v", acks[1])
	}
	if _, _, ok := d.Lookup(3); ok {
		t.Error("op before the malformed line did not apply")
	}
	if _, _, ok := d.Lookup(4); !ok {
		t.Error("op after the malformed line applied; stream should have closed")
	}
}

// TestTupleStreamUnknownKind pins per-op validation: an unknown op
// string is rejected in place without ending the stream.
func TestTupleStreamUnknownKind(t *testing.T) {
	d, ts := testLiveBacked(t, live.Options{})
	body := `{"op":"upsert","id":3}` + "\n" + `{"op":"delete","id":3}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/tuples:stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acks []wireAck
	dec := json.NewDecoder(resp.Body)
	for {
		var a wireAck
		if err := dec.Decode(&a); err != nil {
			break
		}
		acks = append(acks, a)
	}
	if len(acks) != 2 {
		t.Fatalf("got %d acks, want 2: %+v", len(acks), acks)
	}
	if acks[0].OK || !strings.Contains(acks[0].Error, "unknown op") {
		t.Errorf("first ack: %+v", acks[0])
	}
	if !acks[1].OK {
		t.Errorf("second ack: %+v", acks[1])
	}
	if _, _, ok := d.Lookup(3); ok {
		t.Error("delete after rejected op did not apply")
	}
}

// TestStatsLive pins the /v1/stats additions: the live section (epoch
// and mutation counters) via the LiveStats probe, and the cache
// invalidation counter after a mutation flushes dirtied entries.
func TestStatsLive(t *testing.T) {
	var cache *lbs.CachedOracle
	d, _ := testLiveBacked(t, live.Options{
		OnInvalidate: func(r geom.Rect) {
			if cache != nil {
				cache.Invalidate(r)
			}
		},
	})
	cache = lbs.NewCachedOracle(d, lbs.CacheOptions{})
	ts := httptest.NewServer(NewServerWith(cache, ServerOptions{Mutator: d}))
	defer ts.Close()
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the cache, mutate (no MaxRadius and no InvalidationRadius
	// → conservative full flush), then read stats.
	if _, err := c.QueryLR(ctx, geom.Pt(10, 10), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryLR(ctx, geom.Pt(90, 90), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTuples(ctx, []live.Op{{Kind: live.OpMove, ID: 1, Loc: geom.Pt(1, 1)}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Live == nil {
		t.Fatal("stats missing live section")
	}
	if st.Live.Epoch != 1 || st.Live.Moves != 1 {
		t.Errorf("live stats: %+v", st.Live)
	}
	if st.Live.BaseLen != 25 {
		t.Errorf("live base len: %d", st.Live.BaseLen)
	}
	if st.Cache == nil {
		t.Fatal("stats missing cache section")
	}
	if st.Cache.Invalidations != 2 {
		t.Errorf("cache invalidations: %d, want 2 (both cached answers flushed)", st.Cache.Invalidations)
	}
}

// opaque hides everything but the Querier interface: no lbs.Wrapper,
// no LiveStats — the stats walk cannot see through it.
type opaque struct{ lbs.Querier }

// TestStatsLiveViaMutatorOnly pins the fallback probe: when the query
// chain does not reach the live backend (an opaque wrapper), the
// configured Mutator still reports live stats.
func TestStatsLiveViaMutatorOnly(t *testing.T) {
	d, inner := testLiveBacked(t, live.Options{})
	inner.Close()
	ts := httptest.NewServer(NewServerWith(opaque{d}, ServerOptions{Mutator: d}))
	defer ts.Close()
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTuples(ctx, []live.Op{{Kind: live.OpDelete, ID: 5}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Live == nil || st.Live.Epoch != 1 || st.Live.Deletes != 1 {
		t.Fatalf("live stats: %+v", st.Live)
	}
	if st.Live.Tombstones != 1 || st.Live.BaseLen != 25 {
		t.Errorf("live overlay stats: %+v", st.Live)
	}
	_ = d
}
