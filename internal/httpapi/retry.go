package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/jobs"
	"repro/internal/lbs"
)

// RetryPolicy bounds the client's automatic retries of transient
// failures: transport errors, 5xx responses, and 429 responses that do
// NOT carry the budget_exhausted code (a spent budget is permanent and
// surfaces immediately as lbs.ErrBudgetExhausted). Only idempotent
// requests retry — GETs and the batch POSTs, whose replay costs budget
// only for answers actually delivered; job submission never retries.
//
// Backoff is exponential from BaseDelay, capped at MaxDelay, with
// uniform jitter in [1/2, 1] of the computed delay so synchronized
// clients spread out. Every wait honors the request context.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	// Default 3.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. Default 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait. Default 2 s.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy a new Client starts with.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// NoRetry disables retrying entirely.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// backoff returns the jittered wait before the given retry (attempt ≥ 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Uniform jitter in [d/2, d].
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableStatus reports whether a status is worth retrying; 429 is
// classified separately by doAttempts (only its non-budget flavor
// retries).
func retryableStatus(code int) bool {
	return code >= 500
}

// decodeError drains and closes an error response body.
func decodeError(resp *http.Response) errorResponse {
	var e errorResponse
	_ = json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e)
	resp.Body.Close()
	return e
}

// do issues one HTTP request with the client's retry policy: transient
// failures (transport errors, 5xx, non-budget 429) are retried with
// jittered exponential backoff bounded by ctx; a budget-exhausted 429
// returns lbs.ErrBudgetExhausted at once. Non-transient error statuses
// (4xx) are returned as responses for the caller to interpret. body
// may be nil; it is re-sent on every attempt.
func (c *Client) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	return c.doAttempts(ctx, method, url, body, c.retry.MaxAttempts)
}

// doOnce is do without retries, for non-idempotent requests.
func (c *Client) doOnce(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	return c.doAttempts(ctx, method, url, body, 1)
}

func (c *Client) doAttempts(ctx context.Context, method, url string, body []byte, attempts int) (*http.Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retry.backoff(attempt)); err != nil {
				return nil, fmt.Errorf("httpapi: %s %s: %w (after %v)", method, url, err, lastErr)
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, fmt.Errorf("httpapi: %s %s: %w", method, url, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("httpapi: %s %s: %w", method, url, err)
			}
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			e := decodeError(resp)
			switch e.Code {
			case codeBudgetExhausted:
				// Permanent: a spent budget never un-spends. Never
				// retried, surfaced as the sentinel at once.
				return nil, lbs.ErrBudgetExhausted
			case codeJobsExhausted:
				// Transient capacity: the job table drains as jobs
				// settle. Retryable, and wrapped so callers can detect
				// the condition (errors.Is(err, jobs.ErrTableFull)).
				lastErr = fmt.Errorf("status 429: %s: %w", e.Error, jobs.ErrTableFull)
			default:
				lastErr = fmt.Errorf("status 429: %s", e.Error)
			}
			continue
		}
		if retryableStatus(resp.StatusCode) {
			e := decodeError(resp)
			lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
			continue
		}
		return resp, nil
	}
	// Every failure that reached here was transient (permanent classes
	// returned above); mark it so an outer resilience layer — a
	// federation router with remote members — may retry or hedge with
	// its own, longer-horizon policy.
	return nil, lbs.MarkTransient(fmt.Errorf("httpapi: %s %s failed after %d attempts: %w", method, url, attempts, lastErr))
}
