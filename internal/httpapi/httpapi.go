// Package httpapi exposes a simulated LBS over HTTP and provides a
// client that implements the estimators' Oracle interface — the
// blueprint for running the algorithms against a real networked
// service. Both sides use only net/http and encoding/json.
//
// Wire protocol (JSON over GET):
//
//	GET /v1/meta                      → {k, min_x, min_y, max_x, max_y}
//	GET /v1/lr?x=..&y=..[&name=..][&category=..]   → {results: [...with locations]}
//	GET /v1/lnr?x=..&y=..[&name=..][&category=..]  → {results: [...ids+attrs only]}
//
// Selection pass-through (§5.1) is declarative on the wire: name and
// category equality filters ride along as query parameters. The
// client is constructed with a fixed Selection; the per-call filter
// argument of the Oracle interface must be nil (a functional filter
// cannot cross the network).
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Selection is the declarative server-side filter of the wire
// protocol: zero values match everything.
type Selection struct {
	Name     string
	Category string
}

func (s Selection) filter() lbs.Filter {
	if s.Name == "" && s.Category == "" {
		return nil
	}
	return func(t *lbs.Tuple) bool {
		return (s.Name == "" || t.Name == s.Name) &&
			(s.Category == "" || t.Category == s.Category)
	}
}

// wire types

type metaResponse struct {
	K    int     `json:"k"`
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type wireRecord struct {
	ID       int64              `json:"id"`
	X        *float64           `json:"x,omitempty"`
	Y        *float64           `json:"y,omitempty"`
	Dist     *float64           `json:"dist,omitempty"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

type queryResponse struct {
	Results []wireRecord `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server adapts a *lbs.Service into an http.Handler.
type Server struct {
	svc *lbs.Service
	mux *http.ServeMux
}

// NewServer wraps a service.
func NewServer(svc *lbs.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/meta", s.handleMeta)
	s.mux.HandleFunc("/v1/lr", s.handleLR)
	s.mux.HandleFunc("/v1/lnr", s.handleLNR)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	b := s.svc.Bounds()
	writeJSON(w, http.StatusOK, metaResponse{
		K:    s.svc.K(),
		MinX: b.Min.X, MinY: b.Min.Y, MaxX: b.Max.X, MaxY: b.Max.Y,
	})
}

// parseQuery extracts the location and selection from the URL.
func parseQuery(r *http.Request) (geom.Point, Selection, error) {
	q := r.URL.Query()
	x, errX := strconv.ParseFloat(q.Get("x"), 64)
	y, errY := strconv.ParseFloat(q.Get("y"), 64)
	if errX != nil || errY != nil {
		return geom.Point{}, Selection{}, fmt.Errorf("invalid or missing x/y")
	}
	return geom.Pt(x, y), Selection{Name: q.Get("name"), Category: q.Get("category")}, nil
}

func (s *Server) handleLR(w http.ResponseWriter, r *http.Request) {
	p, sel, err := parseQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	recs, err := s.svc.QueryLR(r.Context(), p, sel.filter())
	if err != nil {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	}
	out := queryResponse{Results: make([]wireRecord, len(recs))}
	for i, rec := range recs {
		x, y, d := rec.Loc.X, rec.Loc.Y, rec.Dist
		out.Results[i] = wireRecord{
			ID: rec.ID, X: &x, Y: &y, Dist: &d,
			Name: rec.Name, Category: rec.Category,
			Attrs: rec.Attrs, Tags: rec.Tags,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLNR(w http.ResponseWriter, r *http.Request) {
	p, sel, err := parseQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	recs, err := s.svc.QueryLNR(r.Context(), p, sel.filter())
	if err != nil {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	}
	out := queryResponse{Results: make([]wireRecord, len(recs))}
	for i, rec := range recs {
		out.Results[i] = wireRecord{
			ID: rec.ID, Name: rec.Name, Category: rec.Category,
			Attrs: rec.Attrs, Tags: rec.Tags,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// Client is an HTTP implementation of the estimators' Oracle
// interface. It fetches the service metadata once at construction and
// counts queries locally (mirroring how a real client tracks its own
// quota consumption).
type Client struct {
	base    string
	hc      *http.Client
	sel     Selection
	k       int
	bounds  geom.Rect
	queries atomic.Int64
}

// metaTimeout bounds the construction-time /v1/meta probe when the
// caller's context carries no deadline of its own and the HTTP client
// has no Timeout, so a dead gateway cannot hang NewClient forever.
const metaTimeout = 10 * time.Second

// NewClient connects to a server at baseURL (e.g. the URL of an
// httptest server or a deployed gateway). sel is the fixed declarative
// selection sent with every query. httpClient may be nil for
// http.DefaultClient. The /v1/meta probe honors ctx (deadline and
// cancellation); without a deadline from either ctx or the client, a
// default timeout applies.
func NewClient(ctx context.Context, baseURL string, sel Selection, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: httpClient, sel: sel}
	if _, ok := ctx.Deadline(); !ok && httpClient.Timeout == 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, metaTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/meta", nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: meta: %w", err)
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: meta: %w", err)
	}
	defer resp.Body.Close()
	var meta metaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("httpapi: meta decode: %w", err)
	}
	c.k = meta.K
	c.bounds = geom.NewRect(geom.Pt(meta.MinX, meta.MinY), geom.Pt(meta.MaxX, meta.MaxY))
	return c, nil
}

// Bounds implements core.Oracle.
func (c *Client) Bounds() geom.Rect { return c.bounds }

// K implements core.Oracle.
func (c *Client) K() int { return c.k }

// QueryCount implements core.Oracle.
func (c *Client) QueryCount() int64 { return c.queries.Load() }

// get performs one wire query; the request is built with ctx so the
// caller can cancel it in flight.
func (c *Client) get(ctx context.Context, endpoint string, p geom.Point) (*queryResponse, error) {
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(p.X, 'g', -1, 64))
	v.Set("y", strconv.FormatFloat(p.Y, 'g', -1, 64))
	if c.sel.Name != "" {
		v.Set("name", c.sel.Name)
	}
	if c.sel.Category != "" {
		v.Set("category", c.sel.Category)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+endpoint+"?"+v.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: query: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, lbs.ErrBudgetExhausted
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: status %d: %s", resp.StatusCode, e.Error)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("httpapi: decode: %w", err)
	}
	c.queries.Add(1)
	return &out, nil
}

// QueryLR implements core.Oracle. filter must be nil: selections are
// fixed per client (they travel as URL parameters; functional filters
// cannot cross the network).
func (c *Client) QueryLR(ctx context.Context, p geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if filter != nil {
		return nil, fmt.Errorf("httpapi: per-call filters unsupported; configure Selection on the client")
	}
	out, err := c.get(ctx, "/v1/lr", p)
	if err != nil {
		return nil, err
	}
	recs := make([]lbs.LRRecord, len(out.Results))
	for i, w := range out.Results {
		rec := lbs.LRRecord{
			ID: w.ID, Name: w.Name, Category: w.Category,
			Attrs: w.Attrs, Tags: w.Tags,
		}
		if w.X != nil && w.Y != nil {
			rec.Loc = geom.Pt(*w.X, *w.Y)
		}
		if w.Dist != nil {
			rec.Dist = *w.Dist
		}
		recs[i] = rec
	}
	return recs, nil
}

// QueryLNR implements core.Oracle (same filter restriction as QueryLR).
func (c *Client) QueryLNR(ctx context.Context, p geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	if filter != nil {
		return nil, fmt.Errorf("httpapi: per-call filters unsupported; configure Selection on the client")
	}
	out, err := c.get(ctx, "/v1/lnr", p)
	if err != nil {
		return nil, err
	}
	recs := make([]lbs.LNRRecord, len(out.Results))
	for i, w := range out.Results {
		recs[i] = lbs.LNRRecord{
			ID: w.ID, Name: w.Name, Category: w.Category,
			Attrs: w.Attrs, Tags: w.Tags,
		}
	}
	return recs, nil
}
